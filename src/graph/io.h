// Topology serialization: edge-list and Graphviz DOT export/import.
//
// Edge-list format (round-trippable):
//   line 1: "<num_switches>"
//   per edge: "<u> <v> <capacity>"
//   optional server line: "servers <s0> <s1> ... <s_{n-1}>"
// Lines starting with '#' are comments.
#ifndef TOPODESIGN_GRAPH_IO_H
#define TOPODESIGN_GRAPH_IO_H

#include <iosfwd>
#include <string>

#include "topo/topology.h"

namespace topo {

/// Writes the topology as a commented edge list.
void write_edge_list(std::ostream& os, const BuiltTopology& topology);

/// Parses an edge list written by write_edge_list (or by hand).
/// Raises InvalidArgument on malformed input.
[[nodiscard]] BuiltTopology read_edge_list(std::istream& is);

/// Writes a Graphviz DOT rendering (undirected; capacities as labels,
/// server counts as node labels) for quick visual inspection.
void write_dot(std::ostream& os, const BuiltTopology& topology,
               const std::string& graph_name = "topology");

}  // namespace topo

#endif  // TOPODESIGN_GRAPH_IO_H
