// Single-commodity maximum flow (Dinic's algorithm) and minimum cuts.
//
// Used for cut-capacity validation, bisection-bandwidth estimation, and as
// a building block in tests that cross-check the multicommodity solvers.
// The undirected graph is expanded to a directed network where each cable
// contributes capacity in both directions independently, matching the
// paper's full-duplex link model.
#ifndef TOPODESIGN_GRAPH_MAXFLOW_H
#define TOPODESIGN_GRAPH_MAXFLOW_H

#include <vector>

#include "graph/graph.h"

namespace topo {

/// Result of a max-flow computation.
struct MaxFlowResult {
  double value = 0.0;
  /// source_side[n] != 0 iff node n is on the source side of a min cut.
  std::vector<char> source_side;
};

/// Maximum s-t flow on the full-duplex expansion of `g`.
[[nodiscard]] MaxFlowResult max_flow(const Graph& g, NodeId s, NodeId t);

/// Maximum flow from a set of sources to a set of sinks (via supernodes).
/// Source and sink sets must be disjoint and non-empty.
[[nodiscard]] MaxFlowResult max_flow(const Graph& g,
                                     const std::vector<NodeId>& sources,
                                     const std::vector<NodeId>& sinks);

/// Capacity of the undirected cut defined by `in_s` (each crossing edge
/// counted once). The paper's directed cut capacity is twice this.
[[nodiscard]] double cut_capacity(const Graph& g, const std::vector<char>& in_s);

/// Heuristic minimum-capacity bisection via Kernighan-Lin style local
/// search over `restarts` random balanced partitions. Returns the best cut
/// capacity found (undirected count). Exact bisection is NP-hard; this is
/// good enough for the metric-comparison experiments where only relative
/// values matter.
[[nodiscard]] double bisection_bandwidth_estimate(const Graph& g,
                                                  std::uint64_t seed,
                                                  int restarts = 8);

}  // namespace topo

#endif  // TOPODESIGN_GRAPH_MAXFLOW_H
