// Spectral analysis: the expander machinery behind Theorem 2.
//
// The paper's two-cluster analysis (§6.2) rests on expansion: random
// regular graphs are near-optimal expanders, and the expander mixing lemma
// bounds every cut. The second eigenvalue of the adjacency matrix (or the
// spectral gap d - lambda_2) quantifies this. This module computes the top
// adjacency eigenvalues by power iteration with deflation, giving the
// benches a way to connect measured throughput plateaus to expansion.
#ifndef TOPODESIGN_GRAPH_SPECTRAL_H
#define TOPODESIGN_GRAPH_SPECTRAL_H

#include <cstdint>

#include "graph/graph.h"

namespace topo {

/// Result of the spectral computation on the (capacity-weighted)
/// adjacency matrix.
struct SpectralResult {
  double lambda1 = 0.0;    ///< Largest eigenvalue (= d for d-regular graphs).
  double lambda2 = 0.0;    ///< Second-largest algebraic eigenvalue.
  double lambda_min = 0.0; ///< Smallest algebraic eigenvalue (negative).
  /// Two-sided gap lambda1 - max(|lambda2|, |lambda_min|): large gap =
  /// strong expander (zero for bipartite graphs, whose spectrum is
  /// symmetric). Ramanujan quality: max(|l2|, |l_min|) <= 2*sqrt(d-1).
  double gap = 0.0;
};

/// Computes the top two adjacency eigenvalues by power iteration with
/// deflation. `iterations` controls accuracy (error decays geometrically
/// in the eigenvalue ratio). Deterministic given `seed`.
[[nodiscard]] SpectralResult adjacency_spectrum(const Graph& graph,
                                                std::uint64_t seed,
                                                int iterations = 600);

/// Expander-mixing-style edge estimate: expected number of edges between
/// vertex sets of sizes |S| and |T| in a d-regular graph, d*|S|*|T|/n.
/// Used to sanity-check measured cuts against the mixing lemma.
[[nodiscard]] double expected_edges_between(int n, int d, int set_a,
                                            int set_b);

}  // namespace topo

#endif  // TOPODESIGN_GRAPH_SPECTRAL_H
