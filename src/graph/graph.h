// Undirected capacitated multigraph.
//
// This is the substrate every topology generator produces and every solver
// consumes. Nodes model switches; edges model cables with a capacity equal
// to their line-speed (1.0 = one unit of line rate; a 10G link in a 1G
// network has capacity 10). Parallel edges are allowed (small random
// networks sometimes need them); self-loops are not, as a cable from a
// switch to itself carries no traffic in the fluid model.
#ifndef TOPODESIGN_GRAPH_GRAPH_H
#define TOPODESIGN_GRAPH_GRAPH_H

#include <cstddef>
#include <utility>
#include <vector>

#include "util/error.h"

namespace topo {

using NodeId = int;
using EdgeId = int;

/// One undirected edge with its capacity per direction.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  double capacity = 1.0;
};

/// Incidence record stored in adjacency lists.
struct Adjacency {
  NodeId to = 0;    ///< The other endpoint.
  EdgeId edge = 0;  ///< Index into Graph::edge().
};

/// Undirected capacitated multigraph with O(1) edge/adjacency access.
///
/// Invariants: every edge has distinct endpoints inside [0, num_nodes()),
/// and strictly positive capacity.
class Graph {
 public:
  /// Creates a graph with `num_nodes` isolated nodes.
  explicit Graph(int num_nodes) {
    require(num_nodes >= 0, "Graph requires num_nodes >= 0");
    adjacency_.resize(static_cast<std::size_t>(num_nodes));
  }

  /// Adds an undirected edge of the given capacity; returns its id.
  /// Parallel edges are permitted; self-loops and non-positive capacities
  /// raise InvalidArgument.
  EdgeId add_edge(NodeId u, NodeId v, double capacity = 1.0) {
    require(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes(),
            "add_edge endpoint out of range");
    require(u != v, "self-loops are not allowed");
    require(capacity > 0.0, "edge capacity must be positive");
    const EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Edge{u, v, capacity});
    adjacency_[static_cast<std::size_t>(u)].push_back(Adjacency{v, id});
    adjacency_[static_cast<std::size_t>(v)].push_back(Adjacency{u, id});
    return id;
  }

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(adjacency_.size());
  }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }

  [[nodiscard]] const Edge& edge(EdgeId id) const {
    require(id >= 0 && id < num_edges(), "edge id out of range");
    return edges_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] const std::vector<Adjacency>& neighbors(NodeId n) const {
    require(n >= 0 && n < num_nodes(), "node id out of range");
    return adjacency_[static_cast<std::size_t>(n)];
  }

  /// Number of incident edge endpoints (parallel edges each count once).
  [[nodiscard]] int degree(NodeId n) const {
    return static_cast<int>(neighbors(n).size());
  }

  /// Sum of edge capacities, each undirected edge counted once.
  [[nodiscard]] double capacity_sum() const {
    double total = 0.0;
    for (const Edge& e : edges_) total += e.capacity;
    return total;
  }

  /// The paper's C: total capacity counting each direction separately.
  [[nodiscard]] double total_directed_capacity() const {
    return 2.0 * capacity_sum();
  }

  /// True if at least one (u,v) edge exists.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    if (degree(u) > degree(v)) std::swap(u, v);
    for (const Adjacency& a : neighbors(u)) {
      if (a.to == v) return true;
    }
    return false;
  }

  /// Number of parallel (u,v) edges.
  [[nodiscard]] int edge_multiplicity(NodeId u, NodeId v) const {
    if (degree(u) > degree(v)) std::swap(u, v);
    int count = 0;
    for (const Adjacency& a : neighbors(u)) {
      if (a.to == v) ++count;
    }
    return count;
  }

  /// All edges, in insertion order.
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

}  // namespace topo

#endif  // TOPODESIGN_GRAPH_GRAPH_H
