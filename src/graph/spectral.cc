#include "graph/spectral.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace topo {
namespace {

using Vector = std::vector<double>;

double dot(const Vector& a, const Vector& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm(const Vector& a) { return std::sqrt(dot(a, a)); }

void normalize(Vector& a) {
  const double n = norm(a);
  if (n > 0.0) {
    for (double& x : a) x /= n;
  }
}

// y = (A + shift*I) x on the capacity-weighted adjacency matrix. The
// positive shift makes the largest algebraic eigenvalue strictly dominant
// in magnitude, so power iteration converges even on bipartite graphs
// (whose raw spectrum is symmetric, +/- lambda1).
Vector multiply_shifted(const Graph& g, const Vector& x, double shift) {
  Vector y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = shift * x[i];
  for (const Edge& e : g.edges()) {
    y[static_cast<std::size_t>(e.u)] +=
        e.capacity * x[static_cast<std::size_t>(e.v)];
    y[static_cast<std::size_t>(e.v)] +=
        e.capacity * x[static_cast<std::size_t>(e.u)];
  }
  return y;
}

Vector random_unit(std::size_t n, Rng& rng) {
  Vector v(n);
  for (double& x : v) x = rng.uniform() - 0.5;
  normalize(v);
  return v;
}

// Power iteration on (A + shift*I), deflating against `against`; returns
// the Rayleigh quotient of A itself (shift removed).
double power_iterate(const Graph& g, double shift, Vector& v,
                     const std::vector<Vector>& against, int iterations) {
  double rayleigh_shifted = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Vector next = multiply_shifted(g, v, shift);
    for (const Vector& u : against) {
      const double proj = dot(next, u);
      for (std::size_t i = 0; i < next.size(); ++i) next[i] -= proj * u[i];
    }
    const double len = norm(next);
    if (len < 1e-14) return -shift;  // orthogonal complement annihilated
    for (double& x : next) x /= len;
    rayleigh_shifted = dot(next, multiply_shifted(g, next, shift));
    v = std::move(next);
  }
  return rayleigh_shifted - shift;
}

double max_weighted_degree(const Graph& g) {
  std::vector<double> degree(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (const Edge& e : g.edges()) {
    degree[static_cast<std::size_t>(e.u)] += e.capacity;
    degree[static_cast<std::size_t>(e.v)] += e.capacity;
  }
  double max_degree = 0.0;
  for (double d : degree) max_degree = std::max(max_degree, d);
  return max_degree;
}

}  // namespace

SpectralResult adjacency_spectrum(const Graph& graph, std::uint64_t seed,
                                  int iterations) {
  require(graph.num_nodes() >= 2, "spectrum requires at least two nodes");
  require(iterations >= 1, "iterations must be positive");
  Rng rng(seed);
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  // |lambda| <= max weighted degree, so this shift makes A + shift*I PSD.
  const double shift = max_weighted_degree(graph) + 1.0;

  SpectralResult result;
  Vector v1 = random_unit(n, rng);
  result.lambda1 = power_iterate(graph, shift, v1, {}, iterations);

  Vector v2 = random_unit(n, rng);
  result.lambda2 = power_iterate(graph, shift, v2, {v1}, iterations);

  // Smallest algebraic eigenvalue via power iteration on (shift*I - A):
  // its dominant eigenvalue is shift - lambda_min.
  Vector vmin = random_unit(n, rng);
  double top = 0.0;
  for (int it = 0; it < iterations; ++it) {
    // y = shift*v - A v  ==  2*shift*v - (A + shift I)v.
    Vector av = multiply_shifted(graph, vmin, 0.0);
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) y[i] = shift * vmin[i] - av[i];
    const double len = norm(y);
    if (len < 1e-14) break;
    for (double& x : y) x /= len;
    Vector ay = multiply_shifted(graph, y, 0.0);
    top = 0.0;
    for (std::size_t i = 0; i < n; ++i) top += y[i] * (shift * y[i] - ay[i]);
    vmin = std::move(y);
  }
  result.lambda_min = shift - top;

  result.gap = result.lambda1 -
               std::max(std::fabs(result.lambda2), std::fabs(result.lambda_min));
  return result;
}

double expected_edges_between(int n, int d, int set_a, int set_b) {
  require(n >= 1, "n must be positive");
  require(d >= 0 && set_a >= 0 && set_b >= 0, "arguments must be >= 0");
  return static_cast<double>(d) * set_a * set_b / static_cast<double>(n);
}

}  // namespace topo
