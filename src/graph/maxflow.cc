#include "graph/maxflow.h"

#include <algorithm>
#include <limits>

#include "graph/shortest_path.h"
#include "util/rng.h"

namespace topo {
namespace {

constexpr double kFlowEps = 1e-9;

// Directed residual network for Dinic's algorithm.
class ResidualNetwork {
 public:
  explicit ResidualNetwork(int num_nodes)
      : head_(static_cast<std::size_t>(num_nodes), -1) {}

  void add_arc(int from, int to, double capacity) {
    arcs_.push_back(Arc{to, head_[static_cast<std::size_t>(from)], capacity});
    head_[static_cast<std::size_t>(from)] = static_cast<int>(arcs_.size()) - 1;
    arcs_.push_back(Arc{from, head_[static_cast<std::size_t>(to)], 0.0});
    head_[static_cast<std::size_t>(to)] = static_cast<int>(arcs_.size()) - 1;
  }

  // Adds a full-duplex link: capacity in both directions.
  void add_duplex(int a, int b, double capacity) {
    add_arc(a, b, capacity);
    add_arc(b, a, capacity);
  }

  double run(int s, int t) {
    double total = 0.0;
    while (build_levels(s, t)) {
      iter_ = head_;
      while (true) {
        const double pushed =
            augment(s, t, std::numeric_limits<double>::infinity());
        if (pushed <= kFlowEps) break;
        total += pushed;
      }
    }
    return total;
  }

  // After run(), nodes reachable from s in the residual network.
  [[nodiscard]] std::vector<char> reachable_from(int s) {
    residual_bfs(s);
    std::vector<char> seen(head_.size(), 0);
    for (std::size_t v = 0; v < head_.size(); ++v) {
      if (levels_.dist(static_cast<NodeId>(v)) >= 0) seen[v] = 1;
    }
    return seen;
  }

 private:
  struct Arc {
    int to = 0;
    int next = -1;
    double residual = 0.0;
  };

  // BFS over residual arcs via the shared stamped workspace; the level of
  // node v is then levels_.dist(v), with -1 meaning unreached.
  void residual_bfs(int s) {
    levels_.run_custom(
        static_cast<int>(head_.size()), s, [this](NodeId u, auto&& emit) {
          for (int a = head_[static_cast<std::size_t>(u)]; a >= 0;
               a = arcs_[static_cast<std::size_t>(a)].next) {
            const Arc& arc = arcs_[static_cast<std::size_t>(a)];
            if (arc.residual > kFlowEps) emit(arc.to);
          }
        });
  }

  bool build_levels(int s, int t) {
    residual_bfs(s);
    return levels_.dist(t) >= 0;
  }

  double augment(int u, int t, double limit) {
    if (u == t) return limit;
    const int next_level = levels_.dist(u) + 1;  // invariant across the scan
    for (int& a = iter_[static_cast<std::size_t>(u)]; a >= 0;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.residual > kFlowEps && levels_.dist(arc.to) == next_level) {
        const double pushed =
            augment(arc.to, t, std::min(limit, arc.residual));
        if (pushed > kFlowEps) {
          arc.residual -= pushed;
          arcs_[static_cast<std::size_t>(a ^ 1)].residual += pushed;
          return pushed;
        }
      }
    }
    return 0.0;
  }

  std::vector<Arc> arcs_;
  std::vector<int> head_;
  BfsWorkspace levels_;
  std::vector<int> iter_;
};

double partition_cut(const Graph& g, const std::vector<char>& side) {
  double cut = 0.0;
  for (const Edge& e : g.edges()) {
    if (side[static_cast<std::size_t>(e.u)] != side[static_cast<std::size_t>(e.v)]) {
      cut += e.capacity;
    }
  }
  return cut;
}

}  // namespace

MaxFlowResult max_flow(const Graph& g, NodeId s, NodeId t) {
  return max_flow(g, std::vector<NodeId>{s}, std::vector<NodeId>{t});
}

MaxFlowResult max_flow(const Graph& g, const std::vector<NodeId>& sources,
                       const std::vector<NodeId>& sinks) {
  require(!sources.empty() && !sinks.empty(),
          "max_flow requires non-empty source and sink sets");
  std::vector<char> is_source(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId s : sources) {
    require(s >= 0 && s < g.num_nodes(), "max_flow source out of range");
    is_source[static_cast<std::size_t>(s)] = 1;
  }
  for (NodeId t : sinks) {
    require(t >= 0 && t < g.num_nodes(), "max_flow sink out of range");
    require(!is_source[static_cast<std::size_t>(t)],
            "max_flow source and sink sets must be disjoint");
  }

  const int super_source = g.num_nodes();
  const int super_sink = g.num_nodes() + 1;
  ResidualNetwork net(g.num_nodes() + 2);
  for (const Edge& e : g.edges()) net.add_duplex(e.u, e.v, e.capacity);

  // Super-arcs with effectively infinite capacity.
  double total_cap = g.total_directed_capacity() + 1.0;
  for (NodeId s : sources) net.add_arc(super_source, s, total_cap);
  for (NodeId t : sinks) net.add_arc(t, super_sink, total_cap);

  MaxFlowResult result;
  result.value = net.run(super_source, super_sink);
  auto reach = net.reachable_from(super_source);
  reach.resize(static_cast<std::size_t>(g.num_nodes()));
  result.source_side = std::move(reach);
  return result;
}

double cut_capacity(const Graph& g, const std::vector<char>& in_s) {
  require(static_cast<int>(in_s.size()) == g.num_nodes(),
          "cut_capacity side vector must cover all nodes");
  return partition_cut(g, in_s);
}

double bisection_bandwidth_estimate(const Graph& g, std::uint64_t seed,
                                    int restarts) {
  require(g.num_nodes() >= 2, "bisection requires at least two nodes");
  require(restarts >= 1, "bisection requires at least one restart");
  const int n = g.num_nodes();
  double best = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < restarts; ++attempt) {
    Rng rng(Rng::derive_seed(seed, static_cast<std::uint64_t>(attempt)));
    // Random balanced start.
    std::vector<NodeId> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
    rng.shuffle(order);
    std::vector<char> side(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n / 2; ++i) side[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;

    // Greedy pair-swap local search: swap the pair that reduces the cut
    // most; stop at a local minimum. O(n^2) per pass, fine at our scales.
    bool improved = true;
    while (improved) {
      improved = false;
      double current = partition_cut(g, side);
      NodeId best_a = -1;
      NodeId best_b = -1;
      double best_cut = current;
      for (NodeId a = 0; a < n; ++a) {
        if (!side[static_cast<std::size_t>(a)]) continue;
        for (NodeId b = 0; b < n; ++b) {
          if (side[static_cast<std::size_t>(b)]) continue;
          side[static_cast<std::size_t>(a)] = 0;
          side[static_cast<std::size_t>(b)] = 1;
          const double cut = partition_cut(g, side);
          side[static_cast<std::size_t>(a)] = 1;
          side[static_cast<std::size_t>(b)] = 0;
          if (cut + kFlowEps < best_cut) {
            best_cut = cut;
            best_a = a;
            best_b = b;
          }
        }
      }
      if (best_a >= 0) {
        side[static_cast<std::size_t>(best_a)] = 0;
        side[static_cast<std::size_t>(best_b)] = 1;
        improved = true;
      }
    }
    best = std::min(best, partition_cut(g, side));
  }
  return best;
}

}  // namespace topo
