// Unweighted shortest-path and connectivity algorithms.
//
// Hop-count distances are the right notion for the paper's analysis: each
// hop of a flow consumes one edge traversal of capacity, regardless of the
// edge's capacity, so ASPL and the Theorem-1 bound are hop-based.
#ifndef TOPODESIGN_GRAPH_ALGORITHMS_H
#define TOPODESIGN_GRAPH_ALGORITHMS_H

#include <vector>

#include "graph/graph.h"

namespace topo {

/// BFS hop distances from `src`; unreachable nodes get -1.
[[nodiscard]] std::vector<int> bfs_distances(const Graph& g, NodeId src);

/// All-pairs hop distances via repeated BFS. dist[u][v] == -1 if unreachable.
[[nodiscard]] std::vector<std::vector<int>> all_pairs_distances(const Graph& g);

/// True if the graph is connected (vacuously true for <= 1 node).
[[nodiscard]] bool is_connected(const Graph& g);

/// Connected-component label per node, labels in [0, num_components).
[[nodiscard]] std::vector<int> component_labels(const Graph& g);

/// Number of connected components.
[[nodiscard]] int num_components(const Graph& g);

/// Average shortest path length over all ordered pairs of distinct nodes.
/// Raises InvalidArgument when the graph is disconnected or has < 2 nodes.
[[nodiscard]] double average_shortest_path_length(const Graph& g);

/// Longest shortest path. Raises InvalidArgument when disconnected.
[[nodiscard]] int diameter(const Graph& g);

/// Mean hop distance over an explicit list of (src, dst) node pairs,
/// optionally weighted. Pairs with identical endpoints contribute zero
/// distance. Raises InvalidArgument if any pair is unreachable.
[[nodiscard]] double mean_pair_distance(
    const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
    const std::vector<double>* weights = nullptr);

}  // namespace topo

#endif  // TOPODESIGN_GRAPH_ALGORITHMS_H
