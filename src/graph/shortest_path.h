// Flat (CSR) directed-arc view of a graph plus reusable shortest-path
// workspaces.
//
// Every hot loop in the library bottoms out in either a Dijkstra over
// exponential arc lengths (the concurrent-flow solver) or a BFS over hops
// (reachability, ASPL, Dinic level graphs). Both were allocation-bound:
// a fresh distance vector, parent vector, and heap per call. This module
// gives them
//
//  * ArcGraph — a compressed-sparse-row arc graph built once per solve:
//    arc 2e is edge e's u->v direction, arc 2e+1 its reverse, so the
//    partner of arc a is always a^1. Out-arcs of a node are a contiguous
//    slice of one flat array instead of a vector-of-vectors, and the slot
//    order exposes head nodes (and caller-maintained lengths) as
//    sequential reads in the relaxation loop.
//  * DijkstraWorkspace — an indexed 4-ary heap with decrease-key, a
//    sentinel-distance array reset via a touched list (no per-relaxation
//    stamp checks), and optional target bounding so a search stops once
//    every requested destination is finalized. Ties between equal
//    distances are broken toward the smaller node id, matching the pop
//    order of the classic lazy binary-heap formulation so results are
//    reproducible across implementations.
//  * BfsWorkspace — generation-stamped hop distances with a reusable
//    frontier queue.
#ifndef TOPODESIGN_GRAPH_SHORTEST_PATH_H
#define TOPODESIGN_GRAPH_SHORTEST_PATH_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace topo {

/// CSR directed-arc view of an undirected capacitated graph.
///
/// Arcs are numbered so that arc 2e is edge e's u->v direction and arc
/// 2e+1 its v->u direction; `a ^ 1` is the reverse arc of `a`. The
/// out-arcs of node n occupy CSR slots [first_out[n], first_out[n+1]), in
/// increasing arc id (i.e. edge-insertion) order; slot i holds arc
/// out_arc[i] with head slot_head[i]. slot_of_arc inverts out_arc so
/// per-arc values (e.g. lengths) can be mirrored into slot order.
struct ArcGraph {
  explicit ArcGraph(const Graph& g);

  int num_nodes = 0;
  int num_arcs = 0;
  std::vector<double> capacity;  ///< Per arc (both directions of an edge share it).
  std::vector<NodeId> head;      ///< Head node of each arc.
  std::vector<int> first_out;    ///< CSR offsets, size num_nodes + 1.
  std::vector<int> out_arc;      ///< CSR slot -> arc id.
  std::vector<NodeId> slot_head; ///< CSR slot -> head node (= head[out_arc[i]]).
  std::vector<int> slot_of_arc;  ///< Arc id -> its CSR slot.

  /// Tail node of arc `a` (the head of its partner).
  [[nodiscard]] NodeId tail(int a) const {
    return head[static_cast<std::size_t>(a ^ 1)];
  }
};

/// Fills `slot_length` (resized to arcs.num_arcs) from per-arc lengths:
/// slot_length[i] = length[arcs.out_arc[i]]. The slot-ordered mirror is
/// what run_slots consumes; callers that update lengths incrementally
/// (the solver) keep the mirror in sync through arcs.slot_of_arc.
void fill_slot_lengths(const ArcGraph& arcs, const std::vector<double>& length,
                       std::vector<double>& slot_length);

/// Reusable single-source Dijkstra state. One workspace serves any number
/// of runs; buffers grow monotonically to the largest graph seen and are
/// cleaned up lazily via a touched list, so a run costs O(visited), not
/// O(nodes).
///
/// Not thread-safe; use one workspace per thread.
class DijkstraWorkspace {
 public:
  /// Runs Dijkstra from `src` over `arcs` with lengths addressed by CSR
  /// slot (typically maintained incrementally by the caller, or built via
  /// fill_slot_lengths): a flat double stream the relaxation loop reads
  /// sequentially — and, chunk by chunk, vectorizes over.
  ///
  /// When `dag_hops` is non-null, only arcs (u, v) with
  /// dag_hops[v] == dag_hops[u] + 1 are relaxed, restricting the tree to
  /// hop-shortest paths from the hop source (the §8 ECMP model).
  ///
  /// When `targets` is non-null, the search stops as soon as every listed
  /// node is finalized (duplicates allowed). Finalization order is a
  /// prefix of the full run's, so distances, parent arcs, and extracted
  /// paths for the targets — and for every node finalized before them —
  /// are identical to an unbounded run; only nodes farther than the last
  /// target are left unexplored. Callers must only query targets (or
  /// their tree ancestors) after a bounded run.
  void run_slots(const ArcGraph& arcs, const double* slot_length, NodeId src,
                 const std::vector<int>* dag_hops = nullptr,
                 const NodeId* targets = nullptr, int num_targets = 0);

  /// As run_slots, but records no parent arcs: cheaper, for callers that
  /// need only distances (e.g. the solver's dual bound). Distances are
  /// identical to run_slots — they are independent of tie handling and of
  /// parent bookkeeping. parent_arc()/extract_path() are meaningless
  /// after this variant.
  void run_distances(const ArcGraph& arcs, const double* slot_length,
                     NodeId src, const std::vector<int>* dag_hops = nullptr,
                     const NodeId* targets = nullptr, int num_targets = 0);

  /// As run_distances, but relaxes through a Dial-style circular bucket
  /// queue of width `min_length` instead of the heap — O(1) decrease-key
  /// and pop while the arc-length distribution is narrow (the solver's
  /// early phases, where every length is still ~1/capacity). The caller
  /// passes a lower/upper bound on the active slot lengths; when the
  /// ratio is too wide for a compact bucket array (or min_length is not a
  /// positive finite bound) the call falls back to the heap run_distances
  /// transparently. Distances agree with run_distances up to bucket-
  /// boundary rounding (settled nodes ignore late sub-ulp improvements),
  /// and the run is sequential, so results are deterministic for any
  /// thread count.
  void run_distances_bucketed(const ArcGraph& arcs, const double* slot_length,
                              NodeId src, double min_length,
                              double max_length,
                              const std::vector<int>* dag_hops = nullptr,
                              const NodeId* targets = nullptr,
                              int num_targets = 0);

  /// Convenience overload taking lengths addressed by arc id; mirrors
  /// them into a scratch slot array (O(num_arcs)) and calls run_slots.
  void run(const ArcGraph& arcs, const std::vector<double>& length, NodeId src,
           const std::vector<int>* dag_hops = nullptr,
           const NodeId* targets = nullptr, int num_targets = 0);

  /// Distance of `v` from the last run's source; +inf when unreached.
  [[nodiscard]] double dist(NodeId v) const {
    return dist_[static_cast<std::size_t>(v)];
  }

  /// Arc entering `v` in the tree of the last run; -1 at the source or
  /// when unreached.
  [[nodiscard]] int parent_arc(NodeId v) const;

  /// Multiplies every reached distance of the last run by `factor`.
  /// Keeps a cached tree consistent when all arc lengths are rescaled by
  /// the same factor (the solver's overflow guard).
  void scale_distances(double factor);

  /// Extracts the arc path source -> dst of the last run into `path`
  /// (arcs in dst -> source order). Returns false when dst is unreached.
  [[nodiscard]] bool extract_path(const ArcGraph& arcs, NodeId src, NodeId dst,
                                  std::vector<int>& path) const;

 private:
  /// Heap entries pack (distance, node) into one wide integer: the high
  /// 64 bits are the distance's IEEE-754 bit pattern (for non-negative
  /// doubles, integer order equals numeric order), the low 64 bits the
  /// node id. A single integer compare then realizes the (dist, node)
  /// lexicographic order — equal distances pop in increasing node id, the
  /// same effective order as a lazy binary heap over (dist, node) pairs —
  /// and the compiler keeps the 4-ary argmin branch-free (conditional
  /// moves), which is where a branchy heap loses most of its cycles.
  using HeapEntry = unsigned __int128;
  /// Out-slots are relaxed in chunks of this many arcs (two passes:
  /// vectorized tentative distances, then scalar compare/improve).
  static constexpr int kRelaxChunk = 64;
  static HeapEntry make_entry(double key, NodeId node);
  static NodeId entry_node(HeapEntry e) {
    return static_cast<NodeId>(static_cast<std::uint64_t>(e));
  }

  template <bool kUseDag, bool kRecordParents>
  void run_impl(const ArcGraph& arcs, const double* slot_length, NodeId src,
                const std::vector<int>* dag_hops, const NodeId* targets,
                int num_targets);
  template <bool kUseDag>
  void bucketed_impl(const ArcGraph& arcs, const double* slot_length,
                     NodeId src, double width, std::size_t num_buckets,
                     const std::vector<int>* dag_hops, const NodeId* targets,
                     int num_targets);
  /// Resets the previous run's touched distances and grows buffers.
  void begin_run(int num_nodes);
  void heap_insert_or_decrease(NodeId v, double key);
  NodeId heap_pop_min();
  void sift_up(int pos, HeapEntry entry);
  void sift_down(int pos, HeapEntry entry);

  std::vector<double> dist_;     // +inf sentinel = unreached
  std::vector<int> parent_;
  std::vector<NodeId> touched_;  // nodes whose dist_ needs resetting
  std::vector<std::uint32_t> target_stamp_;
  std::vector<HeapEntry> heap_;  // heap slots -> packed (dist, node)
  std::vector<int> heap_pos_;    // node -> heap slot while queued
  std::vector<double> scratch_slot_length_;  // for the per-arc overload
  std::vector<std::vector<NodeId>> buckets_;  // circular Dial queue
  std::vector<std::uint32_t> settled_stamp_;  // bucket runs: node finalized
  int heap_size_ = 0;
  std::uint32_t generation_ = 0;
};

/// Reusable BFS state: generation-stamped hop distances and a frontier
/// queue. Not thread-safe; use one workspace per thread.
class BfsWorkspace {
 public:
  /// BFS hop distances from `src` over the undirected graph.
  void run(const Graph& g, NodeId src);

  /// BFS over an arbitrary arc structure: `for_each_neighbor(u, emit)`
  /// must invoke emit(v) for every eligible neighbor v of u. Lets other
  /// solvers (e.g. Dinic's level graph over residual arcs) reuse the
  /// stamped-distance machinery without materializing a Graph.
  template <typename NeighborFn>
  void run_custom(int num_nodes, NodeId src, NeighborFn&& for_each_neighbor) {
    begin_run(num_nodes, src);
    std::size_t head = 0;
    std::size_t tail = 1;
    while (head < tail) {
      const NodeId u = queue_[head++];
      const int du = dist_[static_cast<std::size_t>(u)];
      for_each_neighbor(u, [&](NodeId v) {
        if (stamp_[static_cast<std::size_t>(v)] != generation_) {
          stamp_[static_cast<std::size_t>(v)] = generation_;
          dist_[static_cast<std::size_t>(v)] = du + 1;
          queue_[tail++] = v;
        }
      });
    }
  }

  /// Hop distance of `v` from the last run's source; -1 when unreached.
  [[nodiscard]] int dist(NodeId v) const {
    return stamp_[static_cast<std::size_t>(v)] == generation_
               ? dist_[static_cast<std::size_t>(v)]
               : -1;
  }

  /// Copies the last run's distances into a dense vector (-1 unreached).
  void export_distances(std::vector<int>& out) const;

 private:
  /// Grows buffers, bumps the generation, and seeds the queue with `src`.
  void begin_run(int num_nodes, NodeId src);

  std::vector<int> dist_;
  std::vector<std::uint32_t> stamp_;
  std::vector<NodeId> queue_;
  std::size_t last_num_nodes_ = 0;  // workspace may outsize the last graph
  std::uint32_t generation_ = 0;
};

}  // namespace topo

#endif  // TOPODESIGN_GRAPH_SHORTEST_PATH_H
