#include "graph/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/error.h"

namespace topo {

void write_edge_list(std::ostream& os, const BuiltTopology& topology) {
  os << "# topodesign edge list: switches, then 'u v capacity' per edge\n";
  os << topology.graph.num_nodes() << "\n";
  for (const Edge& e : topology.graph.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.capacity << "\n";
  }
  if (topology.servers.num_switches() == topology.graph.num_nodes() &&
      topology.servers.total() > 0) {
    os << "servers";
    for (int s : topology.servers.per_switch) os << ' ' << s;
    os << "\n";
  }
}

BuiltTopology read_edge_list(std::istream& is) {
  BuiltTopology topology;
  std::string line;
  bool have_header = false;
  int num_nodes = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    if (!have_header) {
      require(static_cast<bool>(ss >> num_nodes) && num_nodes >= 0,
              "edge list: bad switch count");
      topology.graph = Graph(num_nodes);
      topology.servers.per_switch.assign(static_cast<std::size_t>(num_nodes),
                                         0);
      topology.node_class.assign(static_cast<std::size_t>(num_nodes), 0);
      topology.class_names = {"switch"};
      have_header = true;
      continue;
    }
    std::string first;
    ss >> first;
    if (first == "servers") {
      for (int i = 0; i < num_nodes; ++i) {
        int count = 0;
        require(static_cast<bool>(ss >> count) && count >= 0,
                "edge list: bad server count");
        topology.servers.per_switch[static_cast<std::size_t>(i)] = count;
      }
      continue;
    }
    int u = 0;
    int v = 0;
    double capacity = 1.0;
    std::istringstream edge_ss(line);
    require(static_cast<bool>(edge_ss >> u >> v >> capacity),
            "edge list: bad edge line: " + line);
    topology.graph.add_edge(u, v, capacity);
  }
  require(have_header, "edge list: missing switch count header");
  return topology;
}

void write_dot(std::ostream& os, const BuiltTopology& topology,
               const std::string& graph_name) {
  os << "graph " << graph_name << " {\n";
  for (NodeId n = 0; n < topology.graph.num_nodes(); ++n) {
    os << "  n" << n << " [label=\"" << n;
    if (topology.servers.num_switches() == topology.graph.num_nodes() &&
        topology.servers.per_switch[static_cast<std::size_t>(n)] > 0) {
      os << " ("
         << topology.servers.per_switch[static_cast<std::size_t>(n)]
         << " srv)";
    }
    os << "\"];\n";
  }
  for (const Edge& e : topology.graph.edges()) {
    os << "  n" << e.u << " -- n" << e.v;
    if (e.capacity != 1.0) os << " [label=\"" << e.capacity << "\"]";
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace topo
