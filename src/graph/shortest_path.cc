#include "graph/shortest_path.h"

#include <bit>
#include <limits>

namespace topo {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

DijkstraWorkspace::HeapEntry DijkstraWorkspace::make_entry(double key,
                                                           NodeId node) {
  // Distances are finite and non-negative (the solver's lengths stay
  // positive and its overflow guard keeps sums finite), so the bit
  // pattern of `key` orders exactly like the double itself.
  return (static_cast<HeapEntry>(std::bit_cast<std::uint64_t>(key)) << 64) |
         static_cast<std::uint32_t>(node);
}

ArcGraph::ArcGraph(const Graph& g)
    : num_nodes(g.num_nodes()), num_arcs(2 * g.num_edges()) {
  capacity.resize(static_cast<std::size_t>(num_arcs));
  head.resize(static_cast<std::size_t>(num_arcs));
  first_out.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  out_arc.resize(static_cast<std::size_t>(num_arcs));
  slot_head.resize(static_cast<std::size_t>(num_arcs));
  slot_of_arc.resize(static_cast<std::size_t>(num_arcs));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    capacity[static_cast<std::size_t>(2 * e)] = edge.capacity;
    capacity[static_cast<std::size_t>(2 * e + 1)] = edge.capacity;
    head[static_cast<std::size_t>(2 * e)] = edge.v;
    head[static_cast<std::size_t>(2 * e + 1)] = edge.u;
    ++first_out[static_cast<std::size_t>(edge.u) + 1];
    ++first_out[static_cast<std::size_t>(edge.v) + 1];
  }
  for (int n = 0; n < num_nodes; ++n) {
    first_out[static_cast<std::size_t>(n) + 1] +=
        first_out[static_cast<std::size_t>(n)];
  }
  // Filling in edge order keeps each node's out-arcs in increasing arc id,
  // the same relaxation order as the old vector-of-vectors adjacency.
  std::vector<int> cursor(first_out.begin(), first_out.end() - 1);
  const auto place = [&](NodeId tail_node, int arc) {
    const int slot = cursor[static_cast<std::size_t>(tail_node)]++;
    out_arc[static_cast<std::size_t>(slot)] = arc;
    slot_head[static_cast<std::size_t>(slot)] =
        head[static_cast<std::size_t>(arc)];
    slot_of_arc[static_cast<std::size_t>(arc)] = slot;
  };
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    place(edge.u, 2 * e);
    place(edge.v, 2 * e + 1);
  }
}

void DijkstraWorkspace::begin_run(int num_nodes) {
  const auto n = static_cast<std::size_t>(num_nodes);
  if (dist_.size() < n) {
    dist_.resize(n, kInf);
    parent_.resize(n);
    target_stamp_.resize(n, 0);
    settled_stamp_.resize(n, 0);
    heap_.resize(n);
    heap_pos_.resize(n);
    touched_.reserve(n);
  }
  for (NodeId v : touched_) dist_[static_cast<std::size_t>(v)] = kInf;
  touched_.clear();
  if (generation_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(target_stamp_.begin(), target_stamp_.end(), 0);
    std::fill(settled_stamp_.begin(), settled_stamp_.end(), 0);
    generation_ = 0;
  }
  ++generation_;
  heap_size_ = 0;
}

void fill_slot_lengths(const ArcGraph& arcs, const std::vector<double>& length,
                       std::vector<double>& slot_length) {
  slot_length.resize(static_cast<std::size_t>(arcs.num_arcs));
  for (int i = 0; i < arcs.num_arcs; ++i) {
    slot_length[static_cast<std::size_t>(i)] = length[static_cast<std::size_t>(
        arcs.out_arc[static_cast<std::size_t>(i)])];
  }
}

void DijkstraWorkspace::run(const ArcGraph& arcs,
                            const std::vector<double>& length, NodeId src,
                            const std::vector<int>* dag_hops,
                            const NodeId* targets, int num_targets) {
  fill_slot_lengths(arcs, length, scratch_slot_length_);
  run_slots(arcs, scratch_slot_length_.data(), src, dag_hops, targets,
            num_targets);
}

void DijkstraWorkspace::run_slots(const ArcGraph& arcs,
                                  const double* slot_length, NodeId src,
                                  const std::vector<int>* dag_hops,
                                  const NodeId* targets, int num_targets) {
  require(src >= 0 && src < arcs.num_nodes, "dijkstra source out of range");
  if (dag_hops != nullptr) {
    run_impl<true, true>(arcs, slot_length, src, dag_hops, targets,
                         num_targets);
  } else {
    run_impl<false, true>(arcs, slot_length, src, nullptr, targets,
                          num_targets);
  }
}

void DijkstraWorkspace::run_distances(const ArcGraph& arcs,
                                      const double* slot_length, NodeId src,
                                      const std::vector<int>* dag_hops,
                                      const NodeId* targets, int num_targets) {
  require(src >= 0 && src < arcs.num_nodes, "dijkstra source out of range");
  if (dag_hops != nullptr) {
    run_impl<true, false>(arcs, slot_length, src, dag_hops, targets,
                          num_targets);
  } else {
    run_impl<false, false>(arcs, slot_length, src, nullptr, targets,
                           num_targets);
  }
}

void DijkstraWorkspace::run_distances_bucketed(
    const ArcGraph& arcs, const double* slot_length, NodeId src,
    double min_length, double max_length, const std::vector<int>* dag_hops,
    const NodeId* targets, int num_targets) {
  // Bucket width = the smallest active length, so every node in the bucket
  // being drained is already final (any later candidate is at least one
  // full bucket away) and the circular array only needs to cover one
  // max-length hop past the scan position. A wide length spread (the
  // solver's late phases, where lengths span many orders of magnitude)
  // would need a huge array, so it falls back to the heap.
  constexpr double kMaxBucketRatio = 2048.0;
  if (!(min_length > 0.0) || !(max_length >= min_length) ||
      max_length / min_length > kMaxBucketRatio) {
    run_distances(arcs, slot_length, src, dag_hops, targets, num_targets);
    return;
  }
  require(src >= 0 && src < arcs.num_nodes, "dijkstra source out of range");
  const auto num_buckets = static_cast<std::size_t>(max_length / min_length) + 3;
  if (buckets_.size() < num_buckets) buckets_.resize(num_buckets);
  if (dag_hops != nullptr) {
    bucketed_impl<true>(arcs, slot_length, src, min_length, num_buckets,
                        dag_hops, targets, num_targets);
  } else {
    bucketed_impl<false>(arcs, slot_length, src, min_length, num_buckets,
                         nullptr, targets, num_targets);
  }
}

template <bool kUseDag>
void DijkstraWorkspace::bucketed_impl(const ArcGraph& arcs,
                                      const double* slot_length, NodeId src,
                                      double width, std::size_t num_buckets,
                                      const std::vector<int>* dag_hops,
                                      const NodeId* targets, int num_targets) {
  begin_run(arcs.num_nodes);
  int pending_targets = 0;
  for (int t = 0; t < num_targets; ++t) {
    const auto v = static_cast<std::size_t>(targets[t]);
    if (target_stamp_[v] != generation_) {
      target_stamp_[v] = generation_;
      ++pending_targets;
    }
  }
  const bool bounded = pending_targets > 0;

  const int* const first_out = arcs.first_out.data();
  const NodeId* const slot_head = arcs.slot_head.data();
  double* const dist = dist_.data();

  dist[src] = 0.0;
  touched_.push_back(src);
  buckets_[0].push_back(src);
  std::size_t queued = 1;
  std::uint64_t cur = 0;  // absolute bucket index of the scan position
  double nd_buf[kRelaxChunk];
  while (queued > 0) {
    std::vector<NodeId>& bucket = buckets_[cur % num_buckets];
    if (bucket.empty()) {
      ++cur;
      continue;
    }
    // Index loop: a relaxation at the bucket boundary can (by fp
    // rounding) land back in the bucket being drained and must still be
    // processed in this sweep.
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      const NodeId u = bucket[k];
      --queued;
      const auto us = static_cast<std::size_t>(u);
      if (settled_stamp_[us] == generation_) continue;  // stale duplicate
      settled_stamp_[us] = generation_;
      if (bounded && target_stamp_[us] == generation_) {
        if (--pending_targets == 0) {  // all targets finalized
          for (std::size_t b = 0; b < num_buckets; ++b) buckets_[b].clear();
          return;
        }
      }
      const double du = dist[us];
      int i = first_out[u];
      const int end = first_out[u + 1];
      while (i < end) {
        const int chunk = std::min(end - i, kRelaxChunk);
        for (int j = 0; j < chunk; ++j) nd_buf[j] = du + slot_length[i + j];
        for (int j = 0; j < chunk; ++j) {
          const NodeId v = slot_head[i + j];
          if constexpr (kUseDag) {
            if ((*dag_hops)[static_cast<std::size_t>(v)] !=
                (*dag_hops)[us] + 1) {
              continue;  // not on a hop-shortest path from the source
            }
          }
          const double nd = nd_buf[j];
          const auto vs = static_cast<std::size_t>(v);
          // Settled nodes ignore improvements: only a sub-ulp rounding
          // artifact at a bucket boundary can produce one, and dropping
          // it keeps every node single-settled.
          if (__builtin_expect(nd < dist[vs], 0) &&
              settled_stamp_[vs] != generation_) {
            if (dist[vs] == kInf) touched_.push_back(v);
            dist[vs] = nd;
            auto b = static_cast<std::uint64_t>(nd / width);
            if (b < cur) b = cur;  // boundary-rounding guard
            buckets_[b % num_buckets].push_back(v);
            ++queued;
          }
        }
        i += chunk;
      }
    }
    bucket.clear();
    ++cur;
  }
}

template <bool kUseDag, bool kRecordParents>
void DijkstraWorkspace::run_impl(const ArcGraph& arcs,
                                 const double* slot_length, NodeId src,
                                 const std::vector<int>* dag_hops,
                                 const NodeId* targets, int num_targets) {
  begin_run(arcs.num_nodes);
  int pending_targets = 0;
  for (int t = 0; t < num_targets; ++t) {
    const auto v = static_cast<std::size_t>(targets[t]);
    if (target_stamp_[v] != generation_) {
      target_stamp_[v] = generation_;
      ++pending_targets;
    }
  }
  const bool bounded = pending_targets > 0;

  const int* const first_out = arcs.first_out.data();
  const NodeId* const slot_head = arcs.slot_head.data();
  const int* const out_arc = arcs.out_arc.data();
  double* const dist = dist_.data();
  int* const parent = parent_.data();

  dist[src] = 0.0;
  parent[src] = -1;
  touched_.push_back(src);
  heap_[0] = make_entry(0.0, src);
  heap_pos_[static_cast<std::size_t>(src)] = 0;
  heap_size_ = 1;
  // Tentative distances for one node's out-slots, computed in a separate
  // pass so the compiler vectorizes the adds over the sequential length
  // stream; the scalar pass then only compares and (rarely) improves.
  double nd_buf[kRelaxChunk];
  while (heap_size_ > 0) {
    const NodeId u = heap_pop_min();
    if (bounded && target_stamp_[static_cast<std::size_t>(u)] == generation_) {
      if (--pending_targets == 0) return;  // all targets finalized
    }
    const double du = dist[u];
    int i = first_out[u];
    const int end = first_out[u + 1];
    while (i < end) {
      const int chunk = std::min(end - i, kRelaxChunk);
      for (int j = 0; j < chunk; ++j) nd_buf[j] = du + slot_length[i + j];
      for (int j = 0; j < chunk; ++j) {
        const NodeId v = slot_head[i + j];
        if constexpr (kUseDag) {
          if ((*dag_hops)[static_cast<std::size_t>(v)] !=
              (*dag_hops)[static_cast<std::size_t>(u)] + 1) {
            continue;  // not on a hop-shortest path from the source
          }
        }
        const double nd = nd_buf[j];
        if (__builtin_expect(nd < dist[v], 0)) {
          if constexpr (kRecordParents) parent[v] = out_arc[i + j];
          // First touch: +inf sentinel doubles as "not yet queued".
          if (dist[v] == kInf) {
            touched_.push_back(v);
            heap_pos_[static_cast<std::size_t>(v)] = -1;
          }
          heap_insert_or_decrease(v, nd);
        }
      }
      i += chunk;
    }
  }
}

int DijkstraWorkspace::parent_arc(NodeId v) const {
  return dist_[static_cast<std::size_t>(v)] == kInf
             ? -1
             : parent_[static_cast<std::size_t>(v)];
}

void DijkstraWorkspace::scale_distances(double factor) {
  for (NodeId v : touched_) dist_[static_cast<std::size_t>(v)] *= factor;
}

bool DijkstraWorkspace::extract_path(const ArcGraph& arcs, NodeId src,
                                     NodeId dst, std::vector<int>& path) const {
  path.clear();
  if (dist_[static_cast<std::size_t>(dst)] == kInf) return false;
  NodeId node = dst;
  while (node != src) {
    const int a = parent_arc(node);
    if (a < 0) return false;
    path.push_back(a);
    node = arcs.tail(a);
    if (static_cast<int>(path.size()) > arcs.num_nodes) return false;
  }
  return true;
}

void DijkstraWorkspace::heap_insert_or_decrease(NodeId v, double key) {
  dist_[static_cast<std::size_t>(v)] = key;
  int pos = heap_pos_[static_cast<std::size_t>(v)];
  if (pos < 0) {  // finalized nodes never re-enter: keys only decrease
    pos = heap_size_++;
  }
  sift_up(pos, make_entry(key, v));
}

NodeId DijkstraWorkspace::heap_pop_min() {
  const NodeId top = entry_node(heap_[0]);
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  --heap_size_;
  if (heap_size_ > 0) {
    sift_down(0, heap_[static_cast<std::size_t>(heap_size_)]);
  }
  return top;
}

void DijkstraWorkspace::sift_up(int pos, HeapEntry entry) {
  while (pos > 0) {
    const int parent = (pos - 1) / 4;
    const HeapEntry other = heap_[static_cast<std::size_t>(parent)];
    if (entry >= other) break;
    heap_[static_cast<std::size_t>(pos)] = other;
    heap_pos_[static_cast<std::size_t>(entry_node(other))] = pos;
    pos = parent;
  }
  heap_[static_cast<std::size_t>(pos)] = entry;
  heap_pos_[static_cast<std::size_t>(entry_node(entry))] = pos;
}

void DijkstraWorkspace::sift_down(int pos, HeapEntry entry) {
  const HeapEntry* const heap = heap_.data();
  while (true) {
    const int first_child = 4 * pos + 1;
    if (first_child >= heap_size_) break;
    const int last_child = std::min(first_child + 4, heap_size_);
    // Branch-free argmin over the (at most four) children: wide-integer
    // compares plus conditional moves, no data-dependent branches.
    int best = first_child;
    HeapEntry best_entry = heap[first_child];
    for (int c = first_child + 1; c < last_child; ++c) {
      const HeapEntry candidate = heap[c];
      const bool lt = candidate < best_entry;
      best = lt ? c : best;
      best_entry = lt ? candidate : best_entry;
    }
    if (best_entry >= entry) break;
    heap_[static_cast<std::size_t>(pos)] = best_entry;
    heap_pos_[static_cast<std::size_t>(entry_node(best_entry))] = pos;
    pos = best;
  }
  heap_[static_cast<std::size_t>(pos)] = entry;
  heap_pos_[static_cast<std::size_t>(entry_node(entry))] = pos;
}

void BfsWorkspace::begin_run(int num_nodes, NodeId src) {
  require(src >= 0 && src < num_nodes, "bfs source out of range");
  const auto n = static_cast<std::size_t>(num_nodes);
  last_num_nodes_ = n;
  if (dist_.size() < n) {
    dist_.resize(n);
    stamp_.resize(n, 0);
    queue_.resize(n);
  }
  if (generation_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(stamp_.begin(), stamp_.end(), 0);
    generation_ = 0;
  }
  ++generation_;
  dist_[static_cast<std::size_t>(src)] = 0;
  stamp_[static_cast<std::size_t>(src)] = generation_;
  queue_[0] = src;
}

void BfsWorkspace::run(const Graph& g, NodeId src) {
  run_custom(g.num_nodes(), src, [&g](NodeId u, auto&& emit) {
    for (const Adjacency& a : g.neighbors(u)) emit(a.to);
  });
}

void BfsWorkspace::export_distances(std::vector<int>& out) const {
  out.assign(last_num_nodes_, -1);
  for (std::size_t v = 0; v < last_num_nodes_; ++v) {
    if (stamp_[v] == generation_) out[v] = dist_[v];
  }
}

}  // namespace topo
