#include "graph/algorithms.h"

#include <algorithm>
#include <map>
#include <queue>

namespace topo {

std::vector<int> bfs_distances(const Graph& g, NodeId src) {
  require(src >= 0 && src < g.num_nodes(), "bfs source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> frontier;
  dist[static_cast<std::size_t>(src)] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Adjacency& a : g.neighbors(u)) {
      auto& d = dist[static_cast<std::size_t>(a.to)];
      if (d < 0) {
        d = dist[static_cast<std::size_t>(u)] + 1;
        frontier.push(a.to);
      }
    }
  }
  return dist;
}

std::vector<std::vector<int>> all_pairs_distances(const Graph& g) {
  std::vector<std::vector<int>> dist;
  dist.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) dist.push_back(bfs_distances(g, u));
  return dist;
}

std::vector<int> component_labels(const Graph& g) {
  std::vector<int> label(static_cast<std::size_t>(g.num_nodes()), -1);
  int next = 0;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (label[static_cast<std::size_t>(start)] >= 0) continue;
    std::queue<NodeId> frontier;
    label[static_cast<std::size_t>(start)] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const Adjacency& a : g.neighbors(u)) {
        auto& l = label[static_cast<std::size_t>(a.to)];
        if (l < 0) {
          l = next;
          frontier.push(a.to);
        }
      }
    }
    ++next;
  }
  return label;
}

int num_components(const Graph& g) {
  const auto labels = component_labels(g);
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  return max_label + 1;
}

bool is_connected(const Graph& g) {
  return g.num_nodes() <= 1 || num_components(g) == 1;
}

double average_shortest_path_length(const Graph& g) {
  require(g.num_nodes() >= 2, "ASPL requires at least two nodes");
  long long total = 0;
  const long long n = g.num_nodes();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto dist = bfs_distances(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == u) continue;
      require(dist[static_cast<std::size_t>(v)] >= 0,
              "ASPL requires a connected graph");
      total += dist[static_cast<std::size_t>(v)];
    }
  }
  return static_cast<double>(total) / static_cast<double>(n * (n - 1));
}

int diameter(const Graph& g) {
  require(g.num_nodes() >= 1, "diameter requires a non-empty graph");
  int best = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto dist = bfs_distances(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      require(dist[static_cast<std::size_t>(v)] >= 0,
              "diameter requires a connected graph");
      best = std::max(best, dist[static_cast<std::size_t>(v)]);
    }
  }
  return best;
}

double mean_pair_distance(const Graph& g,
                          const std::vector<std::pair<NodeId, NodeId>>& pairs,
                          const std::vector<double>* weights) {
  require(!pairs.empty(), "mean_pair_distance requires at least one pair");
  require(weights == nullptr || weights->size() == pairs.size(),
          "weights must match pairs");
  // Group by source so each BFS serves all pairs sharing that source.
  std::map<NodeId, std::vector<std::size_t>> by_source;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    by_source[pairs[i].first].push_back(i);
  }
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const auto& [src, indices] : by_source) {
    const auto dist = bfs_distances(g, src);
    for (std::size_t i : indices) {
      const NodeId dst = pairs[i].second;
      const double w = weights ? (*weights)[i] : 1.0;
      if (src == dst) {
        weight_total += w;
        continue;
      }
      const int d = dist[static_cast<std::size_t>(dst)];
      require(d >= 0, "mean_pair_distance: unreachable pair");
      weighted_sum += w * d;
      weight_total += w;
    }
  }
  require(weight_total > 0.0, "mean_pair_distance: zero total weight");
  return weighted_sum / weight_total;
}

}  // namespace topo
