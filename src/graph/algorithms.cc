#include "graph/algorithms.h"

#include <algorithm>
#include <numeric>

#include "graph/shortest_path.h"
#include "util/parallel.h"

namespace topo {

std::vector<int> bfs_distances(const Graph& g, NodeId src) {
  BfsWorkspace ws;
  ws.run(g, src);
  std::vector<int> dist;
  ws.export_distances(dist);
  return dist;
}

std::vector<std::vector<int>> all_pairs_distances(const Graph& g) {
  std::vector<std::vector<int>> dist(static_cast<std::size_t>(g.num_nodes()));
  std::vector<BfsWorkspace> ws(static_cast<std::size_t>(parallel_slots()));
  parallel_for_slots(g.num_nodes(), [&](int slot, int u) {
    BfsWorkspace& w = ws[static_cast<std::size_t>(slot)];
    w.run(g, u);
    w.export_distances(dist[static_cast<std::size_t>(u)]);
  });
  return dist;
}

std::vector<int> component_labels(const Graph& g) {
  // One linear flood-fill over the label array itself; stays O(n + m) even
  // for graphs with many components, unlike per-component BFS exports.
  std::vector<int> label(static_cast<std::size_t>(g.num_nodes()), -1);
  std::vector<NodeId> stack;
  int next = 0;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (label[static_cast<std::size_t>(start)] >= 0) continue;
    label[static_cast<std::size_t>(start)] = next;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const Adjacency& a : g.neighbors(u)) {
        auto& l = label[static_cast<std::size_t>(a.to)];
        if (l < 0) {
          l = next;
          stack.push_back(a.to);
        }
      }
    }
    ++next;
  }
  return label;
}

int num_components(const Graph& g) {
  const auto labels = component_labels(g);
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  return max_label + 1;
}

bool is_connected(const Graph& g) {
  return g.num_nodes() <= 1 || num_components(g) == 1;
}

double average_shortest_path_length(const Graph& g) {
  require(g.num_nodes() >= 2, "ASPL requires at least two nodes");
  const long long n = g.num_nodes();
  // Per-source integer partial sums: integer addition is associative, so
  // the parallel sweep is deterministic for any thread count.
  std::vector<long long> per_source(static_cast<std::size_t>(g.num_nodes()), 0);
  std::vector<BfsWorkspace> ws(static_cast<std::size_t>(parallel_slots()));
  parallel_for_slots(g.num_nodes(), [&](int slot, int u) {
    BfsWorkspace& w = ws[static_cast<std::size_t>(slot)];
    w.run(g, u);
    long long sum = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == u) continue;
      require(w.dist(v) >= 0, "ASPL requires a connected graph");
      sum += w.dist(v);
    }
    per_source[static_cast<std::size_t>(u)] = sum;
  });
  const long long total =
      std::accumulate(per_source.begin(), per_source.end(), 0LL);
  return static_cast<double>(total) / static_cast<double>(n * (n - 1));
}

int diameter(const Graph& g) {
  require(g.num_nodes() >= 1, "diameter requires a non-empty graph");
  std::vector<int> per_source(static_cast<std::size_t>(g.num_nodes()), 0);
  std::vector<BfsWorkspace> ws(static_cast<std::size_t>(parallel_slots()));
  parallel_for_slots(g.num_nodes(), [&](int slot, int u) {
    BfsWorkspace& w = ws[static_cast<std::size_t>(slot)];
    w.run(g, u);
    int ecc = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      require(w.dist(v) >= 0, "diameter requires a connected graph");
      ecc = std::max(ecc, w.dist(v));
    }
    per_source[static_cast<std::size_t>(u)] = ecc;
  });
  int best = 0;
  for (int ecc : per_source) best = std::max(best, ecc);
  return best;
}

double mean_pair_distance(const Graph& g,
                          const std::vector<std::pair<NodeId, NodeId>>& pairs,
                          const std::vector<double>* weights) {
  require(!pairs.empty(), "mean_pair_distance requires at least one pair");
  require(weights == nullptr || weights->size() == pairs.size(),
          "weights must match pairs");
  // Group pair indices by source (sorted, so each BFS serves all pairs
  // sharing that source) without the old per-source std::map.
  std::vector<std::size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pairs[a].first < pairs[b].first;
  });
  std::vector<std::size_t> group_start;
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (k == 0 || pairs[order[k]].first != pairs[order[k - 1]].first) {
      group_start.push_back(k);
    }
  }
  group_start.push_back(order.size());

  // One BFS per distinct source, in parallel; each pair's weighted term is
  // stored at its sorted position and reduced serially afterwards, in the
  // same source-ascending order as the old serial loop.
  std::vector<double> terms(pairs.size(), 0.0);
  std::vector<double> term_weights(pairs.size(), 0.0);
  std::vector<BfsWorkspace> ws(static_cast<std::size_t>(parallel_slots()));
  const int num_groups = static_cast<int>(group_start.size()) - 1;
  parallel_for_slots(num_groups, [&](int slot, int gi) {
    const auto begin = group_start[static_cast<std::size_t>(gi)];
    const auto end = group_start[static_cast<std::size_t>(gi) + 1];
    const NodeId src = pairs[order[begin]].first;
    BfsWorkspace& w = ws[static_cast<std::size_t>(slot)];
    w.run(g, src);
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t i = order[k];
      const NodeId dst = pairs[i].second;
      const double weight = weights ? (*weights)[i] : 1.0;
      term_weights[k] = weight;
      if (src == dst) {
        terms[k] = 0.0;
        continue;
      }
      const int d = w.dist(dst);
      require(d >= 0, "mean_pair_distance: unreachable pair");
      terms[k] = weight * d;
    }
  });
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (std::size_t k = 0; k < terms.size(); ++k) {
    weighted_sum += terms[k];
    weight_total += term_weights[k];
  }
  require(weight_total > 0.0, "mean_pair_distance: zero total weight");
  return weighted_sum / weight_total;
}

}  // namespace topo
