#include "util/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/cleanup.h"
#include "util/error.h"

namespace topo {

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const SpawnOptions& options) {
  require(!argv.empty(), "Subprocess::spawn requires a non-empty argv");
  std::vector<char*> child_argv;
  child_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    child_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  child_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  require(pid >= 0, "fork failed spawning " + argv[0]);
  if (pid == 0) {
    // Child. Only exec-or-_exit from here: no exceptions, no streams.
    for (const auto& [name, value] : options.env) {
      ::setenv(name.c_str(), value.c_str(), 1);
    }
    if (!options.log_path.empty()) {
      const int fd = ::open(options.log_path.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) ::close(fd);
      }
    }
    ::execvp(child_argv[0], child_argv.data());
    ::_exit(127);  // exec failed; 127 is the shell's "command not found"
  }

  Subprocess child;
  child.pid_ = pid;
  child.cleanup_slot_ = register_child_pid(pid);
  return child;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_),
      reaped_(other.reaped_),
      last_(other.last_),
      cleanup_slot_(other.cleanup_slot_) {
  other.pid_ = -1;
  other.cleanup_slot_ = -1;
  other.reaped_ = true;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (cleanup_slot_ >= 0) unregister_child_pid(cleanup_slot_);
    pid_ = other.pid_;
    reaped_ = other.reaped_;
    last_ = other.last_;
    cleanup_slot_ = other.cleanup_slot_;
    other.pid_ = -1;
    other.cleanup_slot_ = -1;
    other.reaped_ = true;
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (cleanup_slot_ >= 0) unregister_child_pid(cleanup_slot_);
}

namespace {

Subprocess::Status decode_status(int raw) {
  Subprocess::Status status;
  if (WIFEXITED(raw)) {
    status.state = Subprocess::Status::State::kExited;
    status.exit_code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    status.state = Subprocess::Status::State::kSignaled;
    status.term_signal = WTERMSIG(raw);
  }
  return status;
}

}  // namespace

Subprocess::Status Subprocess::poll() {
  if (reaped_) return last_;
  int raw = 0;
  const pid_t result = ::waitpid(pid_, &raw, WNOHANG);
  if (result == 0) return Status{};  // still running
  if (result == pid_) {
    const Status status = decode_status(raw);
    if (!status.running()) {
      last_ = status;
      reaped_ = true;
      if (cleanup_slot_ >= 0) {
        unregister_child_pid(cleanup_slot_);
        cleanup_slot_ = -1;
      }
      return last_;
    }
    return Status{};  // stopped/continued: not terminal, keep polling
  }
  // waitpid error (ECHILD after an external reap): report a synthetic
  // clean exit rather than spinning forever on an unreapable pid.
  last_.state = Status::State::kExited;
  last_.exit_code = 0;
  reaped_ = true;
  if (cleanup_slot_ >= 0) {
    unregister_child_pid(cleanup_slot_);
    cleanup_slot_ = -1;
  }
  return last_;
}

Subprocess::Status Subprocess::wait() {
  while (true) {
    const Status status = poll();
    if (!status.running()) return status;
    // Blocking reap without WNOHANG would race poll's bookkeeping;
    // a short sleep keeps this simple and the orchestrator only ever
    // waits on processes it just signaled.
    ::usleep(10 * 1000);
  }
}

void Subprocess::send_signal(int sig) {
  if (!reaped_ && pid_ > 0) ::kill(pid_, sig);
}

}  // namespace topo
