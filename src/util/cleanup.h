// Async-signal-safe cleanup for SIGINT/SIGTERM.
//
// Cache stores publish through write-to-temp-then-rename; a run killed
// between the two leaks `*.json.tmp.*` files until some later cache open
// sweeps them (cache.cc's stale-temp pass, which waits out a clock-skew
// margin). Interactive interruption deserves better: the writer itself
// knows exactly which temps are in flight. This module keeps that set in
// a fixed-size lock-free table that a signal handler can walk — every
// operation the handler performs (atomic loads, unlink, kill, _exit) is
// async-signal-safe.
//
// The same handler tears down supervised child processes: the
// orchestrator registers each live worker pid, and an interrupted
// supervisor SIGTERMs them (each worker's own handler then cleans its
// temps) before exiting with the shell convention 128+sig.
#ifndef TOPODESIGN_UTIL_CLEANUP_H
#define TOPODESIGN_UTIL_CLEANUP_H

#include <sys/types.h>

#include <string>

namespace topo {

/// Registers `path` for unlink-on-signal. Returns a slot token to pass
/// to unregister_cleanup_path, or -1 when the table is full (the caller
/// simply proceeds unprotected — cleanup is best-effort). Thread-safe.
int register_cleanup_path(const std::string& path);

/// Releases a slot returned by register_cleanup_path (no-op for -1).
void unregister_cleanup_path(int slot);

/// Registers a supervised child to SIGTERM on signal. Returns a slot
/// token for unregister_child_pid, or -1 when the table is full.
int register_child_pid(pid_t pid);

/// Releases a slot returned by register_child_pid (no-op for -1).
void unregister_child_pid(int slot);

/// Installs SIGINT/SIGTERM handlers that SIGTERM registered children,
/// unlink registered temp paths, and _exit(128+sig). Idempotent; call
/// once from main() before any cache store can run.
void install_signal_cleanup();

}  // namespace topo

#endif  // TOPODESIGN_UTIL_CLEANUP_H
