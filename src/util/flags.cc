#include "util/flags.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/error.h"

namespace topo {

Flags::Flags(int argc, const char* const* argv, std::vector<std::string> known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    require(arg.rfind("--", 0) == 0, "flags must start with --: " + arg);
    arg = arg.substr(2);
    std::string name = arg;
    std::string value = "1";
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    require(std::find(known.begin(), known.end(), name) != known.end(),
            "unknown flag: --" + name);
    values_[name] = value;
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

int Flags::get_int(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atoi(it->second.c_str());
}

std::uint64_t Flags::get_uint64(const std::string& name,
                                std::uint64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  require(!text.empty() && text[0] != '-',
          "--" + name + " must be a non-negative integer: " + text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  require(errno == 0 && end != nullptr && *end == '\0',
          "--" + name + " is not a valid 64-bit integer: " + text);
  return static_cast<std::uint64_t>(value);
}

double Flags::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Flags bench_flags(int argc, const char* const* argv) {
  return Flags(argc, argv, {"runs", "eps", "seed", "csv", "full"});
}

}  // namespace topo
