#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace topo {
namespace {

// True while the current thread is executing inside a parallel loop; used
// to run nested loops inline instead of deadlocking the shared pool.
thread_local bool inside_parallel_region = false;

// Explicit size request (set_parallel_slots) and whether the size has
// been resolved; the request must land before the first parallel_slots()
// call to take effect.
std::atomic<int> requested_slots{0};
std::atomic<bool> slots_resolved{false};

int resolve_slots() {
  if (const int requested = requested_slots.load(std::memory_order_acquire);
      requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("TOPOBENCH_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// One batch of loop iterations shared between the caller and the pool.
struct Batch {
  const std::function<void(int, int)>* fn = nullptr;
  std::atomic<int> next{0};
  int n = 0;
  std::atomic<int> active_workers{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::mutex error_mutex;
  std::exception_ptr error;

  void work(int slot) {
    inside_parallel_region = true;
    while (true) {
      const int item = next.fetch_add(1, std::memory_order_relaxed);
      if (item >= n) break;
      try {
        (*fn)(slot, item);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
    inside_parallel_region = false;
  }

  void worker_done() {
    // The decrement happens under done_mutex: the waiting caller checks the
    // counter under the same mutex, so it cannot observe zero (and destroy
    // this stack-allocated Batch) until the final worker has released the
    // lock and will never touch the Batch again. Decrementing outside the
    // lock would let a spurious wakeup race the last worker's notify.
    std::lock_guard<std::mutex> lock(done_mutex);
    if (active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_cv.notify_all();
    }
  }
};

// Long-lived workers parked on a condition variable; each loop publishes a
// Batch and wakes them. Workers outlive every loop and exit at process
// teardown.
class Pool {
 public:
  static Pool& instance() {
    // Sized from the same cached value parallel_slots() reports, so helper
    // slot ids always stay inside [0, parallel_slots()).
    static Pool* pool = new Pool(parallel_slots() - 1);  // leaked: lives forever
    return *pool;
  }

  int helper_threads() const { return static_cast<int>(threads_.size()); }

  // Makes `batch` available to every helper; returns immediately.
  void publish(Batch* batch) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch_ = batch;
      ++batch_version_;
    }
    cv_.notify_all();
  }

  void retire() {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = nullptr;
  }

 private:
  explicit Pool(int num_threads) {
    threads_.reserve(static_cast<std::size_t>(num_threads < 0 ? 0 : num_threads));
    for (int i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this, slot = i + 1] { worker_loop(slot); });
      threads_.back().detach();
    }
  }

  void worker_loop(int slot) {
    std::uint64_t seen_version = 0;
    while (true) {
      Batch* batch = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] {
          return batch_ != nullptr && batch_version_ != seen_version;
        });
        seen_version = batch_version_;
        batch = batch_;
        batch->active_workers.fetch_add(1, std::memory_order_acq_rel);
      }
      batch->work(slot);
      batch->worker_done();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  Batch* batch_ = nullptr;
  std::uint64_t batch_version_ = 0;
};

}  // namespace

int parallel_slots() {
  static const int slots = resolve_slots();
  slots_resolved.store(true, std::memory_order_release);
  return slots;
}

bool parallel_slots_resolved() {
  return slots_resolved.load(std::memory_order_acquire);
}

bool set_parallel_slots(int n) {
  if (n < 1) return false;
  requested_slots.store(n, std::memory_order_release);
  // Resolving here makes the outcome definite for the caller: either the
  // request just became the pool size, or the pool was already sized and
  // the request only "succeeds" when it matches.
  return parallel_slots() == n;
}

void parallel_for_slots(int n,
                        const std::function<void(int slot, int item)>& fn) {
  if (n <= 0) return;
  if (inside_parallel_region || n == 1 || parallel_slots() == 1) {
    // Inline: nested region, trivial loop, or single-core machine. Slot 0
    // is reserved for the calling thread, so nested serial execution never
    // collides with an outer loop's slot-indexed scratch.
    for (int item = 0; item < n; ++item) fn(0, item);
    return;
  }

  Pool& pool = Pool::instance();
  Batch batch;
  const std::function<void(int, int)> call = fn;
  batch.fn = &call;
  batch.n = n;
  // The caller counts as an active worker so the completion wait below
  // covers it joining the loop.
  batch.active_workers.store(1, std::memory_order_relaxed);
  pool.publish(&batch);
  batch.work(/*slot=*/0);
  pool.retire();  // no new helpers may join once the caller is done claiming
  batch.worker_done();
  {
    std::unique_lock<std::mutex> lock(batch.done_mutex);
    batch.done_cv.wait(lock, [&] {
      return batch.active_workers.load(std::memory_order_acquire) == 0;
    });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void parallel_for(int n, const std::function<void(int item)>& fn) {
  parallel_for_slots(n, [&fn](int /*slot*/, int item) { fn(item); });
}

}  // namespace topo
