// Minimal JSON scalar formatting shared by the bench binaries and the
// scenario engine's machine-readable output.
//
// Only emission lives here (the library never needs to parse JSON);
// doubles keep round-trip precision and non-finite values become null
// because JSON has no inf/nan.
#ifndef TOPODESIGN_UTIL_JSON_H
#define TOPODESIGN_UTIL_JSON_H

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

namespace topo {

/// Round-trip-precise JSON number; null for inf/nan.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

/// JSON string literal with the mandatory escapes.
inline std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace topo

#endif  // TOPODESIGN_UTIL_JSON_H
