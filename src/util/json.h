// Minimal JSON support shared by the bench binaries, the scenario engine's
// machine-readable output, the spec-file front end, and the result cache.
//
// Emission: scalar formatting helpers; doubles use shortest-round-trip
// formatting (the shortest decimal string strtod maps back to the exact
// bits), so emit -> parse -> emit is byte-identical and cached numbers
// reload exactly. Non-finite values become null because JSON has no
// inf/nan.
//
// Parsing: a strict recursive-descent parser (objects, arrays, strings,
// numbers, bools, null) that rejects trailing input, duplicate object
// keys, and malformed escapes with a byte offset — shared by the golden
// regression layer, spec_io, and the cache loader so there is exactly one
// JSON reader in the tree.
#ifndef TOPODESIGN_UTIL_JSON_H
#define TOPODESIGN_UTIL_JSON_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace topo {

/// Shortest JSON number that parses back to exactly `v`; null for inf/nan.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// JSON string literal with the mandatory escapes.
inline std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

/// One parsed JSON node. Object members keep source order (canonical
/// re-serialization and error messages want it); lookup is linear, which
/// is fine at the document sizes this library reads.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;                ///< Kind::kString payload.
  std::vector<JsonValue> items;    ///< Kind::kArray elements.
  std::vector<std::pair<std::string, JsonValue>> members;  ///< Kind::kObject.

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }

  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Member lookup; raises InvalidArgument naming `key` when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
};

/// Parses a complete JSON document. Raises InvalidArgument with a byte
/// offset on malformed input, trailing characters, or duplicate keys.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace topo

#endif  // TOPODESIGN_UTIL_JSON_H
