// Aligned-column table and CSV emission for benchmark binaries.
//
// Every figure-reproduction bench prints its series through TablePrinter so
// output is uniform: a header block naming the experiment, aligned columns,
// and optionally machine-readable CSV.
#ifndef TOPODESIGN_UTIL_TABLE_H
#define TOPODESIGN_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace topo {

/// One table cell: text, integer, or floating point value.
using Cell = std::variant<std::string, long long, double>;

/// Collects rows and prints them with aligned columns (or as CSV).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> row);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Column headers, in display order.
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }

  /// All data rows, in insertion order (used by the machine-readable
  /// scenario output and the golden-regression tests).
  [[nodiscard]] const std::vector<std::vector<Cell>>& rows() const {
    return rows_;
  }

  /// Prints with space-aligned columns.
  void print(std::ostream& os) const;

  /// Prints comma-separated values (header row first).
  void print_csv(std::ostream& os) const;

  /// Convenience: print() or print_csv() depending on `csv`.
  void emit(std::ostream& os, bool csv) const {
    if (csv) print_csv(os); else print(os);
  }

  /// Number of decimal places for double cells (default 4).
  void set_precision(int digits) { precision_ = digits; }

 private:
  [[nodiscard]] std::string render(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

/// Prints a banner naming a reproduced figure, e.g.
/// "== Figure 1(a): throughput vs degree (N=40) ==".
void print_banner(std::ostream& os, const std::string& title);

}  // namespace topo

#endif  // TOPODESIGN_UTIL_TABLE_H
