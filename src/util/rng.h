// Deterministic random number generation.
//
// Every randomized component in the library takes an explicit 64-bit seed so
// experiments are exactly reproducible. Rng wraps std::mt19937_64 with the
// handful of draws we need, plus deterministic sub-seed derivation so a
// master experiment seed can fan out to independent per-run streams.
#ifndef TOPODESIGN_UTIL_RNG_H
#define TOPODESIGN_UTIL_RNG_H

#include <cstdint>
#include <random>
#include <vector>

#include "util/error.h"

namespace topo {

/// Deterministic pseudo-random generator used throughout the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    require(lo <= hi, "Rng::uniform_int requires lo <= hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    require(n > 0, "Rng::index requires n > 0");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform real in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    require(!v.empty(), "Rng::pick requires a non-empty vector");
    return v[index(v.size())];
  }

  /// Derives a deterministic, well-separated sub-seed. Independent streams
  /// for run i of experiment `seed` are obtained as derive_seed(seed, i).
  static std::uint64_t derive_seed(std::uint64_t master, std::uint64_t salt) {
    // SplitMix64 finalizer over (master, salt); good avalanche behaviour.
    std::uint64_t z = master + 0x9E3779B97F4A7C15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Access to the underlying engine for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace topo

#endif  // TOPODESIGN_UTIL_RNG_H
