#include "util/fault.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/exit_codes.h"

namespace topo::fault {
namespace {

enum class Kind { kNone, kCrashAfterCells, kStallAfterCells, kCorruptStore };

struct Config {
  Kind kind = Kind::kNone;
  int threshold = 0;
};

// Parses TOPOBENCH_FAULT once. Malformed values are a hard usage error:
// a chaos run whose fault silently failed to arm would assert nothing.
Config parse_fault_env() {
  const char* raw = std::getenv(kFaultEnvVar);
  if (raw == nullptr || raw[0] == '\0') return {};
  const std::string text = raw;
  const auto with_threshold = [&](const std::string& prefix, Kind kind) {
    Config config;
    if (text.rfind(prefix, 0) != 0) return config;
    const std::string count = text.substr(prefix.size());
    char* end = nullptr;
    const long value = std::strtol(count.c_str(), &end, 10);
    if (count.empty() || *end != '\0' || value < 1) return config;
    config.kind = kind;
    config.threshold = static_cast<int>(value);
    return config;
  };
  if (text == "corrupt_store") return {Kind::kCorruptStore, 0};
  Config config = with_threshold("crash_after_cells:", Kind::kCrashAfterCells);
  if (config.kind == Kind::kNone) {
    config = with_threshold("stall_after_cells:", Kind::kStallAfterCells);
  }
  if (config.kind == Kind::kNone) {
    std::fprintf(stderr,
                 "error: %s=%s is not a known fault (want "
                 "crash_after_cells:M, stall_after_cells:M, or "
                 "corrupt_store)\n",
                 kFaultEnvVar, raw);
    std::exit(kExitUsage);
  }
  return config;
}

const Config& config() {
  static const Config parsed = parse_fault_env();
  return parsed;
}

std::atomic<int>& stored_count() {
  static std::atomic<int> count{0};
  return count;
}

std::atomic<int>& evaluated_count() {
  static std::atomic<int> count{0};
  return count;
}

std::atomic<bool>& stalled() {
  static std::atomic<bool> flag{false};
  return flag;
}

[[noreturn]] void park_forever() {
  for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
}

}  // namespace

void on_cell_stored() {
  if (config().kind != Kind::kCrashAfterCells) return;
  if (stored_count().fetch_add(1) + 1 >= config().threshold) {
    // SIGKILL to self: unhandleable, no destructors, no atexit — the
    // truest crash available without pulling the power cord. The just-
    // published cell survives in the cache; nothing else does.
    ::kill(::getpid(), SIGKILL);
    park_forever();  // unreachable; keeps the compiler honest
  }
}

void on_cell_evaluated() {
  if (config().kind != Kind::kStallAfterCells) return;
  if (evaluated_count().fetch_add(1) + 1 >= config().threshold) {
    stalled().store(true);
  }
  // Every evaluation thread parks once the threshold is crossed (not
  // just the crossing thread): within one pool sweep at most a few
  // in-flight cells slip through, then all progress — and with it the
  // heartbeat — stops for good.
  if (stalled().load()) park_forever();
}

std::string maybe_corrupt_payload(std::string payload) {
  if (config().kind != Kind::kCorruptStore || payload.empty()) {
    return payload;
  }
  // Flip a digit inside the payload: the stored checksum (computed by
  // the caller over the ORIGINAL payload) can no longer verify, and the
  // file still parses as JSON often enough to also exercise the schema/
  // checksum paths rather than only the parser.
  for (char& c : payload) {
    if (c >= '0' && c <= '8') {
      ++c;
      return payload;
    }
  }
  payload[payload.size() / 2] = '#';
  return payload;
}

bool fault_armed() { return config().kind != Kind::kNone; }

}  // namespace topo::fault
