#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace topo {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stdev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return s;
}

double mean_of(const std::vector<double>& values) {
  return summarize(values).mean;
}

double relative_gap(double a, double b, double eps) {
  const double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

}  // namespace topo
