#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace topo {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stdev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return s;
}

double mean_of(const std::vector<double>& values) {
  return summarize(values).mean;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double n = static_cast<double>(sorted.size());
  const double raw = std::floor(q * n + 0.5);
  const std::size_t idx = static_cast<std::size_t>(
      std::clamp(raw, 0.0, n - 1.0));
  return sorted[idx];
}

double relative_gap(double a, double b, double eps) {
  const double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

}  // namespace topo
