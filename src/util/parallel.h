// Minimal thread pool and parallel-for used by the solver and the
// experiment sweeps.
//
// Design constraints, in order:
//  * determinism — callers must be able to produce bit-identical results
//    regardless of thread count, so parallel_for only hands out item
//    indices; any reduction is the caller's job (store per-item, reduce
//    serially);
//  * no oversubscription — one process-wide pool, sized once from
//    TOPOBENCH_THREADS or std::thread::hardware_concurrency();
//  * safe nesting — a parallel_for issued from inside a pool worker runs
//    inline on the calling thread instead of deadlocking the pool.
#ifndef TOPODESIGN_UTIL_PARALLEL_H
#define TOPODESIGN_UTIL_PARALLEL_H

#include <functional>

namespace topo {

/// Number of worker slots parallel loops may use, including the calling
/// thread: >= 1. Resolved once per process: an explicit
/// set_parallel_slots request wins, else TOPOBENCH_THREADS (if set and
/// positive), else hardware_concurrency.
[[nodiscard]] int parallel_slots();

/// True once the pool size has been resolved (parallel_slots() was
/// called, directly or by a parallel region). After that point a
/// different size can no longer take effect.
[[nodiscard]] bool parallel_slots_resolved();

/// Requests the pool size explicitly (e.g. from a --threads flag),
/// overriding TOPOBENCH_THREADS. Returns true when the pool will run
/// (or already runs) with exactly `n` slots; false when `n < 1` or the
/// size was already resolved to a different value — callers that must
/// honor a user-visible flag should fail loudly on false instead of
/// silently running with the wrong width.
bool set_parallel_slots(int n);

/// Runs fn(item) for every item in [0, n), distributing items over the
/// shared pool plus the calling thread; blocks until all complete. Items
/// are claimed dynamically, so fn must not depend on execution order.
/// The first exception thrown by any fn is rethrown on the caller after
/// all workers drain. Nested calls run serially on the caller.
///
/// The pool serves one top-level loop at a time: if two unrelated user
/// threads issue top-level loops concurrently, both complete correctly,
/// but the loop that loses the pool may degrade to running entirely on
/// its calling thread. The library itself only issues top-level loops
/// from one thread.
void parallel_for(int n, const std::function<void(int item)>& fn);

/// As parallel_for, but also passes a worker slot id in
/// [0, parallel_slots()): at any moment each slot runs at most one fn, so
/// slot-indexed scratch (e.g. one DijkstraWorkspace per slot) is safe.
void parallel_for_slots(int n,
                        const std::function<void(int slot, int item)>& fn);

}  // namespace topo

#endif  // TOPODESIGN_UTIL_PARALLEL_H
