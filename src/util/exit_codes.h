// Process exit-code taxonomy shared by the CLI and the orchestrator.
//
// One header so every surface — `topobench`, the thin bench binaries,
// and the orchestrator supervising shard workers — means the same thing
// by the same code, and scripts/CI can branch on outcomes instead of
// grepping stderr:
//   0  success
//   2  usage error / InvalidArgument (bad flags, malformed spec, unknown
//      scenario) — the request itself was wrong, retrying it verbatim
//      cannot help
//   3  partial results: the run finished degraded (a sweep stripe
//      exhausted its retry budget; output holds the complete points plus
//      a missing-cell manifest) — retrying MAY help
//   4  internal error (I/O failure writing requested output, unexpected
//      exception) — neither the user's fault nor a clean partial result
//   128+sig  terminated by signal `sig` (the shell convention; the
//      SIGINT/SIGTERM cleanup handler exits this way after removing
//      in-flight temp files)
#ifndef TOPODESIGN_UTIL_EXIT_CODES_H
#define TOPODESIGN_UTIL_EXIT_CODES_H

namespace topo {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitPartial = 3;
inline constexpr int kExitInternal = 4;

/// Shell-convention exit code for death by signal `sig`.
[[nodiscard]] inline constexpr int exit_code_for_signal(int sig) {
  return 128 + sig;
}

}  // namespace topo

#endif  // TOPODESIGN_UTIL_EXIT_CODES_H
