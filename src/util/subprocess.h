// Minimal fork/exec/poll wrapper for supervised local child processes.
//
// Just enough process control for the sweep orchestrator: spawn an argv
// with extra environment variables and redirected stdio, poll its status
// without blocking, and escalate termination. POSIX-only, like the rest
// of the build (the cache layer already uses unistd).
#ifndef TOPODESIGN_UTIL_SUBPROCESS_H
#define TOPODESIGN_UTIL_SUBPROCESS_H

#include <sys/types.h>

#include <string>
#include <utility>
#include <vector>

namespace topo {

/// Spawn-time options for a child process.
struct SpawnOptions {
  /// Extra environment variables set in the child (on top of the
  /// inherited environment).
  std::vector<std::pair<std::string, std::string>> env;
  /// Redirect the child's stdout/stderr to this file (append; both
  /// streams share it so a worker's log interleaves naturally). Empty
  /// keeps the parent's streams.
  std::string log_path;
};

/// One spawned child process.
class Subprocess {
 public:
  /// What poll()/wait() learned about the child.
  struct Status {
    enum class State { kRunning, kExited, kSignaled };
    State state = State::kRunning;
    int exit_code = 0;    ///< Valid when kExited.
    int term_signal = 0;  ///< Valid when kSignaled.

    [[nodiscard]] bool running() const { return state == State::kRunning; }
    /// True for a clean zero exit.
    [[nodiscard]] bool ok() const {
      return state == State::kExited && exit_code == 0;
    }
  };

  /// Forks and execs `argv` (argv[0] is the program; PATH is searched).
  /// Raises InvalidArgument when argv is empty or the fork fails. An
  /// exec failure surfaces as the child exiting 127.
  [[nodiscard]] static Subprocess spawn(const std::vector<std::string>& argv,
                                        const SpawnOptions& options = {});

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  /// A still-running child is NOT killed on destruction (the orchestrator
  /// owns escalation policy); it is detached and eventually reaped by
  /// init. Destroying a finished child is a no-op.
  ~Subprocess();

  /// Non-blocking status check; remembers a terminal status once seen
  /// (waitpid reaps, so asking twice would otherwise fail).
  Status poll();

  /// Blocks until the child terminates; returns the terminal status.
  Status wait();

  /// Sends `sig` (e.g. SIGTERM, SIGKILL) to the child; no-op once the
  /// child has been reaped.
  void send_signal(int sig);

  [[nodiscard]] pid_t pid() const { return pid_; }

 private:
  Subprocess() = default;

  pid_t pid_ = -1;
  bool reaped_ = false;
  Status last_;
  int cleanup_slot_ = -1;  ///< cleanup.h child registration.
};

}  // namespace topo

#endif  // TOPODESIGN_UTIL_SUBPROCESS_H
