// Deterministic fault injection for robustness tests and CI chaos jobs.
//
// The `TOPOBENCH_FAULT` environment variable arms exactly one fault,
// honored at named points in the sweep/cache hot path. The hooks are
// compiled in unconditionally but reduce to one atomic load (kind ==
// kNone) when the variable is unset, so production runs pay nothing and
// tests exercise the SAME binary they ship.
//
// Supported values:
//   crash_after_cells:M   after the M-th cache-cell store completes,
//                         deliver SIGKILL to self — a crash-consistent
//                         death (no destructors, no atexit), exactly the
//                         worker failure the orchestrator must survive
//   stall_after_cells:M   after the M-th evaluated cell, every evaluation
//                         thread parks forever: the process stays alive
//                         but its progress heartbeat goes silent, which
//                         is the hang the --worker-timeout reaper detects
//   corrupt_store         every cache-cell store publishes a file whose
//                         checksum cannot verify (payload bytes mangled),
//                         driving the loader's quarantine path
//
// A malformed TOPOBENCH_FAULT value fails loudly (stderr + exit 2): a
// chaos test whose fault never armed would pass vacuously.
#ifndef TOPODESIGN_UTIL_FAULT_H
#define TOPODESIGN_UTIL_FAULT_H

#include <string>

namespace topo::fault {

/// Environment variable naming the armed fault.
inline constexpr const char* kFaultEnvVar = "TOPOBENCH_FAULT";

/// Named point: one cache-cell store has been fully published (cache.cc).
/// Under crash_after_cells:M the M-th call SIGKILLs the process.
void on_cell_stored();

/// Named point: one sweep cell finished evaluating (sweep.cc). Under
/// stall_after_cells:M the M-th and every later call parks the calling
/// thread forever (heartbeats stop; the process never exits on its own).
void on_cell_evaluated();

/// Named point: a cache store is about to write `payload` (cache.cc).
/// Under corrupt_store the returned payload is mangled so the published
/// file fails checksum verification; otherwise returns it unchanged.
[[nodiscard]] std::string maybe_corrupt_payload(std::string payload);

/// True when any fault is armed (tests use this to assert arming).
[[nodiscard]] bool fault_armed();

}  // namespace topo::fault

#endif  // TOPODESIGN_UTIL_FAULT_H
