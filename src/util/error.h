// Error types shared across the library.
//
// All precondition violations and unsatisfiable requests (e.g. asking for a
// random regular graph with an odd degree sum) raise topo::Error so callers
// can distinguish library failures from std exceptions.
#ifndef TOPODESIGN_UTIL_ERROR_H
#define TOPODESIGN_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace topo {

/// Base exception for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a function argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when a randomized construction cannot satisfy its constraints
/// (e.g. graphicality, connectivity) after the allowed number of retries.
class ConstructionFailure : public Error {
 public:
  explicit ConstructionFailure(const std::string& what) : Error(what) {}
};

/// Raised when a solver cannot produce a valid result (infeasible,
/// unbounded, or iteration limit reached).
class SolverFailure : public Error {
 public:
  explicit SolverFailure(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_invalid(const std::string& what) {
  throw InvalidArgument(what);
}
}  // namespace detail

/// Checks a precondition, raising InvalidArgument with `msg` on failure.
/// A function, not a macro, per the style guide; call sites read as
/// `require(k >= 0, "k must be non-negative")`.
inline void require(bool condition, const std::string& msg) {
  if (!condition) detail::raise_invalid(msg);
}

/// Literal overload: defers std::string construction to the failure
/// path. Without it every satisfied check materializes (and frees) a
/// heap string from the literal — measurable in per-event hot loops
/// like the packet simulator's scheduler.
inline void require(bool condition, const char* msg) {
  if (!condition) detail::raise_invalid(msg);
}

}  // namespace topo

#endif  // TOPODESIGN_UTIL_ERROR_H
