// Minimal command-line flag parsing for bench and example binaries.
//
// Supports "--name value" and "--name=value" forms plus boolean switches.
// Unknown flags raise InvalidArgument so typos do not silently change an
// experiment's parameters.
#ifndef TOPODESIGN_UTIL_FLAGS_H
#define TOPODESIGN_UTIL_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace topo {

/// Parsed command-line flags for experiment binaries.
class Flags {
 public:
  /// Parses argv. `known` lists accepted flag names (without "--").
  Flags(int argc, const char* const* argv, std::vector<std::string> known);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  /// Full-range unsigned 64-bit parse (for seeds); raises InvalidArgument
  /// on negative, non-numeric, or out-of-range values instead of silently
  /// wrapping.
  [[nodiscard]] std::uint64_t get_uint64(const std::string& name,
                                         std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  /// True if the flag is present (with or without a value).
  [[nodiscard]] bool get_bool(const std::string& name) const { return has(name); }

 private:
  std::map<std::string, std::string> values_;
};

/// Standard flag set shared by the figure benches:
///   --runs N     number of seeds per data point
///   --eps X      FPTAS accuracy
///   --seed N     master seed
///   --csv        emit CSV instead of aligned tables
///   --full       paper-fidelity mode (more runs, tighter eps, larger sweeps)
[[nodiscard]] Flags bench_flags(int argc, const char* const* argv);

}  // namespace topo

#endif  // TOPODESIGN_UTIL_FLAGS_H
