#include "util/cleanup.h"

#include <signal.h>
#include <string.h>
#include <unistd.h>

#include <atomic>

#include "util/exit_codes.h"

namespace topo {
namespace {

// Fixed-size tables: a signal handler cannot allocate, so slots are
// claimed/released with atomics and the path bytes live in static
// storage. Publication protocol per slot: claim `used` -> write payload
// -> set `ready` (release). The handler acts only on `ready` slots
// (acquire), so it never reads a half-written path; a slot interrupted
// mid-write is simply skipped, and its temp falls back to the cache
// opener's stale-temp sweep.
constexpr int kPathSlots = 128;
constexpr int kPathMax = 1024;
constexpr int kChildSlots = 64;

std::atomic<bool> g_path_used[kPathSlots];
std::atomic<bool> g_path_ready[kPathSlots];
char g_paths[kPathSlots][kPathMax];

std::atomic<bool> g_child_used[kChildSlots];
std::atomic<bool> g_child_ready[kChildSlots];
std::atomic<pid_t> g_child_pids[kChildSlots];

extern "C" void cleanup_signal_handler(int sig) {
  // Children first: each worker's own handler removes its temps.
  for (int i = 0; i < kChildSlots; ++i) {
    if (g_child_ready[i].load(std::memory_order_acquire)) {
      const pid_t pid = g_child_pids[i].load(std::memory_order_relaxed);
      if (pid > 0) ::kill(pid, SIGTERM);
    }
  }
  for (int i = 0; i < kPathSlots; ++i) {
    if (g_path_ready[i].load(std::memory_order_acquire)) {
      ::unlink(g_paths[i]);
    }
  }
  ::_exit(exit_code_for_signal(sig));
}

}  // namespace

int register_cleanup_path(const std::string& path) {
  if (path.size() >= kPathMax) return -1;
  for (int i = 0; i < kPathSlots; ++i) {
    bool expected = false;
    if (g_path_used[i].compare_exchange_strong(expected, true)) {
      ::memcpy(g_paths[i], path.c_str(), path.size() + 1);
      g_path_ready[i].store(true, std::memory_order_release);
      return i;
    }
  }
  return -1;
}

void unregister_cleanup_path(int slot) {
  if (slot < 0 || slot >= kPathSlots) return;
  g_path_ready[slot].store(false, std::memory_order_release);
  g_path_used[slot].store(false, std::memory_order_release);
}

int register_child_pid(pid_t pid) {
  for (int i = 0; i < kChildSlots; ++i) {
    bool expected = false;
    if (g_child_used[i].compare_exchange_strong(expected, true)) {
      g_child_pids[i].store(pid, std::memory_order_relaxed);
      g_child_ready[i].store(true, std::memory_order_release);
      return i;
    }
  }
  return -1;
}

void unregister_child_pid(int slot) {
  if (slot < 0 || slot >= kChildSlots) return;
  g_child_ready[slot].store(false, std::memory_order_release);
  g_child_used[slot].store(false, std::memory_order_release);
}

void install_signal_cleanup() {
  struct sigaction action;
  ::memset(&action, 0, sizeof(action));
  action.sa_handler = cleanup_signal_handler;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

}  // namespace topo
