// Summary statistics for repeated experiment runs.
#ifndef TOPODESIGN_UTIL_STATS_H
#define TOPODESIGN_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace topo {

/// Mean / standard deviation / extrema of a sample.
struct Summary {
  double mean = 0.0;
  double stdev = 0.0;   ///< Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Computes summary statistics of `values`. Empty input yields a
/// zero-initialized Summary with count == 0.
[[nodiscard]] Summary summarize(const std::vector<double>& values);

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// q-quantile of an ascending-sorted sample by half-up index:
/// sorted[clamp(floor(q * n + 0.5), 0, n - 1)]. Returns 0 for an empty
/// sample, the single element for n == 1 — safe for the small-flow-count
/// cases a raw `sorted[q * n]` index mishandles. Requires q in [0, 1].
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

/// Relative deviation |a-b| / max(|a|,|b|, eps); symmetric and safe at 0.
[[nodiscard]] double relative_gap(double a, double b, double eps = 1e-12);

}  // namespace topo

#endif  // TOPODESIGN_UTIL_STATS_H
