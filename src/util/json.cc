#include "util/json.h"

#include <cctype>

#include "util/error.h"

namespace topo {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  require(value != nullptr, "JSON object has no key \"" + key + "\"");
  return *value;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& input) : input_(input) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_space();
    require(pos_ == input_.size(), error("trailing characters"));
    return value;
  }

 private:
  [[nodiscard]] std::string error(const std::string& why) const {
    return "JSON parse error at byte " + std::to_string(pos_) + ": " + why;
  }

  void skip_space() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < input_.size(), error("unexpected end of input"));
    return input_[pos_];
  }

  void expect(char c) {
    require(peek() == c, error(std::string("expected '") + c + "'"));
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (input_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_space();
    JsonValue value;
    switch (peek()) {
      case '{': {
        value.kind = JsonValue::Kind::kObject;
        expect('{');
        skip_space();
        if (peek() == '}') {
          ++pos_;
          return value;
        }
        while (true) {
          skip_space();
          std::string key = parse_string_raw();
          require(value.find(key) == nullptr,
                  error("duplicate key \"" + key + "\""));
          skip_space();
          expect(':');
          value.members.emplace_back(std::move(key), parse_value());
          skip_space();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return value;
        }
      }
      case '[': {
        value.kind = JsonValue::Kind::kArray;
        expect('[');
        skip_space();
        if (peek() == ']') {
          ++pos_;
          return value;
        }
        while (true) {
          value.items.push_back(parse_value());
          skip_space();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return value;
        }
      }
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.text = parse_string_raw();
        return value;
      default:
        if (consume_literal("null")) return value;
        if (consume_literal("true")) {
          value.kind = JsonValue::Kind::kBool;
          value.boolean = true;
          return value;
        }
        if (consume_literal("false")) {
          value.kind = JsonValue::Kind::kBool;
          return value;
        }
        return parse_number();
    }
  }

  unsigned parse_hex4() {
    require(pos_ + 4 <= input_.size(), error("bad \\u escape"));
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = input_[pos_ + static_cast<std::size_t>(i)];
      const int digit = h >= '0' && h <= '9'   ? h - '0'
                        : h >= 'a' && h <= 'f' ? h - 'a' + 10
                        : h >= 'A' && h <= 'F' ? h - 'A' + 10
                                               : -1;
      require(digit >= 0, error("bad \\u escape"));
      code = code * 16 + static_cast<unsigned>(digit);
    }
    pos_ += 4;
    return code;
  }

  static void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  std::string parse_string_raw() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < input_.size(), error("unterminated string"));
      const char c = input_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        require(pos_ < input_.size(), error("bad escape"));
        const char e = input_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            const unsigned code = parse_hex4();
            unsigned code_point = code;
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: a low surrogate escape must follow.
              require(pos_ + 2 <= input_.size() && input_[pos_] == '\\' &&
                          input_[pos_ + 1] == 'u',
                      error("unpaired surrogate"));
              pos_ += 2;
              const unsigned low = parse_hex4();
              require(low >= 0xDC00 && low <= 0xDFFF,
                      error("invalid low surrogate"));
              code_point =
                  0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              require(code < 0xDC00 || code > 0xDFFF,
                      error("unpaired surrogate"));
            }
            append_utf8(out, code_point);
            break;
          }
          default:
            require(false, error("unsupported escape"));
        }
      } else {
        out += c;
      }
    }
  }

  // The JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  // Strtod alone would also accept +2, .5, 5., 01, hex, inf — forms other
  // JSON tools reject, so a spec we accepted would not round-trip through
  // a user's pipeline.
  static bool valid_json_number(const std::string& t) {
    std::size_t i = 0;
    const auto digit = [&](std::size_t at) {
      return at < t.size() &&
             std::isdigit(static_cast<unsigned char>(t[at])) != 0;
    };
    if (i < t.size() && t[i] == '-') ++i;
    if (!digit(i)) return false;
    if (t[i] == '0') {
      ++i;
    } else {
      while (digit(i)) ++i;
    }
    if (i < t.size() && t[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
      ++i;
      if (i < t.size() && (t[i] == '+' || t[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == t.size();
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '-' || input_[pos_] == '+' ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E')) {
      ++pos_;
    }
    require(pos_ > start, error("expected a value"));
    const std::string token = input_.substr(start, pos_ - start);
    require(valid_json_number(token),
            error("malformed number \"" + token + "\""));
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(token.c_str(), nullptr);
    return value;
  }

  const std::string& input_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace topo
