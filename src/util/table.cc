#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace topo {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "TablePrinter requires at least one column");
}

void TablePrinter::add_row(std::vector<Cell> row) {
  require(row.size() == headers_.size(),
          "TablePrinter row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::render(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(render(row[i]));
      widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::setw(static_cast<int>(widths[i])) << cells[i];
      os << (i + 1 == cells.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  for (const auto& r : rendered) print_row(r);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto csv_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i] << (i + 1 == cells.size() ? "\n" : ",");
    }
  };
  csv_row(headers_);
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& c : row) r.push_back(render(c));
    csv_row(r);
  }
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace topo
