#include "search/driver.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "scenario/cache.h"
#include "scenario/spec_io.h"
#include "search/cost_model.h"
#include "util/error.h"
#include "util/exit_codes.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/table.h"

namespace topo::search {
namespace {

// One candidate's reduced evaluation.
struct Evaluated {
  std::string hash;
  double cost = 0.0;
  double lambda = 0.0;
  double objective = 0.0;
};

// Evaluates candidate batches through the scenario engine with the result
// cache (and an in-process memo over it) as the memo table. All state that
// candidate results are a function of — evaluation options, traffic seeds,
// the solver mode — is fixed at construction, so a candidate's cells are
// identical wherever and whenever it is (re)evaluated.
class CandidateEvaluator {
 public:
  CandidateEvaluator(const scenario::ScenarioSpec& spec,
                     const SearchDriverOptions& opts)
      : family_(spec.topology.family),
        objective_(spec.search.objective),
        opts_(opts),
        model_(CostWeights{spec.search.port_cost, spec.search.cable_cost,
                           spec.search.switch_cost, spec.search.class_cost,
                           spec.search.floor_columns}) {
    options_.flow.epsilon = opts.epsilon;
    options_.flow.mode = spec.solver;
    options_.traffic = spec.traffic;
    options_.chunky_fraction = spec.chunky_fraction;
    options_.hot_fraction = spec.hot_fraction;
    options_.hot_multiplier = spec.hot_multiplier;
    options_.stride = spec.stride;
    options_.failure = spec.failure;
    options_.packet_sim = spec.packet_sim;
    traffic_seeds_.reserve(static_cast<std::size_t>(opts.runs));
    for (int r = 0; r < opts.runs; ++r) {
      traffic_seeds_.push_back(Rng::derive_seed(
          opts.master_seed, kSearchTrafficSalt + static_cast<std::uint64_t>(r)));
    }
    if (!opts.cache_dir.empty()) {
      cache_ = std::make_unique<scenario::ResultCache>(opts.cache_dir);
    }
  }

  // Evaluates every candidate in `batch` (in parallel over its
  // candidate × run cells) and reduces in batch order. Duplicate
  // candidates within one batch are legal (a failed move returns the
  // current design unchanged); they share cells across batches via the
  // memo even if one batch computes them twice.
  std::vector<Evaluated> evaluate(
      const std::vector<const BuiltTopology*>& batch) {
    const int n = static_cast<int>(batch.size());
    const int runs = opts_.runs;
    const int num_cells = n * runs;

    std::vector<std::string> hashes(static_cast<std::size_t>(n));
    std::vector<double> costs(static_cast<std::size_t>(n));
    parallel_for(n, [&](int c) {
      const std::size_t i = static_cast<std::size_t>(c);
      hashes[i] = candidate_hash_hex(*batch[i]);
      costs[i] = model_.cost(*batch[i]);
    });

    std::vector<std::uint64_t> keys(static_cast<std::size_t>(num_cells));
    std::vector<ThroughputResult> cells(static_cast<std::size_t>(num_cells));
    std::vector<char> have(static_cast<std::size_t>(num_cells), 0);
    std::vector<char> loaded(static_cast<std::size_t>(num_cells), 0);
    std::vector<char> computed(static_cast<std::size_t>(num_cells), 0);
    for (int i = 0; i < num_cells; ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      scenario::CellIdentity cell;
      cell.family = family_;
      cell.options = options_;
      cell.traffic_seed = traffic_seeds_[static_cast<std::size_t>(i % runs)];
      cell.candidate = hashes[static_cast<std::size_t>(i / runs)];
      keys[s] = scenario::cell_key(cell);
      if (const auto it = memo_.find(keys[s]); it != memo_.end()) {
        cells[s] = it->second;
        have[s] = 1;
        ++hits_;
      }
    }

    // Batch striping for --shard: the flat cell index partitions exactly
    // like a sweep grid. Identity is shard-agnostic, so any shard (or an
    // unsharded run) addresses identical cells.
    const auto in_stripe = [&](int i) {
      if (opts_.shard_count == 1) return true;
      if (opts_.stripe == scenario::StripeMode::kRange) {
        return scenario::range_in_shard(i, num_cells, opts_.shard_index,
                                        opts_.shard_count);
      }
      return scenario::cell_in_shard(i, opts_.shard_index, opts_.shard_count);
    };
    const auto compute = [&](int i) {
      const std::size_t s = static_cast<std::size_t>(i);
      cells[s] = evaluate_throughput(*batch[static_cast<std::size_t>(i / runs)],
                                     options_,
                                     traffic_seeds_[static_cast<std::size_t>(
                                         i % runs)]);
    };
    // Pass 1 — this shard's stripe: load else compute, publishing fresh
    // cells so peer shards (and warm re-runs) can adopt them.
    parallel_for(num_cells, [&](int i) {
      const std::size_t s = static_cast<std::size_t>(i);
      if (have[s] || !in_stripe(i)) return;
      if (cache_ != nullptr && cache_->load(keys[s], &cells[s])) {
        loaded[s] = 1;
        return;
      }
      compute(i);
      computed[s] = 1;
      if (cache_ != nullptr) cache_->store(keys[s], cells[s]);
    });
    // Pass 2 — other shards' cells: adopt whatever peers have published
    // by now, recompute locally (without storing) otherwise. The search
    // trajectory therefore never blocks on a peer, and every shard walks
    // the identical sequence of candidates and decisions.
    parallel_for(num_cells, [&](int i) {
      const std::size_t s = static_cast<std::size_t>(i);
      if (have[s] || in_stripe(i)) return;
      if (cache_ != nullptr && cache_->load(keys[s], &cells[s])) {
        loaded[s] = 1;
        return;
      }
      compute(i);
      computed[s] = 1;
    });
    for (int i = 0; i < num_cells; ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      if (loaded[s]) ++hits_;
      if (computed[s]) ++misses_;
      memo_.emplace(keys[s], cells[s]);
    }

    std::vector<Evaluated> out(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
      const std::size_t s = static_cast<std::size_t>(c);
      double sum = 0.0;
      for (int r = 0; r < runs; ++r) {
        sum += cells[static_cast<std::size_t>(c * runs + r)].lambda;
      }
      out[s].hash = hashes[s];
      out[s].cost = costs[s];
      out[s].lambda = sum / runs;
      if (objective_ == "throughput_per_cost") {
        require(out[s].cost > 0.0,
                "search objective throughput_per_cost needs a positive "
                "candidate cost (are all search.cost weights zero?)");
        out[s].objective = out[s].lambda / out[s].cost;
      } else {
        out[s].objective = out[s].lambda;
      }
    }
    return out;
  }

  [[nodiscard]] int hits() const { return hits_; }
  [[nodiscard]] int misses() const { return misses_; }

 private:
  std::string family_;
  std::string objective_;
  SearchDriverOptions opts_;
  CostModel model_;
  EvalOptions options_;
  std::vector<std::uint64_t> traffic_seeds_;
  std::unique_ptr<scenario::ResultCache> cache_;
  std::map<std::uint64_t, ThroughputResult> memo_;
  int hits_ = 0;
  int misses_ = 0;
};

SearchStepRecord make_record(int restart, int step, const Evaluated& eval,
                             bool accepted) {
  SearchStepRecord record;
  record.restart = restart;
  record.step = step;
  record.candidate = eval.hash;
  record.cost = eval.cost;
  record.lambda = eval.lambda;
  record.objective = eval.objective;
  record.accepted = accepted;
  return record;
}

std::string record_json(const SearchStepRecord& record) {
  std::ostringstream out;
  out << "{\"restart\": " << record.restart << ", \"step\": " << record.step
      << ", \"candidate\": " << json_string(record.candidate)
      << ", \"cost\": " << json_number(record.cost)
      << ", \"lambda\": " << json_number(record.lambda)
      << ", \"objective\": " << json_number(record.objective)
      << ", \"accepted\": " << (record.accepted ? "true" : "false") << "}";
  return out.str();
}

// Parses "I/N" for --shard; mirrors the scenario CLI's parser so the two
// verbs reject malformed values identically.
void parse_shard_value(const std::string& value, SearchDriverOptions* opts) {
  const std::size_t slash = value.find('/');
  bool ok =
      slash != std::string::npos && slash > 0 && slash + 1 < value.size();
  int index = 0;
  int count = 0;
  if (ok) {
    try {
      std::size_t used = 0;
      index = std::stoi(value.substr(0, slash), &used);
      ok = used == slash;
      std::size_t used_count = 0;
      const std::string count_text = value.substr(slash + 1);
      count = std::stoi(count_text, &used_count);
      ok = ok && used_count == count_text.size();
    } catch (const std::exception&) {
      ok = false;
    }
  }
  require(ok, "--shard expects I/N (e.g. --shard 0/2), got: " + value);
  require(count >= 1, "--shard I/N requires N >= 1, got: " + value);
  require(index >= 0 && index < count,
          "--shard I/N requires 0 <= I < N, got: " + value);
  opts->shard_index = index;
  opts->shard_count = count;
}

}  // namespace

SearchResult run_search(const scenario::ScenarioSpec& spec,
                        const SearchDriverOptions& options) {
  require(spec.search.enabled,
          "run_search requires a spec with a \"search\" block");
  scenario::validate_spec(spec);
  require(options.runs >= 1, "search requires runs >= 1");
  require(options.shard_count >= 1, "shard_count must be >= 1");
  require(options.shard_index >= 0 &&
              options.shard_index < options.shard_count,
          "shard_index must be in [0, shard_count)");
  // As for sweeps: a shard's only channel to its peers is the shared
  // cache, so sharding without one would duplicate every evaluation.
  require(options.shard_count == 1 || !options.cache_dir.empty(),
          "sharded search requires a cache dir (shards share evaluations "
          "through it)");

  std::vector<MoveKind> moves;
  moves.reserve(spec.search.moves.size());
  for (const std::string& name : spec.search.moves) {
    moves.push_back(move_from_name(name));
  }
  const SearchSpace space(spec.topology, std::move(moves));
  CandidateEvaluator evaluator(spec, options);

  SearchResult result;
  bool have_best = false;
  // Strictly-greater comparisons everywhere: ties keep the EARLIEST
  // candidate, so the trajectory is deterministic and the baseline wins
  // unless something genuinely improves on it.
  const auto offer_best = [&](const SearchStepRecord& record,
                              const BuiltTopology& topology) {
    if (have_best && record.objective <= result.best.objective) return;
    have_best = true;
    result.best = record;
    result.best_topology = topology;
  };

  const std::uint64_t move_base =
      Rng::derive_seed(options.master_seed, kSearchMoveSalt);
  for (int restart = 0; restart < spec.search.restarts; ++restart) {
    BuiltTopology current = space.initial(Rng::derive_seed(
        options.master_seed,
        kSearchTopoSalt + static_cast<std::uint64_t>(restart)));
    Evaluated current_eval = evaluator.evaluate({&current})[0];
    const SearchStepRecord initial =
        make_record(restart, 0, current_eval, true);
    result.trace.push_back(initial);
    if (restart == 0) result.baseline = initial;
    offer_best(initial, current);

    for (int step = 1; step <= spec.search.budget; ++step) {
      // One deterministic stream per (restart, step) drives both the
      // serial population mutations and the annealing draw below.
      Rng move_rng(Rng::derive_seed(
          move_base, static_cast<std::uint64_t>(restart) * 1000003ULL +
                         static_cast<std::uint64_t>(step)));
      std::vector<BuiltTopology> neighbors;
      neighbors.reserve(static_cast<std::size_t>(spec.search.population));
      for (int p = 0; p < spec.search.population; ++p) {
        neighbors.push_back(space.mutate(current, move_rng));
      }
      std::vector<const BuiltTopology*> batch;
      batch.reserve(neighbors.size());
      for (const BuiltTopology& neighbor : neighbors) {
        batch.push_back(&neighbor);
      }
      const std::vector<Evaluated> outcomes = evaluator.evaluate(batch);

      std::size_t best_neighbor = 0;
      for (std::size_t p = 1; p < outcomes.size(); ++p) {
        if (outcomes[p].objective > outcomes[best_neighbor].objective) {
          best_neighbor = p;
        }
      }
      // Hill climbing accepts strict improvements; a positive temperature
      // additionally accepts worse neighbors with the Metropolis
      // probability under geometric cooling (0.95 per step).
      const double temperature =
          spec.search.temperature * std::pow(0.95, step - 1);
      bool accept =
          outcomes[best_neighbor].objective > current_eval.objective;
      if (!accept && temperature > 0.0) {
        const double delta =
            outcomes[best_neighbor].objective - current_eval.objective;
        accept = move_rng.uniform() < std::exp(delta / temperature);
      }
      for (std::size_t p = 0; p < outcomes.size(); ++p) {
        const SearchStepRecord record = make_record(
            restart, step, outcomes[p], accept && p == best_neighbor);
        result.trace.push_back(record);
        offer_best(record, neighbors[p]);
      }
      if (accept) {
        current = std::move(neighbors[best_neighbor]);
        current_eval = outcomes[best_neighbor];
      }
    }
  }
  result.cache_hits = evaluator.hits();
  result.cache_misses = evaluator.misses();
  return result;
}

std::string search_trace_json(const scenario::ScenarioSpec& spec,
                              const SearchDriverOptions& options,
                              const SearchResult& result) {
  // Deliberately free of cache accounting and shard/stripe configuration:
  // the trace documents the trajectory, which is identical across thread
  // counts, shard layouts, and warm/cold caches — so the FILE is too.
  std::ostringstream out;
  out << "{\n";
  out << "  \"spec\": " << json_string(spec.name) << ",\n";
  out << "  \"family\": " << json_string(spec.topology.family) << ",\n";
  out << "  \"objective\": " << json_string(spec.search.objective) << ",\n";
  out << "  \"seed\": " << options.master_seed << ",\n";
  out << "  \"runs\": " << options.runs << ",\n";
  out << "  \"epsilon\": " << json_number(options.epsilon) << ",\n";
  out << "  \"steps\": [";
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    out << (i > 0 ? "," : "") << "\n    " << record_json(result.trace[i]);
  }
  out << (result.trace.empty() ? "]" : "\n  ]") << ",\n";
  out << "  \"baseline\": " << record_json(result.baseline) << ",\n";
  out << "  \"best\": " << record_json(result.best) << "\n";
  out << "}\n";
  return out.str();
}

int search_main(int argc, const char* const* argv) {
  try {
    const Flags flags(argc, argv,
                      {"spec", "trace", "runs", "eps", "seed", "threads",
                       "cache-dir", "shard", "stripe"});
    const std::string spec_path = flags.get_string("spec", "");
    require(!spec_path.empty(), "search requires --spec FILE");
    const scenario::ScenarioSpec spec = scenario::load_spec_file(spec_path);
    require(spec.search.enabled,
            spec_path + ": spec has no \"search\" block (`topobench search` "
                        "runs search specs; use `topobench --spec` for "
                        "sweeps)");

    SearchDriverOptions options;
    options.runs = flags.get_int("runs", 3);
    options.epsilon = flags.get_double("eps", 0.08);
    options.master_seed = flags.get_uint64("seed", 1);
    options.cache_dir = flags.get_string("cache-dir", "");
    if (const std::string shard = flags.get_string("shard", "");
        !shard.empty()) {
      parse_shard_value(shard, &options);
      require(options.shard_count == 1 || !options.cache_dir.empty(),
              "--shard requires --cache-dir: shards share candidate "
              "evaluations through the cache");
    }
    if (const std::string stripe = flags.get_string("stripe", "");
        !stripe.empty()) {
      options.stripe = scenario::stripe_mode_from_name(stripe);
    }
    if (const int threads = flags.get_int("threads", 0); threads > 0) {
      // Same contract as the scenario CLI: exported for children, sized
      // locally, loud failure if the pool already started.
      ::setenv("TOPOBENCH_THREADS", std::to_string(threads).c_str(), 1);
      if (!set_parallel_slots(threads)) {
        throw InvalidArgument(
            "--threads " + std::to_string(threads) +
            " cannot take effect: the thread pool already started with " +
            std::to_string(parallel_slots()) +
            " slots (pass --threads before the first parallel region)");
      }
    }

    const SearchResult result = run_search(spec, options);

    print_banner(std::cout, "Topology search: " + spec.name);
    TablePrinter table({"restart", "step", "candidate", "cost", "lambda",
                        "objective", "accepted"});
    table.set_precision(6);
    for (const SearchStepRecord& record : result.trace) {
      table.add_row({static_cast<long long>(record.restart),
                     static_cast<long long>(record.step), record.candidate,
                     record.cost, record.lambda, record.objective,
                     std::string(record.accepted ? "yes" : "no")});
    }
    table.print(std::cout);
    std::cout << "\nBaseline: candidate " << result.baseline.candidate
              << ", cost " << result.baseline.cost << ", lambda "
              << result.baseline.lambda << ", objective "
              << result.baseline.objective << "\n";
    std::cout << "Best:     candidate " << result.best.candidate
              << " (restart " << result.best.restart << ", step "
              << result.best.step << "), cost " << result.best.cost
              << ", lambda " << result.best.lambda << ", objective "
              << result.best.objective << "\n";
    if (result.baseline.objective > 0.0) {
      std::cout << "Improvement over the family's seed design: "
                << 100.0 * (result.best.objective /
                                result.baseline.objective -
                            1.0)
                << "% on " << spec.search.objective << ".\n";
    }

    if (const std::string trace_path = flags.get_string("trace", "");
        !trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "cannot write " << trace_path << "\n";
        return kExitInternal;
      }
      out << search_trace_json(spec, options, result);
    }
    if (!options.cache_dir.empty()) {
      // stderr, like sweeps, so stdout is byte-identical warm or cold.
      // The spec hash covers the search block (and the search version
      // tag), so a search and a sweep can never report the same identity.
      scenario::SweepRunConfig config;
      config.runs = options.runs;
      config.epsilon = options.epsilon;
      config.master_seed = options.master_seed;
      std::cerr << "cache " << spec.name << " ["
                << scenario::hash_hex(scenario::spec_hash(spec, config))
                << "]";
      if (options.shard_count > 1) {
        std::cerr << " shard " << options.shard_index << "/"
                  << options.shard_count;
      }
      std::cerr << ": " << result.cache_hits << " hits, "
                << result.cache_misses << " misses (" << options.cache_dir
                << ")\n";
    }
    return kExitOk;
  } catch (const InvalidArgument& e) {
    std::cerr << e.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return kExitInternal;
  }
}

}  // namespace topo::search
