// The topology-search driver: seeded random-restart hill climbing (or
// simulated annealing) over a SearchSpace, with every candidate evaluation
// routed through the scenario engine and the content-addressed result
// cache as a memo table.
//
// Determinism contract: the whole trajectory — candidates generated,
// objectives computed, accept/reject decisions, the final best design —
// is a pure function of (spec, runs, epsilon, master seed). Candidate
// evaluations fan out over the shared thread pool and reduce in a fixed
// order, traffic seeds are constant across candidates (so a rediscovered
// wiring lands on the same cache cells), and shard striping only changes
// WHO computes a cell, never its identity — so the search trace is
// byte-identical across thread counts, shard configurations, and warm vs
// cold caches.
//
// Seed fan-out (all via Rng::derive_seed from the master seed):
//   restart r's initial design   <- derive(master, kSearchTopoSalt + r)
//   evaluation run k's traffic   <- derive(master, kSearchTrafficSalt + k)
//   (restart r, step s) moves    <- derive(derive(master, kSearchMoveSalt),
//                                          r * 1000003 + s)
// Traffic seeds are deliberately candidate-independent: two candidates
// with the same canonical hash share cells no matter which restart, step,
// or process evaluated them first.
#ifndef TOPODESIGN_SEARCH_DRIVER_H
#define TOPODESIGN_SEARCH_DRIVER_H

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.h"
#include "scenario/sweep.h"
#include "search/search_space.h"
#include "topo/topology.h"

namespace topo::search {

/// Seed-derivation salts (see the fan-out contract above). Spread far
/// apart so restart indexes, run indexes, and step counters can never
/// collide across salt families.
inline constexpr std::uint64_t kSearchTopoSalt = 0x10000000ULL;
inline constexpr std::uint64_t kSearchTrafficSalt = 0x20000000ULL;
inline constexpr std::uint64_t kSearchMoveSalt = 0x30000000ULL;

/// One evaluated candidate in the search trajectory.
struct SearchStepRecord {
  int restart = 0;
  /// 0 = the restart's initial design; mutation steps count from 1.
  int step = 0;
  std::string candidate;   ///< 16-hex canonical-topology hash.
  double cost = 0.0;       ///< CostModel total.
  double lambda = 0.0;     ///< Mean certified throughput over the runs.
  double objective = 0.0;  ///< Per the spec's search.objective.
  /// True when this candidate became the step's new current design (the
  /// initial design of every restart is trivially accepted).
  bool accepted = false;
};

/// Resolved run configuration for a search (the CLI flag surface).
struct SearchDriverOptions {
  int runs = 3;                ///< Traffic seeds per candidate evaluation.
  double epsilon = 0.08;       ///< FPTAS certified-gap target.
  std::uint64_t master_seed = 1;
  /// Content-addressed evaluation cache (scenario/cache.h); "" keeps the
  /// memoization in-process only.
  std::string cache_dir;
  /// Distributed evaluation (--shard I/N): each evaluation batch's cells
  /// are striped across shards exactly like a sweep's grid; out-of-stripe
  /// cells are loaded from the shared cache when some shard already
  /// published them and recomputed locally (without storing) otherwise,
  /// so every shard walks the identical trajectory. Requires cache_dir.
  int shard_index = 0;
  int shard_count = 1;
  /// Stripe shape for sharded batches; never enters any cell identity.
  scenario::StripeMode stripe = scenario::StripeMode::kRoundRobin;
};

/// A finished search.
struct SearchResult {
  /// Restart 0's initial design: the family's own seed design, i.e. the
  /// baseline every improvement claim is measured against.
  SearchStepRecord baseline;
  /// The best candidate over EVERY evaluation (trivially >= baseline on
  /// the objective, since the baseline is itself evaluated).
  SearchStepRecord best;
  BuiltTopology best_topology;
  /// Every evaluated candidate, in evaluation order: for each restart the
  /// initial design, then `population` records per step. Contains no
  /// cache accounting, so its JSON is byte-identical warm or cold,
  /// sharded or not.
  std::vector<SearchStepRecord> trace;
  /// Cache/memo accounting (accurate whether or not a cache_dir was
  /// configured; memo hits count as hits).
  int cache_hits = 0;
  int cache_misses = 0;
};

/// Runs the search a spec's "search" block describes. Requires
/// spec.search.enabled and no sweep axes (validate_spec enforces the
/// rest). Raises InvalidArgument on a sharded config without a cache dir.
[[nodiscard]] SearchResult run_search(const scenario::ScenarioSpec& spec,
                                      const SearchDriverOptions& options);

/// The search trace artifact: deterministic JSON (fixed key order,
/// shortest-round-trip numbers, trailing newline) with one record per
/// evaluated candidate plus the baseline and best summaries.
[[nodiscard]] std::string search_trace_json(const scenario::ScenarioSpec& spec,
                                            const SearchDriverOptions& options,
                                            const SearchResult& result);

/// CLI entry for `topobench search` (argv[0] is skipped):
///   search --spec FILE [--trace FILE] [--runs N] [--eps X] [--seed N]
///          [--threads N] [--cache-dir DIR] [--shard I/N] [--stripe MODE]
/// Prints the trajectory table and the baseline/best summary to stdout;
/// cache accounting goes to stderr (same format as sweeps). Returns a
/// shell exit code.
int search_main(int argc, const char* const* argv);

}  // namespace topo::search

#endif  // TOPODESIGN_SEARCH_DRIVER_H
