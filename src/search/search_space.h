// The design space a topology search walks: seeded mutation moves over a
// topology family, plus canonical candidate identity.
//
// A SearchSpace owns a family spec (scenario/topo_registry.h) and a move
// set. `initial` builds the family's own seed design — the baseline every
// search result is compared against — and `mutate` produces a neighbor:
//
//  * rewire — the paper's degree-preserving double-edge swap: two
//    equal-capacity edges (a,b), (c,d) with four distinct endpoints become
//    (a,c),(b,d) or (a,d),(b,c). Every switch keeps its exact port usage,
//    so the candidate prices identically on ports and stays inside the
//    equipment pool; only the wiring (and hence throughput and cable
//    length) changes.
//  * server_shift — moves one server between switches whose class already
//    hosts servers (the §5 placement dimension for two-type pools).
//
// Candidate identity is the canonical fingerprint of the BUILT topology
// (sorted edge list + server map + classes), not the mutation path that
// reached it: two restarts that rediscover the same wiring hash alike and
// share cache cells (scenario/cache.h).
#ifndef TOPODESIGN_SEARCH_SEARCH_SPACE_H
#define TOPODESIGN_SEARCH_SEARCH_SPACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "scenario/cache.h"
#include "scenario/spec.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace topo::search {

/// Mutation move families.
enum class MoveKind {
  kRewire,       ///< Degree-preserving double-edge swap.
  kServerShift,  ///< Move one server between server-hosting switches.
};

/// Spec/CLI name of a move ("rewire", "server_shift").
[[nodiscard]] const char* move_name(MoveKind kind);

/// Inverse of move_name; raises InvalidArgument for unknown names.
[[nodiscard]] MoveKind move_from_name(const std::string& name);

/// Canonical byte string of a built topology: node count, edges sorted by
/// (min endpoint, max endpoint, capacity), servers per switch, and node
/// classes. Equal topologies — regardless of edge insertion order or the
/// mutation path that produced them — serialize identically.
[[nodiscard]] std::string canonical_topology(const BuiltTopology& topology);

/// 16-hex-digit content address of a candidate: fnv1a64 over
/// canonical_topology. This is the `candidate` field of a search cell's
/// cache identity and the hash logged in search traces.
[[nodiscard]] std::string candidate_hash_hex(const BuiltTopology& topology);

/// A topology family plus the moves a search may apply to it.
class SearchSpace {
 public:
  /// Requires a known family and a non-empty move set.
  SearchSpace(scenario::TopologySpec topology, std::vector<MoveKind> moves);

  /// The family's own design for `seed` — the search baseline.
  [[nodiscard]] BuiltTopology initial(std::uint64_t seed) const;

  /// One mutation of `current`: picks a move uniformly from the move set
  /// and applies it. Moves that cannot find a legal application (e.g. no
  /// two swappable edges after ~100 attempts) return `current` unchanged —
  /// the search treats that as a rejected neighbor, never an error.
  [[nodiscard]] BuiltTopology mutate(const BuiltTopology& current,
                                     Rng& rng) const;

  [[nodiscard]] const scenario::TopologySpec& topology() const {
    return topology_;
  }
  [[nodiscard]] const std::vector<MoveKind>& moves() const { return moves_; }

 private:
  scenario::TopologySpec topology_;
  std::vector<MoveKind> moves_;
};

/// The Fig-12 ToR-count bisection (core/experiment.h) with its probes
/// memoized through the result cache: each probed ToR count stores a
/// tiny verdict cell keyed by (identity, tors, master seed, options), so
/// re-running the same bisection against a warm cache re-evaluates
/// nothing. `identity` must name everything the builder closes over
/// (e.g. "vl2_rewiring d_a=12 d_i=12"); `cache` may be null (plain
/// in-invocation memoization only). Returns exactly what
/// max_tors_at_full_throughput returns.
[[nodiscard]] int max_tors_at_full_throughput_cached(
    const FullThroughputSearch& search, std::uint64_t master_seed,
    const std::string& identity, const scenario::ResultCache* cache);

}  // namespace topo::search

#endif  // TOPODESIGN_SEARCH_SEARCH_SPACE_H
