// The paper's two design case studies as library entry points.
//
// Historically these lived whole inside examples/vl2_rewiring.cpp and
// examples/heterogeneous_design.cpp; the bodies moved here so the search
// layer, tests, and the thin example launchers share one implementation
// each. Printed output is byte-identical to the historical binaries on
// the same flags.
#ifndef TOPODESIGN_SEARCH_CASE_STUDIES_H
#define TOPODESIGN_SEARCH_CASE_STUDIES_H

#include <ostream>

namespace topo::search {

/// The §7 VL2 rewiring case study: builds VL2 for the given port counts,
/// sanity-checks it at nominal size, then binary-searches the largest ToR
/// count the rewired pool serves at full throughput.
///   flags: [--da N] [--di N] [--runs N]
/// Returns a shell exit code (argv[0] is skipped).
int vl2_rewiring_case_study(int argc, const char* const* argv,
                            std::ostream& os);

/// The §5 heterogeneous design advisor: server-placement and cross-type
/// wiring sweeps over a two-type switch pool, plus the paper's
/// recommendation.
///   flags: [--large N] [--small N] [--large-ports K] [--small-ports K]
///          [--servers S]
/// Returns a shell exit code (argv[0] is skipped).
int heterogeneous_design_case_study(int argc, const char* const* argv,
                                    std::ostream& os);

}  // namespace topo::search

#endif  // TOPODESIGN_SEARCH_CASE_STUDIES_H
