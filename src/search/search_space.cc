#include "search/search_space.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "scenario/topo_registry.h"
#include "util/error.h"
#include "util/json.h"

namespace topo::search {

const char* move_name(MoveKind kind) {
  switch (kind) {
    case MoveKind::kRewire: return "rewire";
    case MoveKind::kServerShift: return "server_shift";
  }
  return "rewire";
}

MoveKind move_from_name(const std::string& name) {
  if (name == "rewire") return MoveKind::kRewire;
  if (name == "server_shift") return MoveKind::kServerShift;
  throw InvalidArgument("unknown search move: " + name +
                        " (expected rewire or server_shift)");
}

std::string canonical_topology(const BuiltTopology& topology) {
  // Sort edges by (min endpoint, max endpoint, capacity) so insertion
  // order — which mutation paths permute freely — never reaches the hash.
  std::vector<Edge> edges = topology.graph.edges();
  for (Edge& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.capacity < b.capacity;
  });

  std::string out = "n=" + std::to_string(topology.graph.num_nodes());
  out += ";edges=";
  for (const Edge& e : edges) {
    out += std::to_string(e.u) + "-" + std::to_string(e.v) + "@" +
           json_number(e.capacity) + ",";
  }
  out += ";servers=";
  for (int s : topology.servers.per_switch) out += std::to_string(s) + ",";
  out += ";class=";
  for (int c : topology.node_class) out += std::to_string(c) + ",";
  out += ";names=";
  for (const std::string& name : topology.class_names) out += name + ",";
  return out;
}

std::string candidate_hash_hex(const BuiltTopology& topology) {
  return scenario::hash_hex(scenario::fnv1a64(canonical_topology(topology)));
}

SearchSpace::SearchSpace(scenario::TopologySpec topology,
                         std::vector<MoveKind> moves)
    : topology_(std::move(topology)), moves_(std::move(moves)) {
  require(scenario::find_family(topology_.family) != nullptr,
          "unknown topology family: " + topology_.family);
  require(!moves_.empty(), "search requires at least one move");
}

BuiltTopology SearchSpace::initial(std::uint64_t seed) const {
  return scenario::find_family(topology_.family)
      ->build(topology_.params, seed);
}

namespace {

constexpr int kMoveAttempts = 100;

// Degree-preserving double-edge swap; `current` unchanged on failure.
BuiltTopology rewire_move(const BuiltTopology& current, Rng& rng) {
  const Graph& graph = current.graph;
  const int num_edges = graph.num_edges();
  if (num_edges < 2) return current;

  std::vector<Edge> edges = graph.edges();
  for (int attempt = 0; attempt < kMoveAttempts; ++attempt) {
    const std::size_t i = rng.index(edges.size());
    const std::size_t j = rng.index(edges.size());
    if (i == j) continue;
    const Edge a = edges[i];
    const Edge b = edges[j];
    if (a.capacity != b.capacity) continue;
    if (a.u == b.u || a.u == b.v || a.v == b.u || a.v == b.v) continue;
    Edge na{a.u, b.u, a.capacity};
    Edge nb{a.v, b.v, a.capacity};
    if (rng.chance(0.5)) {
      na = Edge{a.u, b.v, a.capacity};
      nb = Edge{a.v, b.u, a.capacity};
    }
    // Keep the graph simple under this move: skip swaps that would
    // duplicate a link that already exists (the removed pair (a, b)
    // cannot be the duplicate — all four endpoints are distinct).
    if (graph.has_edge(na.u, na.v) || graph.has_edge(nb.u, nb.v)) continue;

    edges[i] = na;
    edges[j] = nb;
    BuiltTopology next = current;
    Graph rebuilt(graph.num_nodes());
    for (const Edge& e : edges) rebuilt.add_edge(e.u, e.v, e.capacity);
    next.graph = std::move(rebuilt);
    return next;
  }
  return current;
}

// Moves one server between switches whose class already hosts servers.
BuiltTopology server_shift_move(const BuiltTopology& current, Rng& rng) {
  const std::vector<int>& per_switch = current.servers.per_switch;
  std::set<int> hosting_classes;
  for (std::size_t sw = 0; sw < per_switch.size(); ++sw) {
    if (per_switch[sw] > 0) {
      hosting_classes.insert(current.class_of(static_cast<NodeId>(sw)));
    }
  }
  std::vector<int> donors;
  std::vector<int> receivers;
  for (std::size_t sw = 0; sw < per_switch.size(); ++sw) {
    const NodeId node = static_cast<NodeId>(sw);
    if (per_switch[sw] > 0) donors.push_back(node);
    if (hosting_classes.count(current.class_of(node)) > 0) {
      receivers.push_back(node);
    }
  }
  if (donors.empty() || receivers.size() < 2) return current;

  for (int attempt = 0; attempt < kMoveAttempts; ++attempt) {
    const int donor = rng.pick(donors);
    const int receiver = rng.pick(receivers);
    if (donor == receiver) continue;
    BuiltTopology next = current;
    --next.servers.per_switch[static_cast<std::size_t>(donor)];
    ++next.servers.per_switch[static_cast<std::size_t>(receiver)];
    return next;
  }
  return current;
}

}  // namespace

BuiltTopology SearchSpace::mutate(const BuiltTopology& current,
                                  Rng& rng) const {
  const MoveKind move =
      moves_.size() == 1 ? moves_.front() : rng.pick(moves_);
  switch (move) {
    case MoveKind::kRewire: return rewire_move(current, rng);
    case MoveKind::kServerShift: return server_shift_move(current, rng);
  }
  return current;
}

int max_tors_at_full_throughput_cached(const FullThroughputSearch& search,
                                       std::uint64_t master_seed,
                                       const std::string& identity,
                                       const scenario::ResultCache* cache) {
  FullThroughputSearch cached = search;
  if (cache != nullptr) {
    // Each probed ToR count persists a verdict cell: feasible always,
    // lambda 1 (meets the threshold) or 0. The key covers the caller's
    // identity string, the probe point, run count, threshold, the full
    // evaluation options, and the master seed, so unrelated bisections
    // never alias.
    const auto probe_key = [=](int tors) {
      scenario::CellIdentity cell;
      cell.family = "tors-probe:" + identity;
      cell.params = {{"tors", static_cast<double>(tors)},
                     {"runs", static_cast<double>(search.runs)},
                     {"threshold", search.threshold}};
      cell.options = search.options;
      cell.topo_seed = master_seed;
      return scenario::cell_key(cell);
    };
    cached.probe_load = [=](int tors) -> std::optional<bool> {
      ThroughputResult result;
      if (!cache->load(probe_key(tors), &result)) return std::nullopt;
      return result.lambda > 0.5;
    };
    cached.probe_store = [=](int tors, bool ok) {
      ThroughputResult verdict;
      verdict.feasible = true;
      verdict.lambda = ok ? 1.0 : 0.0;
      verdict.dual_bound = verdict.lambda;
      verdict.gap = 0.0;
      cache->store(probe_key(tors), verdict);
    };
  }
  return max_tors_at_full_throughput(cached, master_seed);
}

}  // namespace topo::search
