#include "search/cost_model.h"

#include <utility>

#include "topo/layout.h"
#include "util/error.h"

namespace topo::search {

CostModel::CostModel(CostWeights weights) : weights_(std::move(weights)) {
  require(weights_.port_cost >= 0.0 && weights_.cable_cost >= 0.0 &&
              weights_.switch_cost >= 0.0,
          "cost weights must be non-negative");
  for (const auto& [name, price] : weights_.class_cost) {
    require(price >= 0.0, "class cost for \"" + name + "\" must be non-negative");
  }
  require(weights_.floor_columns >= 1, "floor_columns must be >= 1");
}

CostBreakdown CostModel::breakdown(const BuiltTopology& topology) const {
  CostBreakdown out;
  out.network_ports = 2 * topology.graph.num_edges();
  out.server_ports = topology.servers.total();

  for (NodeId n = 0; n < topology.graph.num_nodes(); ++n) {
    const int cls = topology.class_of(n);
    const std::string name =
        topology.class_names.empty()
            ? std::string("switch")
            : topology.class_names[static_cast<std::size_t>(cls)];
    ++out.switches_by_class[name];
  }

  const FloorLayout layout =
      grid_layout(topology.graph.num_nodes(), weights_.floor_columns);
  out.cable_length = cable_stats(topology.graph, layout).total_length;

  out.port_total =
      weights_.port_cost * (out.network_ports + out.server_ports);
  out.cable_total = weights_.cable_cost * out.cable_length;
  out.switch_total = 0.0;
  for (const auto& [name, count] : out.switches_by_class) {
    double per_switch = weights_.switch_cost;
    const auto it = weights_.class_cost.find(name);
    if (it != weights_.class_cost.end()) per_switch += it->second;
    out.switch_total += per_switch * count;
  }
  out.total = out.port_total + out.cable_total + out.switch_total;
  return out;
}

double CostModel::cost(const BuiltTopology& topology) const {
  return breakdown(topology).total;
}

}  // namespace topo::search
