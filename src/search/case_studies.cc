#include "search/case_studies.h"

#include <iostream>

#include "core/topobench.h"
#include "util/error.h"
#include "util/exit_codes.h"

namespace topo::search {

int vl2_rewiring_case_study(int argc, const char* const* argv,
                            std::ostream& os) {
  try {
    const Flags flags(argc, argv, {"da", "di", "runs"});
    Vl2Params params;
    params.d_a = flags.get_int("da", 12);
    params.d_i = flags.get_int("di", 12);
    const int runs = flags.get_int("runs", 3);

    os << "== VL2 rewiring case study ==\n\n";
    os << "Equipment: " << params.d_i << " aggregation switches ("
       << params.d_a << " x 10G ports), " << params.d_a / 2
       << " core switches (" << params.d_i
       << " x 10G ports), ToRs with 20 x 1G servers + 2 x 10G uplinks.\n";

    const int nominal = vl2_nominal_tors(params);
    os << "VL2 supports " << nominal << " ToRs (" << 20 * nominal
       << " servers) at full throughput by construction.\n";

    EvalOptions options;
    options.flow.epsilon = 0.05;

    // Sanity check VL2 itself through the same solver.
    const BuiltTopology vl2 = vl2_topology(params);
    const ThroughputResult vl2_result = evaluate_throughput(vl2, options, 3);
    os << "Solver check on VL2 at nominal size: lambda = " << vl2_result.lambda
       << " (expected ~1.0)\n\n";

    // Binary search the rewired design.
    FullThroughputSearch search;
    search.builder = [&](int tors, std::uint64_t seed) {
      return rewired_vl2_topology(params, tors, seed);
    };
    search.min_tors = nominal / 2;
    search.max_tors = rewired_vl2_max_tors(params);
    search.threshold = 0.95;
    search.runs = runs;
    search.options = options;
    const int rewired = max_tors_at_full_throughput(search, /*master_seed=*/17);

    os << "Rewired pool supports " << rewired << " ToRs (" << 20 * rewired
       << " servers) at full throughput across " << runs << " runs.\n";
    os << "Improvement over VL2: "
       << 100.0 * (static_cast<double>(rewired) / nominal - 1.0)
       << "% more servers from the same equipment.\n";
    os << "(The paper reports up to 43% at DA=20, DI=28, growing with "
          "scale.)\n";
    return kExitOk;
  } catch (const InvalidArgument& e) {
    std::cerr << e.what() << "\n";
    return kExitUsage;
  }
}

int heterogeneous_design_case_study(int argc, const char* const* argv,
                                    std::ostream& os) {
  try {
    const Flags flags(
        argc, argv, {"large", "small", "large-ports", "small-ports", "servers"});
    TwoTypeSpec base;
    base.num_large = flags.get_int("large", 10);
    base.num_small = flags.get_int("small", 20);
    base.large_ports = flags.get_int("large-ports", 24);
    base.small_ports = flags.get_int("small-ports", 12);
    const int servers = flags.get_int("servers", 220);

    os << "== Heterogeneous design advisor ==\n\n";
    os << "Pool: " << base.num_large << " large switches (" << base.large_ports
       << " ports) + " << base.num_small << " small switches ("
       << base.small_ports << " ports); " << servers
       << " servers to attach.\n\n";

    EvalOptions options;
    options.flow.epsilon = 0.08;
    const int runs = 3;

    // 1. Server placement sweep at vanilla random wiring.
    os << "Server placement (x = servers on large switches relative to "
          "the port-proportional split):\n";
    TablePrinter placement(
        {"x", "servers_per_large", "servers_per_small", "throughput"});
    double best_lambda = 0.0;
    double best_ratio = 1.0;
    for (double x : {0.5, 0.75, 1.0, 1.25, 1.5, 2.0}) {
      const TwoTypeSpec spec = with_server_split(base, servers, x);
      if (spec.servers_per_large >= spec.large_ports) continue;
      const TopologyBuilder builder = [spec](std::uint64_t seed) {
        return build_two_type(spec, seed);
      };
      const ExperimentStats stats = run_experiment(builder, options, runs, 7);
      placement.add_row({x, static_cast<long long>(spec.servers_per_large),
                         static_cast<long long>(spec.servers_per_small),
                         stats.lambda.mean});
      if (stats.lambda.mean > best_lambda) {
        best_lambda = stats.lambda.mean;
        best_ratio = x;
      }
    }
    placement.print(os);
    os << "Best split found at x = " << best_ratio
       << " (paper: x = 1, proportional, is always among the best).\n\n";

    // 2. Cross-type wiring sweep at the proportional split.
    os << "Cross-type wiring (x = cross links relative to vanilla "
          "randomness), proportional servers:\n";
    const TwoTypeSpec proportional = with_server_split(base, servers, 1.0);
    TablePrinter wiring({"x", "throughput", "eqn1_bound"});
    for (double x : {0.15, 0.3, 0.5, 0.75, 1.0, 1.5}) {
      TwoTypeSpec spec = proportional;
      spec.cross_fraction = x;
      const BuiltTopology t = build_two_type(spec, 11);
      const ThroughputResult r = evaluate_throughput(t, options, 13);
      std::vector<char> in_large(static_cast<std::size_t>(t.graph.num_nodes()),
                                 0);
      for (int i = 0; i < spec.num_large; ++i) {
        in_large[static_cast<std::size_t>(i)] = 1;
      }
      const double n1 =
          static_cast<double>(spec.num_large) * spec.servers_per_large;
      const double n2 =
          static_cast<double>(spec.num_small) * spec.servers_per_small;
      const TwoClusterBound bound =
          two_cluster_throughput_bound(t.graph, in_large, n1, n2);
      wiring.add_row({x, r.lambda, bound.combined});
    }
    wiring.print(os);

    // 3. The drop threshold: how much clustering is safe (useful for cable
    // optimization, per §6.2).
    const double n1 = static_cast<double>(proportional.num_large) *
                      proportional.servers_per_large;
    const double n2 = static_cast<double>(proportional.num_small) *
                      proportional.servers_per_small;
    const double cbar_star = cross_capacity_threshold(best_lambda, n1, n2);
    const double x_star =
        cbar_star / (2.0 * two_type_expected_cross(proportional));
    os << "\nRecommendation: proportional servers ("
       << proportional.servers_per_large << " per large, "
       << proportional.servers_per_small
       << " per small), random wiring. Cross-type links can be reduced to ~"
       << 100.0 * x_star
       << "% of vanilla randomness (e.g. to shorten cables) before "
          "throughput must drop.\n";
    return kExitOk;
  } catch (const InvalidArgument& e) {
    std::cerr << e.what() << "\n";
    return kExitUsage;
  }
}

}  // namespace topo::search
