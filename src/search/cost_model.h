// Equipment and cabling cost model for topology search.
//
// The paper's claim is not "random graphs have high throughput" but "random
// graphs have high throughput *at equal cost*" — so a search over designs
// needs a cost to normalize by. This model prices a built topology from
// its physical bill of materials: switch ports (network-facing ports count
// one per edge endpoint, plus one port per attached server), switches
// themselves (a base price plus an optional per-class premium, so a core
// router can cost more than a ToR), and cable length under a machine-room
// grid layout (src/topo/layout — Manhattan distance at rack pitch 1, the
// §6.2 accounting). Every term is deterministic in the topology alone, so
// equal candidates always price equally and cached evaluations can be
// normalized after the fact.
#ifndef TOPODESIGN_SEARCH_COST_MODEL_H
#define TOPODESIGN_SEARCH_COST_MODEL_H

#include <map>
#include <string>

#include "topo/topology.h"

namespace topo::search {

/// Unit prices. The defaults make cost roughly "ports plus a cable tax",
/// which is the paper's equal-equipment comparison; set switch_cost /
/// class_cost to price the chassis themselves.
struct CostWeights {
  double port_cost = 1.0;    ///< Per switch port (network and server alike).
  double cable_cost = 0.1;   ///< Per unit Manhattan cable length.
  double switch_cost = 0.0;  ///< Base price per switch chassis.
  /// Additional per-switch price by class name (BuiltTopology::class_names
  /// entry); classes not listed cost only switch_cost.
  std::map<std::string, double> class_cost;
  /// Rack-grid width used to lay switches out for cable measurement.
  int floor_columns = 8;
};

/// Itemized cost of one candidate.
struct CostBreakdown {
  int network_ports = 0;   ///< 2 * edges: one port per edge endpoint.
  int server_ports = 0;    ///< One port per attached server.
  double cable_length = 0.0;  ///< Total Manhattan length on the grid.
  /// Switch count per class name ("switch" when the topology is classless).
  std::map<std::string, int> switches_by_class;
  double port_total = 0.0;
  double cable_total = 0.0;
  double switch_total = 0.0;
  double total = 0.0;  ///< Sum of the three component totals.
};

/// Prices built topologies under fixed weights.
class CostModel {
 public:
  explicit CostModel(CostWeights weights);

  /// Itemized cost; total > 0 for any topology with at least one switch
  /// port (required by objectives that divide by cost).
  [[nodiscard]] CostBreakdown breakdown(const BuiltTopology& topology) const;

  /// Shorthand for breakdown(topology).total.
  [[nodiscard]] double cost(const BuiltTopology& topology) const;

  [[nodiscard]] const CostWeights& weights() const { return weights_; }

 private:
  CostWeights weights_;
};

}  // namespace topo::search

#endif  // TOPODESIGN_SEARCH_COST_MODEL_H
