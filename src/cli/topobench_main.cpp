// topobench — the unified scenario CLI.
//
//   topobench --list                 table of every registered scenario
//   topobench --list-names           bare names, one per line (for scripts)
//   topobench <scenario> [flags...]  run one scenario (unique prefixes OK)
//
// Flags (shared with the per-figure bench binaries):
//   --smoke        quick mode (the default; explicit for CI invocations)
//   --full         paper-fidelity mode: more runs, finer sweeps
//   --runs N       override seeds per data point
//   --eps X        FPTAS certified-gap target (default 0.08)
//   --seed N       master seed (default 1)
//   --csv          machine-readable tables on stdout
//   --out FILE     also write the result tables as JSON
//   --threads N    pool size (exports TOPOBENCH_THREADS before first use)
#include <algorithm>
#include <cstdio>
#include <string>

#include "scenario/scenario.h"

namespace {

void print_usage() {
  std::puts(
      "usage: topobench --list | --list-names\n"
      "       topobench <scenario> [--smoke|--full] [--runs N] [--eps X]\n"
      "                 [--seed N] [--csv] [--out FILE] [--threads N]\n"
      "\n"
      "Runs a registered scenario (all 13 paper figures plus the\n"
      "declarative sweeps). Unique name prefixes are accepted, e.g.\n"
      "`topobench fig05`. See README \"Running scenarios\".");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topo::scenario;
  register_builtin_scenarios();

  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string first = argv[1];
  if (first == "--help" || first == "-h") {
    print_usage();
    return 0;
  }
  if (first == "--list" || first == "--list-names") {
    std::size_t width = 0;
    for (const ScenarioInfo* s : list_scenarios()) {
      width = std::max(width, s->name.size());
    }
    for (const ScenarioInfo* s : list_scenarios()) {
      if (first == "--list-names") {
        std::printf("%s\n", s->name.c_str());
      } else {
        std::printf("%-*s  %s\n", static_cast<int>(width), s->name.c_str(),
                    s->description.c_str());
      }
    }
    return 0;
  }
  if (first.rfind("--", 0) == 0) {
    std::fprintf(stderr, "first argument must be a scenario name: %s\n",
                 first.c_str());
    print_usage();
    return 1;
  }
  // Shift argv so the scenario name plays argv[0] for flag parsing.
  return scenario_main(first, argc - 1, argv + 1);
}
