// topobench — the unified scenario CLI.
//
//   topobench --list                 table of every registered scenario
//   topobench --list-names           bare names, one per line (for scripts)
//   topobench <scenario> [flags...]  run one scenario (unique prefixes OK)
//   topobench --spec FILE [flags...] run a spec file (no rebuild needed)
//   topobench --dump-spec NAME [FILE]  round-trip a sweep scenario to JSON
//
// Flags (shared with the per-figure bench binaries):
//   --smoke        quick mode (the default; explicit for CI invocations)
//   --full         paper-fidelity mode: more runs, finer sweeps
//   --runs N       override seeds per data point
//   --eps X        FPTAS certified-gap target (default 0.08)
//   --seed N       master seed (default 1)
//   --csv          machine-readable tables on stdout
//   --out FILE     also write the result tables as JSON
//   --threads N    pool size (must land before the first parallel region;
//                  fails loudly otherwise)
//   --cache-dir D  content-addressed cell cache for sweeps (hits/misses
//                  report on stderr; stdout stays byte-identical)
//   --shard I/N    distributed sweeps: evaluate only stripe I of N of the
//                  (point x run) cell grid into the shared --cache-dir; a
//                  final unsharded run with the same spec and cache dir
//                  warm-merges every shard into the full table
//   --solver M     solver mode for sweep scenarios: exact (default;
//                  bit-identical to historical runs) or approx (the
//                  warm-started batched-parallel FPTAS; same epsilon
//                  guarantee, different certified numbers)
//
// `topobench orchestrate --spec FILE --cache-dir DIR --workers N` is the
// supervised version of the --shard recipe: it spawns the N shard
// workers itself, watches exit codes and progress heartbeats, retries
// crashed/stalled stripes with exponential backoff, and finishes with
// the coordinator merge — degrading to partial output + a missing-cell
// manifest (exit 3) when a stripe exhausts its retries. See README
// "Fault tolerance".
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "scenario/orchestrator.h"
#include "scenario/scenario.h"
#include "scenario/spec_io.h"
#include "search/driver.h"
#include "util/cleanup.h"
#include "util/exit_codes.h"

namespace {

void print_usage() {
  std::puts(
      "usage: topobench --list | --list-names\n"
      "       topobench <scenario> [--smoke|--full] [--runs N] [--eps X]\n"
      "                 [--seed N] [--csv] [--out FILE] [--threads N]\n"
      "                 [--cache-dir DIR] [--shard I/N] [--stripe MODE]\n"
      "                 [--solver MODE]\n"
      "       topobench --spec FILE [same flags]\n"
      "       topobench --dump-spec NAME [FILE]\n"
      "       topobench orchestrate --spec FILE --cache-dir DIR\n"
      "                 [--workers N] [--max-retries K] [--worker-timeout S]\n"
      "                 [--backoff MS] [--runs N] [--eps X] [--seed N]\n"
      "                 [--smoke|--full] [--csv] [--out FILE] [--threads N]\n"
      "                 [--stripe MODE]\n"
      "       topobench search --spec FILE [--trace FILE] [--runs N]\n"
      "                 [--eps X] [--seed N] [--threads N] [--cache-dir DIR]\n"
      "                 [--shard I/N] [--stripe MODE]\n"
      "\n"
      "Runs a registered scenario (all 13 paper figures plus the\n"
      "declarative sweeps), or a ScenarioSpec JSON file. Unique name\n"
      "prefixes are accepted, e.g. `topobench fig05`. --dump-spec writes\n"
      "a sweep scenario's spec as JSON (stdout unless FILE is given) so\n"
      "it can be edited and re-run with --spec. See README \"Running\n"
      "scenarios from a spec file\".\n"
      "\n"
      "Distributed sweeps (README \"Distributed sweeps\"): --shard I/N\n"
      "restricts a sweep to stripe I (0-based) of N stripes of its\n"
      "(point x run) cell grid, publishing results into the shared\n"
      "--cache-dir (required). Run all N shards — concurrently, on any\n"
      "mix of machines sharing the dir — then re-run the same spec\n"
      "unsharded with the same cache dir: the coordinator warm-merges\n"
      "every cell into output byte-identical to a single-process run,\n"
      "recomputing nothing. See examples/shard_merge_demo.sh.\n"
      "\n"
      "Solver modes (README \"Solver modes\"): --solver approx opts a\n"
      "sweep into the warm-started, batched-parallel FPTAS with bucketed\n"
      "dual Dijkstras — typically 1.5-3x faster on RRG-class sweeps at\n"
      "the same certified epsilon, deterministic for any --threads, but\n"
      "numerically different from exact mode (approx cells cache under\n"
      "their own addresses; exact cells and goldens are untouched). A\n"
      "spec-level \"solver\" key or a \"solver_mode\" axis does the same\n"
      "per spec / per point.\n"
      "\n"
      "Failure models (README \"Failure models\"): specs compose uniform\n"
      "link/switch failures, correlated blast-radius failures\n"
      "(blast_switch_fraction / blast_probability), per-class rates\n"
      "(class_failure_fraction:<class>), targeted adversarial link cuts\n"
      "(targeted_link_cuts), and capacity derating — each usable as a\n"
      "fixed field or a sweep axis. See the sweep_* scenarios in --list.\n"
      "\n"
      "Traffic workloads (README \"Traffic workloads\"): besides the\n"
      "static matrices (permutation, all_to_all, chunky, hotspot,\n"
      "stride), a packet_sim.workload spec block runs finite flows drawn\n"
      "from a named empirical size CDF (websearch, fb_hadoop) with\n"
      "Poisson arrivals at a target load fraction of server line rate,\n"
      "reporting p50/p95/p99 flow-completion times and goodput. The\n"
      "load and cdf knobs sweep like any axis; see sweep_fct_load and\n"
      "examples/specs/fct_load_sweep.json.\n"
      "\n"
      "Topology search (README \"Topology search\"): `search` runs the\n"
      "deterministic design-space search a spec's \"search\" block\n"
      "describes — seeded random-restart hill climbing (or simulated\n"
      "annealing) over degree-preserving rewirings and server shifts,\n"
      "maximizing throughput or throughput-per-cost under the equipment\n"
      "and cable cost model. Candidate evaluations go through the result\n"
      "cache, so warm re-runs recompute nothing; --shard I/N stripes each\n"
      "evaluation batch across workers (--stripe round-robin|range) with\n"
      "byte-identical trajectories everywhere. --trace FILE writes the\n"
      "per-step JSON trace. See examples/specs/search_rrg_cost.json.\n"
      "\n"
      "Fault tolerance (README \"Fault tolerance\"): `orchestrate`\n"
      "supervises the --shard workers itself: crashed or heartbeat-stalled\n"
      "workers are killed and their stripes retried with exponential\n"
      "backoff (--max-retries, --worker-timeout, --backoff), then the\n"
      "coordinator merge runs in-process. Exit codes: 0 ok, 2 usage, 3\n"
      "partial results after retry exhaustion (see the missing-cell\n"
      "manifest under the cache dir), 4 internal error, 128+sig on\n"
      "signal.");
}

// The path workers are exec'd through: /proc/self/exe where available
// (immune to argv[0] games and cwd changes), else argv[0] as given.
std::string self_executable(const char* argv0) {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) {
    buf[len] = '\0';
    return buf;
  }
  return argv0;
}

// Extracts the value of a leading `--flag VALUE` / `--flag=VALUE`
// argument pair; returns the number of argv slots consumed (0 when
// argv[1] is not `flag`, or on a missing value — `*value` empty then).
int leading_flag_value(int argc, char** argv, const std::string& flag,
                       std::string* value) {
  const std::string first = argv[1];
  value->clear();
  if (first == flag) {
    if (argc < 3) return 0;
    *value = argv[2];
    return 2;
  }
  if (first.rfind(flag + "=", 0) == 0) {
    *value = first.substr(flag.size() + 1);
    return value->empty() ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topo::scenario;
  // SIGINT/SIGTERM: unlink in-flight cache temp files, SIGTERM any
  // supervised workers, exit 128+sig — so an interrupted run neither
  // leaks `*.json.tmp.*` garbage nor orphans its children.
  topo::install_signal_cleanup();
  register_builtin_scenarios();

  if (argc < 2) {
    print_usage();
    return topo::kExitUsage;
  }
  const std::string first = argv[1];
  if (first == "--help" || first == "-h") {
    print_usage();
    return topo::kExitOk;
  }
  if (first == "orchestrate") {
    // Shift argv so "orchestrate" plays argv[0] for flag parsing.
    return orchestrate_main(self_executable(argv[0]), argc - 1, argv + 1);
  }
  if (first == "search") {
    // Shift argv so "search" plays argv[0] for flag parsing.
    return topo::search::search_main(argc - 1, argv + 1);
  }
  if (first == "--list" || first == "--list-names") {
    std::size_t width = 0;
    for (const ScenarioInfo* s : list_scenarios()) {
      width = std::max(width, s->name.size());
    }
    for (const ScenarioInfo* s : list_scenarios()) {
      if (first == "--list-names") {
        std::printf("%s\n", s->name.c_str());
      } else {
        std::printf("%-*s  %s\n", static_cast<int>(width), s->name.c_str(),
                    s->description.c_str());
      }
    }
    return 0;
  }
  if (first == "--spec" || first.rfind("--spec=", 0) == 0) {
    std::string path;
    const int consumed = leading_flag_value(argc, argv, "--spec", &path);
    if (consumed == 0) {
      std::fprintf(stderr, "--spec requires a file argument\n");
      return topo::kExitUsage;
    }
    // Shift argv so the spec path plays argv[0] for flag parsing.
    return spec_file_main(path, argc - consumed, argv + consumed);
  }
  if (first == "--dump-spec" || first.rfind("--dump-spec=", 0) == 0) {
    std::string name;
    const int consumed = leading_flag_value(argc, argv, "--dump-spec", &name);
    if (consumed == 0) {
      std::fprintf(stderr, "--dump-spec requires a scenario name\n");
      return topo::kExitUsage;
    }
    const int next = 1 + consumed;
    if (argc > next + 1) {
      std::fprintf(stderr, "--dump-spec takes at most one output file\n");
      return topo::kExitUsage;
    }
    return dump_spec_main(name, argc > next ? argv[next] : "");
  }
  if (first.rfind("--", 0) == 0) {
    std::fprintf(stderr, "first argument must be a scenario name: %s\n",
                 first.c_str());
    print_usage();
    return topo::kExitUsage;
  }
  // Shift argv so the scenario name plays argv[0] for flag parsing.
  return scenario_main(first, argc - 1, argv + 1);
}
