// Registration of the built-in scenario catalog: the 13 paper figures
// (scenario/figures/) plus the declarative sweep scenarios below — the
// failure sweeps and traffic mixes the original evaluation never ran.
#include "scenario/figures/figures.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"

namespace topo::scenario {
namespace {

void register_sweep_scenarios() {
  {
    // Link failures on a fixed RRG: the successor paper's core robustness
    // sweep. reuse_topology pins one topology per run across the axis.
    ScenarioSpec spec;
    spec.name = "sweep_rrg_link_failures";
    spec.description =
        "Failure sweep: random link failures on a fixed RRG (N=32, r=8, "
        "4 servers/switch)";
    spec.topology = {"random_regular", {{"n", 32}, {"ports", 12}, {"degree", 8}}};
    spec.axes = {{"link_failure_fraction",
                  {0.0, 0.05, 0.1, 0.2, 0.3},
                  {0.0, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.25, 0.3}}};
    spec.quick_runs = 3;
    spec.full_runs = 20;
    spec.reuse_topology = true;
    register_spec_scenario(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "sweep_rrg_switch_failures";
    spec.description =
        "Failure sweep: random switch failures (links and servers die with "
        "the switch) on a fixed RRG (N=32, r=8)";
    spec.topology = {"random_regular", {{"n", 32}, {"ports", 12}, {"degree", 8}}};
    spec.axes = {{"switch_failure_fraction",
                  {0.0, 0.05, 0.1, 0.2, 0.3},
                  {0.0, 0.025, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3}}};
    spec.quick_runs = 3;
    spec.full_runs = 20;
    spec.reuse_topology = true;
    register_spec_scenario(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "sweep_rrg_capacity_degradation";
    spec.description =
        "Failure sweep: uniform capacity derating of every link on a fixed "
        "RRG (N=32, r=8)";
    spec.topology = {"random_regular", {{"n", 32}, {"ports", 12}, {"degree", 8}}};
    spec.axes = {{"capacity_factor",
                  {1.0, 0.9, 0.75, 0.5, 0.25},
                  {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.25}}};
    spec.quick_runs = 3;
    spec.full_runs = 20;
    spec.reuse_topology = true;
    register_spec_scenario(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "sweep_fat_tree_link_failures";
    spec.description =
        "Failure sweep: random link failures on the k=8 fat-tree (structured "
        "baseline vs the RRG sweep)";
    spec.topology = {"fat_tree", {{"k", 8}}};
    spec.axes = {{"link_failure_fraction",
                  {0.0, 0.05, 0.1, 0.2},
                  {0.0, 0.025, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3}}};
    spec.quick_runs = 3;
    spec.full_runs = 10;
    spec.reuse_topology = true;
    register_spec_scenario(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "sweep_vl2_chunky";
    spec.description =
        "Traffic sweep: x% chunky traffic on rewired VL2 (DA=8, DI=8, 10 "
        "servers/ToR)";
    spec.topology = {"rewired_vl2",
                     {{"d_a", 8}, {"d_i", 8}, {"servers_per_tor", 10}}};
    spec.traffic = TrafficKind::kChunky;
    spec.axes = {{"chunky_fraction",
                  {0.2, 0.4, 0.6, 0.8, 1.0},
                  {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}}};
    spec.quick_runs = 3;
    spec.full_runs = 10;
    spec.reuse_topology = true;
    register_spec_scenario(std::move(spec));
  }
  {
    // Two axes: cross-cluster wiring x link failures — the Fig-6 question
    // under degradation, as one cartesian grid.
    ScenarioSpec spec;
    spec.name = "sweep_two_type_cross_failures";
    spec.description =
        "Grid sweep: cross-cluster wiring x link failures on the two-type "
        "pool (20 large @30p + 30 small @20p, 480 servers)";
    spec.topology = {"two_type",
                     {{"num_large", 20},
                      {"num_small", 30},
                      {"large_ports", 30},
                      {"small_ports", 20},
                      {"total_servers", 480}}};
    spec.axes = {{"cross_fraction", {0.4, 1.0, 2.0}, {0.2, 0.4, 0.7, 1.0, 1.5, 2.0}},
                 {"link_failure_fraction", {0.0, 0.1, 0.2}, {0.0, 0.05, 0.1, 0.15, 0.2}}};
    spec.quick_runs = 2;
    spec.full_runs = 10;
    register_spec_scenario(std::move(spec));
  }
  {
    // Correlated blast-radius failures: two seeded epicenter switches per
    // draw, each taking same-class peers down with the swept probability
    // (racks/pods fail together, not independently).
    ScenarioSpec spec;
    spec.name = "sweep_rrg_correlated_failures";
    spec.description =
        "Failure sweep: correlated blast-radius failures (epicenters take "
        "class peers down with probability p) on a fixed RRG (N=32, r=8)";
    spec.topology = {"random_regular", {{"n", 32}, {"ports", 12}, {"degree", 8}}};
    spec.failure.correlated.epicenter_fraction = 0.0625;  // 2 of 32 switches
    spec.axes = {{"blast_probability",
                  {0.0, 0.1, 0.2, 0.3},
                  {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3}}};
    spec.quick_runs = 3;
    spec.full_runs = 20;
    spec.reuse_topology = true;
    register_spec_scenario(std::move(spec));
  }
  {
    // Targeted adversarial cuts: fail the top-k links by the deterministic
    // betweenness ranking — worst-case degradation, vs the average-case
    // uniform sweeps above. Cuts nest in k, so per-run curves are monotone
    // up to FPTAS slack.
    ScenarioSpec spec;
    spec.name = "sweep_fat_tree_targeted_cuts";
    spec.description =
        "Failure sweep: targeted adversarial link cuts (top-k by betweenness "
        "ranking) on the k=8 fat-tree";
    spec.topology = {"fat_tree", {{"k", 8}}};
    spec.axes = {{"targeted_link_cuts",
                  {0, 4, 8, 16, 32},
                  {0, 2, 4, 8, 12, 16, 24, 32, 48}}};
    spec.quick_runs = 3;
    spec.full_runs = 10;
    spec.reuse_topology = true;
    register_spec_scenario(std::move(spec));
  }
  {
    // Per-class rates: sweep the ToR failure rate while the aggregation
    // tier holds a fixed 10% rate — tiers fail at different rates, unlike
    // the uniform switch sweep.
    ScenarioSpec spec;
    spec.name = "sweep_vl2_class_failures";
    spec.description =
        "Failure sweep: per-class switch failures (ToR rate swept, "
        "aggregation fixed at 10%) on rewired VL2 (DA=8, DI=8)";
    spec.topology = {"rewired_vl2",
                     {{"d_a", 8}, {"d_i", 8}, {"servers_per_tor", 10}}};
    spec.failure.per_class.switch_fraction["aggregation"] = 0.1;
    spec.axes = {{"class_failure_fraction:tor",
                  {0.0, 0.1, 0.2, 0.3},
                  {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3}}};
    spec.quick_runs = 3;
    spec.full_runs = 10;
    spec.reuse_topology = true;
    register_spec_scenario(std::move(spec));
  }
  {
    // Packet-vs-flow agreement as a declarative sweep: every cell runs
    // BOTH the fluid FPTAS and the MPTCP packet simulator over the same
    // drawn permutation on an oversubscribed rewired VL2 (fig13's DA=10
    // configuration: 48 ToRs = 160% of nominal, 960 servers), and the
    // table's gap_percent column pins their agreement. ECMP hash
    // forwarding (not the figure's sampled paths) so the golden also
    // pins the hash-based routing path end to end.
    ScenarioSpec spec;
    spec.name = "sweep_packet_vs_flow";
    spec.description =
        "Packet-level MPTCP (8 subflows, ECMP hash routing) vs flow-level "
        "optimum on oversubscribed rewired VL2 (DI=12, 20 servers/ToR, "
        "ToRs at 160% of nominal)";
    spec.topology = {"rewired_vl2",
                     {{"d_a", 10}, {"d_i", 12}, {"servers_per_tor", 20},
                      {"tors", 48}}};
    spec.packet_sim.enabled = true;
    spec.packet_sim.params.subflows = 8;
    spec.packet_sim.params.queue_packets = 50;
    // 64 ms: MPTCP needs tens of milliseconds to converge on a 960-host
    // instance — 16 ms leaves a ~15% flow-vs-packet gap that shrinks to
    // ~9% here (and the golden pins it below the 10% acceptance bound).
    spec.packet_sim.params.duration_ns = 64'000'000;
    spec.packet_sim.params.warmup_ns = 32'000'000;
    spec.packet_sim.params.route_mode = sim::RouteMode::kEcmpHash;
    spec.axes = {{"tors", {48}, {40, 48}}};
    spec.quick_runs = 1;
    spec.full_runs = 5;
    register_spec_scenario(std::move(spec));
  }
  {
    // Production-style traffic: Poisson arrivals of FB-Hadoop-sized
    // finite flows on a small RRG, swept over offered load. Every cell
    // runs the finite-flow packet workload and reports flow-completion
    // percentiles; the golden pins p50/p99 FCT and goodput at each load.
    ScenarioSpec spec;
    spec.name = "sweep_fct_load";
    spec.description =
        "FCT workload sweep: Poisson arrivals, fb_hadoop flow sizes, "
        "single-subflow ECMP on a random regular graph (16 switches, "
        "64 servers), swept over offered load";
    spec.topology = {"random_regular",
                     {{"n", 16}, {"ports", 9}, {"degree", 5}}};
    spec.packet_sim.enabled = true;
    spec.packet_sim.fct.enabled = true;
    spec.packet_sim.fct.cdf = "fb_hadoop";
    spec.packet_sim.params.subflows = 1;
    spec.packet_sim.params.queue_packets = 50;
    spec.packet_sim.params.duration_ns = 20'000'000;
    spec.packet_sim.params.warmup_ns = 0;
    spec.packet_sim.params.route_mode = sim::RouteMode::kEcmpHash;
    spec.axes = {{"load", {0.3, 0.5, 0.7}, {0.1, 0.3, 0.5, 0.7, 0.9}}};
    spec.quick_runs = 1;
    spec.full_runs = 3;
    register_spec_scenario(std::move(spec));
  }
  {
    ScenarioSpec spec;
    spec.name = "sweep_small_world_shortcuts";
    spec.description =
        "Design sweep: shortcut degree of the small-world ring (N=32, "
        "lattice degree 4)";
    spec.topology = {"small_world",
                     {{"n", 32}, {"lattice_degree", 4},
                      {"servers_per_switch", 4}}};
    spec.axes = {{"shortcut_degree", {2, 4, 6}, {1, 2, 3, 4, 5, 6, 8}}};
    spec.quick_runs = 3;
    spec.full_runs = 10;
    register_spec_scenario(std::move(spec));
  }
}

}  // namespace

void register_builtin_scenarios() {
  static const bool registered = [] {
    register_figure_scenarios();
    register_sweep_scenarios();
    return true;
  }();
  (void)registered;
}

}  // namespace topo::scenario
