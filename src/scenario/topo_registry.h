// Named builders for every topology generator in src/topo/.
//
// The scenario spec references topologies by family name + numeric
// parameter map, so sweeps can rebuild a topology at every sweep point
// with overridden parameters. Families and their parameters (defaults in
// parentheses) are listed in topo_registry.cc next to each builder.
#ifndef TOPODESIGN_SCENARIO_TOPO_REGISTRY_H
#define TOPODESIGN_SCENARIO_TOPO_REGISTRY_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scenario/spec.h"
#include "topo/topology.h"

namespace topo::scenario {

/// Builds one instance of a family from named parameters and a seed.
using FamilyBuilder =
    std::function<BuiltTopology(const ParamMap& params, std::uint64_t seed)>;

struct FamilyInfo {
  std::string name;
  std::string description;
  /// Parameter names the builder understands. The sweep runner rejects
  /// axis/param names outside this set (plus the reserved eval-side axis
  /// names), so a typo fails loudly instead of silently sweeping a
  /// parameter every builder ignores — the same philosophy as the strict
  /// flag parser in util/flags.h.
  std::vector<std::string> params;
  FamilyBuilder build;
};

/// All registered families, in registration order.
[[nodiscard]] const std::vector<FamilyInfo>& topology_families();

/// Finds a family by exact name; nullptr when unknown.
[[nodiscard]] const FamilyInfo* find_family(const std::string& name);

/// Reads params[name], rounded to int, with a default. Exposed for tests.
[[nodiscard]] int param_int(const ParamMap& params, const std::string& name,
                            int fallback);

/// Reads params[name] with a default. Exposed for tests.
[[nodiscard]] double param(const ParamMap& params, const std::string& name,
                           double fallback);

}  // namespace topo::scenario

#endif  // TOPODESIGN_SCENARIO_TOPO_REGISTRY_H
