#include "scenario/sweep.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <utility>

#include "scenario/cache.h"
#include "scenario/spec_io.h"
#include "scenario/topo_registry.h"
#include "traffic/workload.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace topo::scenario {
namespace {

const std::vector<double>& axis_values(const SweepAxis& axis, bool full) {
  return full && !axis.full_values.empty() ? axis.full_values : axis.values;
}

// Applies one sweep coordinate to the topology params or the eval options.
void bind_coord(const std::string& name, double value, ParamMap& params,
                EvalOptions& options) {
  if (name == "link_failure_fraction") {
    options.failure.uniform.link_fraction = value;
  } else if (name == "switch_failure_fraction") {
    options.failure.uniform.switch_fraction = value;
  } else if (name == "blast_switch_fraction") {
    options.failure.correlated.epicenter_fraction = value;
  } else if (name == "blast_probability") {
    options.failure.correlated.peer_probability = value;
  } else if (name == "targeted_link_cuts") {
    options.failure.targeted.link_cuts = static_cast<int>(std::llround(value));
  } else if (name.rfind(kClassAxisPrefix, 0) == 0) {
    options.failure.per_class
        .switch_fraction[name.substr(kClassAxisPrefix.size())] = value;
  } else if (name == "capacity_factor") {
    options.failure.capacity_factor = value;
  } else if (name == "chunky_fraction") {
    options.chunky_fraction = value;
  } else if (name == "hot_fraction") {
    options.hot_fraction = value;
  } else if (name == "hot_multiplier") {
    options.hot_multiplier = value;
  } else if (name == "stride") {
    options.stride = static_cast<int>(std::llround(value));
  } else if (name == "load") {
    options.packet_sim.fct.load = value;
  } else if (name == "fan_in") {
    options.packet_sim.fct.fan_in = static_cast<int>(std::llround(value));
  } else if (name == "cdf") {
    // The axis value is an integer index into flow_size_cdfs(); binding
    // resolves it to the registered name (validate_spec range-checks it).
    options.packet_sim.fct.cdf =
        flow_size_cdfs()[static_cast<std::size_t>(std::llround(value))].name;
  } else if (name == "epsilon") {
    options.flow.epsilon = value;
  } else if (name == "solver_mode") {
    // 0 = exact, 1 = approx (validate_spec range-checks the values).
    options.flow.mode = std::llround(value) == 1 ? SolverMode::kApprox
                                                 : SolverMode::kExact;
  } else {
    params[name] = value;
  }
}

// The resolved inputs of one (point, run) cell — exactly what its result
// is a function of, so it doubles as the cache identity (cache.h).
struct CellPlan {
  ParamMap params;
  EvalOptions options;
  std::uint64_t topo_seed = 0;
  std::uint64_t traffic_seed = 0;
};

std::vector<std::shared_ptr<const ScenarioSpec>>& spec_registry() {
  static auto* specs = new std::vector<std::shared_ptr<const ScenarioSpec>>();
  return *specs;
}

// Progress heartbeat for supervised shard workers (kHeartbeatEnvVar):
// rewrites the file with the number of cells completed so far. The
// payload is diagnostic; supervision reads only the mtime. Concurrent
// beats from pool threads interleave harmlessly — every write refreshes
// the mtime, which is all that matters.
class Heartbeat {
 public:
  Heartbeat() {
    const char* path = std::getenv(kHeartbeatEnvVar);
    if (path != nullptr && path[0] != '\0') path_ = path;
  }

  void beat() const {
    if (path_.empty()) return;
    std::ofstream out(path_, std::ios::trunc);
    out << cells_done_.load() << "\n";
  }

  void cell_done() {
    cells_done_.fetch_add(1);
    beat();
  }

 private:
  std::string path_;
  mutable std::atomic<int> cells_done_{0};
};

}  // namespace

bool cell_in_shard(int cell_index, int shard_index, int shard_count) {
  // Round-robin striping: cheap, independent of the grid shape, and an
  // exact partition for any (cells, shard_count) pair. Striding by cell
  // rather than by point also balances shards when a single point's runs
  // dominate the grid.
  return cell_index % shard_count == shard_index;
}

bool range_in_shard(int rank, int num_cells, int shard_index,
                    int shard_count) {
  // Balanced contiguous blocks over whatever ranking the caller chose:
  // shard i owns [floor(i*C/N), floor((i+1)*C/N)). Exact partition for
  // any (C, N), block sizes differing by at most one.
  const long long c = num_cells;
  const long long lo = c * shard_index / shard_count;
  const long long hi = c * (shard_index + 1) / shard_count;
  return rank >= lo && rank < hi;
}

StripeMode stripe_mode_from_name(const std::string& name) {
  if (name == "round-robin") return StripeMode::kRoundRobin;
  if (name == "range") return StripeMode::kRange;
  throw InvalidArgument("unknown stripe mode: " + name +
                        " (expected round-robin or range)");
}

bool is_eval_axis(const std::string& param) {
  return param == "link_failure_fraction" ||
         param == "switch_failure_fraction" ||
         param == "blast_switch_fraction" || param == "blast_probability" ||
         param == "targeted_link_cuts" ||
         param.rfind(kClassAxisPrefix, 0) == 0 ||
         param == "capacity_factor" || param == "chunky_fraction" ||
         param == "hot_fraction" || param == "hot_multiplier" ||
         param == "stride" || param == "load" || param == "fan_in" ||
         param == "cdf" || param == "epsilon" || param == "solver_mode";
}

std::vector<std::vector<double>> SweepRunner::enumerate_points() const {
  std::vector<std::vector<double>> points{{}};
  for (const SweepAxis& axis : spec_->axes) {
    const std::vector<double>& values = axis_values(axis, config_.full);
    require(!values.empty(), "sweep axis " + axis.param + " has no values");
    std::vector<std::vector<double>> next;
    next.reserve(points.size() * values.size());
    for (const std::vector<double>& prefix : points) {
      for (double v : values) {
        std::vector<double> point = prefix;
        point.push_back(v);
        next.push_back(std::move(point));
      }
    }
    points = std::move(next);
  }
  return points;
}

SweepResult SweepRunner::run() const {
  const ScenarioSpec& spec = *spec_;
  require(config_.runs >= 1, "sweep requires runs >= 1");
  require(config_.shard_count >= 1, "shard_count must be >= 1");
  require(config_.shard_index >= 0 &&
              config_.shard_index < config_.shard_count,
          "shard_index must be in [0, shard_count)");
  // A shard's only output channel is the shared cache: without one its
  // stripe would be computed and thrown away.
  require(config_.shard_count == 1 || !config_.cache_dir.empty(),
          "sharded sweeps require a cache dir (the coordinator merges "
          "shards through it)");
  // Merge-only evaluates nothing, so the cache is its only input.
  require(!config_.merge_only || !config_.cache_dir.empty(),
          "merge_only requires a cache dir (there is nothing else to "
          "merge from)");
  // One validator for file-parsed and programmatic specs alike: known
  // family, known parameter/axis names (a typo'd axis would otherwise
  // sweep nothing and report identical cells without an error), sane
  // ranges. Messages name the offending key.
  validate_spec(spec);
  const FamilyInfo* family = find_family(spec.topology.family);

  // Liveness signal for supervised workers (kHeartbeatEnvVar): one beat
  // up front — before the cache preload and any reuse-topology builds,
  // which can themselves take a while — then one per completed cell.
  Heartbeat heartbeat;
  heartbeat.beat();

  const std::vector<std::vector<double>> points = enumerate_points();
  const int runs = config_.runs;
  const int num_points = static_cast<int>(points.size());
  const int num_cells = num_points * runs;
  // This run's stripe of the cell grid. Sharding restricts EVALUATION
  // only — plans, seeds, and cache keys are shard-agnostic, so every
  // shard and the coordinator address identical cells. A merge_only run
  // owns no stripe at all: it reduces what the cache holds and reports
  // the rest as missing.
  // Range striping ranks cells RUN-MAJOR — all points of run 0, then run
  // 1, ... — so each contiguous block spans as few distinct runs as
  // possible. Reuse-mode sweeps build ONE shared topology per run; under
  // this ranking each shard builds only the (at most two boundary-run)
  // topologies its block touches, instead of all of them.
  const auto in_shard = [&, this](int index) {
    if (config_.merge_only) return false;
    if (config_.stripe == StripeMode::kRange) {
      const int rank = (index % runs) * num_points + index / runs;
      return range_in_shard(rank, num_cells, config_.shard_index,
                            config_.shard_count);
    }
    return cell_in_shard(index, config_.shard_index, config_.shard_count);
  };

  bool reuse = spec.reuse_topology;
  for (const SweepAxis& axis : spec.axes) {
    if (!is_eval_axis(axis.param)) reuse = false;
  }

  // Seed fan-out (the documented contract): point p draws
  // point_seed = derive_seed(master, p); run r of that point uses
  // topology seed derive_seed(point_seed, 2r) and traffic seed
  // derive_seed(point_seed, 2r + 1). In reuse mode the whole run-r
  // stream (topology, workload, failure draw) is point-independent —
  // both seeds derive from the master instead — so only the axis value
  // changes between points and link-failure sweeps degrade
  // prefix-nested failed sets of ONE fixed (topology, workload) pair
  // per run (curves monotone up to FPTAS slack; see core/failure.h).
  const auto make_plan = [&](int index) {
    const int point = index / runs;
    const int run_index = index % runs;
    CellPlan plan;
    plan.params = spec.topology.params;
    plan.options.flow.epsilon = config_.epsilon;
    // Spec-level solver mode, then the CLI override, then (below) any
    // "solver_mode" axis — later binders win.
    plan.options.flow.mode = spec.solver;
    if (!config_.solver_override.empty()) {
      plan.options.flow.mode = config_.solver_override == "approx"
                                   ? SolverMode::kApprox
                                   : SolverMode::kExact;
    }
    plan.options.traffic = spec.traffic;
    plan.options.chunky_fraction = spec.chunky_fraction;
    plan.options.hot_fraction = spec.hot_fraction;
    plan.options.hot_multiplier = spec.hot_multiplier;
    plan.options.stride = spec.stride;
    plan.options.failure = spec.failure;
    plan.options.packet_sim = spec.packet_sim;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      bind_coord(spec.axes[a].param,
                 points[static_cast<std::size_t>(point)][a], plan.params,
                 plan.options);
    }
    const std::uint64_t seed_base =
        reuse ? config_.master_seed
              : Rng::derive_seed(config_.master_seed,
                                 static_cast<std::uint64_t>(point));
    plan.topo_seed =
        Rng::derive_seed(seed_base, 2 * static_cast<std::uint64_t>(run_index));
    plan.traffic_seed = Rng::derive_seed(
        seed_base, 2 * static_cast<std::uint64_t>(run_index) + 1);
    return plan;
  };

  // One flat grid of (point, run) cells; results land in per-cell slots
  // and are reduced serially below, so cached and fresh cells merge in
  // the same ordered reduction.
  std::vector<ThroughputResult> cells(static_cast<std::size_t>(num_cells));
  std::unique_ptr<ResultCache> cache;
  std::vector<CellPlan> plans;
  std::vector<std::uint64_t> keys;
  std::vector<char> cached;
  int hits = 0;
  if (!config_.cache_dir.empty()) {
    cache = std::make_unique<ResultCache>(config_.cache_dir);
    plans.resize(static_cast<std::size_t>(num_cells));
    keys.resize(static_cast<std::size_t>(num_cells));
    cached.assign(static_cast<std::size_t>(num_cells), 0);
    // Per-cell loads are independent file reads; run them on the pool so
    // a large warm sweep is not serialized on its preload. The plans are
    // kept for the evaluation pass below.
    parallel_for(num_cells, [&](int index) {
      const std::size_t i = static_cast<std::size_t>(index);
      plans[i] = make_plan(index);
      keys[i] = cell_key(CellIdentity{spec.topology.family, plans[i].params,
                                      plans[i].options, plans[i].topo_seed,
                                      plans[i].traffic_seed, {}});
      if (cache->load(keys[i], &cells[i])) cached[i] = 1;
    });
    for (const char hit : cached) hits += hit;
  }

  // With reuse, run r's topology is independent of the sweep point:
  // build the `runs` instances once up front (in parallel) and share
  // them — skipping runs whose every cell came out of the cache.
  std::vector<std::shared_ptr<const BuiltTopology>> shared(
      static_cast<std::size_t>(reuse ? runs : 0));
  if (reuse) {
    // Run r's topology is needed only if some cell of run r will actually
    // be evaluated here: not cached, and in this run's stripe.
    std::vector<char> needed(static_cast<std::size_t>(runs),
                             cache == nullptr ? 1 : 0);
    if (cache != nullptr) {
      for (int index = 0; index < num_cells; ++index) {
        if (!cached[static_cast<std::size_t>(index)] && in_shard(index)) {
          needed[static_cast<std::size_t>(index % runs)] = 1;
        }
      }
    }
    parallel_for(runs, [&](int r) {
      if (!needed[static_cast<std::size_t>(r)]) return;
      try {
        shared[static_cast<std::size_t>(r)] =
            std::make_shared<const BuiltTopology>(family->build(
                spec.topology.params,
                Rng::derive_seed(config_.master_seed,
                                 2 * static_cast<std::uint64_t>(r))));
      } catch (const ConstructionFailure&) {
        // Left null; the cells below record infeasible runs.
      }
    });
  }

  // Memoized targeted-failure rankings for the shared reuse topologies: a
  // pure, seed-independent function of the graph, so a k-axis sweep
  // computes it once per run instead of once per cell. call_once keeps
  // the lazy computation race-free on the pool; whichever worker computes
  // it, the bytes are identical.
  std::vector<std::once_flag> ranking_once(
      static_cast<std::size_t>(reuse ? runs : 0));
  std::vector<std::vector<EdgeId>> rankings(
      static_cast<std::size_t>(reuse ? runs : 0));

  parallel_for(num_cells, [&](int index) {
    if (cache != nullptr && cached[static_cast<std::size_t>(index)]) return;
    if (!in_shard(index)) return;  // another shard's cell
    const CellPlan plan = cache != nullptr
                              ? plans[static_cast<std::size_t>(index)]
                              : make_plan(index);
    try {
      if (reuse) {
        const std::size_t r = static_cast<std::size_t>(index % runs);
        const auto& topology = shared[r];
        if (topology != nullptr) {
          const std::vector<EdgeId>* ranking = nullptr;
          if (plan.options.failure.targeted.active()) {
            std::call_once(ranking_once[r], [&] {
              rankings[r] = targeted_link_ranking(topology->graph);
            });
            ranking = &rankings[r];
          }
          cells[static_cast<std::size_t>(index)] = evaluate_throughput(
              *topology, plan.options, plan.traffic_seed, ranking);
        }
      } else {
        const BuiltTopology topology =
            family->build(plan.params, plan.topo_seed);
        cells[static_cast<std::size_t>(index)] =
            evaluate_throughput(topology, plan.options, plan.traffic_seed);
      }
    } catch (const ConstructionFailure&) {
      // Infeasible zero run (extreme parameter corners), like
      // run_experiment. Cached too: the outcome is as deterministic as
      // any other cell's.
    }
    if (cache != nullptr) {
      cache->store(keys[static_cast<std::size_t>(index)],
                   cells[static_cast<std::size_t>(index)]);
    }
    // Fault point (util/fault.h): under stall_after_cells:M the M-th
    // completed cell parks every evaluation thread, so the beat below
    // never lands and the heartbeat goes silent — the supervised-hang
    // scenario the orchestrator's --worker-timeout reaper must catch.
    fault::on_cell_evaluated();
    heartbeat.cell_done();
  });

  // A cell is available when this run has its result: a cache hit from
  // any shard's earlier store, or an in-stripe evaluation above.
  const auto available = [&](int index) {
    if (cache != nullptr && cached[static_cast<std::size_t>(index)]) {
      return true;
    }
    return in_shard(index);
  };

  SweepResult result;
  for (const SweepAxis& axis : spec.axes) {
    result.axis_names.push_back(axis.param);
  }
  int skipped = 0;
  for (int index = 0; index < num_cells; ++index) {
    if (!available(index)) ++skipped;
  }
  result.cache_hits = hits;
  result.shard_skipped = skipped;
  result.cache_misses = cache != nullptr ? num_cells - hits - skipped : 0;
  result.points.reserve(points.size());
  for (int p = 0; p < num_points; ++p) {
    // Partial-reduction skip: a sharded run reduces only the points whose
    // every cell it has (its stripe plus cache hits); the remaining
    // points belong to other shards until the coordinator's warm run
    // merges everything. Unsharded runs always reduce every point. A
    // merge_only run additionally names each absent cell, so a degraded
    // coordinator can emit an exact missing-cell manifest next to its
    // partial table.
    bool complete = true;
    for (int r = 0; r < runs; ++r) {
      const int index = p * runs + r;
      complete = complete && available(index);
      if (config_.merge_only && !available(index)) {
        result.missing.push_back(
            MissingCell{p, r, points[static_cast<std::size_t>(p)],
                        keys[static_cast<std::size_t>(index)]});
      }
    }
    if (!complete) continue;
    const auto begin = cells.begin() + static_cast<std::ptrdiff_t>(p) * runs;
    SweepPointResult point;
    point.coords = points[static_cast<std::size_t>(p)];
    point.stats = summarize_runs(std::vector<ThroughputResult>(
        begin, begin + static_cast<std::ptrdiff_t>(runs)));
    result.points.push_back(std::move(point));
  }
  return result;
}

TablePrinter sweep_table(const SweepResult& result) {
  // Packet columns appear only when some point actually ran the packet
  // co-simulation, so every pre-existing sweep's table (and golden file)
  // stays byte-identical.
  bool packet = false;
  bool fct = false;
  for (const SweepPointResult& point : result.points) {
    packet = packet || point.stats.packet_sim_runs > 0;
    fct = fct || point.stats.fct_runs > 0;
  }
  std::vector<std::string> headers = result.axis_names;
  for (const char* metric :
       {"lambda_mean", "lambda_stdev", "lambda_min", "dual_bound_mean",
        "utilization_mean", "infeasible_runs"}) {
    headers.emplace_back(metric);
  }
  if (packet) {
    for (const char* metric : {"packet_mean", "packet_p05", "gap_percent"}) {
      headers.emplace_back(metric);
    }
  }
  if (fct) {
    for (const char* metric : {"fct_p50_ms", "fct_p99_ms", "fct_goodput",
                               "fct_slowdown_p50", "fct_slowdown_p99"}) {
      headers.emplace_back(metric);
    }
  }
  TablePrinter table(std::move(headers));
  for (const SweepPointResult& point : result.points) {
    std::vector<Cell> row;
    for (double coord : point.coords) row.emplace_back(coord);
    row.emplace_back(point.stats.lambda.mean);
    row.emplace_back(point.stats.lambda.stdev);
    row.emplace_back(point.stats.lambda.min);
    row.emplace_back(point.stats.dual_bound.mean);
    row.emplace_back(point.stats.utilization.mean);
    row.emplace_back(static_cast<long long>(point.stats.infeasible_runs));
    if (packet) {
      // Flow-vs-packet gap in percent, against the fluid optimum clamped
      // to line rate (lambda > 1 means spare capacity the packet side
      // cannot use; Fig. 13 clamps the same way).
      const double flow_level = std::min(1.0, point.stats.lambda.mean);
      row.emplace_back(point.stats.packet_mean.mean);
      row.emplace_back(point.stats.packet_p05.mean);
      row.emplace_back(100.0 * (flow_level - point.stats.packet_mean.mean) /
                       std::max(flow_level, 1e-9));
    }
    if (fct) {
      row.emplace_back(point.stats.fct_p50.mean / 1e6);  // ns -> ms
      row.emplace_back(point.stats.fct_p99.mean / 1e6);
      row.emplace_back(point.stats.fct_goodput.mean);
      row.emplace_back(point.stats.fct_slowdown_p50.mean);
      row.emplace_back(point.stats.fct_slowdown_p99.mean);
    }
    table.add_row(std::move(row));
  }
  return table;
}

SweepResult run_spec_scenario(const ScenarioSpec& spec, ScenarioRun& ctx,
                              bool merge_only) {
  SweepRunConfig config;
  config.runs = ctx.runs(spec.quick_runs, spec.full_runs);
  config.epsilon = ctx.options().epsilon;
  config.master_seed = ctx.options().seed;
  config.full = ctx.options().full;
  config.cache_dir = ctx.options().cache_dir;
  config.shard_index = ctx.options().shard_index;
  config.shard_count = ctx.options().shard_count;
  if (!ctx.options().stripe.empty()) {
    config.stripe = stripe_mode_from_name(ctx.options().stripe);
  }
  config.solver_override = ctx.options().solver;
  config.merge_only = merge_only;
  SweepResult result = SweepRunner(spec, config).run();
  ctx.banner(spec.description);
  ctx.table(sweep_table(result));
  if (!config.cache_dir.empty()) {
    // stderr, not the scenario stream: stdout/JSON stay byte-identical
    // between cold and warm runs. The spec hash is shard-agnostic
    // (spec_hash never reads the shard fields), so all shards and the
    // coordinator report the same sweep identity; unsharded runs keep the
    // historical line format exactly (CI greps it).
    std::cerr << "cache " << spec.name << " ["
              << hash_hex(spec_hash(spec, config)) << "]";
    if (config.shard_count > 1) {
      std::cerr << " shard " << config.shard_index << "/"
                << config.shard_count;
    }
    std::cerr << ": " << result.cache_hits << " hits, "
              << result.cache_misses << " misses";
    if (config.shard_count > 1) {
      std::cerr << ", " << result.shard_skipped << " left to other shards";
    }
    std::cerr << " (" << config.cache_dir << ")\n";
  }
  return result;
}

void register_spec_scenario(ScenarioSpec spec) {
  const std::string name = spec.name;
  const std::string description = spec.description;
  // Idempotent, like register_scenario — and if the name is already taken
  // by ANY scenario (spec-backed or not), leave both registries alone so
  // --dump-spec can never emit a spec that is not what `topobench NAME`
  // runs.
  for (const ScenarioInfo* existing : list_scenarios()) {
    if (existing->name == name) return;
  }
  auto shared_spec = std::make_shared<const ScenarioSpec>(std::move(spec));
  spec_registry().push_back(shared_spec);
  register_scenario(ScenarioInfo{name, description,
                                 [shared_spec](ScenarioRun& ctx) {
                                   run_spec_scenario(*shared_spec, ctx);
                                 }});
}

const ScenarioSpec* find_spec_scenario(const std::string& name) {
  for (const auto& spec : spec_registry()) {
    if (spec->name == name) return spec.get();
  }
  return nullptr;
}

std::vector<const ScenarioSpec*> list_spec_scenarios() {
  std::vector<const ScenarioSpec*> result;
  result.reserve(spec_registry().size());
  for (const auto& spec : spec_registry()) result.push_back(spec.get());
  std::sort(result.begin(), result.end(),
            [](const ScenarioSpec* a, const ScenarioSpec* b) {
              return a->name < b->name;
            });
  return result;
}

}  // namespace topo::scenario
