#include "scenario/sweep.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "scenario/topo_registry.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace topo::scenario {
namespace {

const std::vector<double>& axis_values(const SweepAxis& axis, bool full) {
  return full && !axis.full_values.empty() ? axis.full_values : axis.values;
}

// Applies one sweep coordinate to the topology params or the eval options.
void bind_coord(const std::string& name, double value, ParamMap& params,
                EvalOptions& options) {
  if (name == "link_failure_fraction") {
    options.failure.link_failure_fraction = value;
  } else if (name == "switch_failure_fraction") {
    options.failure.switch_failure_fraction = value;
  } else if (name == "capacity_factor") {
    options.failure.capacity_factor = value;
  } else if (name == "chunky_fraction") {
    options.chunky_fraction = value;
  } else if (name == "epsilon") {
    options.flow.epsilon = value;
  } else {
    params[name] = value;
  }
}

}  // namespace

bool is_eval_axis(const std::string& param) {
  return param == "link_failure_fraction" ||
         param == "switch_failure_fraction" || param == "capacity_factor" ||
         param == "chunky_fraction" || param == "epsilon";
}

std::vector<std::vector<double>> SweepRunner::enumerate_points() const {
  std::vector<std::vector<double>> points{{}};
  for (const SweepAxis& axis : spec_->axes) {
    const std::vector<double>& values = axis_values(axis, config_.full);
    require(!values.empty(), "sweep axis " + axis.param + " has no values");
    std::vector<std::vector<double>> next;
    next.reserve(points.size() * values.size());
    for (const std::vector<double>& prefix : points) {
      for (double v : values) {
        std::vector<double> point = prefix;
        point.push_back(v);
        next.push_back(std::move(point));
      }
    }
    points = std::move(next);
  }
  return points;
}

SweepResult SweepRunner::run() const {
  const ScenarioSpec& spec = *spec_;
  require(config_.runs >= 1, "sweep requires runs >= 1");
  const FamilyInfo* family = find_family(spec.topology.family);
  require(family != nullptr,
          "unknown topology family: " + spec.topology.family);

  // Reject names the builder would silently ignore (a typo'd axis would
  // otherwise sweep nothing and report identical cells without an error).
  const auto known = [&](const std::string& name) {
    return std::find(family->params.begin(), family->params.end(), name) !=
           family->params.end();
  };
  for (const auto& [name, value] : spec.topology.params) {
    (void)value;
    require(known(name), "unknown " + family->name + " parameter: " + name);
  }
  for (const SweepAxis& axis : spec.axes) {
    require(is_eval_axis(axis.param) || known(axis.param),
            "unknown sweep axis for family " + family->name + ": " +
                axis.param);
  }

  const std::vector<std::vector<double>> points = enumerate_points();
  const int runs = config_.runs;
  const int num_points = static_cast<int>(points.size());

  bool reuse = spec.reuse_topology;
  for (const SweepAxis& axis : spec.axes) {
    if (!is_eval_axis(axis.param)) reuse = false;
  }

  // With reuse, run r's topology is independent of the sweep point: build
  // the `runs` instances once up front (in parallel) and share them.
  std::vector<std::shared_ptr<const BuiltTopology>> shared(
      static_cast<std::size_t>(reuse ? runs : 0));
  if (reuse) {
    parallel_for(runs, [&](int r) {
      try {
        shared[static_cast<std::size_t>(r)] =
            std::make_shared<const BuiltTopology>(family->build(
                spec.topology.params,
                Rng::derive_seed(config_.master_seed,
                                 2 * static_cast<std::uint64_t>(r))));
      } catch (const ConstructionFailure&) {
        // Left null; the cells below record infeasible runs.
      }
    });
  }

  // One flat grid of (point, run) cells over the pool; results land in
  // per-cell slots and are reduced serially below.
  std::vector<ThroughputResult> cells(
      static_cast<std::size_t>(num_points) * static_cast<std::size_t>(runs));
  parallel_for(num_points * runs, [&](int index) {
    const int point = index / runs;
    const int run_index = index % runs;
    ParamMap params = spec.topology.params;
    EvalOptions options;
    options.flow.epsilon = config_.epsilon;
    options.traffic = spec.traffic;
    options.chunky_fraction = spec.chunky_fraction;
    options.failure = spec.failure;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      bind_coord(spec.axes[a].param,
                 points[static_cast<std::size_t>(point)][a], params, options);
    }
    const std::uint64_t point_seed = Rng::derive_seed(
        config_.master_seed, static_cast<std::uint64_t>(point));
    // In reuse mode the whole run-r stream (topology, workload, failure
    // draw) is point-independent: only the axis value changes between
    // points, so e.g. a link-failure sweep degrades prefix-nested failed
    // sets of ONE fixed (topology, workload) pair per run (curves
    // monotone up to FPTAS slack; see core/failure.h).
    const std::uint64_t traffic_seed = Rng::derive_seed(
        reuse ? config_.master_seed : point_seed,
        2 * static_cast<std::uint64_t>(run_index) + 1);
    try {
      if (reuse) {
        const auto& topology = shared[static_cast<std::size_t>(run_index)];
        if (topology != nullptr) {
          cells[static_cast<std::size_t>(index)] =
              evaluate_throughput(*topology, options, traffic_seed);
        }
        return;
      }
      const BuiltTopology topology = family->build(
          params, Rng::derive_seed(
                      point_seed, 2 * static_cast<std::uint64_t>(run_index)));
      cells[static_cast<std::size_t>(index)] =
          evaluate_throughput(topology, options, traffic_seed);
    } catch (const ConstructionFailure&) {
      // Infeasible zero run (extreme parameter corners), like
      // run_experiment.
    }
  });

  SweepResult result;
  for (const SweepAxis& axis : spec.axes) {
    result.axis_names.push_back(axis.param);
  }
  result.points.reserve(points.size());
  for (int p = 0; p < num_points; ++p) {
    const auto begin = cells.begin() + static_cast<std::ptrdiff_t>(p) * runs;
    SweepPointResult point;
    point.coords = points[static_cast<std::size_t>(p)];
    point.stats = summarize_runs(std::vector<ThroughputResult>(
        begin, begin + static_cast<std::ptrdiff_t>(runs)));
    result.points.push_back(std::move(point));
  }
  return result;
}

TablePrinter sweep_table(const SweepResult& result) {
  std::vector<std::string> headers = result.axis_names;
  for (const char* metric :
       {"lambda_mean", "lambda_stdev", "lambda_min", "dual_bound_mean",
        "utilization_mean", "infeasible_runs"}) {
    headers.emplace_back(metric);
  }
  TablePrinter table(std::move(headers));
  for (const SweepPointResult& point : result.points) {
    std::vector<Cell> row;
    for (double coord : point.coords) row.emplace_back(coord);
    row.emplace_back(point.stats.lambda.mean);
    row.emplace_back(point.stats.lambda.stdev);
    row.emplace_back(point.stats.lambda.min);
    row.emplace_back(point.stats.dual_bound.mean);
    row.emplace_back(point.stats.utilization.mean);
    row.emplace_back(static_cast<long long>(point.stats.infeasible_runs));
    table.add_row(std::move(row));
  }
  return table;
}

void register_spec_scenario(ScenarioSpec spec) {
  const std::string name = spec.name;
  const std::string description = spec.description;
  auto shared_spec = std::make_shared<const ScenarioSpec>(std::move(spec));
  register_scenario(ScenarioInfo{
      name, description, [shared_spec](ScenarioRun& ctx) {
        SweepRunConfig config;
        config.runs =
            ctx.runs(shared_spec->quick_runs, shared_spec->full_runs);
        config.epsilon = ctx.options().epsilon;
        config.master_seed = ctx.options().seed;
        config.full = ctx.options().full;
        const SweepResult result = SweepRunner(*shared_spec, config).run();
        ctx.banner(shared_spec->description);
        ctx.table(sweep_table(result));
      }});
}

}  // namespace topo::scenario
