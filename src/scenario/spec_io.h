// JSON (de)serialization of ScenarioSpec — the spec-file front end.
//
// A sweep that used to require a new registration in builtin.cc is now a
// JSON file: `topobench --spec FILE` parses, validates, and runs it
// through the same SweepRunner as every registered sweep scenario, and
// `topobench --dump-spec NAME` round-trips any registered spec-backed
// scenario to a file. Serialization is canonical — fixed field order,
// params sorted by key, shortest-round-trip numbers — so
// dump -> parse -> dump is byte-identical and the emitted string doubles
// as the hashing material for the result cache (cache.h).
//
// Parsing is strict, extending the "fail loudly" contract of
// util/flags.h and the sweep runner to the file front end: unknown keys,
// misspelled axis/parameter names, wrong types, and out-of-range values
// all raise InvalidArgument naming the offending key instead of silently
// running a different experiment.
#ifndef TOPODESIGN_SCENARIO_SPEC_IO_H
#define TOPODESIGN_SCENARIO_SPEC_IO_H

#include <string>

#include "scenario/spec.h"

namespace topo::scenario {

/// Canonical JSON for a spec (human-editable, newline-terminated).
[[nodiscard]] std::string spec_to_json(const ScenarioSpec& spec);

/// Parses and validates a spec document. Raises InvalidArgument naming
/// the offending key on unknown keys, wrong types, out-of-range values,
/// unknown topology families/parameters, and unknown axis names.
[[nodiscard]] ScenarioSpec spec_from_json(const std::string& text);

/// Reads and parses a spec file; the error message names the path.
[[nodiscard]] ScenarioSpec load_spec_file(const std::string& path);

/// Semantic checks shared by spec_from_json and programmatic callers:
/// known family, known parameter and axis names, value ranges, run
/// counts >= 1, non-empty axis values. Raises InvalidArgument.
void validate_spec(const ScenarioSpec& spec);

/// Spec-file name of a traffic kind ("permutation" / "all_to_all" /
/// "chunky") and its strict inverse.
[[nodiscard]] const char* traffic_kind_name(TrafficKind kind);
[[nodiscard]] TrafficKind traffic_kind_from_name(const std::string& name);

/// Spec-file name of a packet-sim route mode ("sampled" / "ecmp_hash")
/// and its strict inverse.
[[nodiscard]] const char* route_mode_name(sim::RouteMode mode);
[[nodiscard]] sim::RouteMode route_mode_from_name(const std::string& name);

/// Spec-file name of a solver mode ("exact" / "approx") and its strict
/// inverse.
[[nodiscard]] const char* solver_mode_name(SolverMode mode);
[[nodiscard]] SolverMode solver_mode_from_name(const std::string& name);

/// CLI entry: runs the spec in `path` with the standard scenario flags
/// (argv[0] is skipped, as in scenario_main). Returns a shell exit code.
int spec_file_main(const std::string& path, int argc, const char* const* argv);

/// CLI entry: writes the canonical JSON of registered spec scenario
/// `name` (unique prefixes resolve) to `out_path`, or stdout when empty.
/// Figure scenarios are not spec-backed and are rejected with a message.
int dump_spec_main(const std::string& name, const std::string& out_path);

}  // namespace topo::scenario

#endif  // TOPODESIGN_SCENARIO_SPEC_IO_H
