// Content-addressed on-disk cache for sweep cell results.
//
// A sweep is a grid of (sweep-point × run) cells, and each cell's result
// is a pure function of what went into it: topology family + bound
// parameters, bound evaluation options, the derived topology/traffic
// seeds, and the solver version. Hashing exactly that identity makes
// cells content-addressable: re-running a sweep after editing one axis
// value recomputes only the new column, a --runs 3 warm run reuses the
// first three runs of an earlier --runs 5 sweep, and two specs that bind
// to the same cells share entries. Cached cells store every scalar the
// ordered reduction reads (at shortest-round-trip precision, so reloaded
// numbers are bit-exact) but drop the per-arc flow vector, which sweep
// summaries never read.
//
// Trust model: cache files are re-verified on load — wrong schema, a key
// mismatch, a checksum mismatch, or any parse failure counts as a miss
// and the cell is recomputed, never trusted. Failed files are also
// QUARANTINED (renamed to `<cell>.json.corrupt`, one warning per
// process) so the slot is cleanly re-stored instead of being re-parsed
// and re-missed on every warm run, and the bad bytes survive for
// diagnosis.
#ifndef TOPODESIGN_SCENARIO_CACHE_H
#define TOPODESIGN_SCENARIO_CACHE_H

#include <cstdint>
#include <string>

#include "core/evaluate.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"

namespace topo::scenario {

/// Version tag mixed into every cache key and the spec hash. Bump it
/// whenever solver numerics change (it invalidates every cached cell);
/// the golden suite catching an unintended numeric change is the cue.
inline constexpr const char* kSolverVersionTag = "fptas-csr-v2";

/// Approximate-solver version tag, mixed into the key of approx-mode
/// cells only (SolverMode::kApprox) — the exact-mode population is never
/// perturbed by approx numerics changes, and bumping this tag on a
/// warm-tree/batching/bucketing change invalidates exactly the approx
/// cells.
inline constexpr const char* kSolverApproxVersionTag = "fptas-approx-v1";

/// Simulator version tag, mixed into the key of packet-sim cells only —
/// bumping it on a transport/queueing numerics change invalidates packet
/// cells without discarding the (much larger) flow-only population.
inline constexpr const char* kPacketSimVersionTag = "mptcp-sim-v1";

/// Finite-flow workload version tag, mixed into the key of FCT cells
/// only — bumping it on an arrival/CDF/FCT numerics change invalidates
/// workload cells without touching bulk packet or flow-only cells.
inline constexpr const char* kFctWorkloadVersionTag = "fct-v2";

/// Topology-search version tag, mixed into the key of search-candidate
/// cells only (CellIdentity::candidate non-empty) and into the spec hash
/// of specs carrying a search block — bumping it on a search-semantics
/// change invalidates exactly the candidate cells, never the sweep
/// population.
inline constexpr const char* kSearchVersionTag = "search-v1";

/// FNV-1a 64 over a byte string (optionally chained via `basis`).
[[nodiscard]] std::uint64_t fnv1a64(
    const std::string& bytes, std::uint64_t basis = 14695981039346656037ULL);

/// 16-digit lowercase hex of a 64-bit hash (cache file names).
[[nodiscard]] std::string hash_hex(std::uint64_t hash);

/// Hash of one whole sweep invocation: the canonical spec JSON (covering
/// every spec field, spec_io.h) + master seed + epsilon + runs + mode +
/// solver version tag. Any single-field mutation changes it.
[[nodiscard]] std::uint64_t spec_hash(const ScenarioSpec& spec,
                                      const SweepRunConfig& config);

/// Everything one (point, run) cell's result is a function of.
struct CellIdentity {
  std::string family;
  ParamMap params;     ///< Topology parameters after axis binding.
  EvalOptions options; ///< Evaluation options after axis binding.
  std::uint64_t topo_seed = 0;
  std::uint64_t traffic_seed = 0;
  /// Search-candidate identity (search/search_space.h): the 16-hex
  /// canonical-topology hash of a CONCRETE candidate design. Empty for
  /// sweep cells (the default — their identity is family + params +
  /// seeds); when set it joins the hashed material (together with
  /// kSearchVersionTag), so rediscovering the same wiring through a
  /// different mutation path lands on the same cell.
  std::string candidate;
};

/// Canonical serialization of a cell identity (the hashing material).
[[nodiscard]] std::string cell_identity_json(const CellIdentity& cell);

/// Content address of a cell: fnv1a64 over cell_identity_json.
[[nodiscard]] std::uint64_t cell_key(const CellIdentity& cell);

/// On-disk cell store: one JSON file per cell under `dir`, named by the
/// cell key. Loads verify schema, key, solver tag, and a checksum;
/// stores write-to-temp-then-rename so concurrent writers — pool threads
/// within one sweep, or shard processes sharing the dir (sweep.h
/// sharding) — never expose a torn file: racing stores of the same key
/// each publish a complete document and any of them verifies.
class ResultCache {
 public:
  /// Creates `dir` (and parents) if missing; raises InvalidArgument when
  /// that fails. Also sweeps stale temp files — `*.json.tmp.*` clearly
  /// predating this process (minus a clock-skew safety margin) — left
  /// behind by writers that crashed between write and rename, so shared
  /// dirs don't accumulate garbage across shard runs.
  explicit ResultCache(std::string dir);

  /// True when a verified entry for `key` exists; fills `*out` with the
  /// cached result (arc_flow left empty). Corrupt entries return false
  /// after being quarantined: the bad file is renamed to
  /// `<cell>.json.corrupt` (warning once per process) so the recomputed
  /// cell re-stores into a clean slot.
  [[nodiscard]] bool load(std::uint64_t key, ThroughputResult* out) const;

  /// Persists a cell result under `key`.
  void store(std::uint64_t key, const ThroughputResult& result) const;

  /// Path of the cell file for `key` (exposed for tests and tooling).
  [[nodiscard]] std::string cell_path(std::uint64_t key) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace topo::scenario

#endif  // TOPODESIGN_SCENARIO_CACHE_H
