#include "scenario/orchestrator.h"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

#include "scenario/cache.h"
#include "scenario/spec_io.h"
#include "scenario/sweep.h"
#include "util/error.h"
#include "util/exit_codes.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/subprocess.h"

namespace topo::scenario {
namespace {

using SteadyClock = std::chrono::steady_clock;

// One stripe's supervision state. A stripe is the unit of retry: its
// worker either finishes cleanly (kDone), or dies/stalls and is requeued
// until the attempt budget runs out (kFailed).
struct Stripe {
  enum class State { kQueued, kRunning, kDone, kFailed };

  int index = 0;
  State state = State::kQueued;
  int attempts = 0;  ///< Spawns so far (1 == first try).
  SteadyClock::time_point ready_at;  ///< Backoff gate for kQueued.
  std::optional<Subprocess> proc;
  std::string heartbeat_path;
  std::string log_path;  ///< Current attempt's combined stdout+stderr.
};

std::string shard_arg(int index, int count) {
  return std::to_string(index) + "/" + std::to_string(count);
}

// (Re)writes a stripe's heartbeat so supervision starts from spawn time,
// not from whenever the previous attempt last beat.
void touch_heartbeat(const std::string& path, int attempt) {
  std::ofstream out(path, std::ios::trunc);
  out << "spawned attempt " << attempt << "\n";
}

void write_manifest(const std::string& path, const OrchestratorConfig& config,
                    const ScenarioSpec& spec,
                    const std::vector<int>& failed_stripes,
                    const std::vector<MissingCell>& missing) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "orchestrate: cannot write manifest " << path << "\n";
    return;
  }
  out << "{\n  \"spec\": " << json_string(spec.name) << ",\n"
      << "  \"spec_path\": " << json_string(config.spec_path) << ",\n"
      << "  \"cache_dir\": " << json_string(config.cache_dir) << ",\n"
      << "  \"stripes\": " << config.workers << ",\n"
      << "  \"failed_stripes\": [";
  for (std::size_t i = 0; i < failed_stripes.size(); ++i) {
    if (i > 0) out << ", ";
    out << failed_stripes[i];
  }
  out << "],\n  \"missing_cells\": [";
  for (std::size_t i = 0; i < missing.size(); ++i) {
    const MissingCell& cell = missing[i];
    out << (i > 0 ? "," : "") << "\n    {\"point\": " << cell.point
        << ", \"run\": " << cell.run << ", \"coords\": [";
    for (std::size_t c = 0; c < cell.coords.size(); ++c) {
      if (c > 0) out << ", ";
      out << json_number(cell.coords[c]);
    }
    out << "], \"key\": " << json_string(hash_hex(cell.key)) << "}";
  }
  out << (missing.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace

OrchestrationReport orchestrate(const OrchestratorConfig& config,
                                const ScenarioSpec& spec,
                                ScenarioRun& merge_ctx) {
  require(!config.worker_exe.empty(), "orchestrate: worker_exe is required");
  require(!config.spec_path.empty(), "orchestrate: spec_path is required");
  require(!config.cache_dir.empty(), "orchestrate: cache_dir is required");
  require(config.workers >= 1, "orchestrate: workers must be >= 1");
  require(config.max_retries >= 0, "orchestrate: max_retries must be >= 0");
  require(config.worker_timeout > 0,
          "orchestrate: worker_timeout must be positive");
  require(config.backoff_ms >= 0, "orchestrate: backoff must be >= 0");

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(config.cache_dir + "/heartbeats", ec);
  fs::create_directories(config.cache_dir + "/logs", ec);
  require(!ec, "orchestrate: cannot create " + config.cache_dir +
                   " subdirectories");

  const int stripes = config.workers;
  const auto timeout = std::chrono::duration<double>(config.worker_timeout);

  std::vector<Stripe> table(static_cast<std::size_t>(stripes));
  for (int i = 0; i < stripes; ++i) {
    table[static_cast<std::size_t>(i)].index = i;
    table[static_cast<std::size_t>(i)].ready_at = SteadyClock::now();
    table[static_cast<std::size_t>(i)].heartbeat_path =
        config.cache_dir + "/heartbeats/shard-" + std::to_string(i);
  }

  OrchestrationReport report;

  const auto describe = [](const Subprocess::Status& status) {
    if (status.state == Subprocess::Status::State::kSignaled) {
      return "killed by signal " + std::to_string(status.term_signal);
    }
    return "exited " + std::to_string(status.exit_code);
  };

  // Failure path shared by crash and stall: requeue with exponential
  // backoff while budget remains, else mark the stripe dead. The cache
  // keeps every cell a dead attempt DID publish, so the next attempt
  // resumes where its predecessor stopped instead of starting over.
  const auto handle_failure = [&](Stripe& stripe, const std::string& why) {
    stripe.proc.reset();
    if (stripe.attempts > config.max_retries) {
      stripe.state = Stripe::State::kFailed;
      std::cerr << "orchestrate: shard " << shard_arg(stripe.index, stripes)
                << " " << why << " on attempt " << stripe.attempts
                << "; retries exhausted (" << config.max_retries
                << " allowed), stripe abandoned (last log: "
                << stripe.log_path << ")\n";
      return;
    }
    const int exponent = std::min(stripe.attempts - 1, 20);
    const long delay_ms = std::min(
        static_cast<long>(config.backoff_ms) * (1L << exponent), 60'000L);
    stripe.state = Stripe::State::kQueued;
    stripe.ready_at =
        SteadyClock::now() + std::chrono::milliseconds(delay_ms);
    ++report.total_retries;
    std::cerr << "orchestrate: shard " << shard_arg(stripe.index, stripes)
              << " " << why << " on attempt " << stripe.attempts
              << "; retrying in " << delay_ms << "ms\n";
  };

  const auto spawn = [&](Stripe& stripe) {
    ++stripe.attempts;
    touch_heartbeat(stripe.heartbeat_path, stripe.attempts);
    stripe.log_path = config.cache_dir + "/logs/shard-" +
                      std::to_string(stripe.index) + ".attempt-" +
                      std::to_string(stripe.attempts) + ".log";
    std::vector<std::string> argv = {
        config.worker_exe, "--spec",      config.spec_path,
        "--shard",         shard_arg(stripe.index, stripes),
        "--cache-dir",     config.cache_dir};
    argv.insert(argv.end(), config.worker_flags.begin(),
                config.worker_flags.end());
    SpawnOptions options;
    options.env = config.worker_env;
    options.env.emplace_back(kHeartbeatEnvVar, stripe.heartbeat_path);
    options.log_path = stripe.log_path;
    stripe.proc = Subprocess::spawn(argv, options);
    stripe.state = Stripe::State::kRunning;
    std::cerr << "orchestrate: spawned shard "
              << shard_arg(stripe.index, stripes) << " (attempt "
              << stripe.attempts << ", pid " << stripe.proc->pid()
              << ", log " << stripe.log_path << ")\n";
  };

  // Supervision loop: poll every worker, reap/requeue failures, kill
  // heartbeat-silent workers, start queued stripes whose backoff has
  // elapsed. One worker per stripe means `stripes` is also the
  // concurrency bound.
  while (true) {
    int settled = 0;
    int running = 0;
    for (Stripe& stripe : table) {
      if (stripe.state == Stripe::State::kDone ||
          stripe.state == Stripe::State::kFailed) {
        ++settled;
        continue;
      }
      if (stripe.state != Stripe::State::kRunning) continue;
      ++running;
      const Subprocess::Status status = stripe.proc->poll();
      if (status.ok()) {
        stripe.state = Stripe::State::kDone;
        stripe.proc.reset();
        --running;
        std::cerr << "orchestrate: shard " << shard_arg(stripe.index, stripes)
                  << " done (attempt " << stripe.attempts << ")\n";
        continue;
      }
      if (!status.running()) {
        --running;
        handle_failure(stripe, describe(status));
        continue;
      }
      // Liveness: mtime silence beyond the timeout means wedged, not
      // slow — the sweep beats per CELL, so any forward progress
      // refreshes it. Compare in the filesystem clock's own domain; a
      // missing heartbeat file (deleted externally) counts as stale.
      const auto written = fs::last_write_time(stripe.heartbeat_path, ec);
      const bool stale =
          ec || (fs::file_time_type::clock::now() - written >
                 std::chrono::duration_cast<fs::file_time_type::duration>(
                     timeout));
      if (stale) {
        ++report.stall_kills;
        --running;
        std::cerr << "orchestrate: shard " << shard_arg(stripe.index, stripes)
                  << " heartbeat silent past " << config.worker_timeout
                  << "s; killing pid " << stripe.proc->pid() << "\n";
        stripe.proc->send_signal(SIGKILL);
        stripe.proc->wait();
        handle_failure(stripe, "stalled (heartbeat timeout)");
      }
    }
    if (settled == stripes) break;
    for (Stripe& stripe : table) {
      if (running >= config.workers) break;
      if (stripe.state == Stripe::State::kQueued &&
          stripe.ready_at <= SteadyClock::now()) {
        spawn(stripe);
        ++running;
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config.poll_interval_ms));
  }

  for (const Stripe& stripe : table) {
    if (stripe.state == Stripe::State::kFailed) {
      report.failed_stripes.push_back(stripe.index);
    }
  }

  // Coordinator merge, in-process. Healthy path: a plain unsharded warm
  // run — cache hits for everything the workers published, inline
  // recompute for any stragglers — so stdout/CSV/JSON are byte-identical
  // to a single-process run by construction. Degraded path: merge_only,
  // which reduces the complete points and NAMES the missing cells
  // instead of recomputing a dead stripe's workload inline.
  const bool degraded = !report.failed_stripes.empty();
  const SweepResult merged = run_spec_scenario(spec, merge_ctx, degraded);
  report.merge_cache_hits = merged.cache_hits;
  report.merge_cache_misses = merged.cache_misses;
  if (degraded) {
    report.missing_cells = merged.missing.size();
    report.manifest_path = config.cache_dir + "/missing-cells.json";
    write_manifest(report.manifest_path, config, spec, report.failed_stripes,
                   merged.missing);
    report.exit_code = kExitPartial;
    std::cerr << "orchestrate: PARTIAL RESULTS: "
              << report.failed_stripes.size() << " of " << stripes
              << " stripes exhausted retries; " << merged.missing.size()
              << " cells missing, " << merged.points.size()
              << " complete points emitted (manifest: "
              << report.manifest_path << ")\n";
  } else {
    std::cerr << "orchestrate: all " << stripes
              << " stripes complete (retries: " << report.total_retries
              << ", stall kills: " << report.stall_kills << "); merge "
              << merged.cache_hits << " hits, " << merged.cache_misses
              << " misses\n";
  }
  return report;
}

int orchestrate_main(const std::string& self_exe, int argc,
                     const char* const* argv) {
  register_builtin_scenarios();
  try {
    const Flags flags(argc, argv,
                      {"spec", "cache-dir", "workers", "max-retries",
                       "worker-timeout", "backoff", "runs", "eps", "seed",
                       "stripe", "csv", "full", "smoke", "out", "threads"});
    OrchestratorConfig config;
    config.worker_exe = self_exe;
    config.spec_path = flags.get_string("spec", "");
    require(!config.spec_path.empty(), "orchestrate requires --spec FILE");
    config.cache_dir = flags.get_string("cache-dir", "");
    require(!config.cache_dir.empty(),
            "orchestrate requires --cache-dir DIR (workers publish their "
            "stripes through it)");
    config.workers = flags.get_int("workers", 2);
    require(config.workers >= 1 && config.workers <= 512,
            "--workers wants 1..512");
    config.max_retries = flags.get_int("max-retries", 2);
    require(config.max_retries >= 0, "--max-retries must be >= 0");
    config.worker_timeout = flags.get_double("worker-timeout", 300.0);
    require(config.worker_timeout > 0, "--worker-timeout must be positive");
    config.backoff_ms = flags.get_int("backoff", 500);
    require(config.backoff_ms >= 0, "--backoff must be >= 0");

    // Chaos plumbing: a TOPOBENCH_FAULT in our environment is meant for
    // the supervised workers, never the supervisor — an armed fault in
    // this process would crash or stall the coordinator merge itself.
    // Move it: forward to worker environments, scrub it from ours.
    if (const char* fault_env = std::getenv(fault::kFaultEnvVar);
        fault_env != nullptr && fault_env[0] != '\0') {
      config.worker_env.emplace_back(fault::kFaultEnvVar, fault_env);
      ::unsetenv(fault::kFaultEnvVar);
    }

    // Fail fast on a bad spec before any worker spawns (the workers
    // would each reject it identically, attempt by pointless attempt).
    const ScenarioSpec spec = load_spec_file(config.spec_path);

    // Grid-shape flags forward to workers verbatim; output-shape flags
    // (--csv/--out) stay with the in-process merge. Both views resolve
    // from ONE parse so workers and coordinator cannot disagree.
    // --stripe rides along too: it only changes which shard computes
    // which cells, so the unsharded merge is unaffected either way.
    for (const char* name : {"runs", "eps", "seed", "stripe"}) {
      if (flags.has(name)) {
        config.worker_flags.push_back(std::string("--") + name + "=" +
                                      flags.get_string(name, ""));
      }
    }
    for (const char* name : {"full", "smoke"}) {
      if (flags.get_bool(name)) {
        config.worker_flags.push_back(std::string("--") + name);
      }
    }
    std::vector<std::string> merge_args = {"orchestrate-merge"};
    merge_args.insert(merge_args.end(), config.worker_flags.begin(),
                      config.worker_flags.end());
    merge_args.push_back("--cache-dir=" + config.cache_dir);
    for (const char* name : {"out", "threads"}) {
      if (flags.has(name)) {
        merge_args.push_back(std::string("--") + name + "=" +
                             flags.get_string(name, ""));
      }
    }
    if (flags.get_bool("csv")) merge_args.push_back("--csv");
    std::vector<const char*> merge_argv;
    merge_argv.reserve(merge_args.size());
    for (const std::string& arg : merge_args) {
      merge_argv.push_back(arg.c_str());
    }
    // Parsed up front so a bad pass-through value (or an impossible
    // --threads) fails before any worker spawns; --threads also exports
    // TOPOBENCH_THREADS here, which the workers inherit.
    const ScenarioOptions options = parse_scenario_options(
        static_cast<int>(merge_argv.size()), merge_argv.data());

    ScenarioRun run(options, std::cout);
    const OrchestrationReport report = orchestrate(config, spec, run);
    if (!options.out_path.empty()) {
      std::ofstream out(options.out_path);
      if (!out) {
        std::cerr << "cannot write " << options.out_path << "\n";
        return kExitInternal;
      }
      write_scenario_json(out, spec.name, options, run.tables());
    }
    return report.exit_code;
  } catch (const InvalidArgument& e) {
    std::cerr << e.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "orchestrate: internal error: " << e.what() << "\n";
    return kExitInternal;
  }
}

}  // namespace topo::scenario
