// Declarative experiment specifications.
//
// A ScenarioSpec names a topology family (topo_registry.h), a workload, a
// failure model, and a set of sweep axes; the SweepRunner (sweep.h) turns
// it into a sharded grid of (sweep-point × run) evaluations. This is the
// "one-line scenario" layer: a new failure sweep or traffic mix is a spec
// literal, not a new binary.
#ifndef TOPODESIGN_SCENARIO_SPEC_H
#define TOPODESIGN_SCENARIO_SPEC_H

#include <map>
#include <string>
#include <vector>

#include "core/evaluate.h"

namespace topo::scenario {

/// Named numeric parameters for a topology family (missing keys fall back
/// to the family's defaults; see topo_registry.cc for each family's set).
using ParamMap = std::map<std::string, double>;

/// Which topology family to build, with its fixed (non-swept) parameters.
struct TopologySpec {
  std::string family;
  ParamMap params;
};

/// One sweep dimension. The parameter name either targets the topology
/// (any family parameter) or, for the reserved names below, the evaluation:
///   "link_failure_fraction", "switch_failure_fraction"
///       -> the uniform failure component,
///   "blast_switch_fraction", "blast_probability"
///       -> the correlated blast-radius component,
///   "class_failure_fraction:<class>" (e.g. "class_failure_fraction:tor")
///       -> that class's per-class failure rate,
///   "targeted_link_cuts" -> the adversarial top-k link cuts (integers),
///   "capacity_factor"    -> the surviving-link capacity derating,
///   "chunky_fraction"    -> the chunky traffic knob,
///   "hot_fraction", "hot_multiplier" -> the hotspot traffic knobs,
///   "stride"             -> the stride traffic step (integers),
///   "load"               -> the FCT workload's offered load fraction,
///   "fan_in"             -> the incast fan-in (integers; requires the
///                           workload's "pattern": "incast"),
///   "cdf"                -> the FCT workload's flow-size CDF, as an
///                           integer index into flow_size_cdfs(),
///   "epsilon"            -> the FPTAS accuracy,
///   "solver_mode"        -> the solver mode (0 = exact, 1 = approx).
struct SweepAxis {
  std::string param;
  std::vector<double> values;       ///< Smoke-mode sweep points.
  std::vector<double> full_values;  ///< Paper-fidelity points (empty: reuse values).
};

/// Optional topology-search block (src/search/driver.h): when enabled the
/// spec describes a design-space search over its topology family instead
/// of a sweep — a seeded random-restart hill climb (temperature 0) or
/// simulated anneal (temperature > 0) maximizing `objective` under the
/// cost weights below. Legacy specs leave it disabled and serialize
/// byte-identically to before the block existed.
struct SearchSpec {
  bool enabled = false;
  /// "throughput_per_cost" (mean lambda / total cost) or "throughput".
  std::string objective = "throughput_per_cost";
  int budget = 20;     ///< Mutation steps per restart.
  int restarts = 2;    ///< Independent seeded restarts.
  int population = 4;  ///< Neighbors evaluated per step.
  /// 0 = strict hill climbing; > 0 = simulated annealing with this
  /// initial temperature, cooled by 0.95 per step.
  double temperature = 0.0;
  /// Move names (search/search_space.h): "rewire", "server_shift".
  std::vector<std::string> moves = {"rewire"};
  /// Cost-model weights (search/cost_model.h).
  double port_cost = 1.0;
  double cable_cost = 0.1;
  double switch_cost = 0.0;
  std::map<std::string, double> class_cost;
  int floor_columns = 8;
};

/// A declarative scenario: topology family × sweep axes × traffic kind ×
/// failure model × run counts. Multiple axes form their cartesian product
/// (first axis slowest).
struct ScenarioSpec {
  std::string name;
  std::string description;
  TopologySpec topology;
  TrafficKind traffic = TrafficKind::kPermutation;
  double chunky_fraction = 1.0;
  /// Hotspot traffic knobs (TrafficKind::kHotspot only).
  double hot_fraction = 0.1;
  double hot_multiplier = 4.0;
  /// Stride traffic step (TrafficKind::kStride only).
  int stride = 1;
  /// Base failure spec (core/failure.h); axes with reserved names override
  /// its fields per sweep point.
  FailureSpec failure;
  /// Optional packet-level co-simulation (core/evaluate.h): when enabled,
  /// every cell also runs the MPTCP packet simulator over the same drawn
  /// permutation and the sweep table grows packet_mean / packet_p05 /
  /// gap_percent columns. Permutation or stride traffic only — unless the
  /// nested fct workload is enabled, in which case every cell instead runs
  /// the finite-flow Poisson workload and the table grows
  /// fct_p50_ms / fct_p99_ms / fct_goodput columns.
  PacketSimOptions packet_sim;
  /// Solver mode (flow/concurrent_flow.h): kExact (default) reproduces
  /// the historical numbers bit for bit; kApprox opts the spec into the
  /// warm-started batched-parallel solver (same epsilon guarantee,
  /// different — still certified — numbers). A "solver_mode" axis or the
  /// --solver CLI flag overrides this per point / per run.
  SolverMode solver = SolverMode::kExact;
  /// Optional topology-search block; incompatible with sweep axes.
  SearchSpec search;
  std::vector<SweepAxis> axes;
  int quick_runs = 3;
  int full_runs = 20;
  /// When true and every axis is evaluation-side (reserved names only),
  /// run r builds ONE topology shared by all sweep points and also keeps
  /// its workload/failure stream point-independent, instead of one
  /// topology per (point, run) cell. This is the "sweep failures on a
  /// fixed RRG" shape: it skips redundant construction work and, for
  /// link-failure axes, degrades prefix-nested failed sets of a fixed
  /// (topology, workload) pair per run — so curves are monotone up to
  /// FPTAS epsilon slack (see core/failure.h for the exact contract).
  bool reuse_topology = false;
};

/// Axis-name prefix selecting one class's per-class failure rate; the
/// remainder of the name is the class (BuiltTopology::class_names entry),
/// e.g. "class_failure_fraction:tor".
inline const std::string kClassAxisPrefix = "class_failure_fraction:";

/// True for axis names bound to evaluation options rather than topology
/// parameters.
[[nodiscard]] bool is_eval_axis(const std::string& param);

}  // namespace topo::scenario

#endif  // TOPODESIGN_SCENARIO_SPEC_H
