#include "scenario/spec_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "scenario/topo_registry.h"
#include "traffic/workload.h"
#include "util/error.h"
#include "util/exit_codes.h"
#include "util/json.h"

namespace topo::scenario {
namespace {

std::string number_list(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_number(values[i]);
  }
  out += "]";
  return out;
}

// ---- Strict extraction helpers. Every message names the offending key so
// ---- a typo'd spec file points at its own mistake.

[[noreturn]] void fail_key(const std::string& key, const std::string& why) {
  throw InvalidArgument("spec key \"" + key + "\": " + why);
}

void require_only_keys(const JsonValue& object, const std::string& where,
                       const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : object.members) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::string known;
      for (const std::string& name : allowed) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      throw InvalidArgument("spec: unknown key \"" + where + key +
                            "\" (known keys: " + known + ")");
    }
  }
}

const JsonValue& member_of_kind(const JsonValue& object,
                                const std::string& key,
                                JsonValue::Kind kind, const char* kind_name) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) fail_key(key, "missing (required)");
  if (value->kind != kind) fail_key(key, std::string("must be ") + kind_name);
  return *value;
}

std::string get_string(const JsonValue& object, const std::string& key) {
  return member_of_kind(object, key, JsonValue::Kind::kString, "a string")
      .text;
}

int get_run_count(const JsonValue& object, const std::string& key,
                  int fallback) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return fallback;
  if (value->kind != JsonValue::Kind::kNumber) fail_key(key, "must be a number");
  const double number = value->number;
  if (number != std::floor(number)) fail_key(key, "must be an integer");
  if (number < 1 || number > 1e6) fail_key(key, "out of range (want 1..1e6)");
  return static_cast<int>(number);
}

double get_fraction(const JsonValue& object, const std::string& key,
                    double fallback) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return fallback;
  if (value->kind != JsonValue::Kind::kNumber) fail_key(key, "must be a number");
  if (value->number < 0.0 || value->number > 1.0) {
    fail_key(key, "out of range (want [0, 1])");
  }
  return value->number;
}

std::vector<double> get_number_list(const JsonValue& object,
                                    const std::string& key) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return {};
  if (value->kind != JsonValue::Kind::kArray) {
    fail_key(key, "must be an array of numbers");
  }
  std::vector<double> out;
  out.reserve(value->items.size());
  for (const JsonValue& item : value->items) {
    if (item.kind != JsonValue::Kind::kNumber) {
      fail_key(key, "must be an array of numbers");
    }
    out.push_back(item.number);
  }
  return out;
}

}  // namespace

const char* traffic_kind_name(TrafficKind kind) {
  switch (kind) {
    case TrafficKind::kPermutation: return "permutation";
    case TrafficKind::kAllToAll: return "all_to_all";
    case TrafficKind::kChunky: return "chunky";
    case TrafficKind::kHotspot: return "hotspot";
    case TrafficKind::kStride: return "stride";
  }
  throw InvalidArgument("unhandled TrafficKind");
}

TrafficKind traffic_kind_from_name(const std::string& name) {
  if (name == "permutation") return TrafficKind::kPermutation;
  if (name == "all_to_all") return TrafficKind::kAllToAll;
  if (name == "chunky") return TrafficKind::kChunky;
  if (name == "hotspot") return TrafficKind::kHotspot;
  if (name == "stride") return TrafficKind::kStride;
  throw InvalidArgument(
      "spec key \"traffic\": unknown traffic kind \"" + name +
      "\" (known: permutation, all_to_all, chunky, hotspot, stride)");
}

const char* route_mode_name(sim::RouteMode mode) {
  switch (mode) {
    case sim::RouteMode::kSampledPaths: return "sampled";
    case sim::RouteMode::kEcmpHash: return "ecmp_hash";
  }
  throw InvalidArgument("unhandled RouteMode");
}

sim::RouteMode route_mode_from_name(const std::string& name) {
  if (name == "sampled") return sim::RouteMode::kSampledPaths;
  if (name == "ecmp_hash") return sim::RouteMode::kEcmpHash;
  throw InvalidArgument("spec key \"packet_sim.route_mode\": unknown route "
                        "mode \"" + name + "\" (known: sampled, ecmp_hash)");
}

const char* solver_mode_name(SolverMode mode) {
  switch (mode) {
    case SolverMode::kExact: return "exact";
    case SolverMode::kApprox: return "approx";
  }
  throw InvalidArgument("unhandled SolverMode");
}

SolverMode solver_mode_from_name(const std::string& name) {
  if (name == "exact") return SolverMode::kExact;
  if (name == "approx") return SolverMode::kApprox;
  throw InvalidArgument("spec key \"solver\": unknown solver mode \"" + name +
                        "\" (known: exact, approx)");
}

std::string spec_to_json(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"name\": " << json_string(spec.name) << ",\n";
  out << "  \"description\": " << json_string(spec.description) << ",\n";
  out << "  \"topology\": {\n";
  out << "    \"family\": " << json_string(spec.topology.family) << ",\n";
  out << "    \"params\": {";
  bool first = true;
  for (const auto& [key, value] : spec.topology.params) {  // map: sorted
    if (!first) out << ", ";
    first = false;
    out << json_string(key) << ": " << json_number(value);
  }
  out << "}\n  },\n";
  out << "  \"traffic\": " << json_string(traffic_kind_name(spec.traffic))
      << ",\n";
  out << "  \"chunky_fraction\": " << json_number(spec.chunky_fraction)
      << ",\n";
  // Traffic-kind-specific knobs are emitted only for their kind (and
  // rejected by the parser otherwise), keeping legacy spec files
  // byte-identical and dump -> parse -> dump byte-stable.
  if (spec.traffic == TrafficKind::kHotspot) {
    out << "  \"hot_fraction\": " << json_number(spec.hot_fraction) << ",\n";
    out << "  \"hot_multiplier\": " << json_number(spec.hot_multiplier)
        << ",\n";
  }
  if (spec.traffic == TrafficKind::kStride) {
    out << "  \"stride\": " << spec.stride << ",\n";
  }
  // Emitted only in approx mode, so every exact-mode spec file — i.e.
  // every file written before solver modes existed — round-trips
  // byte-identically (and keeps its spec hash).
  if (spec.solver == SolverMode::kApprox) {
    out << "  \"solver\": " << json_string(solver_mode_name(spec.solver))
        << ",\n";
  }
  // The three legacy keys are always emitted (pre-component spec files
  // stay byte-identical); the newer component keys appear only when they
  // differ from their inactive defaults, so dump -> parse -> dump is
  // byte-stable in both directions.
  out << "  \"failure\": {\"link_failure_fraction\": "
      << json_number(spec.failure.uniform.link_fraction)
      << ", \"switch_failure_fraction\": "
      << json_number(spec.failure.uniform.switch_fraction)
      << ", \"capacity_factor\": " << json_number(spec.failure.capacity_factor);
  if (spec.failure.correlated.epicenter_fraction != 0.0) {
    out << ", \"blast_switch_fraction\": "
        << json_number(spec.failure.correlated.epicenter_fraction);
  }
  if (spec.failure.correlated.peer_probability != 0.0) {
    out << ", \"blast_probability\": "
        << json_number(spec.failure.correlated.peer_probability);
  }
  if (!spec.failure.per_class.switch_fraction.empty()) {
    out << ", \"class_failure_fraction\": {";
    bool first_class = true;
    for (const auto& [klass, fraction] :
         spec.failure.per_class.switch_fraction) {  // map: sorted
      if (!first_class) out << ", ";
      first_class = false;
      out << json_string(klass) << ": " << json_number(fraction);
    }
    out << "}";
  }
  if (spec.failure.targeted.link_cuts != 0) {
    out << ", \"targeted_link_cuts\": " << spec.failure.targeted.link_cuts;
  }
  out << "},\n";
  // Emitted only when enabled: pre-packet-sim spec files round-trip
  // byte-identically, and any packet knob perturbs the spec hash.
  if (spec.packet_sim.enabled) {
    const sim::SimParams& p = spec.packet_sim.params;
    out << "  \"packet_sim\": {\"subflows\": " << p.subflows
        << ", \"queue_packets\": " << p.queue_packets
        << ", \"packet_bytes\": " << p.packet_bytes
        << ", \"duration_ns\": " << p.duration_ns
        << ", \"warmup_ns\": " << p.warmup_ns
        << ", \"start_jitter_ns\": " << p.start_jitter_ns
        << ", \"link_delay_ns\": " << p.link_delay_ns
        << ", \"server_rate_gbps\": " << json_number(p.server_rate_gbps)
        << ", \"ewtcp_coupling\": " << (p.ewtcp_coupling ? "true" : "false")
        << ", \"route_mode\": " << json_string(route_mode_name(p.route_mode));
    // The finite-flow workload block appears only when enabled, so
    // pre-FCT packet specs stay byte-identical.
    if (spec.packet_sim.fct.enabled) {
      out << ", \"workload\": {";
      // A custom table serializes as the PARSED points ("cdf_table") and
      // drops both the registry name and any originating file path, so
      // dump -> parse -> dump is byte-stable and the canonical form —
      // which doubles as spec-hash material — depends on the table's
      // contents, never on where it came from.
      if (!spec.packet_sim.fct.custom_cdf.empty()) {
        out << "\"cdf_table\": [";
        bool first_point = true;
        for (const CdfPoint& p : spec.packet_sim.fct.custom_cdf) {
          if (!first_point) out << ", ";
          first_point = false;
          out << "[" << json_number(p.bytes) << ", "
              << json_number(p.cum_prob) << "]";
        }
        out << "]";
      } else {
        out << "\"cdf\": " << json_string(spec.packet_sim.fct.cdf);
      }
      out << ", \"load\": " << json_number(spec.packet_sim.fct.load);
      // The arrival pattern is emitted only when it differs from the
      // uniform default, so pre-incast workload specs stay byte-identical.
      if (spec.packet_sim.fct.pattern == "incast") {
        out << ", \"pattern\": " << json_string(spec.packet_sim.fct.pattern)
            << ", \"fan_in\": " << spec.packet_sim.fct.fan_in;
      }
      out << "}";
    }
    out << "},\n";
  }
  // Emitted only when enabled: pre-search spec files round-trip
  // byte-identically and keep their spec hash.
  if (spec.search.enabled) {
    out << "  \"search\": {\"objective\": "
        << json_string(spec.search.objective)
        << ", \"budget\": " << spec.search.budget
        << ", \"restarts\": " << spec.search.restarts
        << ", \"population\": " << spec.search.population
        << ", \"temperature\": " << json_number(spec.search.temperature)
        << ", \"moves\": [";
    for (std::size_t m = 0; m < spec.search.moves.size(); ++m) {
      if (m > 0) out << ", ";
      out << json_string(spec.search.moves[m]);
    }
    out << "], \"cost\": {\"port\": " << json_number(spec.search.port_cost)
        << ", \"cable\": " << json_number(spec.search.cable_cost)
        << ", \"switch\": " << json_number(spec.search.switch_cost);
    if (!spec.search.class_cost.empty()) {
      out << ", \"class\": {";
      bool first_class = true;
      for (const auto& [klass, value] : spec.search.class_cost) {  // map: sorted
        if (!first_class) out << ", ";
        first_class = false;
        out << json_string(klass) << ": " << json_number(value);
      }
      out << "}";
    }
    out << ", \"floor_columns\": " << spec.search.floor_columns << "}},\n";
  }
  out << "  \"axes\": [";
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const SweepAxis& axis = spec.axes[a];
    if (a > 0) out << ",";
    out << "\n    {\"param\": " << json_string(axis.param)
        << ", \"values\": " << number_list(axis.values);
    if (!axis.full_values.empty()) {
      out << ", \"full_values\": " << number_list(axis.full_values);
    }
    out << "}";
  }
  out << (spec.axes.empty() ? "]" : "\n  ]") << ",\n";
  out << "  \"quick_runs\": " << spec.quick_runs << ",\n";
  out << "  \"full_runs\": " << spec.full_runs << ",\n";
  out << "  \"reuse_topology\": " << (spec.reuse_topology ? "true" : "false")
      << "\n";
  out << "}\n";
  return out.str();
}

ScenarioSpec spec_from_json(const std::string& text) {
  const JsonValue root = parse_json(text);
  require(root.is_object(), "spec: top level must be a JSON object");
  require_only_keys(root, "",
                    {"name", "description", "topology", "traffic",
                     "chunky_fraction", "hot_fraction", "hot_multiplier",
                     "stride", "solver", "failure", "packet_sim", "search",
                     "axes", "quick_runs", "full_runs", "reuse_topology"});

  ScenarioSpec spec;
  spec.name = get_string(root, "name");
  if (spec.name.empty()) fail_key("name", "must be non-empty");
  if (root.find("description") != nullptr) {
    spec.description = get_string(root, "description");
  }

  const JsonValue& topology =
      member_of_kind(root, "topology", JsonValue::Kind::kObject, "an object");
  require_only_keys(topology, "topology.", {"family", "params"});
  spec.topology.family = get_string(topology, "family");
  if (const JsonValue* params = topology.find("params"); params != nullptr) {
    if (!params->is_object()) fail_key("topology.params", "must be an object");
    for (const auto& [key, value] : params->members) {
      if (!value.is_number()) {
        fail_key("topology.params." + key, "must be a number");
      }
      spec.topology.params[key] = value.number;
    }
  }

  if (root.find("traffic") != nullptr) {
    spec.traffic = traffic_kind_from_name(get_string(root, "traffic"));
  }
  if (root.find("solver") != nullptr) {
    spec.solver = solver_mode_from_name(get_string(root, "solver"));
  }
  spec.chunky_fraction = get_fraction(root, "chunky_fraction", 1.0);

  // Kind-specific traffic knobs: strictly rejected when present for a
  // different kind, so a dump -> parse -> dump round trip is byte-stable
  // and a stray knob can't silently do nothing.
  if (root.find("hot_fraction") != nullptr ||
      root.find("hot_multiplier") != nullptr) {
    if (spec.traffic != TrafficKind::kHotspot) {
      fail_key(root.find("hot_fraction") != nullptr ? "hot_fraction"
                                                    : "hot_multiplier",
               "only valid with hotspot traffic");
    }
    spec.hot_fraction = get_fraction(root, "hot_fraction", spec.hot_fraction);
    if (const JsonValue* mult = root.find("hot_multiplier"); mult != nullptr) {
      if (!mult->is_number()) fail_key("hot_multiplier", "must be a number");
      if (mult->number < 1.0 || mult->number > 1e6) {
        fail_key("hot_multiplier", "out of range (want [1, 1e6])");
      }
      spec.hot_multiplier = mult->number;
    }
  }
  if (const JsonValue* stride = root.find("stride"); stride != nullptr) {
    if (spec.traffic != TrafficKind::kStride) {
      fail_key("stride", "only valid with stride traffic");
    }
    if (!stride->is_number()) fail_key("stride", "must be a number");
    if (stride->number != std::floor(stride->number)) {
      fail_key("stride", "must be an integer");
    }
    if (stride->number == 0 || std::abs(stride->number) > 1e9) {
      fail_key("stride", "out of range (want non-zero integers in -1e9..1e9)");
    }
    spec.stride = static_cast<int>(stride->number);
  }

  if (const JsonValue* failure = root.find("failure"); failure != nullptr) {
    if (!failure->is_object()) fail_key("failure", "must be an object");
    require_only_keys(*failure, "failure.",
                      {"link_failure_fraction", "switch_failure_fraction",
                       "capacity_factor", "blast_switch_fraction",
                       "blast_probability", "class_failure_fraction",
                       "targeted_link_cuts"});
    spec.failure.uniform.link_fraction =
        get_fraction(*failure, "link_failure_fraction", 0.0);
    spec.failure.uniform.switch_fraction =
        get_fraction(*failure, "switch_failure_fraction", 0.0);
    spec.failure.correlated.epicenter_fraction =
        get_fraction(*failure, "blast_switch_fraction", 0.0);
    spec.failure.correlated.peer_probability =
        get_fraction(*failure, "blast_probability", 0.0);
    if (const JsonValue* per_class = failure->find("class_failure_fraction");
        per_class != nullptr) {
      if (!per_class->is_object()) {
        fail_key("failure.class_failure_fraction", "must be an object");
      }
      for (const auto& [klass, value] : per_class->members) {
        const std::string where = "failure.class_failure_fraction." + klass;
        if (klass.empty()) fail_key(where, "class name must be non-empty");
        if (!value.is_number()) fail_key(where, "must be a number");
        if (value.number < 0.0 || value.number > 1.0) {
          fail_key(where, "out of range (want [0, 1])");
        }
        spec.failure.per_class.switch_fraction[klass] = value.number;
      }
    }
    if (const JsonValue* cuts = failure->find("targeted_link_cuts");
        cuts != nullptr) {
      if (!cuts->is_number()) {
        fail_key("failure.targeted_link_cuts", "must be a number");
      }
      if (cuts->number != std::floor(cuts->number)) {
        fail_key("failure.targeted_link_cuts", "must be an integer");
      }
      if (cuts->number < 0 || cuts->number > 1e9) {
        fail_key("failure.targeted_link_cuts", "out of range (want 0..1e9)");
      }
      spec.failure.targeted.link_cuts = static_cast<int>(cuts->number);
    }
    if (const JsonValue* factor = failure->find("capacity_factor");
        factor != nullptr) {
      if (!factor->is_number()) {
        fail_key("failure.capacity_factor", "must be a number");
      }
      if (factor->number <= 0.0 || factor->number > 1.0) {
        fail_key("failure.capacity_factor", "out of range (want (0, 1])");
      }
      spec.failure.capacity_factor = factor->number;
    }
  }

  if (const JsonValue* packet = root.find("packet_sim"); packet != nullptr) {
    if (!packet->is_object()) fail_key("packet_sim", "must be an object");
    require_only_keys(*packet, "packet_sim.",
                      {"subflows", "queue_packets", "packet_bytes",
                       "duration_ns", "warmup_ns", "start_jitter_ns",
                       "link_delay_ns", "server_rate_gbps", "ewtcp_coupling",
                       "route_mode", "workload"});
    spec.packet_sim.enabled = true;
    sim::SimParams& p = spec.packet_sim.params;
    // Integer knobs share one strict extractor; each is optional and
    // falls back to the SimParams default.
    const auto get_integer = [&](const char* key, double fallback,
                                 double lo, double hi) {
      const JsonValue* value = packet->find(key);
      if (value == nullptr) return fallback;
      const std::string where = std::string("packet_sim.") + key;
      if (!value->is_number()) fail_key(where, "must be a number");
      if (value->number != std::floor(value->number)) {
        fail_key(where, "must be an integer");
      }
      if (value->number < lo || value->number > hi) {
        fail_key(where, "out of range (want " + json_number(lo) + ".." +
                            json_number(hi) + ")");
      }
      return value->number;
    };
    p.subflows = static_cast<int>(
        get_integer("subflows", p.subflows, 1, 64));
    p.queue_packets = static_cast<int>(
        get_integer("queue_packets", p.queue_packets, 1, 1e6));
    p.packet_bytes = static_cast<int>(
        get_integer("packet_bytes", p.packet_bytes, 64, 65535));
    p.duration_ns = static_cast<sim::SimTime>(get_integer(
        "duration_ns", static_cast<double>(p.duration_ns), 1, 1e12));
    p.warmup_ns = static_cast<sim::SimTime>(get_integer(
        "warmup_ns", static_cast<double>(p.warmup_ns), 0, 1e12));
    p.start_jitter_ns = static_cast<sim::SimTime>(get_integer(
        "start_jitter_ns", static_cast<double>(p.start_jitter_ns), 0, 1e12));
    p.link_delay_ns = static_cast<sim::SimTime>(get_integer(
        "link_delay_ns", static_cast<double>(p.link_delay_ns), 1, 4e9));
    if (const JsonValue* rate = packet->find("server_rate_gbps");
        rate != nullptr) {
      if (!rate->is_number()) {
        fail_key("packet_sim.server_rate_gbps", "must be a number");
      }
      if (rate->number <= 0.0 || rate->number > 1e6) {
        fail_key("packet_sim.server_rate_gbps",
                 "out of range (want (0, 1e6])");
      }
      p.server_rate_gbps = rate->number;
    }
    if (const JsonValue* coupling = packet->find("ewtcp_coupling");
        coupling != nullptr) {
      if (!coupling->is_bool()) {
        fail_key("packet_sim.ewtcp_coupling", "must be a boolean");
      }
      p.ewtcp_coupling = coupling->boolean;
    }
    if (packet->find("route_mode") != nullptr) {
      p.route_mode = route_mode_from_name(get_string(*packet, "route_mode"));
    }
    if (const JsonValue* workload = packet->find("workload");
        workload != nullptr) {
      if (!workload->is_object()) {
        fail_key("packet_sim.workload", "must be an object");
      }
      require_only_keys(*workload, "packet_sim.workload.",
                        {"cdf", "cdf_file", "cdf_table", "load", "pattern",
                         "fan_in"});
      spec.packet_sim.fct.enabled = true;
      // Three ways to pick the flow-size distribution, mutually
      // exclusive: a registry name ("cdf"), a table file ("cdf_file"),
      // or an inline table ("cdf_table"). The file is read HERE, at
      // parse time — downstream (validation, hashing, evaluation) only
      // ever sees the parsed points, never the path.
      const JsonValue* cdf_file = workload->find("cdf_file");
      const JsonValue* cdf_table = workload->find("cdf_table");
      if (cdf_file != nullptr && cdf_table != nullptr) {
        fail_key("packet_sim.workload.cdf_file",
                 "mutually exclusive with cdf_table");
      }
      if ((cdf_file != nullptr || cdf_table != nullptr) &&
          workload->find("cdf") != nullptr) {
        fail_key("packet_sim.workload.cdf",
                 "mutually exclusive with cdf_file / cdf_table");
      }
      if (workload->find("cdf") != nullptr) {
        spec.packet_sim.fct.cdf = get_string(*workload, "cdf");
      }
      if (cdf_file != nullptr) {
        if (!cdf_file->is_string()) {
          fail_key("packet_sim.workload.cdf_file", "must be a string");
        }
        const FlowSizeCdf table = load_flow_size_cdf_file(cdf_file->text);
        spec.packet_sim.fct.cdf = table.name;  // "custom"
        spec.packet_sim.fct.custom_cdf = table.points;
      }
      if (cdf_table != nullptr) {
        if (!cdf_table->is_array()) {
          fail_key("packet_sim.workload.cdf_table",
                   "must be an array of [bytes, cum_prob] pairs");
        }
        for (const JsonValue& item : cdf_table->items) {
          if (!item.is_array() || item.items.size() != 2 ||
              !item.items[0].is_number() || !item.items[1].is_number()) {
            fail_key("packet_sim.workload.cdf_table",
                     "must be an array of [bytes, cum_prob] pairs");
          }
          spec.packet_sim.fct.custom_cdf.push_back(
              CdfPoint{item.items[0].number, item.items[1].number});
        }
        spec.packet_sim.fct.cdf = "custom";
      }
      if (const JsonValue* load = workload->find("load"); load != nullptr) {
        if (!load->is_number()) {
          fail_key("packet_sim.workload.load", "must be a number");
        }
        if (load->number <= 0.0 || load->number > 1.0) {
          fail_key("packet_sim.workload.load", "out of range (want (0, 1])");
        }
        spec.packet_sim.fct.load = load->number;
      }
      // Pattern before fan_in: the fan-in knob is only meaningful for
      // incast arrivals, so its gating reads the parsed pattern.
      if (const JsonValue* pattern = workload->find("pattern");
          pattern != nullptr) {
        if (pattern->kind != JsonValue::Kind::kString) {
          fail_key("packet_sim.workload.pattern", "must be a string");
        }
        spec.packet_sim.fct.pattern = pattern->text;
      }
      if (const JsonValue* fan = workload->find("fan_in"); fan != nullptr) {
        if (spec.packet_sim.fct.pattern != "incast") {
          fail_key("packet_sim.workload.fan_in",
                   "only valid with \"pattern\": \"incast\"");
        }
        if (!fan->is_number() || fan->number != std::floor(fan->number)) {
          fail_key("packet_sim.workload.fan_in", "must be an integer");
        }
        if (fan->number < 2 || fan->number > 1e6) {
          fail_key("packet_sim.workload.fan_in", "out of range (want 2..1e6)");
        }
        spec.packet_sim.fct.fan_in = static_cast<int>(fan->number);
      }
    }
  }

  if (const JsonValue* search = root.find("search"); search != nullptr) {
    if (!search->is_object()) fail_key("search", "must be an object");
    require_only_keys(*search, "search.",
                      {"objective", "budget", "restarts", "population",
                       "temperature", "moves", "cost"});
    spec.search.enabled = true;
    if (search->find("objective") != nullptr) {
      spec.search.objective = get_string(*search, "objective");
    }
    const auto get_count = [&](const char* key, int fallback, double lo,
                               double hi) {
      const JsonValue* value = search->find(key);
      if (value == nullptr) return fallback;
      const std::string where = std::string("search.") + key;
      if (!value->is_number()) fail_key(where, "must be a number");
      if (value->number != std::floor(value->number)) {
        fail_key(where, "must be an integer");
      }
      if (value->number < lo || value->number > hi) {
        fail_key(where, "out of range (want " + json_number(lo) + ".." +
                            json_number(hi) + ")");
      }
      return static_cast<int>(value->number);
    };
    spec.search.budget = get_count("budget", spec.search.budget, 0, 1e6);
    spec.search.restarts = get_count("restarts", spec.search.restarts, 1, 1e4);
    spec.search.population =
        get_count("population", spec.search.population, 1, 1e4);
    if (const JsonValue* temp = search->find("temperature"); temp != nullptr) {
      if (!temp->is_number()) {
        fail_key("search.temperature", "must be a number");
      }
      if (temp->number < 0.0 || temp->number > 1e6) {
        fail_key("search.temperature", "out of range (want [0, 1e6])");
      }
      spec.search.temperature = temp->number;
    }
    if (const JsonValue* moves = search->find("moves"); moves != nullptr) {
      if (!moves->is_array()) {
        fail_key("search.moves", "must be an array of move names");
      }
      spec.search.moves.clear();
      for (const JsonValue& item : moves->items) {
        if (item.kind != JsonValue::Kind::kString) {
          fail_key("search.moves", "must be an array of move names");
        }
        spec.search.moves.push_back(item.text);
      }
    }
    if (const JsonValue* cost = search->find("cost"); cost != nullptr) {
      if (!cost->is_object()) fail_key("search.cost", "must be an object");
      require_only_keys(*cost, "search.cost.",
                        {"port", "cable", "switch", "class", "floor_columns"});
      const auto get_weight = [&](const char* key, double fallback) {
        const JsonValue* value = cost->find(key);
        if (value == nullptr) return fallback;
        const std::string where = std::string("search.cost.") + key;
        if (!value->is_number()) fail_key(where, "must be a number");
        if (value->number < 0.0 || value->number > 1e9) {
          fail_key(where, "out of range (want [0, 1e9])");
        }
        return value->number;
      };
      spec.search.port_cost = get_weight("port", spec.search.port_cost);
      spec.search.cable_cost = get_weight("cable", spec.search.cable_cost);
      spec.search.switch_cost = get_weight("switch", spec.search.switch_cost);
      if (const JsonValue* classes = cost->find("class"); classes != nullptr) {
        if (!classes->is_object()) {
          fail_key("search.cost.class", "must be an object");
        }
        for (const auto& [klass, value] : classes->members) {
          const std::string where = "search.cost.class." + klass;
          if (klass.empty()) fail_key(where, "class name must be non-empty");
          if (!value.is_number()) fail_key(where, "must be a number");
          if (value.number < 0.0 || value.number > 1e9) {
            fail_key(where, "out of range (want [0, 1e9])");
          }
          spec.search.class_cost[klass] = value.number;
        }
      }
      if (const JsonValue* cols = cost->find("floor_columns");
          cols != nullptr) {
        if (!cols->is_number() || cols->number != std::floor(cols->number)) {
          fail_key("search.cost.floor_columns", "must be an integer");
        }
        if (cols->number < 1 || cols->number > 1e6) {
          fail_key("search.cost.floor_columns", "out of range (want 1..1e6)");
        }
        spec.search.floor_columns = static_cast<int>(cols->number);
      }
    }
  }

  if (const JsonValue* axes = root.find("axes"); axes != nullptr) {
    if (!axes->is_array()) fail_key("axes", "must be an array");
    for (std::size_t a = 0; a < axes->items.size(); ++a) {
      const JsonValue& entry = axes->items[a];
      const std::string where = "axes[" + std::to_string(a) + "].";
      if (!entry.is_object()) {
        fail_key("axes[" + std::to_string(a) + "]", "must be an object");
      }
      require_only_keys(entry, where, {"param", "values", "full_values"});
      SweepAxis axis;
      axis.param = get_string(entry, "param");
      axis.values = get_number_list(entry, "values");
      if (axis.values.empty()) fail_key(where + "values", "must be non-empty");
      axis.full_values = get_number_list(entry, "full_values");
      spec.axes.push_back(std::move(axis));
    }
  }

  spec.quick_runs = get_run_count(root, "quick_runs", spec.quick_runs);
  spec.full_runs = get_run_count(root, "full_runs", spec.full_runs);
  if (const JsonValue* reuse = root.find("reuse_topology"); reuse != nullptr) {
    if (!reuse->is_bool()) fail_key("reuse_topology", "must be a boolean");
    spec.reuse_topology = reuse->boolean;
  }

  validate_spec(spec);
  return spec;
}

void validate_spec(const ScenarioSpec& spec) {
  require(!spec.name.empty(), "spec key \"name\": must be non-empty");
  const FamilyInfo* family = find_family(spec.topology.family);
  if (family == nullptr) {
    std::string known;
    for (const FamilyInfo& f : topology_families()) {
      if (!known.empty()) known += ", ";
      known += f.name;
    }
    fail_key("topology.family", "unknown family \"" + spec.topology.family +
                                    "\" (known: " + known + ")");
  }
  const auto known_param = [&](const std::string& name) {
    return std::find(family->params.begin(), family->params.end(), name) !=
           family->params.end();
  };
  for (const auto& [name, value] : spec.topology.params) {
    (void)value;
    if (!known_param(name)) {
      fail_key("topology.params." + name,
               "unknown " + family->name + " parameter");
    }
  }
  // Scalar failure ranges are validated here — not only in the JSON
  // front end — so programmatic specs get the same loud errors as files
  // (apply_failures would reject them too, but only mid-sweep).
  const auto check_fraction = [](const char* key, double value) {
    if (value < 0.0 || value > 1.0) {
      fail_key(std::string("failure.") + key, "out of range (want [0, 1])");
    }
  };
  check_fraction("link_failure_fraction", spec.failure.uniform.link_fraction);
  check_fraction("switch_failure_fraction",
                 spec.failure.uniform.switch_fraction);
  check_fraction("blast_switch_fraction",
                 spec.failure.correlated.epicenter_fraction);
  check_fraction("blast_probability",
                 spec.failure.correlated.peer_probability);
  for (const auto& [klass, fraction] :
       spec.failure.per_class.switch_fraction) {
    if (klass.empty()) {
      fail_key("failure.class_failure_fraction",
               "class name must be non-empty");
    }
    if (fraction < 0.0 || fraction > 1.0) {
      fail_key("failure.class_failure_fraction." + klass,
               "out of range (want [0, 1])");
    }
  }
  if (spec.failure.targeted.link_cuts < 0) {
    fail_key("failure.targeted_link_cuts", "out of range (want >= 0)");
  }
  if (spec.failure.capacity_factor <= 0.0 ||
      spec.failure.capacity_factor > 1.0) {
    fail_key("failure.capacity_factor", "out of range (want (0, 1])");
  }
  if (spec.packet_sim.enabled) {
    const sim::SimParams& p = spec.packet_sim.params;
    if (spec.packet_sim.fct.enabled) {
      if (!spec.packet_sim.fct.custom_cdf.empty()) {
        validate_flow_size_cdf(spec.packet_sim.fct.custom_cdf,
                               "packet_sim.workload.cdf_table");
      } else if (find_flow_size_cdf(spec.packet_sim.fct.cdf) == nullptr) {
        fail_key("packet_sim.workload.cdf",
                 "unknown flow-size CDF \"" + spec.packet_sim.fct.cdf +
                     "\" (known: " + flow_size_cdf_names() + ")");
      }
      if (spec.packet_sim.fct.load <= 0.0 || spec.packet_sim.fct.load > 1.0) {
        fail_key("packet_sim.workload.load", "out of range (want (0, 1])");
      }
      if (spec.packet_sim.fct.pattern != "uniform" &&
          spec.packet_sim.fct.pattern != "incast") {
        fail_key("packet_sim.workload.pattern",
                 "unknown workload pattern \"" + spec.packet_sim.fct.pattern +
                     "\" (known: uniform, incast)");
      }
      if (spec.packet_sim.fct.pattern == "incast" &&
          spec.packet_sim.fct.fan_in < 2) {
        fail_key("packet_sim.workload.fan_in", "out of range (want >= 2)");
      }
    } else if (spec.traffic != TrafficKind::kPermutation &&
               spec.traffic != TrafficKind::kStride) {
      fail_key("packet_sim",
               "requires permutation or stride traffic (the simulator models "
               "server-to-server unit-demand bulk flows) unless a workload "
               "block selects the finite-flow FCT mode");
    }
    if (p.subflows < 1 || p.subflows > 64) {
      fail_key("packet_sim.subflows", "out of range (want 1..64)");
    }
    if (p.queue_packets < 1) {
      fail_key("packet_sim.queue_packets", "out of range (want >= 1)");
    }
    if (p.packet_bytes < 64) {
      fail_key("packet_sim.packet_bytes", "out of range (want >= 64)");
    }
    if (p.warmup_ns >= p.duration_ns) {
      fail_key("packet_sim.warmup_ns", "must be below duration_ns");
    }
    if (p.server_rate_gbps <= 0.0) {
      fail_key("packet_sim.server_rate_gbps", "out of range (want > 0)");
    }
  }
  if (spec.search.enabled) {
    // A spec either sweeps or searches: axes bind sweep points, while the
    // search block explores a design space at fixed parameters — letting
    // both through would silently ignore one of them.
    if (!spec.axes.empty()) {
      fail_key("search", "incompatible with sweep axes (a spec either "
                         "sweeps or searches)");
    }
    if (spec.search.objective != "throughput_per_cost" &&
        spec.search.objective != "throughput") {
      fail_key("search.objective",
               "unknown objective \"" + spec.search.objective +
                   "\" (known: throughput_per_cost, throughput)");
    }
    if (spec.search.budget < 0) {
      fail_key("search.budget", "out of range (want >= 0)");
    }
    if (spec.search.restarts < 1) {
      fail_key("search.restarts", "out of range (want >= 1)");
    }
    if (spec.search.population < 1) {
      fail_key("search.population", "out of range (want >= 1)");
    }
    if (spec.search.temperature < 0.0) {
      fail_key("search.temperature", "out of range (want >= 0)");
    }
    if (spec.search.moves.empty()) {
      fail_key("search.moves", "must be non-empty");
    }
    for (const std::string& move : spec.search.moves) {
      if (move != "rewire" && move != "server_shift") {
        fail_key("search.moves", "unknown move \"" + move +
                                     "\" (known: rewire, server_shift)");
      }
    }
    const auto check_weight = [](const char* key, double value) {
      if (value < 0.0) {
        fail_key(std::string("search.cost.") + key,
                 "out of range (want >= 0)");
      }
    };
    check_weight("port", spec.search.port_cost);
    check_weight("cable", spec.search.cable_cost);
    check_weight("switch", spec.search.switch_cost);
    for (const auto& [klass, value] : spec.search.class_cost) {
      if (klass.empty()) {
        fail_key("search.cost.class", "class name must be non-empty");
      }
      if (value < 0.0) {
        fail_key("search.cost.class." + klass, "out of range (want >= 0)");
      }
    }
    if (spec.search.floor_columns < 1) {
      fail_key("search.cost.floor_columns", "out of range (want >= 1)");
    }
  }
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const SweepAxis& axis = spec.axes[a];
    const std::string where = "axes[" + std::to_string(a) + "].";
    if (axis.param.empty()) fail_key(where + "param", "must be non-empty");
    if (axis.param == kClassAxisPrefix) {
      fail_key(where + "param",
               "class axis needs a class name after \"" + kClassAxisPrefix +
                   "\" (e.g. " + kClassAxisPrefix + "tor)");
    }
    if (!is_eval_axis(axis.param) && !known_param(axis.param)) {
      fail_key(where + "param", "unknown sweep axis \"" + axis.param +
                                    "\" for family " + family->name);
    }
    // Axes that tune an inactive subsystem would sweep a no-op.
    if ((axis.param == "load" || axis.param == "cdf") &&
        !spec.packet_sim.fct.enabled) {
      fail_key(where + "param",
               "axis \"" + axis.param +
                   "\" requires a packet_sim.workload block");
    }
    // A "fan_in" axis tunes the incast burst width; without incast
    // arrivals it would sweep a no-op.
    if (axis.param == "fan_in" &&
        (!spec.packet_sim.fct.enabled ||
         spec.packet_sim.fct.pattern != "incast")) {
      fail_key(where + "param",
               "axis \"fan_in\" requires a packet_sim.workload block with "
               "\"pattern\": \"incast\"");
    }
    // A "cdf" axis indexes the registry; a custom table has no index
    // there, so the combination would silently sweep something else.
    if (axis.param == "cdf" && !spec.packet_sim.fct.custom_cdf.empty()) {
      fail_key(where + "param",
               "axis \"cdf\" cannot be combined with a custom "
               "cdf_file / cdf_table workload");
    }
    if ((axis.param == "hot_fraction" || axis.param == "hot_multiplier") &&
        spec.traffic != TrafficKind::kHotspot) {
      fail_key(where + "param",
               "axis \"" + axis.param + "\" requires hotspot traffic");
    }
    if (axis.param == "stride" && spec.traffic != TrafficKind::kStride) {
      fail_key(where + "param", "axis \"stride\" requires stride traffic");
    }
    // A repeated axis would silently run a different experiment: axes
    // bind in order, so the later one overwrites the earlier while the
    // output table still prints the earlier's values as a column.
    for (std::size_t b = 0; b < a; ++b) {
      if (spec.axes[b].param == axis.param) {
        fail_key(where + "param", "duplicate axis \"" + axis.param +
                                      "\" (also axes[" + std::to_string(b) +
                                      "])");
      }
    }
    if (axis.values.empty()) fail_key(where + "values", "must be non-empty");
    // Evaluation-side axis values get the same range checks as their
    // scalar spec counterparts, so a bad value names its key here
    // instead of erroring mid-sweep (after cache writes) downstream.
    const auto check_values = [&](const std::vector<double>& values,
                                  const char* list_key) {
      const bool unit_fraction =
          axis.param == "link_failure_fraction" ||
          axis.param == "switch_failure_fraction" ||
          axis.param == "blast_switch_fraction" ||
          axis.param == "blast_probability" ||
          axis.param.rfind(kClassAxisPrefix, 0) == 0 ||
          axis.param == "chunky_fraction" ||
          axis.param == "hot_fraction";
      for (const double v : values) {
        if (unit_fraction && (v < 0.0 || v > 1.0)) {
          fail_key(where + list_key, "value " + json_number(v) +
                                         " out of range for " + axis.param +
                                         " (want [0, 1])");
        }
        if (axis.param == "targeted_link_cuts" &&
            (v < 0.0 || v > 1e9 || v != std::floor(v))) {
          fail_key(where + list_key, "value " + json_number(v) +
                                         " invalid for targeted_link_cuts "
                                         "(want integers in 0..1e9)");
        }
        if (axis.param == "capacity_factor" && (v <= 0.0 || v > 1.0)) {
          fail_key(where + list_key, "value " + json_number(v) +
                                         " out of range for capacity_factor "
                                         "(want (0, 1])");
        }
        if (axis.param == "epsilon" && (v <= 0.0 || v >= 1.0)) {
          fail_key(where + list_key, "value " + json_number(v) +
                                         " out of range for epsilon "
                                         "(want (0, 1))");
        }
        if (axis.param == "load" && (v <= 0.0 || v > 1.0)) {
          fail_key(where + list_key, "value " + json_number(v) +
                                         " out of range for load "
                                         "(want (0, 1])");
        }
        if (axis.param == "fan_in" &&
            (v != std::floor(v) || v < 2.0 || v > 1e6)) {
          fail_key(where + list_key, "value " + json_number(v) +
                                         " invalid for fan_in "
                                         "(want integers in 2..1e6)");
        }
        if (axis.param == "cdf" &&
            (v != std::floor(v) || v < 0.0 ||
             v >= static_cast<double>(flow_size_cdfs().size()))) {
          fail_key(where + list_key,
                   "value " + json_number(v) +
                       " invalid for cdf (want integer indexes into the "
                       "registered CDFs: " + flow_size_cdf_names() + ")");
        }
        if (axis.param == "solver_mode" &&
            (v != std::floor(v) || (v != 0.0 && v != 1.0))) {
          fail_key(where + list_key, "value " + json_number(v) +
                                         " invalid for solver_mode "
                                         "(want 0 = exact or 1 = approx)");
        }
        if (axis.param == "hot_multiplier" && (v < 1.0 || v > 1e6)) {
          fail_key(where + list_key, "value " + json_number(v) +
                                         " out of range for hot_multiplier "
                                         "(want [1, 1e6])");
        }
        if (axis.param == "stride" &&
            (v != std::floor(v) || v == 0.0 || std::abs(v) > 1e9)) {
          fail_key(where + list_key,
                   "value " + json_number(v) +
                       " invalid for stride (want non-zero integers in "
                       "-1e9..1e9)");
        }
      }
    };
    check_values(axis.values, "values");
    check_values(axis.full_values, "full_values");
  }
  require(spec.quick_runs >= 1,
          "spec key \"quick_runs\": out of range (want >= 1)");
  require(spec.full_runs >= 1,
          "spec key \"full_runs\": out of range (want >= 1)");
  require(spec.chunky_fraction >= 0.0 && spec.chunky_fraction <= 1.0,
          "spec key \"chunky_fraction\": out of range (want [0, 1])");
  require(spec.hot_fraction >= 0.0 && spec.hot_fraction <= 1.0,
          "spec key \"hot_fraction\": out of range (want [0, 1])");
  require(spec.hot_multiplier >= 1.0 && spec.hot_multiplier <= 1e6,
          "spec key \"hot_multiplier\": out of range (want [1, 1e6])");
  require(spec.stride != 0,
          "spec key \"stride\": out of range (want non-zero)");
}

ScenarioSpec load_spec_file(const std::string& path) {
  std::ifstream in(path);
  require(static_cast<bool>(in), "cannot read spec file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    return spec_from_json(buffer.str());
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(path + ": " + e.what());
  }
}

int spec_file_main(const std::string& path, int argc,
                   const char* const* argv) {
  register_builtin_scenarios();
  try {
    const ScenarioSpec spec = load_spec_file(path);
    const ScenarioOptions options = parse_scenario_options(argc, argv);
    ScenarioRun run(options, std::cout);
    run_spec_scenario(spec, run);
    if (!options.out_path.empty()) {
      std::ofstream out(options.out_path);
      if (!out) {
        std::cerr << "cannot write " << options.out_path << "\n";
        return kExitInternal;
      }
      write_scenario_json(out, spec.name, options, run.tables());
    }
    return kExitOk;
  } catch (const InvalidArgument& e) {
    std::cerr << e.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return kExitInternal;
  }
}

int dump_spec_main(const std::string& name, const std::string& out_path) {
  register_builtin_scenarios();
  const ScenarioInfo* info = find_scenario(name);
  if (info == nullptr) {
    std::cerr << "unknown scenario: " << name
              << " (topobench --list shows all names)\n";
    return kExitUsage;
  }
  const ScenarioSpec* spec = find_spec_scenario(info->name);
  if (spec == nullptr) {
    std::cerr << "scenario " << info->name
              << " is not spec-backed (figure scenarios cannot be dumped; "
                 "sweep_* scenarios can)\n";
    return kExitUsage;
  }
  const std::string json = spec_to_json(*spec);
  if (out_path.empty()) {
    std::cout << json;
    return kExitOk;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return kExitInternal;
  }
  out << json;
  return kExitOk;
}

}  // namespace topo::scenario
