// Fault-tolerant sweep orchestrator: supervised local shard workers.
//
// `topobench orchestrate --spec FILE --cache-dir DIR --workers N` turns
// the manual shard/coordinator recipe (README "Distributed sweeps") into
// one supervised command. The orchestrator spawns N worker processes —
// each running `--spec FILE --shard I/N --cache-dir DIR` — and watches
// two failure signals per worker:
//
//   * termination: a nonzero exit or a signal death means the stripe is
//     incomplete; it is requeued with exponential backoff, up to
//     --max-retries re-attempts;
//   * liveness: every worker owns a heartbeat file
//     (DIR/heartbeats/shard-I) that the sweep loop touches per completed
//     cell (sweep.h kHeartbeatEnvVar); a heartbeat older than
//     --worker-timeout seconds means the worker is wedged — it is
//     SIGKILLed and its stripe requeued like a crash.
//
// Crash-only recovery falls out of the content-addressed cache: every
// published cell survives a worker's death, so a retried stripe
// re-executes only the cells its predecessor never stored. When every
// stripe completes, the in-process coordinator merge (an unsharded warm
// run of the same spec) emits output byte-identical to a single-process
// run with zero recomputation. When a stripe exhausts its retries the
// orchestrator degrades instead of dying: the merge runs in merge_only
// mode (sweep.h) emitting the complete points only, an explicit
// missing-cell manifest is written next to the cache, and the process
// exits kExitPartial (3).
#ifndef TOPODESIGN_SCENARIO_ORCHESTRATOR_H
#define TOPODESIGN_SCENARIO_ORCHESTRATOR_H

#include <string>
#include <utility>
#include <vector>

#include "scenario/scenario.h"
#include "scenario/spec.h"

namespace topo::scenario {

/// Resolved orchestration parameters.
struct OrchestratorConfig {
  /// Binary exec'd for shard workers (normally topobench itself).
  std::string worker_exe;
  /// Spec file path handed to every worker via --spec.
  std::string spec_path;
  /// Shared cell cache; also hosts heartbeats/, logs/, and the manifest.
  std::string cache_dir;
  /// Stripe count AND maximum concurrent workers (one worker per stripe).
  int workers = 2;
  /// Re-attempts allowed per stripe after its first try.
  int max_retries = 2;
  /// Seconds of heartbeat silence after which a running worker counts as
  /// wedged and is killed.
  double worker_timeout = 300.0;
  /// Base retry delay; attempt k waits backoff_ms * 2^(k-1), capped at
  /// 60s. 0 retries immediately.
  int backoff_ms = 500;
  /// Scenario flags forwarded verbatim to every worker (--runs, --eps,
  /// --seed, --full/--smoke) so workers and the coordinator merge
  /// resolve identical cell grids.
  std::vector<std::string> worker_flags;
  /// Extra environment for workers only. TOPOBENCH_FAULT rides here: the
  /// CLI moves it from its own environment into the workers', so chaos
  /// runs fault the supervised processes, never the supervisor.
  std::vector<std::pair<std::string, std::string>> worker_env;
  /// Supervision poll cadence (tests shrink it).
  int poll_interval_ms = 50;
};

/// What one orchestration did, beyond its table output.
struct OrchestrationReport {
  int exit_code = 0;             ///< kExitOk or kExitPartial (exit_codes.h).
  std::vector<int> failed_stripes;  ///< Stripes that exhausted retries.
  int total_retries = 0;         ///< Re-attempts across all stripes.
  int stall_kills = 0;           ///< Workers killed for heartbeat silence.
  int merge_cache_hits = 0;      ///< Coordinator merge accounting.
  int merge_cache_misses = 0;    ///< Cells the merge had to recompute.
  std::size_t missing_cells = 0; ///< Unrecoverable cells (degraded only).
  std::string manifest_path;     ///< Missing-cell manifest ("" unless degraded).
};

/// Supervises the shard workers for `spec`, then runs the coordinator
/// merge in-process against `merge_ctx` (tables land on its stream /
/// recorder exactly as a plain unsharded run's would). Progress and
/// supervision events go to stderr. Raises InvalidArgument for a bad
/// config. `spec` must be the parse of config.spec_path — the caller
/// already loaded it to fail fast before any worker spawns.
OrchestrationReport orchestrate(const OrchestratorConfig& config,
                                const ScenarioSpec& spec,
                                ScenarioRun& merge_ctx);

/// CLI entry for `topobench orchestrate ...` (argv[0] is skipped, as in
/// scenario_main). `self_exe` is the binary to exec for workers — the
/// CLI passes its own path. Returns a shell exit code (exit_codes.h).
int orchestrate_main(const std::string& self_exe, int argc,
                     const char* const* argv);

}  // namespace topo::scenario

#endif  // TOPODESIGN_SCENARIO_ORCHESTRATOR_H
