// SweepRunner: a ScenarioSpec, sharded and reduced.
//
// Enumerates the cartesian product of the spec's axes, fans every
// (sweep-point × run) cell out over the shared thread pool with
// deterministic seed derivation, and reduces results in (point, run) order
// — so a sweep's numbers are bit-identical for any thread count, and a
// single-point sweep matches run_experiment with the derived point seed.
#ifndef TOPODESIGN_SCENARIO_SWEEP_H
#define TOPODESIGN_SCENARIO_SWEEP_H

#include <cstdint>

#include "core/experiment.h"
#include "scenario/scenario.h"
#include "scenario/spec.h"
#include "util/table.h"

namespace topo::scenario {

/// One reduced sweep point.
struct SweepPointResult {
  std::vector<double> coords;  ///< One value per axis, axis order.
  ExperimentStats stats;
};

/// One (point, run) cell a merge-only run could not find in the cache —
/// the raw material of the orchestrator's missing-cell manifest.
struct MissingCell {
  int point = 0;               ///< Point index in enumeration order.
  int run = 0;                 ///< Run index within the point.
  std::vector<double> coords;  ///< The point's axis values, axis order.
  std::uint64_t key = 0;       ///< Content address (cache.h cell_key).
};

/// A finished sweep.
struct SweepResult {
  std::vector<std::string> axis_names;
  /// Reduced points, in enumeration order. In a sharded run only
  /// COMPLETE points appear — those whose every cell was either in this
  /// shard's stripe or already cached; unsharded runs always reduce every
  /// point.
  std::vector<SweepPointResult> points;
  /// Cell-cache accounting (both zero when no cache_dir was configured).
  int cache_hits = 0;
  int cache_misses = 0;  ///< Cells evaluated (and stored) this run.
  /// Cells left to other shards (out of this run's stripe and not in the
  /// cache); 0 for unsharded runs.
  int shard_skipped = 0;
  /// Cells absent from the cache in a merge_only run (empty otherwise):
  /// every one names a point whose row was dropped from `points`.
  std::vector<MissingCell> missing;
};

/// How the flat cell grid is partitioned across shards.
enum class StripeMode {
  /// Cell i belongs to shard i % shard_count — the historical default;
  /// balances heterogeneous cell costs across shards.
  kRoundRobin,
  /// Contiguous balanced blocks of the RUN-MAJOR cell ranking (all points
  /// of run 0, then run 1, ...): each shard owns whole runs (up to the
  /// two boundary runs), so reuse-mode sweeps — which build ONE shared
  /// topology per run — build each topology on as few shards as possible
  /// instead of every shard building every run's.
  kRange,
};

/// Parses "round-robin" / "range"; raises InvalidArgument otherwise.
[[nodiscard]] StripeMode stripe_mode_from_name(const std::string& name);

/// Resolved run configuration for a sweep.
struct SweepRunConfig {
  int runs = 3;
  double epsilon = 0.08;
  std::uint64_t master_seed = 1;
  bool full = false;  ///< Use each axis's full_values when present.
  /// Content-addressed cell cache directory (cache.h); "" disables
  /// caching. Cached (point × run) cells are skipped and merged with
  /// fresh ones in the same ordered reduction, so a warm run's numbers
  /// are bit-identical to a cold one.
  std::string cache_dir;
  /// Distributed sharding: evaluate only stripe `shard_index` of
  /// `shard_count` deterministic stripes of the flat (point × run) cell
  /// grid (cell_in_shard), publishing results through cache_dir (required
  /// when shard_count > 1 — without it a shard's work would be
  /// discarded). Striping never enters cell identity or seed fan-out, so
  /// every shard and the coordinator address identical cells: N shard
  /// invocations over a shared cache dir followed by an unsharded warm
  /// run of the same spec reproduce the single-process table byte for
  /// byte with zero coordinator recomputation.
  int shard_index = 0;
  int shard_count = 1;
  /// Stripe shape for sharded runs (ignored when shard_count == 1).
  /// Striping NEVER enters cell identity, seed fan-out, or the spec
  /// hash: any stripe mode publishes identical cells to the shared
  /// cache, so mixing modes across shards of one sweep merely changes
  /// who computes what.
  StripeMode stripe = StripeMode::kRoundRobin;
  /// Solver-mode override: "" keeps the spec's solver field, "exact" /
  /// "approx" force that mode for every cell (before axis binding, so a
  /// "solver_mode" axis still wins per point). Enters the spec hash and
  /// each cell's identity exactly like a spec-level solver change.
  std::string solver_override;
  /// Merge-only (coordinator degraded mode): evaluate NOTHING — reduce
  /// the points whose every cell the cache already holds, and report the
  /// rest in SweepResult::missing instead of recomputing them. Requires
  /// cache_dir. The orchestrator uses this after a stripe exhausts its
  /// retries, where silently recomputing a dead worker's cells inline
  /// could wedge the supervisor on the very cells that killed the
  /// workers.
  bool merge_only = false;
};

/// True when flat cell `cell_index` belongs to stripe `shard_index` of
/// `shard_count` (round-robin by index). For any cell count the stripes
/// of a given shard_count partition the grid: every cell belongs to
/// exactly one shard.
[[nodiscard]] bool cell_in_shard(int cell_index, int shard_index,
                                 int shard_count);

/// True when rank `rank` of `num_cells` belongs to shard `shard_index`'s
/// contiguous balanced block [floor(i*C/N), floor((i+1)*C/N)) — the
/// StripeMode::kRange partition over some deterministic cell ranking.
/// For any rank order the blocks partition the grid exactly.
[[nodiscard]] bool range_in_shard(int rank, int num_cells, int shard_index,
                                  int shard_count);

/// Runs a declarative scenario spec.
class SweepRunner {
 public:
  SweepRunner(const ScenarioSpec& spec, const SweepRunConfig& config)
      : spec_(&spec), config_(config) {}

  /// Evaluates every (point, run) cell on the shared pool and reduces.
  /// Seed fan-out: point p gets point_seed = derive_seed(master, p); run r
  /// of that point evaluates with topology seed derive_seed(point_seed, 2r)
  /// and traffic seed derive_seed(point_seed, 2r + 1) — exactly
  /// run_experiment's fan-out, so one point reproduces run_experiment.
  /// With spec.reuse_topology (eval-side axes only), run r's entire
  /// stream is point-independent instead — topology seed
  /// derive_seed(master, 2r), traffic seed derive_seed(master, 2r + 1) —
  /// so only the axis value changes between points and link-failure
  /// sweeps degrade prefix-nested failed sets of one fixed (topology,
  /// workload) pair per run (monotone curves up to FPTAS epsilon slack;
  /// see core/failure.h).
  /// Construction failures count as infeasible zero-throughput runs.
  /// With shard_count > 1 only the configured stripe of cells is
  /// evaluated (cached cells still merge wherever they live), and only
  /// complete points are reduced. Raises InvalidArgument for unknown
  /// families, axis/parameter names the family's builder would ignore,
  /// or a sharded config without a cache dir.
  [[nodiscard]] SweepResult run() const;

  /// The active sweep points (cartesian product, first axis slowest).
  [[nodiscard]] std::vector<std::vector<double>> enumerate_points() const;

 private:
  const ScenarioSpec* spec_;
  SweepRunConfig config_;
};

/// Renders a sweep result as the standard table: one column per axis, then
/// lambda/dual/utilization summaries and the infeasible-run count.
[[nodiscard]] TablePrinter sweep_table(const SweepResult& result);

/// Executes `spec` against a run context: resolves the SweepRunConfig
/// from the context's options (runs, epsilon, seed, mode, cache dir),
/// runs the sweep, and emits banner + sweep_table. Cache accounting goes
/// to stderr so scenario stdout/JSON stay byte-identical warm or cold.
/// Shared by registered sweep scenarios, `topobench --spec FILE`, and
/// the orchestrator's coordinator merge (which reads the returned result
/// for missing-cell accounting). `merge_only` forwards
/// SweepRunConfig::merge_only.
SweepResult run_spec_scenario(const ScenarioSpec& spec, ScenarioRun& ctx,
                              bool merge_only = false);

/// Environment variable naming a worker's progress-heartbeat file. When
/// set, SweepRunner::run touches (rewrites) the file after every cell it
/// evaluates, and once at sweep start; a supervisor watching the file's
/// mtime can tell a slow-but-alive worker from a wedged one. Unset: no
/// heartbeat I/O at all.
inline constexpr const char* kHeartbeatEnvVar = "TOPOBENCH_HEARTBEAT";

/// Registers `spec` as a named scenario whose run function executes the
/// sweep with the run context's options and emits sweep_table. The spec
/// itself is retained in a side registry for --dump-spec round-trips.
void register_spec_scenario(ScenarioSpec spec);

/// The retained spec of a spec-backed scenario; nullptr for scenarios
/// registered some other way (e.g. the figure scenarios).
[[nodiscard]] const ScenarioSpec* find_spec_scenario(const std::string& name);

/// All retained specs, sorted by name.
[[nodiscard]] std::vector<const ScenarioSpec*> list_spec_scenarios();

}  // namespace topo::scenario

#endif  // TOPODESIGN_SCENARIO_SWEEP_H
