// The scenario engine: named, reusable experiment definitions.
//
// A scenario is a named unit of evaluation — one of the paper's figures, a
// declarative parameter sweep (spec.h), or anything else expressible as
// "print tables given run options". Scenarios register themselves in a
// process-wide registry; the `topobench` CLI, the thin per-figure bench
// binaries, and the golden-regression tests all select and run them
// through the same entry points, so there is exactly one implementation of
// every experiment in the tree.
//
// Output model: a scenario writes human-readable output (banners, aligned
// tables, trailing notes) to a stream exactly as the historical bench
// binaries did — byte-identical on fixed seeds — while every emitted table
// is also recorded on the run context, giving machine-readable JSON
// (write_scenario_json) and the golden-regression layer for free.
#ifndef TOPODESIGN_SCENARIO_SCENARIO_H
#define TOPODESIGN_SCENARIO_SCENARIO_H

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "util/table.h"

namespace topo::scenario {

/// Options shared by every scenario run, resolved from CLI flags.
struct ScenarioOptions {
  /// Seeds per data point; 0 means "the scenario's default for the mode"
  /// (each figure keeps its historical quick/full run counts).
  int runs = 0;
  double epsilon = 0.08;       ///< FPTAS certified-gap target.
  std::uint64_t seed = 1;      ///< Master seed.
  bool csv = false;            ///< Emit CSV tables instead of aligned text.
  bool full = false;           ///< Paper-fidelity mode (more runs, finer sweeps).
  std::string out_path;        ///< Write result JSON here ("" = disabled).
  /// Content-addressed cell cache for sweep scenarios (scenario/cache.h);
  /// "" disables caching. Figure scenarios ignore it.
  std::string cache_dir;
  /// Distributed sweep sharding (--shard I/N): this invocation evaluates
  /// only the cells of stripe `shard_index` out of `shard_count` stripes
  /// of the sweep's flat (point × run) cell grid, storing them into the
  /// shared cache_dir (required when shard_count > 1). Cell identity is
  /// shard-agnostic, so a coordinator run with the same spec and no
  /// sharding warm-merges every shard's cells into the full table with
  /// zero recomputation. The default (0, 1) is an unsharded run.
  /// Figure scenarios ignore it.
  int shard_index = 0;
  int shard_count = 1;
  /// Stripe shape for sharded sweeps (--stripe): "" / "round-robin" is
  /// the historical per-cell interleave; "range" gives each shard a
  /// contiguous run-major block so reuse-mode topology builds stay
  /// shard-local (sweep.h StripeMode). Never enters cell identity.
  std::string stripe;
  /// Solver-mode override for sweep scenarios (--solver): "" keeps each
  /// spec's own solver field, "exact" / "approx" force that mode for
  /// every cell. Figure scenarios ignore it.
  std::string solver;
};

/// One table a scenario emitted, with its banner title.
struct RecordedTable {
  std::string title;
  TablePrinter table;
};

/// Run context handed to a scenario's run function: resolved options, the
/// output stream, and the recorder feeding JSON/golden output.
class ScenarioRun {
 public:
  ScenarioRun(ScenarioOptions options, std::ostream& stream)
      : options_(std::move(options)), stream_(&stream) {}

  [[nodiscard]] const ScenarioOptions& options() const { return options_; }

  /// Run count for this scenario: the explicit --runs override, else the
  /// scenario's own default for the active mode (mirrors the historical
  /// bench::parse_bench_config semantics).
  [[nodiscard]] int runs(int quick_default, int full_default) const {
    if (options_.runs > 0) return options_.runs;
    return options_.full ? full_default : quick_default;
  }

  /// Raw stream for banners-adjacent prose (e.g. "Expected: ..." lines).
  std::ostream& out() { return *stream_; }

  /// Prints a figure banner and makes `title` the title of the next
  /// recorded table.
  void banner(const std::string& title);

  /// Prints the table (aligned or CSV per options) and records it under
  /// the most recent banner title.
  void table(const TablePrinter& t);

  [[nodiscard]] const std::vector<RecordedTable>& tables() const {
    return tables_;
  }

 private:
  ScenarioOptions options_;
  std::ostream* stream_;
  std::string current_title_;
  std::vector<RecordedTable> tables_;
};

using ScenarioFn = std::function<void(ScenarioRun&)>;

/// A registered scenario.
struct ScenarioInfo {
  std::string name;         ///< Unique selector (e.g. "fig05_powerlaw_beta").
  std::string description;  ///< One-line summary shown by --list.
  ScenarioFn run;
};

/// Adds a scenario; re-registering an existing name is a no-op so
/// registration helpers are idempotent.
void register_scenario(ScenarioInfo info);

/// All registered scenarios, sorted by name.
[[nodiscard]] std::vector<const ScenarioInfo*> list_scenarios();

/// Finds by exact name, else by unique prefix; nullptr when unknown or
/// ambiguous.
[[nodiscard]] const ScenarioInfo* find_scenario(const std::string& name);

/// Registers every built-in scenario: the 13 paper figures plus the
/// declarative sweep scenarios (failure sweeps, traffic mixes). Idempotent.
void register_builtin_scenarios();

/// Serializes a finished run's recorded tables as JSON (the CLI's --out
/// format and the golden-regression format).
void write_scenario_json(std::ostream& os, const std::string& name,
                         const ScenarioOptions& options,
                         const std::vector<RecordedTable>& tables);

/// Parses the shared scenario flag set (--runs --eps --seed --csv --full
/// --smoke --out --threads --cache-dir --shard --solver --stripe) from argv
/// (argv[0] is skipped). --threads N sizes the shared thread pool (and exports
/// TOPOBENCH_THREADS=N for child processes); the pool is sized once, so
/// if a parallel region already ran, the flag cannot take effect and
/// parsing fails loudly instead of silently running at the old width.
/// --shard I/N selects stripe I (0-based) of N for distributed sweeps
/// and requires --cache-dir. Raises InvalidArgument on unknown flags,
/// malformed values, or conflicting modes.
[[nodiscard]] ScenarioOptions parse_scenario_options(int argc,
                                                     const char* const* argv);

/// Runs a scenario by name against `stream`, writing options.out_path JSON
/// if requested. Returns 0 on success, 2 for an unknown/ambiguous name.
int run_scenario(const std::string& name, const ScenarioOptions& options,
                 std::ostream& stream);

/// Entry point shared by the thin bench binaries: registers the built-in
/// scenarios, parses flags, runs `name` against stdout. Returns a shell
/// exit code.
int scenario_main(const std::string& name, int argc, const char* const* argv);

}  // namespace topo::scenario

#endif  // TOPODESIGN_SCENARIO_SCENARIO_H
