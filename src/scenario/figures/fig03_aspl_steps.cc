// Figure 3: the ASPL lower bound's "curved step" behaviour at degree 4.
//
// The x-tics {17, 53, 161, 485, 1457} are exactly where the ideal
// degree-4 Moore tree fills a level and the bound starts a new distance
// level. The observed-to-bound ratio approaches 1 as N grows.
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/3, /*full_runs=*/10);
  const int r = 4;

  ctx.banner(
      "Figure 3: ASPL bound steps, degree=4 (x-tics at Moore-tree "
      "level boundaries)");
  ctx.out() << "Moore-tree level boundaries for degree 4:";
  for (int level = 1; level <= 6; ++level) {
    ctx.out() << ' ' << moore_nodes_within(r, level);
  }
  ctx.out() << "\n";

  std::vector<int> sizes;
  if (config.full) {
    sizes = {9,   13,  17,  25,  37,  53,  81,  119, 161, 243,
             357, 485, 729, 1093, 1457};
  } else {
    sizes = {9, 17, 37, 53, 109, 161, 325, 485, 971, 1457};
  }

  TablePrinter table({"size", "observed_aspl", "aspl_lower_bound", "ratio"});
  for (int n : sizes) {
    const int even_n = (n * r) % 2 == 0 ? n : n + 1;
    std::vector<double> observed;
    for (int run = 0; run < config.runs; ++run) {
      const Graph g = random_regular_graph(
          even_n, r, Rng::derive_seed(config.seed, n * 13 + run));
      observed.push_back(average_shortest_path_length(g));
    }
    const double mean_aspl = mean_of(observed);
    const double bound = aspl_lower_bound(even_n, r);
    table.add_row({static_cast<long long>(even_n), mean_aspl, bound,
                   mean_aspl / bound});
  }
  ctx.table(table);
  ctx.out() << "Expected: ratio column approaches 1 as size grows.\n";
}

}  // namespace

void register_fig03() {
  register_scenario({"fig03_aspl_steps",
                     "Figure 3: ASPL lower-bound steps at degree 4",
                     run});
}

}  // namespace topo::scenario
