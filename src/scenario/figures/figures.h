// Registration hooks for the 13 figure-reproduction scenarios.
//
// Each figNN_*.cc translation unit owns one figure's experiment code
// (moved verbatim from the historical bench/figNN_*.cpp binaries — output
// stays byte-identical on fixed seeds) and exposes one registration hook.
// register_figure_scenarios() is the explicit aggregate; linking figures
// into the static library pulls these objects in only when it is called.
#ifndef TOPODESIGN_SCENARIO_FIGURES_FIGURES_H
#define TOPODESIGN_SCENARIO_FIGURES_FIGURES_H

namespace topo::scenario {

void register_fig01();
void register_fig02();
void register_fig03();
void register_fig04();
void register_fig05();
void register_fig06();
void register_fig07();
void register_fig08();
void register_fig09();
void register_fig10();
void register_fig11();
void register_fig12();
void register_fig13();

/// Registers all 13 figure scenarios. Idempotent.
void register_figure_scenarios();

}  // namespace topo::scenario

#endif  // TOPODESIGN_SCENARIO_FIGURES_FIGURES_H
