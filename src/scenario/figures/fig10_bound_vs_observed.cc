// Figure 10 (a,b): the Eqn-1 throughput bound vs observed throughput.
//
// For two-cluster topologies, Eqn 1 bounds throughput by
//   min{ C / (<D> (n1+n2)),  C-bar (n1+n2) / (2 n1 n2) }.
// (a) uniform line-speeds: the bound should sit close above the
//     measurement; (b) mixed line-speeds: the bound can be loose.
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

struct BoundPoint {
  double observed = 0.0;
  double bound = 0.0;
};

// Evaluates one (topology seed, traffic seed) pair and the Eqn-1 bound on
// the SAME permutation instance: the cut component uses the instance's
// actual cross-cluster demand rather than its expectation, so the bound
// is valid per run (the paper notes the expectation form only holds up to
// an asymptotically insignificant error).
BoundPoint measure(const FigureConfig& config, const TwoTypeSpec& spec,
                   std::uint64_t salt) {
  BoundPoint point;
  std::vector<double> observed;
  std::vector<double> bounds;
  for (int run = 0; run < config.runs; ++run) {
    const std::uint64_t topo_seed = Rng::derive_seed(
        Rng::derive_seed(config.seed, salt), 2 * static_cast<std::uint64_t>(run));
    const std::uint64_t traffic_seed = Rng::derive_seed(
        Rng::derive_seed(config.seed, salt),
        2 * static_cast<std::uint64_t>(run) + 1);
    try {
      const BuiltTopology t = build_two_type(spec, topo_seed);
      Rng traffic_rng(traffic_seed);
      const TrafficMatrix tm =
          random_permutation_traffic(t.servers, traffic_rng);
      const auto commodities = aggregate_to_commodities(tm, t.servers);
      FlowOptions flow;
      flow.epsilon = config.epsilon;
      const ThroughputResult r = max_concurrent_flow(t.graph, commodities, flow);
      observed.push_back(r.lambda);

      std::vector<char> in_a(static_cast<std::size_t>(t.graph.num_nodes()), 0);
      for (int i = 0; i < spec.num_large; ++i) {
        in_a[static_cast<std::size_t>(i)] = 1;
      }
      // Path-length component of Eqn 1.
      const double total_servers = t.servers.total();
      const double path_bound = t.graph.total_directed_capacity() /
                                (average_shortest_path_length(t.graph) *
                                 total_servers);
      // Cut component with the instance's actual cross demand.
      double cross_demand = 0.0;
      for (const Commodity& c : commodities) {
        if (in_a[static_cast<std::size_t>(c.src)] !=
            in_a[static_cast<std::size_t>(c.dst)]) {
          cross_demand += c.demand;
        }
      }
      const double c_bar = 2.0 * cut_capacity(t.graph, in_a);
      const double cut_bound =
          cross_demand > 0.0 ? c_bar / cross_demand : path_bound;
      bounds.push_back(std::min(path_bound, cut_bound));
    } catch (const ConstructionFailure&) {
      observed.push_back(0.0);
      bounds.push_back(0.0);
    }
  }
  point.observed = mean_of(observed);
  point.bound = mean_of(bounds);
  return point;
}

TwoTypeSpec uniform_case(int small_ports, int servers, double fraction) {
  TwoTypeSpec spec;
  spec.num_large = 20;
  spec.num_small = 40;
  spec.large_ports = 30;
  spec.small_ports = small_ports;
  spec = with_server_split(spec, servers, 1.0);
  spec.cross_fraction = fraction;
  return spec;
}

TwoTypeSpec mixed_case(int hs_links, double hs_speed, double fraction) {
  TwoTypeSpec spec;
  spec.num_large = 20;
  spec.num_small = 20;
  spec.large_ports = 40;
  spec.small_ports = 15;
  spec.servers_per_large = 31;
  spec.servers_per_small = 12;
  spec.hs_links_per_large = hs_links;
  spec.hs_speed = hs_speed;
  spec.cross_fraction = fraction;
  return spec;
}

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/3, /*full_runs=*/20);

  const std::vector<double> fractions =
      config.full
          ? std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0, 1.3, 1.6}
          : std::vector<double>{0.1, 0.2, 0.4, 0.7, 1.0, 1.6};

  {
    ctx.banner(
        "Figure 10(a): Eqn-1 bound vs observed, uniform "
        "line-speeds (A: 3:1 ports, B: 3:2 ports)");
    TablePrinter table(
        {"x_cross", "bound_A", "throughput_A", "bound_B", "throughput_B"});
    int salt = 0;
    for (double x : fractions) {
      const BoundPoint a = measure(config, uniform_case(10, 400, x),
                                   51000 + salt * 67);
      const BoundPoint b = measure(config, uniform_case(20, 560, x),
                                   52000 + salt * 67);
      ++salt;
      table.add_row({x, a.bound, a.observed, b.bound, b.observed});
    }
    ctx.table(table);
  }

  {
    ctx.banner(
        "Figure 10(b): Eqn-1 bound vs observed, mixed line-speeds "
        "(A: 3 links @10x, B: 6 @4x, C: 9 @4x)");
    TablePrinter table({"x_cross", "bound_A", "throughput_A", "bound_B",
                        "throughput_B", "bound_C", "throughput_C"});
    int salt = 0;
    for (double x : fractions) {
      const BoundPoint a = measure(config, mixed_case(3, 10.0, x),
                                   53000 + salt * 67);
      const BoundPoint b = measure(config, mixed_case(6, 4.0, x),
                                   54000 + salt * 67);
      const BoundPoint c = measure(config, mixed_case(9, 4.0, x),
                                   55000 + salt * 67);
      ++salt;
      table.add_row({x, a.bound, a.observed, b.bound, b.observed, c.bound,
                     c.observed});
    }
    ctx.table(table);
  }
  ctx.out() << "Expected: bound >= throughput everywhere; tight for (a), "
               "looser for (b).\n";
}

}  // namespace

void register_fig10() {
  register_scenario({"fig10_bound_vs_observed",
                     "Figure 10: Eqn-1 bound vs observed throughput",
                     run});
}

}  // namespace topo::scenario
