// Figure 9 (a-c): decomposing throughput into utilization, path length,
// and stretch (T = C * U / (<D> * AS * f), all curves normalized to their
// value at the throughput peak).
//
// (a) re-runs the Fig 4(c) "480 servers" server-placement sweep,
// (b) the Fig 6(c) "500 servers" cross-cluster sweep,
// (c) the Fig 8(c) "3 H-links" line-speed sweep.
//
// Paper expectation: utilization tracks throughput most closely —
// bottlenecks, not path inflation, govern the losses; path length
// contributes visibly only at the skewed end of (a).
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

struct PointMetrics {
  double x = 0.0;
  double lambda = 0.0;
  double utilization = 0.0;
  double inverse_spl = 0.0;
  double inverse_stretch = 0.0;
};

void emit_normalized(ScenarioRun& ctx, const std::string& title,
                     const std::vector<PointMetrics>& points) {
  ctx.banner(title);
  // Normalize every metric to its value at the throughput-peak x.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].lambda > points[peak].lambda) peak = i;
  }
  const PointMetrics& p = points[peak];
  TablePrinter table(
      {"x", "throughput", "utilization", "inverse_spl", "inverse_stretch"});
  for (const PointMetrics& m : points) {
    table.add_row({m.x, p.lambda > 0 ? m.lambda / p.lambda : 0.0,
                   p.utilization > 0 ? m.utilization / p.utilization : 0.0,
                   p.inverse_spl > 0 ? m.inverse_spl / p.inverse_spl : 0.0,
                   p.inverse_stretch > 0
                       ? m.inverse_stretch / p.inverse_stretch
                       : 0.0});
  }
  ctx.table(table);
}

PointMetrics measure(const FigureConfig& config, const TwoTypeSpec& spec,
                     double x, std::uint64_t salt) {
  const TopologyBuilder builder = [spec](std::uint64_t seed) {
    return build_two_type(spec, seed);
  };
  const ExperimentStats stats =
      run_experiment(builder, eval_options(config), config.runs,
                     Rng::derive_seed(config.seed, salt));
  PointMetrics m;
  m.x = x;
  m.lambda = stats.lambda.mean;
  m.utilization = stats.utilization.mean;
  m.inverse_spl = stats.inverse_spl.mean;
  m.inverse_stretch = stats.inverse_stretch.mean;
  return m;
}

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/3, /*full_runs=*/20);

  const std::vector<double> placement_xs =
      config.full ? std::vector<double>{0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 2.0}
                  : std::vector<double>{0.4, 0.8, 1.0, 1.4, 2.0};
  const std::vector<double> cross_xs =
      config.full
          ? std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0, 1.3, 1.6}
          : std::vector<double>{0.1, 0.3, 0.6, 1.0, 1.6};

  // (a) Fig 4(c) '480 servers': server placement sweep.
  {
    std::vector<PointMetrics> points;
    int salt = 0;
    for (double x : placement_xs) {
      TwoTypeSpec spec;
      spec.num_large = 20;
      spec.num_small = 30;
      spec.large_ports = 30;
      spec.small_ports = 20;
      spec = with_server_split(spec, 480, x);
      if (spec.servers_per_large >= spec.large_ports) continue;
      points.push_back(measure(config, spec, x, 41000 + salt++ * 61));
    }
    emit_normalized(ctx,
                    "Figure 9(a): decomposition for the Fig 4(c) 480-server "
                    "placement sweep",
                    points);
  }

  // (b) Fig 6(c) '500 servers': cross-cluster sweep.
  {
    std::vector<PointMetrics> points;
    int salt = 0;
    for (double x : cross_xs) {
      TwoTypeSpec spec;
      spec.num_large = 20;
      spec.num_small = 30;
      spec.large_ports = 30;
      spec.small_ports = 20;
      spec = with_server_split(spec, 500, 1.0);
      spec.cross_fraction = x;
      points.push_back(measure(config, spec, x, 42000 + salt++ * 61));
    }
    emit_normalized(ctx,
                    "Figure 9(b): decomposition for the Fig 6(c) 500-server "
                    "cross-cluster sweep",
                    points);
  }

  // (c) Fig 8(c) '3 H-links': line-speed sweep.
  {
    std::vector<PointMetrics> points;
    int salt = 0;
    for (double x : cross_xs) {
      TwoTypeSpec spec;
      spec.num_large = 20;
      spec.num_small = 20;
      spec.large_ports = 40;
      spec.small_ports = 15;
      spec.servers_per_large = 31;
      spec.servers_per_small = 12;
      spec.hs_links_per_large = 3;
      spec.hs_speed = 4.0;
      spec.cross_fraction = x;
      points.push_back(measure(config, spec, x, 43000 + salt++ * 61));
    }
    emit_normalized(ctx,
                    "Figure 9(c): decomposition for the Fig 8(c) 3-H-link "
                    "sweep",
                    points);
  }
  ctx.out() << "Expected: the utilization column tracks the throughput "
               "column most closely in every panel.\n";
}

}  // namespace

void register_fig09() {
  register_scenario({"fig09_decomposition",
                     "Figure 9: throughput decomposition (U, 1/SPL, 1/AS)",
                     run});
}

}  // namespace topo::scenario
