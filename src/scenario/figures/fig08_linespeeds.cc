// Figure 8 (a-c): heterogeneous line-speeds.
//
// 20 large switches (40 low-speed ports) + 20 small switches (15 ports);
// large switches additionally carry a few high-line-speed links wired only
// among themselves. (a) sweeps server splits; (b) sweeps the high-speed
// multiplier at 6 links per large switch; (c) sweeps the number of
// high-speed links at speed 4.
//
// Paper expectation: several configurations tie for peak throughput (the
// picture is less clear-cut than with uniform speeds), and the benefit of
// faster/more H-links vanishes when cross-cluster wiring is starved.
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

double lambda_for(const FigureConfig& config, int per_large, int per_small,
                  int hs_links, double hs_speed, double fraction,
                  std::uint64_t salt) {
  TwoTypeSpec spec;
  spec.num_large = 20;
  spec.num_small = 20;
  spec.large_ports = 40;
  spec.small_ports = 15;
  spec.servers_per_large = per_large;
  spec.servers_per_small = per_small;
  spec.cross_fraction = fraction;
  spec.hs_links_per_large = hs_links;
  spec.hs_speed = hs_speed;
  const TopologyBuilder builder = [spec](std::uint64_t seed) {
    return build_two_type(spec, seed);
  };
  const ExperimentStats stats =
      run_experiment(builder, eval_options(config), config.runs,
                     Rng::derive_seed(config.seed, salt));
  return stats.lambda.mean;
}

const std::vector<double>& sweep_fractions(const FigureConfig& config) {
  static const std::vector<double> quick{0.2, 0.4, 0.6, 0.8, 1.0, 1.3, 1.6};
  static const std::vector<double> full{0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0,
                                        1.2, 1.4, 1.6, 1.8, 2.0};
  return config.full ? full : quick;
}

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/3, /*full_runs=*/20);
  const auto& fractions = sweep_fractions(config);

  // (a) server splits with 3 high-speed (10x) links per large switch.
  {
    ctx.banner(
        "Figure 8(a): line-speed heterogeneity, server splits "
        "(20 large @40p + 20 small @15p, 3 H-links @10x)");
    TablePrinter table(
        {"x_cross", "36H_7L", "35H_8L", "34H_9L", "33H_10L", "32H_11L"});
    for (double x : fractions) {
      std::vector<Cell> row{x};
      int salt = 0;
      for (const auto& [h, l] : std::vector<std::pair<int, int>>{
               {36, 7}, {35, 8}, {34, 9}, {33, 10}, {32, 11}}) {
        row.push_back(lambda_for(config, h, l, 3, 10.0, x,
                                 31000 + salt++ * 59));
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
  }

  // (b) high-speed multiplier sweep at 6 H-links per large switch.
  {
    ctx.banner(
        "Figure 8(b): high-speed multiplier sweep (6 H-links per "
        "large switch, proportional-ish servers 31H/12L)");
    TablePrinter table({"x_cross", "speed_2", "speed_4", "speed_8"});
    for (double x : fractions) {
      std::vector<Cell> row{x};
      int salt = 0;
      for (double speed : {2.0, 4.0, 8.0}) {
        row.push_back(lambda_for(config, 31, 12, 6, speed, x,
                                 32000 + salt++ * 59));
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
  }

  // (c) H-link count sweep at speed 4.
  {
    ctx.banner(
        "Figure 8(c): high-speed link count sweep (speed 4x, "
        "proportional-ish servers 31H/12L)");
    TablePrinter table({"x_cross", "links_3", "links_6", "links_9"});
    for (double x : fractions) {
      std::vector<Cell> row{x};
      int salt = 0;
      for (int links : {3, 6, 9}) {
        row.push_back(lambda_for(config, 31, 12, links, 4.0, x,
                                 33000 + salt++ * 59));
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
  }
  ctx.out() << "Expected: more/faster H-links help near x ~ 1 but not when "
               "the cross-cluster cut is starved (small x).\n";
}

}  // namespace

void register_fig08() {
  register_scenario({"fig08_linespeeds",
                     "Figure 8: heterogeneous line-speed overlays",
                     run});
}

}  // namespace topo::scenario
