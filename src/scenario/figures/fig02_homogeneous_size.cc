// Figure 2 (a,b): random regular graphs vs the bounds as size grows.
//
// Degree r = 10 throughout; the x-axis sweeps the switch count N (the
// network gets sparser rightward). Same series as Figure 1.
//
// Paper expectation: ratios fall gently with size; all-to-all stays the
// highest; ASPL stays close to the bound (within ~10%).
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

double throughput_ratio(const FigureConfig& config, int n, int r,
                        int servers_per_switch, TrafficKind traffic) {
  const TopologyBuilder builder = [=](std::uint64_t seed) {
    return random_regular_topology(n, r + servers_per_switch, r, seed);
  };
  const ExperimentStats stats =
      run_experiment(builder, eval_options(config, traffic),
                     config.runs, config.seed + n);
  // Network demand actually offered: same-switch flows never enter the
  // network, and all-to-all demands are normalized to one unit of egress
  // per server (see evaluate_throughput).
  const double servers = static_cast<double>(n) * servers_per_switch;
  const double f =
      traffic == TrafficKind::kAllToAll
          ? servers * (servers - servers_per_switch) / (servers - 1.0)
          : servers * (1.0 - 1.0 / n);
  return stats.lambda.mean / homogeneous_throughput_upper_bound(n, r, f);
}

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/3, /*full_runs=*/20);
  const int r = 10;

  std::vector<int> sizes;
  if (config.full) {
    sizes = {15, 20, 30, 40, 60, 80, 100, 120, 140, 160, 180, 200};
  } else {
    sizes = {15, 20, 30, 40, 60, 80, 120};
  }
  // The paper notes its LP solver does not scale for all-to-all (the
  // commodity count grows quadratically); ours does better but we still
  // cap the all-to-all series in quick mode.
  const int a2a_cap = config.full ? 200 : 60;

  ctx.banner("Figure 2(a): throughput vs upper bound, degree=10, size sweep");
  TablePrinter table({"size", "all_to_all", "perm_10_per_switch",
                      "perm_5_per_switch"});
  for (int n : sizes) {
    Cell a2a = std::string("-");
    if (n <= a2a_cap) {
      a2a = throughput_ratio(config, n, r, 5, TrafficKind::kAllToAll);
    }
    table.add_row({static_cast<long long>(n), a2a,
                   throughput_ratio(config, n, r, 10, TrafficKind::kPermutation),
                   throughput_ratio(config, n, r, 5, TrafficKind::kPermutation)});
  }
  ctx.table(table);

  ctx.banner("Figure 2(b): ASPL vs lower bound, degree=10, size sweep");
  TablePrinter aspl_table({"size", "observed_aspl", "aspl_lower_bound",
                           "ratio"});
  for (int n : sizes) {
    std::vector<double> observed;
    for (int run = 0; run < config.runs; ++run) {
      const Graph g = random_regular_graph(
          n, r, Rng::derive_seed(config.seed, 200 + n * 17 + run));
      observed.push_back(average_shortest_path_length(g));
    }
    const double mean_aspl = mean_of(observed);
    const double bound = aspl_lower_bound(n, r);
    aspl_table.add_row({static_cast<long long>(n), mean_aspl, bound,
                        mean_aspl / bound});
  }
  ctx.table(aspl_table);
}

}  // namespace

void register_fig02() {
  register_scenario({"fig02_homogeneous_size",
                     "Figure 2: RRG throughput/ASPL vs bounds, size sweep "
                     "(degree 10)",
                     run});
}

}  // namespace topo::scenario
