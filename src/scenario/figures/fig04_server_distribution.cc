// Figure 4 (a-c): how servers should be distributed across switch types.
//
// Two switch types wired as an unbiased random graph; the x-axis sweeps
// the number of servers on the large switches, normalized so x = 1 is the
// port-proportional split. Panels vary (a) the port ratio, (b) the small-
// switch count, and (c) the total server count (oversubscription).
//
// Paper expectation: every curve peaks at x = 1 (proportional placement).
#include <cstdlib>

#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

// Returns the mean throughput, or an infeasibility marker when the split
// cannot hold the requested server total (the clamps in with_server_split
// would silently change it, which is not the paper's experiment).
Cell lambda_at_ratio(const FigureConfig& config, TwoTypeSpec base,
                     int total_servers, double ratio,
                     std::uint64_t point_salt) {
  const TwoTypeSpec spec = with_server_split(base, total_servers, ratio);
  const int achieved = spec.num_large * spec.servers_per_large +
                       spec.num_small * spec.servers_per_small;
  if (std::abs(achieved - total_servers) > spec.num_small ||
      spec.servers_per_large >= spec.large_ports ||
      spec.servers_per_small >= spec.small_ports) {
    return std::string("-");
  }
  const TopologyBuilder builder = [spec](std::uint64_t seed) {
    return build_two_type(spec, seed);
  };
  const ExperimentStats stats =
      run_experiment(builder, eval_options(config), config.runs,
                     Rng::derive_seed(config.seed, point_salt));
  return stats.lambda.mean;
}

const std::vector<double>& sweep_ratios(const FigureConfig& config) {
  static const std::vector<double> quick{0.4, 0.6, 0.8, 1.0,
                                         1.2, 1.6, 2.0, 2.4};
  static const std::vector<double> full{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
                                        1.1, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2,
                                        2.4};
  return config.full ? full : quick;
}

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/3, /*full_runs=*/20);
  const auto& ratios = sweep_ratios(config);

  // (a) port ratios 3:1, 2:1, 3:2 with 20 large (30p) + 40 small switches.
  {
    ctx.banner(
        "Figure 4(a): server distribution, port ratio series "
        "(20 large @30p + 40 small, 400 servers)");
    TablePrinter table({"x_ratio", "ports_3to1", "ports_2to1", "ports_3to2"});
    for (double x : ratios) {
      std::vector<Cell> row{x};
      int salt = 0;
      for (int small_ports : {10, 15, 20}) {
        TwoTypeSpec spec;
        spec.num_large = 20;
        spec.num_small = 40;
        spec.large_ports = 30;
        spec.small_ports = small_ports;
        row.push_back(lambda_at_ratio(config, spec, 400, x,
                                      1000 + salt++ * 37));
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
  }

  // (b) small-switch count 20/30/40 with 20 large (30p), small 20p.
  {
    ctx.banner(
        "Figure 4(b): server distribution, small-switch count "
        "series (20 large @30p, small @20p, 500 servers)");
    TablePrinter table({"x_ratio", "small_20", "small_30", "small_40"});
    for (double x : ratios) {
      std::vector<Cell> row{x};
      int salt = 0;
      for (int num_small : {20, 30, 40}) {
        TwoTypeSpec spec;
        spec.num_large = 20;
        spec.num_small = num_small;
        spec.large_ports = 30;
        spec.small_ports = 20;
        row.push_back(lambda_at_ratio(config, spec, 500, x,
                                      2000 + salt++ * 37));
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
  }

  // (c) oversubscription: 480/510/540 servers on fixed equipment.
  {
    ctx.banner(
        "Figure 4(c): server distribution, server count series "
        "(20 large @30p + 30 small @20p)");
    TablePrinter table({"x_ratio", "servers_480", "servers_510",
                        "servers_540"});
    for (double x : ratios) {
      std::vector<Cell> row{x};
      int salt = 0;
      for (int servers : {480, 510, 540}) {
        TwoTypeSpec spec;
        spec.num_large = 20;
        spec.num_small = 30;
        spec.large_ports = 30;
        spec.small_ports = 20;
        row.push_back(lambda_at_ratio(config, spec, servers, x,
                                      3000 + salt++ * 37));
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
  }
  ctx.out() << "Expected: every series peaks at x_ratio = 1 "
               "(port-proportional placement).\n";
}

}  // namespace

void register_fig04() {
  register_scenario({"fig04_server_distribution",
                     "Figure 4: server distribution across two switch types",
                     run});
}

}  // namespace topo::scenario
