// Figure 7 (a,b): joint sweep of server distribution and cross-cluster
// wiring. Each curve fixes a server split (e.g. "16H, 2L" = 16 servers on
// each large switch, 2 on each small one); the x-axis sweeps cross-cluster
// connectivity.
//
// Paper expectation: several configurations reach peak throughput, and
// the proportional split with vanilla randomness (x = 1) is among them;
// strongly skewed splits lose throughput everywhere.
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

struct Split {
  int per_large = 0;
  int per_small = 0;
};

void run_panel(ScenarioRun& ctx, const FigureConfig& config,
               const std::string& title, int small_ports,
               const std::vector<Split>& splits, std::uint64_t salt_base) {
  ctx.banner(title);
  std::vector<std::string> headers{"x_cross"};
  for (const Split& s : splits) {
    headers.push_back(std::to_string(s.per_large) + "H_" +
                      std::to_string(s.per_small) + "L");
  }
  TablePrinter table(std::move(headers));

  static const std::vector<double> quick{0.2, 0.4, 0.6, 0.8, 1.0, 1.4, 2.0};
  static const std::vector<double> full{0.2, 0.3, 0.4, 0.5, 0.6, 0.8,
                                        1.0, 1.2, 1.4, 1.6, 1.8, 2.0};
  const auto& fractions = config.full ? full : quick;

  for (double x : fractions) {
    std::vector<Cell> row{x};
    int salt = 0;
    for (const Split& split : splits) {
      TwoTypeSpec spec;
      spec.num_large = 20;
      spec.num_small = 40;
      spec.large_ports = 30;
      spec.small_ports = small_ports;
      spec.servers_per_large = split.per_large;
      spec.servers_per_small = split.per_small;
      spec.cross_fraction = x;
      const TopologyBuilder builder = [spec](std::uint64_t seed) {
        return build_two_type(spec, seed);
      };
      const ExperimentStats stats = run_experiment(
          builder, eval_options(config), config.runs,
          Rng::derive_seed(config.seed, salt_base + salt++ * 53));
      row.push_back(stats.lambda.mean);
    }
    table.add_row(std::move(row));
  }
  ctx.table(table);
}

void run(ScenarioRun& ctx) {
  const FigureConfig config = figure_config(
      ctx, /*quick_runs=*/3, /*full_runs=*/10);  // paper used 10 runs

  // (a) 20 large (30p) + 40 small (10p); 400 servers total per split.
  run_panel(ctx, config,
            "Figure 7(a): combined sweep, 20 large @30p + 40 small @10p "
            "(400 servers; 12H_4L is proportional)",
            10,
            {{16, 2}, {14, 3}, {12, 4}, {10, 5}, {8, 6}}, 21000);

  // (b) 20 large (30p) + 40 small (20p); 560 servers total per split.
  run_panel(ctx, config,
            "Figure 7(b): combined sweep, 20 large @30p + 40 small @20p "
            "(560 servers; 14H_7L is proportional)",
            20,
            {{22, 3}, {18, 5}, {14, 7}, {10, 9}, {6, 11}}, 22000);

  ctx.out() << "Expected: proportional splits (12H_4L / 14H_7L) at x ~ 1 "
               "are among the peak configurations.\n";
}

}  // namespace

void register_fig07() {
  register_scenario({"fig07_combined",
                     "Figure 7: joint server-split x cross-cluster sweep",
                     run});
}

}  // namespace topo::scenario
