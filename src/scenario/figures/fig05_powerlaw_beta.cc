// Figure 5: server placement across a power-law pool of switches.
//
// Port counts follow a truncated power law with mean 6/8/10; servers are
// attached in proportion to port_count^beta and the rest wired uniformly
// at random. Throughput is normalized to the beta = 1 value of each curve.
//
// Paper expectation: beta = 1 (proportional) is among the optima, with a
// broad flat region around beta in [1, 1.4] and degradation toward both
// extremes (larger variance there, too).
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

ExperimentStats stats_at_beta(const FigureConfig& config, double avg_ports,
                              double beta, std::uint64_t salt) {
  const int num_switches = 40;
  // Hold total servers at ~45% of total ports across the sweep.
  const int total_servers =
      static_cast<int>(0.45 * num_switches * avg_ports);
  const TopologyBuilder builder = [=](std::uint64_t seed) {
    std::vector<int> ports = power_law_ports(
        num_switches, avg_ports, Rng::derive_seed(seed, 0x506f7274));
    fix_parity_for_servers(ports, total_servers);
    const std::vector<int> servers =
        beta_proportional_servers(ports, beta, total_servers);
    return build_pool_topology(ports, servers, seed);
  };
  return run_experiment(builder, eval_options(config), config.runs,
                        Rng::derive_seed(config.seed, salt));
}

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/4, /*full_runs=*/20);

  std::vector<double> betas;
  if (config.full) {
    betas = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6};
  } else {
    betas = {0.0, 0.4, 0.8, 1.0, 1.2, 1.6};
  }

  ctx.banner(
      "Figure 5: power-law port counts, servers proportional to "
      "port^beta (normalized to beta=1)");
  TablePrinter table({"beta", "avg_ports_6", "avg_ports_8", "avg_ports_10",
                      "stdev_frac_8"});
  std::vector<double> baseline(3, 1.0);
  {
    int i = 0;
    for (double avg : {6.0, 8.0, 10.0}) {
      baseline[static_cast<std::size_t>(i++)] =
          stats_at_beta(config, avg, 1.0, 5000 + static_cast<int>(avg))
              .lambda.mean;
    }
  }
  for (double beta : betas) {
    std::vector<Cell> row{beta};
    int i = 0;
    double stdev_frac_8 = 0.0;
    for (double avg : {6.0, 8.0, 10.0}) {
      const ExperimentStats stats = stats_at_beta(
          config, avg, beta, 6000 + static_cast<int>(avg) * 101 +
                                 static_cast<int>(beta * 10));
      row.push_back(stats.lambda.mean / baseline[static_cast<std::size_t>(i++)]);
      if (avg == 8.0 && stats.lambda.mean > 0.0) {
        stdev_frac_8 = stats.lambda.stdev / stats.lambda.mean;
      }
    }
    row.push_back(stdev_frac_8);
    table.add_row(std::move(row));
  }
  ctx.table(table);
  ctx.out() << "Expected: flat optimum around beta in [1, 1.4]; larger "
               "run-to-run variance at the extremes.\n";
}

}  // namespace

void register_fig05() {
  register_scenario({"fig05_powerlaw_beta",
                     "Figure 5: power-law pools, servers ~ ports^beta",
                     run});
}

}  // namespace topo::scenario
