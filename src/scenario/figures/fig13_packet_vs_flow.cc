// Figure 13: packet-level MPTCP simulation vs flow-level optimum.
//
// Rewired-VL2 topologies deliberately oversubscribed (ToR count ~15% past
// nominal) so the flow optimum sits just below 1; MPTCP with 8 subflows
// over sampled shortest paths should land within several percent of it.
#include <algorithm>

#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"
#include "util/stats.h"

namespace topo::scenario {
namespace {

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/1, /*full_runs=*/5);

  const std::vector<int> da_values =
      config.full ? std::vector<int>{6, 8, 10, 12, 14, 16, 18}
                  : std::vector<int>{6, 8, 10};
  const int di = config.full ? 12 : 8;
  const int servers_per_tor = 20;  // real VL2 loading: 20 x 1G per ToR

  ctx.banner(
      "Figure 13: packet-level (MPTCP, 8 subflows) vs flow-level "
      "throughput on oversubscribed rewired-VL2 (DI=" +
      std::to_string(di) + ")");
  TablePrinter table({"DA", "tors", "flow_level", "packet_mean",
                      "packet_p05", "gap_percent"});
  for (int da : da_values) {
    Vl2Params params;
    params.d_a = da;
    params.d_i = di;
    params.servers_per_tor = servers_per_tor;
    if ((da * di) % 4 != 0) continue;
    // Oversubscribe well past the rewired design's ~1.4x full-throughput
    // point so the fluid optimum sits just below 1 (as the paper did).
    const int tors = std::min(rewired_vl2_max_tors(params),
                              std::max(2, vl2_nominal_tors(params) * 160 / 100));

    std::vector<double> flow_values;
    std::vector<double> packet_means;
    std::vector<double> packet_p05s;
    for (int run = 0; run < config.runs; ++run) {
      const std::uint64_t seed =
          Rng::derive_seed(config.seed, 81000 + da * 97 + run);
      const BuiltTopology t = rewired_vl2_topology(params, tors, seed);

      EvalOptions options = eval_options(config);
      options.flow.epsilon = std::min(config.epsilon, 0.05);
      const ThroughputResult flow = evaluate_throughput(t, options, seed + 1);
      flow_values.push_back(std::min(1.0, flow.lambda));

      sim::SimParams sim_params;
      sim_params.subflows = 8;
      sim_params.queue_packets = 50;
      sim_params.duration_ns = config.full ? 40'000'000 : 24'000'000;
      sim_params.warmup_ns = sim_params.duration_ns / 2;
      sim::SimNetwork net(t, sim_params, seed + 2);
      net.add_permutation_workload();
      const sim::SimulationResult packet = net.run();
      packet_means.push_back(packet.mean_normalized);
      // 5th percentile of per-flow normalized goodput.
      std::vector<double> goodputs;
      for (const auto& f : packet.flows) {
        goodputs.push_back(f.goodput_gbps / sim_params.server_rate_gbps);
      }
      std::sort(goodputs.begin(), goodputs.end());
      packet_p05s.push_back(percentile_sorted(goodputs, 0.05));
    }
    const double flow_mean = mean_of(flow_values);
    const double packet_mean = mean_of(packet_means);
    table.add_row({static_cast<long long>(da), static_cast<long long>(tors),
                   flow_mean, packet_mean, mean_of(packet_p05s),
                   100.0 * (flow_mean - packet_mean) /
                       std::max(flow_mean, 1e-9)});
  }
  ctx.table(table);
  ctx.out() << "Expected: packet_mean within several percent of flow_level "
               "(paper: ~6% at the largest size).\n";
}

}  // namespace

void register_fig13() {
  register_scenario({"fig13_packet_vs_flow",
                     "Figure 13: packet-level MPTCP vs flow-level optimum",
                     run});
}

}  // namespace topo::scenario
