// Figure 11: the analytically determined cross-cluster capacity threshold
// below which throughput must fall off its peak.
//
// For each of 18 two-cluster configurations we sweep cross-cluster
// connectivity, take the peak throughput T*, and compute the threshold
//   C-bar* = T* * 2 n1 n2 / (n1 + n2)
// (in directed capacity units), i.e. as a fraction of the vanilla-random
// cross capacity: x* = C-bar* / (2 * expected_cross_links). The paper's
// claim: for every configuration, measured throughput at x < x* is below
// the peak.
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

double lambda_at(const FigureConfig& config, TwoTypeSpec spec, double x,
                 std::uint64_t salt) {
  spec.cross_fraction = x;
  const TopologyBuilder builder = [spec](std::uint64_t seed) {
    return build_two_type(spec, seed);
  };
  return run_experiment(builder, eval_options(config), config.runs,
                        Rng::derive_seed(config.seed, salt))
      .lambda.mean;
}

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/2, /*full_runs=*/10);

  // 18 configurations: 3 port ratios x 3 small-switch counts x 2 server
  // totals (quick mode samples 9 of them).
  struct Config {
    int num_small;
    int small_ports;
    int servers;
  };
  std::vector<Config> cases;
  for (int num_small : {20, 30, 40}) {
    for (int small_ports : {10, 15, 20}) {
      for (int servers : {360, 480}) {
        cases.push_back({num_small, small_ports, servers});
      }
    }
  }
  if (!config.full) {
    std::vector<Config> sampled;
    for (std::size_t i = 0; i < cases.size(); i += 2) sampled.push_back(cases[i]);
    cases = std::move(sampled);
  }

  const std::vector<double> fractions = {0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0};

  ctx.banner(
      "Figure 11: throughput drop threshold across 18 two-cluster "
      "configurations (x* = predicted drop point)");
  TablePrinter table({"config", "peak_T", "x_star", "lambda_below_x_star",
                      "drop_confirmed"});
  int index = 0;
  for (const Config& c : cases) {
    TwoTypeSpec spec;
    spec.num_large = 20;
    spec.num_small = c.num_small;
    spec.large_ports = 30;
    spec.small_ports = c.small_ports;
    spec = with_server_split(spec, c.servers, 1.0);

    double peak = 0.0;
    std::vector<double> lambdas;
    int salt = 0;
    for (double x : fractions) {
      lambdas.push_back(
          lambda_at(config, spec, x, 61000 + index * 997 + salt++ * 71));
      peak = std::max(peak, lambdas.back());
    }

    const double n1 =
        static_cast<double>(spec.num_large) * spec.servers_per_large;
    const double n2 =
        static_cast<double>(spec.num_small) * spec.servers_per_small;
    const double threshold_capacity = cross_capacity_threshold(peak, n1, n2);
    const double expected_cross = two_type_expected_cross(spec);
    // Each cross link is one unit of capacity in each direction.
    const double x_star = threshold_capacity / (2.0 * expected_cross);

    // Throughput at the largest sweep point strictly below x*.
    double lambda_below = -1.0;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      if (fractions[i] < x_star) lambda_below = lambdas[i];
    }
    const bool confirmed = lambda_below < 0.0 || lambda_below < peak * 0.99;
    const std::string name = std::to_string(c.num_small) + "S@" +
                             std::to_string(c.small_ports) + "p/" +
                             std::to_string(c.servers) + "srv";
    table.add_row({name, peak, x_star,
                   lambda_below < 0.0 ? Cell{std::string("n/a")}
                                      : Cell{lambda_below},
                   std::string(confirmed ? "yes" : "NO")});
    ++index;
  }
  ctx.table(table);
  ctx.out() << "Expected: drop_confirmed = yes for every configuration "
               "(throughput below the predicted threshold is sub-peak).\n";
}

}  // namespace

void register_fig11() {
  register_scenario({"fig11_threshold",
                     "Figure 11: predicted cross-cluster throughput-drop "
                     "threshold",
                     run});
}

}  // namespace topo::scenario
