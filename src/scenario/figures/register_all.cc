#include "scenario/figures/figures.h"

namespace topo::scenario {

void register_figure_scenarios() {
  register_fig01();
  register_fig02();
  register_fig03();
  register_fig04();
  register_fig05();
  register_fig06();
  register_fig07();
  register_fig08();
  register_fig09();
  register_fig10();
  register_fig11();
  register_fig12();
  register_fig13();
}

}  // namespace topo::scenario
