// Figure 1 (a,b): random regular graphs vs the bounds as density grows.
//
// N = 40 switches throughout; the x-axis sweeps the network degree r.
// (a) Throughput as a ratio to the universal upper bound N*r/(f*d*), for
//     all-to-all and permutation traffic with 5 and 10 servers per switch.
// (b) Observed ASPL vs the Cerf et al. lower bound d*.
//
// Paper expectation: the ratio climbs toward 1 with density (all-to-all
// reaching ~1 by r >= 13), and ASPL hugs the bound.
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

double throughput_ratio(const FigureConfig& config, int n, int r,
                        int servers_per_switch, TrafficKind traffic) {
  const int k = r + servers_per_switch;
  const TopologyBuilder builder = [=](std::uint64_t seed) {
    return random_regular_topology(n, k, r, seed);
  };
  EvalOptions options = eval_options(config, traffic);
  const ExperimentStats stats =
      run_experiment(builder, options, config.runs, config.seed + r);
  // Network demand actually offered: same-switch flows never enter the
  // network, and all-to-all demands are normalized to one unit of egress
  // per server (see evaluate_throughput).
  const double servers = static_cast<double>(n) * servers_per_switch;
  const double f =
      traffic == TrafficKind::kAllToAll
          ? servers * (servers - servers_per_switch) / (servers - 1.0)
          : servers * (1.0 - 1.0 / n);
  const double bound = homogeneous_throughput_upper_bound(n, r, f);
  return stats.lambda.mean / bound;
}

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/3, /*full_runs=*/20);
  const int n = 40;

  std::vector<int> degrees;
  if (config.full) {
    for (int r = 3; r <= 35; ++r) degrees.push_back(r);
  } else {
    degrees = {4, 6, 8, 11, 14, 17, 20, 24, 28, 32};
  }

  ctx.banner("Figure 1(a): throughput vs upper bound, N=40, degree sweep");
  TablePrinter table({"degree", "all_to_all", "perm_10_per_switch",
                      "perm_5_per_switch"});
  for (int r : degrees) {
    table.add_row({static_cast<long long>(r),
                   throughput_ratio(config, n, r, 5, TrafficKind::kAllToAll),
                   throughput_ratio(config, n, r, 10, TrafficKind::kPermutation),
                   throughput_ratio(config, n, r, 5, TrafficKind::kPermutation)});
  }
  ctx.table(table);

  ctx.banner("Figure 1(b): ASPL vs lower bound, N=40, degree sweep");
  TablePrinter aspl_table({"degree", "observed_aspl", "aspl_lower_bound",
                           "ratio"});
  for (int r : degrees) {
    std::vector<double> observed;
    for (int run = 0; run < config.runs; ++run) {
      const Graph g = random_regular_graph(
          n, r, Rng::derive_seed(config.seed, 100 + r * 31 + run));
      observed.push_back(average_shortest_path_length(g));
    }
    const double mean_aspl = mean_of(observed);
    const double bound = aspl_lower_bound(n, r);
    aspl_table.add_row({static_cast<long long>(r), mean_aspl, bound,
                        mean_aspl / bound});
  }
  ctx.table(aspl_table);
}

}  // namespace

void register_fig01() {
  register_scenario({"fig01_homogeneous_degree",
                     "Figure 1: RRG throughput/ASPL vs bounds, degree sweep "
                     "(N=40)",
                     run});
}

}  // namespace topo::scenario
