// Figure 12 (a-c): improving VL2 by rewiring the same equipment.
//
// (a) Servers (ToRs) supported at full throughput by the rewired topology
//     (proportional ToR spreading + uniform random fabric) relative to
//     VL2's nominal DA*DI/4, swept over aggregation degree DA for several
//     aggregation-switch counts DI.
// (b) Throughput of the rewired topology (sized at its permutation
//     full-throughput point) under x% chunky traffic.
// (c) The ratio of (a) recomputed when full throughput is also required
//     under harder traffic: all-to-all and 100% chunky.
//
// Paper expectation: (a) ratios rise with scale, up to ~1.43 at the
// largest sizes; (b) chunky hurts only when most of the network is
// chunky; (c) gains shrink but stay positive under 100% chunky, and
// all-to-all is easier than permutation.
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

int rewired_max_tors_at_full_throughput(const FigureConfig& config,
                                        const Vl2Params& params,
                                        TrafficKind traffic,
                                        double chunky_fraction,
                                        std::uint64_t salt) {
  FullThroughputSearch search;
  search.builder = [params](int tors, std::uint64_t seed) {
    return rewired_vl2_topology(params, tors, seed);
  };
  search.min_tors = std::max(1, vl2_nominal_tors(params) / 2);
  search.max_tors = rewired_vl2_max_tors(params);
  search.threshold = 0.95;
  search.runs = config.runs;
  search.options = eval_options(config, traffic, chunky_fraction);
  search.options.flow.epsilon = std::min(config.epsilon, 0.05);
  return max_tors_at_full_throughput(search,
                                     Rng::derive_seed(config.seed, salt));
}

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/2, /*full_runs=*/20);

  const std::vector<int> da_values =
      config.full ? std::vector<int>{6, 8, 10, 12, 14, 16, 18, 20}
                  : std::vector<int>{8, 12, 16};
  const std::vector<int> di_values =
      config.full ? std::vector<int>{16, 20, 24, 28} : std::vector<int>{16, 20};

  // (a) permutation-traffic ratio over VL2 for each (DA, DI).
  {
    ctx.banner(
        "Figure 12(a): servers at full throughput, rewired/VL2 "
        "ratio (permutation traffic)");
    std::vector<std::string> headers{"DA"};
    for (int di : di_values) headers.push_back("DI_" + std::to_string(di));
    TablePrinter table(std::move(headers));
    for (int da : da_values) {
      std::vector<Cell> row{static_cast<long long>(da)};
      for (int di : di_values) {
        Vl2Params params;
        params.d_a = da;
        params.d_i = di;
        if ((da * di) % 4 != 0) {
          row.push_back(std::string("-"));
          continue;
        }
        const int nominal = vl2_nominal_tors(params);
        const int rewired = rewired_max_tors_at_full_throughput(
            config, params, TrafficKind::kPermutation, 1.0,
            71000 + da * 131 + di);
        row.push_back(static_cast<double>(rewired) / nominal);
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
    ctx.out() << "Expected: ratios >= 1 and growing with DA/DI (paper: up "
                 "to 1.43 at DA=20, DI=28).\n";
  }

  // (b) chunky traffic on the rewired topology sized for permutation
  // full throughput.
  {
    ctx.banner(
        "Figure 12(b): rewired topology under x% chunky traffic "
        "(DI = " +
        std::to_string(di_values.back()) + ")");
    TablePrinter table({"DA", "chunky_20", "chunky_60", "chunky_100"});
    const int di = di_values.back();
    for (int da : da_values) {
      Vl2Params params;
      params.d_a = da;
      params.d_i = di;
      if ((da * di) % 4 != 0) continue;
      const int tors = rewired_max_tors_at_full_throughput(
          config, params, TrafficKind::kPermutation, 1.0,
          71000 + da * 131 + di);
      std::vector<Cell> row{static_cast<long long>(da)};
      for (double fraction : {0.2, 0.6, 1.0}) {
        const TopologyBuilder builder = [params, tors](std::uint64_t seed) {
          return rewired_vl2_topology(params, tors, seed);
        };
        const ExperimentStats stats = run_experiment(
            builder,
            eval_options(config, TrafficKind::kChunky, fraction),
            config.runs,
            Rng::derive_seed(config.seed,
                             72000 + da * 131 + static_cast<int>(fraction * 10)));
        row.push_back(stats.lambda.mean);
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
    ctx.out() << "Expected: near-1 throughput except when most ToRs are "
                 "chunky (chunky_100 lowest).\n";
  }

  // (c) ratio over VL2 when full throughput is required under harder
  // traffic matrices.
  {
    ctx.banner(
        "Figure 12(c): rewired/VL2 ratio requiring full throughput "
        "under each traffic matrix (DI = " +
        std::to_string(di_values.back()) + ")");
    TablePrinter table({"DA", "all_to_all", "permutation", "chunky_100"});
    const int di = di_values.back();
    for (int da : da_values) {
      Vl2Params params;
      params.d_a = da;
      params.d_i = di;
      if ((da * di) % 4 != 0) continue;
      const int nominal = vl2_nominal_tors(params);
      std::vector<Cell> row{static_cast<long long>(da)};
      row.push_back(static_cast<double>(rewired_max_tors_at_full_throughput(
                        config, params, TrafficKind::kAllToAll, 1.0,
                        73000 + da * 7)) /
                    nominal);
      row.push_back(static_cast<double>(rewired_max_tors_at_full_throughput(
                        config, params, TrafficKind::kPermutation, 1.0,
                        74000 + da * 7)) /
                    nominal);
      row.push_back(static_cast<double>(rewired_max_tors_at_full_throughput(
                        config, params, TrafficKind::kChunky, 1.0,
                        75000 + da * 7)) /
                    nominal);
      table.add_row(std::move(row));
    }
    ctx.table(table);
    ctx.out() << "Expected: all_to_all >= permutation >= chunky_100, with "
                 "chunky gains smaller but positive at scale.\n";
  }
}

}  // namespace

void register_fig12() {
  register_scenario({"fig12_vl2",
                     "Figure 12: rewiring VL2's equipment for more servers",
                     run});
}

}  // namespace topo::scenario
