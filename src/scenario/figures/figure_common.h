// Shared plumbing for the figure scenarios, mirroring the historical
// bench/bench_common.h semantics exactly so the ported figures' output is
// byte-identical on fixed seeds.
#ifndef TOPODESIGN_SCENARIO_FIGURES_FIGURE_COMMON_H
#define TOPODESIGN_SCENARIO_FIGURES_FIGURE_COMMON_H

#include "core/topobench.h"
#include "scenario/scenario.h"

namespace topo::scenario {

/// The historical bench configuration, resolved from a run context.
struct FigureConfig {
  int runs = 3;
  double epsilon = 0.08;
  std::uint64_t seed = 1;
  bool csv = false;
  bool full = false;
};

/// Mirrors bench::parse_bench_config: explicit --runs wins, else the
/// figure's historical quick/full default.
inline FigureConfig figure_config(const ScenarioRun& ctx, int quick_runs,
                                  int full_runs) {
  const ScenarioOptions& options = ctx.options();
  FigureConfig config;
  config.full = options.full;
  config.runs = ctx.runs(quick_runs, full_runs);
  config.epsilon = options.epsilon;
  config.seed = options.seed;
  config.csv = options.csv;
  return config;
}

/// Mirrors bench::eval_options.
inline EvalOptions eval_options(const FigureConfig& config,
                                TrafficKind traffic = TrafficKind::kPermutation,
                                double chunky_fraction = 1.0) {
  EvalOptions options;
  options.flow.epsilon = config.epsilon;
  options.traffic = traffic;
  options.chunky_fraction = chunky_fraction;
  return options;
}

}  // namespace topo::scenario

#endif  // TOPODESIGN_SCENARIO_FIGURES_FIGURE_COMMON_H
