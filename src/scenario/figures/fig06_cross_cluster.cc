// Figure 6 (a-c): throughput vs the volume of cross-cluster wiring.
//
// Servers are placed port-proportionally; the x-axis sweeps the number of
// links crossing the large/small switch clusters as a multiple of the
// expectation under uniform random wiring (x = 1 is a vanilla random
// graph). Panels vary (a) port ratios, (b) small-switch counts, and
// (c) total servers.
//
// Paper expectation: a wide plateau at peak throughput with a collapse
// once the cross-cluster cut becomes the bottleneck (small x).
#include "scenario/figures/figure_common.h"
#include "scenario/figures/figures.h"

namespace topo::scenario {
namespace {

double lambda_at_fraction(const FigureConfig& config, TwoTypeSpec spec,
                          int total_servers, double fraction,
                          std::uint64_t salt) {
  spec = with_server_split(spec, total_servers, 1.0);
  spec.cross_fraction = fraction;
  const TopologyBuilder builder = [spec](std::uint64_t seed) {
    return build_two_type(spec, seed);
  };
  const ExperimentStats stats =
      run_experiment(builder, eval_options(config), config.runs,
                     Rng::derive_seed(config.seed, salt));
  return stats.lambda.mean;
}

const std::vector<double>& sweep_fractions(const FigureConfig& config) {
  static const std::vector<double> quick{0.1, 0.2, 0.4, 0.6, 0.8,
                                         1.0, 1.4, 2.0};
  static const std::vector<double> full{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8,
                                        1.0, 1.2, 1.4, 1.6, 1.8, 2.0};
  return config.full ? full : quick;
}

void run(ScenarioRun& ctx) {
  const FigureConfig config =
      figure_config(ctx, /*quick_runs=*/3, /*full_runs=*/20);
  const auto& fractions = sweep_fractions(config);

  {
    ctx.banner(
        "Figure 6(a): cross-cluster links, port ratio series "
        "(20 large @30p + 40 small, 400 servers)");
    TablePrinter table({"x_cross", "ports_3to1", "ports_2to1", "ports_3to2"});
    for (double x : fractions) {
      std::vector<Cell> row{x};
      int salt = 0;
      for (int small_ports : {10, 15, 20}) {
        TwoTypeSpec spec;
        spec.num_large = 20;
        spec.num_small = 40;
        spec.large_ports = 30;
        spec.small_ports = small_ports;
        row.push_back(lambda_at_fraction(config, spec, 400, x,
                                         11000 + salt++ * 41));
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
  }

  {
    ctx.banner(
        "Figure 6(b): cross-cluster links, small-switch count "
        "series (20 large @30p, small @20p, 500 servers)");
    TablePrinter table({"x_cross", "small_20", "small_30", "small_40"});
    for (double x : fractions) {
      std::vector<Cell> row{x};
      int salt = 0;
      for (int num_small : {20, 30, 40}) {
        TwoTypeSpec spec;
        spec.num_large = 20;
        spec.num_small = num_small;
        spec.large_ports = 30;
        spec.small_ports = 20;
        row.push_back(lambda_at_fraction(config, spec, 500, x,
                                         12000 + salt++ * 41));
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
  }

  {
    ctx.banner(
        "Figure 6(c): cross-cluster links, server count series "
        "(20 large @30p + 30 small @20p)");
    TablePrinter table({"x_cross", "servers_300", "servers_500",
                        "servers_700"});
    for (double x : fractions) {
      std::vector<Cell> row{x};
      int salt = 0;
      for (int servers : {300, 500, 700}) {
        TwoTypeSpec spec;
        spec.num_large = 20;
        spec.num_small = 30;
        spec.large_ports = 30;
        spec.small_ports = 20;
        row.push_back(lambda_at_fraction(config, spec, servers, x,
                                         13000 + salt++ * 41));
      }
      table.add_row(std::move(row));
    }
    ctx.table(table);
  }
  ctx.out() << "Expected: throughput stable at its peak across a wide range "
               "of x, dropping sharply at small x.\n";
}

}  // namespace

void register_fig06() {
  register_scenario({"fig06_cross_cluster",
                     "Figure 6: throughput vs cross-cluster wiring volume",
                     run});
}

}  // namespace topo::scenario
