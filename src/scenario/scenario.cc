#include "scenario/scenario.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "util/error.h"
#include "util/exit_codes.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/table.h"

namespace topo::scenario {
namespace {

std::vector<ScenarioInfo>& registry() {
  static std::vector<ScenarioInfo>* scenarios = new std::vector<ScenarioInfo>();
  return *scenarios;
}

std::string json_cell(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return json_string(*s);
  if (const auto* i = std::get_if<long long>(&cell)) {
    return std::to_string(*i);
  }
  return json_number(std::get<double>(cell));
}

}  // namespace

void ScenarioRun::banner(const std::string& title) {
  print_banner(*stream_, title);
  current_title_ = title;
}

void ScenarioRun::table(const TablePrinter& t) {
  t.emit(*stream_, options_.csv);
  tables_.push_back(RecordedTable{current_title_, t});
}

void register_scenario(ScenarioInfo info) {
  for (const ScenarioInfo& existing : registry()) {
    if (existing.name == info.name) return;
  }
  registry().push_back(std::move(info));
}

std::vector<const ScenarioInfo*> list_scenarios() {
  std::vector<const ScenarioInfo*> result;
  result.reserve(registry().size());
  for (const ScenarioInfo& s : registry()) result.push_back(&s);
  std::sort(result.begin(), result.end(),
            [](const ScenarioInfo* a, const ScenarioInfo* b) {
              return a->name < b->name;
            });
  return result;
}

const ScenarioInfo* find_scenario(const std::string& name) {
  const ScenarioInfo* prefix_match = nullptr;
  int prefix_matches = 0;
  for (const ScenarioInfo& s : registry()) {
    if (s.name == name) return &s;
    if (s.name.rfind(name, 0) == 0) {
      prefix_match = &s;
      ++prefix_matches;
    }
  }
  return prefix_matches == 1 ? prefix_match : nullptr;
}

void write_scenario_json(std::ostream& os, const std::string& name,
                         const ScenarioOptions& options,
                         const std::vector<RecordedTable>& tables) {
  os << "{\n";
  os << "  \"scenario\": " << json_string(name) << ",\n";
  os << "  \"options\": {\"runs\": " << options.runs
     << ", \"epsilon\": " << json_number(options.epsilon)
     << ", \"seed\": " << options.seed
     << ", \"mode\": " << json_string(options.full ? "full" : "smoke")
     << "},\n";
  os << "  \"tables\": [";
  for (std::size_t t = 0; t < tables.size(); ++t) {
    if (t > 0) os << ",";
    os << "\n    {\n      \"title\": " << json_string(tables[t].title)
       << ",\n      \"headers\": [";
    const TablePrinter& table = tables[t].table;
    for (std::size_t h = 0; h < table.headers().size(); ++h) {
      if (h > 0) os << ", ";
      os << json_string(table.headers()[h]);
    }
    os << "],\n      \"rows\": [";
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      if (r > 0) os << ",";
      os << "\n        [";
      const std::vector<Cell>& row = table.rows()[r];
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) os << ", ";
        os << json_cell(row[c]);
      }
      os << "]";
    }
    os << (table.rows().empty() ? "]" : "\n      ]");
    os << "\n    }";
  }
  os << (tables.empty() ? "]" : "\n  ]");
  os << "\n}\n";
}

namespace {

// Parses a --shard value of the form "I/N" (0-based stripe I of N) into
// the options; raises InvalidArgument naming the flag on any malformation.
void parse_shard_value(const std::string& value, ScenarioOptions* options) {
  const std::size_t slash = value.find('/');
  bool ok = slash != std::string::npos && slash > 0 &&
            slash + 1 < value.size();
  int index = 0;
  int count = 0;
  if (ok) {
    try {
      std::size_t used = 0;
      index = std::stoi(value.substr(0, slash), &used);
      ok = used == slash;
      std::size_t used_count = 0;
      const std::string count_text = value.substr(slash + 1);
      count = std::stoi(count_text, &used_count);
      ok = ok && used_count == count_text.size();
    } catch (const std::exception&) {
      ok = false;
    }
  }
  require(ok, "--shard expects I/N (e.g. --shard 0/2), got: " + value);
  require(count >= 1, "--shard I/N requires N >= 1, got: " + value);
  require(index >= 0 && index < count,
          "--shard I/N requires 0 <= I < N, got: " + value);
  options->shard_index = index;
  options->shard_count = count;
}

}  // namespace

ScenarioOptions parse_scenario_options(int argc, const char* const* argv) {
  const Flags flags(argc, argv, {"runs", "eps", "seed", "csv", "full", "smoke",
                                 "out", "threads", "cache-dir", "shard",
                                 "solver", "stripe"});
  require(!(flags.get_bool("full") && flags.get_bool("smoke")),
          "--full and --smoke are mutually exclusive");
  ScenarioOptions options;
  options.runs = flags.get_int("runs", 0);
  options.epsilon = flags.get_double("eps", 0.08);
  options.seed = flags.get_uint64("seed", 1);
  options.csv = flags.get_bool("csv");
  options.full = flags.get_bool("full");
  options.out_path = flags.get_string("out", "");
  options.cache_dir = flags.get_string("cache-dir", "");
  options.solver = flags.get_string("solver", "");
  require(options.solver.empty() || options.solver == "exact" ||
              options.solver == "approx",
          "--solver expects exact or approx, got: " + options.solver);
  options.stripe = flags.get_string("stripe", "");
  require(options.stripe.empty() || options.stripe == "round-robin" ||
              options.stripe == "range",
          "--stripe expects round-robin or range, got: " + options.stripe);
  if (const std::string shard = flags.get_string("shard", ""); !shard.empty()) {
    parse_shard_value(shard, &options);
    require(options.shard_count == 1 || !options.cache_dir.empty(),
            "--shard requires --cache-dir: a shard's cells are published "
            "through the shared cache for the coordinator to merge");
  }
  if (const int threads = flags.get_int("threads", 0); threads > 0) {
    // Exported for child processes the scenario may spawn; the local pool
    // is sized explicitly below (the env var alone is read only at the
    // pool's first use, which may already have happened).
    ::setenv("TOPOBENCH_THREADS", std::to_string(threads).c_str(), 1);
    if (!set_parallel_slots(threads)) {
      // The pool serves one size per process: if a parallel region
      // already ran, honoring the flag is impossible — fail loudly
      // instead of silently computing at the old width.
      throw InvalidArgument(
          "--threads " + std::to_string(threads) +
          " cannot take effect: the thread pool already started with " +
          std::to_string(parallel_slots()) +
          " slots (pass --threads before the first parallel region)");
    }
  }
  return options;
}

int run_scenario(const std::string& name, const ScenarioOptions& options,
                 std::ostream& stream) {
  const ScenarioInfo* info = find_scenario(name);
  if (info == nullptr) {
    // Distinguish an ambiguous prefix from a genuinely unknown name.
    std::vector<const ScenarioInfo*> matches;
    for (const ScenarioInfo& s : registry()) {
      if (s.name.rfind(name, 0) == 0) matches.push_back(&s);
    }
    if (matches.size() > 1) {
      std::cerr << "ambiguous scenario prefix: " << name << " matches";
      for (const ScenarioInfo* s : matches) std::cerr << " " << s->name;
      std::cerr << "\n";
    } else {
      std::cerr << "unknown scenario: " << name
                << " (topobench --list shows all names)\n";
    }
    return kExitUsage;
  }
  ScenarioRun run(options, stream);
  info->run(run);
  if (!options.out_path.empty()) {
    std::ofstream out(options.out_path);
    if (!out) {
      std::cerr << "cannot write " << options.out_path << "\n";
      return kExitInternal;
    }
    write_scenario_json(out, info->name, options, run.tables());
  }
  return kExitOk;
}

int scenario_main(const std::string& name, int argc,
                  const char* const* argv) {
  register_builtin_scenarios();
  ScenarioOptions options;
  try {
    options = parse_scenario_options(argc, argv);
  } catch (const InvalidArgument& e) {
    std::cerr << e.what() << "\n";
    return kExitUsage;
  }
  try {
    return run_scenario(name, options, std::cout);
  } catch (const InvalidArgument& e) {
    // Flag values validated downstream (e.g. --eps outside (0, 1) is
    // rejected inside the solver) surface as a clean error, not an abort.
    std::cerr << e.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    // Anything else is a bug or an environment failure, not a usage
    // error; keep the codes distinct so scripts can tell them apart.
    std::cerr << "internal error: " << e.what() << "\n";
    return kExitInternal;
  }
}

}  // namespace topo::scenario
