#include "scenario/scenario.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "util/error.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/table.h"

namespace topo::scenario {
namespace {

std::vector<ScenarioInfo>& registry() {
  static std::vector<ScenarioInfo>* scenarios = new std::vector<ScenarioInfo>();
  return *scenarios;
}

std::string json_cell(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return json_string(*s);
  if (const auto* i = std::get_if<long long>(&cell)) {
    return std::to_string(*i);
  }
  return json_number(std::get<double>(cell));
}

}  // namespace

void ScenarioRun::banner(const std::string& title) {
  print_banner(*stream_, title);
  current_title_ = title;
}

void ScenarioRun::table(const TablePrinter& t) {
  t.emit(*stream_, options_.csv);
  tables_.push_back(RecordedTable{current_title_, t});
}

void register_scenario(ScenarioInfo info) {
  for (const ScenarioInfo& existing : registry()) {
    if (existing.name == info.name) return;
  }
  registry().push_back(std::move(info));
}

std::vector<const ScenarioInfo*> list_scenarios() {
  std::vector<const ScenarioInfo*> result;
  result.reserve(registry().size());
  for (const ScenarioInfo& s : registry()) result.push_back(&s);
  std::sort(result.begin(), result.end(),
            [](const ScenarioInfo* a, const ScenarioInfo* b) {
              return a->name < b->name;
            });
  return result;
}

const ScenarioInfo* find_scenario(const std::string& name) {
  const ScenarioInfo* prefix_match = nullptr;
  int prefix_matches = 0;
  for (const ScenarioInfo& s : registry()) {
    if (s.name == name) return &s;
    if (s.name.rfind(name, 0) == 0) {
      prefix_match = &s;
      ++prefix_matches;
    }
  }
  return prefix_matches == 1 ? prefix_match : nullptr;
}

void write_scenario_json(std::ostream& os, const std::string& name,
                         const ScenarioOptions& options,
                         const std::vector<RecordedTable>& tables) {
  os << "{\n";
  os << "  \"scenario\": " << json_string(name) << ",\n";
  os << "  \"options\": {\"runs\": " << options.runs
     << ", \"epsilon\": " << json_number(options.epsilon)
     << ", \"seed\": " << options.seed
     << ", \"mode\": " << json_string(options.full ? "full" : "smoke")
     << "},\n";
  os << "  \"tables\": [";
  for (std::size_t t = 0; t < tables.size(); ++t) {
    if (t > 0) os << ",";
    os << "\n    {\n      \"title\": " << json_string(tables[t].title)
       << ",\n      \"headers\": [";
    const TablePrinter& table = tables[t].table;
    for (std::size_t h = 0; h < table.headers().size(); ++h) {
      if (h > 0) os << ", ";
      os << json_string(table.headers()[h]);
    }
    os << "],\n      \"rows\": [";
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      if (r > 0) os << ",";
      os << "\n        [";
      const std::vector<Cell>& row = table.rows()[r];
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) os << ", ";
        os << json_cell(row[c]);
      }
      os << "]";
    }
    os << (table.rows().empty() ? "]" : "\n      ]");
    os << "\n    }";
  }
  os << (tables.empty() ? "]" : "\n  ]");
  os << "\n}\n";
}

ScenarioOptions parse_scenario_options(int argc, const char* const* argv) {
  const Flags flags(argc, argv, {"runs", "eps", "seed", "csv", "full", "smoke",
                                 "out", "threads", "cache-dir"});
  require(!(flags.get_bool("full") && flags.get_bool("smoke")),
          "--full and --smoke are mutually exclusive");
  ScenarioOptions options;
  options.runs = flags.get_int("runs", 0);
  options.epsilon = flags.get_double("eps", 0.08);
  options.seed = flags.get_uint64("seed", 1);
  options.csv = flags.get_bool("csv");
  options.full = flags.get_bool("full");
  options.out_path = flags.get_string("out", "");
  options.cache_dir = flags.get_string("cache-dir", "");
  if (const int threads = flags.get_int("threads", 0); threads > 0) {
    // The pool reads TOPOBENCH_THREADS once, at its first use; both CLI
    // entry points parse flags before any parallel region runs.
    ::setenv("TOPOBENCH_THREADS", std::to_string(threads).c_str(), 1);
  }
  return options;
}

int run_scenario(const std::string& name, const ScenarioOptions& options,
                 std::ostream& stream) {
  const ScenarioInfo* info = find_scenario(name);
  if (info == nullptr) {
    // Distinguish an ambiguous prefix from a genuinely unknown name.
    std::vector<const ScenarioInfo*> matches;
    for (const ScenarioInfo& s : registry()) {
      if (s.name.rfind(name, 0) == 0) matches.push_back(&s);
    }
    if (matches.size() > 1) {
      std::cerr << "ambiguous scenario prefix: " << name << " matches";
      for (const ScenarioInfo* s : matches) std::cerr << " " << s->name;
      std::cerr << "\n";
    } else {
      std::cerr << "unknown scenario: " << name
                << " (topobench --list shows all names)\n";
    }
    return 2;
  }
  ScenarioRun run(options, stream);
  info->run(run);
  if (!options.out_path.empty()) {
    std::ofstream out(options.out_path);
    if (!out) {
      std::cerr << "cannot write " << options.out_path << "\n";
      return 1;
    }
    write_scenario_json(out, info->name, options, run.tables());
  }
  return 0;
}

int scenario_main(const std::string& name, int argc,
                  const char* const* argv) {
  register_builtin_scenarios();
  ScenarioOptions options;
  try {
    options = parse_scenario_options(argc, argv);
  } catch (const InvalidArgument& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  try {
    return run_scenario(name, options, std::cout);
  } catch (const InvalidArgument& e) {
    // Flag values validated downstream (e.g. --eps outside (0, 1) is
    // rejected inside the solver) surface as a clean error, not an abort.
    std::cerr << e.what() << "\n";
    return 1;
  }
}

}  // namespace topo::scenario
