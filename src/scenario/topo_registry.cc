#include "scenario/topo_registry.h"

#include <cmath>

#include "topo/fat_tree.h"
#include "topo/het_random.h"
#include "topo/power_law.h"
#include "topo/random_regular.h"
#include "topo/small_world.h"
#include "topo/structured.h"
#include "topo/vl2.h"
#include "util/rng.h"

namespace topo::scenario {

double param(const ParamMap& params, const std::string& name,
             double fallback) {
  const auto it = params.find(name);
  return it == params.end() ? fallback : it->second;
}

int param_int(const ParamMap& params, const std::string& name, int fallback) {
  const auto it = params.find(name);
  return it == params.end() ? fallback
                            : static_cast<int>(std::llround(it->second));
}

namespace {

BuiltTopology build_random_regular(const ParamMap& p, std::uint64_t seed) {
  // n (40): switches; ports (15): ports per switch; degree (10):
  // network-facing ports, so each switch hosts ports - degree servers.
  const int degree = param_int(p, "degree", 10);
  return random_regular_topology(param_int(p, "n", 40),
                                 param_int(p, "ports", degree + 5), degree,
                                 seed);
}

BuiltTopology build_two_type_family(const ParamMap& p, std::uint64_t seed) {
  // The §5/§6 heterogeneous pool: num_large (20) @ large_ports (30) +
  // num_small (40) @ small_ports (20); servers_per_large/small (0/0 =
  // derive a proportional split of total_servers (400)); cross_fraction
  // (1.0); hs_links_per_large (0) @ hs_speed (10).
  TwoTypeSpec spec;
  spec.num_large = param_int(p, "num_large", 20);
  spec.num_small = param_int(p, "num_small", 40);
  spec.large_ports = param_int(p, "large_ports", 30);
  spec.small_ports = param_int(p, "small_ports", 20);
  spec.servers_per_large = param_int(p, "servers_per_large", 0);
  spec.servers_per_small = param_int(p, "servers_per_small", 0);
  spec.cross_fraction = param(p, "cross_fraction", 1.0);
  spec.hs_links_per_large = param_int(p, "hs_links_per_large", 0);
  spec.hs_speed = param(p, "hs_speed", 10.0);
  if (spec.servers_per_large == 0 && spec.servers_per_small == 0) {
    spec = with_server_split(spec, param_int(p, "total_servers", 400),
                             param(p, "placement_ratio", 1.0));
  }
  return build_two_type(spec, seed);
}

BuiltTopology build_power_law_pool(const ParamMap& p, std::uint64_t seed) {
  // The Fig-5 pool: n (40) switches with power-law ports of mean
  // avg_ports (8); servers proportional to ports^beta (1.0); total
  // servers = server_fraction (0.45) of total ports.
  const int n = param_int(p, "n", 40);
  const double avg_ports = param(p, "avg_ports", 8.0);
  const int total_servers = static_cast<int>(
      param(p, "server_fraction", 0.45) * n * avg_ports);
  std::vector<int> ports =
      power_law_ports(n, avg_ports, Rng::derive_seed(seed, 0x506f7274));
  fix_parity_for_servers(ports, total_servers);
  const std::vector<int> servers =
      beta_proportional_servers(ports, param(p, "beta", 1.0), total_servers);
  return build_pool_topology(ports, servers, seed);
}

BuiltTopology build_fat_tree(const ParamMap& p, std::uint64_t /*seed*/) {
  // k (8): the fat-tree arity (deterministic topology, seed unused).
  return fat_tree_topology(param_int(p, "k", 8));
}

BuiltTopology build_vl2(const ParamMap& p, std::uint64_t /*seed*/) {
  // d_a (16), d_i (16), servers_per_tor (20): standard VL2 at its nominal
  // ToR count (deterministic, seed unused).
  Vl2Params params;
  params.d_a = param_int(p, "d_a", 16);
  params.d_i = param_int(p, "d_i", 16);
  params.servers_per_tor = param_int(p, "servers_per_tor", 20);
  return vl2_topology(params);
}

BuiltTopology build_rewired_vl2(const ParamMap& p, std::uint64_t seed) {
  // The §7 rewiring of the VL2 pool; tors (0 = the nominal DA*DI/4).
  Vl2Params params;
  params.d_a = param_int(p, "d_a", 16);
  params.d_i = param_int(p, "d_i", 16);
  params.servers_per_tor = param_int(p, "servers_per_tor", 20);
  int tors = param_int(p, "tors", 0);
  if (tors <= 0) tors = vl2_nominal_tors(params);
  return rewired_vl2_topology(params, tors, seed);
}

BuiltTopology build_hypercube(const ParamMap& p, std::uint64_t /*seed*/) {
  // dim (6): 2^dim switches; servers_per_switch (4).
  return hypercube_topology(param_int(p, "dim", 6),
                            param_int(p, "servers_per_switch", 4));
}

BuiltTopology build_torus2d(const ParamMap& p, std::uint64_t /*seed*/) {
  // rows (8) x cols (8) wraparound torus; servers_per_switch (4).
  return torus2d_topology(param_int(p, "rows", 8), param_int(p, "cols", 8),
                          param_int(p, "servers_per_switch", 4));
}

BuiltTopology build_generalized_hypercube(const ParamMap& p,
                                          std::uint64_t /*seed*/) {
  // dims (2) coordinates of radix (4) each; servers_per_switch (4).
  const std::vector<int> radices(
      static_cast<std::size_t>(param_int(p, "dims", 2)),
      param_int(p, "radix", 4));
  return generalized_hypercube_topology(radices,
                                        param_int(p, "servers_per_switch", 4));
}

BuiltTopology build_small_world(const ParamMap& p, std::uint64_t seed) {
  // n (32) switches on a ring with lattice_degree (4) neighbors plus
  // shortcut_degree (2) random shortcuts; servers_per_switch (4).
  return small_world_topology(param_int(p, "n", 32),
                              param_int(p, "lattice_degree", 4),
                              param_int(p, "shortcut_degree", 2),
                              param_int(p, "servers_per_switch", 4), seed);
}

}  // namespace

const std::vector<FamilyInfo>& topology_families() {
  static const std::vector<FamilyInfo>* families = new std::vector<FamilyInfo>{
      {"random_regular", "RRG(n, ports, degree), the paper's homogeneous design",
       {"n", "ports", "degree"}, build_random_regular},
      {"two_type", "two-cluster heterogeneous pool (§5/§6), optional HS overlay",
       {"num_large", "num_small", "large_ports", "small_ports",
        "servers_per_large", "servers_per_small", "cross_fraction",
        "hs_links_per_large", "hs_speed", "total_servers", "placement_ratio"},
       build_two_type_family},
      {"power_law_pool", "power-law port counts, servers ~ ports^beta (Fig 5)",
       {"n", "avg_ports", "beta", "server_fraction"}, build_power_law_pool},
      {"fat_tree", "k-ary folded-Clos fat-tree baseline", {"k"},
       build_fat_tree},
      {"vl2", "standard VL2 at its nominal ToR count",
       {"d_a", "d_i", "servers_per_tor"}, build_vl2},
      {"rewired_vl2", "the paper's §7 random rewiring of the VL2 pool",
       {"d_a", "d_i", "servers_per_tor", "tors"}, build_rewired_vl2},
      {"hypercube", "d-dimensional hypercube baseline",
       {"dim", "servers_per_switch"}, build_hypercube},
      {"torus2d", "2-D wraparound torus baseline",
       {"rows", "cols", "servers_per_switch"}, build_torus2d},
      {"generalized_hypercube", "mixed-radix Hamming-graph baseline",
       {"dims", "radix", "servers_per_switch"}, build_generalized_hypercube},
      {"small_world", "ring lattice + random shortcuts (SWDC)",
       {"n", "lattice_degree", "shortcut_degree", "servers_per_switch"},
       build_small_world},
  };
  return *families;
}

const FamilyInfo* find_family(const std::string& name) {
  for (const FamilyInfo& family : topology_families()) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

}  // namespace topo::scenario
