#include "scenario/cache.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <thread>

#include "scenario/spec_io.h"
#include "util/cleanup.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/json.h"

namespace topo::scenario {
namespace {

// The scalar result fields a cached cell persists, in serialization
// order. summarize_runs reads lambda/dual_bound/feasible/utilization/
// demand_weighted_spl/stretch; the rest keep the cell a faithful record.
std::string result_json(const ThroughputResult& r) {
  std::ostringstream out;
  out << "{\"lambda\": " << json_number(r.lambda)
      << ", \"dual_bound\": " << json_number(r.dual_bound)
      << ", \"gap\": " << json_number(r.gap)
      << ", \"feasible\": " << (r.feasible ? "true" : "false")
      << ", \"phases\": " << r.phases
      << ", \"utilization\": " << json_number(r.utilization)
      << ", \"mean_routed_path_length\": "
      << json_number(r.mean_routed_path_length)
      << ", \"demand_weighted_spl\": " << json_number(r.demand_weighted_spl)
      << ", \"stretch\": " << json_number(r.stretch)
      << ", \"total_demand\": " << json_number(r.total_demand);
  // Packet co-simulation scalars ride along only when the cell ran one,
  // so flow-only cells keep their historical bytes (and checksums).
  if (r.packet_sim_run) {
    out << ", \"packet_mean\": " << json_number(r.packet_mean_normalized)
        << ", \"packet_p05\": " << json_number(r.packet_p05_normalized)
        << ", \"packet_min\": " << json_number(r.packet_min_normalized)
        << ", \"packet_retransmits\": " << json_number(r.packet_retransmits)
        << ", \"packet_drops\": " << json_number(r.packet_drops);
  }
  // Same pattern for the finite-flow workload block.
  if (r.fct_run) {
    out << ", \"fct_p50\": " << json_number(r.fct_p50_ns)
        << ", \"fct_p95\": " << json_number(r.fct_p95_ns)
        << ", \"fct_p99\": " << json_number(r.fct_p99_ns)
        << ", \"fct_mean\": " << json_number(r.fct_mean_ns)
        << ", \"fct_goodput\": " << json_number(r.fct_goodput)
        << ", \"fct_flows\": " << json_number(r.fct_flows)
        << ", \"fct_completed\": " << json_number(r.fct_completed)
        << ", \"fct_slowdown_p50\": " << json_number(r.fct_slowdown_p50)
        << ", \"fct_slowdown_p99\": " << json_number(r.fct_slowdown_p99);
  }
  out << "}";
  return out.str();
}

// Strict inverse of result_json: every field present with the right
// type, exactly the known keys. Throws InvalidArgument on any mismatch
// (the loader converts that into a miss).
ThroughputResult result_from_json(const JsonValue& object) {
  require(object.is_object(), "cache cell: result must be an object");
  const std::vector<std::string> known = {
      "lambda",      "dual_bound",  "gap",
      "feasible",    "phases",      "utilization",
      "mean_routed_path_length",    "demand_weighted_spl",
      "stretch",     "total_demand",
      "packet_mean", "packet_p05",  "packet_min",
      "packet_retransmits",         "packet_drops",
      "fct_p50",     "fct_p95",     "fct_p99",
      "fct_mean",    "fct_goodput", "fct_flows",
      "fct_completed",              "fct_slowdown_p50",
      "fct_slowdown_p99"};
  for (const auto& [key, value] : object.members) {
    (void)value;
    bool ok = false;
    for (const std::string& name : known) ok = ok || name == key;
    require(ok, "cache cell: unknown result key " + key);
  }
  const auto number = [&](const char* key) {
    const JsonValue& value = object.at(key);
    require(value.is_number(), std::string("cache cell: ") + key);
    return value.number;
  };
  ThroughputResult r;
  r.lambda = number("lambda");
  r.dual_bound = number("dual_bound");
  r.gap = number("gap");
  const JsonValue& feasible = object.at("feasible");
  require(feasible.is_bool(), "cache cell: feasible");
  r.feasible = feasible.boolean;
  r.phases = static_cast<int>(number("phases"));
  r.utilization = number("utilization");
  r.mean_routed_path_length = number("mean_routed_path_length");
  r.demand_weighted_spl = number("demand_weighted_spl");
  r.stretch = number("stretch");
  r.total_demand = number("total_demand");
  // The five packet keys travel as a block: presence of the first means
  // the cell ran a packet co-simulation, and the strict `number` lookups
  // then require the rest (a partial block fails the load into a miss).
  if (object.find("packet_mean") != nullptr) {
    r.packet_sim_run = true;
    r.packet_mean_normalized = number("packet_mean");
    r.packet_p05_normalized = number("packet_p05");
    r.packet_min_normalized = number("packet_min");
    r.packet_retransmits = number("packet_retransmits");
    r.packet_drops = number("packet_drops");
  }
  // The FCT keys travel as a block keyed on fct_p50 the same way.
  if (object.find("fct_p50") != nullptr) {
    r.fct_run = true;
    r.fct_p50_ns = number("fct_p50");
    r.fct_p95_ns = number("fct_p95");
    r.fct_p99_ns = number("fct_p99");
    r.fct_mean_ns = number("fct_mean");
    r.fct_goodput = number("fct_goodput");
    r.fct_flows = number("fct_flows");
    r.fct_completed = number("fct_completed");
    r.fct_slowdown_p50 = number("fct_slowdown_p50");
    r.fct_slowdown_p99 = number("fct_slowdown_p99");
  }
  return r;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes, std::uint64_t basis) {
  std::uint64_t hash = basis;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::uint64_t spec_hash(const ScenarioSpec& spec,
                        const SweepRunConfig& config) {
  std::string material = spec_to_json(spec);
  material += "|seed=" + std::to_string(config.master_seed);
  material += "|eps=" + json_number(config.epsilon);
  material += "|runs=" + std::to_string(config.runs);
  material += std::string("|mode=") + (config.full ? "full" : "smoke");
  material += std::string("|solver=") + kSolverVersionTag;
  // Solver-mode material joins only when something selects approx (the
  // override, or the spec's own solver field — already in the spec JSON
  // but the approx tag is not), so every historical exact-mode hash is
  // unchanged.
  if (!config.solver_override.empty()) {
    material += "|solver_mode=" + config.solver_override;
  }
  if (spec.solver == SolverMode::kApprox ||
      config.solver_override == "approx") {
    material += std::string("|approx=") + kSolverApproxVersionTag;
  }
  // Search material joins only when the spec carries a search block (the
  // block itself is already in the spec JSON; the version tag is not), so
  // every legacy spec hash is unchanged.
  if (spec.search.enabled) {
    material += std::string("|search=") + kSearchVersionTag;
  }
  return fnv1a64(material);
}

std::string cell_identity_json(const CellIdentity& cell) {
  std::ostringstream out;
  out << "{\"family\": " << json_string(cell.family) << ", \"params\": {";
  bool first = true;
  for (const auto& [key, value] : cell.params) {  // std::map: sorted, canonical
    if (!first) out << ", ";
    first = false;
    out << json_string(key) << ": " << json_number(value);
  }
  const EvalOptions& options = cell.options;
  out << "}, \"epsilon\": " << json_number(options.flow.epsilon)
      << ", \"max_phases\": " << options.flow.max_phases
      << ", \"stagnation_phases\": " << options.flow.stagnation_phases
      << ", \"dual_every\": " << options.flow.dual_every
      << ", \"shortest_paths\": "
      << (options.flow.restrict_to_shortest_paths ? "true" : "false");
  // The approximate-solver block joins the identity only in approx mode,
  // so every exact-mode cell — including every cell written before the
  // mode existed — keeps its address, while flipping to approx (or
  // turning any approx knob, or bumping the approx tag) perturbs the key.
  if (options.flow.mode == SolverMode::kApprox) {
    out << ", \"solver_mode\": \"approx\""
        << ", \"approx_stale\": "
        << json_number(options.flow.approx_stale_factor)
        << ", \"approx_round\": " << options.flow.approx_round_size
        << ", \"approx\": " << json_string(kSolverApproxVersionTag);
  }
  out << ", \"traffic\": " << json_string(traffic_kind_name(options.traffic))
      << ", \"chunky_fraction\": " << json_number(options.chunky_fraction);
  // Kind-specific traffic knobs join the identity only for their kind, so
  // every pre-existing (permutation/all_to_all/chunky) cell keeps its
  // address while any hotspot/stride knob perturbs the key.
  if (options.traffic == TrafficKind::kHotspot) {
    out << ", \"hot_fraction\": " << json_number(options.hot_fraction)
        << ", \"hot_multiplier\": " << json_number(options.hot_multiplier);
  }
  if (options.traffic == TrafficKind::kStride) {
    out << ", \"stride\": " << options.stride;
  }
  out << ", \"failure\": {\"link\": "
      << json_number(options.failure.uniform.link_fraction)
      << ", \"switch\": "
      << json_number(options.failure.uniform.switch_fraction)
      << ", \"capacity\": " << json_number(options.failure.capacity_factor);
  // Newer failure components join the identity only when set, so cells
  // written before they existed (and uniform-only cells today) keep their
  // addresses, while any new failure parameter perturbs the key.
  const FailureSpec& failure = options.failure;
  if (failure.correlated.epicenter_fraction != 0.0 ||
      failure.correlated.peer_probability != 0.0) {
    out << ", \"blast\": " << json_number(failure.correlated.epicenter_fraction)
        << ", \"blast_p\": " << json_number(failure.correlated.peer_probability);
  }
  if (!failure.per_class.switch_fraction.empty()) {
    out << ", \"per_class\": {";
    bool first_class = true;
    for (const auto& [klass, fraction] : failure.per_class.switch_fraction) {
      if (!first_class) out << ", ";
      first_class = false;
      out << json_string(klass) << ": " << json_number(fraction);
    }
    out << "}";
  }
  if (failure.targeted.link_cuts != 0) {
    out << ", \"targeted\": " << failure.targeted.link_cuts;
  }
  out << "}";
  // Like the newer failure components: the packet-sim section joins the
  // identity only when enabled, so every flow-only cell (including all
  // cells written before packet co-simulation existed) keeps its
  // address, while any packet knob perturbs the key.
  if (options.packet_sim.enabled) {
    const sim::SimParams& p = options.packet_sim.params;
    out << ", \"packet_sim\": {\"subflows\": " << p.subflows
        << ", \"queue\": " << p.queue_packets
        << ", \"bytes\": " << p.packet_bytes
        << ", \"duration\": " << p.duration_ns
        << ", \"warmup\": " << p.warmup_ns
        << ", \"jitter\": " << p.start_jitter_ns
        << ", \"delay\": " << p.link_delay_ns
        << ", \"rate\": " << json_number(p.server_rate_gbps)
        << ", \"ewtcp\": " << (p.ewtcp_coupling ? "true" : "false")
        << ", \"route_mode\": " << json_string(route_mode_name(p.route_mode))
        << ", \"sim\": " << json_string(kPacketSimVersionTag);
    // The workload sub-block joins only for FCT cells, so every bulk
    // packet-sim cell written before finite-flow workloads existed keeps
    // its address.
    if (options.packet_sim.fct.enabled) {
      out << ", \"workload\": {\"cdf\": "
          << json_string(options.packet_sim.fct.cdf)
          << ", \"load\": " << json_number(options.packet_sim.fct.load);
      // The incast knobs join only for the incast pattern, so every
      // uniform-pattern workload cell written before incast existed
      // keeps its address.
      if (options.packet_sim.fct.pattern == "incast") {
        out << ", \"pattern\": \"incast\", \"fan_in\": "
            << options.packet_sim.fct.fan_in;
      }
      // User-supplied tables join the identity as the PARSED points —
      // never the file path — so two paths with identical contents share
      // cells and editing the file's contents invalidates them.
      if (!options.packet_sim.fct.custom_cdf.empty()) {
        out << ", \"cdf_table\": [";
        bool first_point = true;
        for (const CdfPoint& p : options.packet_sim.fct.custom_cdf) {
          if (!first_point) out << ", ";
          first_point = false;
          out << "[" << json_number(p.bytes) << ", "
              << json_number(p.cum_prob) << "]";
        }
        out << "]";
      }
      out << ", \"fct\": " << json_string(kFctWorkloadVersionTag) << "}";
    }
    out << "}";
  }
  // Search-candidate material joins only when a candidate hash is set, so
  // every sweep cell — including all cells written before topology search
  // existed — keeps its address, while candidate cells key on the
  // canonical built topology (and the search version tag) instead of a
  // construction seed.
  if (!cell.candidate.empty()) {
    out << ", \"candidate\": " << json_string(cell.candidate)
        << ", \"search\": " << json_string(kSearchVersionTag);
  }
  out << ", \"topo_seed\": " << cell.topo_seed
      << ", \"traffic_seed\": " << cell.traffic_seed
      << ", \"solver\": " << json_string(kSolverVersionTag) << "}";
  return out.str();
}

std::uint64_t cell_key(const CellIdentity& cell) {
  return fnv1a64(cell_identity_json(cell));
}

namespace {

// Cutoff separating this process's in-flight temp files from a crashed
// writer's leftovers, captured at the first cache open. A live writer's
// temp exists only for the instant between write and rename, so a temp
// predating this process is garbage from a shard that died mid-store —
// minus a safety margin absorbing clock skew between machines sharing
// the dir (NFS mtimes come from the file server's clock, not ours) and
// coarse filesystem timestamp granularity.
std::filesystem::file_time_type stale_temp_cutoff() {
  static const auto epoch = std::filesystem::file_time_type::clock::now();
  return epoch - std::chrono::minutes(10);
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  require(!dir_.empty(), "cache dir must be non-empty");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  require(!ec && std::filesystem::is_directory(dir_),
          "cannot create cache dir: " + dir_);
  // Crash hygiene for shared dirs: rename failure already cleans its own
  // temp, but a writer killed between write and rename leaves
  // `<cell>.json.tmp.<id>` behind forever. Sweep temps that clearly
  // predate this process on open, so crashed shards don't accumulate
  // garbage in a cache dir shared across many shard invocations. Cell
  // files are never touched, and removal failures are ignored (another
  // opener may have swept the same file first).
  const auto cutoff = stale_temp_cutoff();
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().filename().string().find(".json.tmp.") ==
        std::string::npos) {
      continue;
    }
    const auto written = std::filesystem::last_write_time(entry.path(), ec);
    if (ec || written >= cutoff) continue;
    std::filesystem::remove(entry.path(), ec);
  }
}

std::string ResultCache::cell_path(std::uint64_t key) const {
  return dir_ + "/" + hash_hex(key) + ".json";
}

namespace {

// One process-wide quarantine warning: a corrupted shared cache can hold
// thousands of bad cells, and one line per cell would bury the signal.
std::atomic<bool> g_quarantine_warned{false};

}  // namespace

bool ResultCache::load(std::uint64_t key, ThroughputResult* out) const {
  std::ifstream in(cell_path(key));
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    const JsonValue root = parse_json(buffer.str());
    require(root.is_object(), "cache cell: not an object");
    const JsonValue& version = root.at("version");
    require(version.is_string() && version.text == kSolverVersionTag,
            "cache cell: solver version mismatch");
    const JsonValue& stored_key = root.at("key");
    require(stored_key.is_string() && stored_key.text == hash_hex(key),
            "cache cell: key mismatch");
    const ThroughputResult result = result_from_json(root.at("result"));
    // The checksum covers the canonical re-serialization of the parsed
    // result; shortest-round-trip numbers make that reproduce the stored
    // bytes exactly, so any corrupted digit fails here.
    const JsonValue& checksum = root.at("checksum");
    require(checksum.is_string() &&
                checksum.text == hash_hex(fnv1a64(result_json(result))),
            "cache cell: checksum mismatch");
    *out = result;
    return true;
  } catch (const Error&) {
    // Corrupt / truncated / foreign file: a miss — but not a silent one.
    // Left in place the bad file would be re-parsed and re-missed on
    // every warm run forever (store() only runs for cells the loader
    // missed, and rename would replace the file anyway — but a reader
    // between recompute and re-store would trip over it again).
    // Quarantine it: rename to `<cell>.json.corrupt` so the slot is
    // cleanly re-stored and the evidence survives for diagnosis. Racing
    // loaders may quarantine the same file; the losers' renames fail
    // silently (ec swallowed), which is fine.
    in.close();
    std::error_code ec;
    std::filesystem::rename(cell_path(key), cell_path(key) + ".corrupt", ec);
    if (!ec && !g_quarantine_warned.exchange(true)) {
      std::cerr << "warning: quarantined corrupt cache cell "
                << cell_path(key) << " (renamed to .corrupt; further "
                << "quarantines this run are silent)\n";
    }
    return false;  // recompute; the fresh store fills the slot
  }
}

void ResultCache::store(std::uint64_t key, const ThroughputResult& result)
    const {
  const std::string payload = result_json(result);
  std::ostringstream out;
  // Fault point (util/fault.h): under TOPOBENCH_FAULT=corrupt_store the
  // written result bytes are mangled while the checksum still covers the
  // clean payload, so the published file fails verification — the
  // deterministic way to drive the loader's quarantine path.
  out << "{\n  \"version\": " << json_string(kSolverVersionTag) << ",\n"
      << "  \"key\": " << json_string(hash_hex(key)) << ",\n"
      << "  \"result\": " << fault::maybe_corrupt_payload(payload) << ",\n"
      << "  \"checksum\": " << json_string(hash_hex(fnv1a64(payload)))
      << "\n}\n";
  // Unique temp per (process, thread) writer, then rename: concurrent
  // stores of the same key — duplicate axis values within a sweep, or
  // shard processes racing on a shared dir — each publish a complete
  // file, and the rename winner is a valid document either way.
  const std::string temp =
      cell_path(key) + ".tmp." +
      hash_hex(fnv1a64(
          std::to_string(static_cast<long long>(::getpid())) + "." +
          std::to_string(static_cast<std::uint64_t>(
              std::hash<std::thread::id>{}(std::this_thread::get_id())))));
  // Registered for unlink-on-signal (cleanup.h) for exactly the window
  // where the temp exists: a ^C between write and rename removes it
  // immediately instead of leaking it until a later cache open's stale
  // sweep ages it out.
  const int cleanup_slot = register_cleanup_path(temp);
  {
    std::ofstream file(temp);
    if (!file) {
      unregister_cleanup_path(cleanup_slot);
      require(false, "cannot write cache file: " + temp);
    }
    file << out.str();
  }
  std::error_code ec;
  std::filesystem::rename(temp, cell_path(key), ec);
  unregister_cleanup_path(cleanup_slot);
  if (ec) {
    // A shard's only output channel is the cache: a lost store is not an
    // error (the coordinator will recompute the cell) but it must not be
    // silent, or sharded runs would under-publish with no diagnostic.
    std::cerr << "warning: cache store failed for " << cell_path(key) << ": "
              << ec.message() << "\n";
    std::filesystem::remove(temp, ec);
  }
  // Fault point (util/fault.h): under crash_after_cells:M the M-th
  // completed store SIGKILLs the process right here — the published cell
  // survives, nothing after it does.
  fault::on_cell_stored();
}

}  // namespace topo::scenario
