#include "flow/bottleneck.h"

#include <algorithm>
#include <map>

#include "util/error.h"

namespace topo {

std::vector<ClassPairUtilization> utilization_by_class(
    const Graph& graph, const std::vector<int>& node_class,
    const ThroughputResult& result) {
  require(static_cast<int>(node_class.size()) == graph.num_nodes(),
          "node_class must cover every node");
  require(static_cast<int>(result.arc_flow.size()) == 2 * graph.num_edges(),
          "arc flows must match the graph");

  struct Accumulator {
    int links = 0;
    double utilization_sum = 0.0;
    double utilization_max = 0.0;
  };
  std::map<std::pair<int, int>, Accumulator> acc;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    int a = node_class[static_cast<std::size_t>(edge.u)];
    int b = node_class[static_cast<std::size_t>(edge.v)];
    require(a >= 0 && b >= 0, "class indices must be non-negative");
    if (a > b) std::swap(a, b);
    const double fwd =
        result.arc_flow[static_cast<std::size_t>(2 * e)] / edge.capacity;
    const double rev =
        result.arc_flow[static_cast<std::size_t>(2 * e + 1)] / edge.capacity;
    auto& entry = acc[{a, b}];
    ++entry.links;
    entry.utilization_sum += (fwd + rev) / 2.0;
    entry.utilization_max = std::max({entry.utilization_max, fwd, rev});
  }

  std::vector<ClassPairUtilization> out;
  out.reserve(acc.size());
  for (const auto& [key, entry] : acc) {
    ClassPairUtilization row;
    row.class_a = key.first;
    row.class_b = key.second;
    row.num_links = entry.links;
    row.mean_utilization = entry.utilization_sum / entry.links;
    row.max_utilization = entry.utilization_max;
    out.push_back(row);
  }
  return out;
}

std::vector<ClassPairUtilization> utilization_by_class(
    const BuiltTopology& topology, const ThroughputResult& result) {
  return utilization_by_class(topology.graph, topology.node_class, result);
}

std::string class_pair_label(const ClassPairUtilization& pair,
                             const std::vector<std::string>& class_names) {
  const auto name = [&](int c) {
    return c < static_cast<int>(class_names.size())
               ? class_names[static_cast<std::size_t>(c)]
               : "class" + std::to_string(c);
  };
  return name(pair.class_a) + "-" + name(pair.class_b);
}

}  // namespace topo
