// Maximum concurrent multi-commodity flow (throughput) solver.
//
// The paper defines throughput as the optimum of the max concurrent flow
// LP: the largest lambda such that lambda * d_i units can be routed
// simultaneously for every commodity i (fluid, splittable, optimally
// routed). The paper solves the LP with CPLEX; we use the
// Garg-Konemann/Fleischer multiplicative-weights scheme with an explicit
// primal-dual optimality certificate:
//
//  * primal: route every commodity's demand once per phase along
//    approximately-shortest paths under exponential arc lengths; after P
//    phases, scaling all flow by the worst congestion max_a x_a/c_a yields
//    a feasible concurrent flow of value P / scale;
//  * dual: for ANY arc lengths l, OPT <= sum_a c_a l_a / alpha(l) where
//    alpha(l) = sum_i d_i * dist_l(src_i, dst_i). We track the minimum over
//    phases, giving a certified upper bound.
//
// The solver iterates until primal >= (1 - epsilon) * dual (a certified
// (1-epsilon)-approximation) or the phase budget is exhausted; the achieved
// gap is reported either way. Commodities are grouped by source so each
// Dijkstra serves many commodities, and shortest-path trees are reused
// until their paths go stale — the two classic practical accelerations.
//
// The hot path runs on a flat CSR arc graph with pooled Dijkstra
// workspaces (src/graph/shortest_path.h): no per-call allocation, searches
// bounded by each group's destinations, and the dual-bound Dijkstras and
// the reachability pre-pass distributed over the shared thread pool
// (src/util/parallel.h). All reductions are ordered, so results are
// identical for any thread count — and agree with the original reference
// formulation's lambda/dual bound to 1e-9 on fixed seeds
// (bench/baseline_solver.cc + perf_microbench guard this; the only
// intended divergence is the in-loop overflow rescale, which the
// reference applied per group).
#ifndef TOPODESIGN_FLOW_CONCURRENT_FLOW_H
#define TOPODESIGN_FLOW_CONCURRENT_FLOW_H

#include <vector>

#include "graph/graph.h"
#include "traffic/traffic.h"

namespace topo {

/// How the solver runs its phases.
enum class SolverMode {
  /// The bit-exact reference path: serial phases, results frozen by the
  /// perf_microbench baseline guard and the golden tables. Default.
  kExact,
  /// The approximate fast path: warm-started per-group shortest-path
  /// trees carried across phases, source groups routed in deterministic
  /// batched rounds against a snapshot of the length function (parallel
  /// across the thread pool, applied in group order), and Dial-bucketed
  /// dual-bound Dijkstras while the length spread is narrow. Still a
  /// certified (1-epsilon)-approximation — the primal is feasible by
  /// construction and the dual bound holds for any lengths — but the
  /// phase trajectory differs from exact mode, so lambda may differ
  /// within the epsilon tolerance. Deterministic for any thread count.
  kApprox,
};

/// Options for the concurrent-flow solver.
struct FlowOptions {
  /// Target certified relative gap between primal and dual.
  double epsilon = 0.08;
  /// Hard cap on phases (each phase routes every commodity once).
  int max_phases = 3000;
  /// Stop early if the certified gap has not improved for this many phases.
  int stagnation_phases = 200;
  /// Recompute the dual bound every this many phases (it is valid for any
  /// lengths, so frequency affects only tightness/runtime).
  int dual_every = 1;
  /// Restrict every commodity to hop-shortest paths (the ECMP/K-shortest
  /// routing model of §8): flow from source s may only use arcs (u,v) with
  /// hop(s,v) == hop(s,u) + 1. The result (and its certificate) then refer
  /// to the optimum over shortest-path routing, not unrestricted routing.
  bool restrict_to_shortest_paths = false;
  /// Solver mode; kApprox is opt-in and changes cache cell identity (see
  /// scenario/cache.h, kSolverApproxVersionTag).
  SolverMode mode = SolverMode::kExact;
  /// Approx mode only: a group's cached tree path is re-routed when its
  /// current length exceeds this multiple of the cached tree distance.
  /// 0 (the default) means auto: 1 + epsilon/2. Because the cached
  /// distance lower-bounds the current shortest distance, the factor is a
  /// hard path-quality bound — keeping it near 1+epsilon makes the
  /// certificate converge in far fewer phases than exact mode's looser
  /// in-phase reuse (1.5), which is where most of the approx speedup
  /// comes from; factors much above 1+epsilon stall the certified gap.
  double approx_stale_factor = 0.0;
  /// Approx mode only: source groups routed concurrently per snapshot
  /// round. The round partition is fixed by this value alone, so results
  /// are identical for any thread count.
  int approx_round_size = 32;
};

/// Result of a throughput computation. All capacity-consumption metrics
/// (utilization, path lengths, stretch) refer to the scaled feasible flow.
struct ThroughputResult {
  /// Certified feasible throughput (the paper's T): every commodity ships
  /// lambda * demand concurrently within capacities.
  double lambda = 0.0;
  /// Certified upper bound on the optimal lambda.
  double dual_bound = 0.0;
  /// Achieved relative gap: 1 - lambda / dual_bound.
  double gap = 1.0;
  /// False when some commodity's endpoints are disconnected (lambda = 0).
  bool feasible = false;

  int phases = 0;

  /// U: fraction of total directed capacity carried by the scaled flow.
  double utilization = 0.0;
  /// Mean hops traversed per unit of delivered flow (flow-weighted).
  double mean_routed_path_length = 0.0;
  /// Demand-weighted mean shortest-path distance over commodities.
  double demand_weighted_spl = 0.0;
  /// Stretch AS = mean_routed_path_length / demand_weighted_spl (>= ~1).
  double stretch = 1.0;
  /// Total commodity demand (the f in the paper's T = C*U/(<D>*AS*f)).
  double total_demand = 0.0;

  /// Scaled feasible flow per directed arc: arc 2e is edge e's u->v
  /// direction, arc 2e+1 the reverse.
  std::vector<double> arc_flow;

  /// Packet-level co-simulation metrics (core/evaluate.h, packet_sim).
  /// The flow solver never touches these; they ride on the result as
  /// plain scalars so the experiment, sweep, and cache layers carry
  /// packet metrics through the same per-cell machinery as the fluid
  /// ones without depending on the simulator.
  bool packet_sim_run = false;          ///< True when the co-sim executed.
  double packet_mean_normalized = 0.0;  ///< Mean goodput / server rate.
  double packet_p05_normalized = 0.0;   ///< 5th pct goodput / server rate.
  double packet_min_normalized = 0.0;   ///< Worst flow goodput / rate.
  double packet_retransmits = 0.0;      ///< Total retransmitted segments.
  double packet_drops = 0.0;            ///< Total packets dropped.

  /// Finite-flow workload metrics (core/evaluate.h, packet_sim.fct):
  /// flow-completion-time percentiles and goodput from a Poisson arrival
  /// process of empirically sized flows. Same plain-scalar ride-along
  /// pattern as the packet_* block above.
  bool fct_run = false;        ///< True when the FCT workload executed.
  double fct_p50_ns = 0.0;     ///< Median flow-completion time (ns).
  double fct_p95_ns = 0.0;     ///< 95th-percentile FCT (ns).
  double fct_p99_ns = 0.0;     ///< 99th-percentile FCT (ns).
  double fct_mean_ns = 0.0;    ///< Mean FCT over completed flows (ns).
  double fct_goodput = 0.0;    ///< Aggregate goodput / total line rate.
  double fct_flows = 0.0;      ///< Flows that arrived in the horizon.
  double fct_completed = 0.0;  ///< Flows fully ACKed before the end.
  /// Per-flow slowdown percentiles: FCT / ideal FCT, where the ideal is
  /// the flow's serialized transmission time at server line rate.
  double fct_slowdown_p50 = 0.0;  ///< Median slowdown.
  double fct_slowdown_p99 = 0.0;  ///< 99th-percentile slowdown.
};

/// Computes the maximum concurrent flow for the commodities on `graph`.
/// Raises InvalidArgument for malformed commodities; disconnected
/// commodities yield feasible=false, lambda=0 rather than an exception.
[[nodiscard]] ThroughputResult max_concurrent_flow(
    const Graph& graph, const std::vector<Commodity>& commodities,
    const FlowOptions& options = {});

}  // namespace topo

#endif  // TOPODESIGN_FLOW_CONCURRENT_FLOW_H
