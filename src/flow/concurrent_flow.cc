#include "flow/concurrent_flow.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "graph/algorithms.h"
#include "graph/shortest_path.h"
#include "util/error.h"
#include "util/parallel.h"

namespace topo {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Commodities grouped by source, flattened into parallel arrays so the
// phase loop walks contiguous memory: group g's destinations/demands are
// the slice [groups[g].begin, groups[g].end) of dsts/demands.
struct GroupedCommodities {
  struct Group {
    NodeId src = 0;
    int begin = 0;
    int end = 0;
  };
  std::vector<Group> groups;
  std::vector<NodeId> dsts;
  std::vector<double> demands;
};

GroupedCommodities group_by_source(const std::vector<Commodity>& commodities) {
  // Stable sort by source: groups ordered by source id, commodities inside
  // a group in input order — the same iteration order as the std::map of
  // per-source vectors this replaces.
  std::vector<int> order(commodities.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return commodities[static_cast<std::size_t>(a)].src <
           commodities[static_cast<std::size_t>(b)].src;
  });
  GroupedCommodities grouped;
  grouped.dsts.reserve(commodities.size());
  grouped.demands.reserve(commodities.size());
  for (int idx : order) {
    const Commodity& c = commodities[static_cast<std::size_t>(idx)];
    if (grouped.groups.empty() || grouped.groups.back().src != c.src) {
      grouped.groups.push_back(
          {c.src, static_cast<int>(grouped.dsts.size()), 0});
    }
    grouped.dsts.push_back(c.dst);
    grouped.demands.push_back(c.demand);
    grouped.groups.back().end = static_cast<int>(grouped.dsts.size());
  }
  return grouped;
}

// Shared congestion scan (the primal certificate and the final feasibility
// scaling both divide by the same worst congestion; sharing the scan keeps
// them from drifting). After `routings` full routings of the demand the
// feasible concurrent-flow value is routings / max_a flow_a / cap_a; when
// `scale_to_feasible` is set, arc_flow is rescaled in place so it carries
// lambda * demand exactly once.
double feasible_lambda(const ArcGraph& arcs, std::vector<double>& arc_flow,
                       int routings, bool scale_to_feasible) {
  double congestion = 0.0;
  for (int a = 0; a < arcs.num_arcs; ++a) {
    congestion = std::max(congestion,
                          arc_flow[static_cast<std::size_t>(a)] /
                              arcs.capacity[static_cast<std::size_t>(a)]);
  }
  if (congestion <= 0.0) return 0.0;
  const double lambda = static_cast<double>(routings) / congestion;
  if (scale_to_feasible) {
    const double scale = lambda / static_cast<double>(std::max(routings, 1));
    for (double& f : arc_flow) f *= scale;
  }
  return lambda;
}

}  // namespace

ThroughputResult max_concurrent_flow(const Graph& graph,
                                     const std::vector<Commodity>& commodities,
                                     const FlowOptions& options) {
  require(!commodities.empty(), "max_concurrent_flow requires commodities");
  require(options.epsilon > 0.0 && options.epsilon < 1.0,
          "epsilon must lie in (0, 1)");
  require(options.max_phases >= 1, "max_phases must be >= 1");

  ThroughputResult result;
  result.arc_flow.assign(static_cast<std::size_t>(2 * graph.num_edges()), 0.0);

  double total_demand = 0.0;
  for (const Commodity& c : commodities) {
    require(c.src >= 0 && c.src < graph.num_nodes() && c.dst >= 0 &&
                c.dst < graph.num_nodes(),
            "commodity endpoint out of range");
    require(c.src != c.dst, "commodity endpoints must differ");
    require(c.demand > 0.0, "commodity demand must be positive");
    total_demand += c.demand;
  }
  result.total_demand = total_demand;

  if (graph.num_edges() == 0) return result;  // no network: infeasible
  const ArcGraph arcs(graph);
  const GroupedCommodities grouped = group_by_source(commodities);
  const int num_groups = static_cast<int>(grouped.groups.size());

  // Reachability pre-pass (hop-based), one BFS per source group, run in
  // parallel: any unreachable commodity means throughput zero. The hop
  // maps double as the shortest-path DAGs when routing is restricted to
  // shortest paths.
  std::vector<std::vector<int>> hops_per_group(
      static_cast<std::size_t>(num_groups));
  std::vector<char> group_reachable(static_cast<std::size_t>(num_groups), 1);
  {
    std::vector<BfsWorkspace> bfs_ws(
        static_cast<std::size_t>(parallel_slots()));
    parallel_for_slots(num_groups, [&](int slot, int gi) {
      const auto& group = grouped.groups[static_cast<std::size_t>(gi)];
      BfsWorkspace& ws = bfs_ws[static_cast<std::size_t>(slot)];
      ws.run(graph, group.src);
      for (int i = group.begin; i < group.end; ++i) {
        if (ws.dist(grouped.dsts[static_cast<std::size_t>(i)]) < 0) {
          group_reachable[static_cast<std::size_t>(gi)] = 0;
          return;
        }
      }
      if (options.restrict_to_shortest_paths) {
        ws.export_distances(hops_per_group[static_cast<std::size_t>(gi)]);
      }
    });
  }
  for (char reachable : group_reachable) {
    if (!reachable) return result;
  }
  const auto dag_for = [&](int gi) -> const std::vector<int>* {
    if (!options.restrict_to_shortest_paths) return nullptr;
    return &hops_per_group[static_cast<std::size_t>(gi)];
  };

  // Demand-weighted shortest-path length (hops) for the stretch metric.
  {
    std::vector<std::pair<NodeId, NodeId>> pairs;
    std::vector<double> weights;
    for (const Commodity& c : commodities) {
      pairs.emplace_back(c.src, c.dst);
      weights.push_back(c.demand);
    }
    result.demand_weighted_spl = mean_pair_distance(graph, pairs, &weights);
  }

  // Exponential arc lengths, initialized inversely to capacity. Lengths
  // only grow inside a phase, so a running maximum is enough to catch the
  // overflow guard without rescanning all arcs. slot_length mirrors
  // `length` in CSR-slot order so the Dijkstra relaxation loop reads one
  // sequential stream; every update below writes both.
  std::vector<double> length(static_cast<std::size_t>(arcs.num_arcs));
  double max_length = 0.0;
  for (int a = 0; a < arcs.num_arcs; ++a) {
    length[static_cast<std::size_t>(a)] =
        1.0 / arcs.capacity[static_cast<std::size_t>(a)];
    max_length = std::max(max_length, length[static_cast<std::size_t>(a)]);
  }
  std::vector<double> slot_length;
  fill_slot_lengths(arcs, length, slot_length);
  const double step = options.epsilon / 2.0;  // length-update granularity
  const double stale_factor = 1.5;            // tree reuse tolerance

  DijkstraWorkspace routing_ws;
  std::vector<DijkstraWorkspace> dual_ws(
      static_cast<std::size_t>(parallel_slots()));
  std::vector<double> dual_terms(commodities.size());

  double best_dual = kInf;
  double last_primal = 0.0;
  double best_gap = 1.0;
  int phases_since_improvement = 0;
  std::vector<int> path;

  // ---- Approx-mode state (SolverMode::kApprox only; empty otherwise) ----
  //
  // Phases route source groups in fixed-size rounds. Within a round every
  // group sees the same snapshot of the length function (the global
  // `length`/`slot_length` arrays, which are not mutated during a round)
  // plus its own pushes, staged in a per-slot overlay and recorded as
  // (arc, pushed) entries. After the round the overlays are reverted and
  // the entries applied serially in group order — so the merged lengths,
  // flows, and overflow rescales are identical for any thread count, the
  // same discipline as the dual pass below. Each group additionally keeps
  // its shortest-path tree across phases (warm start) and only re-runs
  // Dijkstra when the cached tree goes stale or misses a destination.
  const bool approx = options.mode == SolverMode::kApprox;
  const double approx_stale = options.approx_stale_factor > 0.0
                                  ? options.approx_stale_factor
                                  : 1.0 + options.epsilon / 2.0;
  if (approx) {
    require(approx_stale >= 1.0, "approx_stale_factor must be >= 1");
    require(options.approx_round_size >= 1, "approx_round_size must be >= 1");
  }
  const int num_slots = parallel_slots();
  // Warm per-group trees cost O(nodes) each; past this many total label
  // entries fall back to per-slot workspaces rebuilt on first use.
  const bool warm_trees =
      approx && static_cast<double>(num_groups) *
                        static_cast<double>(arcs.num_nodes) <=
                    5e7;
  std::vector<DijkstraWorkspace> group_ws(
      warm_trees ? static_cast<std::size_t>(num_groups) : 0);
  std::vector<DijkstraWorkspace> slot_routing_ws(
      approx && !warm_trees ? static_cast<std::size_t>(num_slots) : 0);
  std::vector<char> group_has_tree(
      warm_trees ? static_cast<std::size_t>(num_groups) : 0, 0);
  std::vector<int> group_epoch(
      warm_trees ? static_cast<std::size_t>(num_groups) : 0, 0);
  int rescale_epoch = 0;  // bumped by the overflow guard; trees sync lazily
  std::vector<std::vector<std::pair<int, double>>> group_entries(
      approx ? static_cast<std::size_t>(num_groups) : 0);
  std::vector<std::vector<double>> slot_local_len(
      approx ? static_cast<std::size_t>(num_slots) : 0);
  std::vector<std::vector<double>> slot_local_slot_len(
      approx ? static_cast<std::size_t>(num_slots) : 0);
  std::vector<std::vector<int>> slot_path(
      approx ? static_cast<std::size_t>(num_slots) : 0);
  std::vector<long> slot_round_stamp(
      approx ? static_cast<std::size_t>(num_slots) : 0, -1);
  long round_counter = 0;
  std::atomic<bool> routing_failed{false};

  const auto route_group_approx = [&](int slot, int gi) {
    const auto ss = static_cast<std::size_t>(slot);
    const auto gs = static_cast<std::size_t>(gi);
    const auto& group = grouped.groups[gs];
    std::vector<double>& local_len = slot_local_len[ss];
    std::vector<double>& local_slot_len = slot_local_slot_len[ss];
    auto& entries = group_entries[gs];
    std::vector<int>& gpath = slot_path[ss];
    DijkstraWorkspace& ws = warm_trees ? group_ws[gs] : slot_routing_ws[ss];
    bool has_tree = warm_trees && group_has_tree[gs] != 0;
    // A cached tree's distances are sums of pre-rescale lengths; bring
    // them into the current scale before comparing against fresh sums.
    if (has_tree && group_epoch[gs] != rescale_epoch) {
      double factor = 1.0;
      for (int e = group_epoch[gs]; e < rescale_epoch; ++e) factor *= 1e-150;
      ws.scale_distances(factor);
    }
    if (warm_trees) group_epoch[gs] = rescale_epoch;
    const auto refresh = [&](int from) {
      ws.run_slots(arcs, local_slot_len.data(), group.src, dag_for(gi),
                   grouped.dsts.data() + from, group.end - from);
      has_tree = true;
      if (warm_trees) group_has_tree[gs] = 1;
    };
    for (int i = group.begin; i < group.end; ++i) {
      const NodeId dst = grouped.dsts[static_cast<std::size_t>(i)];
      const double demand = grouped.demands[static_cast<std::size_t>(i)];
      double remaining = demand;
      const double tol = 1e-12 * demand;
      bool path_valid = false;
      double bottleneck = kInf;
      while (remaining > tol) {
        // A warm tree from an earlier bounded run may simply not have
        // finalized this destination; that means refresh, not infeasible.
        if (!has_tree || ws.dist(dst) == kInf) {
          refresh(i);
          path_valid = false;
        }
        if (!path_valid) {
          if (!ws.extract_path(arcs, group.src, dst, gpath)) {
            refresh(i);
            if (!ws.extract_path(arcs, group.src, dst, gpath)) {
              routing_failed.store(true, std::memory_order_relaxed);
              return;  // should not happen after the pre-check
            }
          }
          bottleneck = kInf;
          for (int a : gpath) {
            bottleneck =
                std::min(bottleneck, arcs.capacity[static_cast<std::size_t>(a)]);
          }
          path_valid = true;
        }
        // Staleness: the tree distance lower-bounds the current shortest
        // distance (lengths only grow), so this keeps routing
        // near-shortest even against a tree from an earlier phase.
        double current_len = 0.0;
        for (int a : gpath) {
          current_len += local_len[static_cast<std::size_t>(a)];
        }
        if (current_len > approx_stale * ws.dist(dst)) {
          refresh(i);
          path_valid = false;
          continue;
        }
        const double pushed = std::min(remaining, bottleneck);
        for (int a : gpath) {
          entries.emplace_back(a, pushed);
          double& len = local_len[static_cast<std::size_t>(a)];
          len *=
              1.0 + step * pushed / arcs.capacity[static_cast<std::size_t>(a)];
          local_slot_len[static_cast<std::size_t>(
              arcs.slot_of_arc[static_cast<std::size_t>(a)])] = len;
        }
        remaining -= pushed;
      }
    }
    // Revert the overlay to the round snapshot (the globals are immutable
    // during a round), leaving it clean for the slot's next group.
    for (const auto& entry : entries) {
      const auto a = static_cast<std::size_t>(entry.first);
      local_len[a] = length[a];
      local_slot_len[static_cast<std::size_t>(arcs.slot_of_arc[a])] =
          slot_length[static_cast<std::size_t>(arcs.slot_of_arc[a])];
    }
  };

  // Approx mode halves the dual-bound cadence: the bound is valid for any
  // lengths, so this trades only certificate tightness for time.
  const int dual_cadence =
      approx ? std::max(options.dual_every, 2) : options.dual_every;

  int phase = 0;
  for (; phase < options.max_phases; ++phase) {
    if (approx) {
      for (int round_begin = 0; round_begin < num_groups;
           round_begin += options.approx_round_size) {
        const int round_end =
            std::min(num_groups, round_begin + options.approx_round_size);
        const long round_id = round_counter++;
        parallel_for_slots(round_end - round_begin, [&](int slot, int idx) {
          const auto ss = static_cast<std::size_t>(slot);
          if (slot_round_stamp[ss] != round_id) {
            slot_local_len[ss] = length;  // this round's snapshot
            slot_local_slot_len[ss] = slot_length;
            slot_round_stamp[ss] = round_id;
          }
          route_group_approx(slot, round_begin + idx);
        });
        if (routing_failed.load(std::memory_order_relaxed)) return result;
        // Serial merge in group order: flows, multiplicative length
        // updates, and the overflow guard all replay deterministically.
        for (int gi = round_begin; gi < round_end; ++gi) {
          auto& entries = group_entries[static_cast<std::size_t>(gi)];
          for (const auto& [a, pushed] : entries) {
            const auto as = static_cast<std::size_t>(a);
            result.arc_flow[as] += pushed;
            double& len = length[as];
            len *= 1.0 + step * pushed / arcs.capacity[as];
            slot_length[static_cast<std::size_t>(arcs.slot_of_arc[as])] = len;
            max_length = std::max(max_length, len);
            if (max_length > 1e200) {
              for (double& l : length) l *= 1e-150;
              for (double& l : slot_length) l *= 1e-150;
              ++rescale_epoch;
              max_length *= 1e-150;
            }
          }
          entries.clear();
        }
      }
    } else {
      for (int gi = 0; gi < num_groups; ++gi) {
        const auto& group = grouped.groups[static_cast<std::size_t>(gi)];
        // Each Dijkstra is bounded by the destinations it still has to
        // serve: the initial tree by the whole group, a mid-group refresh
        // only by the remaining slice.
        routing_ws.run_slots(arcs, slot_length.data(), group.src, dag_for(gi),
                             grouped.dsts.data() + group.begin,
                             group.end - group.begin);
        for (int i = group.begin; i < group.end; ++i) {
          const NodeId dst = grouped.dsts[static_cast<std::size_t>(i)];
          const double demand = grouped.demands[static_cast<std::size_t>(i)];
          double remaining = demand;
          const double tol = 1e-12 * demand;
          // The tree only changes on refresh, so the path and its (static)
          // bottleneck capacity are cached across saturation steps; only
          // the path's current length must be re-summed after each push.
          bool path_valid = false;
          double bottleneck = kInf;
          while (remaining > tol) {
            if (!path_valid) {
              if (!routing_ws.extract_path(arcs, group.src, dst, path)) {
                return result;  // should not happen after the pre-check
              }
              bottleneck = kInf;
              for (int a : path) {
                bottleneck = std::min(
                    bottleneck, arcs.capacity[static_cast<std::size_t>(a)]);
              }
              path_valid = true;
            }
            // Refresh the tree when this path's current length has drifted
            // well above the tree's distance (lengths rose since computing
            // it), so routing stays near-shortest.
            double current_len = 0.0;
            for (int a : path) {
              current_len += length[static_cast<std::size_t>(a)];
            }
            if (current_len > stale_factor * routing_ws.dist(dst)) {
              routing_ws.run_slots(arcs, slot_length.data(), group.src,
                                   dag_for(gi), grouped.dsts.data() + i,
                                   group.end - i);
              path_valid = false;
              continue;
            }
            const double pushed = std::min(remaining, bottleneck);
            for (int a : path) {
              result.arc_flow[static_cast<std::size_t>(a)] += pushed;
              double& len = length[static_cast<std::size_t>(a)];
              len *= 1.0 +
                     step * pushed / arcs.capacity[static_cast<std::size_t>(a)];
              slot_length[static_cast<std::size_t>(
                  arcs.slot_of_arc[static_cast<std::size_t>(a)])] = len;
              max_length = std::max(max_length, len);
            }
            // Overflow guard, applied inside the routing loop so a long
            // source group cannot drive lengths to infinity mid-group. The
            // cached tree distances are sums of the same lengths, so they
            // rescale by the same factor and the staleness ratio above stays
            // meaningful.
            if (max_length > 1e200) {
              for (double& l : length) l *= 1e-150;
              for (double& l : slot_length) l *= 1e-150;
              routing_ws.scale_distances(1e-150);
              max_length *= 1e-150;
            }
            remaining -= pushed;
          }
        }
      }
    }

    // Primal value: every commodity has been routed (phase+1) times its
    // demand; scaling by the worst congestion yields feasibility.
    // Primal is not tracked as a running max: feasibility scaling below
    // pairs the final flows with the final phase count, so the reported
    // lambda must be the final primal value (monotone in practice).
    last_primal = feasible_lambda(arcs, result.arc_flow, phase + 1,
                                  /*scale_to_feasible=*/false);

    // Dual bound D(l)/alpha(l), valid for any lengths. The per-group
    // Dijkstras are independent, so they run on the pool; each commodity's
    // term lands in dual_terms and the sum is taken serially in group
    // order, keeping the result identical for any thread count. Approx
    // mode relaxes through Dial buckets while the length spread is still
    // narrow (run_distances_bucketed falls back to the heap itself once
    // the spread is too wide to bucket).
    if (phase % dual_cadence == 0 || phase + 1 == options.max_phases) {
      double d_l = 0.0;
      for (int a = 0; a < arcs.num_arcs; ++a) {
        d_l += length[static_cast<std::size_t>(a)] *
               arcs.capacity[static_cast<std::size_t>(a)];
      }
      double min_len = kInf;
      double max_len = 0.0;
      if (approx) {
        for (double l : slot_length) {
          min_len = std::min(min_len, l);
          max_len = std::max(max_len, l);
        }
      }
      parallel_for_slots(num_groups, [&](int slot, int gi) {
        const auto& group = grouped.groups[static_cast<std::size_t>(gi)];
        DijkstraWorkspace& ws = dual_ws[static_cast<std::size_t>(slot)];
        if (approx) {
          ws.run_distances_bucketed(arcs, slot_length.data(), group.src,
                                    min_len, max_len, dag_for(gi),
                                    grouped.dsts.data() + group.begin,
                                    group.end - group.begin);
        } else {
          ws.run_distances(arcs, slot_length.data(), group.src, dag_for(gi),
                           grouped.dsts.data() + group.begin,
                           group.end - group.begin);
        }
        for (int i = group.begin; i < group.end; ++i) {
          dual_terms[static_cast<std::size_t>(i)] =
              grouped.demands[static_cast<std::size_t>(i)] *
              ws.dist(grouped.dsts[static_cast<std::size_t>(i)]);
        }
      });
      double alpha = 0.0;
      for (double term : dual_terms) alpha += term;
      if (alpha > 0.0) best_dual = std::min(best_dual, d_l / alpha);
    }

    const double gap = best_dual > 0.0 && best_dual < kInf
                           ? 1.0 - last_primal / best_dual
                           : 1.0;
    if (gap < best_gap - 1e-6) {
      best_gap = gap;
      phases_since_improvement = 0;
    } else {
      ++phases_since_improvement;
    }
    if (gap <= options.epsilon) {
      ++phase;
      break;
    }
    if (phases_since_improvement >= options.stagnation_phases) {
      ++phase;
      break;
    }
  }

  result.phases = phase;
  result.feasible = true;
  // Scale flows to the feasible solution and derive the decomposition
  // metrics (utilization, routed path length, stretch).
  result.lambda = feasible_lambda(arcs, result.arc_flow, result.phases,
                                  /*scale_to_feasible=*/true);
  result.dual_bound = best_dual == kInf ? result.lambda : best_dual;
  result.gap = result.dual_bound > 0.0
                   ? std::max(0.0, 1.0 - result.lambda / result.dual_bound)
                   : 0.0;
  if (result.lambda > 0.0) {
    double total_flow_hops = 0.0;
    for (int a = 0; a < arcs.num_arcs; ++a) {
      total_flow_hops += result.arc_flow[static_cast<std::size_t>(a)];
    }
    const double delivered = result.lambda * total_demand;
    result.utilization = total_flow_hops / graph.total_directed_capacity();
    result.mean_routed_path_length =
        delivered > 0.0 ? total_flow_hops / delivered : 0.0;
    result.stretch = result.demand_weighted_spl > 0.0
                         ? result.mean_routed_path_length /
                               result.demand_weighted_spl
                         : 1.0;
  }
  return result;
}

}  // namespace topo
