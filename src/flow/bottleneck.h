// Link-class utilization breakdown (§6.1 of the paper).
//
// The paper explains its throughput results by averaging link utilization
// per link type (large-large, large-small, small-small, ...) and watching
// where the saturated bottlenecks sit. This module classifies each
// undirected edge by the classes of its endpoints and aggregates the
// scaled per-arc flows of a ThroughputResult.
#ifndef TOPODESIGN_FLOW_BOTTLENECK_H
#define TOPODESIGN_FLOW_BOTTLENECK_H

#include <string>
#include <vector>

#include "flow/concurrent_flow.h"
#include "topo/topology.h"

namespace topo {

/// Mean utilization of the links joining two node classes.
struct ClassPairUtilization {
  int class_a = 0;  ///< Lower class index of the pair.
  int class_b = 0;  ///< Higher class index.
  int num_links = 0;
  double mean_utilization = 0.0;  ///< Average over both directions.
  double max_utilization = 0.0;
};

/// Aggregates the scaled arc flows by endpoint-class pair. `node_class`
/// must cover every node; class indices must be non-negative.
[[nodiscard]] std::vector<ClassPairUtilization> utilization_by_class(
    const Graph& graph, const std::vector<int>& node_class,
    const ThroughputResult& result);

/// Convenience overload using a BuiltTopology's classes.
[[nodiscard]] std::vector<ClassPairUtilization> utilization_by_class(
    const BuiltTopology& topology, const ThroughputResult& result);

/// Human-readable label like "large-small" for a class pair.
[[nodiscard]] std::string class_pair_label(
    const ClassPairUtilization& pair,
    const std::vector<std::string>& class_names);

}  // namespace topo

#endif  // TOPODESIGN_FLOW_BOTTLENECK_H
