// Two-type heterogeneous random topologies (§5 of the paper).
//
// A pool of "large" and "small" switches (different port counts, optionally
// different attached-server counts and an extra high-line-speed overlay on
// the large switches) wired as a two-cluster random graph with a chosen
// amount of cross-type connectivity.
#ifndef TOPODESIGN_TOPO_HET_RANDOM_H
#define TOPODESIGN_TOPO_HET_RANDOM_H

#include <cstdint>

#include "topo/topology.h"

namespace topo {

/// Node classes produced by build_two_type.
enum class TwoTypeClass : int { kLarge = 0, kSmall = 1 };

/// Specification of a two-type heterogeneous network.
struct TwoTypeSpec {
  int num_large = 0;
  int num_small = 0;
  int large_ports = 0;  ///< Total (low-speed) ports per large switch.
  int small_ports = 0;  ///< Total ports per small switch.
  int servers_per_large = 0;
  int servers_per_small = 0;
  /// Cross-type links as a multiple of the expected count under uniform
  /// random wiring (the paper's x-axis). 1.0 = vanilla random graph.
  double cross_fraction = 1.0;
  /// Extra high-line-speed links per large switch, wired only among large
  /// switches (Fig 8). 0 disables the overlay.
  int hs_links_per_large = 0;
  double hs_speed = 10.0;  ///< Capacity of each overlay link.
  bool ensure_connected = true;
};

/// Builds the heterogeneous topology. Network degree of each switch is its
/// port count minus its server count (both must be feasible). Classes:
/// large switches first (ids [0, num_large)), then small.
[[nodiscard]] BuiltTopology build_two_type(const TwoTypeSpec& spec,
                                           std::uint64_t seed);

/// Expected cross-type link count under uniform random wiring for `spec`
/// (after server attachment, excluding any high-speed overlay).
[[nodiscard]] double two_type_expected_cross(const TwoTypeSpec& spec);

/// The paper's Fig-4 x-axis: ratio of servers-per-large-switch to the
/// count expected if servers were spread over ports uniformly at random.
[[nodiscard]] double server_placement_ratio(const TwoTypeSpec& spec);

/// Splits `total_servers` between large/small switches such that the
/// large switches get `ratio` times their proportional share; returns a
/// spec with servers_per_large / servers_per_small filled in (rounded,
/// preserving the total as closely as switch granularity allows).
[[nodiscard]] TwoTypeSpec with_server_split(TwoTypeSpec spec,
                                            int total_servers, double ratio);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_HET_RANDOM_H
