// Random regular graphs — the paper's near-optimal homogeneous topology.
//
// RRG(N, k, r) in the paper's notation: N switches of k ports each, r of
// which face the network; we generate the r-regular random switch graph and
// attach (k - r) servers per switch.
#ifndef TOPODESIGN_TOPO_RANDOM_REGULAR_H
#define TOPODESIGN_TOPO_RANDOM_REGULAR_H

#include <cstdint>

#include "topo/topology.h"

namespace topo {

/// Connected simple random r-regular graph on n nodes (unit capacities).
/// Requires 0 <= r < n and even n*r. Falls back to a multigraph only if a
/// simple realization resists repair (practically never for r >= 3).
[[nodiscard]] Graph random_regular_graph(int n, int r, std::uint64_t seed);

/// Full RRG topology: n switches with k ports, r network-facing, so each
/// switch hosts (k - r) servers. Mirrors the paper's RRG(N, k, r).
[[nodiscard]] BuiltTopology random_regular_topology(int n, int k, int r,
                                                    std::uint64_t seed);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_RANDOM_REGULAR_H
