// Common types for generated topologies.
//
// A topology is a switch-level Graph plus a ServerMap saying how many
// servers attach to each switch. Node classes (ToR / aggregation / core,
// or large / small) are carried along for link-classification in the
// bottleneck analysis of §6.1.
#ifndef TOPODESIGN_TOPO_TOPOLOGY_H
#define TOPODESIGN_TOPO_TOPOLOGY_H

#include <numeric>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace topo {

/// Servers attached to each switch.
struct ServerMap {
  std::vector<int> per_switch;

  [[nodiscard]] int total() const {
    return std::accumulate(per_switch.begin(), per_switch.end(), 0);
  }

  [[nodiscard]] int num_switches() const {
    return static_cast<int>(per_switch.size());
  }

  /// Home switch of every server; server ids are assigned contiguously
  /// switch by switch (servers of switch 0 first, then switch 1, ...).
  [[nodiscard]] std::vector<NodeId> server_home() const {
    std::vector<NodeId> home;
    home.reserve(static_cast<std::size_t>(total()));
    for (NodeId sw = 0; sw < num_switches(); ++sw) {
      for (int i = 0; i < per_switch[static_cast<std::size_t>(sw)]; ++i) {
        home.push_back(sw);
      }
    }
    return home;
  }
};

/// A generated switch-level topology with server attachments.
struct BuiltTopology {
  Graph graph{0};
  ServerMap servers;
  /// Class index per switch (semantics defined by the generator).
  std::vector<int> node_class;
  /// Human-readable name per class index.
  std::vector<std::string> class_names;

  [[nodiscard]] int class_of(NodeId n) const {
    return node_class.empty() ? 0 : node_class[static_cast<std::size_t>(n)];
  }
};

}  // namespace topo

#endif  // TOPODESIGN_TOPO_TOPOLOGY_H
