#include "topo/expansion.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace topo {
namespace {

// Rebuilds the graph without the edges marked dead, with room for the new
// node, returning the surviving edges. Graph has no edge removal by
// design (solvers index edges densely), so expansion rebuilds.
Graph rebuild_without(const Graph& g, const std::vector<char>& dead,
                      int extra_nodes) {
  Graph out(g.num_nodes() + extra_nodes);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!dead[static_cast<std::size_t>(e)]) {
      out.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).capacity);
    }
  }
  return out;
}

}  // namespace

NodeId splice_switch(BuiltTopology& topology, int network_ports, int servers,
                     std::uint64_t seed, int node_class) {
  require(network_ports >= 2, "splicing requires at least two network ports");
  require(servers >= 0, "servers must be non-negative");
  const Graph& g = topology.graph;
  const int splice_count = network_ports / 2;
  require(g.num_edges() >= splice_count,
          "not enough existing links to splice into");

  Rng rng(seed);
  // Choose distinct links to break, preferring links whose endpoints are
  // not already neighbors of earlier choices (keeps the graph simple).
  std::vector<EdgeId> candidates(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    candidates[static_cast<std::size_t>(e)] = e;
  }
  rng.shuffle(candidates);

  std::vector<char> dead(static_cast<std::size_t>(g.num_edges()), 0);
  std::vector<char> adjacent_to_new(static_cast<std::size_t>(g.num_nodes()), 0);
  std::vector<EdgeId> chosen;
  for (EdgeId e : candidates) {
    if (static_cast<int>(chosen.size()) == splice_count) break;
    const Edge& edge = g.edge(e);
    if (adjacent_to_new[static_cast<std::size_t>(edge.u)] ||
        adjacent_to_new[static_cast<std::size_t>(edge.v)]) {
      continue;  // would create a parallel edge to the new switch
    }
    chosen.push_back(e);
    dead[static_cast<std::size_t>(e)] = 1;
    adjacent_to_new[static_cast<std::size_t>(edge.u)] = 1;
    adjacent_to_new[static_cast<std::size_t>(edge.v)] = 1;
  }
  // Fall back to allowing parallel edges if the graph is too small to
  // avoid them (still correct, just a multigraph).
  for (EdgeId e : candidates) {
    if (static_cast<int>(chosen.size()) == splice_count) break;
    if (!dead[static_cast<std::size_t>(e)]) {
      chosen.push_back(e);
      dead[static_cast<std::size_t>(e)] = 1;
    }
  }
  require(static_cast<int>(chosen.size()) == splice_count,
          "could not select links to splice");

  Graph grown = rebuild_without(g, dead, 1);
  const NodeId fresh = grown.num_nodes() - 1;
  for (EdgeId e : chosen) {
    const Edge& edge = g.edge(e);
    grown.add_edge(edge.u, fresh, edge.capacity);
    grown.add_edge(fresh, edge.v, edge.capacity);
  }
  topology.graph = std::move(grown);
  topology.servers.per_switch.push_back(servers);
  if (!topology.node_class.empty()) {
    topology.node_class.push_back(node_class);
  }
  return fresh;
}

void expand_topology(BuiltTopology& topology, int count, int network_ports,
                     int servers, std::uint64_t seed, int node_class) {
  require(count >= 0, "count must be non-negative");
  for (int i = 0; i < count; ++i) {
    splice_switch(topology, network_ports, servers,
                  Rng::derive_seed(seed, static_cast<std::uint64_t>(i)),
                  node_class);
  }
}

}  // namespace topo
