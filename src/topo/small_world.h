// Small-world data center topology (Shin, Wong, Sirer — SWDC, SOCC 2011).
//
// One of the "flat" designs the paper compares against conceptually: a
// ring lattice (each switch linked to its nearest neighbors) plus random
// long-range shortcuts. Included as a baseline for the homogeneous
// comparison benches and the topology-zoo example.
#ifndef TOPODESIGN_TOPO_SMALL_WORLD_H
#define TOPODESIGN_TOPO_SMALL_WORLD_H

#include <cstdint>

#include "topo/topology.h"

namespace topo {

/// Builds a small-world network: `n` switches on a ring, each connected to
/// its `lattice_degree` nearest neighbors (must be even), plus
/// `shortcut_degree` random long-range links per switch (must make
/// n * shortcut_degree even). Total network degree is lattice_degree +
/// shortcut_degree; `servers_per_switch` servers attach to every switch.
[[nodiscard]] BuiltTopology small_world_topology(int n, int lattice_degree,
                                                 int shortcut_degree,
                                                 int servers_per_switch,
                                                 std::uint64_t seed);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_SMALL_WORLD_H
