#include "topo/vl2.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/algorithms.h"
#include "topo/degree_sequence.h"
#include "util/error.h"
#include "util/rng.h"

namespace topo {
namespace {

void validate(const Vl2Params& p) {
  require(p.d_a >= 2 && p.d_a % 2 == 0, "VL2 requires even d_a >= 2");
  require(p.d_i >= 2, "VL2 requires d_i >= 2");
  require((p.d_a * p.d_i) % 4 == 0, "VL2 requires d_a * d_i divisible by 4");
  require(p.servers_per_tor >= 1, "VL2 requires servers on ToRs");
  require(p.uplink_speed > 0.0, "uplink speed must be positive");
}

// Largest-remainder apportionment of `total` items proportional to
// `weights`, capped per entry; returns counts summing to `total`.
std::vector<int> apportion(const std::vector<int>& weights, int total,
                           const std::vector<int>& caps) {
  const std::size_t n = weights.size();
  const double weight_sum =
      static_cast<double>(std::accumulate(weights.begin(), weights.end(), 0LL));
  std::vector<int> counts(n, 0);
  std::vector<std::pair<double, std::size_t>> remainder(n);
  int assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ideal = total * weights[i] / weight_sum;
    counts[i] = std::min(static_cast<int>(ideal), caps[i]);
    assigned += counts[i];
    remainder[i] = {ideal - counts[i], i};
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  int deficit = total - assigned;
  while (deficit > 0) {
    bool progressed = false;
    for (const auto& [frac, i] : remainder) {
      if (deficit == 0) break;
      if (counts[i] < caps[i]) {
        ++counts[i];
        --deficit;
        progressed = true;
      }
    }
    require(progressed, "apportion: caps too tight for requested total");
  }
  return counts;
}

}  // namespace

int vl2_nominal_tors(const Vl2Params& params) {
  validate(params);
  return params.d_a * params.d_i / 4;
}

BuiltTopology vl2_topology(const Vl2Params& params) {
  validate(params);
  const int num_tor = vl2_nominal_tors(params);
  const int num_agg = params.d_i;
  const int num_core = params.d_a / 2;
  const int total = num_tor + num_agg + num_core;

  BuiltTopology t;
  t.graph = Graph(total);
  const auto agg_id = [&](int a) { return num_tor + a; };
  const auto core_id = [&](int c) { return num_tor + num_agg + c; };

  // Each ToR has two 10G uplinks to two different aggregation switches,
  // assigned round-robin so every aggregation switch receives exactly
  // d_a/2 ToR-facing links.
  for (int tor = 0; tor < num_tor; ++tor) {
    const int a1 = (2 * tor) % num_agg;
    const int a2 = (2 * tor + 1) % num_agg;
    t.graph.add_edge(tor, agg_id(a1), params.uplink_speed);
    t.graph.add_edge(tor, agg_id(a2), params.uplink_speed);
  }
  // Full bipartite aggregation-core interconnect.
  for (int a = 0; a < num_agg; ++a) {
    for (int c = 0; c < num_core; ++c) {
      t.graph.add_edge(agg_id(a), core_id(c), params.uplink_speed);
    }
  }

  t.servers.per_switch.assign(static_cast<std::size_t>(total), 0);
  for (int tor = 0; tor < num_tor; ++tor) {
    t.servers.per_switch[static_cast<std::size_t>(tor)] = params.servers_per_tor;
  }
  t.node_class.assign(static_cast<std::size_t>(total),
                      static_cast<int>(Vl2Class::kCore));
  for (int tor = 0; tor < num_tor; ++tor) {
    t.node_class[static_cast<std::size_t>(tor)] =
        static_cast<int>(Vl2Class::kToR);
  }
  for (int a = 0; a < num_agg; ++a) {
    t.node_class[static_cast<std::size_t>(agg_id(a))] =
        static_cast<int>(Vl2Class::kAggregation);
  }
  t.class_names = {"tor", "aggregation", "core"};
  return t;
}

int rewired_vl2_max_tors(const Vl2Params& params) {
  validate(params);
  // Every aggregation/core switch keeps >= 1 port for the random fabric.
  const int agg_room = params.d_i * (params.d_a - 1);
  const int core_room = (params.d_a / 2) * (params.d_i - 1);
  return (agg_room + core_room) / 2;
}

BuiltTopology rewired_vl2_topology(const Vl2Params& params, int num_tors,
                                   std::uint64_t seed) {
  validate(params);
  require(num_tors >= 1, "rewired VL2 requires at least one ToR");
  require(num_tors <= rewired_vl2_max_tors(params),
          "switch pool cannot host this many ToR uplinks");

  const int num_agg = params.d_i;
  const int num_core = params.d_a / 2;
  const int num_pool = num_agg + num_core;
  const int total = num_tors + num_pool;
  Rng rng(seed);

  // Pool switch ports: aggregation switches have d_a, cores d_i.
  std::vector<int> pool_ports(static_cast<std::size_t>(num_pool), params.d_a);
  for (int c = 0; c < num_core; ++c) {
    pool_ports[static_cast<std::size_t>(num_agg + c)] = params.d_i;
  }

  // §7: distribute ToR uplinks over aggregation and core switches in
  // proportion to their port counts.
  const int num_uplinks = 2 * num_tors;
  std::vector<int> caps(pool_ports.size());
  for (std::size_t i = 0; i < pool_ports.size(); ++i) caps[i] = pool_ports[i] - 1;
  const std::vector<int> quota = apportion(pool_ports, num_uplinks, caps);

  // Assign each ToR's two uplinks to two (preferably distinct) switches.
  std::vector<int> uplink_slots;
  uplink_slots.reserve(static_cast<std::size_t>(num_uplinks));
  for (std::size_t s = 0; s < quota.size(); ++s) {
    for (int i = 0; i < quota[s]; ++i) uplink_slots.push_back(static_cast<int>(s));
  }
  rng.shuffle(uplink_slots);
  for (std::size_t j = 0; j + 1 < uplink_slots.size(); j += 2) {
    if (uplink_slots[j] != uplink_slots[j + 1]) continue;
    for (std::size_t k = j + 2; k < uplink_slots.size(); ++k) {
      if (uplink_slots[k] != uplink_slots[j]) {
        std::swap(uplink_slots[j + 1], uplink_slots[k]);
        break;
      }
    }
    // If no swap was possible the ToR double-homes to one switch, which is
    // legitimate (if unusual) hardware-wise and throughput-equivalent.
  }

  BuiltTopology t;
  t.graph = Graph(total);
  const auto pool_id = [&](int s) { return num_tors + s; };
  for (int tor = 0; tor < num_tors; ++tor) {
    t.graph.add_edge(tor, pool_id(uplink_slots[static_cast<std::size_t>(2 * tor)]),
                     params.uplink_speed);
    t.graph.add_edge(tor,
                     pool_id(uplink_slots[static_cast<std::size_t>(2 * tor + 1)]),
                     params.uplink_speed);
  }

  // Wire the remaining pool ports uniformly at random.
  std::vector<int> remaining(pool_ports.size());
  long long remaining_sum = 0;
  for (std::size_t s = 0; s < pool_ports.size(); ++s) {
    remaining[s] = pool_ports[s] - quota[s];
    remaining_sum += remaining[s];
  }
  if (remaining_sum % 2 != 0) {
    // Leave one port unused on the switch with the most spare ports.
    const auto it = std::max_element(remaining.begin(), remaining.end());
    require(*it >= 1, "parity fix requires a spare port");
    --(*it);
  }
  // The leftover fabric need not be connected on its own — ToR uplinks
  // also join pool switches — so build it unconstrained and retry with
  // fresh randomness until the WHOLE topology is connected.
  DegreeSequenceOptions options;
  options.ensure_connected = false;
  constexpr int kMaxFabricAttempts = 30;
  for (int attempt = 0;; ++attempt) {
    Graph candidate = t.graph;  // ToR uplinks only
    Rng fabric_rng(Rng::derive_seed(seed, 0xFAB0 + static_cast<std::uint64_t>(attempt)));
    for (const auto& [u, v] :
         random_degree_sequence_edges(remaining, fabric_rng, options)) {
      candidate.add_edge(pool_id(u), pool_id(v), params.uplink_speed);
    }
    if (is_connected(candidate)) {
      t.graph = std::move(candidate);
      break;
    }
    if (attempt + 1 >= kMaxFabricAttempts) {
      throw ConstructionFailure(
          "rewired_vl2_topology: could not produce a connected fabric");
    }
  }

  t.servers.per_switch.assign(static_cast<std::size_t>(total), 0);
  for (int tor = 0; tor < num_tors; ++tor) {
    t.servers.per_switch[static_cast<std::size_t>(tor)] = params.servers_per_tor;
  }
  t.node_class.assign(static_cast<std::size_t>(total),
                      static_cast<int>(Vl2Class::kCore));
  for (int tor = 0; tor < num_tors; ++tor) {
    t.node_class[static_cast<std::size_t>(tor)] =
        static_cast<int>(Vl2Class::kToR);
  }
  for (int a = 0; a < num_agg; ++a) {
    t.node_class[static_cast<std::size_t>(pool_id(a))] =
        static_cast<int>(Vl2Class::kAggregation);
  }
  t.class_names = {"tor", "aggregation", "core"};
  return t;
}

}  // namespace topo
