// Three-level k-ary fat-tree (folded Clos), the Al-Fares et al. baseline.
#ifndef TOPODESIGN_TOPO_FAT_TREE_H
#define TOPODESIGN_TOPO_FAT_TREE_H

#include "topo/topology.h"

namespace topo {

/// Node classes produced by fat_tree_topology.
enum class FatTreeClass : int { kEdge = 0, kAggregation = 1, kCore = 2 };

/// Builds the k-ary fat-tree: k pods of k/2 edge + k/2 aggregation
/// switches, (k/2)^2 core switches, k/2 servers per edge switch, unit link
/// capacities. Requires even k >= 2. Supports k^3/4 servers at full
/// throughput by construction.
[[nodiscard]] BuiltTopology fat_tree_topology(int k);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_FAT_TREE_H
