// Random graphs with a prescribed degree sequence.
//
// The workhorse behind every random topology in the paper: a configuration
// model (uniform random pairing of port "stubs") followed by repair passes
// that remove self-loops and, when requested, parallel edges and
// disconnectedness — all via degree-preserving edge swaps, so the result
// still has exactly the requested degree sequence.
#ifndef TOPODESIGN_TOPO_DEGREE_SEQUENCE_H
#define TOPODESIGN_TOPO_DEGREE_SEQUENCE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace topo {

/// Options controlling random degree-sequence construction.
struct DegreeSequenceOptions {
  /// Forbid parallel edges. When a simple realization cannot be repaired
  /// within the attempt budget, fall back to allowing parallel edges (the
  /// configuration-model behaviour) rather than failing, unless
  /// `strict_simple` is also set.
  bool simple = true;
  bool strict_simple = false;
  /// Rewire (degree-preservingly) until the graph is connected. Requires
  /// every node to have degree >= 1 when there are >= 2 nodes with ports.
  bool ensure_connected = true;
  /// Full restarts of the pairing before giving up on repairs.
  int max_attempts = 20;
};

/// Returns a uniformly-ish random edge list realizing `degrees`
/// (edge endpoints are indices into `degrees`). Self-loops never appear in
/// the output. Raises InvalidArgument for odd degree sums and
/// ConstructionFailure when constraints cannot be met.
[[nodiscard]] std::vector<std::pair<int, int>> random_degree_sequence_edges(
    const std::vector<int>& degrees, Rng& rng,
    const DegreeSequenceOptions& options = {});

/// Convenience wrapper building a Graph with unit edge capacities.
[[nodiscard]] Graph random_graph_with_degrees(
    const std::vector<int>& degrees, std::uint64_t seed,
    const DegreeSequenceOptions& options = {});

/// Expected number of inter-group edges when `stubs_a` + `stubs_b` port
/// stubs are paired uniformly at random (configuration model):
/// a*b / (a+b-1). This is the paper's "Expected Under Random Connection"
/// normalizer for cross-cluster link counts.
[[nodiscard]] double expected_cross_links(int stubs_a, int stubs_b);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_DEGREE_SEQUENCE_H
