#include "topo/structured.h"

#include "util/error.h"

namespace topo {

BuiltTopology hypercube_topology(int dim, int servers_per_switch) {
  require(dim >= 1 && dim <= 20, "hypercube dimension must be in [1, 20]");
  require(servers_per_switch >= 0, "servers_per_switch must be >= 0");
  const int n = 1 << dim;
  BuiltTopology t;
  t.graph = Graph(n);
  for (int u = 0; u < n; ++u) {
    for (int b = 0; b < dim; ++b) {
      const int v = u ^ (1 << b);
      if (u < v) t.graph.add_edge(u, v, 1.0);
    }
  }
  t.servers.per_switch.assign(static_cast<std::size_t>(n), servers_per_switch);
  t.node_class.assign(static_cast<std::size_t>(n), 0);
  t.class_names = {"switch"};
  return t;
}

BuiltTopology generalized_hypercube_topology(const std::vector<int>& radices,
                                             int servers_per_switch) {
  require(!radices.empty(), "generalized hypercube needs >= 1 dimension");
  require(servers_per_switch >= 0, "servers_per_switch must be >= 0");
  long long total = 1;
  for (int radix : radices) {
    require(radix >= 2, "every radix must be >= 2");
    total *= radix;
    require(total <= 1'000'000, "generalized hypercube too large");
  }
  const int n = static_cast<int>(total);

  // Mixed-radix strides for coordinate arithmetic.
  std::vector<long long> stride(radices.size(), 1);
  for (std::size_t d = 1; d < radices.size(); ++d) {
    stride[d] = stride[d - 1] * radices[d - 1];
  }

  BuiltTopology t;
  t.graph = Graph(n);
  for (int node = 0; node < n; ++node) {
    for (std::size_t d = 0; d < radices.size(); ++d) {
      const int digit = static_cast<int>((node / stride[d]) % radices[d]);
      // Link to all larger digit values in this dimension (each unordered
      // pair added exactly once).
      for (int other = digit + 1; other < radices[d]; ++other) {
        const int peer =
            node + static_cast<int>((other - digit) * stride[d]);
        t.graph.add_edge(node, peer, 1.0);
      }
    }
  }
  t.servers.per_switch.assign(static_cast<std::size_t>(n), servers_per_switch);
  t.node_class.assign(static_cast<std::size_t>(n), 0);
  t.class_names = {"switch"};
  return t;
}

BuiltTopology torus2d_topology(int rows, int cols, int servers_per_switch) {
  require(rows >= 3 && cols >= 3, "torus requires rows, cols >= 3");
  require(servers_per_switch >= 0, "servers_per_switch must be >= 0");
  const int n = rows * cols;
  const auto id = [&](int r, int c) { return r * cols + c; };
  BuiltTopology t;
  t.graph = Graph(n);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      t.graph.add_edge(id(r, c), id((r + 1) % rows, c), 1.0);
      t.graph.add_edge(id(r, c), id(r, (c + 1) % cols), 1.0);
    }
  }
  t.servers.per_switch.assign(static_cast<std::size_t>(n), servers_per_switch);
  t.node_class.assign(static_cast<std::size_t>(n), 0);
  t.class_names = {"switch"};
  return t;
}

}  // namespace topo
