// VL2 (Greenberg et al., SIGCOMM 2009) and the paper's rewired variant.
//
// VL2 uses three switch types: ToRs (20 x 1G servers, 2 x 10G uplinks),
// DI aggregation switches with DA 10G ports each, and DA/2 core switches
// with DI 10G ports each, the aggregation-core interconnect being a full
// bipartite graph. Capacities are expressed in server line-rates, so 10G
// links have capacity 10.
//
// The rewired variant (§7 of the paper) keeps the identical switch pool
// but (a) spreads ToR uplinks over aggregation AND core switches in
// proportion to their port counts, and (b) wires all remaining 10G ports
// uniformly at random. It supports a configurable number of ToRs so the
// binary search of Fig 12 can find the largest count that still yields
// full throughput.
#ifndef TOPODESIGN_TOPO_VL2_H
#define TOPODESIGN_TOPO_VL2_H

#include <cstdint>

#include "topo/topology.h"

namespace topo {

/// Node classes for VL2-family topologies.
enum class Vl2Class : int { kToR = 0, kAggregation = 1, kCore = 2 };

/// VL2 sizing parameters.
struct Vl2Params {
  int d_a = 16;  ///< Ports per aggregation switch (even); #cores = d_a/2.
  int d_i = 16;  ///< Ports per core switch; also the number of agg switches.
  int servers_per_tor = 20;
  double uplink_speed = 10.0;  ///< 10G in units of the 1G server rate.
};

/// Number of ToRs the standard VL2 supports at full throughput: DA*DI/4.
[[nodiscard]] int vl2_nominal_tors(const Vl2Params& params);

/// Builds the standard VL2 topology with its nominal ToR count.
[[nodiscard]] BuiltTopology vl2_topology(const Vl2Params& params);

/// Builds the rewired variant with `num_tors` ToRs using the identical
/// aggregation/core switch pool. Raises InvalidArgument when the pool
/// cannot host that many ToR uplinks.
[[nodiscard]] BuiltTopology rewired_vl2_topology(const Vl2Params& params,
                                                 int num_tors,
                                                 std::uint64_t seed);

/// Largest ToR count rewired_vl2_topology can host with this switch pool
/// (every aggregation/core switch must keep at least one network port).
[[nodiscard]] int rewired_vl2_max_tors(const Vl2Params& params);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_VL2_H
