#include "topo/random_regular.h"

#include "topo/degree_sequence.h"

namespace topo {

Graph random_regular_graph(int n, int r, std::uint64_t seed) {
  require(n >= 1, "random_regular_graph requires n >= 1");
  require(r >= 0 && r < n, "random_regular_graph requires 0 <= r < n");
  require((static_cast<long long>(n) * r) % 2 == 0,
          "n * r must be even for an r-regular graph");
  std::vector<int> degrees(static_cast<std::size_t>(n), r);
  DegreeSequenceOptions options;
  options.ensure_connected = r >= 1 && n >= 2;
  return random_graph_with_degrees(degrees, seed, options);
}

BuiltTopology random_regular_topology(int n, int k, int r, std::uint64_t seed) {
  require(k >= r, "random_regular_topology requires k >= r");
  BuiltTopology t;
  t.graph = random_regular_graph(n, r, seed);
  t.servers.per_switch.assign(static_cast<std::size_t>(n), k - r);
  t.node_class.assign(static_cast<std::size_t>(n), 0);
  t.class_names = {"switch"};
  return t;
}

}  // namespace topo
