#include "topo/fat_tree.h"

#include "util/error.h"

namespace topo {

BuiltTopology fat_tree_topology(int k) {
  require(k >= 2 && k % 2 == 0, "fat tree requires even k >= 2");
  const int half = k / 2;
  const int num_edge = k * half;        // k pods * k/2 edge switches
  const int num_agg = k * half;         // k pods * k/2 aggregation switches
  const int num_core = half * half;
  const int total = num_edge + num_agg + num_core;

  // Node layout: edges [0, num_edge), aggs [num_edge, num_edge+num_agg),
  // cores afterwards. Pod p owns edge/agg switches p*half .. p*half+half-1.
  const auto edge_id = [&](int pod, int i) { return pod * half + i; };
  const auto agg_id = [&](int pod, int i) { return num_edge + pod * half + i; };
  const auto core_id = [&](int group, int i) {
    return num_edge + num_agg + group * half + i;
  };

  BuiltTopology t;
  t.graph = Graph(total);

  for (int pod = 0; pod < k; ++pod) {
    // Full bipartite edge-aggregation mesh inside the pod.
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        t.graph.add_edge(edge_id(pod, e), agg_id(pod, a), 1.0);
      }
    }
    // Aggregation switch a of every pod connects to core group a.
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        t.graph.add_edge(agg_id(pod, a), core_id(a, c), 1.0);
      }
    }
  }

  t.servers.per_switch.assign(static_cast<std::size_t>(total), 0);
  for (int e = 0; e < num_edge; ++e) {
    t.servers.per_switch[static_cast<std::size_t>(e)] = half;
  }
  t.node_class.assign(static_cast<std::size_t>(total),
                      static_cast<int>(FatTreeClass::kCore));
  for (int e = 0; e < num_edge; ++e) {
    t.node_class[static_cast<std::size_t>(e)] =
        static_cast<int>(FatTreeClass::kEdge);
  }
  for (int a = 0; a < num_agg; ++a) {
    t.node_class[static_cast<std::size_t>(num_edge + a)] =
        static_cast<int>(FatTreeClass::kAggregation);
  }
  t.class_names = {"edge", "aggregation", "core"};
  return t;
}

}  // namespace topo
