#include "topo/small_world.h"

#include "topo/degree_sequence.h"
#include "util/error.h"
#include "util/rng.h"

namespace topo {

BuiltTopology small_world_topology(int n, int lattice_degree,
                                   int shortcut_degree,
                                   int servers_per_switch,
                                   std::uint64_t seed) {
  require(n >= 3, "small world requires n >= 3");
  require(lattice_degree >= 2 && lattice_degree % 2 == 0,
          "lattice degree must be even and >= 2");
  require(lattice_degree < n, "lattice degree must be < n");
  require(shortcut_degree >= 0, "shortcut degree must be >= 0");
  require((static_cast<long long>(n) * shortcut_degree) % 2 == 0,
          "n * shortcut_degree must be even");
  require(servers_per_switch >= 0, "servers must be >= 0");

  BuiltTopology t;
  t.graph = Graph(n);
  // Ring lattice: each node linked to lattice_degree/2 neighbors per side.
  // For offset < n/2 the pairs (i, i+offset) for all i are distinct; the
  // diametric offset n/2 (even n) pairs each edge twice, so iterate half.
  for (int offset = 1; offset <= lattice_degree / 2; ++offset) {
    const int upper = (2 * offset == n) ? n / 2 : n;
    for (int i = 0; i < upper; ++i) {
      t.graph.add_edge(i, (i + offset) % n, 1.0);
    }
  }

  // Random shortcuts realized as a degree sequence over remaining ports,
  // avoiding duplicates with the lattice where possible.
  if (shortcut_degree > 0) {
    Rng rng(seed);
    const std::vector<int> degrees(static_cast<std::size_t>(n),
                                   shortcut_degree);
    DegreeSequenceOptions options;
    options.ensure_connected = false;  // the lattice is already connected
    for (const auto& [u, v] :
         random_degree_sequence_edges(degrees, rng, options)) {
      t.graph.add_edge(u, v, 1.0);
    }
  }

  t.servers.per_switch.assign(static_cast<std::size_t>(n), servers_per_switch);
  t.node_class.assign(static_cast<std::size_t>(n), 0);
  t.class_names = {"switch"};
  return t;
}

}  // namespace topo
