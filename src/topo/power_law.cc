#include "topo/power_law.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "topo/degree_sequence.h"
#include "util/error.h"
#include "util/rng.h"

namespace topo {

std::vector<int> power_law_ports(int n, double target_mean, std::uint64_t seed,
                                 double alpha, int min_ports) {
  require(n > 0, "power_law_ports requires n > 0");
  require(alpha > 1.0, "power-law exponent must exceed 1");
  require(min_ports >= 1, "min_ports must be >= 1");
  require(target_mean >= static_cast<double>(min_ports),
          "target_mean must be at least min_ports");

  Rng rng(seed);
  // Continuous Pareto samples x = u^(-1/(alpha-1)), truncated at 20x the
  // minimum to keep the largest switch realistic.
  std::vector<double> raw(static_cast<std::size_t>(n));
  for (double& x : raw) {
    const double u = std::max(rng.uniform(), 1e-9);
    x = std::min(std::pow(u, -1.0 / (alpha - 1.0)), 20.0);
  }
  const double raw_mean =
      std::accumulate(raw.begin(), raw.end(), 0.0) / static_cast<double>(n);
  const double scale = target_mean / raw_mean;

  std::vector<int> ports(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < raw.size(); ++i) {
    ports[i] = std::max(min_ports, static_cast<int>(std::llround(raw[i] * scale)));
  }
  return ports;
}

std::vector<int> beta_proportional_servers(const std::vector<int>& ports,
                                           double beta, int total_servers) {
  require(!ports.empty(), "beta_proportional_servers requires switches");
  require(total_servers >= 0, "total_servers must be non-negative");
  for (int p : ports) require(p >= 1, "every switch needs at least one port");

  const std::size_t n = ports.size();
  std::vector<double> weight(n);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = std::pow(static_cast<double>(ports[i]), beta);
    weight_sum += weight[i];
  }
  require(weight_sum > 0.0, "weights must be positive");

  // Largest-remainder apportionment with a per-switch cap of ports[i]-1
  // (each switch must keep at least one network port).
  std::vector<int> servers(n, 0);
  std::vector<std::pair<double, std::size_t>> remainder(n);
  int assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ideal = total_servers * weight[i] / weight_sum;
    servers[i] = std::min(static_cast<int>(ideal), ports[i] - 1);
    assigned += servers[i];
    remainder[i] = {ideal - servers[i], i};
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  int deficit = total_servers - assigned;
  // First pass by remainder order, then round-robin over any remaining room.
  for (int pass = 0; deficit > 0 && pass < total_servers; ++pass) {
    bool progressed = false;
    for (const auto& [frac, i] : remainder) {
      if (deficit == 0) break;
      if (servers[i] < ports[i] - 1) {
        ++servers[i];
        --deficit;
        progressed = true;
      }
    }
    if (!progressed) break;
  }
  if (deficit > 0) {
    throw ConstructionFailure(
        "beta_proportional_servers: not enough port capacity for the "
        "requested server count");
  }
  return servers;
}

BuiltTopology build_pool_topology(const std::vector<int>& ports,
                                  const std::vector<int>& servers,
                                  std::uint64_t seed) {
  require(ports.size() == servers.size(),
          "ports and servers must have equal length");
  std::vector<int> degrees(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    require(servers[i] >= 0 && servers[i] <= ports[i],
            "server count exceeds port count");
    degrees[i] = ports[i] - servers[i];
  }

  BuiltTopology t;
  DegreeSequenceOptions options;
  options.ensure_connected = true;
  t.graph = random_graph_with_degrees(degrees, seed, options);
  t.servers.per_switch = servers;
  t.node_class.assign(ports.size(), 0);
  t.class_names = {"switch"};
  return t;
}

void fix_parity_for_servers(std::vector<int>& ports, int total_servers) {
  require(!ports.empty(), "fix_parity_for_servers requires switches");
  const long long port_sum = std::accumulate(ports.begin(), ports.end(), 0LL);
  if ((port_sum - total_servers) % 2 != 0) ++ports.back();
}

}  // namespace topo
