#include "topo/layout.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace topo {

FloorLayout grid_layout(int num_switches, int columns, int per_rack) {
  require(num_switches >= 0, "num_switches must be non-negative");
  require(columns >= 1, "columns must be positive");
  require(per_rack >= 1, "per_rack must be positive");
  FloorLayout layout;
  layout.position.reserve(static_cast<std::size_t>(num_switches));
  for (int i = 0; i < num_switches; ++i) {
    const int rack = i / per_rack;
    layout.position.push_back(RackPosition{rack / columns, rack % columns});
  }
  return layout;
}

FloorLayout two_zone_layout(int cluster_a_size, int cluster_b_size,
                            int columns) {
  require(cluster_a_size >= 0 && cluster_b_size >= 0,
          "cluster sizes must be non-negative");
  require(columns >= 2, "two zones need at least two columns");
  const int half = columns / 2;
  FloorLayout layout;
  layout.position.reserve(
      static_cast<std::size_t>(cluster_a_size + cluster_b_size));
  for (int i = 0; i < cluster_a_size; ++i) {
    layout.position.push_back(RackPosition{i / half, i % half});
  }
  for (int i = 0; i < cluster_b_size; ++i) {
    layout.position.push_back(RackPosition{i / half, half + i % half});
  }
  return layout;
}

double cable_length(const FloorLayout& layout, NodeId u, NodeId v) {
  require(u >= 0 && u < layout.num_switches() && v >= 0 &&
              v < layout.num_switches(),
          "cable endpoints out of range");
  const RackPosition& a = layout.position[static_cast<std::size_t>(u)];
  const RackPosition& b = layout.position[static_cast<std::size_t>(v)];
  return std::abs(a.row - b.row) + std::abs(a.column - b.column);
}

CableStats cable_stats(const Graph& graph, const FloorLayout& layout) {
  require(layout.num_switches() == graph.num_nodes(),
          "layout must cover every switch");
  CableStats stats;
  if (graph.num_edges() == 0) return stats;
  for (const Edge& e : graph.edges()) {
    const double length = cable_length(layout, e.u, e.v);
    stats.total_length += length;
    stats.max_length = std::max(stats.max_length, length);
  }
  stats.mean_length = stats.total_length / graph.num_edges();
  return stats;
}

}  // namespace topo
