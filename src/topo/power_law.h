// Power-law switch pools and degree-proportional server placement (Fig 5).
//
// The paper's Fig 5 draws switch port-counts from a power-law distribution
// and attaches servers to switch i in proportion to k_i^beta, then wires
// the remaining ports uniformly at random.
#ifndef TOPODESIGN_TOPO_POWER_LAW_H
#define TOPODESIGN_TOPO_POWER_LAW_H

#include <cstdint>
#include <vector>

#include "topo/topology.h"

namespace topo {

/// Samples `n` switch port-counts from a truncated discrete Pareto
/// distribution (exponent `alpha`), rescaled so the sample mean is close to
/// `target_mean`. Every value is at least `min_ports`.
[[nodiscard]] std::vector<int> power_law_ports(int n, double target_mean,
                                               std::uint64_t seed,
                                               double alpha = 2.5,
                                               int min_ports = 3);

/// Distributes `total_servers` so switch i gets a share proportional to
/// ports[i]^beta (largest-remainder rounding). Each switch keeps at least
/// one network-facing port, so its server count is capped at ports[i]-1;
/// overflow is redistributed. The returned counts sum to `total_servers`;
/// raises ConstructionFailure if the caps make that impossible.
[[nodiscard]] std::vector<int> beta_proportional_servers(
    const std::vector<int>& ports, double beta, int total_servers);

/// Random topology over a heterogeneous pool: switch i has ports[i] ports
/// and hosts servers[i] servers; the remaining ports are wired uniformly at
/// random. Requires sum(ports[i] - servers[i]) to be even.
[[nodiscard]] BuiltTopology build_pool_topology(const std::vector<int>& ports,
                                                const std::vector<int>& servers,
                                                std::uint64_t seed);

/// Adjusts the last element of `ports` (by +1) if needed so that
/// sum(ports) - total_servers is even, making build_pool_topology feasible.
void fix_parity_for_servers(std::vector<int>& ports, int total_servers);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_POWER_LAW_H
