// Classic structured baselines: hypercube and 2-D torus.
//
// Used by the examples and the homogeneous-design comparisons (the paper
// notes random graphs beat hypercubes by ~30% at 512 nodes).
#ifndef TOPODESIGN_TOPO_STRUCTURED_H
#define TOPODESIGN_TOPO_STRUCTURED_H

#include "topo/topology.h"

namespace topo {

/// d-dimensional hypercube on 2^d switches with `servers_per_switch`
/// servers each; unit capacities. Requires 1 <= dim <= 20.
[[nodiscard]] BuiltTopology hypercube_topology(int dim, int servers_per_switch);

/// rows x cols wraparound 2-D torus; requires rows, cols >= 3 so no
/// parallel wrap edges arise.
[[nodiscard]] BuiltTopology torus2d_topology(int rows, int cols,
                                             int servers_per_switch);

/// Generalized hypercube (a.k.a. Hamming graph / flattened-butterfly
/// style interconnect, the [18]-family baseline): switches are points of a
/// mixed-radix grid given by `radices`, and every pair differing in
/// exactly one coordinate is directly linked. Degree = sum(radix_i - 1).
[[nodiscard]] BuiltTopology generalized_hypercube_topology(
    const std::vector<int>& radices, int servers_per_switch);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_STRUCTURED_H
