#include "topo/het_random.h"

#include <algorithm>
#include <cmath>

#include "topo/clustered_random.h"
#include "topo/degree_sequence.h"
#include "util/error.h"
#include "util/rng.h"

namespace topo {
namespace {

void validate(const TwoTypeSpec& spec) {
  require(spec.num_large > 0 && spec.num_small > 0,
          "build_two_type requires both switch types present");
  require(spec.servers_per_large >= 0 && spec.servers_per_small >= 0,
          "server counts must be non-negative");
  require(spec.large_ports >= spec.servers_per_large,
          "large switches cannot host more servers than ports");
  require(spec.small_ports >= spec.servers_per_small,
          "small switches cannot host more servers than ports");
  require(spec.cross_fraction >= 0.0, "cross_fraction must be >= 0");
  require(spec.hs_links_per_large >= 0, "hs_links_per_large must be >= 0");
  if (spec.hs_links_per_large > 0) {
    require(spec.hs_speed > 0.0, "hs_speed must be positive");
    require((static_cast<long long>(spec.num_large) * spec.hs_links_per_large) %
                    2 ==
                0,
            "num_large * hs_links_per_large must be even");
  }
}

int network_degree_large(const TwoTypeSpec& spec) {
  return spec.large_ports - spec.servers_per_large;
}
int network_degree_small(const TwoTypeSpec& spec) {
  return spec.small_ports - spec.servers_per_small;
}

}  // namespace

BuiltTopology build_two_type(const TwoTypeSpec& spec, std::uint64_t seed) {
  validate(spec);
  const int dl = network_degree_large(spec);
  const int ds = network_degree_small(spec);

  ClusterSpec cluster;
  cluster.degrees_a.assign(static_cast<std::size_t>(spec.num_large), dl);
  cluster.degrees_b.assign(static_cast<std::size_t>(spec.num_small), ds);
  // cross_fraction is a soft target: physically at most every port of the
  // smaller side can face the other cluster, so clamp (high fractions then
  // saturate instead of failing — matching the flat right end of Fig 6).
  const long long max_cross =
      std::min(static_cast<long long>(spec.num_large) * dl,
               static_cast<long long>(spec.num_small) * ds);
  cluster.cross_links = static_cast<int>(std::min(
      max_cross,
      std::llround(spec.cross_fraction * expected_cross_links_for(cluster))));
  cluster.capacity = 1.0;
  cluster.ensure_connected = spec.ensure_connected;

  ClusteredGraph built = clustered_random_graph(cluster, seed);

  BuiltTopology t;
  t.graph = std::move(built.graph);

  // High-line-speed overlay: a random regular graph among the large
  // switches only, on the dedicated high-speed ports (Fig 8).
  if (spec.hs_links_per_large > 0 && spec.num_large >= 2) {
    Rng rng(Rng::derive_seed(seed, 0x48532d4f564cULL));  // independent stream
    std::vector<int> hs_degrees(static_cast<std::size_t>(spec.num_large),
                                spec.hs_links_per_large);
    DegreeSequenceOptions options;
    options.ensure_connected = false;  // base graph provides connectivity
    for (const auto& [u, v] :
         random_degree_sequence_edges(hs_degrees, rng, options)) {
      t.graph.add_edge(u, v, spec.hs_speed);
    }
  }

  t.servers.per_switch.assign(
      static_cast<std::size_t>(spec.num_large + spec.num_small),
      spec.servers_per_small);
  for (int i = 0; i < spec.num_large; ++i) {
    t.servers.per_switch[static_cast<std::size_t>(i)] = spec.servers_per_large;
  }
  t.node_class.assign(static_cast<std::size_t>(spec.num_large + spec.num_small),
                      static_cast<int>(TwoTypeClass::kSmall));
  for (int i = 0; i < spec.num_large; ++i) {
    t.node_class[static_cast<std::size_t>(i)] =
        static_cast<int>(TwoTypeClass::kLarge);
  }
  t.class_names = {"large", "small"};
  return t;
}

double two_type_expected_cross(const TwoTypeSpec& spec) {
  validate(spec);
  return expected_cross_links(spec.num_large * network_degree_large(spec),
                              spec.num_small * network_degree_small(spec));
}

double server_placement_ratio(const TwoTypeSpec& spec) {
  validate(spec);
  const double total_ports =
      static_cast<double>(spec.num_large) * spec.large_ports +
      static_cast<double>(spec.num_small) * spec.small_ports;
  const double total_servers =
      static_cast<double>(spec.num_large) * spec.servers_per_large +
      static_cast<double>(spec.num_small) * spec.servers_per_small;
  require(total_ports > 0.0 && total_servers > 0.0,
          "server_placement_ratio requires ports and servers");
  const double expected_per_large =
      total_servers * static_cast<double>(spec.large_ports) / total_ports;
  return static_cast<double>(spec.servers_per_large) / expected_per_large;
}

TwoTypeSpec with_server_split(TwoTypeSpec spec, int total_servers,
                              double ratio) {
  require(total_servers > 0, "total_servers must be positive");
  require(ratio >= 0.0, "ratio must be non-negative");
  const double total_ports =
      static_cast<double>(spec.num_large) * spec.large_ports +
      static_cast<double>(spec.num_small) * spec.small_ports;
  const double proportional_per_large =
      static_cast<double>(total_servers) * spec.large_ports / total_ports;
  int per_large = static_cast<int>(std::llround(ratio * proportional_per_large));
  per_large = std::max(0, std::min(per_large, spec.large_ports - 1));
  int remaining = total_servers - spec.num_large * per_large;
  int per_small =
      static_cast<int>(std::llround(static_cast<double>(remaining) /
                                    static_cast<double>(spec.num_small)));
  per_small = std::max(0, std::min(per_small, spec.small_ports - 1));
  spec.servers_per_large = per_large;
  spec.servers_per_small = per_small;
  return spec;
}

}  // namespace topo
