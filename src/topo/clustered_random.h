// Two-cluster random graphs with exact control of cross-cluster links.
//
// The heterogeneous-design experiments (§5, §6) sweep the number of edges
// crossing two groups of switches while wiring everything else uniformly at
// random. This builder realizes an exact cross-link count: `cross_links`
// inter-cluster edges, with each cluster's remaining ports paired randomly
// inside the cluster. All repairs are degree-preserving and category-
// preserving, so the requested port counts and cross-link count hold
// exactly in the output.
#ifndef TOPODESIGN_TOPO_CLUSTERED_RANDOM_H
#define TOPODESIGN_TOPO_CLUSTERED_RANDOM_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace topo {

/// Specification of a two-cluster random graph. Cluster A occupies node ids
/// [0, |degrees_a|), cluster B the ids after it.
struct ClusterSpec {
  std::vector<int> degrees_a;  ///< Network-port count per cluster-A node.
  std::vector<int> degrees_b;  ///< Network-port count per cluster-B node.
  int cross_links = 0;         ///< Exact inter-cluster edge count (see note).
  double capacity = 1.0;       ///< Capacity of every edge.
  bool ensure_connected = true;
};

/// Result of building a clustered graph.
struct ClusteredGraph {
  Graph graph{0};
  int actual_cross_links = 0;  ///< cross_links after the ±1 parity fix.
};

/// Builds the two-cluster random graph. `cross_links` may be adjusted by
/// ±1 when parity demands it (each cluster's leftover stub count must be
/// even); the adjusted value is reported in the result. Raises
/// ConstructionFailure when constraints cannot be met.
[[nodiscard]] ClusteredGraph clustered_random_graph(const ClusterSpec& spec,
                                                    std::uint64_t seed);

/// Expected cross-cluster links if all ports were paired uniformly at
/// random — the x-axis normalizer in Figures 6-8, 10 and 11.
[[nodiscard]] double expected_cross_links_for(const ClusterSpec& spec);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_CLUSTERED_RANDOM_H
