#include "topo/degree_sequence.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

#include "util/error.h"

namespace topo {
namespace {

using EdgeList = std::vector<std::pair<int, int>>;

std::pair<int, int> normalized(int u, int v) {
  return u < v ? std::pair<int, int>{u, v} : std::pair<int, int>{v, u};
}

// Random pairing of port stubs (configuration model). May contain
// self-loops and parallel edges; those are repaired afterwards.
EdgeList pair_stubs(const std::vector<int>& degrees, Rng& rng) {
  std::vector<int> stubs;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    for (int j = 0; j < degrees[i]; ++j) stubs.push_back(static_cast<int>(i));
  }
  rng.shuffle(stubs);
  EdgeList edges;
  edges.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    edges.emplace_back(stubs[i], stubs[i + 1]);
  }
  return edges;
}

// Bookkeeping for degree-preserving swap repair.
class EdgeSet {
 public:
  explicit EdgeSet(const EdgeList& edges) {
    for (const auto& [u, v] : edges) add(u, v);
  }
  void add(int u, int v) { ++count_[normalized(u, v)]; }
  void remove(int u, int v) {
    auto it = count_.find(normalized(u, v));
    if (it != count_.end() && --it->second == 0) count_.erase(it);
  }
  [[nodiscard]] int count(int u, int v) const {
    auto it = count_.find(normalized(u, v));
    return it == count_.end() ? 0 : it->second;
  }

 private:
  std::map<std::pair<int, int>, int> count_;
};

bool is_bad(const std::pair<int, int>& e, const EdgeSet& set, bool simple) {
  if (e.first == e.second) return true;
  return simple && set.count(e.first, e.second) > 1;
}

// Attempts to fix all self-loops (and duplicates when `simple`) via random
// degree-preserving swaps. Returns false if some conflict resisted repair.
bool repair_conflicts(EdgeList& edges, Rng& rng, bool simple) {
  if (edges.empty()) return true;
  EdgeSet set(edges);
  constexpr int kTriesPerEdge = 400;
  bool all_fixed = true;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!is_bad(edges[i], set, simple)) continue;
    bool fixed = false;
    for (int attempt = 0; attempt < kTriesPerEdge && !fixed; ++attempt) {
      const std::size_t j = rng.index(edges.size());
      if (j == i) continue;
      auto [u, v] = edges[i];
      auto [x, y] = edges[j];
      if (rng.chance(0.5)) std::swap(x, y);
      // Proposed replacement: (u,x) and (v,y).
      if (u == x || v == y) continue;
      set.remove(edges[i].first, edges[i].second);
      set.remove(edges[j].first, edges[j].second);
      const bool ok = !(simple && (set.count(u, x) > 0 || set.count(v, y) > 0)) &&
                      normalized(u, x) != normalized(v, y);
      if (ok) {
        edges[i] = {u, x};
        edges[j] = {v, y};
        set.add(u, x);
        set.add(v, y);
        // The partner edge may itself have been a conflict; both new edges
        // are clean by construction, so conflicts never increase.
        fixed = !is_bad(edges[i], set, simple);
      } else {
        set.add(edges[i].first, edges[i].second);
        set.add(edges[j].first, edges[j].second);
      }
    }
    if (!fixed) all_fixed = false;
  }
  return all_fixed;
}

// Self-loops must always be removed, even in multigraph mode.
bool has_self_loop(const EdgeList& edges) {
  return std::any_of(edges.begin(), edges.end(),
                     [](const auto& e) { return e.first == e.second; });
}

std::vector<int> components_over_edges(const EdgeList& edges,
                                       std::size_t num_nodes) {
  std::vector<std::vector<int>> adj(num_nodes);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    adj[static_cast<std::size_t>(edges[i].first)].push_back(edges[i].second);
    adj[static_cast<std::size_t>(edges[i].second)].push_back(edges[i].first);
  }
  std::vector<int> label(num_nodes, -1);
  int next = 0;
  for (std::size_t start = 0; start < num_nodes; ++start) {
    if (label[start] >= 0 || adj[start].empty()) continue;
    std::queue<int> frontier;
    label[start] = next;
    frontier.push(static_cast<int>(start));
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (int w : adj[static_cast<std::size_t>(u)]) {
        if (label[static_cast<std::size_t>(w)] < 0) {
          label[static_cast<std::size_t>(w)] = next;
          frontier.push(w);
        }
      }
    }
    ++next;
  }
  return label;  // -1 for nodes with no ports (ignored for connectivity)
}

int count_labels(const std::vector<int>& labels) {
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  return max_label + 1;
}

// Merges components by swapping one edge from each of two different
// components: (a,b),(c,d) -> (a,c),(b,d). Degree-preserving, and the new
// edges cannot duplicate existing ones since they span components.
bool repair_connectivity(EdgeList& edges, Rng& rng, std::size_t num_nodes) {
  constexpr int kMaxIterations = 400;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    const auto labels = components_over_edges(edges, num_nodes);
    if (count_labels(labels) <= 1) return true;
    // Pick random edges until two in different components are found.
    const std::size_t i = rng.index(edges.size());
    const int comp_i = labels[static_cast<std::size_t>(edges[i].first)];
    std::size_t j = rng.index(edges.size());
    bool found = false;
    for (std::size_t scan = 0; scan < edges.size(); ++scan) {
      const std::size_t candidate = (j + scan) % edges.size();
      if (labels[static_cast<std::size_t>(edges[candidate].first)] != comp_i) {
        j = candidate;
        found = true;
        break;
      }
    }
    if (!found) return false;
    auto [a, b] = edges[i];
    auto [c, d] = edges[j];
    if (rng.chance(0.5)) std::swap(c, d);
    edges[i] = {a, c};
    edges[j] = {b, d};
  }
  return false;
}

}  // namespace

std::vector<std::pair<int, int>> random_degree_sequence_edges(
    const std::vector<int>& degrees, Rng& rng,
    const DegreeSequenceOptions& options) {
  long long total = 0;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    require(degrees[i] >= 0, "degrees must be non-negative");
    require(degrees[i] <= static_cast<int>(degrees.size()) - 1 ||
                !options.strict_simple,
            "degree exceeds n-1; no simple graph exists");
    total += degrees[i];
  }
  require(total % 2 == 0, "degree sum must be even");
  if (total == 0) return {};

  EdgeList edges;
  bool simple_ok = false;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    edges = pair_stubs(degrees, rng);
    if (repair_conflicts(edges, rng, options.simple)) {
      simple_ok = true;
      break;
    }
  }
  if (!simple_ok) {
    if (options.simple && options.strict_simple) {
      throw ConstructionFailure(
          "could not realize a simple graph for the degree sequence");
    }
    // Multigraph fallback: parallel edges tolerated, self-loops are not.
    bool loops_fixed = false;
    for (int attempt = 0; attempt < options.max_attempts && !loops_fixed;
         ++attempt) {
      if (repair_conflicts(edges, rng, /*simple=*/false)) loops_fixed = true;
      else edges = pair_stubs(degrees, rng);
    }
    if (!loops_fixed || has_self_loop(edges)) {
      throw ConstructionFailure("could not eliminate self-loops");
    }
  }

  if (options.ensure_connected) {
    if (!repair_connectivity(edges, rng, degrees.size())) {
      throw ConstructionFailure(
          "could not rewire the degree sequence into a connected graph");
    }
  }
  return edges;
}

Graph random_graph_with_degrees(const std::vector<int>& degrees,
                                std::uint64_t seed,
                                const DegreeSequenceOptions& options) {
  Rng rng(seed);
  Graph g(static_cast<int>(degrees.size()));
  for (const auto& [u, v] : random_degree_sequence_edges(degrees, rng, options)) {
    g.add_edge(u, v, 1.0);
  }
  return g;
}

double expected_cross_links(int stubs_a, int stubs_b) {
  require(stubs_a >= 0 && stubs_b >= 0, "stub counts must be non-negative");
  if (stubs_a + stubs_b < 2) return 0.0;
  return static_cast<double>(stubs_a) * static_cast<double>(stubs_b) /
         (static_cast<double>(stubs_a) + static_cast<double>(stubs_b) - 1.0);
}

}  // namespace topo
