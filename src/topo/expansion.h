// Incremental expansion of random topologies (Jellyfish-style).
//
// A core motivation the paper inherits from Jellyfish: random graphs grow
// gracefully. Adding a switch only requires breaking a few existing links
// and splicing the new switch in — no rewiring of the whole fabric. This
// module implements that operation and a helper for growing a network by
// many switches, so the claim "expanded networks match from-scratch random
// networks" can be tested and benchmarked.
#ifndef TOPODESIGN_TOPO_EXPANSION_H
#define TOPODESIGN_TOPO_EXPANSION_H

#include <cstdint>

#include "topo/topology.h"

namespace topo {

/// Splices one new switch with `network_ports` network-facing ports and
/// `servers` servers into the topology: floor(network_ports / 2) existing
/// links (u, v) are removed and replaced by (u, new), (new, v) pairs,
/// preserving every existing switch's degree. With odd `network_ports`
/// one port is left free (as in Jellyfish). Links are chosen uniformly at
/// random among switch-switch links, avoiding duplicates to the new node.
/// Returns the new switch's id.
NodeId splice_switch(BuiltTopology& topology, int network_ports, int servers,
                     std::uint64_t seed, int node_class = 0);

/// Grows the topology by `count` identical switches via repeated splicing.
void expand_topology(BuiltTopology& topology, int count, int network_ports,
                     int servers, std::uint64_t seed, int node_class = 0);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_EXPANSION_H
