#include "topo/clustered_random.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "topo/degree_sequence.h"
#include "util/error.h"

namespace topo {
namespace {

enum class EdgeCategory { kCross, kIntraA, kIntraB };

struct TaggedEdge {
  int u = 0;  // global node id; for kCross, u is always the cluster-A node
  int v = 0;
  EdgeCategory category = EdgeCategory::kCross;
};

long long sum_of(const std::vector<int>& v) {
  return std::accumulate(v.begin(), v.end(), 0LL);
}

std::vector<int> component_labels_of(const std::vector<TaggedEdge>& edges,
                                     int num_nodes) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_nodes));
  for (const TaggedEdge& e : edges) {
    adj[static_cast<std::size_t>(e.u)].push_back(e.v);
    adj[static_cast<std::size_t>(e.v)].push_back(e.u);
  }
  std::vector<int> label(static_cast<std::size_t>(num_nodes), -1);
  int next = 0;
  for (int start = 0; start < num_nodes; ++start) {
    if (label[static_cast<std::size_t>(start)] >= 0 ||
        adj[static_cast<std::size_t>(start)].empty()) {
      continue;
    }
    std::queue<int> frontier;
    label[static_cast<std::size_t>(start)] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (int w : adj[static_cast<std::size_t>(u)]) {
        if (label[static_cast<std::size_t>(w)] < 0) {
          label[static_cast<std::size_t>(w)] = next;
          frontier.push(w);
        }
      }
    }
    ++next;
  }
  return label;
}

int num_labels(const std::vector<int>& labels) {
  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  return max_label + 1;
}

// Category-preserving merge of two components: swaps endpoints of two
// same-category edges lying in different components.
bool connectivity_pass(std::vector<TaggedEdge>& edges, Rng& rng,
                       int num_nodes) {
  constexpr int kMaxIterations = 600;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    const auto labels = component_labels_of(edges, num_nodes);
    if (num_labels(labels) <= 1) return true;
    // Find a same-category pair of edges in different components, starting
    // the scan at a random offset for unbiasedness.
    const std::size_t offset = rng.index(edges.size());
    bool swapped = false;
    for (std::size_t s1 = 0; s1 < edges.size() && !swapped; ++s1) {
      const std::size_t i = (offset + s1) % edges.size();
      const int comp_i = labels[static_cast<std::size_t>(edges[i].u)];
      for (std::size_t s2 = s1 + 1; s2 < edges.size(); ++s2) {
        const std::size_t j = (offset + s2) % edges.size();
        if (edges[j].category != edges[i].category) continue;
        if (labels[static_cast<std::size_t>(edges[j].u)] == comp_i) continue;
        // (u1,v1),(u2,v2) -> (u1,v2),(u2,v1). For cross edges this keeps
        // the A-side in `u`; for intra edges any orientation works.
        std::swap(edges[i].v, edges[j].v);
        swapped = true;
        break;
      }
    }
    if (!swapped) return false;  // no same-category bridge possible
  }
  return false;
}

}  // namespace

ClusteredGraph clustered_random_graph(const ClusterSpec& spec,
                                      std::uint64_t seed) {
  const int na = static_cast<int>(spec.degrees_a.size());
  const int nb = static_cast<int>(spec.degrees_b.size());
  require(na > 0 && nb > 0, "both clusters must be non-empty");
  require(spec.capacity > 0.0, "capacity must be positive");
  for (int d : spec.degrees_a) require(d >= 0, "degrees must be non-negative");
  for (int d : spec.degrees_b) require(d >= 0, "degrees must be non-negative");

  const long long sum_a = sum_of(spec.degrees_a);
  const long long sum_b = sum_of(spec.degrees_b);
  require((sum_a + sum_b) % 2 == 0, "total degree must be even");
  require(spec.cross_links >= 0, "cross_links must be non-negative");

  // Parity fix: each side's leftover stubs must pair internally.
  int cross = spec.cross_links;
  if ((sum_a - cross) % 2 != 0) {
    cross += (cross + 1 <= std::min(sum_a, sum_b)) ? 1 : -1;
  }
  require(cross >= 0 && cross <= std::min(sum_a, sum_b),
          "cross_links exceeds available ports");
  require((sum_a - cross) % 2 == 0 && (sum_b - cross) % 2 == 0,
          "unsatisfiable cross-link parity");

  Rng rng(seed);

  // Choose which stubs go cross-cluster: shuffle each side's stub list and
  // take the first `cross` of each.
  auto stub_list = [](const std::vector<int>& degrees, int id_offset) {
    std::vector<int> stubs;
    for (std::size_t i = 0; i < degrees.size(); ++i) {
      for (int j = 0; j < degrees[i]; ++j) {
        stubs.push_back(static_cast<int>(i) + id_offset);
      }
    }
    return stubs;
  };
  std::vector<int> stubs_a = stub_list(spec.degrees_a, 0);
  std::vector<int> stubs_b = stub_list(spec.degrees_b, na);
  rng.shuffle(stubs_a);
  rng.shuffle(stubs_b);

  std::vector<TaggedEdge> edges;
  edges.reserve(static_cast<std::size_t>((sum_a + sum_b) / 2));
  for (int i = 0; i < cross; ++i) {
    edges.push_back(TaggedEdge{stubs_a[static_cast<std::size_t>(i)],
                               stubs_b[static_cast<std::size_t>(i)],
                               EdgeCategory::kCross});
  }

  // Remaining per-node intra-cluster degrees.
  auto leftover_degrees = [&](const std::vector<int>& degrees,
                              const std::vector<int>& stubs, int id_offset) {
    std::vector<int> left(degrees);
    for (int i = 0; i < cross; ++i) {
      left[static_cast<std::size_t>(stubs[static_cast<std::size_t>(i)] -
                                    id_offset)]--;
    }
    return left;
  };
  const std::vector<int> left_a = leftover_degrees(spec.degrees_a, stubs_a, 0);
  const std::vector<int> left_b = leftover_degrees(spec.degrees_b, stubs_b, na);

  DegreeSequenceOptions intra_options;
  intra_options.ensure_connected = false;  // handled jointly below
  for (const auto& [u, v] : random_degree_sequence_edges(left_a, rng,
                                                         intra_options)) {
    edges.push_back(TaggedEdge{u, v, EdgeCategory::kIntraA});
  }
  for (const auto& [u, v] : random_degree_sequence_edges(left_b, rng,
                                                         intra_options)) {
    edges.push_back(TaggedEdge{u + na, v + na, EdgeCategory::kIntraB});
  }

  const int total_nodes = na + nb;
  if (spec.ensure_connected && cross > 0) {
    if (!connectivity_pass(edges, rng, total_nodes)) {
      throw ConstructionFailure(
          "clustered_random_graph: could not connect the graph while "
          "preserving cluster structure");
    }
  }

  ClusteredGraph result;
  result.graph = Graph(total_nodes);
  for (const TaggedEdge& e : edges) {
    result.graph.add_edge(e.u, e.v, spec.capacity);
  }
  result.actual_cross_links = cross;
  return result;
}

double expected_cross_links_for(const ClusterSpec& spec) {
  return expected_cross_links(static_cast<int>(sum_of(spec.degrees_a)),
                              static_cast<int>(sum_of(spec.degrees_b)));
}

}  // namespace topo
