// Physical layout and cable-length accounting (§6.2's application).
//
// The paper's plateau result implies switches can be clustered physically
// — wiring mostly within nearby racks — without losing throughput, as
// long as the cross-cluster cut stays above the drop threshold. This
// module models a machine-room floor as a grid of racks, assigns switches
// to racks, and measures the cable length a topology implies, so the
// cable-cost/throughput trade-off can be quantified.
#ifndef TOPODESIGN_TOPO_LAYOUT_H
#define TOPODESIGN_TOPO_LAYOUT_H

#include <vector>

#include "topo/topology.h"

namespace topo {

/// A switch position on the machine-room floor (rack grid coordinates).
struct RackPosition {
  int row = 0;
  int column = 0;
};

/// Floor layout: a position per switch.
struct FloorLayout {
  std::vector<RackPosition> position;

  [[nodiscard]] int num_switches() const {
    return static_cast<int>(position.size());
  }
};

/// Lays out `num_switches` switches row-major on a grid `columns` wide,
/// `per_rack` switches per rack position.
[[nodiscard]] FloorLayout grid_layout(int num_switches, int columns,
                                      int per_rack = 1);

/// Lays out a two-cluster network with cluster A's switches (ids
/// [0, cluster_a_size)) on the left half of the floor and cluster B on the
/// right — the physical arrangement the paper's clustering argument
/// envisions.
[[nodiscard]] FloorLayout two_zone_layout(int cluster_a_size,
                                          int cluster_b_size, int columns);

/// Manhattan cable length of one edge under the layout (rack pitch = 1).
[[nodiscard]] double cable_length(const FloorLayout& layout, NodeId u,
                                  NodeId v);

/// Total and mean cable length of all switch-switch links.
struct CableStats {
  double total_length = 0.0;
  double mean_length = 0.0;
  double max_length = 0.0;
};

[[nodiscard]] CableStats cable_stats(const Graph& graph,
                                     const FloorLayout& layout);

}  // namespace topo

#endif  // TOPODESIGN_TOPO_LAYOUT_H
