// High-level throughput evaluation of built topologies.
//
// Ties the generators, traffic matrices, and the concurrent-flow solver
// together: build a topology, pick a workload, get the paper's throughput
// metric (max-min per-flow rate under optimal fluid routing) plus the §6.1
// decomposition metrics.
#ifndef TOPODESIGN_CORE_EVALUATE_H
#define TOPODESIGN_CORE_EVALUATE_H

#include <cstdint>
#include <string>

#include "core/failure.h"
#include "flow/concurrent_flow.h"
#include "sim/network.h"
#include "topo/topology.h"
#include "traffic/workload.h"

namespace topo {

/// Workload families from the paper's evaluation.
enum class TrafficKind {
  kPermutation,  ///< Server-level random permutation (the default workload).
  kAllToAll,     ///< Every server pair (aggregated switch-level).
  kChunky,       ///< x% chunky: ToR-level permutation over a subset.
  kHotspot,      ///< Permutation with a hot subset at elevated demand.
  kStride,       ///< Deterministic stride-k pairing.
};

/// Finite-flow workload riding on the packet simulator: Poisson arrivals
/// of flows sized by a named empirical CDF (traffic/workload.h), run as
/// single-subflow finite transfers, reported as flow-completion-time
/// percentiles and aggregate goodput (the fct_* ThroughputResult fields).
/// When enabled it REPLACES the bulk permutation co-sim: the workload is
/// drawn from the arrival process, independent of the fluid matrix.
struct FctWorkloadOptions {
  bool enabled = false;
  std::string cdf = "websearch";  ///< A name from flow_size_cdfs().
  /// When non-empty, a user-supplied CDF table (spec "cdf_file" /
  /// "cdf_table") used instead of the named registry entry; `cdf` is then
  /// just a display name ("custom"). Cache identity serializes the parsed
  /// table, never the file path, so two paths with identical contents
  /// share cells.
  std::vector<CdfPoint> custom_cdf;
  double load = 0.5;              ///< Offered fraction of line rate, (0, 1].
  /// Arrival pattern: "uniform" (the default open-loop Poisson process
  /// with uniform endpoints — byte-identical to the historical stream) or
  /// "incast", where each arrival event is a many-to-one burst of fan_in
  /// flows from distinct random sources to one random victim server.
  std::string pattern = "uniform";
  /// Flows per incast burst ("incast" pattern only); >= 2.
  int fan_in = 8;
};

/// Optional packet-level co-simulation riding on the fluid evaluation.
/// When enabled (and fct is not), every call also runs the MPTCP packet
/// simulator (sim/network.h) over the SAME drawn matrix the flow solver
/// routed — the per-run flow-vs-packet comparison of Fig. 13, available
/// to any scenario. Permutation or stride traffic only: the simulator
/// models server-to-server unit-demand bulk flows, not aggregated
/// commodity matrices.
struct PacketSimOptions {
  bool enabled = false;
  sim::SimParams params;
  FctWorkloadOptions fct;
};

/// Evaluation knobs.
struct EvalOptions {
  FlowOptions flow;
  TrafficKind traffic = TrafficKind::kPermutation;
  /// Fraction of ToRs engaged in the chunky pattern (TrafficKind::kChunky).
  double chunky_fraction = 1.0;
  /// Fraction of servers in the hot subset (TrafficKind::kHotspot).
  double hot_fraction = 0.1;
  /// Demand multiplier for hot-to-hot flows (TrafficKind::kHotspot).
  double hot_multiplier = 4.0;
  /// Pairing stride: server i sends to (i + stride) mod S
  /// (TrafficKind::kStride). Must not be a multiple of the server count.
  int stride = 1;
  /// Seeded degradation applied to the topology before traffic generation
  /// (any composition of the failure components in core/failure.h). The
  /// default (inactive) spec is an exact no-op. When active, the failure
  /// draw is seeded deterministically from the traffic seed, so a run's
  /// failed sets are as reproducible as its workload; workloads are
  /// generated over the SURVIVING servers, and a degradation that leaves
  /// fewer than two servers (or, for chunky traffic, fewer than two
  /// server-hosting switches) yields an infeasible zero-throughput result
  /// rather than an exception.
  FailureSpec failure;
  /// Packet-level co-simulation of the same drawn permutation (fills the
  /// packet_* fields of ThroughputResult). Runs on the degraded topology
  /// when a failure spec is active, like the fluid evaluation.
  PacketSimOptions packet_sim;
};

/// Generates the requested workload over the topology's servers (seeded by
/// `traffic_seed`) and computes its max concurrent flow. The returned
/// lambda is the paper's throughput: the per-unit-demand rate of the worst
/// flow under optimal routing; lambda >= 1 means full line-rate for every
/// server in a permutation.
///
/// `targeted_ranking`, when non-null, is the memoized
/// targeted_link_ranking of `topology.graph` (see apply_failures):
/// callers that evaluate the same topology many times with an active
/// targeted-failure component pass it to skip the per-call O(V*E)
/// recomputation; the result is identical either way.
[[nodiscard]] ThroughputResult evaluate_throughput(
    const BuiltTopology& topology, const EvalOptions& options,
    std::uint64_t traffic_seed,
    const std::vector<EdgeId>* targeted_ranking = nullptr);

/// Evaluates one topology under several independently seeded workloads,
/// running the trials concurrently on the shared pool. Results are
/// returned in seed order and are identical to calling
/// evaluate_throughput once per seed.
[[nodiscard]] std::vector<ThroughputResult> evaluate_throughput_trials(
    const BuiltTopology& topology, const EvalOptions& options,
    const std::vector<std::uint64_t>& traffic_seeds);

}  // namespace topo

#endif  // TOPODESIGN_CORE_EVALUATE_H
