// High-level throughput evaluation of built topologies.
//
// Ties the generators, traffic matrices, and the concurrent-flow solver
// together: build a topology, pick a workload, get the paper's throughput
// metric (max-min per-flow rate under optimal fluid routing) plus the §6.1
// decomposition metrics.
#ifndef TOPODESIGN_CORE_EVALUATE_H
#define TOPODESIGN_CORE_EVALUATE_H

#include <cstdint>

#include "core/failure.h"
#include "flow/concurrent_flow.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace topo {

/// Workload families from the paper's evaluation.
enum class TrafficKind {
  kPermutation,  ///< Server-level random permutation (the default workload).
  kAllToAll,     ///< Every server pair (aggregated switch-level).
  kChunky,       ///< x% chunky: ToR-level permutation over a subset.
};

/// Optional packet-level co-simulation riding on the fluid evaluation.
/// When enabled, every call also runs the MPTCP packet simulator
/// (sim/network.h) over the SAME drawn permutation the flow solver
/// routed — the per-run flow-vs-packet comparison of Fig. 13, available
/// to any scenario. Permutation traffic only: the simulator models
/// server-to-server bulk flows, not aggregated commodity matrices.
struct PacketSimOptions {
  bool enabled = false;
  sim::SimParams params;
};

/// Evaluation knobs.
struct EvalOptions {
  FlowOptions flow;
  TrafficKind traffic = TrafficKind::kPermutation;
  /// Fraction of ToRs engaged in the chunky pattern (TrafficKind::kChunky).
  double chunky_fraction = 1.0;
  /// Seeded degradation applied to the topology before traffic generation
  /// (any composition of the failure components in core/failure.h). The
  /// default (inactive) spec is an exact no-op. When active, the failure
  /// draw is seeded deterministically from the traffic seed, so a run's
  /// failed sets are as reproducible as its workload; workloads are
  /// generated over the SURVIVING servers, and a degradation that leaves
  /// fewer than two servers (or, for chunky traffic, fewer than two
  /// server-hosting switches) yields an infeasible zero-throughput result
  /// rather than an exception.
  FailureSpec failure;
  /// Packet-level co-simulation of the same drawn permutation (fills the
  /// packet_* fields of ThroughputResult). Runs on the degraded topology
  /// when a failure spec is active, like the fluid evaluation.
  PacketSimOptions packet_sim;
};

/// Generates the requested workload over the topology's servers (seeded by
/// `traffic_seed`) and computes its max concurrent flow. The returned
/// lambda is the paper's throughput: the per-unit-demand rate of the worst
/// flow under optimal routing; lambda >= 1 means full line-rate for every
/// server in a permutation.
///
/// `targeted_ranking`, when non-null, is the memoized
/// targeted_link_ranking of `topology.graph` (see apply_failures):
/// callers that evaluate the same topology many times with an active
/// targeted-failure component pass it to skip the per-call O(V*E)
/// recomputation; the result is identical either way.
[[nodiscard]] ThroughputResult evaluate_throughput(
    const BuiltTopology& topology, const EvalOptions& options,
    std::uint64_t traffic_seed,
    const std::vector<EdgeId>* targeted_ranking = nullptr);

/// Evaluates one topology under several independently seeded workloads,
/// running the trials concurrently on the shared pool. Results are
/// returned in seed order and are identical to calling
/// evaluate_throughput once per seed.
[[nodiscard]] std::vector<ThroughputResult> evaluate_throughput_trials(
    const BuiltTopology& topology, const EvalOptions& options,
    const std::vector<std::uint64_t>& traffic_seeds);

}  // namespace topo

#endif  // TOPODESIGN_CORE_EVALUATE_H
