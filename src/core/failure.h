// Seeded failure models applied to built topologies.
//
// The paper evaluates pristine networks; real deployments lose links and
// switches, and the successor work ("Measuring and Understanding Throughput
// of Network Topologies") sweeps failure fractions as a first-class axis.
// FailureModel captures the three degradations the scenario engine sweeps:
// a fraction of failed links, a fraction of failed switches (all incident
// links and attached servers go down with the switch), and a uniform
// capacity derating of the surviving links.
//
// Determinism contract: the failed sets are a pure function of (topology,
// model, seed). For a fixed seed, raising a failure fraction fails a
// SUPERSET of the previously failed elements (the shuffled order is drawn
// once and the failure count is a prefix of it). With a fixed workload,
// nested link-failure sets make the true optimum monotone non-increasing
// in the link fraction (asserted against the exact LP in
// failure_injection_test). Observed curves are only approximately
// monotone: the FPTAS lambda carries epsilon slack, and switch failures
// change the surviving server set, so workloads drawn over it differ
// between fractions.
#ifndef TOPODESIGN_CORE_FAILURE_H
#define TOPODESIGN_CORE_FAILURE_H

#include <cstdint>
#include <vector>

#include "topo/topology.h"

namespace topo {

/// Post-build degradation applied before traffic generation.
struct FailureModel {
  /// Fraction of links that fail outright, in [0, 1].
  double link_failure_fraction = 0.0;
  /// Fraction of switches that fail (incident links die, attached servers
  /// drop out of the workload), in [0, 1].
  double switch_failure_fraction = 0.0;
  /// Capacity multiplier applied to every surviving link, in (0, 1].
  double capacity_factor = 1.0;

  /// True when the model changes anything (the all-default model is an
  /// exact no-op and evaluation skips the degradation pass entirely).
  [[nodiscard]] bool active() const {
    return link_failure_fraction > 0.0 || switch_failure_fraction > 0.0 ||
           capacity_factor != 1.0;
  }
};

/// The concrete failed sets drawn for one (topology, model, seed) triple.
struct FailureSample {
  std::vector<EdgeId> failed_links;      ///< Ids into the original graph, ascending.
  std::vector<NodeId> failed_switches;   ///< Ascending.
};

/// Returns a degraded copy of `topology`: failed switches lose all
/// incident links and their servers; failed links disappear; surviving
/// links keep capacity * capacity_factor. Node ids are preserved (failed
/// switches remain as isolated, serverless nodes), so node_class and
/// downstream bookkeeping stay valid. Deterministic in (topology, model,
/// seed); pass `sample` to observe the drawn failed sets.
[[nodiscard]] BuiltTopology apply_failures(const BuiltTopology& topology,
                                           const FailureModel& model,
                                           std::uint64_t seed,
                                           FailureSample* sample = nullptr);

}  // namespace topo

#endif  // TOPODESIGN_CORE_FAILURE_H
