// Pluggable seeded failure models applied to built topologies.
//
// The paper evaluates pristine networks; real deployments lose links and
// switches, and the successor work ("Measuring and Understanding Throughput
// of Network Topologies") sweeps failure fractions as a first-class axis,
// while topology surveys compare families on how they degrade under
// correlated and targeted faults. FailureSpec composes four typed failure
// components plus a capacity derating; each component is independently
// seeded (or deterministic), so enabling one never perturbs another's draw:
//
//   UniformFailure    — the legacy model: independent seeded shuffles fail
//                       a fraction of links and a fraction of switches.
//   CorrelatedFailure — blast-radius faults: a seeded fraction of switches
//                       fail as epicenters, and every switch sharing an
//                       epicenter's BuiltTopology::node_class group fails
//                       with a per-peer probability (racks/pods go down
//                       together, not independently).
//   PerClassFailure   — per-class rates keyed by class name (e.g. ToR vs
//                       aggregation vs core fail at different rates), each
//                       class drawing its own seeded prefix shuffle.
//   TargetedFailure   — adversarial cuts: the top-k links of a
//                       deterministic edge-betweenness ranking fail,
//                       modeling worst-case rather than average-case
//                       degradation. Seed-independent by construction.
//
// Determinism contract (every component): the failed sets are a pure
// function of (topology, spec, seed). For a fixed seed, raising any
// component's intensity fails a SUPERSET of the previously failed elements:
// uniform and per-class draw a full shuffled order once and fail a prefix;
// correlated keys each epicenter's peer coin-flips to the epicenter's node
// id (more epicenters only add victims) and compares a fixed per-peer
// uniform against the probability (higher probability only adds victims);
// targeted cuts a prefix of a fixed ranking. With a fixed workload, nested
// link-failure sets make the true optimum monotone non-increasing in the
// intensity (asserted against the exact LP in failure_injection_test).
// Observed curves are only approximately monotone: the FPTAS lambda
// carries epsilon slack, and switch failures change the surviving server
// set, so workloads drawn over it differ between intensities.
#ifndef TOPODESIGN_CORE_FAILURE_H
#define TOPODESIGN_CORE_FAILURE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace topo {

/// Uniform random draws: independent seeded shuffles fail a fraction of
/// links and a fraction of switches (all incident links and attached
/// servers go down with a switch).
struct UniformFailure {
  double link_fraction = 0.0;    ///< Fraction of links failing, in [0, 1].
  double switch_fraction = 0.0;  ///< Fraction of switches failing, in [0, 1].

  [[nodiscard]] bool active() const {
    return link_fraction > 0.0 || switch_fraction > 0.0;
  }
};

/// Correlated blast-radius failures. A seeded fraction of switches fail as
/// epicenters; every other switch in an epicenter's node_class group then
/// fails independently with `peer_probability`. Grouping is by
/// BuiltTopology::node_class (the generator's rack/pod/tier labeling), so
/// an epicenter ToR takes fellow ToRs down with it, not the core.
struct CorrelatedFailure {
  double epicenter_fraction = 0.0;  ///< Fraction of switches drawn as epicenters, in [0, 1].
  double peer_probability = 0.0;    ///< Per-peer kill probability, in [0, 1].

  [[nodiscard]] bool active() const { return epicenter_fraction > 0.0; }
};

/// Per-class failure rates: each named class (BuiltTopology::class_names)
/// fails the given fraction of its switches via its own seeded prefix
/// shuffle. Naming a class the topology does not define raises
/// InvalidArgument when the degradation pass runs (fail loudly, not
/// silently sweep nothing) — which is why a non-empty map counts as
/// active even at all-zero rates: a typo'd class name must error on the
/// first cell of a sweep, not only once its swept rate turns positive.
struct PerClassFailure {
  std::map<std::string, double> switch_fraction;  ///< class name -> [0, 1].

  [[nodiscard]] bool active() const { return !switch_fraction.empty(); }
};

/// Targeted adversarial cuts: the top-`link_cuts` links of the
/// deterministic ranking computed by targeted_link_ranking fail.
/// Seed-independent; k larger than the link count cuts every link.
struct TargetedFailure {
  int link_cuts = 0;  ///< Number of top-ranked links to cut, >= 0.

  [[nodiscard]] bool active() const { return link_cuts > 0; }
};

/// Post-build degradation applied before traffic generation: the union of
/// the four components' failed sets, plus a capacity derating of the
/// surviving links. The all-default spec is an exact no-op and evaluation
/// skips the degradation pass entirely.
struct FailureSpec {
  UniformFailure uniform;
  CorrelatedFailure correlated;
  PerClassFailure per_class;
  TargetedFailure targeted;
  /// Capacity multiplier applied to every surviving link, in (0, 1].
  double capacity_factor = 1.0;

  /// True when the spec changes anything. Validation rejects
  /// capacity_factor outside (0, 1], so "derating requested" is exactly
  /// capacity_factor < 1.0 — no exact floating-point equality involved.
  [[nodiscard]] bool active() const {
    return uniform.active() || correlated.active() || per_class.active() ||
           targeted.active() || capacity_factor < 1.0;
  }
};

/// The concrete failed sets drawn for one (topology, spec, seed) triple.
/// failed_links / failed_switches are the unions every component
/// contributed to; the remaining fields attribute failures to the
/// components that drew them (a switch may appear in several).
struct FailureSample {
  std::vector<EdgeId> failed_links;     ///< Ids into the original graph, ascending.
  std::vector<NodeId> failed_switches;  ///< Ascending.
  std::vector<NodeId> epicenters;       ///< Correlated epicenters, ascending.
  std::vector<NodeId> blast_victims;    ///< Correlated peer kills (excl. epicenters), ascending.
  std::vector<EdgeId> targeted_links;   ///< Targeted cuts, ascending.
};

/// Range-checks every component field (fractions/probabilities in [0, 1],
/// k >= 0, capacity_factor in (0, 1]), raising InvalidArgument naming the
/// offending parameter. Called by apply_failures, and by the evaluation
/// layer BEFORE the active() gate — so an invalid field (e.g. a
/// capacity_factor above 1.0) fails loudly even when nothing else would
/// have triggered the degradation pass. Class names are checked against
/// the topology in apply_failures, not here.
void validate_failure_spec(const FailureSpec& spec);

/// Deterministic link ranking for targeted cuts: edges sorted by
/// unweighted edge betweenness (Brandes accumulation over BFS shortest
/// paths), descending, ties broken by ascending edge id. A pure function
/// of the graph — no seed enters — so adversarial cuts are reproducible
/// across runs and machines.
[[nodiscard]] std::vector<EdgeId> targeted_link_ranking(const Graph& graph);

/// Returns a degraded copy of `topology`: failed switches lose all
/// incident links and their servers; failed links disappear; surviving
/// links keep capacity * capacity_factor. Node ids are preserved (failed
/// switches remain as isolated, serverless nodes), so node_class and
/// downstream bookkeeping stay valid. Deterministic in (topology, spec,
/// seed); pass `sample` to observe the drawn failed sets. With only the
/// uniform component and capacity_factor set, the draw and the degraded
/// topology are identical to the historical 3-field FailureModel's.
///
/// `targeted_ranking`, when non-null, must be targeted_link_ranking of
/// THIS topology's graph; the targeted component then cuts its prefix
/// instead of recomputing the O(V*E) ranking. Callers that degrade one
/// topology many times (sweeps over k, multi-trial evaluation) compute
/// the ranking once and pass it here — the result is identical either
/// way, by the ranking's purity in the graph.
[[nodiscard]] BuiltTopology apply_failures(
    const BuiltTopology& topology, const FailureSpec& spec,
    std::uint64_t seed, FailureSample* sample = nullptr,
    const std::vector<EdgeId>* targeted_ranking = nullptr);

}  // namespace topo

#endif  // TOPODESIGN_CORE_FAILURE_H
