// Multi-seed experiment running and the Fig-12 full-throughput search.
//
// The paper averages most data points over 20 runs (new random topology
// and new random traffic each run) and reports ~1% standard deviations.
// ExperimentRunner reproduces that loop with deterministic seed fan-out.
#ifndef TOPODESIGN_CORE_EXPERIMENT_H
#define TOPODESIGN_CORE_EXPERIMENT_H

#include <cstdint>
#include <functional>
#include <optional>

#include "core/evaluate.h"
#include "util/stats.h"

namespace topo {

/// Builds a topology for run `i` from a derived seed.
using TopologyBuilder = std::function<BuiltTopology(std::uint64_t seed)>;

/// Aggregated metrics over the runs of one experimental data point.
struct ExperimentStats {
  Summary lambda;             ///< Throughput (per-unit-demand min flow).
  Summary utilization;        ///< U.
  Summary inverse_spl;        ///< 1 / demand-weighted shortest path length.
  Summary inverse_stretch;    ///< 1 / AS.
  Summary dual_bound;         ///< Certified upper bounds.
  int infeasible_runs = 0;    ///< Runs whose topology disconnected traffic.
  // Packet co-simulation metrics (EvalOptions::packet_sim), summarized
  // over the runs that executed a packet simulation; count == 0 and
  // zeroed summaries when no run did.
  Summary packet_mean;        ///< Mean normalized goodput per run.
  Summary packet_p05;         ///< 5th-percentile normalized goodput per run.
  int packet_sim_runs = 0;    ///< Runs that ran the packet co-simulation.
  // Finite-flow workload metrics (EvalOptions::packet_sim.fct), summarized
  // over the runs that executed the FCT workload; count == 0 and zeroed
  // summaries when no run did.
  Summary fct_p50;            ///< Median flow-completion time per run (ns).
  Summary fct_p95;            ///< 95th-percentile FCT per run (ns).
  Summary fct_p99;            ///< 99th-percentile FCT per run (ns).
  Summary fct_goodput;        ///< Aggregate goodput fraction per run.
  Summary fct_slowdown_p50;   ///< Median FCT slowdown (FCT / ideal FCT).
  Summary fct_slowdown_p99;   ///< 99th-percentile FCT slowdown per run.
  int fct_runs = 0;           ///< Runs that ran the FCT workload.
};

/// Reduces per-run results (in run order) to experiment statistics —
/// the reduction run_experiment applies, exported so the scenario sweep
/// runner summarizes its cells identically. Infeasible runs contribute
/// zero to every summary and are counted in infeasible_runs.
[[nodiscard]] ExperimentStats summarize_runs(
    const std::vector<ThroughputResult>& results);

/// Runs `runs` seeded repetitions of (build topology, draw workload,
/// solve) and summarizes. Construction failures (rare, extreme parameter
/// corners) count as infeasible runs with lambda 0, matching the paper's
/// treatment of disconnected/bottlenecked corners.
///
/// Runs execute concurrently on the shared pool (deterministically: seeds
/// are derived per run and statistics reduced in run order), so `builder`
/// must be safe to call from multiple threads — builders that only read
/// captured state and derive everything from the seed qualify.
[[nodiscard]] ExperimentStats run_experiment(const TopologyBuilder& builder,
                                             const EvalOptions& options,
                                             int runs,
                                             std::uint64_t master_seed);

/// Configuration of the Fig-12 binary search for the largest network (in
/// ToRs) still delivering full throughput.
struct FullThroughputSearch {
  /// Builds the topology with a given ToR count for run seed `seed`.
  std::function<BuiltTopology(int tors, std::uint64_t seed)> builder;
  int min_tors = 1;
  int max_tors = 1;
  /// Full throughput declared when the certified lambda of EVERY run is at
  /// least this threshold (the FPTAS reports a lower bound, so the same
  /// threshold applied to two designs compares them fairly).
  double threshold = 0.95;
  int runs = 3;
  EvalOptions options;
  /// Optional probe memo (search/search_space.h wires these to the result
  /// cache): before evaluating a ToR count, probe_load may return its
  /// remembered verdict; after evaluating one, probe_store records it.
  /// Unset hooks change nothing. Within one invocation each distinct ToR
  /// count is evaluated at most once regardless (the bounds-probing order
  /// can revisit a count, e.g. min_tors == max_tors probes it as both
  /// ends), so hooks only add cross-invocation persistence.
  std::function<std::optional<bool>(int tors)> probe_load;
  std::function<void(int tors, bool ok)> probe_store;
};

/// Binary-searches the largest ToR count in [min_tors, max_tors] whose
/// every run meets the threshold. Returns min_tors - 1 if even min_tors
/// fails.
[[nodiscard]] int max_tors_at_full_throughput(const FullThroughputSearch& search,
                                              std::uint64_t master_seed);

}  // namespace topo

#endif  // TOPODESIGN_CORE_EXPERIMENT_H
