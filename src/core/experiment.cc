#include "core/experiment.h"

#include <map>
#include <vector>

#include "util/error.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace topo {
namespace {

// One (topology, traffic) point of an experiment; exceptions from extreme
// parameter corners degrade to an infeasible (zero) result.
ThroughputResult run_one(const TopologyBuilder& builder,
                         const EvalOptions& options, std::uint64_t master_seed,
                         int run_index) {
  const std::uint64_t topo_seed =
      Rng::derive_seed(master_seed, 2 * static_cast<std::uint64_t>(run_index));
  const std::uint64_t traffic_seed = Rng::derive_seed(
      master_seed, 2 * static_cast<std::uint64_t>(run_index) + 1);
  try {
    const BuiltTopology topology = builder(topo_seed);
    return evaluate_throughput(topology, options, traffic_seed);
  } catch (const ConstructionFailure&) {
    return ThroughputResult{};  // counts as an infeasible (zero) run
  }
}

}  // namespace

ExperimentStats summarize_runs(const std::vector<ThroughputResult>& results) {
  std::vector<double> lambdas;
  std::vector<double> utils;
  std::vector<double> inv_spls;
  std::vector<double> inv_stretches;
  std::vector<double> duals;
  std::vector<double> packet_means;
  std::vector<double> packet_p05s;
  std::vector<double> fct_p50s;
  std::vector<double> fct_p95s;
  std::vector<double> fct_p99s;
  std::vector<double> fct_goodputs;
  std::vector<double> fct_sd_p50s;
  std::vector<double> fct_sd_p99s;
  int infeasible = 0;
  for (const ThroughputResult& result : results) {
    lambdas.push_back(result.lambda);
    duals.push_back(result.dual_bound);
    if (result.packet_sim_run) {
      packet_means.push_back(result.packet_mean_normalized);
      packet_p05s.push_back(result.packet_p05_normalized);
    }
    if (result.fct_run) {
      fct_p50s.push_back(result.fct_p50_ns);
      fct_p95s.push_back(result.fct_p95_ns);
      fct_p99s.push_back(result.fct_p99_ns);
      fct_goodputs.push_back(result.fct_goodput);
      fct_sd_p50s.push_back(result.fct_slowdown_p50);
      fct_sd_p99s.push_back(result.fct_slowdown_p99);
    }
    if (!result.feasible) {
      ++infeasible;
      utils.push_back(0.0);
      inv_spls.push_back(0.0);
      inv_stretches.push_back(0.0);
      continue;
    }
    utils.push_back(result.utilization);
    inv_spls.push_back(result.demand_weighted_spl > 0.0
                           ? 1.0 / result.demand_weighted_spl
                           : 0.0);
    inv_stretches.push_back(result.stretch > 0.0 ? 1.0 / result.stretch : 0.0);
  }

  ExperimentStats stats;
  stats.lambda = summarize(lambdas);
  stats.utilization = summarize(utils);
  stats.inverse_spl = summarize(inv_spls);
  stats.inverse_stretch = summarize(inv_stretches);
  stats.dual_bound = summarize(duals);
  stats.infeasible_runs = infeasible;
  stats.packet_mean = summarize(packet_means);
  stats.packet_p05 = summarize(packet_p05s);
  stats.packet_sim_runs = static_cast<int>(packet_means.size());
  stats.fct_p50 = summarize(fct_p50s);
  stats.fct_p95 = summarize(fct_p95s);
  stats.fct_p99 = summarize(fct_p99s);
  stats.fct_goodput = summarize(fct_goodputs);
  stats.fct_slowdown_p50 = summarize(fct_sd_p50s);
  stats.fct_slowdown_p99 = summarize(fct_sd_p99s);
  stats.fct_runs = static_cast<int>(fct_p50s.size());
  return stats;
}

ExperimentStats run_experiment(const TopologyBuilder& builder,
                               const EvalOptions& options, int runs,
                               std::uint64_t master_seed) {
  require(runs >= 1, "run_experiment requires runs >= 1");

  // Runs are seeded independently, so they execute in parallel; results
  // land in per-run slots and are summarized serially in run order, which
  // keeps the statistics identical for any thread count.
  std::vector<ThroughputResult> results(static_cast<std::size_t>(runs));
  parallel_for(runs, [&](int i) {
    results[static_cast<std::size_t>(i)] =
        run_one(builder, options, master_seed, i);
  });
  return summarize_runs(results);
}

namespace {

bool run_meets_threshold(const FullThroughputSearch& search, int tors,
                         std::uint64_t master_seed, int run_index) {
  const std::uint64_t topo_seed =
      Rng::derive_seed(master_seed, 2 * static_cast<std::uint64_t>(run_index));
  const std::uint64_t traffic_seed = Rng::derive_seed(
      master_seed, 2 * static_cast<std::uint64_t>(run_index) + 1);
  try {
    const BuiltTopology topology = search.builder(tors, topo_seed);
    const ThroughputResult result =
        evaluate_throughput(topology, search.options, traffic_seed);
    return result.feasible && result.lambda >= search.threshold;
  } catch (const ConstructionFailure&) {
    return false;
  } catch (const InvalidArgument&) {
    return false;  // ToR count beyond what the pool can host
  }
}

bool supports_full_throughput(const FullThroughputSearch& search, int tors,
                              std::uint64_t master_seed) {
  if (parallel_slots() == 1) {
    // Serial machines keep the early exit on the first failing run.
    for (int i = 0; i < search.runs; ++i) {
      if (!run_meets_threshold(search, tors, master_seed, i)) return false;
    }
    return true;
  }
  std::vector<char> ok(static_cast<std::size_t>(search.runs), 0);
  parallel_for(search.runs, [&](int i) {
    ok[static_cast<std::size_t>(i)] =
        run_meets_threshold(search, tors, master_seed, i) ? 1 : 0;
  });
  for (char good : ok) {
    if (!good) return false;
  }
  return true;
}

}  // namespace

int max_tors_at_full_throughput(const FullThroughputSearch& search,
                                std::uint64_t master_seed) {
  require(static_cast<bool>(search.builder), "search requires a builder");
  require(search.min_tors >= 1 && search.max_tors >= search.min_tors,
          "invalid search range");
  require(search.runs >= 1, "search requires runs >= 1");

  // Memoize per ToR count: the probing order below can revisit a count
  // (min_tors == max_tors probes it as both the floor and the ceiling),
  // and the optional hooks let callers persist verdicts across
  // invocations through the result cache.
  std::map<int, bool> memo;
  const auto probe = [&](int tors) {
    const auto it = memo.find(tors);
    if (it != memo.end()) return it->second;
    if (search.probe_load) {
      if (const std::optional<bool> cached = search.probe_load(tors)) {
        memo[tors] = *cached;
        return *cached;
      }
    }
    const bool ok = supports_full_throughput(search, tors, master_seed);
    memo[tors] = ok;
    if (search.probe_store) search.probe_store(tors, ok);
    return ok;
  };

  if (!probe(search.min_tors)) {
    return search.min_tors - 1;
  }
  int lo = search.min_tors;  // known good
  int hi = search.max_tors;  // candidate upper end
  if (probe(hi)) return hi;
  // Invariant: lo good, hi bad.
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace topo
