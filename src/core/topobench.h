// Umbrella header: the library's public API in one include.
//
//   #include "core/topobench.h"
//
// brings in the graph substrate, every topology generator, the traffic
// matrices, both throughput solvers (FPTAS and exact LP), the analytical
// bounds, the packet-level simulator, and the experiment helpers.
#ifndef TOPODESIGN_CORE_TOPOBENCH_H
#define TOPODESIGN_CORE_TOPOBENCH_H

#include "bounds/bounds.h"
#include "core/evaluate.h"
#include "core/experiment.h"
#include "flow/bottleneck.h"
#include "flow/concurrent_flow.h"
#include "graph/algorithms.h"
#include "graph/graph.h"
#include "graph/maxflow.h"
#include "graph/shortest_path.h"
#include "lp/mcf_lp.h"
#include "lp/simplex.h"
#include "sim/network.h"
#include "topo/clustered_random.h"
#include "topo/degree_sequence.h"
#include "topo/fat_tree.h"
#include "topo/het_random.h"
#include "topo/power_law.h"
#include "topo/random_regular.h"
#include "topo/structured.h"
#include "topo/topology.h"
#include "topo/vl2.h"
#include "traffic/traffic.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

#endif  // TOPODESIGN_CORE_TOPOBENCH_H
