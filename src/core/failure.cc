#include "core/failure.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/error.h"
#include "util/rng.h"

namespace topo {
namespace {

// Seed salts separating each component's stream from the legacy uniform
// draw (which consumes the base stream exactly as the historical 3-field
// model did, keeping old results byte-identical) and from each other.
constexpr std::uint64_t kCorrelatedEpicenterSalt = 0xB1A57;    // "blast"
constexpr std::uint64_t kCorrelatedPeerSalt = 0xB1A57F00D;
constexpr std::uint64_t kPerClassSalt = 0xC1A55;               // "class"

// First llround(fraction * n) elements of a seeded shuffle of [0, n).
// Drawing the full order before truncating gives the superset property:
// for the same rng stream, a larger fraction fails a superset.
std::vector<int> failed_prefix(int n, double fraction, Rng& rng) {
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  const int count = static_cast<int>(std::llround(fraction * n));
  order.resize(static_cast<std::size_t>(std::min(count, n)));
  return order;
}

// Same prefix draw over an explicit member list (per-class draws).
std::vector<int> failed_member_prefix(std::vector<int> members,
                                      double fraction, Rng& rng) {
  rng.shuffle(members);
  const int count = static_cast<int>(
      std::llround(fraction * static_cast<double>(members.size())));
  members.resize(static_cast<std::size_t>(
      std::min<int>(count, static_cast<int>(members.size()))));
  return members;
}

}  // namespace

void validate_failure_spec(const FailureSpec& spec) {
  require(spec.uniform.link_fraction >= 0.0 &&
              spec.uniform.link_fraction <= 1.0,
          "link_failure_fraction must be in [0, 1]");
  require(spec.uniform.switch_fraction >= 0.0 &&
              spec.uniform.switch_fraction <= 1.0,
          "switch_failure_fraction must be in [0, 1]");
  require(spec.correlated.epicenter_fraction >= 0.0 &&
              spec.correlated.epicenter_fraction <= 1.0,
          "blast_switch_fraction must be in [0, 1]");
  require(spec.correlated.peer_probability >= 0.0 &&
              spec.correlated.peer_probability <= 1.0,
          "blast_probability must be in [0, 1]");
  for (const auto& [name, fraction] : spec.per_class.switch_fraction) {
    require(!name.empty(), "per-class failure: class name must be non-empty");
    require(fraction >= 0.0 && fraction <= 1.0,
            "class_failure_fraction:" + name + " must be in [0, 1]");
  }
  require(spec.targeted.link_cuts >= 0,
          "targeted_link_cuts must be >= 0");
  require(spec.capacity_factor > 0.0 && spec.capacity_factor <= 1.0,
          "capacity_factor must be in (0, 1]");
}

namespace {

// Correlated blast-radius kills. Epicenters are a seeded prefix shuffle of
// all switches; each epicenter then rolls one fixed uniform per same-class
// peer (ascending id) from a stream keyed to the EPICENTER'S NODE ID — so
// adding epicenters (a larger epicenter_fraction) never reshuffles the
// victims of existing ones, and raising peer_probability only converts
// more of the same fixed rolls into kills. Both directions nest.
void draw_correlated(const BuiltTopology& topology,
                     const CorrelatedFailure& spec, std::uint64_t seed,
                     std::vector<char>& switch_dead, FailureSample* sample) {
  const int num_nodes = topology.graph.num_nodes();
  Rng epicenter_rng(Rng::derive_seed(seed, kCorrelatedEpicenterSalt));
  std::vector<int> epicenters =
      failed_prefix(num_nodes, spec.epicenter_fraction, epicenter_rng);
  std::vector<char> is_epicenter(static_cast<std::size_t>(num_nodes), 0);
  for (int e : epicenters) is_epicenter[static_cast<std::size_t>(e)] = 1;

  std::vector<int> victims;
  for (int e : epicenters) {
    switch_dead[static_cast<std::size_t>(e)] = 1;
    Rng peer_rng(Rng::derive_seed(Rng::derive_seed(seed, kCorrelatedPeerSalt),
                                  static_cast<std::uint64_t>(e)));
    const int klass = topology.class_of(e);
    for (NodeId peer = 0; peer < num_nodes; ++peer) {
      if (peer == e || topology.class_of(peer) != klass) continue;
      // One roll per (epicenter, peer) regardless of the probability, so
      // the rolls are a fixed function of (topology, seed, epicenter).
      const double roll = peer_rng.uniform();
      if (roll < spec.peer_probability) {
        switch_dead[static_cast<std::size_t>(peer)] = 1;
        if (!is_epicenter[static_cast<std::size_t>(peer)]) {
          victims.push_back(peer);
        }
      }
    }
  }
  if (sample != nullptr) {
    std::sort(epicenters.begin(), epicenters.end());
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
    sample->epicenters.assign(epicenters.begin(), epicenters.end());
    sample->blast_victims.assign(victims.begin(), victims.end());
  }
}

// Per-class prefix draws: class index c gets its own derived stream, so
// sweeping one class's rate never perturbs another's draw.
void draw_per_class(const BuiltTopology& topology, const PerClassFailure& spec,
                    std::uint64_t seed, std::vector<char>& switch_dead) {
  const int num_nodes = topology.graph.num_nodes();
  for (const auto& [name, fraction] : spec.switch_fraction) {
    const auto it = std::find(topology.class_names.begin(),
                              topology.class_names.end(), name);
    if (it == topology.class_names.end()) {
      std::string known;
      for (const std::string& klass : topology.class_names) {
        if (!known.empty()) known += ", ";
        known += klass;
      }
      throw InvalidArgument("per-class failure: topology has no class \"" +
                            name + "\" (classes: " + known + ")");
    }
    const int klass =
        static_cast<int>(it - topology.class_names.begin());
    std::vector<int> members;
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (topology.class_of(n) == klass) members.push_back(n);
    }
    Rng class_rng(Rng::derive_seed(Rng::derive_seed(seed, kPerClassSalt),
                                   static_cast<std::uint64_t>(klass)));
    for (int dead :
         failed_member_prefix(std::move(members), fraction, class_rng)) {
      switch_dead[static_cast<std::size_t>(dead)] = 1;
    }
  }
}

}  // namespace

std::vector<EdgeId> targeted_link_ranking(const Graph& graph) {
  const int n = graph.num_nodes();
  const int m = graph.num_edges();
  // Brandes' accumulation specialized to unweighted BFS, summed over every
  // source. All arithmetic runs in one fixed serial order, so the scores
  // (and therefore the ranking) are bit-reproducible.
  std::vector<double> score(static_cast<std::size_t>(m), 0.0);
  std::vector<int> dist(static_cast<std::size_t>(n));
  std::vector<double> sigma(static_cast<std::size_t>(n));
  std::vector<double> delta(static_cast<std::size_t>(n));
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (NodeId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    dist[static_cast<std::size_t>(s)] = 0;
    sigma[static_cast<std::size_t>(s)] = 1.0;
    std::queue<NodeId> frontier;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      order.push_back(v);
      for (const Adjacency& adj : graph.neighbors(v)) {
        if (dist[static_cast<std::size_t>(adj.to)] < 0) {
          dist[static_cast<std::size_t>(adj.to)] =
              dist[static_cast<std::size_t>(v)] + 1;
          frontier.push(adj.to);
        }
        if (dist[static_cast<std::size_t>(adj.to)] ==
            dist[static_cast<std::size_t>(v)] + 1) {
          sigma[static_cast<std::size_t>(adj.to)] +=
              sigma[static_cast<std::size_t>(v)];
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId w = *it;
      for (const Adjacency& adj : graph.neighbors(w)) {
        if (dist[static_cast<std::size_t>(adj.to)] !=
            dist[static_cast<std::size_t>(w)] - 1) {
          continue;
        }
        const double contribution =
            sigma[static_cast<std::size_t>(adj.to)] /
            sigma[static_cast<std::size_t>(w)] *
            (1.0 + delta[static_cast<std::size_t>(w)]);
        score[static_cast<std::size_t>(adj.edge)] += contribution;
        delta[static_cast<std::size_t>(adj.to)] += contribution;
      }
    }
  }
  std::vector<EdgeId> ranking(static_cast<std::size_t>(m));
  for (EdgeId e = 0; e < m; ++e) ranking[static_cast<std::size_t>(e)] = e;
  std::sort(ranking.begin(), ranking.end(), [&](EdgeId a, EdgeId b) {
    const double sa = score[static_cast<std::size_t>(a)];
    const double sb = score[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;  // deterministic tie-break
  });
  return ranking;
}

BuiltTopology apply_failures(const BuiltTopology& topology,
                             const FailureSpec& spec, std::uint64_t seed,
                             FailureSample* sample,
                             const std::vector<EdgeId>* targeted_ranking) {
  validate_failure_spec(spec);

  const int num_nodes = topology.graph.num_nodes();
  const int num_edges = topology.graph.num_edges();

  // Legacy uniform draws first, consuming the base stream exactly as the
  // historical 3-field model did (switch shuffle, then link shuffle), so
  // uniform-only specs reproduce old results byte-for-byte. Every other
  // component draws from its own derived stream (or none at all), so
  // enabling one never perturbs another.
  Rng rng(seed);
  std::vector<int> dead_switches =
      failed_prefix(num_nodes, spec.uniform.switch_fraction, rng);
  std::vector<int> dead_links =
      failed_prefix(num_edges, spec.uniform.link_fraction, rng);

  std::vector<char> switch_dead(static_cast<std::size_t>(num_nodes), 0);
  for (int s : dead_switches) switch_dead[static_cast<std::size_t>(s)] = 1;
  std::vector<char> link_dead(static_cast<std::size_t>(num_edges), 0);
  for (int e : dead_links) link_dead[static_cast<std::size_t>(e)] = 1;

  if (sample != nullptr) {
    sample->epicenters.clear();
    sample->blast_victims.clear();
    sample->targeted_links.clear();
  }
  if (spec.correlated.active()) {
    draw_correlated(topology, spec.correlated, seed, switch_dead, sample);
  }
  if (spec.per_class.active()) {
    draw_per_class(topology, spec.per_class, seed, switch_dead);
  }
  if (spec.targeted.active()) {
    // A caller-provided ranking (memoized per topology) short-circuits
    // the O(V*E) Brandes pass; it is a pure function of the graph, so
    // the cut prefix is identical either way.
    std::vector<EdgeId> computed;
    if (targeted_ranking == nullptr) {
      computed = targeted_link_ranking(topology.graph);
    }
    const std::vector<EdgeId>& ranking =
        targeted_ranking != nullptr ? *targeted_ranking : computed;
    const int cuts = std::min(spec.targeted.link_cuts, num_edges);
    std::vector<EdgeId> cut(ranking.begin(), ranking.begin() + cuts);
    for (EdgeId e : cut) link_dead[static_cast<std::size_t>(e)] = 1;
    if (sample != nullptr) {
      std::sort(cut.begin(), cut.end());
      sample->targeted_links = std::move(cut);
    }
  }

  BuiltTopology degraded;
  degraded.graph = Graph(num_nodes);
  for (EdgeId e = 0; e < num_edges; ++e) {
    if (link_dead[static_cast<std::size_t>(e)]) continue;
    const Edge& edge = topology.graph.edge(e);
    if (switch_dead[static_cast<std::size_t>(edge.u)] ||
        switch_dead[static_cast<std::size_t>(edge.v)]) {
      continue;
    }
    degraded.graph.add_edge(edge.u, edge.v,
                            edge.capacity * spec.capacity_factor);
  }

  degraded.servers = topology.servers;
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (switch_dead[static_cast<std::size_t>(n)]) {
      degraded.servers.per_switch[static_cast<std::size_t>(n)] = 0;
    }
  }
  degraded.node_class = topology.node_class;
  degraded.class_names = topology.class_names;

  if (sample != nullptr) {
    sample->failed_switches.clear();
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (switch_dead[static_cast<std::size_t>(n)]) {
        sample->failed_switches.push_back(n);
      }
    }
    sample->failed_links.clear();
    for (EdgeId e = 0; e < num_edges; ++e) {
      if (link_dead[static_cast<std::size_t>(e)]) {
        sample->failed_links.push_back(e);
      }
    }
  }
  return degraded;
}

}  // namespace topo
