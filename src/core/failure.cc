#include "core/failure.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace topo {
namespace {

// First llround(fraction * n) elements of a seeded shuffle of [0, n).
// Drawing the full order before truncating gives the superset property:
// for the same rng stream, a larger fraction fails a superset.
std::vector<int> failed_prefix(int n, double fraction, Rng& rng) {
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  const int count = static_cast<int>(std::llround(fraction * n));
  order.resize(static_cast<std::size_t>(std::min(count, n)));
  return order;
}

}  // namespace

BuiltTopology apply_failures(const BuiltTopology& topology,
                             const FailureModel& model, std::uint64_t seed,
                             FailureSample* sample) {
  require(model.link_failure_fraction >= 0.0 &&
              model.link_failure_fraction <= 1.0,
          "link_failure_fraction must be in [0, 1]");
  require(model.switch_failure_fraction >= 0.0 &&
              model.switch_failure_fraction <= 1.0,
          "switch_failure_fraction must be in [0, 1]");
  require(model.capacity_factor > 0.0 && model.capacity_factor <= 1.0,
          "capacity_factor must be in (0, 1]");

  const int num_nodes = topology.graph.num_nodes();
  const int num_edges = topology.graph.num_edges();

  // The switch draw always precedes the link draw so each stream is
  // reproducible independently of the other model fields' values.
  Rng rng(seed);
  std::vector<int> dead_switches =
      failed_prefix(num_nodes, model.switch_failure_fraction, rng);
  std::vector<int> dead_links =
      failed_prefix(num_edges, model.link_failure_fraction, rng);

  std::vector<char> switch_dead(static_cast<std::size_t>(num_nodes), 0);
  for (int s : dead_switches) switch_dead[static_cast<std::size_t>(s)] = 1;
  std::vector<char> link_dead(static_cast<std::size_t>(num_edges), 0);
  for (int e : dead_links) link_dead[static_cast<std::size_t>(e)] = 1;

  BuiltTopology degraded;
  degraded.graph = Graph(num_nodes);
  for (EdgeId e = 0; e < num_edges; ++e) {
    if (link_dead[static_cast<std::size_t>(e)]) continue;
    const Edge& edge = topology.graph.edge(e);
    if (switch_dead[static_cast<std::size_t>(edge.u)] ||
        switch_dead[static_cast<std::size_t>(edge.v)]) {
      continue;
    }
    degraded.graph.add_edge(edge.u, edge.v,
                            edge.capacity * model.capacity_factor);
  }

  degraded.servers = topology.servers;
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (switch_dead[static_cast<std::size_t>(n)]) {
      degraded.servers.per_switch[static_cast<std::size_t>(n)] = 0;
    }
  }
  degraded.node_class = topology.node_class;
  degraded.class_names = topology.class_names;

  if (sample != nullptr) {
    std::sort(dead_switches.begin(), dead_switches.end());
    std::sort(dead_links.begin(), dead_links.end());
    sample->failed_switches.assign(dead_switches.begin(), dead_switches.end());
    sample->failed_links.assign(dead_links.begin(), dead_links.end());
  }
  return degraded;
}

}  // namespace topo
