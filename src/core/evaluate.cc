#include "core/evaluate.h"

#include <algorithm>

#include "traffic/traffic.h"
#include "traffic/workload.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"

namespace topo {
namespace {

// Salt separating the failure draw from the per-run topology/traffic
// streams (Rng::derive_seed(master, 2i) / (master, 2i+1) in experiment.cc).
constexpr std::uint64_t kFailureSeedSalt = 0xFA17ED;

// Salt separating the packet simulator's RNG streams (path sampling, RED,
// start jitter) from the traffic draw they share a seed with.
constexpr std::uint64_t kPacketSimSeedSalt = 0x9AC4E7;

// Salt for the finite-flow workload's arrival process, independent of the
// simulator stream so the same arrivals replay across routing modes.
constexpr std::uint64_t kFctArrivalSeedSalt = 0xFC7A11;

// Runs the MPTCP packet simulator over the flow list the fluid side just
// routed and records its goodput statistics on the result. The simulator
// is seeded from the traffic seed (salted), so a cell's packet metrics
// are exactly as reproducible as its workload.
void run_packet_sim(const BuiltTopology& topology,
                    const sim::SimParams& params, const TrafficMatrix& tm,
                    std::uint64_t traffic_seed, ThroughputResult& result) {
  result.packet_sim_run = true;
  if (tm.flows.empty()) return;  // degenerate instance: all-zero metrics
  sim::SimNetwork net(topology, params,
                      Rng::derive_seed(traffic_seed, kPacketSimSeedSalt));
  for (const ServerFlow& f : tm.flows) {
    // add_flow has no demand parameter: every simulated flow is a
    // unit-demand bulk transfer. A weighted matrix (e.g. hotspot
    // elephants) would silently co-simulate as unit flows, so reject it.
    require(f.demand == 1.0,
            "packet co-simulation requires unit flow demands (got a "
            "weighted matrix); use the fluid solver or an FCT workload "
            "for weighted traffic");
    net.add_flow(f.src_server, f.dst_server);
  }
  const sim::SimulationResult sim_result = net.run();
  result.packet_mean_normalized = sim_result.mean_normalized;
  result.packet_min_normalized = sim_result.min_normalized;
  std::vector<double> goodputs;
  goodputs.reserve(sim_result.flows.size());
  double retransmits = 0.0;
  for (const sim::FlowStats& f : sim_result.flows) {
    goodputs.push_back(f.goodput_gbps / params.server_rate_gbps);
    retransmits += static_cast<double>(f.retransmits);
  }
  std::sort(goodputs.begin(), goodputs.end());
  result.packet_p05_normalized = percentile_sorted(goodputs, 0.05);
  result.packet_retransmits = retransmits;
  result.packet_drops = static_cast<double>(sim_result.total_drops);
}

// Runs the finite-flow FCT workload: Poisson arrivals of CDF-sized flows
// over the whole simulated horizon, measured from time zero (no warmup —
// the arrival process itself provides steady state, and every flow's
// completion time is a first-class sample). Arrivals draw from their own
// salted stream so the same workload replays across routing modes.
void run_fct_workload(const BuiltTopology& topology,
                      const PacketSimOptions& options,
                      std::uint64_t traffic_seed, ThroughputResult& result) {
  result.fct_run = true;
  FlowSizeCdf custom;
  const FlowSizeCdf* cdf;
  if (!options.fct.custom_cdf.empty()) {
    custom.name = options.fct.cdf;
    custom.points = options.fct.custom_cdf;
    cdf = &custom;
  } else {
    cdf = find_flow_size_cdf(options.fct.cdf);
    require(cdf != nullptr, "unknown flow-size CDF \"" + options.fct.cdf +
                                "\" (known: " + flow_size_cdf_names() + ")");
  }
  sim::SimParams params = options.params;
  params.subflows = 1;       // finite flows are single-subflow
  params.warmup_ns = 0;      // measure every completion
  params.start_jitter_ns = 0;
  Rng arrivals_rng(Rng::derive_seed(traffic_seed, kFctArrivalSeedSalt));
  std::vector<FiniteFlow> arrivals =
      options.fct.pattern == "incast"
          ? incast_flow_arrivals(
                topology.servers, *cdf, options.fct.load,
                params.server_rate_gbps, options.fct.fan_in,
                static_cast<std::uint64_t>(params.duration_ns), arrivals_rng)
          : poisson_flow_arrivals(
                topology.servers, *cdf, options.fct.load,
                params.server_rate_gbps,
                static_cast<std::uint64_t>(params.duration_ns), arrivals_rng);
  result.fct_flows = static_cast<double>(arrivals.size());
  if (arrivals.empty()) return;

  sim::SimNetwork net(topology, params,
                      Rng::derive_seed(traffic_seed, kPacketSimSeedSalt));
  net.queue_finite_workload(std::move(arrivals));
  const sim::SimulationResult sim_result = net.run();

  std::vector<double> fcts;
  std::vector<double> slowdowns;
  double delivered_bits = 0.0;
  for (const sim::FlowStats& f : sim_result.flows) {
    if (f.completed) {
      fcts.push_back(static_cast<double>(f.fct_ns));
      // Ideal FCT = serialized transmission time at server line rate
      // (Gbit/s == bits/ns); floored at 1 ns so sub-nanosecond ideals of
      // tiny flows cannot blow the ratio up.
      const double ideal_ns =
          std::max(1.0, f.size_bytes * 8.0 / params.server_rate_gbps);
      slowdowns.push_back(static_cast<double>(f.fct_ns) / ideal_ns);
    }
    delivered_bits += static_cast<double>(f.delivered_packets) * 8.0 *
                      static_cast<double>(params.packet_bytes);
  }
  result.fct_completed = static_cast<double>(fcts.size());
  if (!fcts.empty()) {
    std::sort(fcts.begin(), fcts.end());
    result.fct_p50_ns = percentile_sorted(fcts, 0.50);
    result.fct_p95_ns = percentile_sorted(fcts, 0.95);
    result.fct_p99_ns = percentile_sorted(fcts, 0.99);
    result.fct_mean_ns = mean_of(fcts);
    std::sort(slowdowns.begin(), slowdowns.end());
    result.fct_slowdown_p50 = percentile_sorted(slowdowns, 0.50);
    result.fct_slowdown_p99 = percentile_sorted(slowdowns, 0.99);
  }
  // Aggregate goodput as a fraction of the fabric's total line rate over
  // the simulated horizon (at load L with all flows finishing, ~L).
  const double total_capacity_bits =
      static_cast<double>(topology.servers.total()) *
      params.server_rate_gbps * static_cast<double>(params.duration_ns);
  result.fct_goodput = delivered_bits / total_capacity_bits;
}

// Evaluation of an already-degraded (or pristine) topology.
ThroughputResult evaluate_prepared(const BuiltTopology& topology,
                                   const EvalOptions& options,
                                   std::uint64_t traffic_seed) {
  Rng rng(traffic_seed);
  std::vector<Commodity> commodities;
  // Kept past the switch when the packet co-simulation needs the
  // server-level flow list the commodities were aggregated from.
  TrafficMatrix sim_tm;
  switch (options.traffic) {
    case TrafficKind::kPermutation: {
      sim_tm = random_permutation_traffic(topology.servers, rng);
      commodities = aggregate_to_commodities(sim_tm, topology.servers);
      break;
    }
    case TrafficKind::kAllToAll: {
      commodities = all_to_all_commodities(topology.servers);
      // Normalize so each server offers one unit of egress in total
      // (1/(S-1) to each destination); lambda is then comparable with the
      // permutation workload and lambda >= 1 again means full line rate.
      const double scale =
          1.0 / std::max(1, topology.servers.total() - 1);
      for (Commodity& c : commodities) c.demand *= scale;
      break;
    }
    case TrafficKind::kChunky: {
      const TrafficMatrix tm =
          chunky_traffic(topology.servers, options.chunky_fraction, rng);
      commodities = aggregate_to_commodities(tm, topology.servers);
      break;
    }
    case TrafficKind::kHotspot: {
      const TrafficMatrix tm =
          hotspot_traffic(topology.servers, options.hot_fraction,
                          options.hot_multiplier, rng);
      commodities = aggregate_to_commodities(tm, topology.servers);
      break;
    }
    case TrafficKind::kStride: {
      sim_tm = stride_traffic(topology.servers, options.stride);
      commodities = aggregate_to_commodities(sim_tm, topology.servers);
      break;
    }
  }
  ThroughputResult result;
  if (commodities.empty()) {
    // Every flow stayed on its own switch: trivially full throughput.
    result.feasible = true;
    result.lambda = 1.0;
    result.dual_bound = 1.0;
    result.gap = 0.0;
  } else {
    result = max_concurrent_flow(topology.graph, commodities, options.flow);
  }
  if (options.packet_sim.enabled) {
    if (options.packet_sim.fct.enabled) {
      run_fct_workload(topology, options.packet_sim, traffic_seed, result);
    } else {
      run_packet_sim(topology, options.packet_sim.params, sim_tm,
                     traffic_seed, result);
    }
  }
  return result;
}

}  // namespace

ThroughputResult evaluate_throughput(const BuiltTopology& topology,
                                     const EvalOptions& options,
                                     std::uint64_t traffic_seed,
                                     const std::vector<EdgeId>* targeted_ranking) {
  require(topology.servers.num_switches() == topology.graph.num_nodes(),
          "server map must cover every switch");
  // Validate BEFORE the active() gate: an out-of-range field (say a
  // capacity_factor above 1.0) must fail loudly even when no component
  // would have triggered the degradation pass.
  validate_failure_spec(options.failure);
  if (options.packet_sim.enabled) {
    if (options.packet_sim.fct.enabled) {
      if (!options.packet_sim.fct.custom_cdf.empty()) {
        validate_flow_size_cdf(options.packet_sim.fct.custom_cdf,
                               "custom flow-size CDF");
      } else {
        require(find_flow_size_cdf(options.packet_sim.fct.cdf) != nullptr,
                "unknown flow-size CDF \"" + options.packet_sim.fct.cdf +
                    "\" (known: " + flow_size_cdf_names() + ")");
      }
      require(options.packet_sim.fct.load > 0.0 &&
                  options.packet_sim.fct.load <= 1.0,
              "workload load must be in (0, 1]");
      require(options.packet_sim.fct.pattern == "uniform" ||
                  options.packet_sim.fct.pattern == "incast",
              "unknown workload pattern \"" + options.packet_sim.fct.pattern +
                  "\" (expected uniform or incast)");
      if (options.packet_sim.fct.pattern == "incast") {
        require(options.packet_sim.fct.fan_in >= 2,
                "incast fan_in must be >= 2");
      }
    } else {
      require(options.traffic == TrafficKind::kPermutation ||
                  options.traffic == TrafficKind::kStride,
              "packet co-simulation requires permutation or stride traffic "
              "(the simulator models server-to-server unit-demand bulk "
              "flows)");
    }
    require(options.packet_sim.params.warmup_ns <
                options.packet_sim.params.duration_ns,
            "packet co-simulation warmup must precede the end of the run");
  }
  if (!options.failure.active()) {
    return evaluate_prepared(topology, options, traffic_seed);
  }
  const BuiltTopology degraded =
      apply_failures(topology, options.failure,
                     Rng::derive_seed(traffic_seed, kFailureSeedSalt),
                     /*sample=*/nullptr, targeted_ranking);
  // Degradation can leave too few endpoints for a workload; report that as
  // an infeasible zero-throughput run rather than raising (the network is
  // effectively down).
  bool workload_possible = degraded.servers.total() >= 2;
  if (workload_possible && options.traffic == TrafficKind::kChunky) {
    int hosts = 0;
    for (int count : degraded.servers.per_switch) hosts += count > 0 ? 1 : 0;
    workload_possible = hosts >= 2;
  }
  if (workload_possible && options.traffic == TrafficKind::kStride) {
    // A stride that is a multiple of the surviving server count pairs
    // every server with itself: no workload.
    workload_possible = options.stride % degraded.servers.total() != 0;
  }
  if (!workload_possible) return ThroughputResult{};
  return evaluate_prepared(degraded, options, traffic_seed);
}

std::vector<ThroughputResult> evaluate_throughput_trials(
    const BuiltTopology& topology, const EvalOptions& options,
    const std::vector<std::uint64_t>& traffic_seeds) {
  // The targeted ranking is seed-independent (a pure function of the
  // graph): compute it once for every trial instead of per seed.
  std::vector<EdgeId> ranking;
  const bool targeted =
      options.failure.targeted.active() && traffic_seeds.size() > 1;
  if (targeted) ranking = targeted_link_ranking(topology.graph);
  std::vector<ThroughputResult> results(traffic_seeds.size());
  parallel_for(static_cast<int>(traffic_seeds.size()), [&](int i) {
    results[static_cast<std::size_t>(i)] = evaluate_throughput(
        topology, options, traffic_seeds[static_cast<std::size_t>(i)],
        targeted ? &ranking : nullptr);
  });
  return results;
}

}  // namespace topo
