#include "bounds/bounds.h"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.h"
#include "graph/maxflow.h"
#include "util/error.h"

namespace topo {

double aspl_lower_bound(int n, int r) {
  require(n >= 2, "aspl_lower_bound requires n >= 2");
  require(r >= 1, "aspl_lower_bound requires r >= 1");
  if (r == 1) return 1.0;  // perfect matching: every node's peer is 1 hop

  // Fill distance levels of the ideal degree-r tree: r*(r-1)^(j-1) nodes at
  // distance j, until all n-1 other nodes are placed.
  const double nodes_to_place = static_cast<double>(n - 1);
  double placed = 0.0;
  double weighted = 0.0;  // sum of j * (nodes at level j)
  double level_size = static_cast<double>(r);
  int level = 1;
  while (placed + level_size < nodes_to_place) {
    placed += level_size;
    weighted += static_cast<double>(level) * level_size;
    level_size *= static_cast<double>(r - 1);
    ++level;
    require(level < 1'000'000, "aspl_lower_bound failed to converge");
  }
  const double remainder = nodes_to_place - placed;  // R in the paper
  weighted += static_cast<double>(level) * remainder;
  return weighted / nodes_to_place;
}

long long moore_nodes_within(int r, int levels) {
  require(r >= 2, "moore_nodes_within requires r >= 2");
  require(levels >= 0, "levels must be non-negative");
  long long total = 1;
  double level_size = static_cast<double>(r);
  for (int j = 1; j <= levels; ++j) {
    total += static_cast<long long>(level_size);
    level_size *= static_cast<double>(r - 1);
    require(total >= 0, "moore_nodes_within overflow");
  }
  return total;
}

double homogeneous_throughput_upper_bound(int n, int r, double num_flows) {
  require(num_flows > 0.0, "num_flows must be positive");
  const double d_star = aspl_lower_bound(n, r);
  return static_cast<double>(n) * static_cast<double>(r) /
         (num_flows * d_star);
}

double throughput_upper_bound(const Graph& graph,
                              const std::vector<Commodity>& commodities) {
  require(!commodities.empty(), "throughput_upper_bound requires commodities");
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<double> weights;
  pairs.reserve(commodities.size());
  weights.reserve(commodities.size());
  double total_demand = 0.0;
  for (const Commodity& c : commodities) {
    pairs.emplace_back(c.src, c.dst);
    weights.push_back(c.demand);
    total_demand += c.demand;
  }
  const double mean_distance = mean_pair_distance(graph, pairs, &weights);
  require(mean_distance > 0.0, "degenerate commodity set");
  return graph.total_directed_capacity() / (mean_distance * total_demand);
}

TwoClusterBound two_cluster_throughput_bound(const Graph& graph,
                                             const std::vector<char>& in_cluster_a,
                                             double n1, double n2) {
  require(n1 > 0.0 && n2 > 0.0, "both clusters need servers");
  TwoClusterBound bound;
  const double c_total = graph.total_directed_capacity();
  const double c_bar = 2.0 * cut_capacity(graph, in_cluster_a);
  const double aspl = average_shortest_path_length(graph);
  bound.path_bound = c_total / (aspl * (n1 + n2));
  bound.cut_bound = c_bar * (n1 + n2) / (2.0 * n1 * n2);
  bound.combined = std::min(bound.path_bound, bound.cut_bound);
  return bound;
}

double cross_capacity_threshold(double t_star, double n1, double n2) {
  require(t_star >= 0.0, "t_star must be non-negative");
  require(n1 > 0.0 && n2 > 0.0, "both clusters need servers");
  return t_star * 2.0 * n1 * n2 / (n1 + n2);
}

}  // namespace topo
