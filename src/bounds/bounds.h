// Analytical throughput and path-length bounds from the paper.
//
//  * Theorem 1:  TH(N,r,f) <= N*r / (<D> * f)  — total directed capacity
//    over total shortest-path capacity demand.
//  * Cerf-Cowan-Mullin-Stanton lower bound d* on the ASPL of any r-regular
//    graph of N nodes (the "Moore tree" bound with curved steps, Fig 3).
//  * Combined universal upper bound TH <= N*r / (f * d*).
//  * The two-cluster Eqn-1 bound: min of the path-length bound and the
//    cross-cluster cut bound (Fig 10), plus the C-bar-star threshold below
//    which throughput provably drops (Fig 11).
#ifndef TOPODESIGN_BOUNDS_BOUNDS_H
#define TOPODESIGN_BOUNDS_BOUNDS_H

#include <vector>

#include "graph/graph.h"
#include "traffic/traffic.h"

namespace topo {

/// Cerf et al. lower bound d* on the average shortest path length of any
/// r-regular graph with n nodes. Requires n >= 2; r >= 2 for nontrivial
/// networks (r = 1 gives d* = 1, a single matching edge per node).
[[nodiscard]] double aspl_lower_bound(int n, int r);

/// Number of nodes a degree-r "Moore tree" reaches within `levels` hops:
/// 1 + r + r(r-1) + ... — the x-tic positions in Fig 3 where the bound
/// starts a new distance level.
[[nodiscard]] long long moore_nodes_within(int r, int levels);

/// Theorem 1 specialized to homogeneous networks, with d* standing in for
/// <D>: an upper bound on the throughput of ANY topology built from n
/// switches of network-degree r carrying `num_flows` unit-demand flows.
[[nodiscard]] double homogeneous_throughput_upper_bound(int n, int r,
                                                        double num_flows);

/// Theorem 1 applied to a concrete graph and commodity set: total directed
/// capacity divided by the shortest-path capacity consumption
/// sum_i demand_i * dist(src_i, dst_i). This is the tightest form of the
/// path-length bound and holds for any routing.
[[nodiscard]] double throughput_upper_bound(const Graph& graph,
                                            const std::vector<Commodity>& commodities);

/// The two components of Eqn 1 for a two-cluster network.
struct TwoClusterBound {
  double path_bound = 0.0;  ///< C / (<D> * (n1+n2)) with <D> = graph ASPL.
  double cut_bound = 0.0;   ///< C-bar * (n1+n2) / (2*n1*n2).
  double combined = 0.0;    ///< min of the two.
};

/// Evaluates Eqn 1. `in_cluster_a[n] != 0` marks cluster-A switches;
/// n1/n2 are the server counts attached to each cluster. Capacities are
/// counted directionally (C and C-bar both double the undirected sums), as
/// in the paper.
[[nodiscard]] TwoClusterBound two_cluster_throughput_bound(
    const Graph& graph, const std::vector<char>& in_cluster_a, double n1,
    double n2);

/// The drop threshold: if the directed cross-cluster capacity C-bar falls
/// below T* * 2*n1*n2/(n1+n2), throughput must fall below the peak value
/// T* (Fig 11's marked points).
[[nodiscard]] double cross_capacity_threshold(double t_star, double n1,
                                              double n2);

}  // namespace topo

#endif  // TOPODESIGN_BOUNDS_BOUNDS_H
