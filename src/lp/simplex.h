// Dense two-phase simplex linear-program solver.
//
// The paper computes throughput as the optimum of the maximum concurrent
// multi-commodity flow LP (solved there with CPLEX). This solver is the
// from-scratch exact reference: a textbook two-phase tableau simplex with
// Bland's anti-cycling rule. It is dependable and exact on the small
// instances used for cross-validating the FPTAS and for unit tests; the
// FPTAS in src/flow handles production scales.
#ifndef TOPODESIGN_LP_SIMPLEX_H
#define TOPODESIGN_LP_SIMPLEX_H

#include <vector>

namespace topo {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

enum class ConstraintSense { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: coeffs . x  (sense)  rhs.
struct LpConstraint {
  std::vector<double> coeffs;
  ConstraintSense sense = ConstraintSense::kLessEqual;
  double rhs = 0.0;
};

/// Maximize objective . x subject to the constraints and x >= 0.
struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves the LP. Constraint coefficient vectors must all have length
/// num_vars (checked). Bland's rule guarantees termination; the iteration
/// limit is a safety net for pathological sizes.
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem,
                                  long long max_iterations = 2'000'000);

}  // namespace topo

#endif  // TOPODESIGN_LP_SIMPLEX_H
