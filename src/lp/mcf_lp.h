// Exact maximum concurrent multi-commodity flow via the arc-flow LP.
//
// maximize   lambda
// subject to per-commodity flow conservation with demand lambda * d_i,
//            per-arc capacity (each undirected edge is two directed arcs),
//            all flow variables and lambda non-negative.
//
// This is exactly the LP the paper solves with CPLEX. It is exponential in
// neither variables nor constraints, but dense simplex makes it practical
// only for small instances (N * k * |arcs| up to a few hundred thousand
// tableau entries) — which is precisely its role here: the exact reference
// the FPTAS is validated against in the test suite and the epsilon
// ablation bench.
#ifndef TOPODESIGN_LP_MCF_LP_H
#define TOPODESIGN_LP_MCF_LP_H

#include "graph/graph.h"
#include "lp/simplex.h"
#include "traffic/traffic.h"

namespace topo {

/// Exact solution of the max concurrent flow problem.
struct McfLpResult {
  LpStatus status = LpStatus::kInfeasible;
  /// The throughput: the largest lambda such that lambda * d_i is routable
  /// for every commodity i simultaneously.
  double lambda = 0.0;
  /// Total flow on each directed arc; arc 2*e is edge e's u->v direction,
  /// arc 2*e+1 its v->u direction.
  std::vector<double> arc_flow;
};

/// Solves the exact LP. Commodities must have positive demands and
/// endpoints inside the graph; same-endpoint commodities are rejected.
[[nodiscard]] McfLpResult solve_concurrent_flow_lp(
    const Graph& graph, const std::vector<Commodity>& commodities,
    long long max_iterations = 2'000'000);

}  // namespace topo

#endif  // TOPODESIGN_LP_MCF_LP_H
