#include "lp/mcf_lp.h"

#include "util/error.h"

namespace topo {

McfLpResult solve_concurrent_flow_lp(const Graph& graph,
                                     const std::vector<Commodity>& commodities,
                                     long long max_iterations) {
  require(!commodities.empty(), "concurrent flow requires commodities");
  for (const Commodity& c : commodities) {
    require(c.src >= 0 && c.src < graph.num_nodes() && c.dst >= 0 &&
                c.dst < graph.num_nodes(),
            "commodity endpoint out of range");
    require(c.src != c.dst, "commodity endpoints must differ");
    require(c.demand > 0.0, "commodity demand must be positive");
  }

  const int num_arcs = 2 * graph.num_edges();
  const int k = static_cast<int>(commodities.size());
  // Variable layout: f[i][a] at index i * num_arcs + a, lambda last.
  const int lambda_var = k * num_arcs;
  LpProblem problem;
  problem.num_vars = lambda_var + 1;
  problem.objective.assign(static_cast<std::size_t>(problem.num_vars), 0.0);
  problem.objective[static_cast<std::size_t>(lambda_var)] = 1.0;

  const auto arc_head = [&](int arc) {
    const Edge& e = graph.edge(arc / 2);
    return arc % 2 == 0 ? e.v : e.u;
  };
  const auto arc_tail = [&](int arc) {
    const Edge& e = graph.edge(arc / 2);
    return arc % 2 == 0 ? e.u : e.v;
  };

  // Flow conservation: for commodity i and node n != dst_i:
  //   sum_out f - sum_in f - [n == src_i] * d_i * lambda = 0.
  // The destination row is implied by the others and dropped.
  for (int i = 0; i < k; ++i) {
    const Commodity& commodity = commodities[static_cast<std::size_t>(i)];
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (n == commodity.dst) continue;
      LpConstraint row;
      row.coeffs.assign(static_cast<std::size_t>(problem.num_vars), 0.0);
      bool touched = false;
      for (int arc = 0; arc < num_arcs; ++arc) {
        double sign = 0.0;
        if (arc_tail(arc) == n) sign += 1.0;
        if (arc_head(arc) == n) sign -= 1.0;
        if (sign != 0.0) {
          row.coeffs[static_cast<std::size_t>(i * num_arcs + arc)] = sign;
          touched = true;
        }
      }
      if (n == commodity.src) {
        row.coeffs[static_cast<std::size_t>(lambda_var)] = -commodity.demand;
        touched = true;
      }
      if (!touched) continue;  // isolated node, vacuous constraint
      row.sense = ConstraintSense::kEqual;
      row.rhs = 0.0;
      problem.constraints.push_back(std::move(row));
    }
  }

  // Capacity per directed arc.
  for (int arc = 0; arc < num_arcs; ++arc) {
    LpConstraint row;
    row.coeffs.assign(static_cast<std::size_t>(problem.num_vars), 0.0);
    for (int i = 0; i < k; ++i) {
      row.coeffs[static_cast<std::size_t>(i * num_arcs + arc)] = 1.0;
    }
    row.sense = ConstraintSense::kLessEqual;
    row.rhs = graph.edge(arc / 2).capacity;
    problem.constraints.push_back(std::move(row));
  }

  const LpSolution lp = solve_lp(problem, max_iterations);
  McfLpResult result;
  result.status = lp.status;
  if (lp.status != LpStatus::kOptimal) return result;
  result.lambda = lp.objective;
  result.arc_flow.assign(static_cast<std::size_t>(num_arcs), 0.0);
  for (int arc = 0; arc < num_arcs; ++arc) {
    for (int i = 0; i < k; ++i) {
      result.arc_flow[static_cast<std::size_t>(arc)] +=
          lp.x[static_cast<std::size_t>(i * num_arcs + arc)];
    }
  }
  return result;
}

}  // namespace topo
