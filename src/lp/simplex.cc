#include "lp/simplex.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace topo {
namespace {

constexpr double kEps = 1e-9;

// Dense tableau with an explicit basis. Rows: one per constraint; columns:
// structural variables, slack/surplus, artificials, then the RHS.
class Tableau {
 public:
  Tableau(const LpProblem& problem) {
    const int m = static_cast<int>(problem.constraints.size());
    const int n = problem.num_vars;
    require(static_cast<int>(problem.objective.size()) == n,
            "objective length must equal num_vars");

    // Count auxiliary columns.
    int num_slack = 0;
    int num_artificial = 0;
    for (const LpConstraint& c : problem.constraints) {
      require(static_cast<int>(c.coeffs.size()) == n,
              "constraint width must equal num_vars");
      // After RHS normalization: <= gets slack; >= gets surplus+artificial;
      // == gets artificial.
      const bool flipped = c.rhs < 0.0;
      ConstraintSense sense = c.sense;
      if (flipped) {
        if (sense == ConstraintSense::kLessEqual) sense = ConstraintSense::kGreaterEqual;
        else if (sense == ConstraintSense::kGreaterEqual) sense = ConstraintSense::kLessEqual;
      }
      if (sense == ConstraintSense::kLessEqual) {
        ++num_slack;
      } else if (sense == ConstraintSense::kGreaterEqual) {
        ++num_slack;
        ++num_artificial;
      } else {
        ++num_artificial;
      }
    }

    num_structural_ = n;
    first_artificial_ = n + num_slack;
    num_cols_ = n + num_slack + num_artificial;
    rows_.assign(static_cast<std::size_t>(m),
                 std::vector<double>(static_cast<std::size_t>(num_cols_) + 1, 0.0));
    basis_.assign(static_cast<std::size_t>(m), -1);

    int slack_col = n;
    int artificial_col = first_artificial_;
    for (int r = 0; r < m; ++r) {
      const LpConstraint& c = problem.constraints[static_cast<std::size_t>(r)];
      const double sign = c.rhs < 0.0 ? -1.0 : 1.0;
      ConstraintSense sense = c.sense;
      if (sign < 0.0) {
        if (sense == ConstraintSense::kLessEqual) sense = ConstraintSense::kGreaterEqual;
        else if (sense == ConstraintSense::kGreaterEqual) sense = ConstraintSense::kLessEqual;
      }
      auto& row = rows_[static_cast<std::size_t>(r)];
      for (int j = 0; j < n; ++j) {
        row[static_cast<std::size_t>(j)] = sign * c.coeffs[static_cast<std::size_t>(j)];
      }
      row[static_cast<std::size_t>(num_cols_)] = sign * c.rhs;

      if (sense == ConstraintSense::kLessEqual) {
        row[static_cast<std::size_t>(slack_col)] = 1.0;
        basis_[static_cast<std::size_t>(r)] = slack_col++;
      } else if (sense == ConstraintSense::kGreaterEqual) {
        row[static_cast<std::size_t>(slack_col)] = -1.0;
        ++slack_col;
        row[static_cast<std::size_t>(artificial_col)] = 1.0;
        basis_[static_cast<std::size_t>(r)] = artificial_col++;
      } else {
        row[static_cast<std::size_t>(artificial_col)] = 1.0;
        basis_[static_cast<std::size_t>(r)] = artificial_col++;
      }
    }
  }

  [[nodiscard]] int num_rows() const { return static_cast<int>(rows_.size()); }
  [[nodiscard]] int num_cols() const { return num_cols_; }
  [[nodiscard]] int first_artificial() const { return first_artificial_; }
  [[nodiscard]] int num_structural() const { return num_structural_; }

  [[nodiscard]] double rhs(int r) const {
    return rows_[static_cast<std::size_t>(r)][static_cast<std::size_t>(num_cols_)];
  }
  [[nodiscard]] double at(int r, int c) const {
    return rows_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  }
  [[nodiscard]] int basis(int r) const { return basis_[static_cast<std::size_t>(r)]; }

  void pivot(int pivot_row, int pivot_col) {
    auto& prow = rows_[static_cast<std::size_t>(pivot_row)];
    const double inv = 1.0 / prow[static_cast<std::size_t>(pivot_col)];
    for (double& v : prow) v *= inv;
    for (int r = 0; r < num_rows(); ++r) {
      if (r == pivot_row) continue;
      auto& row = rows_[static_cast<std::size_t>(r)];
      const double factor = row[static_cast<std::size_t>(pivot_col)];
      if (std::fabs(factor) < kEps) continue;
      for (std::size_t j = 0; j < row.size(); ++j) {
        row[j] -= factor * prow[j];
      }
      row[static_cast<std::size_t>(pivot_col)] = 0.0;  // exact zero
    }
    basis_[static_cast<std::size_t>(pivot_row)] = pivot_col;
  }

  // Optimizes `objective` (maximization) over the current feasible basis,
  // with columns >= `forbid_from` excluded from entering. Uses Dantzig's
  // rule (largest reduced cost) for speed and falls back to Bland's rule
  // permanently once the objective stalls, which guarantees termination.
  LpStatus optimize(const std::vector<double>& objective, int forbid_from,
                    long long& iterations_left) {
    bool bland_mode = false;
    int stalled_iterations = 0;
    double last_objective = -std::numeric_limits<double>::infinity();
    std::vector<double> reduced(static_cast<std::size_t>(forbid_from));

    while (true) {
      if (iterations_left-- <= 0) return LpStatus::kIterationLimit;

      // Reduced costs for all candidate columns in one pass:
      // reduced_j = c_j - sum_r c_{basis(r)} * a_{r j}.
      for (int j = 0; j < forbid_from; ++j) {
        reduced[static_cast<std::size_t>(j)] =
            j < static_cast<int>(objective.size())
                ? objective[static_cast<std::size_t>(j)]
                : 0.0;
      }
      double current_objective = 0.0;
      for (int r = 0; r < num_rows(); ++r) {
        const int b = basis(r);
        const double cb = b < static_cast<int>(objective.size())
                              ? objective[static_cast<std::size_t>(b)]
                              : 0.0;
        if (cb == 0.0) continue;
        current_objective += cb * rhs(r);
        const auto& row = rows_[static_cast<std::size_t>(r)];
        for (int j = 0; j < forbid_from; ++j) {
          reduced[static_cast<std::size_t>(j)] -=
              cb * row[static_cast<std::size_t>(j)];
        }
      }

      int entering = -1;
      if (bland_mode) {
        for (int j = 0; j < forbid_from; ++j) {
          if (reduced[static_cast<std::size_t>(j)] > kEps) {
            entering = j;
            break;
          }
        }
      } else {
        double best = kEps;
        for (int j = 0; j < forbid_from; ++j) {
          if (reduced[static_cast<std::size_t>(j)] > best) {
            best = reduced[static_cast<std::size_t>(j)];
            entering = j;
          }
        }
      }
      if (entering < 0) return LpStatus::kOptimal;

      // Ratio test, Bland tie-break on smallest basis index.
      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < num_rows(); ++r) {
        const double a = at(r, entering);
        if (a > kEps) {
          const double ratio = rhs(r) / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leaving < 0 || basis(r) < basis(leaving)))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving < 0) return LpStatus::kUnbounded;
      pivot(leaving, entering);

      // Anti-cycling: if Dantzig makes no objective progress for a while
      // (degenerate pivots), switch to Bland's rule for guaranteed finite
      // termination.
      if (!bland_mode) {
        if (current_objective > last_objective + kEps) {
          stalled_iterations = 0;
          last_objective = current_objective;
        } else if (++stalled_iterations > 2 * num_rows() + 64) {
          bland_mode = true;
        }
      }
    }
  }

  // Removes artificial variables from the basis after phase 1 when they sit
  // at zero, pivoting in any usable structural/slack column.
  void drive_out_artificials() {
    for (int r = 0; r < num_rows(); ++r) {
      if (basis(r) < first_artificial_) continue;
      int col = -1;
      for (int j = 0; j < first_artificial_; ++j) {
        if (std::fabs(at(r, j)) > kEps) {
          col = j;
          break;
        }
      }
      if (col >= 0) pivot(r, col);
      // Otherwise the row is all-zero over real columns (redundant
      // constraint); the artificial stays basic at value zero, harmless.
    }
  }

  [[nodiscard]] std::vector<double> extract_solution() const {
    std::vector<double> x(static_cast<std::size_t>(num_structural_), 0.0);
    for (int r = 0; r < num_rows(); ++r) {
      if (basis(r) >= 0 && basis(r) < num_structural_) {
        x[static_cast<std::size_t>(basis(r))] = rhs(r);
      }
    }
    return x;
  }

 private:
  std::vector<std::vector<double>> rows_;
  std::vector<int> basis_;
  int num_cols_ = 0;
  int num_structural_ = 0;
  int first_artificial_ = 0;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, long long max_iterations) {
  require(problem.num_vars >= 0, "num_vars must be non-negative");
  LpSolution solution;
  if (problem.num_vars == 0) {
    // Feasibility depends only on constant constraints.
    for (const LpConstraint& c : problem.constraints) {
      const bool ok = (c.sense == ConstraintSense::kLessEqual && 0.0 <= c.rhs + kEps) ||
                      (c.sense == ConstraintSense::kGreaterEqual && 0.0 >= c.rhs - kEps) ||
                      (c.sense == ConstraintSense::kEqual && std::fabs(c.rhs) <= kEps);
      if (!ok) return solution;  // infeasible
    }
    solution.status = LpStatus::kOptimal;
    return solution;
  }

  Tableau tableau(problem);
  long long iterations_left = max_iterations;

  // Phase 1: maximize -(sum of artificials).
  if (tableau.first_artificial() < tableau.num_cols()) {
    std::vector<double> phase1(static_cast<std::size_t>(tableau.num_cols()), 0.0);
    for (int j = tableau.first_artificial(); j < tableau.num_cols(); ++j) {
      phase1[static_cast<std::size_t>(j)] = -1.0;
    }
    const LpStatus status =
        tableau.optimize(phase1, tableau.num_cols(), iterations_left);
    if (status == LpStatus::kIterationLimit) {
      solution.status = status;
      return solution;
    }
    // Infeasible if any artificial is strictly positive.
    double artificial_sum = 0.0;
    for (int r = 0; r < tableau.num_rows(); ++r) {
      if (tableau.basis(r) >= tableau.first_artificial()) {
        artificial_sum += tableau.rhs(r);
      }
    }
    if (artificial_sum > 1e-7) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    tableau.drive_out_artificials();
  }

  // Phase 2: the real objective over structural columns only (slacks have
  // zero cost and may enter; artificials are forbidden).
  std::vector<double> phase2(static_cast<std::size_t>(tableau.num_cols()), 0.0);
  for (int j = 0; j < problem.num_vars; ++j) {
    phase2[static_cast<std::size_t>(j)] = problem.objective[static_cast<std::size_t>(j)];
  }
  const LpStatus status =
      tableau.optimize(phase2, tableau.first_artificial(), iterations_left);
  solution.status = status;
  if (status != LpStatus::kOptimal) return solution;

  solution.x = tableau.extract_solution();
  double objective = 0.0;
  for (int j = 0; j < problem.num_vars; ++j) {
    objective += problem.objective[static_cast<std::size_t>(j)] *
                 solution.x[static_cast<std::size_t>(j)];
  }
  solution.objective = objective;
  return solution;
}

}  // namespace topo
