#include "traffic/traffic.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.h"

namespace topo {
namespace {

// Fixed-point-free permutation of {0..n-1}: shuffle and repair fixed points
// by swapping with a neighbour (always possible for n >= 2).
std::vector<int> derangement(int n, Rng& rng) {
  require(n >= 2, "derangement requires n >= 2");
  std::vector<int> target(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) target[static_cast<std::size_t>(i)] = i;
  rng.shuffle(target);
  for (int i = 0; i < n; ++i) {
    if (target[static_cast<std::size_t>(i)] != i) continue;
    const int j = (i + 1) % n;
    std::swap(target[static_cast<std::size_t>(i)],
              target[static_cast<std::size_t>(j)]);
  }
  // The repair above can only leave a fixed point at the final position's
  // partner in pathological cases; one more sweep guarantees none remain.
  for (int i = 0; i < n; ++i) {
    if (target[static_cast<std::size_t>(i)] == i) {
      const int j = (i + n - 1) % n;
      std::swap(target[static_cast<std::size_t>(i)],
                target[static_cast<std::size_t>(j)]);
    }
  }
  return target;
}

// Indices of switches hosting at least one server.
std::vector<NodeId> server_switches(const ServerMap& servers) {
  std::vector<NodeId> hosts;
  for (NodeId s = 0; s < servers.num_switches(); ++s) {
    if (servers.per_switch[static_cast<std::size_t>(s)] > 0) hosts.push_back(s);
  }
  return hosts;
}

}  // namespace

TrafficMatrix random_permutation_traffic(const ServerMap& servers, Rng& rng) {
  const int total = servers.total();
  require(total >= 2, "permutation traffic requires at least two servers");
  const std::vector<int> target = derangement(total, rng);
  TrafficMatrix tm;
  tm.flows.reserve(static_cast<std::size_t>(total));
  for (int s = 0; s < total; ++s) {
    tm.flows.push_back(ServerFlow{s, target[static_cast<std::size_t>(s)], 1.0});
  }
  return tm;
}

TrafficMatrix all_to_all_traffic(const ServerMap& servers) {
  const int total = servers.total();
  require(total >= 2, "all-to-all traffic requires at least two servers");
  TrafficMatrix tm;
  tm.flows.reserve(static_cast<std::size_t>(total) *
                   static_cast<std::size_t>(total - 1));
  for (int s = 0; s < total; ++s) {
    for (int d = 0; d < total; ++d) {
      if (s != d) tm.flows.push_back(ServerFlow{s, d, 1.0});
    }
  }
  return tm;
}

TrafficMatrix chunky_traffic(const ServerMap& servers, double fraction,
                             Rng& rng) {
  require(fraction >= 0.0 && fraction <= 1.0, "fraction must be in [0, 1]");
  const std::vector<NodeId> hosts = server_switches(servers);
  require(hosts.size() >= 2, "chunky traffic requires at least two ToRs");

  // Select the chunky subset of ToRs.
  std::vector<NodeId> shuffled = hosts;
  rng.shuffle(shuffled);
  int num_chunky = static_cast<int>(std::llround(fraction * hosts.size()));
  if (num_chunky == 1) num_chunky = 2;  // a 1-ToR permutation is undefined
  num_chunky = std::min<int>(num_chunky, static_cast<int>(hosts.size()));

  // Server id ranges per switch (ids are contiguous per switch).
  std::vector<int> first_server(static_cast<std::size_t>(servers.num_switches()) +
                                1);
  for (NodeId s = 0; s < servers.num_switches(); ++s) {
    first_server[static_cast<std::size_t>(s) + 1] =
        first_server[static_cast<std::size_t>(s)] +
        servers.per_switch[static_cast<std::size_t>(s)];
  }

  TrafficMatrix tm;
  if (num_chunky >= 2) {
    // ToR-level permutation: every server of a chunky ToR sends all of its
    // (unit) demand to servers of the partner ToR, spread evenly.
    const std::vector<int> partner = derangement(num_chunky, rng);
    for (int i = 0; i < num_chunky; ++i) {
      const NodeId src_tor = shuffled[static_cast<std::size_t>(i)];
      const NodeId dst_tor =
          shuffled[static_cast<std::size_t>(partner[static_cast<std::size_t>(i)])];
      const int src_count = servers.per_switch[static_cast<std::size_t>(src_tor)];
      const int dst_count = servers.per_switch[static_cast<std::size_t>(dst_tor)];
      const double per_pair = 1.0 / static_cast<double>(dst_count);
      for (int a = 0; a < src_count; ++a) {
        for (int b = 0; b < dst_count; ++b) {
          tm.flows.push_back(
              ServerFlow{first_server[static_cast<std::size_t>(src_tor)] + a,
                         first_server[static_cast<std::size_t>(dst_tor)] + b,
                         per_pair});
        }
      }
    }
  }

  // Server-level permutation among the remaining ToRs' servers.
  std::vector<int> rest_servers;
  for (std::size_t i = static_cast<std::size_t>(num_chunky); i < shuffled.size();
       ++i) {
    const NodeId tor = shuffled[i];
    for (int a = 0; a < servers.per_switch[static_cast<std::size_t>(tor)]; ++a) {
      rest_servers.push_back(first_server[static_cast<std::size_t>(tor)] + a);
    }
  }
  if (rest_servers.size() >= 2) {
    const std::vector<int> target =
        derangement(static_cast<int>(rest_servers.size()), rng);
    for (std::size_t i = 0; i < rest_servers.size(); ++i) {
      tm.flows.push_back(ServerFlow{
          rest_servers[i], rest_servers[static_cast<std::size_t>(
                               target[i])], 1.0});
    }
  } else if (rest_servers.size() == 1) {
    // A lone non-chunky server has no permutation partner; folding it
    // toward the first chunky ToR (which exists: rest == 1 implies
    // num_chunky >= 2, and the orphan's ToR is not chunky) keeps every
    // server sending one unit instead of silently shrinking
    // total_demand(). Deterministic fold: no extra RNG draws, so all
    // other chunky draws are unchanged.
    const NodeId dst_tor = shuffled[0];
    const int dst_count = servers.per_switch[static_cast<std::size_t>(dst_tor)];
    const double per_pair = 1.0 / static_cast<double>(dst_count);
    for (int b = 0; b < dst_count; ++b) {
      tm.flows.push_back(ServerFlow{
          rest_servers[0],
          first_server[static_cast<std::size_t>(dst_tor)] + b, per_pair});
    }
  }
  return tm;
}

TrafficMatrix hotspot_traffic(const ServerMap& servers, double hot_fraction,
                              double multiplier, Rng& rng) {
  require(hot_fraction >= 0.0 && hot_fraction <= 1.0,
          "hot_fraction must be in [0, 1]");
  require(multiplier >= 1.0, "multiplier must be >= 1");
  const int total = servers.total();
  require(total >= 2, "hotspot traffic requires at least two servers");
  TrafficMatrix tm = random_permutation_traffic(servers, rng);
  // Promote a random subset of senders to elephants.
  std::vector<int> order(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  const int hot = static_cast<int>(std::llround(hot_fraction * total));
  std::vector<char> is_hot(static_cast<std::size_t>(total), 0);
  for (int i = 0; i < hot; ++i) {
    is_hot[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;
  }
  for (ServerFlow& f : tm.flows) {
    if (is_hot[static_cast<std::size_t>(f.src_server)]) f.demand = multiplier;
  }
  return tm;
}

TrafficMatrix stride_traffic(const ServerMap& servers, int stride) {
  const int total = servers.total();
  require(total >= 2, "stride traffic requires at least two servers");
  require(stride % total != 0, "stride must not be a multiple of the "
                               "server count (every flow would be a self-loop)");
  TrafficMatrix tm;
  tm.flows.reserve(static_cast<std::size_t>(total));
  const int step = ((stride % total) + total) % total;
  for (int s = 0; s < total; ++s) {
    tm.flows.push_back(ServerFlow{s, (s + step) % total, 1.0});
  }
  return tm;
}

std::vector<Commodity> aggregate_to_commodities(const TrafficMatrix& tm,
                                                const ServerMap& servers) {
  const std::vector<NodeId> home = servers.server_home();
  std::map<std::pair<NodeId, NodeId>, double> demand;
  for (const ServerFlow& f : tm.flows) {
    require(f.src_server >= 0 &&
                f.src_server < static_cast<int>(home.size()) &&
                f.dst_server >= 0 && f.dst_server < static_cast<int>(home.size()),
            "server id out of range");
    const NodeId su = home[static_cast<std::size_t>(f.src_server)];
    const NodeId sv = home[static_cast<std::size_t>(f.dst_server)];
    if (su == sv) continue;  // never enters the network
    demand[{su, sv}] += f.demand;
  }
  std::vector<Commodity> commodities;
  commodities.reserve(demand.size());
  for (const auto& [pair, d] : demand) {
    commodities.push_back(Commodity{pair.first, pair.second, d});
  }
  return commodities;
}

std::vector<Commodity> all_to_all_commodities(const ServerMap& servers) {
  std::vector<Commodity> commodities;
  for (NodeId u = 0; u < servers.num_switches(); ++u) {
    const int su = servers.per_switch[static_cast<std::size_t>(u)];
    if (su == 0) continue;
    for (NodeId v = 0; v < servers.num_switches(); ++v) {
      if (u == v) continue;
      const int sv = servers.per_switch[static_cast<std::size_t>(v)];
      if (sv == 0) continue;
      commodities.push_back(
          Commodity{u, v, static_cast<double>(su) * static_cast<double>(sv)});
    }
  }
  return commodities;
}

}  // namespace topo
