// Trace/distribution-driven traffic workloads: empirical flow-size CDFs
// and Poisson flow arrivals at a target load.
//
// The static matrices in traffic.h describe WHO talks to whom; this
// module adds WHEN and HOW MUCH: flow sizes drawn from named empirical
// CDF tables (the WebSearch / FB-Hadoop style distributions the DCTCP /
// HPCC evaluations standardized on) via inverse-transform sampling, and
// open-loop Poisson arrivals whose aggregate rate offers a chosen
// fraction of every server's line rate. The packet simulator
// (sim/network.h) runs these as finite flows and reports
// flow-completion times; §9 of the paper invites exactly this kind of
// pluggable workload.
#ifndef TOPODESIGN_TRAFFIC_WORKLOAD_H
#define TOPODESIGN_TRAFFIC_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.h"
#include "util/rng.h"

namespace topo {

/// One point of an empirical flow-size CDF: P(size <= bytes) = cum_prob.
struct CdfPoint {
  double bytes = 0.0;
  double cum_prob = 0.0;
};

/// A named empirical flow-size distribution, piecewise-linear between its
/// table points (the standard trace-CDF interpolation).
struct FlowSizeCdf {
  std::string name;
  /// Ascending in both bytes and cum_prob; first cum_prob is 0, last is 1.
  std::vector<CdfPoint> points;

  /// Analytic mean of the piecewise-linear distribution, in bytes.
  [[nodiscard]] double mean_bytes() const;

  /// Inverse-transform sample: maps u in [0, 1) to a flow size in bytes
  /// (linear interpolation within the matching CDF segment, never below
  /// one byte). Monotone non-decreasing in u.
  [[nodiscard]] double sample_bytes(double u) const;
};

/// The registered distributions, in a fixed order (a "cdf" sweep axis
/// value is an integer index into this list).
[[nodiscard]] const std::vector<FlowSizeCdf>& flow_size_cdfs();

/// Looks a distribution up by name; nullptr when unknown.
[[nodiscard]] const FlowSizeCdf* find_flow_size_cdf(const std::string& name);

/// Comma-separated registered names, for error messages.
[[nodiscard]] std::string flow_size_cdf_names();

/// Validates a user-supplied CDF table: at least two points, bytes
/// non-negative and non-decreasing, cum_prob non-decreasing, first
/// cum_prob exactly 0, last exactly 1, and a positive mean. Raises
/// InvalidArgument naming `what` (e.g. the spec key) on any violation.
void validate_flow_size_cdf(const std::vector<CdfPoint>& points,
                            const std::string& what);

/// Loads a flow-size CDF table from a text file: one "bytes cum_prob"
/// pair per line (the ns-2 / HPCC trace-CDF convention), blank lines and
/// '#' comments ignored. The table is validated via
/// validate_flow_size_cdf; the returned distribution is named "custom".
/// Raises InvalidArgument on I/O or format errors.
[[nodiscard]] FlowSizeCdf load_flow_size_cdf_file(const std::string& path);

/// One finite flow of a dynamic workload.
struct FiniteFlow {
  int src_server = 0;
  int dst_server = 0;
  double size_bytes = 0.0;
  std::uint64_t start_ns = 0;
};

/// Open-loop Poisson workload: exponential inter-arrivals at the
/// aggregate rate S * load * rate_gbps / (8 * E[bytes]) flows per ns —
/// i.e. the expected offered traffic is `load` of every server's line
/// rate — with uniformly random distinct endpoints and sizes sampled
/// from `cdf`, until `horizon_ns`. Arrivals are returned in start-time
/// order. Draw order per flow is fixed (inter-arrival, src, dst, size),
/// so a seeded Rng makes the workload exactly reproducible.
[[nodiscard]] std::vector<FiniteFlow> poisson_flow_arrivals(
    const ServerMap& servers, const FlowSizeCdf& cdf, double load,
    double server_rate_gbps, std::uint64_t horizon_ns, Rng& rng);

/// Incast (many-to-one) variant of poisson_flow_arrivals: burst events
/// arrive as a Poisson process and each event launches `fan_in` flows at
/// the same instant from distinct uniformly random sources to one
/// uniformly random victim server (sources != victim, distinct from each
/// other; requires fan_in >= 2 and fan_in < server count). The event rate
/// is the uniform pattern's flow rate divided by fan_in, so the aggregate
/// offered traffic is the same `load` fraction of line rate. Draw order
/// per event is fixed (inter-arrival, victim, then per flow: source,
/// size), so a seeded Rng makes the workload exactly reproducible. A
/// separate function — the uniform pattern's draw stream stays
/// byte-identical to the historical one.
[[nodiscard]] std::vector<FiniteFlow> incast_flow_arrivals(
    const ServerMap& servers, const FlowSizeCdf& cdf, double load,
    double server_rate_gbps, int fan_in, std::uint64_t horizon_ns, Rng& rng);

}  // namespace topo

#endif  // TOPODESIGN_TRAFFIC_WORKLOAD_H
