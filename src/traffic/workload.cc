#include "traffic/workload.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace topo {
namespace {

// Web-search style distribution (the DCTCP measurement's query/background
// mix): mostly short flows with a heavy multi-megabyte tail.
FlowSizeCdf make_websearch() {
  FlowSizeCdf cdf;
  cdf.name = "websearch";
  cdf.points = {
      {0.0, 0.0},       {10'000.0, 0.15},    {20'000.0, 0.20},
      {30'000.0, 0.30}, {50'000.0, 0.40},    {80'000.0, 0.53},
      {200'000.0, 0.60}, {1'000'000.0, 0.70}, {2'000'000.0, 0.80},
      {5'000'000.0, 0.90}, {10'000'000.0, 0.97}, {30'000'000.0, 1.0},
  };
  return cdf;
}

// Facebook Hadoop-cluster style distribution: dominated by sub-kilobyte
// RPCs, with a sparse tail out to tens of megabytes.
FlowSizeCdf make_fb_hadoop() {
  FlowSizeCdf cdf;
  cdf.name = "fb_hadoop";
  cdf.points = {
      {0.0, 0.0},      {300.0, 0.30},     {500.0, 0.50},
      {1'000.0, 0.60}, {2'000.0, 0.70},   {10'000.0, 0.80},
      {100'000.0, 0.90}, {1'000'000.0, 0.95}, {10'000'000.0, 1.0},
  };
  return cdf;
}

}  // namespace

double FlowSizeCdf::mean_bytes() const {
  // Piecewise-linear CDF => uniform within each segment, so the mean is
  // the probability-weighted sum of segment midpoints.
  double mean = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dp = points[i].cum_prob - points[i - 1].cum_prob;
    mean += dp * 0.5 * (points[i].bytes + points[i - 1].bytes);
  }
  return mean;
}

double FlowSizeCdf::sample_bytes(double u) const {
  require(!points.empty(), "flow-size CDF has no points");
  if (u <= points.front().cum_prob) {
    return std::max(1.0, points.front().bytes);
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (u <= points[i].cum_prob) {
      const CdfPoint& lo = points[i - 1];
      const CdfPoint& hi = points[i];
      const double dp = hi.cum_prob - lo.cum_prob;
      const double frac = dp > 0.0 ? (u - lo.cum_prob) / dp : 1.0;
      return std::max(1.0, lo.bytes + frac * (hi.bytes - lo.bytes));
    }
  }
  return std::max(1.0, points.back().bytes);
}

const std::vector<FlowSizeCdf>& flow_size_cdfs() {
  static const std::vector<FlowSizeCdf> kCdfs = {make_websearch(),
                                                 make_fb_hadoop()};
  return kCdfs;
}

const FlowSizeCdf* find_flow_size_cdf(const std::string& name) {
  for (const FlowSizeCdf& cdf : flow_size_cdfs()) {
    if (cdf.name == name) {
      return &cdf;
    }
  }
  return nullptr;
}

std::string flow_size_cdf_names() {
  std::string names;
  for (const FlowSizeCdf& cdf : flow_size_cdfs()) {
    if (!names.empty()) {
      names += ", ";
    }
    names += cdf.name;
  }
  return names;
}

void validate_flow_size_cdf(const std::vector<CdfPoint>& points,
                            const std::string& what) {
  require(points.size() >= 2, what + ": a CDF table needs >= 2 points");
  require(points.front().cum_prob == 0.0,
          what + ": the first cum_prob must be exactly 0");
  require(points.back().cum_prob == 1.0,
          what + ": the last cum_prob must be exactly 1");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CdfPoint& p = points[i];
    require(std::isfinite(p.bytes) && p.bytes >= 0.0,
            what + ": bytes must be finite and non-negative");
    require(std::isfinite(p.cum_prob) && p.cum_prob >= 0.0 &&
                p.cum_prob <= 1.0,
            what + ": cum_prob must lie in [0, 1]");
    if (i > 0) {
      require(p.bytes >= points[i - 1].bytes,
              what + ": bytes must be non-decreasing");
      require(p.cum_prob >= points[i - 1].cum_prob,
              what + ": cum_prob must be non-decreasing");
    }
  }
  require(points.back().bytes > 0.0,
          what + ": the table describes only zero-byte flows");
}

FlowSizeCdf load_flow_size_cdf_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open CDF file: " + path);
  FlowSizeCdf cdf;
  cdf.name = "custom";
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    CdfPoint p;
    if (!(fields >> p.bytes)) continue;  // blank / comment-only line
    require(static_cast<bool>(fields >> p.cum_prob),
            path + ":" + std::to_string(line_no) +
                ": expected \"bytes cum_prob\"");
    std::string extra;
    require(!(fields >> extra), path + ":" + std::to_string(line_no) +
                                    ": trailing fields after cum_prob");
    cdf.points.push_back(p);
  }
  validate_flow_size_cdf(cdf.points, path);
  return cdf;
}

std::vector<FiniteFlow> poisson_flow_arrivals(const ServerMap& servers,
                                              const FlowSizeCdf& cdf,
                                              double load,
                                              double server_rate_gbps,
                                              std::uint64_t horizon_ns,
                                              Rng& rng) {
  const int total = servers.total();
  require(total >= 2, "a Poisson workload needs at least two servers");
  require(load > 0.0 && load <= 1.0, "workload load must be in (0, 1]");
  require(server_rate_gbps > 0.0, "server rate must be positive");
  const double mean = cdf.mean_bytes();
  require(mean > 0.0, "flow-size CDF \"" + cdf.name + "\" has zero mean");
  // Gbit/s == bits/ns, so the aggregate arrival rate in flows/ns that
  // offers `load` of every server's line rate is:
  const double rate = static_cast<double>(total) * load * server_rate_gbps /
                      (8.0 * mean);
  const double expected = rate * static_cast<double>(horizon_ns);
  require(expected <= 2e7,
          "workload would generate ~" + std::to_string(expected) +
              " flows; shorten the horizon or lower the load");
  std::vector<FiniteFlow> flows;
  flows.reserve(static_cast<std::size_t>(expected * 1.1) + 16);
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.uniform()) / rate;
    if (t >= static_cast<double>(horizon_ns)) {
      break;
    }
    FiniteFlow flow;
    flow.start_ns = static_cast<std::uint64_t>(t);
    flow.src_server = static_cast<int>(rng.index(static_cast<std::size_t>(total)));
    flow.dst_server =
        static_cast<int>(rng.index(static_cast<std::size_t>(total - 1)));
    if (flow.dst_server >= flow.src_server) {
      ++flow.dst_server;  // uniform over destinations != src
    }
    flow.size_bytes = cdf.sample_bytes(rng.uniform());
    flows.push_back(flow);
  }
  return flows;
}

std::vector<FiniteFlow> incast_flow_arrivals(const ServerMap& servers,
                                             const FlowSizeCdf& cdf,
                                             double load,
                                             double server_rate_gbps,
                                             int fan_in,
                                             std::uint64_t horizon_ns,
                                             Rng& rng) {
  const int total = servers.total();
  require(total >= 2, "an incast workload needs at least two servers");
  require(load > 0.0 && load <= 1.0, "workload load must be in (0, 1]");
  require(server_rate_gbps > 0.0, "server rate must be positive");
  require(fan_in >= 2, "incast fan_in must be >= 2");
  require(fan_in < total,
          "incast fan_in must be smaller than the server count");
  const double mean = cdf.mean_bytes();
  require(mean > 0.0, "flow-size CDF \"" + cdf.name + "\" has zero mean");
  // Same aggregate flow rate as the uniform pattern; each burst event
  // launches fan_in flows, so events arrive fan_in times less often.
  const double flow_rate = static_cast<double>(total) * load *
                           server_rate_gbps / (8.0 * mean);
  const double event_rate = flow_rate / static_cast<double>(fan_in);
  const double expected = flow_rate * static_cast<double>(horizon_ns);
  require(expected <= 2e7,
          "workload would generate ~" + std::to_string(expected) +
              " flows; shorten the horizon or lower the load");
  std::vector<FiniteFlow> flows;
  flows.reserve(static_cast<std::size_t>(expected * 1.1) + 16);
  std::vector<int> sources;
  sources.reserve(static_cast<std::size_t>(fan_in));
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.uniform()) / event_rate;
    if (t >= static_cast<double>(horizon_ns)) {
      break;
    }
    const int victim =
        static_cast<int>(rng.index(static_cast<std::size_t>(total)));
    sources.clear();
    for (int k = 0; k < fan_in; ++k) {
      // Rejection-sample a source distinct from the victim and from the
      // burst's earlier sources (fan_in < total guarantees termination).
      int src;
      do {
        src = static_cast<int>(rng.index(static_cast<std::size_t>(total)));
      } while (src == victim ||
               std::find(sources.begin(), sources.end(), src) !=
                   sources.end());
      sources.push_back(src);
      FiniteFlow flow;
      flow.start_ns = static_cast<std::uint64_t>(t);
      flow.src_server = src;
      flow.dst_server = victim;
      flow.size_bytes = cdf.sample_bytes(rng.uniform());
      flows.push_back(flow);
    }
  }
  return flows;
}

}  // namespace topo
