// Traffic matrices over servers and their switch-level aggregation.
//
// The paper evaluates: random permutation traffic (each server sends to and
// receives from exactly one other server), all-to-all, and "x% chunky"
// (a ToR-level permutation over x% of the ToRs, with the rest in a
// server-level permutation). The flow solvers work on switch-level
// commodities; flows between servers on the same switch never touch the
// network in the fluid model and are dropped during aggregation.
#ifndef TOPODESIGN_TRAFFIC_TRAFFIC_H
#define TOPODESIGN_TRAFFIC_TRAFFIC_H

#include <cstdint>
#include <vector>

#include "topo/topology.h"
#include "util/rng.h"

namespace topo {

/// One server-level flow with unit-scalable demand.
struct ServerFlow {
  int src_server = 0;
  int dst_server = 0;
  double demand = 1.0;
};

/// A server-level traffic matrix.
struct TrafficMatrix {
  std::vector<ServerFlow> flows;

  [[nodiscard]] double total_demand() const {
    double total = 0.0;
    for (const ServerFlow& f : flows) total += f.demand;
    return total;
  }
};

/// One switch-level commodity (aggregated demand between two switches).
struct Commodity {
  NodeId src = 0;
  NodeId dst = 0;
  double demand = 1.0;
};

/// Random permutation: a fixed-point-free permutation of all servers, each
/// pair carrying unit demand. Requires at least two servers.
[[nodiscard]] TrafficMatrix random_permutation_traffic(const ServerMap& servers,
                                                       Rng& rng);

/// All-to-all: every ordered pair of distinct servers, unit demand each.
/// (Use all_to_all_commodities for large networks — it aggregates directly
/// without materializing S^2 flows.)
[[nodiscard]] TrafficMatrix all_to_all_traffic(const ServerMap& servers);

/// The paper's "x% chunky" pattern: a fraction `fraction` of the
/// server-hosting switches (ToRs) form a ToR-level permutation, each
/// selected ToR directing all its servers' traffic at its partner ToR; the
/// remaining ToRs run a server-level permutation among themselves.
[[nodiscard]] TrafficMatrix chunky_traffic(const ServerMap& servers,
                                           double fraction, Rng& rng);

/// Hotspot pattern: a fraction of servers ("elephants") send with
/// `multiplier` times the demand of the rest, destinations drawn as a
/// fixed-point-free permutation. Models skewed tenant load; the paper's
/// discussion (§9) invites plugging in arbitrary matrices like this one.
[[nodiscard]] TrafficMatrix hotspot_traffic(const ServerMap& servers,
                                            double hot_fraction,
                                            double multiplier, Rng& rng);

/// Stride pattern: server i sends one unit to server (i + stride) mod S —
/// the classic HPC benchmark workload. Stride must not be a multiple of S.
[[nodiscard]] TrafficMatrix stride_traffic(const ServerMap& servers,
                                           int stride);

/// Aggregates server flows to switch-level commodities; same-switch flows
/// are dropped (they never enter the network).
[[nodiscard]] std::vector<Commodity> aggregate_to_commodities(
    const TrafficMatrix& tm, const ServerMap& servers);

/// Direct switch-level all-to-all: demand s_u * s_v between every ordered
/// pair of distinct switches with s_u, s_v attached servers.
[[nodiscard]] std::vector<Commodity> all_to_all_commodities(
    const ServerMap& servers);

}  // namespace topo

#endif  // TOPODESIGN_TRAFFIC_TRAFFIC_H
