#include "sim/tcp.h"

#include <algorithm>

#include "util/error.h"

namespace topo::sim {

TcpSubflow::TcpSubflow(TransportEnv* env, int flow_id, int subflow_id,
                       std::vector<int> route_forward,
                       std::vector<int> route_reverse, const TcpParams& params)
    : env_(env),
      flow_id_(flow_id),
      subflow_id_(subflow_id),
      route_forward_(std::move(route_forward)),
      route_reverse_(std::move(route_reverse)),
      params_(params),
      cwnd_(params.initial_cwnd),
      ssthresh_(params.initial_ssthresh),
      rto_ns_(params.min_rto_ns) {
  require(env != nullptr, "TcpSubflow requires an environment");
  require(!route_forward_.empty() && !route_reverse_.empty(),
          "TcpSubflow requires non-empty routes");
}

void TcpSubflow::start(SimTime at) {
  env_->events().schedule(at, this, kStartCookieBit);
}

void TcpSubflow::try_send() {
  while (static_cast<double>(snd_next_ - snd_una_) < cwnd_) {
    send_segment(snd_next_, /*is_retransmit=*/false);
    ++snd_next_;
  }
}

void TcpSubflow::send_segment(std::int64_t seq, bool is_retransmit) {
  Packet* p = env_->alloc_packet();
  p->route = route_forward_;
  p->hop = 0;
  p->flow_id = flow_id_;
  p->subflow_id = subflow_id_;
  p->seq = seq;
  p->ack = -1;
  p->is_ack = false;
  p->size_bytes = params_.packet_bytes;
  p->sent_at = env_->events().now();
  if (is_retransmit) ++retransmits_;
  env_->inject(p);
}

void TcpSubflow::send_ack(SimTime echo_sent_at) {
  Packet* p = env_->alloc_packet();
  p->route = route_reverse_;
  p->hop = 0;
  p->flow_id = flow_id_;
  p->subflow_id = subflow_id_;
  p->seq = 0;
  p->ack = rcv_next_;
  p->is_ack = true;
  p->size_bytes = params_.ack_bytes;
  p->sent_at = echo_sent_at;  // echoed for the sender's RTT estimate
  env_->inject(p);
}

void TcpSubflow::handle_data(Packet* packet) {
  const std::int64_t seq = packet->seq;
  const SimTime echo = packet->sent_at;
  env_->free_packet(packet);
  if (seq == rcv_next_) {
    ++rcv_next_;
    while (!out_of_order_.empty() && *out_of_order_.begin() == rcv_next_) {
      out_of_order_.erase(out_of_order_.begin());
      ++rcv_next_;
    }
  } else if (seq > rcv_next_) {
    out_of_order_.insert(seq);
  }
  // Cumulative (and duplicate, when out of order) ACK per data packet.
  send_ack(echo);
}

void TcpSubflow::handle_ack(Packet* packet) {
  const std::int64_t ackno = packet->ack;
  const SimTime echo = packet->sent_at;
  env_->free_packet(packet);

  // RTT estimation (RFC 6298 shape, coarse constants).
  const SimTime now = env_->events().now();
  if (now > echo) {
    const SimTime sample = now - echo;
    if (srtt_ns_ == 0) {
      srtt_ns_ = sample;
      rttvar_ns_ = sample / 2;
    } else {
      const auto diff = sample > srtt_ns_ ? sample - srtt_ns_ : srtt_ns_ - sample;
      rttvar_ns_ = (3 * rttvar_ns_ + diff) / 4;
      srtt_ns_ = (7 * srtt_ns_ + sample) / 8;
    }
    rto_ns_ = std::max(params_.min_rto_ns, srtt_ns_ + 4 * rttvar_ns_);
  }

  if (ackno > snd_una_) {
    const double newly = static_cast<double>(ackno - snd_una_);
    snd_una_ = ackno;
    dup_acks_ = 0;
    if (in_recovery_) {
      if (ackno >= recover_) {
        in_recovery_ = false;  // full recovery: the loss window is healed
        cwnd_ = ssthresh_;     // deflate any recovery inflation
      } else {
        // NewReno partial ACK: retransmit the next hole, stay in recovery
        // and keep cwnd (no further halving for this loss window).
        send_segment(snd_una_, /*is_retransmit=*/true);
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += newly;  // slow start
    } else {
      cwnd_ += params_.increase_scale * newly / cwnd_;  // AIMD increase
    }
    arm_rto();
    try_send();
  } else if (ackno == snd_una_ && snd_una_ < snd_next_) {
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      // Fast retransmit; one window halving per loss window (NewReno).
      in_recovery_ = true;
      recover_ = snd_next_;
      ssthresh_ = std::max(2.0, cwnd_ / 2.0);
      cwnd_ = ssthresh_;
      send_segment(snd_una_, /*is_retransmit=*/true);
    } else if (in_recovery_ && dup_acks_ > 3) {
      // Window inflation so new data keeps flowing during recovery.
      cwnd_ += 1.0;
      try_send();
    }
  }
}

void TcpSubflow::arm_rto() {
  ++rto_generation_;
  env_->events().schedule(env_->events().now() + rto_ns_, this,
                          rto_generation_);
}

void TcpSubflow::on_event(std::uint64_t cookie) {
  if (cookie & kStartCookieBit) {
    if (!started_) {
      started_ = true;
      arm_rto();
      try_send();
    }
    return;
  }
  if (cookie != rto_generation_) return;  // superseded timer
  on_rto();
}

void TcpSubflow::on_rto() {
  if (snd_una_ >= snd_next_) {
    arm_rto();  // idle; keep the timer alive
    return;
  }
  // Timeout: multiplicative backoff and go-back-N from the first unacked
  // segment (simple and robust for bulk transfers).
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = params_.initial_cwnd;
  dup_acks_ = 0;
  in_recovery_ = false;
  snd_next_ = snd_una_;
  rto_ns_ = std::min<SimTime>(rto_ns_ * 2, 500'000'000);
  arm_rto();
  try_send();
}

}  // namespace topo::sim
