#include "sim/tcp.h"

#include <algorithm>
#include <functional>

#include "util/error.h"

namespace topo::sim {

TcpSubflow::TcpSubflow(TransportEnv* env, int flow_id, int subflow_id,
                       RouteId route_forward, RouteId route_reverse,
                       const TcpParams& params)
    : env_(env),
      flow_id_(flow_id),
      subflow_id_(subflow_id),
      route_forward_(route_forward),
      route_reverse_(route_reverse),
      params_(params),
      cwnd_(params.initial_cwnd),
      ssthresh_(params.initial_ssthresh),
      rto_ns_(params.min_rto_ns) {
  require(env != nullptr, "TcpSubflow requires an environment");
  require(route_forward_ >= 0 && route_reverse_ >= 0,
          "TcpSubflow requires interned routes");
}

void TcpSubflow::start(SimTime at) {
  env_->events().schedule(at, this, kStartCookieBit);
}

void TcpSubflow::try_send() {
  while (static_cast<double>(snd_next_ - snd_una_) < cwnd_) {
    if (params_.flow_packets > 0 && snd_next_ >= params_.flow_packets) {
      return;  // finite flow: nothing beyond the last packet
    }
    send_segment(snd_next_);
    ++snd_next_;
  }
}

void TcpSubflow::send_segment(std::int64_t seq) {
  // Any send below the high-water mark re-covers old ground — whether a
  // fast retransmit, a NewReno partial-ACK resend, or go-back-N after an
  // RTO — so count it here instead of trusting callers to flag it.
  if (seq < snd_max_) {
    ++retransmits_;
  } else {
    snd_max_ = seq + 1;
  }
  Packet* p = env_->alloc_packet();
  p->route = route_forward_;
  p->hop = 0;
  p->flow_id = flow_id_;
  p->subflow_id = static_cast<std::int16_t>(subflow_id_);
  p->seq = static_cast<std::int32_t>(seq);
  p->ack = -1;
  p->is_ack = false;
  p->size_bytes = static_cast<std::uint16_t>(params_.packet_bytes);
  p->sent_at = env_->events().now();
  env_->inject(p);
}

void TcpSubflow::send_ack(SimTime echo_sent_at) {
  Packet* p = env_->alloc_packet();
  p->route = route_reverse_;
  p->hop = 0;
  p->flow_id = flow_id_;
  p->subflow_id = static_cast<std::int16_t>(subflow_id_);
  p->seq = 0;
  p->ack = static_cast<std::int32_t>(rcv_next_);
  p->is_ack = true;
  p->size_bytes = static_cast<std::uint16_t>(params_.ack_bytes);
  p->sent_at = echo_sent_at;  // echoed for the sender's RTT estimate
  env_->inject(p);
}

void TcpSubflow::handle_data(Packet* packet) {
  const std::int64_t seq = packet->seq;
  const SimTime echo = packet->sent_at;
  env_->free_packet(packet);
  if (seq == rcv_next_) {
    ++rcv_next_;
    while (!out_of_order_.empty() && out_of_order_.front() <= rcv_next_) {
      if (out_of_order_.front() == rcv_next_) ++rcv_next_;
      std::pop_heap(out_of_order_.begin(), out_of_order_.end(),
                    std::greater<>{});
      out_of_order_.pop_back();
    }
  } else if (seq > rcv_next_) {
    out_of_order_.push_back(seq);
    std::push_heap(out_of_order_.begin(), out_of_order_.end(),
                   std::greater<>{});
  }
  // Cumulative (and duplicate, when out of order) ACK per data packet.
  send_ack(echo);
}

void TcpSubflow::handle_ack(Packet* packet) {
  const std::int64_t ackno = packet->ack;
  const SimTime echo = packet->sent_at;
  env_->free_packet(packet);

  // RTT estimation (RFC 6298 shape, coarse constants).
  const SimTime now = env_->events().now();
  if (now > echo) {
    const SimTime sample = now - echo;
    if (srtt_ns_ == 0) {
      srtt_ns_ = sample;
      rttvar_ns_ = sample / 2;
    } else {
      const auto diff = sample > srtt_ns_ ? sample - srtt_ns_ : srtt_ns_ - sample;
      rttvar_ns_ = (3 * rttvar_ns_ + diff) / 4;
      srtt_ns_ = (7 * srtt_ns_ + sample) / 8;
    }
    rto_ns_ = std::max(params_.min_rto_ns, srtt_ns_ + 4 * rttvar_ns_);
  }

  if (ackno > snd_una_) {
    const double newly = static_cast<double>(ackno - snd_una_);
    snd_una_ = ackno;
    dup_acks_ = 0;
    if (in_recovery_) {
      if (ackno >= recover_) {
        in_recovery_ = false;  // full recovery: the loss window is healed
        cwnd_ = ssthresh_;     // deflate any recovery inflation
      } else {
        // NewReno partial ACK: retransmit the next hole, stay in recovery
        // and keep cwnd (no further halving for this loss window).
        send_segment(snd_una_);
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += newly;  // slow start
    } else {
      cwnd_ += params_.increase_scale * newly / cwnd_;  // AIMD increase
    }
    if (params_.flow_packets > 0 && snd_una_ >= params_.flow_packets) {
      // Finite flow fully ACKed: record the completion time and let the
      // pending RTO event die unarmed so the flow goes quiet.
      if (!completed_) {
        completed_ = true;
        completed_at_ = now;
      }
      return;
    }
    arm_rto();
    try_send();
  } else if (ackno == snd_una_ && snd_una_ < snd_next_) {
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      // Fast retransmit; one window halving per loss window (NewReno).
      in_recovery_ = true;
      recover_ = snd_next_;
      ssthresh_ = std::max(2.0, cwnd_ / 2.0);
      cwnd_ = ssthresh_;
      send_segment(snd_una_);
    } else if (in_recovery_ && dup_acks_ > 3) {
      // Window inflation so new data keeps flowing during recovery.
      cwnd_ += 1.0;
      try_send();
    }
  }
}

void TcpSubflow::arm_rto() {
  rto_deadline_ = env_->events().now() + rto_ns_;
  // Reserve a tie-break seq on every arm even when the pending event is
  // reused: the timer then fires with the seq of the last arm, so
  // same-nanosecond ordering is identical to a schedule-per-arm timer
  // while only one live event sits in the queue.
  rto_tie_seq_ = env_->events().reserve_seq();
  if (!rto_event_pending_) {
    rto_event_pending_ = true;
    rto_event_when_ = rto_deadline_;
    env_->events().schedule_at_seq(rto_deadline_, rto_tie_seq_, this,
                                   kRtoCookie);
  } else if (rto_deadline_ < rto_event_when_) {
    // The deadline moved EARLIER than the pending event (the RTO estimate
    // shrank, e.g. after backoff once ACKs resumed): that event can no
    // longer fire on time, so supersede it. The old event becomes a dead
    // no-op — but this happens once per shrink, not once per ACK.
    rto_event_when_ = rto_deadline_;
    env_->events().schedule_at_seq(rto_deadline_, rto_tie_seq_, this,
                                   kRtoCookie);
  }
}

void TcpSubflow::on_event(std::uint64_t cookie) {
  if (cookie & kStartCookieBit) {
    if (!started_) {
      started_ = true;
      arm_rto();
      try_send();
    }
    return;
  }
  if (env_->events().now() != rto_event_when_) {
    return;  // superseded by an earlier re-arm: dead no-op
  }
  if (env_->events().now() < rto_deadline_) {
    // The timer was pushed forward since this event was scheduled:
    // re-arm at the current deadline rather than timing out.
    rto_event_when_ = rto_deadline_;
    env_->events().schedule_at_seq(rto_deadline_, rto_tie_seq_, this,
                                   kRtoCookie);
    return;
  }
  rto_event_pending_ = false;
  on_rto();
}

void TcpSubflow::on_rto() {
  if (completed_) {
    return;  // finished finite flow: no more timers
  }
  if (snd_una_ >= snd_next_) {
    arm_rto();  // idle; keep the timer alive
    return;
  }
  // Timeout: multiplicative backoff and go-back-N from the first unacked
  // segment (simple and robust for bulk transfers).
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = params_.initial_cwnd;
  dup_acks_ = 0;
  in_recovery_ = false;
  snd_next_ = snd_una_;
  rto_ns_ = std::min<SimTime>(rto_ns_ * 2, 500'000'000);
  arm_rto();
  try_send();
}

}  // namespace topo::sim
