// Packet-level simulation of a built topology (Fig 13's substrate).
//
// Maps a switch-level BuiltTopology to per-direction simulated links
// (switch-switch links at their line-speed, one access link per server at
// the base rate), runs an MPTCP-style workload of bulk flows striped over
// per-subflow shortest paths (randomly sampled or ECMP hash-forwarded),
// and reports per-flow goodput after a warmup.
#ifndef TOPODESIGN_SIM_NETWORK_H
#define TOPODESIGN_SIM_NETWORK_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/route_table.h"
#include "sim/tcp.h"
#include "topo/topology.h"
#include "traffic/workload.h"
#include "util/rng.h"

namespace topo::sim {

/// How each subflow's path through the fabric is chosen.
enum class RouteMode {
  kSampledPaths,  ///< Uniform random shortest path per subflow (seed RNG).
  kEcmpHash,      ///< Per-hop 5-tuple hash over equal-cost next hops.
};

/// Simulation parameters; rates are in Gbit/s with the server line rate as
/// the natural unit (mirroring capacity 1.0 in the fluid model).
struct SimParams {
  double server_rate_gbps = 1.0;
  SimTime link_delay_ns = 1'000;
  /// Shallow drop-tail buffers as in commodity DC switches; also keeps the
  /// worst-case queueing delay below the retransmission-timeout floor so
  /// full queues surface as duplicate ACKs rather than spurious RTOs.
  int queue_packets = 25;
  int packet_bytes = 1500;
  int subflows = 8;
  SimTime duration_ns = 20'000'000;   ///< 20 ms simulated.
  SimTime warmup_ns = 10'000'000;     ///< Measure over [warmup, duration].
  SimTime start_jitter_ns = 2'000'000;
  /// Scale each subflow's additive increase by 1/subflows (EWTCP-style
  /// coupling) instead of running fully independent Renos.
  bool ewtcp_coupling = true;
  RouteMode route_mode = RouteMode::kSampledPaths;
};

/// Measured result for one flow.
struct FlowStats {
  int src_server = 0;
  int dst_server = 0;
  double goodput_gbps = 0.0;
  std::int64_t retransmits = 0;
  // Finite (workload) flows only:
  bool finite = false;
  bool completed = false;        ///< All bytes ACKed before the sim ended.
  double size_bytes = 0.0;
  SimTime start_ns = 0;
  SimTime fct_ns = 0;            ///< Completion time minus start (if completed).
  std::int64_t delivered_packets = 0;
};

/// Aggregate simulation outcome.
struct SimulationResult {
  std::vector<FlowStats> flows;
  double min_normalized = 0.0;   ///< min goodput / server rate.
  double mean_normalized = 0.0;  ///< mean goodput / server rate.
  std::uint64_t total_drops = 0;
  std::uint64_t events_processed = 0;
};

/// Owns the simulated network and workload. Typical use:
///   SimNetwork net(topology, params, seed);
///   net.add_permutation_workload();
///   SimulationResult result = net.run();
class SimNetwork final : public PacketReceiver,
                         public TransportEnv,
                         public EventHandler {
 public:
  SimNetwork(const BuiltTopology& topology, const SimParams& params,
             std::uint64_t seed);
  ~SimNetwork() override;

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Adds one MPTCP flow between two servers (ids as in ServerMap).
  void add_flow(int src_server, int dst_server);

  /// Adds a full random-permutation workload over all servers, drawn from
  /// a stream derived from the network seed.
  void add_permutation_workload();

  /// Adds one finite single-path flow of `size_bytes` whose transfer
  /// starts at absolute time `start_at`. Requires params.subflows == 1
  /// (finite workload flows are single-subflow) and draws nothing from
  /// the network RNG, so bulk-flow behaviour is untouched.
  void add_finite_flow(int src_server, int dst_server, double size_bytes,
                       SimTime start_at);

  /// Queues a finite-flow workload (see traffic/workload.h): each arrival
  /// is injected lazily at its start time by an internal timer, so a run
  /// can carry far more arrivals than concurrently active flows.
  void queue_finite_workload(std::vector<FiniteFlow> arrivals);

  /// Runs to params.duration_ns and gathers statistics.
  [[nodiscard]] SimulationResult run();

  /// Distinct routes interned so far (fixed once the workload is added).
  [[nodiscard]] std::size_t route_count() const {
    return routes_.route_count();
  }
  /// Packet-pool capacity (chunks x chunk size); stops growing once the
  /// simulation reaches steady state (the free list recycles), so a
  /// measurement-window allocation is a leak a test can catch.
  [[nodiscard]] std::size_t pool_allocated() const {
    return pool_chunks_.size() * kPoolChunk;
  }
  /// Events currently pending in the heap.
  [[nodiscard]] std::size_t pending_events() const { return events_.size(); }

  // PacketReceiver:
  void packet_arrived(Packet* packet) override;

  // EventHandler: the network receives link arrival events directly (the
  // cookie carries the packet pointer with its tag bit set), so the hot
  // arrival path never loads the cold link object.
  void on_event(std::uint64_t cookie) override {
    packet_arrived(reinterpret_cast<Packet*>(cookie & ~std::uint64_t{1}));
  }

  // TransportEnv:
  EventQueue& events() override { return events_; }
  Packet* alloc_packet() override;
  void free_packet(Packet* packet) override;
  void inject(Packet* packet) override;

 private:
  struct FlowRecord {
    int src_server = 0;
    int dst_server = 0;
    std::vector<std::int64_t> delivered_at_warmup;
    // Finite (workload) flows only:
    bool finite = false;
    double size_bytes = 0.0;
    SimTime start_ns = 0;
  };

  /// Separate handler for workload-arrival timer events: SimNetwork's own
  /// on_event() interprets cookies as tagged packet pointers, so arrivals
  /// must not share it.
  struct ArrivalInjector final : public EventHandler {
    SimNetwork* net = nullptr;
    void on_event(std::uint64_t /*cookie*/) override {
      net->inject_due_arrivals();
    }
  };

  /// Adds every queued arrival whose start time is due, then re-arms the
  /// timer for the next one.
  void inject_due_arrivals();
  void schedule_next_arrival();

  /// Subflow k of flow f lives at subflows_[f * params_.subflows + k].
  [[nodiscard]] TcpSubflow& subflow(int flow_id, int subflow_id) {
    return subflows_[static_cast<std::size_t>(flow_id) *
                         static_cast<std::size_t>(params_.subflows) +
                     static_cast<std::size_t>(subflow_id)];
  }

  [[nodiscard]] int host_uplink(int server) const;
  [[nodiscard]] int host_downlink(int server) const;
  [[nodiscard]] const std::vector<int>& dist_to(NodeId dst_switch);
  /// Builds and interns one host-to-host route for subflow k.
  [[nodiscard]] RouteId make_route(int from_server, int to_server,
                                   int subflow);

  const BuiltTopology& topology_;
  SimParams params_;
  std::uint64_t seed_;
  Rng rng_;
  std::uint64_t ecmp_salt_;
  EventQueue events_;
  // Links are stored directly (not via unique_ptr): the forwarding hot
  // path indexes links_ once per hop, and one pointer chase fewer per
  // event is measurable at fig13 sizes. The vector is reserved to its
  // final size in the constructor — links never relocate after events
  // start referencing them.
  std::vector<SimLink> links_;
  std::vector<NodeId> server_home_;
  std::vector<FlowRecord> flows_;
  // Deque for stable addresses (scheduled events point at subflows) with
  // chunked, mostly-contiguous storage — flows are added incrementally so
  // a reserved vector is not an option here.
  std::deque<TcpSubflow> subflows_;
  std::map<NodeId, std::vector<int>> dist_cache_;
  RouteTable routes_;

  // Pending finite-flow arrivals, ascending by start time.
  std::vector<FiniteFlow> arrivals_;
  std::size_t next_arrival_ = 0;
  ArrivalInjector injector_;

  // Free-list pool over chunked POD storage: one allocation per
  // kPoolChunk packets during ramp-up, none afterwards.
  static constexpr std::size_t kPoolChunk = 1024;
  std::vector<std::unique_ptr<Packet[]>> pool_chunks_;
  std::vector<Packet*> pool_free_;
  std::uint64_t dropped_at_inject_ = 0;
};

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_NETWORK_H
