// Packet-level simulation of a built topology (Fig 13's substrate).
//
// Maps a switch-level BuiltTopology to per-direction simulated links
// (switch-switch links at their line-speed, one access link per server at
// the base rate), runs an MPTCP-style workload of bulk flows striped over
// sampled shortest paths, and reports per-flow goodput after a warmup.
#ifndef TOPODESIGN_SIM_NETWORK_H
#define TOPODESIGN_SIM_NETWORK_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/tcp.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace topo::sim {

/// Simulation parameters; rates are in Gbit/s with the server line rate as
/// the natural unit (mirroring capacity 1.0 in the fluid model).
struct SimParams {
  double server_rate_gbps = 1.0;
  SimTime link_delay_ns = 1'000;
  /// Shallow drop-tail buffers as in commodity DC switches; also keeps the
  /// worst-case queueing delay below the retransmission-timeout floor so
  /// full queues surface as duplicate ACKs rather than spurious RTOs.
  int queue_packets = 25;
  int packet_bytes = 1500;
  int subflows = 8;
  SimTime duration_ns = 20'000'000;   ///< 20 ms simulated.
  SimTime warmup_ns = 10'000'000;     ///< Measure over [warmup, duration].
  SimTime start_jitter_ns = 2'000'000;
  /// Scale each subflow's additive increase by 1/subflows (EWTCP-style
  /// coupling) instead of running fully independent Renos.
  bool ewtcp_coupling = true;
};

/// Measured result for one flow.
struct FlowStats {
  int src_server = 0;
  int dst_server = 0;
  double goodput_gbps = 0.0;
  std::int64_t retransmits = 0;
};

/// Aggregate simulation outcome.
struct SimulationResult {
  std::vector<FlowStats> flows;
  double min_normalized = 0.0;   ///< min goodput / server rate.
  double mean_normalized = 0.0;  ///< mean goodput / server rate.
  std::uint64_t total_drops = 0;
  std::uint64_t events_processed = 0;
};

/// Owns the simulated network and workload. Typical use:
///   SimNetwork net(topology, params, seed);
///   net.add_permutation_workload();
///   SimulationResult result = net.run();
class SimNetwork final : public PacketReceiver, public TransportEnv {
 public:
  SimNetwork(const BuiltTopology& topology, const SimParams& params,
             std::uint64_t seed);
  ~SimNetwork() override;

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Adds one MPTCP flow between two servers (ids as in ServerMap).
  void add_flow(int src_server, int dst_server);

  /// Adds a full random-permutation workload over all servers.
  void add_permutation_workload();

  /// Runs to params.duration_ns and gathers statistics.
  [[nodiscard]] SimulationResult run();

  // PacketReceiver:
  void packet_arrived(Packet* packet) override;

  // TransportEnv:
  EventQueue& events() override { return events_; }
  Packet* alloc_packet() override;
  void free_packet(Packet* packet) override;
  void inject(Packet* packet) override;

 private:
  struct FlowRecord {
    int src_server = 0;
    int dst_server = 0;
    std::vector<std::unique_ptr<TcpSubflow>> subflows;
    std::vector<std::int64_t> delivered_at_warmup;
  };

  [[nodiscard]] int host_uplink(int server) const;
  [[nodiscard]] int host_downlink(int server) const;
  [[nodiscard]] const std::vector<int>& dist_to(NodeId dst_switch);

  const BuiltTopology& topology_;
  SimParams params_;
  Rng rng_;
  EventQueue events_;
  std::vector<std::unique_ptr<SimLink>> links_;
  std::vector<NodeId> server_home_;
  std::vector<FlowRecord> flows_;
  std::map<NodeId, std::vector<int>> dist_cache_;

  std::vector<std::unique_ptr<Packet>> pool_storage_;
  std::vector<Packet*> pool_free_;
  std::uint64_t dropped_at_inject_ = 0;
};

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_NETWORK_H
