// Simulated directed link: serialization + propagation + drop-tail queue.
#ifndef TOPODESIGN_SIM_LINK_H
#define TOPODESIGN_SIM_LINK_H

#include <cstdint>
#include <deque>

#include "sim/event_queue.h"
#include "sim/packet.h"
#include "util/rng.h"

namespace topo::sim {

/// Receives packets that finished traversing a link.
class PacketReceiver {
 public:
  virtual ~PacketReceiver() = default;
  virtual void packet_arrived(Packet* packet) = 0;
};

/// One direction of a cable: a fixed-rate serializer feeding a fixed-delay
/// pipe, with a FIFO queue in front. The queue drops at the tail when
/// full and, when an Rng is supplied, performs RED-style probabilistic
/// early drop above a fill threshold — without it, same-RTT Reno flows
/// synchronize their losses and can lock each other out for long spells.
class SimLink : public EventHandler {
 public:
  /// rate_gbps: serialization rate in Gbit/s. delay_ns: propagation delay.
  /// queue_packets: queue capacity (excludes the packet in service).
  /// receiver: where packets land after traversal. rng: optional, enables
  /// early drop (data packets only).
  SimLink(EventQueue* queue, double rate_gbps, SimTime delay_ns,
          int queue_packets, PacketReceiver* receiver, Rng* rng = nullptr)
      : events_(queue),
        rate_gbps_(rate_gbps),
        delay_ns_(delay_ns),
        queue_capacity_(queue_packets),
        receiver_(receiver),
        rng_(rng) {
    require(queue != nullptr && receiver != nullptr,
            "SimLink requires a queue and receiver");
    require(rate_gbps > 0.0, "link rate must be positive");
    require(queue_packets >= 1, "queue capacity must be >= 1");
  }

  SimLink(const SimLink&) = delete;
  SimLink& operator=(const SimLink&) = delete;

  /// Offers a packet to the link. Returns false (and leaves the caller
  /// owning the packet) when the packet is dropped — the caller frees it.
  [[nodiscard]] bool enqueue(Packet* packet) {
    if (transmitting_ == nullptr) {
      start_transmission(packet);
      return true;
    }
    const int backlog = static_cast<int>(queue_.size());
    if (backlog >= queue_capacity_) {
      ++drops_;
      return false;
    }
    if (rng_ != nullptr && !packet->is_ack) {
      // Linear early-drop ramp from kRedStart of capacity to the tail.
      const double fill = static_cast<double>(backlog) / queue_capacity_;
      if (fill > kRedStart) {
        const double p =
            kRedMaxProbability * (fill - kRedStart) / (1.0 - kRedStart);
        if (rng_->chance(p)) {
          ++drops_;
          return false;
        }
      }
    }
    queue_.push_back(packet);
    return true;
  }

  void on_event(std::uint64_t cookie) override {
    if (cookie == kTxDone) {
      // Serialization finished: the packet enters the propagation pipe.
      in_flight_.push_back(transmitting_);
      events_->schedule(events_->now() + delay_ns_, this, kArrival);
      transmitting_ = nullptr;
      if (!queue_.empty()) {
        Packet* next = queue_.front();
        queue_.pop_front();
        start_transmission(next);
      }
    } else {
      Packet* packet = in_flight_.front();
      in_flight_.pop_front();
      receiver_->packet_arrived(packet);
    }
  }

  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] double rate_gbps() const { return rate_gbps_; }

 private:
  static constexpr std::uint64_t kTxDone = 0;
  static constexpr std::uint64_t kArrival = 1;
  static constexpr double kRedStart = 0.6;
  static constexpr double kRedMaxProbability = 0.2;

  void start_transmission(Packet* packet) {
    transmitting_ = packet;
    ++sent_;
    const double bits = 8.0 * packet->size_bytes;
    const auto tx_ns = static_cast<SimTime>(bits / rate_gbps_);
    events_->schedule(events_->now() + (tx_ns == 0 ? 1 : tx_ns), this, kTxDone);
  }

  EventQueue* events_;
  double rate_gbps_;
  SimTime delay_ns_;
  int queue_capacity_;
  PacketReceiver* receiver_;
  Rng* rng_;

  Packet* transmitting_ = nullptr;
  std::deque<Packet*> queue_;
  std::deque<Packet*> in_flight_;
  std::uint64_t drops_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_LINK_H
