// Simulated directed link: serialization + propagation + drop-tail queue.
#ifndef TOPODESIGN_SIM_LINK_H
#define TOPODESIGN_SIM_LINK_H

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/packet.h"
#include "util/rng.h"

namespace topo::sim {

/// Receives packets that finished traversing a link.
class PacketReceiver {
 public:
  virtual ~PacketReceiver() = default;
  virtual void packet_arrived(Packet* packet) = 0;
};

/// Growable power-of-two ring of packet pointers: the link FIFOs are hot
/// (two operations per packet per hop) and a deque's segmented storage and
/// per-op branching cost real time at fig13 sizes. The first 8 slots are
/// stored inline so an uncongested link's FIFO lives in the cache line
/// right after the link's hot fields; capacity doubles onto the heap on
/// overflow and is never given back — links reach steady state quickly.
class PacketRing {
 public:
  PacketRing() = default;
  ~PacketRing() {
    if (buf_ != inline_) delete[] buf_;
  }
  PacketRing(const PacketRing&) = delete;
  PacketRing& operator=(const PacketRing&) = delete;
  PacketRing(PacketRing&& other) noexcept
      : mask_(other.mask_), head_(other.head_), count_(other.count_) {
    if (other.buf_ == other.inline_) {
      for (std::uint32_t i = 0; i < kInlineCapacity; ++i) {
        inline_[i] = other.inline_[i];
      }
      buf_ = inline_;
    } else {
      buf_ = other.buf_;
      other.buf_ = other.inline_;
      other.mask_ = kInlineCapacity - 1;
      other.head_ = 0;
      other.count_ = 0;
    }
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] Packet* front() const { return buf_[head_]; }

  void push_back(Packet* p) {
    if (count_ > mask_) grow();
    buf_[(head_ + count_) & mask_] = p;
    ++count_;
  }

  Packet* pop_front() {
    Packet* p = buf_[head_];
    head_ = (head_ + 1) & mask_;
    --count_;
    return p;
  }

 private:
  static constexpr std::uint32_t kInlineCapacity = 8;

  void grow() {
    const std::uint32_t capacity = mask_ + 1u;
    Packet** bigger = new Packet*[2 * capacity];
    for (std::uint32_t i = 0; i < count_; ++i) {
      bigger[i] = buf_[(head_ + i) & mask_];
    }
    if (buf_ != inline_) delete[] buf_;
    buf_ = bigger;
    mask_ = static_cast<std::uint16_t>(2 * capacity - 1);
    head_ = 0;
  }

  Packet** buf_ = inline_;
  std::uint16_t mask_ = kInlineCapacity - 1;
  std::uint16_t head_ = 0;
  std::uint16_t count_ = 0;
  Packet* inline_[kInlineCapacity];
};

/// One direction of a cable: a fixed-rate serializer feeding a fixed-delay
/// pipe, with a FIFO queue in front. The queue drops at the tail when
/// full and, when an Rng is supplied, performs RED-style probabilistic
/// early drop above a fill threshold — without it, same-RTT Reno flows
/// synchronize their losses and can lock each other out for long spells.
class alignas(64) SimLink : public EventHandler {
 public:
  /// rate_gbps: serialization rate in Gbit/s. delay_ns: propagation delay.
  /// queue_packets: queue capacity (excludes the packet in service).
  /// receiver: where packets land after traversal. rng: optional, enables
  /// early drop (data packets only). arrival_handler: optional EventHandler
  /// that receives arrival events directly (cookie = packet pointer | 1)
  /// instead of routing them through this link — SimNetwork passes itself
  /// so arrivals never touch the (cache-cold) link object; when null the
  /// link handles its own arrivals and forwards to `receiver`.
  SimLink(EventQueue* queue, double rate_gbps, SimTime delay_ns,
          int queue_packets, PacketReceiver* receiver, Rng* rng = nullptr,
          EventHandler* arrival_handler = nullptr)
      : events_(queue),
        rate_gbps_(rate_gbps),
        delay_ns_(static_cast<std::uint32_t>(delay_ns)),
        queue_capacity_(queue_packets),
        arrival_handler_(arrival_handler != nullptr ? arrival_handler : this),
        receiver_(receiver),
        rng_(rng) {
    require(queue != nullptr && receiver != nullptr,
            "SimLink requires a queue and receiver");
    require(rate_gbps > 0.0, "link rate must be positive");
    require(queue_packets >= 1, "queue capacity must be >= 1");
    require(delay_ns == delay_ns_, "link delay exceeds 32 bits of ns");
  }

  SimLink(const SimLink&) = delete;
  SimLink& operator=(const SimLink&) = delete;
  // Movable so links can live contiguously in a std::vector — but only
  // before any event references the link (SimNetwork reserves up front).
  SimLink(SimLink&&) noexcept = default;

  /// Offers a packet to the link. Returns false (and leaves the caller
  /// owning the packet) when the packet is dropped — the caller frees it.
  [[nodiscard]] bool enqueue(Packet* packet) {
    if (transmitting_ == nullptr) {
      start_transmission(packet);
      return true;
    }
    const int backlog = static_cast<int>(queue_.size());
    if (backlog >= queue_capacity_) {
      ++drops_;
      return false;
    }
    if (rng_ != nullptr && !packet->is_ack) {
      // Linear early-drop ramp from kRedStart of capacity to the tail.
      const double fill = static_cast<double>(backlog) / queue_capacity_;
      if (fill > kRedStart) {
        const double p =
            kRedMaxProbability * (fill - kRedStart) / (1.0 - kRedStart);
        if (rng_->chance(p)) {
          ++drops_;
          return false;
        }
      }
    }
    queue_.push_back(packet);
    return true;
  }

  void on_event(std::uint64_t cookie) override {
    if (cookie == kTxDone) {
      // Serialization finished: the packet enters the propagation pipe.
      // The arrival event carries the packet pointer in its cookie
      // (packets are 8-byte aligned, so bit 0 is free for the tag) —
      // no in-flight FIFO needed.
      if (!queue_.empty()) {
        // The queued packet has gone cold while waiting; overlap its
        // fetch with the arrival-event insertion below.
        __builtin_prefetch(queue_.front());
      }
      events_->schedule(
          events_->now() + delay_ns_, arrival_handler_,
          reinterpret_cast<std::uintptr_t>(transmitting_) | kArrivalTag);
      transmitting_ = nullptr;
      if (!queue_.empty()) start_transmission(queue_.pop_front());
    } else {
      receiver_->packet_arrived(
          reinterpret_cast<Packet*>(cookie & ~kArrivalTag));
    }
  }

  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] double rate_gbps() const { return rate_gbps_; }

 private:
  static constexpr std::uint64_t kTxDone = 0;
  static constexpr std::uint64_t kArrivalTag = 1;
  static constexpr double kRedStart = 0.6;
  static constexpr double kRedMaxProbability = 0.2;

  void start_transmission(Packet* packet) {
    transmitting_ = packet;
    ++sent_;
    const double bits = 8.0 * packet->size_bytes;
    const auto tx_ns = static_cast<SimTime>(bits / rate_gbps_);
    events_->schedule(events_->now() + (tx_ns == 0 ? 1 : tx_ns), this, kTxDone);
  }

  // Field order is deliberate (and the class is cache-line aligned):
  // together with the vptr, the fields the per-event hot paths touch
  // (TxDone: transmitting_/events_/rate/delay/arrival_handler_/ring
  // header; enqueue: transmitting_/capacity/ring header) fill the link's
  // first cache line exactly, and the ring's inline slots are the second
  // line — which the adjacent-line prefetcher pulls in alongside it.
  Packet* transmitting_ = nullptr;
  EventQueue* events_;
  double rate_gbps_;
  std::uint32_t delay_ns_;
  int queue_capacity_;
  EventHandler* arrival_handler_;
  PacketRing queue_;
  PacketReceiver* receiver_;
  Rng* rng_;
  std::uint32_t drops_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_LINK_H
