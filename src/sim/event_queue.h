// Discrete-event scheduler for the packet-level simulator.
//
// A calendar wheel feeding a sort-on-drain run. Most scheduling in a
// packet simulation is short-range (serialization slots, propagation
// delays) with a sparse tail of long-range timers (RTOs), so a single
// monolithic heap spends its time sifting through thousands of parked
// timer events. Here an event is binned O(1) into a 128 ns-wide wheel
// bucket (or an overflow list past the wheel horizon); the bucket being
// drained is sorted once and consumed by index — contiguous, cache-hot,
// no per-event sift. The rare event scheduled into the already-draining
// range waits in a small 4-ary side heap merged at the front, so the
// total order (when, then schedule order) is identical to a single
// heap: same-time events share a bucket and ties break by sequence
// number. Handlers implement a single callback keyed by an opaque
// cookie, avoiding per-event allocation — the Fig-13 simulations push
// tens of millions of events.
#ifndef TOPODESIGN_SIM_EVENT_QUEUE_H
#define TOPODESIGN_SIM_EVENT_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace topo::sim {

/// Simulation time in nanoseconds.
using SimTime = std::uint64_t;

/// Receiver of scheduled events.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  /// Called when a scheduled event fires; `cookie` is the value passed to
  /// EventQueue::schedule.
  virtual void on_event(std::uint64_t cookie) = 0;
};

/// Calendar-wheel discrete event queue with deterministic FIFO
/// tie-breaking among same-time events.
class EventQueue {
 public:
  EventQueue()
      : buckets_(kBuckets), occupancy_(kBuckets / 64, 0) {}

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `handler->on_event(cookie)` at absolute time `when`
  /// (must not be in the past).
  void schedule(SimTime when, EventHandler* handler, std::uint64_t cookie) {
    schedule_at_seq(when, next_seq_++, handler, cookie);
  }

  /// Draws the next tie-break sequence number without scheduling anything.
  /// A timer that re-arms an already-pending event reserves a seq per arm
  /// and fires with the seq of the LAST arm (via schedule_at_seq), so
  /// same-nanosecond ordering is identical to a schedule-per-arm timer.
  [[nodiscard]] std::uint64_t reserve_seq() { return next_seq_++; }

  /// Schedules with an explicit tie-break seq from reserve_seq(). A seq
  /// must be scheduled at most once.
  void schedule_at_seq(SimTime when, std::uint64_t seq, EventHandler* handler,
                       std::uint64_t cookie) {
    require(handler != nullptr, "EventQueue::schedule requires a handler");
    require(when >= now_, "cannot schedule events in the past");
    const Event event{when, seq, handler, cookie};
    ++size_;
    const std::uint64_t bucket = when >> kBucketShift;
    if (bucket < cursor_) {
      // The event's bucket is already draining: it joins the small
      // incoming heap, merged against the sorted run on the fly (its
      // `when` is still >= now_, so ordering holds). Rare — almost all
      // scheduling targets future buckets (serialization and
      // propagation delays span many bucket widths).
      incoming_push(event);
    } else if (bucket - cursor_ < kBuckets) {
      const std::size_t slot = bucket & (kBuckets - 1);
      buckets_[slot].push_back(event);
      occupancy_[slot >> 6] |= 1ULL << (slot & 63);
    } else {
      overflow_.push_back(event);
    }
  }

  /// Runs events until the queue empties or simulated time reaches `end`.
  /// Returns the number of events processed.
  std::uint64_t run_until(SimTime end) {
    std::uint64_t processed = 0;
    while (size_ > 0) {
      if (!has_active() && !refill(end)) break;
      // Merge-front between the sorted run and the incoming heap. The
      // incoming heap is empty in the overwhelmingly common case, so
      // the pop is an index increment over contiguous sorted events.
      const bool from_incoming =
          !incoming_.empty() &&
          (run_pos_ >= run_.size() ||
           before(incoming_.front(), run_[run_pos_]));
      const Event event = from_incoming ? incoming_.front() : run_[run_pos_];
      if (event.when > end) break;
      if (from_incoming) {
        incoming_pop();
      } else {
        ++run_pos_;
      }
      --size_;
      // The next event's handler is a near-certain upcoming miss; start
      // the fetch while this event's callback runs. Cookies that look
      // like heap pointers (packet arrivals carry the packet in the
      // cookie) are prefetched too — prefetching a non-address is
      // harmless.
      if (run_pos_ < run_.size()) {
        const Event& next = run_[run_pos_];
        // Both lines: the link/subflow hot state spans past 64 bytes.
        __builtin_prefetch(next.handler);
        __builtin_prefetch(reinterpret_cast<const char*>(next.handler) + 64);
        if (next.cookie >= 4096 && (next.cookie >> 48) == 0) {
          __builtin_prefetch(
              reinterpret_cast<const void*>(next.cookie & ~std::uint64_t{7}));
        }
      }
      now_ = event.when;
      event.handler->on_event(event.cookie);
      ++processed;
    }
    now_ = end;
    return processed;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  // 2^7 ns (128 ns) buckets; 2^10 of them give a ~131 us wheel horizon.
  // Narrow buckets keep the active heap small enough to stay L1-resident
  // even at fig13 density (~2 events/ns): at 1 µs buckets it held
  // thousands of entries and every sift missed cache. Long-range events
  // (RTO timers, start jitter) wait in the overflow list and are
  // re-binned once per wheel revolution — a scan per millisecond of
  // simulated time, noise next to the per-event work.
  static constexpr std::uint64_t kBucketShift = 7;
  static constexpr std::uint64_t kBuckets = 1ULL << 10;

  struct Event {
    SimTime when = 0;
    std::uint64_t seq = 0;  // FIFO among same-time events
    EventHandler* handler = nullptr;
    std::uint64_t cookie = 0;
  };

  static bool before(const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  // --- the active window: a sorted run plus a small incoming heap ---
  //
  // Draining a bucket sorts it once into `run_`, consumed by index —
  // O(1) contiguous pops instead of a heap sift per event. Events
  // scheduled INTO the already-draining range (rare: serialization and
  // propagation delays span many buckets) wait in the small 4-ary
  // `incoming_` heap (same hole-movement sift discipline as the pooled
  // Dijkstra heap in graph/shortest_path) and merge at the front, so
  // the total (when, seq) order is identical to a single heap.

  [[nodiscard]] bool has_active() const {
    return run_pos_ < run_.size() || !incoming_.empty();
  }

  void incoming_push(const Event& event) {
    std::size_t hole = incoming_.size();
    incoming_.emplace_back();
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 4;
      if (!before(event, incoming_[parent])) break;
      incoming_[hole] = incoming_[parent];
      hole = parent;
    }
    incoming_[hole] = event;
  }

  void incoming_pop() {
    const Event moved = incoming_.back();
    incoming_.pop_back();
    if (incoming_.empty()) return;
    const std::size_t size = incoming_.size();
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first_child = 4 * hole + 1;
      if (first_child >= size) break;
      const std::size_t last_child = std::min(first_child + 4, size);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (before(incoming_[c], incoming_[best])) best = c;
      }
      if (!before(incoming_[best], moved)) break;
      incoming_[hole] = incoming_[best];
      hole = best;
    }
    incoming_[hole] = moved;
  }

  // --- wheel advance ---

  /// Opens buckets (in time order) into the active window until it holds
  /// the next pending event, the wheel passes `end`, or only overflow
  /// events beyond the horizon remain. Returns whether the window is
  /// non-empty.
  bool refill(SimTime end) {
    const std::uint64_t end_bucket = (end >> kBucketShift) + 1;
    while (!has_active()) {
      if (cursor_ >= end_bucket && overflow_.empty()) return false;
      if ((cursor_ & (kBuckets - 1)) == 0 && !overflow_.empty()) rebin();
      const std::uint64_t next = next_occupied();
      if (next == kNoBucket) {
        // Nothing left in this revolution: jump to its end (re-binning
        // overflow there) or stop at the caller's boundary.
        const std::uint64_t revolution_end =
            (cursor_ & ~(kBuckets - 1)) + kBuckets;
        if (revolution_end > end_bucket && overflow_.empty()) return false;
        cursor_ = revolution_end;
        continue;
      }
      cursor_ = next + 1;
      drain_bucket(next & (kBuckets - 1));
    }
    return true;
  }

  static constexpr std::uint64_t kNoBucket = ~0ULL;

  /// First occupied absolute bucket in [cursor_, end of this revolution).
  [[nodiscard]] std::uint64_t next_occupied() const {
    const std::uint64_t revolution_end = (cursor_ & ~(kBuckets - 1)) + kBuckets;
    std::uint64_t bucket = cursor_;
    while (bucket < revolution_end) {
      const std::size_t slot = bucket & (kBuckets - 1);
      std::uint64_t word = occupancy_[slot >> 6] >> (slot & 63);
      if (word != 0) {
        const auto offset =
            static_cast<std::uint64_t>(__builtin_ctzll(word));
        const std::uint64_t found = bucket + offset;
        if (found < revolution_end) return found;
        return kNoBucket;
      }
      bucket += 64 - (slot & 63);
    }
    return kNoBucket;
  }

  void drain_bucket(std::size_t slot) {
    // Swap, don't copy: the consumed run's storage becomes the bucket's
    // next fill, so both capacities recycle without allocating.
    std::swap(run_, buckets_[slot]);
    buckets_[slot].clear();
    run_pos_ = 0;
    // Lambda, not the function itself: a function pointer comparator
    // defeats inlining inside std::sort.
    std::sort(run_.begin(), run_.end(),
              [](const Event& a, const Event& b) { return before(a, b); });
    occupancy_[slot >> 6] &= ~(1ULL << (slot & 63));
  }

  /// Moves overflow events now inside the wheel horizon into their slots.
  void rebin() {
    std::size_t keep = 0;
    for (Event& event : overflow_) {
      const std::uint64_t bucket = event.when >> kBucketShift;
      if (bucket - cursor_ < kBuckets) {
        const std::size_t slot = bucket & (kBuckets - 1);
        buckets_[slot].push_back(event);
        occupancy_[slot >> 6] |= 1ULL << (slot & 63);
      } else {
        overflow_[keep++] = event;
      }
    }
    overflow_.resize(keep);
  }

  std::vector<std::vector<Event>> buckets_;
  std::vector<std::uint64_t> occupancy_;
  std::vector<Event> overflow_;
  std::vector<Event> run_;          ///< Sorted drained bucket, consumed by
  std::size_t run_pos_ = 0;         ///< index from run_pos_.
  std::vector<Event> incoming_;     ///< Heap of in-range late schedules.
  std::uint64_t cursor_ = 0;  ///< Next absolute bucket index to open.
  std::size_t size_ = 0;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_EVENT_QUEUE_H
