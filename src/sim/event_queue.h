// Discrete-event scheduler for the packet-level simulator.
//
// A binary-heap event queue over POD events. Handlers implement a single
// callback keyed by an opaque cookie, avoiding per-event allocation — the
// Fig-13 simulations push tens of millions of events.
#ifndef TOPODESIGN_SIM_EVENT_QUEUE_H
#define TOPODESIGN_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <queue>
#include <vector>

#include "util/error.h"

namespace topo::sim {

/// Simulation time in nanoseconds.
using SimTime = std::uint64_t;

/// Receiver of scheduled events.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  /// Called when a scheduled event fires; `cookie` is the value passed to
  /// EventQueue::schedule.
  virtual void on_event(std::uint64_t cookie) = 0;
};

/// Binary-heap discrete event queue with deterministic FIFO tie-breaking.
class EventQueue {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `handler->on_event(cookie)` at absolute time `when`
  /// (must not be in the past).
  void schedule(SimTime when, EventHandler* handler, std::uint64_t cookie) {
    require(handler != nullptr, "EventQueue::schedule requires a handler");
    require(when >= now_, "cannot schedule events in the past");
    heap_.push(Event{when, next_seq_++, handler, cookie});
  }

  /// Runs events until the queue empties or simulated time reaches `end`.
  /// Returns the number of events processed.
  std::uint64_t run_until(SimTime end) {
    std::uint64_t processed = 0;
    while (!heap_.empty() && heap_.top().when <= end) {
      const Event event = heap_.top();
      heap_.pop();
      now_ = event.when;
      event.handler->on_event(event.cookie);
      ++processed;
    }
    now_ = end;
    return processed;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  struct Event {
    SimTime when = 0;
    std::uint64_t seq = 0;  // FIFO among same-time events
    EventHandler* handler = nullptr;
    std::uint64_t cookie = 0;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_EVENT_QUEUE_H
