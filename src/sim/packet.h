// Packet representation for the simulator.
//
// Packets are source-routed: the sender stamps the full sequence of
// directed-link ids from source host to destination host. ACKs carry the
// reverse route. Packets live in a free-list pool owned by the simulation
// to avoid allocation churn.
#ifndef TOPODESIGN_SIM_PACKET_H
#define TOPODESIGN_SIM_PACKET_H

#include <cstdint>
#include <vector>

namespace topo::sim {

/// Data or ACK packet traversing the simulated network.
struct Packet {
  // Routing state.
  std::vector<int> route;  ///< Directed link ids, in traversal order.
  std::size_t hop = 0;     ///< Next index into `route`.

  // Transport state.
  int flow_id = -1;
  int subflow_id = -1;
  std::int64_t seq = 0;  ///< Packet sequence number within the subflow.
  std::int64_t ack = -1; ///< Cumulative ACK (for ACK packets).
  bool is_ack = false;
  int size_bytes = 0;
  std::uint64_t sent_at = 0;  ///< For RTT estimation.
};

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_PACKET_H
