// Packet representation for the simulator.
//
// Packets are source-routed: the sender stamps an interned route id into
// the owning network's RouteTable (the full sequence of directed-link ids
// from source host to destination host; ACKs carry the reverse route's
// id). Keeping the route out-of-line makes Packet a POD that free-lists
// cleanly — no per-send vector copy, no allocation after warmup.
#ifndef TOPODESIGN_SIM_PACKET_H
#define TOPODESIGN_SIM_PACKET_H

#include <cstdint>

namespace topo::sim {

/// Data or ACK packet traversing the simulated network. Plain data; the
/// simulation owns packets through a free-list pool. Packed to 32 bytes
/// (two per cache line) — at fig13 sizes thousands of packets are in
/// flight and the pool's footprint is a measurable share of the per-event
/// cache misses. seq/ack are 32-bit: a subflow would need to deliver 2^31
/// packets in one run (days of simulated time) to wrap.
struct Packet {
  // Routing state.
  std::int32_t route = -1;   ///< Interned route id (RouteTable of the owner).
  std::uint16_t hop = 0;     ///< Next index into the interned route.
  std::uint16_t size_bytes = 0;

  // Transport state.
  std::int32_t flow_id = -1;
  std::int16_t subflow_id = -1;
  bool is_ack = false;
  std::int32_t seq = 0;   ///< Packet sequence number within the subflow.
  std::int32_t ack = -1;  ///< Cumulative ACK (for ACK packets).
  std::uint64_t sent_at = 0;  ///< For RTT estimation.
};

static_assert(sizeof(Packet) == 32, "keep Packet at half a cache line");

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_PACKET_H
