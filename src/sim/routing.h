// Shortest-path sampling for multipath routing.
//
// MPTCP subflows in the Fig-13 experiment run over random shortest paths
// (ECMP-style). A path is sampled by walking from the source toward the
// destination, at each step choosing uniformly among the neighbors that
// lie on some shortest path. Paths are returned as directed-arc id lists
// (arc 2e = edge e u->v, arc 2e+1 = v->u), matching the flow module's
// convention and the simulator's link numbering.
#ifndef TOPODESIGN_SIM_ROUTING_H
#define TOPODESIGN_SIM_ROUTING_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace topo::sim {

/// Samples one uniform-ish random shortest path (directed arc ids) from
/// `src` to `dst`. `dist_to_dst` must be bfs_distances(graph, dst); the
/// caller owns it so repeated sampling reuses one BFS. Returns an empty
/// path when src == dst and raises InvalidArgument when unreachable.
[[nodiscard]] std::vector<int> sample_shortest_arc_path(
    const Graph& graph, NodeId src, NodeId dst,
    const std::vector<int>& dist_to_dst, Rng& rng);

/// Samples `count` shortest paths (independent draws; duplicates possible,
/// as with ECMP hashing).
[[nodiscard]] std::vector<std::vector<int>> sample_shortest_arc_paths(
    const Graph& graph, NodeId src, NodeId dst,
    const std::vector<int>& dist_to_dst, int count, Rng& rng);

/// The per-subflow key a hardware ECMP hasher would derive from the
/// 5-tuple: a mix of the network salt, both host ids, and the subflow
/// index (the port pair of a real hash).
[[nodiscard]] std::uint64_t ecmp_flow_key(std::uint64_t salt, int src_server,
                                          int dst_server, int subflow);

/// Deterministic ECMP hash-forwarded shortest path: at each switch the
/// next hop is picked among the equal-cost neighbors (adjacency order) by
/// hashing (flow_key, switch id), the way real DCN switches hash the
/// 5-tuple per hop. No RNG is consumed, so the path depends only on
/// (graph, src, dst, flow_key) — stable across draw order, repetition,
/// and thread count. Same contract as sample_shortest_arc_path otherwise:
/// empty for src == dst, InvalidArgument when unreachable.
[[nodiscard]] std::vector<int> ecmp_shortest_arc_path(
    const Graph& graph, NodeId src, NodeId dst,
    const std::vector<int>& dist_to_dst, std::uint64_t flow_key);

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_ROUTING_H
