// Shortest-path sampling for multipath routing.
//
// MPTCP subflows in the Fig-13 experiment run over random shortest paths
// (ECMP-style). A path is sampled by walking from the source toward the
// destination, at each step choosing uniformly among the neighbors that
// lie on some shortest path. Paths are returned as directed-arc id lists
// (arc 2e = edge e u->v, arc 2e+1 = v->u), matching the flow module's
// convention and the simulator's link numbering.
#ifndef TOPODESIGN_SIM_ROUTING_H
#define TOPODESIGN_SIM_ROUTING_H

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace topo::sim {

/// Samples one uniform-ish random shortest path (directed arc ids) from
/// `src` to `dst`. `dist_to_dst` must be bfs_distances(graph, dst); the
/// caller owns it so repeated sampling reuses one BFS. Returns an empty
/// path when src == dst and raises InvalidArgument when unreachable.
[[nodiscard]] std::vector<int> sample_shortest_arc_path(
    const Graph& graph, NodeId src, NodeId dst,
    const std::vector<int>& dist_to_dst, Rng& rng);

/// Samples `count` shortest paths (independent draws; duplicates possible,
/// as with ECMP hashing).
[[nodiscard]] std::vector<std::vector<int>> sample_shortest_arc_paths(
    const Graph& graph, NodeId src, NodeId dst,
    const std::vector<int>& dist_to_dst, int count, Rng& rng);

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_ROUTING_H
