#include "sim/routing.h"

#include "util/error.h"

namespace topo::sim {

std::vector<int> sample_shortest_arc_path(const Graph& graph, NodeId src,
                                          NodeId dst,
                                          const std::vector<int>& dist_to_dst,
                                          Rng& rng) {
  require(static_cast<int>(dist_to_dst.size()) == graph.num_nodes(),
          "dist_to_dst must cover all nodes");
  std::vector<int> path;
  if (src == dst) return path;
  require(dist_to_dst[static_cast<std::size_t>(src)] >= 0,
          "sample_shortest_arc_path: destination unreachable");

  NodeId node = src;
  std::vector<const Adjacency*> candidates;
  while (node != dst) {
    candidates.clear();
    const int here = dist_to_dst[static_cast<std::size_t>(node)];
    for (const Adjacency& a : graph.neighbors(node)) {
      if (dist_to_dst[static_cast<std::size_t>(a.to)] == here - 1) {
        candidates.push_back(&a);
      }
    }
    require(!candidates.empty(), "inconsistent BFS distances");
    const Adjacency* step = candidates[rng.index(candidates.size())];
    const Edge& e = graph.edge(step->edge);
    path.push_back(e.u == node ? 2 * step->edge : 2 * step->edge + 1);
    node = step->to;
  }
  return path;
}

std::uint64_t ecmp_flow_key(std::uint64_t salt, int src_server,
                            int dst_server, int subflow) {
  std::uint64_t key = Rng::derive_seed(
      salt, static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_server)));
  key = Rng::derive_seed(
      key, static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst_server)));
  return Rng::derive_seed(
      key, static_cast<std::uint64_t>(static_cast<std::uint32_t>(subflow)));
}

std::vector<int> ecmp_shortest_arc_path(const Graph& graph, NodeId src,
                                        NodeId dst,
                                        const std::vector<int>& dist_to_dst,
                                        std::uint64_t flow_key) {
  require(static_cast<int>(dist_to_dst.size()) == graph.num_nodes(),
          "dist_to_dst must cover all nodes");
  std::vector<int> path;
  if (src == dst) return path;
  require(dist_to_dst[static_cast<std::size_t>(src)] >= 0,
          "ecmp_shortest_arc_path: destination unreachable");

  NodeId node = src;
  std::vector<const Adjacency*> candidates;
  while (node != dst) {
    candidates.clear();
    const int here = dist_to_dst[static_cast<std::size_t>(node)];
    for (const Adjacency& a : graph.neighbors(node)) {
      if (dist_to_dst[static_cast<std::size_t>(a.to)] == here - 1) {
        candidates.push_back(&a);
      }
    }
    require(!candidates.empty(), "inconsistent BFS distances");
    // Per-hop hash over (flow key, switch id): packets of one subflow
    // always agree, distinct subflows decorrelate.
    const std::uint64_t h = Rng::derive_seed(
        flow_key, static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)));
    const Adjacency* step = candidates[h % candidates.size()];
    const Edge& e = graph.edge(step->edge);
    path.push_back(e.u == node ? 2 * step->edge : 2 * step->edge + 1);
    node = step->to;
  }
  return path;
}

std::vector<std::vector<int>> sample_shortest_arc_paths(
    const Graph& graph, NodeId src, NodeId dst,
    const std::vector<int>& dist_to_dst, int count, Rng& rng) {
  require(count >= 1, "count must be >= 1");
  std::vector<std::vector<int>> paths;
  paths.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    paths.push_back(sample_shortest_arc_path(graph, src, dst, dist_to_dst, rng));
  }
  return paths;
}

}  // namespace topo::sim
