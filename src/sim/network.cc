#include "sim/network.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "sim/routing.h"
#include "traffic/traffic.h"
#include "util/error.h"

namespace topo::sim {

SimNetwork::SimNetwork(const BuiltTopology& topology, const SimParams& params,
                       std::uint64_t seed)
    : topology_(topology),
      params_(params),
      rng_(seed),
      server_home_(topology.servers.server_home()) {
  require(params.subflows >= 1, "at least one subflow required");
  require(params.warmup_ns < params.duration_ns,
          "warmup must precede the end of the simulation");
  const Graph& g = topology_.graph;

  // Switch-switch links: two directions per edge, rate = capacity x base.
  links_.reserve(2 * static_cast<std::size_t>(g.num_edges()) +
                 2 * server_home_.size());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double rate = g.edge(e).capacity * params_.server_rate_gbps;
    links_.push_back(std::make_unique<SimLink>(
        &events_, rate, params_.link_delay_ns, params_.queue_packets, this,
        &rng_));
    links_.push_back(std::make_unique<SimLink>(
        &events_, rate, params_.link_delay_ns, params_.queue_packets, this,
        &rng_));
  }
  // Server access links (up then down per server) at the base rate.
  for (std::size_t s = 0; s < server_home_.size(); ++s) {
    links_.push_back(std::make_unique<SimLink>(
        &events_, params_.server_rate_gbps, params_.link_delay_ns,
        params_.queue_packets, this, &rng_));
    links_.push_back(std::make_unique<SimLink>(
        &events_, params_.server_rate_gbps, params_.link_delay_ns,
        params_.queue_packets, this, &rng_));
  }
}

SimNetwork::~SimNetwork() = default;

int SimNetwork::host_uplink(int server) const {
  return 2 * topology_.graph.num_edges() + 2 * server;
}
int SimNetwork::host_downlink(int server) const {
  return 2 * topology_.graph.num_edges() + 2 * server + 1;
}

const std::vector<int>& SimNetwork::dist_to(NodeId dst_switch) {
  auto it = dist_cache_.find(dst_switch);
  if (it == dist_cache_.end()) {
    it = dist_cache_.emplace(dst_switch,
                             bfs_distances(topology_.graph, dst_switch))
             .first;
  }
  return it->second;
}

void SimNetwork::add_flow(int src_server, int dst_server) {
  require(src_server >= 0 &&
              src_server < static_cast<int>(server_home_.size()) &&
              dst_server >= 0 &&
              dst_server < static_cast<int>(server_home_.size()),
          "server id out of range");
  require(src_server != dst_server, "flow endpoints must differ");

  const NodeId src_switch = server_home_[static_cast<std::size_t>(src_server)];
  const NodeId dst_switch = server_home_[static_cast<std::size_t>(dst_server)];

  FlowRecord record;
  record.src_server = src_server;
  record.dst_server = dst_server;

  TcpParams tcp;
  tcp.packet_bytes = params_.packet_bytes;
  tcp.increase_scale =
      params_.ewtcp_coupling ? 1.0 / params_.subflows : 1.0;

  const int flow_id = static_cast<int>(flows_.size());
  for (int k = 0; k < params_.subflows; ++k) {
    // Independent shortest paths for data and ACKs (ECMP-style draws).
    std::vector<int> forward{host_uplink(src_server)};
    if (src_switch != dst_switch) {
      const auto arcs = sample_shortest_arc_path(
          topology_.graph, src_switch, dst_switch, dist_to(dst_switch), rng_);
      forward.insert(forward.end(), arcs.begin(), arcs.end());
    }
    forward.push_back(host_downlink(dst_server));

    std::vector<int> reverse{host_uplink(dst_server)};
    if (src_switch != dst_switch) {
      const auto arcs = sample_shortest_arc_path(
          topology_.graph, dst_switch, src_switch, dist_to(src_switch), rng_);
      reverse.insert(reverse.end(), arcs.begin(), arcs.end());
    }
    reverse.push_back(host_downlink(src_server));

    record.subflows.push_back(std::make_unique<TcpSubflow>(
        this, flow_id, k, std::move(forward), std::move(reverse), tcp));
  }
  flows_.push_back(std::move(record));

  // Stagger starts to avoid synchronized slow starts.
  const SimTime jitter = params_.start_jitter_ns > 0
                             ? static_cast<SimTime>(rng_.uniform() *
                                                    static_cast<double>(
                                                        params_.start_jitter_ns))
                             : 0;
  for (auto& sub : flows_.back().subflows) {
    sub->start(events_.now() + 1 + jitter);
  }
}

void SimNetwork::add_permutation_workload() {
  const int total = topology_.servers.total();
  require(total >= 2, "permutation workload requires two servers");
  Rng traffic_rng(Rng::derive_seed(
      0x7261666669636bULL, static_cast<std::uint64_t>(total)));
  // Reuse the traffic module's derangement by generating a permutation TM.
  const TrafficMatrix tm =
      random_permutation_traffic(topology_.servers, traffic_rng);
  for (const ServerFlow& f : tm.flows) add_flow(f.src_server, f.dst_server);
}

Packet* SimNetwork::alloc_packet() {
  if (pool_free_.empty()) {
    pool_storage_.push_back(std::make_unique<Packet>());
    pool_free_.push_back(pool_storage_.back().get());
  }
  Packet* p = pool_free_.back();
  pool_free_.pop_back();
  return p;
}

void SimNetwork::free_packet(Packet* packet) {
  require(packet != nullptr, "free_packet requires a packet");
  pool_free_.push_back(packet);
}

void SimNetwork::inject(Packet* packet) {
  packet->hop = 0;
  require(!packet->route.empty(), "packet must carry a route");
  SimLink& first = *links_[static_cast<std::size_t>(packet->route.front())];
  if (!first.enqueue(packet)) {
    ++dropped_at_inject_;
    free_packet(packet);
  }
}

void SimNetwork::packet_arrived(Packet* packet) {
  if (packet->hop + 1 < packet->route.size()) {
    ++packet->hop;
    SimLink& next =
        *links_[static_cast<std::size_t>(packet->route[packet->hop])];
    if (!next.enqueue(packet)) free_packet(packet);
    return;
  }
  // Delivered to the endpoint host.
  FlowRecord& flow = flows_[static_cast<std::size_t>(packet->flow_id)];
  TcpSubflow& sub = *flow.subflows[static_cast<std::size_t>(packet->subflow_id)];
  if (packet->is_ack) {
    sub.handle_ack(packet);
  } else {
    sub.handle_data(packet);
  }
}

SimulationResult SimNetwork::run() {
  SimulationResult result;
  result.events_processed += events_.run_until(params_.warmup_ns);
  for (auto& flow : flows_) {
    flow.delivered_at_warmup.clear();
    for (const auto& sub : flow.subflows) {
      flow.delivered_at_warmup.push_back(sub->delivered_packets());
    }
  }
  result.events_processed += events_.run_until(params_.duration_ns);

  const double window_ns =
      static_cast<double>(params_.duration_ns - params_.warmup_ns);
  double min_norm = flows_.empty() ? 0.0 : 1e300;
  double sum_norm = 0.0;
  for (const auto& flow : flows_) {
    FlowStats stats;
    stats.src_server = flow.src_server;
    stats.dst_server = flow.dst_server;
    std::int64_t delivered = 0;
    for (std::size_t k = 0; k < flow.subflows.size(); ++k) {
      delivered += flow.subflows[k]->delivered_packets() -
                   flow.delivered_at_warmup[k];
      stats.retransmits += flow.subflows[k]->retransmits();
    }
    const double bits =
        static_cast<double>(delivered) * 8.0 * params_.packet_bytes;
    stats.goodput_gbps = bits / window_ns;  // bits per ns == Gbit/s
    result.flows.push_back(stats);
    const double norm = stats.goodput_gbps / params_.server_rate_gbps;
    min_norm = std::min(min_norm, norm);
    sum_norm += norm;
  }
  result.min_normalized = flows_.empty() ? 0.0 : min_norm;
  result.mean_normalized =
      flows_.empty() ? 0.0 : sum_norm / static_cast<double>(flows_.size());
  result.total_drops = dropped_at_inject_;
  for (const auto& link : links_) result.total_drops += link->drops();
  return result;
}

}  // namespace topo::sim
