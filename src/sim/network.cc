#include "sim/network.h"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.h"
#include "sim/routing.h"
#include "traffic/traffic.h"
#include "util/error.h"

namespace topo::sim {

namespace {
// Salts for the independent streams derived from the network seed.
constexpr std::uint64_t kTrafficSalt = 0x7261666669636bULL;  // "raffick"
constexpr std::uint64_t kEcmpSalt = 0xEC3FA5A1ULL;
}  // namespace

SimNetwork::SimNetwork(const BuiltTopology& topology, const SimParams& params,
                       std::uint64_t seed)
    : topology_(topology),
      params_(params),
      seed_(seed),
      rng_(seed),
      ecmp_salt_(Rng::derive_seed(seed, kEcmpSalt)),
      server_home_(topology.servers.server_home()) {
  require(params.subflows >= 1, "at least one subflow required");
  require(params.warmup_ns < params.duration_ns,
          "warmup must precede the end of the simulation");
  const Graph& g = topology_.graph;

  // Switch-switch links: two directions per edge, rate = capacity x base.
  links_.reserve(2 * static_cast<std::size_t>(g.num_edges()) +
                 2 * server_home_.size());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double rate = g.edge(e).capacity * params_.server_rate_gbps;
    links_.emplace_back(&events_, rate, params_.link_delay_ns,
                        params_.queue_packets, this, &rng_, this);
    links_.emplace_back(&events_, rate, params_.link_delay_ns,
                        params_.queue_packets, this, &rng_, this);
  }
  // Server access links (up then down per server) at the base rate.
  for (std::size_t s = 0; s < server_home_.size(); ++s) {
    links_.emplace_back(&events_, params_.server_rate_gbps,
                        params_.link_delay_ns, params_.queue_packets, this,
                        &rng_, this);
    links_.emplace_back(&events_, params_.server_rate_gbps,
                        params_.link_delay_ns, params_.queue_packets, this,
                        &rng_, this);
  }
}

SimNetwork::~SimNetwork() = default;

int SimNetwork::host_uplink(int server) const {
  return 2 * topology_.graph.num_edges() + 2 * server;
}
int SimNetwork::host_downlink(int server) const {
  return 2 * topology_.graph.num_edges() + 2 * server + 1;
}

const std::vector<int>& SimNetwork::dist_to(NodeId dst_switch) {
  auto it = dist_cache_.find(dst_switch);
  if (it == dist_cache_.end()) {
    it = dist_cache_.emplace(dst_switch,
                             bfs_distances(topology_.graph, dst_switch))
             .first;
  }
  return it->second;
}

RouteId SimNetwork::make_route(int from_server, int to_server, int subflow) {
  const NodeId from_switch =
      server_home_[static_cast<std::size_t>(from_server)];
  const NodeId to_switch = server_home_[static_cast<std::size_t>(to_server)];
  std::vector<int> arcs{host_uplink(from_server)};
  if (from_switch != to_switch) {
    const std::vector<int> fabric =
        params_.route_mode == RouteMode::kEcmpHash
            ? ecmp_shortest_arc_path(
                  topology_.graph, from_switch, to_switch, dist_to(to_switch),
                  ecmp_flow_key(ecmp_salt_, from_server, to_server, subflow))
            : sample_shortest_arc_path(topology_.graph, from_switch,
                                       to_switch, dist_to(to_switch), rng_);
    arcs.insert(arcs.end(), fabric.begin(), fabric.end());
  }
  arcs.push_back(host_downlink(to_server));
  return routes_.intern(arcs);
}

void SimNetwork::add_flow(int src_server, int dst_server) {
  require(src_server >= 0 &&
              src_server < static_cast<int>(server_home_.size()) &&
              dst_server >= 0 &&
              dst_server < static_cast<int>(server_home_.size()),
          "server id out of range");
  require(src_server != dst_server, "flow endpoints must differ");

  FlowRecord record;
  record.src_server = src_server;
  record.dst_server = dst_server;

  TcpParams tcp;
  tcp.packet_bytes = params_.packet_bytes;
  tcp.increase_scale =
      params_.ewtcp_coupling ? 1.0 / params_.subflows : 1.0;

  const int flow_id = static_cast<int>(flows_.size());
  for (int k = 0; k < params_.subflows; ++k) {
    // Independent paths for data and ACKs (forward and reverse 5-tuples
    // hash independently, as with real ECMP).
    const RouteId forward = make_route(src_server, dst_server, k);
    const RouteId reverse = make_route(dst_server, src_server, k);
    subflows_.emplace_back(this, flow_id, k, forward, reverse, tcp);
  }
  flows_.push_back(std::move(record));

  // Stagger starts to avoid synchronized slow starts.
  const SimTime jitter = params_.start_jitter_ns > 0
                             ? static_cast<SimTime>(rng_.uniform() *
                                                    static_cast<double>(
                                                        params_.start_jitter_ns))
                             : 0;
  for (int k = 0; k < params_.subflows; ++k) {
    subflow(flow_id, k).start(events_.now() + 1 + jitter);
  }
}

void SimNetwork::add_finite_flow(int src_server, int dst_server,
                                 double size_bytes, SimTime start_at) {
  require(params_.subflows == 1,
          "finite workload flows are single-subflow (set subflows = 1)");
  require(src_server >= 0 &&
              src_server < static_cast<int>(server_home_.size()) &&
              dst_server >= 0 &&
              dst_server < static_cast<int>(server_home_.size()),
          "server id out of range");
  require(src_server != dst_server, "flow endpoints must differ");
  require(size_bytes > 0.0, "finite flow needs a positive size");

  FlowRecord record;
  record.src_server = src_server;
  record.dst_server = dst_server;
  record.finite = true;
  record.size_bytes = size_bytes;
  record.start_ns = start_at;

  TcpParams tcp;
  tcp.packet_bytes = params_.packet_bytes;
  tcp.increase_scale = 1.0;
  tcp.flow_packets = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(size_bytes / static_cast<double>(params_.packet_bytes))));

  const int flow_id = static_cast<int>(flows_.size());
  const RouteId forward = make_route(src_server, dst_server, 0);
  const RouteId reverse = make_route(dst_server, src_server, 0);
  subflows_.emplace_back(this, flow_id, 0, forward, reverse, tcp);
  flows_.push_back(std::move(record));
  subflow(flow_id, 0).start(start_at);
}

void SimNetwork::queue_finite_workload(std::vector<FiniteFlow> arrivals) {
  require(params_.subflows == 1,
          "finite workload flows are single-subflow (set subflows = 1)");
  require(arrivals_.empty(), "a workload is already queued");
  arrivals_ = std::move(arrivals);
  std::stable_sort(arrivals_.begin(), arrivals_.end(),
                   [](const FiniteFlow& a, const FiniteFlow& b) {
                     return a.start_ns < b.start_ns;
                   });
  injector_.net = this;
  next_arrival_ = 0;
  schedule_next_arrival();
}

void SimNetwork::schedule_next_arrival() {
  if (next_arrival_ >= arrivals_.size()) {
    return;
  }
  const SimTime due =
      static_cast<SimTime>(arrivals_[next_arrival_].start_ns);
  events_.schedule(std::max(events_.now(), due), &injector_, 0);
}

void SimNetwork::inject_due_arrivals() {
  const SimTime now = events_.now();
  while (next_arrival_ < arrivals_.size() &&
         static_cast<SimTime>(arrivals_[next_arrival_].start_ns) <= now) {
    const FiniteFlow& a = arrivals_[next_arrival_++];
    add_finite_flow(a.src_server, a.dst_server, a.size_bytes, now);
  }
  schedule_next_arrival();
}

void SimNetwork::add_permutation_workload() {
  const int total = topology_.servers.total();
  require(total >= 2, "permutation workload requires two servers");
  // Derived from the network seed so distinct runs simulate distinct
  // permutations, matching the flow-level side's per-run re-draw.
  Rng traffic_rng(Rng::derive_seed(seed_, kTrafficSalt));
  // Reuse the traffic module's derangement by generating a permutation TM.
  const TrafficMatrix tm =
      random_permutation_traffic(topology_.servers, traffic_rng);
  for (const ServerFlow& f : tm.flows) add_flow(f.src_server, f.dst_server);
}

Packet* SimNetwork::alloc_packet() {
  if (pool_free_.empty()) {
    pool_chunks_.push_back(std::make_unique<Packet[]>(kPoolChunk));
    Packet* chunk = pool_chunks_.back().get();
    pool_free_.reserve(pool_free_.size() + kPoolChunk);
    for (std::size_t i = kPoolChunk; i > 0; --i) {
      pool_free_.push_back(&chunk[i - 1]);
    }
  }
  Packet* p = pool_free_.back();
  pool_free_.pop_back();
  return p;
}

void SimNetwork::free_packet(Packet* packet) {
  require(packet != nullptr, "free_packet requires a packet");
  pool_free_.push_back(packet);
}

void SimNetwork::inject(Packet* packet) {
  packet->hop = 0;
  require(packet->route >= 0, "packet must carry a route");
  SimLink& first =
      links_[static_cast<std::size_t>(routes_.arc(packet->route, 0))];
  if (!first.enqueue(packet)) {
    ++dropped_at_inject_;
    free_packet(packet);
  }
}

void SimNetwork::packet_arrived(Packet* packet) {
  if (packet->hop + 1 < routes_.length(packet->route)) {
    ++packet->hop;
    SimLink& next = links_[static_cast<std::size_t>(
        routes_.arc(packet->route, packet->hop))];
    if (!next.enqueue(packet)) free_packet(packet);
    return;
  }
  // Delivered to the endpoint host.
  TcpSubflow& sub = subflow(packet->flow_id, packet->subflow_id);
  if (packet->is_ack) {
    sub.handle_ack(packet);
  } else {
    sub.handle_data(packet);
  }
}

SimulationResult SimNetwork::run() {
  SimulationResult result;
  result.events_processed += events_.run_until(params_.warmup_ns);
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    FlowRecord& flow = flows_[f];
    flow.delivered_at_warmup.clear();
    for (int k = 0; k < params_.subflows; ++k) {
      flow.delivered_at_warmup.push_back(
          subflow(static_cast<int>(f), k).delivered_packets());
    }
  }
  result.events_processed += events_.run_until(params_.duration_ns);

  const double window_ns =
      static_cast<double>(params_.duration_ns - params_.warmup_ns);
  double min_norm = flows_.empty() ? 0.0 : 1e300;
  double sum_norm = 0.0;
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    const FlowRecord& flow = flows_[f];
    FlowStats stats;
    stats.src_server = flow.src_server;
    stats.dst_server = flow.dst_server;
    std::int64_t delivered = 0;
    for (int k = 0; k < params_.subflows; ++k) {
      TcpSubflow& sub = subflow(static_cast<int>(f), k);
      // Flows injected after the warmup snapshot have no baseline entry;
      // they started inside the window, so their baseline is zero.
      const std::int64_t at_warmup =
          static_cast<std::size_t>(k) < flow.delivered_at_warmup.size()
              ? flow.delivered_at_warmup[static_cast<std::size_t>(k)]
              : 0;
      delivered += sub.delivered_packets() - at_warmup;
      stats.retransmits += sub.retransmits();
    }
    stats.delivered_packets = delivered;
    if (flow.finite) {
      stats.finite = true;
      stats.size_bytes = flow.size_bytes;
      stats.start_ns = flow.start_ns;
      const TcpSubflow& first = subflow(static_cast<int>(f), 0);
      if (first.completed()) {
        stats.completed = true;
        stats.fct_ns = first.completed_at() - flow.start_ns;
      }
    }
    const double bits =
        static_cast<double>(delivered) * 8.0 * params_.packet_bytes;
    stats.goodput_gbps = bits / window_ns;  // bits per ns == Gbit/s
    result.flows.push_back(stats);
    const double norm = stats.goodput_gbps / params_.server_rate_gbps;
    min_norm = std::min(min_norm, norm);
    sum_norm += norm;
  }
  result.min_normalized = flows_.empty() ? 0.0 : min_norm;
  result.mean_normalized =
      flows_.empty() ? 0.0 : sum_norm / static_cast<double>(flows_.size());
  result.total_drops = dropped_at_inject_;
  for (const SimLink& link : links_) result.total_drops += link.drops();
  return result;
}

}  // namespace topo::sim
