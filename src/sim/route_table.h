// Per-network interned route storage.
//
// Routes (directed-link id sequences) are deduplicated into one flat CSR
// arena at flow-setup time; packets then carry a 4-byte route id instead
// of an owned std::vector<int>, which keeps Packet POD and makes the
// free-list pool genuinely allocation-free in steady state. Lookup is two
// indexed loads — offsets_[id] + hop into arcs_.
#ifndef TOPODESIGN_SIM_ROUTE_TABLE_H
#define TOPODESIGN_SIM_ROUTE_TABLE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/error.h"

namespace topo::sim {

/// Interned route id; valid for the lifetime of the owning RouteTable.
using RouteId = std::int32_t;

/// Append-only deduplicating store of directed-link-id routes.
class RouteTable {
 public:
  /// Interns `arcs` (non-empty), returning the id of an existing identical
  /// route when one was interned before.
  RouteId intern(const std::vector<int>& arcs) {
    require(!arcs.empty(), "RouteTable::intern requires a non-empty route");
    const std::uint64_t h = hash_route(arcs);
    auto [it, inserted] = dedup_.try_emplace(h);
    if (!inserted) {
      for (RouteId candidate : it->second) {
        if (equals(candidate, arcs)) return candidate;
      }
    }
    const auto id = static_cast<RouteId>(offsets_.size() - 1);
    for (int arc : arcs) arcs_.push_back(arc);
    offsets_.push_back(static_cast<std::uint32_t>(arcs_.size()));
    it->second.push_back(id);
    return id;
  }

  /// Number of hops in route `id`.
  [[nodiscard]] int length(RouteId id) const {
    return static_cast<int>(offsets_[static_cast<std::size_t>(id) + 1] -
                            offsets_[static_cast<std::size_t>(id)]);
  }

  /// Directed-link id at position `hop` of route `id` (unchecked hot path).
  [[nodiscard]] int arc(RouteId id, int hop) const {
    return arcs_[offsets_[static_cast<std::size_t>(id)] +
                 static_cast<std::size_t>(hop)];
  }

  /// Number of distinct routes interned.
  [[nodiscard]] std::size_t route_count() const {
    return offsets_.size() - 1;
  }

 private:
  static std::uint64_t hash_route(const std::vector<int>& arcs) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the arc words
    for (int arc : arcs) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(arc));
      h *= 1099511628211ULL;
    }
    return h;
  }

  [[nodiscard]] bool equals(RouteId id, const std::vector<int>& arcs) const {
    if (length(id) != static_cast<int>(arcs.size())) return false;
    const std::uint32_t base = offsets_[static_cast<std::size_t>(id)];
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (arcs_[base + i] != arcs[i]) return false;
    }
    return true;
  }

  std::vector<int> arcs_;
  std::vector<std::uint32_t> offsets_{0};
  std::unordered_map<std::uint64_t, std::vector<RouteId>> dedup_;
};

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_ROUTE_TABLE_H
