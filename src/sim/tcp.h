// TCP Reno-style transport and MPTCP-like multipath striping.
//
// Each subflow is an independent Reno-style sender/receiver pair pinned to
// one shortest path (sampled or ECMP-hashed, interned in the network's
// RouteTable): slow start, AIMD congestion avoidance, triple-duplicate-ACK
// fast retransmit, go-back-N RTO recovery, and an EWTCP-style coupling
// option that scales the additive increase by 1/k so a k-subflow flow is
// roughly as aggressive in aggregate as one TCP (the behaviour MPTCP's
// linked increases approximate in the symmetric case).
#ifndef TOPODESIGN_SIM_TCP_H
#define TOPODESIGN_SIM_TCP_H

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/packet.h"
#include "sim/route_table.h"

namespace topo::sim {

/// Services a transport endpoint needs from the surrounding simulation.
class TransportEnv {
 public:
  virtual ~TransportEnv() = default;
  virtual EventQueue& events() = 0;
  virtual Packet* alloc_packet() = 0;
  virtual void free_packet(Packet* packet) = 0;
  /// Injects a packet into the first link of its route (dropping it,
  /// with ownership, if that queue is full).
  virtual void inject(Packet* packet) = 0;
};

/// Transport tuning knobs.
struct TcpParams {
  int packet_bytes = 1500;
  int ack_bytes = 64;
  double initial_cwnd = 2.0;
  double initial_ssthresh = 64.0;
  SimTime min_rto_ns = 3'000'000;  ///< 3 ms floor.
  /// Additive-increase scale; 1.0 = plain Reno, 1/k = EWTCP-style coupling
  /// for a k-subflow MPTCP flow.
  double increase_scale = 1.0;
  /// Total data packets to send; 0 = unbounded bulk transfer. A finite
  /// subflow completes when all `flow_packets` are cumulatively ACKed,
  /// after which it schedules no further events.
  std::int64_t flow_packets = 0;
};

/// One subflow: sender and receiver logic bundled (the simulator dispatches
/// data packets to the receiver half and ACKs to the sender half).
class TcpSubflow : public EventHandler {
 public:
  /// Routes are interned ids into the environment's RouteTable.
  TcpSubflow(TransportEnv* env, int flow_id, int subflow_id,
             RouteId route_forward, RouteId route_reverse,
             const TcpParams& params);

  /// Begins the bulk transfer at the given absolute time.
  void start(SimTime at);

  /// Receiver half: a data packet arrived (takes ownership).
  void handle_data(Packet* packet);
  /// Sender half: an ACK arrived (takes ownership).
  void handle_ack(Packet* packet);

  /// Timer callback (start or lazily re-armed RTO).
  void on_event(std::uint64_t cookie) override;

  /// Cumulative in-order packets delivered at the receiver.
  [[nodiscard]] std::int64_t delivered_packets() const { return rcv_next_; }
  [[nodiscard]] int flow_id() const { return flow_id_; }
  [[nodiscard]] int subflow_id() const { return subflow_id_; }
  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }
  /// Finite subflows only: all flow_packets ACKed at the sender.
  [[nodiscard]] bool completed() const { return completed_; }
  /// Time the final cumulative ACK arrived (valid when completed()).
  [[nodiscard]] SimTime completed_at() const { return completed_at_; }

 private:
  static constexpr std::uint64_t kStartCookieBit = 1ULL << 63;
  static constexpr std::uint64_t kRtoCookie = 0;

  void try_send();
  void send_segment(std::int64_t seq);
  void send_ack(SimTime echo_sent_at);
  void arm_rto();
  void on_rto();

  TransportEnv* env_;
  int flow_id_;
  int subflow_id_;
  RouteId route_forward_;
  RouteId route_reverse_;
  TcpParams params_;

  // Sender state.
  std::int64_t snd_next_ = 0;
  std::int64_t snd_una_ = 0;
  std::int64_t snd_max_ = 0;  ///< Highest seq ever sent + 1.
  double cwnd_;
  double ssthresh_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;  ///< NewReno: highest seq sent at loss time.
  std::int64_t retransmits_ = 0;
  // Lazily re-armed retransmission timer: at most ONE event in the heap
  // per subflow. arm_rto() only pushes the deadline forward; when the
  // (possibly stale) event fires early it re-schedules itself at the
  // current deadline instead of timing out.
  SimTime rto_deadline_ = 0;
  SimTime rto_event_when_ = 0;     ///< When the live timer event fires.
  std::uint64_t rto_tie_seq_ = 0;  ///< Reserved at the last arm_rto().
  bool rto_event_pending_ = false;
  SimTime srtt_ns_ = 0;
  SimTime rttvar_ns_ = 0;
  SimTime rto_ns_;
  bool started_ = false;
  bool completed_ = false;
  SimTime completed_at_ = 0;

  // Receiver state. The out-of-order buffer is a min-heap over a reused
  // vector, not a std::set: go-back-N loss episodes buffer a whole
  // window per drop, and a tree pays a node allocation plus rebalance
  // per insert on exactly the hot path. The heap may hold duplicates
  // (retransmits can re-arrive out of order); the drain discards
  // anything at or below rcv_next_, which reproduces set semantics for
  // the delivered-packet sequence exactly.
  std::int64_t rcv_next_ = 0;
  std::vector<std::int64_t> out_of_order_;
};

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_TCP_H
