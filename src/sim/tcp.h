// TCP Reno-style transport and MPTCP-like multipath striping.
//
// Each subflow is an independent Reno-style sender/receiver pair pinned to
// one sampled shortest path: slow start, AIMD congestion avoidance,
// triple-duplicate-ACK fast retransmit, go-back-N RTO recovery, and an
// EWTCP-style coupling option that scales the additive increase by 1/k so
// a k-subflow flow is roughly as aggressive in aggregate as one TCP (the
// behaviour MPTCP's linked increases approximate in the symmetric case).
#ifndef TOPODESIGN_SIM_TCP_H
#define TOPODESIGN_SIM_TCP_H

#include <cstdint>
#include <set>
#include <vector>

#include "sim/event_queue.h"
#include "sim/packet.h"

namespace topo::sim {

/// Services a transport endpoint needs from the surrounding simulation.
class TransportEnv {
 public:
  virtual ~TransportEnv() = default;
  virtual EventQueue& events() = 0;
  virtual Packet* alloc_packet() = 0;
  virtual void free_packet(Packet* packet) = 0;
  /// Injects a packet into the first link of its route (dropping it,
  /// with ownership, if that queue is full).
  virtual void inject(Packet* packet) = 0;
};

/// Transport tuning knobs.
struct TcpParams {
  int packet_bytes = 1500;
  int ack_bytes = 64;
  double initial_cwnd = 2.0;
  double initial_ssthresh = 64.0;
  SimTime min_rto_ns = 3'000'000;  ///< 3 ms floor.
  /// Additive-increase scale; 1.0 = plain Reno, 1/k = EWTCP-style coupling
  /// for a k-subflow MPTCP flow.
  double increase_scale = 1.0;
};

/// One subflow: sender and receiver logic bundled (the simulator dispatches
/// data packets to the receiver half and ACKs to the sender half).
class TcpSubflow : public EventHandler {
 public:
  TcpSubflow(TransportEnv* env, int flow_id, int subflow_id,
             std::vector<int> route_forward, std::vector<int> route_reverse,
             const TcpParams& params);

  /// Begins the bulk transfer at the given absolute time.
  void start(SimTime at);

  /// Receiver half: a data packet arrived (takes ownership).
  void handle_data(Packet* packet);
  /// Sender half: an ACK arrived (takes ownership).
  void handle_ack(Packet* packet);

  /// RTO timer callback.
  void on_event(std::uint64_t cookie) override;

  /// Cumulative in-order packets delivered at the receiver.
  [[nodiscard]] std::int64_t delivered_packets() const { return rcv_next_; }
  [[nodiscard]] int flow_id() const { return flow_id_; }
  [[nodiscard]] int subflow_id() const { return subflow_id_; }
  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }

 private:
  static constexpr std::uint64_t kStartCookieBit = 1ULL << 63;

  void try_send();
  void send_segment(std::int64_t seq, bool is_retransmit);
  void send_ack(SimTime echo_sent_at);
  void arm_rto();
  void on_rto();

  TransportEnv* env_;
  int flow_id_;
  int subflow_id_;
  std::vector<int> route_forward_;
  std::vector<int> route_reverse_;
  TcpParams params_;

  // Sender state.
  std::int64_t snd_next_ = 0;
  std::int64_t snd_una_ = 0;
  double cwnd_;
  double ssthresh_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;  ///< NewReno: highest seq sent at loss time.
  std::int64_t retransmits_ = 0;
  std::uint64_t rto_generation_ = 0;
  SimTime srtt_ns_ = 0;
  SimTime rttvar_ns_ = 0;
  SimTime rto_ns_;
  bool started_ = false;

  // Receiver state.
  std::int64_t rcv_next_ = 0;
  std::set<std::int64_t> out_of_order_;
};

}  // namespace topo::sim

#endif  // TOPODESIGN_SIM_TCP_H
