// Contract tests for the packet-simulator fast path: route interning,
// steady-state allocation, RTO timer hygiene, ECMP determinism, and the
// flow-vs-packet agreement the co-simulation exists to measure.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/evaluate.h"
#include "sim/network.h"
#include "topo/random_regular.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace topo::sim {
namespace {

SimParams small_params() {
  SimParams p;
  p.duration_ns = 20'000'000;
  p.warmup_ns = 10'000'000;
  p.start_jitter_ns = 500'000;
  p.subflows = 4;
  return p;
}

// Interned routes are fixed once the workload is added: running the
// simulation must not mint new routes, and the packet pool must reach a
// steady capacity during warmup — the measurement window runs
// allocation-free off the free list.
TEST(FastPath, RouteTableAndPoolAreSteadyAfterWarmup) {
  const BuiltTopology t = random_regular_topology(12, 8, 5, 7);
  SimParams p = small_params();
  SimNetwork net(t, p, 7);
  net.add_permutation_workload();

  const std::size_t routes_before = net.route_count();
  ASSERT_GT(routes_before, 0u);
  // Every flow interns forward+reverse routes per subflow, but shared
  // shortest paths dedupe: never more than 2 * flows * subflows.
  EXPECT_LE(routes_before,
            2u * static_cast<std::size_t>(t.servers.total()) *
                static_cast<std::size_t>(p.subflows));

  net.events().run_until(p.warmup_ns);
  const std::size_t pool_at_warmup = net.pool_allocated();
  ASSERT_GT(pool_at_warmup, 0u);
  net.events().run_until(p.duration_ns);

  EXPECT_EQ(net.route_count(), routes_before);
  EXPECT_EQ(net.pool_allocated(), pool_at_warmup)
      << "packet pool grew during the measurement window — the fast "
         "path should recycle, not allocate";
}

// Re-armed RTO timers must supersede their stale events instead of
// leaking one dead event per ACK: after millions of delivered packets
// the pending-event count stays bounded by in-flight state, nowhere
// near the delivered-packet count.
TEST(FastPath, RtoRearmLeavesNoEventBacklog) {
  const BuiltTopology t = random_regular_topology(8, 6, 3, 3);
  SimParams p = small_params();
  SimNetwork net(t, p, 3);
  net.add_permutation_workload();
  const SimulationResult r = net.run();

  double goodput = 0.0;
  for (const FlowStats& f : r.flows) goodput += f.goodput_gbps;
  ASSERT_GT(goodput, 0.0);
  const auto delivered = static_cast<std::int64_t>(
      goodput * static_cast<double>(p.duration_ns - p.warmup_ns) /
      (8.0 * p.packet_bytes));
  ASSERT_GT(delivered, 1000);
  // One pending RTO event per subflow plus packets in flight. With the
  // pre-fix leak this was O(total ACKs) — tens of thousands.
  const std::size_t subflow_count =
      static_cast<std::size_t>(t.servers.total()) *
      static_cast<std::size_t>(p.subflows);
  EXPECT_LE(net.pending_events(), 4 * subflow_count + 1000)
      << "dead RTO events accumulated in the queue";
}

// ECMP hash routing is a pure function of (seed, endpoints, subflow):
// two networks built from the same seed produce bit-identical results,
// including when construction happens concurrently on the shared pool —
// no hidden global state, no thread-count dependence.
TEST(FastPath, EcmpHashRoutingIsDeterministicAcrossThreads) {
  const BuiltTopology t = random_regular_topology(12, 8, 5, 11);
  SimParams p = small_params();
  p.route_mode = RouteMode::kEcmpHash;

  const auto run_once = [&] {
    SimNetwork net(t, p, 11);
    net.add_permutation_workload();
    return net.run();
  };
  const SimulationResult serial = run_once();
  ASSERT_GT(serial.mean_normalized, 0.0);

  std::vector<SimulationResult> concurrent(4);
  parallel_for(4, [&](int i) {
    concurrent[static_cast<std::size_t>(i)] = run_once();
  });
  for (const SimulationResult& r : concurrent) {
    EXPECT_EQ(r.mean_normalized, serial.mean_normalized);
    EXPECT_EQ(r.min_normalized, serial.min_normalized);
    EXPECT_EQ(r.total_drops, serial.total_drops);
    EXPECT_EQ(r.events_processed, serial.events_processed);
  }
}

// Sampled and ECMP routing are genuinely different strategies (distinct
// RNG streams), but both must deliver sane goodput on a well-provisioned
// RRG.
TEST(FastPath, RouteModesBothDeliver) {
  const BuiltTopology t = random_regular_topology(12, 8, 5, 19);
  SimParams p = small_params();
  double means[2] = {0.0, 0.0};
  int i = 0;
  for (RouteMode mode : {RouteMode::kSampledPaths, RouteMode::kEcmpHash}) {
    p.route_mode = mode;
    SimNetwork net(t, p, 19);
    net.add_permutation_workload();
    means[i++] = net.run().mean_normalized;
  }
  EXPECT_GT(means[0], 0.5);
  EXPECT_GT(means[1], 0.5);
}

// The co-simulation contract at a mid-size RRG: the packet-level mean
// normalized goodput lands within a modest gap of the fluid optimum
// (clamped to line rate) computed over the SAME drawn permutation. This
// is the whole point of packet_sim — if the two layers drift apart, the
// scenario columns mean nothing.
TEST(FastPath, FlowVsPacketAgreementOnMidSizeRrg) {
  // 24 switches x 6 servers = 144 servers on a degree-6 fabric: genuinely
  // oversubscribed, so the fluid optimum sits below line rate. That is
  // the regime the co-simulation scenarios measure — MPTCP tracks the
  // fluid optimum much more tightly there than at a clamped lambda of 1,
  // where it would need every flow at exactly full line rate.
  const BuiltTopology t = random_regular_topology(24, 12, 6, 5);
  EvalOptions options;
  options.flow.epsilon = 0.05;
  options.packet_sim.enabled = true;
  options.packet_sim.params.subflows = 8;
  options.packet_sim.params.queue_packets = 50;
  options.packet_sim.params.duration_ns = 64'000'000;
  options.packet_sim.params.warmup_ns = 32'000'000;

  const ThroughputResult result = evaluate_throughput(t, options, 99);
  ASSERT_TRUE(result.feasible);
  ASSERT_TRUE(result.packet_sim_run);
  ASSERT_GT(result.packet_mean_normalized, 0.0);
  const double flow_level = std::min(1.0, result.lambda);
  const double gap =
      (flow_level - result.packet_mean_normalized) / flow_level;
  EXPECT_LT(std::abs(gap), 0.15)
      << "flow-level " << flow_level << " vs packet-level "
      << result.packet_mean_normalized;
  // The percentile is a real per-flow statistic: at or below the mean,
  // nonnegative, and populated from the same run.
  EXPECT_GE(result.packet_p05_normalized, 0.0);
  EXPECT_LE(result.packet_p05_normalized,
            result.packet_mean_normalized + 1e-12);
  EXPECT_GE(result.packet_min_normalized, 0.0);
  EXPECT_LE(result.packet_min_normalized,
            result.packet_p05_normalized + 1e-12);
}

// Disabled co-simulation is an exact no-op on the result.
TEST(FastPath, PacketSimOffLeavesResultUntouched) {
  const BuiltTopology t = random_regular_topology(8, 6, 3, 1);
  EvalOptions options;
  options.flow.epsilon = 0.1;
  const ThroughputResult result = evaluate_throughput(t, options, 5);
  EXPECT_FALSE(result.packet_sim_run);
  EXPECT_EQ(result.packet_mean_normalized, 0.0);
  EXPECT_EQ(result.packet_p05_normalized, 0.0);
}

// Packet co-simulation is defined for permutation workloads only.
TEST(FastPath, PacketSimRejectsNonPermutationTraffic) {
  const BuiltTopology t = random_regular_topology(8, 6, 3, 1);
  EvalOptions options;
  options.traffic = TrafficKind::kAllToAll;
  options.packet_sim.enabled = true;
  EXPECT_THROW(evaluate_throughput(t, options, 5), InvalidArgument);
}

}  // namespace
}  // namespace topo::sim
