// Property tests for the traffic generators: invariants that must hold
// for every server map and seed, checked across a randomized family of
// maps (uneven placements, empty switches, extreme chunky fractions, tiny
// networks) rather than a few hand-picked examples.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "traffic/traffic.h"
#include "traffic/workload.h"
#include "util/rng.h"

namespace topo {
namespace {

ServerMap map_of(std::vector<int> per_switch) {
  ServerMap servers;
  servers.per_switch = std::move(per_switch);
  return servers;
}

// A randomized family of server maps: uneven counts and empty switches.
std::vector<ServerMap> property_maps() {
  std::vector<ServerMap> maps = {
      map_of({1, 1}),           // minimal
      map_of({5, 5, 5, 5}),     // uniform
      map_of({4, 0, 3, 1}),     // empty switch in the middle
      map_of({22, 2, 2, 2, 2, 2, 2, 2, 2, 2}),  // hotspot placement
  };
  Rng rng(0xbeef);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<int> counts(static_cast<std::size_t>(rng.uniform_int(2, 12)));
    int total = 0;
    for (int& c : counts) {
      c = rng.uniform_int(0, 7);
      total += c;
    }
    if (total < 2) counts.back() += 2;  // permutation needs two servers
    maps.push_back(map_of(std::move(counts)));
  }
  return maps;
}

TEST(PermutationProperty, DerangementWithEachServerOnceAsSourceAndSink) {
  for (const ServerMap& servers : property_maps()) {
    for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
      Rng rng(seed);
      const TrafficMatrix tm = random_permutation_traffic(servers, rng);
      const int total = servers.total();
      ASSERT_EQ(tm.flows.size(), static_cast<std::size_t>(total));
      std::vector<int> sent(static_cast<std::size_t>(total), 0);
      std::vector<int> received(static_cast<std::size_t>(total), 0);
      for (const ServerFlow& f : tm.flows) {
        ASSERT_GE(f.src_server, 0);
        ASSERT_LT(f.src_server, total);
        ASSERT_GE(f.dst_server, 0);
        ASSERT_LT(f.dst_server, total);
        EXPECT_NE(f.src_server, f.dst_server) << "fixed point at seed " << seed;
        EXPECT_DOUBLE_EQ(f.demand, 1.0);
        ++sent[static_cast<std::size_t>(f.src_server)];
        ++received[static_cast<std::size_t>(f.dst_server)];
      }
      for (int s = 0; s < total; ++s) {
        EXPECT_EQ(sent[static_cast<std::size_t>(s)], 1);
        EXPECT_EQ(received[static_cast<std::size_t>(s)], 1);
      }
    }
  }
}

TEST(AllToAllProperty, DemandSymmetryAndTotals) {
  for (const ServerMap& servers : property_maps()) {
    const std::vector<Commodity> commodities = all_to_all_commodities(servers);
    std::map<std::pair<NodeId, NodeId>, double> demand;
    for (const Commodity& c : commodities) {
      EXPECT_NE(c.src, c.dst);
      EXPECT_GT(c.demand, 0.0);
      const bool inserted =
          demand.emplace(std::make_pair(c.src, c.dst), c.demand).second;
      EXPECT_TRUE(inserted) << "duplicate commodity " << c.src << "->" << c.dst;
    }
    // Symmetric: demand(u, v) == demand(v, u) = s_u * s_v.
    for (const auto& [key, value] : demand) {
      const auto reverse = demand.find({key.second, key.first});
      ASSERT_NE(reverse, demand.end());
      EXPECT_DOUBLE_EQ(value, reverse->second);
      const double expected =
          static_cast<double>(
              servers.per_switch[static_cast<std::size_t>(key.first)]) *
          servers.per_switch[static_cast<std::size_t>(key.second)];
      EXPECT_DOUBLE_EQ(value, expected);
    }
    // Only switch pairs with servers on both ends appear.
    int hosts = 0;
    for (int count : servers.per_switch) hosts += count > 0 ? 1 : 0;
    EXPECT_EQ(commodities.size(),
              static_cast<std::size_t>(hosts) * (hosts - 1));
  }
}

// Helper: ToRs that send any chunky-style (fractional-demand) flow.
int count_chunky_tors(const TrafficMatrix& tm, const ServerMap& servers) {
  const std::vector<NodeId> home = servers.server_home();
  std::set<NodeId> chunky;
  for (const ServerFlow& f : tm.flows) {
    if (f.demand < 1.0) {
      chunky.insert(home[static_cast<std::size_t>(f.src_server)]);
    }
  }
  return static_cast<int>(chunky.size());
}

TEST(ChunkyProperty, ZeroFractionIsPureServerPermutation) {
  for (double fraction : {0.0, 1e-9}) {
    const ServerMap servers = map_of({3, 4, 0, 5, 2});
    Rng rng(11);
    const TrafficMatrix tm = chunky_traffic(servers, fraction, rng);
    EXPECT_EQ(tm.flows.size(), static_cast<std::size_t>(servers.total()));
    for (const ServerFlow& f : tm.flows) {
      EXPECT_DOUBLE_EQ(f.demand, 1.0);
      EXPECT_NE(f.src_server, f.dst_server);
    }
    EXPECT_EQ(count_chunky_tors(tm, servers), 0);
  }
}

TEST(ChunkyProperty, FullFractionEngagesEveryHostTor) {
  const ServerMap servers = map_of({3, 4, 0, 5, 2});
  Rng rng(13);
  const TrafficMatrix tm = chunky_traffic(servers, 1.0, rng);
  EXPECT_EQ(count_chunky_tors(tm, servers), 4);  // the four host ToRs
}

TEST(ChunkyProperty, TorCountBoundsAndDemandConservation) {
  // Across fractions and maps: chunky ToR count stays within
  // [0, hosts], a single selected ToR is promoted to a pair, and every
  // server still offers exactly one unit of egress.
  for (const ServerMap& servers : property_maps()) {
    int hosts = 0;
    bool every_host_multi = true;  // the demand<1 detector needs >=2 servers
    for (int count : servers.per_switch) {
      hosts += count > 0 ? 1 : 0;
      if (count == 1) every_host_multi = false;
    }
    if (hosts < 2) continue;
    for (double fraction : {0.0, 0.2, 0.5, 0.8, 1.0}) {
      Rng rng(17);
      const TrafficMatrix tm = chunky_traffic(servers, fraction, rng);
      const int chunky = count_chunky_tors(tm, servers);
      EXPECT_GE(chunky, 0);
      EXPECT_LE(chunky, hosts);
      const int requested =
          static_cast<int>(std::llround(fraction * hosts));
      if (requested == 0) {
        EXPECT_EQ(chunky, 0) << "fraction " << fraction;
      } else if (every_host_multi) {
        // A lone selected ToR is promoted to a pair (a 1-ToR permutation
        // is undefined); otherwise the request is honored exactly.
        EXPECT_EQ(chunky, std::min(hosts, std::max(requested, 2)))
            << "fraction " << fraction;
      }
      std::vector<double> egress(static_cast<std::size_t>(servers.total()),
                                 0.0);
      for (const ServerFlow& f : tm.flows) {
        egress[static_cast<std::size_t>(f.src_server)] += f.demand;
      }
      // Every server offers one unit of egress, except the corner where
      // the non-chunky remainder is a single server (a 1-server
      // permutation is empty): at most one server may sit idle.
      int idle = 0;
      for (double total : egress) {
        if (total == 0.0) {
          ++idle;
        } else {
          EXPECT_NEAR(total, 1.0, 1e-12);
        }
      }
      EXPECT_LE(idle, 1) << "fraction " << fraction;
    }
  }
}

TEST(ChunkyProperty, SingleLeftoverServerStillSends) {
  // Three 1-server ToRs at fraction 2/3: two ToRs go chunky and the
  // remainder is a single server — too few for a permutation. It used to
  // be silently dropped (zero egress); it now folds into the chunky
  // destination set, so every server offers exactly one unit.
  for (std::uint64_t seed : {1ULL, 5ULL, 23ULL}) {
    Rng rng(seed);
    const TrafficMatrix tm =
        chunky_traffic(map_of({1, 1, 1}), 2.0 / 3.0, rng);
    std::vector<double> egress(3, 0.0);
    for (const ServerFlow& f : tm.flows) {
      EXPECT_NE(f.src_server, f.dst_server);
      egress[static_cast<std::size_t>(f.src_server)] += f.demand;
    }
    for (double total : egress) {
      EXPECT_NEAR(total, 1.0, 1e-12) << "seed " << seed;
    }
  }
}

TEST(ChunkyProperty, TinyNetworks) {
  // Two 1-server ToRs: both fractions degenerate to the same pairing.
  {
    Rng rng(3);
    const TrafficMatrix tm = chunky_traffic(map_of({1, 1}), 1.0, rng);
    ASSERT_EQ(tm.flows.size(), 2u);
    for (const ServerFlow& f : tm.flows) EXPECT_NE(f.src_server, f.dst_server);
  }
  // One host ToR cannot form any ToR-level pairing.
  {
    Rng rng(3);
    EXPECT_THROW(chunky_traffic(map_of({5, 0, 0}), 0.5, rng),
                 InvalidArgument);
  }
}

TEST(WorkloadCdf, RegistryShapeAndLookup) {
  const std::vector<FlowSizeCdf>& cdfs = flow_size_cdfs();
  ASSERT_GE(cdfs.size(), 2u);
  EXPECT_NE(find_flow_size_cdf("websearch"), nullptr);
  EXPECT_NE(find_flow_size_cdf("fb_hadoop"), nullptr);
  EXPECT_EQ(find_flow_size_cdf("no_such_cdf"), nullptr);
  for (const FlowSizeCdf& cdf : cdfs) {
    ASSERT_GE(cdf.points.size(), 2u) << cdf.name;
    EXPECT_DOUBLE_EQ(cdf.points.front().cum_prob, 0.0) << cdf.name;
    EXPECT_DOUBLE_EQ(cdf.points.back().cum_prob, 1.0) << cdf.name;
    for (std::size_t i = 1; i < cdf.points.size(); ++i) {
      EXPECT_GE(cdf.points[i].bytes, cdf.points[i - 1].bytes) << cdf.name;
      EXPECT_GT(cdf.points[i].cum_prob, cdf.points[i - 1].cum_prob)
          << cdf.name;
    }
    EXPECT_GT(cdf.mean_bytes(), 0.0) << cdf.name;
  }
}

TEST(WorkloadCdf, SampledMeanMatchesAnalyticMean) {
  // Inverse-transform samples over a seeded uniform stream must average
  // to the table's analytic piecewise-linear mean.
  for (const FlowSizeCdf& cdf : flow_size_cdfs()) {
    Rng rng(0x5eed);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      const double bytes = cdf.sample_bytes(rng.uniform());
      ASSERT_GE(bytes, 1.0) << cdf.name;
      sum += bytes;
    }
    const double mean = cdf.mean_bytes();
    EXPECT_NEAR(sum / n, mean, 0.03 * mean) << cdf.name;
  }
}

TEST(WorkloadCdf, SampleIsMonotoneInU) {
  for (const FlowSizeCdf& cdf : flow_size_cdfs()) {
    double prev = 0.0;
    for (double u = 0.0; u < 1.0; u += 0.01) {
      const double bytes = cdf.sample_bytes(u);
      EXPECT_GE(bytes, prev) << cdf.name << " at u=" << u;
      prev = bytes;
    }
  }
}

TEST(PoissonArrivals, RateMatchesTargetLoadAndInvariantsHold) {
  const ServerMap servers = map_of({8, 8, 8, 8, 8, 8, 8, 8});  // 64
  const FlowSizeCdf* cdf = find_flow_size_cdf("fb_hadoop");
  ASSERT_NE(cdf, nullptr);
  const double load = 0.5;
  const double rate_gbps = 1.0;
  const std::uint64_t horizon_ns = 50'000'000;
  Rng rng(0x90155);
  const std::vector<FiniteFlow> arrivals =
      poisson_flow_arrivals(servers, *cdf, load, rate_gbps, horizon_ns, rng);
  // Expected count = S * load * rate / (8 * E[bytes]) * horizon; the
  // Poisson count concentrates well within 15% at this volume.
  const double expected = 64.0 * load * rate_gbps /
                          (8.0 * cdf->mean_bytes()) *
                          static_cast<double>(horizon_ns);
  ASSERT_GT(expected, 300.0);  // keep the tolerance meaningful
  EXPECT_NEAR(static_cast<double>(arrivals.size()), expected,
              0.15 * expected);
  std::uint64_t prev = 0;
  for (const FiniteFlow& f : arrivals) {
    EXPECT_GE(f.start_ns, prev);  // returned in arrival order
    prev = f.start_ns;
    EXPECT_LT(f.start_ns, horizon_ns);
    ASSERT_GE(f.src_server, 0);
    ASSERT_LT(f.src_server, servers.total());
    ASSERT_GE(f.dst_server, 0);
    ASSERT_LT(f.dst_server, servers.total());
    EXPECT_NE(f.src_server, f.dst_server);
    EXPECT_GE(f.size_bytes, 1.0);
  }
}

TEST(PoissonArrivals, DeterministicForSeed) {
  const ServerMap servers = map_of({4, 4, 4, 4});
  const FlowSizeCdf* cdf = find_flow_size_cdf("websearch");
  ASSERT_NE(cdf, nullptr);
  auto draw = [&] {
    Rng rng(1234);
    return poisson_flow_arrivals(servers, *cdf, 0.3, 1.0, 10'000'000, rng);
  };
  const std::vector<FiniteFlow> a = draw();
  const std::vector<FiniteFlow> b = draw();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src_server, b[i].src_server);
    EXPECT_EQ(a[i].dst_server, b[i].dst_server);
    EXPECT_DOUBLE_EQ(a[i].size_bytes, b[i].size_bytes);
    EXPECT_EQ(a[i].start_ns, b[i].start_ns);
  }
}

TEST(PoissonArrivals, RejectsBadArguments) {
  const ServerMap servers = map_of({4, 4});
  const FlowSizeCdf* cdf = find_flow_size_cdf("websearch");
  ASSERT_NE(cdf, nullptr);
  Rng rng(1);
  EXPECT_THROW(
      poisson_flow_arrivals(servers, *cdf, 0.0, 1.0, 1'000'000, rng),
      InvalidArgument);
  EXPECT_THROW(
      poisson_flow_arrivals(servers, *cdf, 1.5, 1.0, 1'000'000, rng),
      InvalidArgument);
  EXPECT_THROW(
      poisson_flow_arrivals(servers, *cdf, 0.5, 0.0, 1'000'000, rng),
      InvalidArgument);
  EXPECT_THROW(
      poisson_flow_arrivals(map_of({1}), *cdf, 0.5, 1.0, 1'000'000, rng),
      InvalidArgument);
}

}  // namespace
}  // namespace topo
