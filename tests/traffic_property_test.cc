// Property tests for the traffic generators: invariants that must hold
// for every server map and seed, checked across a randomized family of
// maps (uneven placements, empty switches, extreme chunky fractions, tiny
// networks) rather than a few hand-picked examples.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "traffic/traffic.h"
#include "util/rng.h"

namespace topo {
namespace {

ServerMap map_of(std::vector<int> per_switch) {
  ServerMap servers;
  servers.per_switch = std::move(per_switch);
  return servers;
}

// A randomized family of server maps: uneven counts and empty switches.
std::vector<ServerMap> property_maps() {
  std::vector<ServerMap> maps = {
      map_of({1, 1}),           // minimal
      map_of({5, 5, 5, 5}),     // uniform
      map_of({4, 0, 3, 1}),     // empty switch in the middle
      map_of({22, 2, 2, 2, 2, 2, 2, 2, 2, 2}),  // hotspot placement
  };
  Rng rng(0xbeef);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<int> counts(static_cast<std::size_t>(rng.uniform_int(2, 12)));
    int total = 0;
    for (int& c : counts) {
      c = rng.uniform_int(0, 7);
      total += c;
    }
    if (total < 2) counts.back() += 2;  // permutation needs two servers
    maps.push_back(map_of(std::move(counts)));
  }
  return maps;
}

TEST(PermutationProperty, DerangementWithEachServerOnceAsSourceAndSink) {
  for (const ServerMap& servers : property_maps()) {
    for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
      Rng rng(seed);
      const TrafficMatrix tm = random_permutation_traffic(servers, rng);
      const int total = servers.total();
      ASSERT_EQ(tm.flows.size(), static_cast<std::size_t>(total));
      std::vector<int> sent(static_cast<std::size_t>(total), 0);
      std::vector<int> received(static_cast<std::size_t>(total), 0);
      for (const ServerFlow& f : tm.flows) {
        ASSERT_GE(f.src_server, 0);
        ASSERT_LT(f.src_server, total);
        ASSERT_GE(f.dst_server, 0);
        ASSERT_LT(f.dst_server, total);
        EXPECT_NE(f.src_server, f.dst_server) << "fixed point at seed " << seed;
        EXPECT_DOUBLE_EQ(f.demand, 1.0);
        ++sent[static_cast<std::size_t>(f.src_server)];
        ++received[static_cast<std::size_t>(f.dst_server)];
      }
      for (int s = 0; s < total; ++s) {
        EXPECT_EQ(sent[static_cast<std::size_t>(s)], 1);
        EXPECT_EQ(received[static_cast<std::size_t>(s)], 1);
      }
    }
  }
}

TEST(AllToAllProperty, DemandSymmetryAndTotals) {
  for (const ServerMap& servers : property_maps()) {
    const std::vector<Commodity> commodities = all_to_all_commodities(servers);
    std::map<std::pair<NodeId, NodeId>, double> demand;
    for (const Commodity& c : commodities) {
      EXPECT_NE(c.src, c.dst);
      EXPECT_GT(c.demand, 0.0);
      const bool inserted =
          demand.emplace(std::make_pair(c.src, c.dst), c.demand).second;
      EXPECT_TRUE(inserted) << "duplicate commodity " << c.src << "->" << c.dst;
    }
    // Symmetric: demand(u, v) == demand(v, u) = s_u * s_v.
    for (const auto& [key, value] : demand) {
      const auto reverse = demand.find({key.second, key.first});
      ASSERT_NE(reverse, demand.end());
      EXPECT_DOUBLE_EQ(value, reverse->second);
      const double expected =
          static_cast<double>(
              servers.per_switch[static_cast<std::size_t>(key.first)]) *
          servers.per_switch[static_cast<std::size_t>(key.second)];
      EXPECT_DOUBLE_EQ(value, expected);
    }
    // Only switch pairs with servers on both ends appear.
    int hosts = 0;
    for (int count : servers.per_switch) hosts += count > 0 ? 1 : 0;
    EXPECT_EQ(commodities.size(),
              static_cast<std::size_t>(hosts) * (hosts - 1));
  }
}

// Helper: ToRs that send any chunky-style (fractional-demand) flow.
int count_chunky_tors(const TrafficMatrix& tm, const ServerMap& servers) {
  const std::vector<NodeId> home = servers.server_home();
  std::set<NodeId> chunky;
  for (const ServerFlow& f : tm.flows) {
    if (f.demand < 1.0) {
      chunky.insert(home[static_cast<std::size_t>(f.src_server)]);
    }
  }
  return static_cast<int>(chunky.size());
}

TEST(ChunkyProperty, ZeroFractionIsPureServerPermutation) {
  for (double fraction : {0.0, 1e-9}) {
    const ServerMap servers = map_of({3, 4, 0, 5, 2});
    Rng rng(11);
    const TrafficMatrix tm = chunky_traffic(servers, fraction, rng);
    EXPECT_EQ(tm.flows.size(), static_cast<std::size_t>(servers.total()));
    for (const ServerFlow& f : tm.flows) {
      EXPECT_DOUBLE_EQ(f.demand, 1.0);
      EXPECT_NE(f.src_server, f.dst_server);
    }
    EXPECT_EQ(count_chunky_tors(tm, servers), 0);
  }
}

TEST(ChunkyProperty, FullFractionEngagesEveryHostTor) {
  const ServerMap servers = map_of({3, 4, 0, 5, 2});
  Rng rng(13);
  const TrafficMatrix tm = chunky_traffic(servers, 1.0, rng);
  EXPECT_EQ(count_chunky_tors(tm, servers), 4);  // the four host ToRs
}

TEST(ChunkyProperty, TorCountBoundsAndDemandConservation) {
  // Across fractions and maps: chunky ToR count stays within
  // [0, hosts], a single selected ToR is promoted to a pair, and every
  // server still offers exactly one unit of egress.
  for (const ServerMap& servers : property_maps()) {
    int hosts = 0;
    bool every_host_multi = true;  // the demand<1 detector needs >=2 servers
    for (int count : servers.per_switch) {
      hosts += count > 0 ? 1 : 0;
      if (count == 1) every_host_multi = false;
    }
    if (hosts < 2) continue;
    for (double fraction : {0.0, 0.2, 0.5, 0.8, 1.0}) {
      Rng rng(17);
      const TrafficMatrix tm = chunky_traffic(servers, fraction, rng);
      const int chunky = count_chunky_tors(tm, servers);
      EXPECT_GE(chunky, 0);
      EXPECT_LE(chunky, hosts);
      const int requested =
          static_cast<int>(std::llround(fraction * hosts));
      if (requested == 0) {
        EXPECT_EQ(chunky, 0) << "fraction " << fraction;
      } else if (every_host_multi) {
        // A lone selected ToR is promoted to a pair (a 1-ToR permutation
        // is undefined); otherwise the request is honored exactly.
        EXPECT_EQ(chunky, std::min(hosts, std::max(requested, 2)))
            << "fraction " << fraction;
      }
      std::vector<double> egress(static_cast<std::size_t>(servers.total()),
                                 0.0);
      for (const ServerFlow& f : tm.flows) {
        egress[static_cast<std::size_t>(f.src_server)] += f.demand;
      }
      // Every server offers one unit of egress, except the corner where
      // the non-chunky remainder is a single server (a 1-server
      // permutation is empty): at most one server may sit idle.
      int idle = 0;
      for (double total : egress) {
        if (total == 0.0) {
          ++idle;
        } else {
          EXPECT_NEAR(total, 1.0, 1e-12);
        }
      }
      EXPECT_LE(idle, 1) << "fraction " << fraction;
    }
  }
}

TEST(ChunkyProperty, TinyNetworks) {
  // Two 1-server ToRs: both fractions degenerate to the same pairing.
  {
    Rng rng(3);
    const TrafficMatrix tm = chunky_traffic(map_of({1, 1}), 1.0, rng);
    ASSERT_EQ(tm.flows.size(), 2u);
    for (const ServerFlow& f : tm.flows) EXPECT_NE(f.src_server, f.dst_server);
  }
  // One host ToR cannot form any ToR-level pairing.
  {
    Rng rng(3);
    EXPECT_THROW(chunky_traffic(map_of({5, 0, 0}), 0.5, rng),
                 InvalidArgument);
  }
}

}  // namespace
}  // namespace topo
