// Tests for the exact max-concurrent-flow LP formulation.
#include <gtest/gtest.h>

#include "lp/mcf_lp.h"
#include "util/error.h"

namespace topo {
namespace {

TEST(McfLp, SingleCommoditySinglePath) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 1.0);
  const McfLpResult r = solve_concurrent_flow_lp(g, {{0, 2, 1.0}});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.lambda, 1.0, 1e-7);  // bottleneck 1.0, demand 1.0
}

TEST(McfLp, DemandScalesLambda) {
  Graph g(2);
  g.add_edge(0, 1, 3.0);
  const McfLpResult r = solve_concurrent_flow_lp(g, {{0, 1, 2.0}});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.lambda, 1.5, 1e-7);
}

TEST(McfLp, ParallelPathsAggregate) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const McfLpResult r = solve_concurrent_flow_lp(g, {{0, 3, 1.0}});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.lambda, 2.0, 1e-7);
}

TEST(McfLp, TriangleThreeCommodities) {
  // Unit triangle, three rotational commodities: each uses its direct edge
  // (cap 1) plus the two-hop alternative; known optimum 1.5.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  const McfLpResult r =
      solve_concurrent_flow_lp(g, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.lambda, 1.5, 1e-7);
}

TEST(McfLp, OpposingCommoditiesUseBothDirections) {
  // Full-duplex single edge supports 1 unit each way simultaneously.
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  const McfLpResult r =
      solve_concurrent_flow_lp(g, {{0, 1, 1.0}, {1, 0, 1.0}});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.lambda, 1.0, 1e-7);
}

TEST(McfLp, SharedBottleneckSplitsFairly) {
  // Two commodities share one unit edge in the same direction.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const McfLpResult r =
      solve_concurrent_flow_lp(g, {{0, 2, 1.0}, {0, 2, 1.0}});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.lambda, 0.5, 1e-7);
}

TEST(McfLp, DisconnectedIsInfeasibleOrZero) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const McfLpResult r = solve_concurrent_flow_lp(g, {{0, 2, 1.0}});
  // lambda can only be zero (or the LP infeasible) for unreachable pairs.
  if (r.status == LpStatus::kOptimal) EXPECT_NEAR(r.lambda, 0.0, 1e-7);
}

TEST(McfLp, ArcFlowsRespectCapacities) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 3, 0.5);
  const McfLpResult r =
      solve_concurrent_flow_lp(g, {{0, 3, 1.0}, {1, 2, 1.0}});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  for (int arc = 0; arc < 2 * g.num_edges(); ++arc) {
    EXPECT_LE(r.arc_flow[static_cast<std::size_t>(arc)],
              g.edge(arc / 2).capacity + 1e-7);
  }
}

TEST(McfLp, RejectsBadCommodities) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)solve_concurrent_flow_lp(g, {{0, 0, 1.0}}),
               InvalidArgument);
  EXPECT_THROW((void)solve_concurrent_flow_lp(g, {{0, 1, -1.0}}),
               InvalidArgument);
  EXPECT_THROW((void)solve_concurrent_flow_lp(g, {}), InvalidArgument);
}

TEST(McfLp, CapacityHeterogeneityRespected) {
  // A 10x "high-speed" edge should carry 10x the load of a unit edge.
  Graph g(2);
  g.add_edge(0, 1, 10.0);
  const McfLpResult r = solve_concurrent_flow_lp(g, {{0, 1, 1.0}});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.lambda, 10.0, 1e-6);
}

}  // namespace
}  // namespace topo
