// Orchestrator fault-tolerance tests: the supervised-worker acceptance
// criteria from the fault-injection harness. A worker killed mid-store
// (crash_after_cells) or wedged mid-sweep (stall_after_cells) must not
// change the merged output — retried stripes resume from the published
// cells and the coordinator merge is byte-identical to an unsharded run
// with zero recomputation. Retry exhaustion must degrade loudly: partial
// exit code, complete points only, and a manifest naming every missing
// cell. Plus unit coverage for the Subprocess status decoding the
// supervision loop relies on.
//
// These tests exec the real CLI binary (TOPOBENCH_CLI_PATH, injected by
// tests/CMakeLists.txt) as the worker, so the whole chain — spawn, env
// plumbing, heartbeats, cache publication, kill/requeue — runs for real.
#include <gtest/gtest.h>
#include <signal.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/orchestrator.h"
#include "scenario/scenario.h"
#include "scenario/spec_io.h"
#include "scenario/sweep.h"
#include "util/exit_codes.h"
#include "util/fault.h"
#include "util/subprocess.h"

namespace topo::scenario {
namespace {

// Small enough that every attempt is quick, large enough that a
// crash-after-one-cell worker needs several attempts to finish its
// stripe (4 points x 1 run = 4 cells, 2 cells per stripe at 2 workers).
ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "orchestrator_test_tiny";
  spec.description = "tiny RRG sweep (orchestrator tests)";
  spec.topology = {"random_regular", {{"n", 12}, {"ports", 6}, {"degree", 4}}};
  spec.axes = {{"link_failure_fraction", {0.0, 0.1, 0.2, 0.3}, {}}};
  spec.quick_runs = 1;
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/topobench_orch_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// The worker binary needs the spec as a file; the merge uses the parsed
// spec directly, exactly as orchestrate_main does.
std::string write_spec(const ScenarioSpec& spec, const std::string& dir) {
  const std::string path = dir + "/spec.json";
  std::ofstream out(path);
  out << spec_to_json(spec);
  return path;
}

ScenarioOptions base_options() {
  ScenarioOptions options;
  options.epsilon = 0.25;  // loose: these tests care about supervision
  options.seed = 5;
  options.csv = true;
  return options;
}

// The unsharded, uncached single-process output every orchestration must
// reproduce byte for byte.
std::string reference_output(const ScenarioSpec& spec) {
  std::ostringstream os;
  ScenarioRun run(base_options(), os);
  run_spec_scenario(spec, run);
  return os.str();
}

OrchestratorConfig base_config(const std::string& spec_path,
                               const std::string& cache_dir) {
  OrchestratorConfig config;
  config.worker_exe = TOPOBENCH_CLI_PATH;
  config.spec_path = spec_path;
  config.cache_dir = cache_dir;
  config.workers = 2;
  config.max_retries = 8;
  config.backoff_ms = 10;       // keep retry storms fast in tests
  config.poll_interval_ms = 10;
  // Workers must resolve the same cell grid as the merge context below.
  config.worker_flags = {"--eps=0.25", "--seed=5"};
  return config;
}

TEST(Subprocess, DecodesExitCodesAndSignals) {
  Subprocess clean = Subprocess::spawn({"/bin/sh", "-c", "exit 0"});
  EXPECT_TRUE(clean.wait().ok());

  Subprocess failing = Subprocess::spawn({"/bin/sh", "-c", "exit 7"});
  const Subprocess::Status failed = failing.wait();
  EXPECT_EQ(failed.state, Subprocess::Status::State::kExited);
  EXPECT_EQ(failed.exit_code, 7);
  EXPECT_FALSE(failed.ok());

  Subprocess victim = Subprocess::spawn({"/bin/sh", "-c", "sleep 600"});
  EXPECT_TRUE(victim.poll().running());
  victim.send_signal(SIGKILL);
  const Subprocess::Status killed = victim.wait();
  EXPECT_EQ(killed.state, Subprocess::Status::State::kSignaled);
  EXPECT_EQ(killed.term_signal, SIGKILL);
  EXPECT_FALSE(killed.ok());
}

TEST(Subprocess, ExecFailureSurfacesAs127) {
  Subprocess missing =
      Subprocess::spawn({"/nonexistent/topobench-no-such-binary"});
  const Subprocess::Status status = missing.wait();
  EXPECT_EQ(status.state, Subprocess::Status::State::kExited);
  EXPECT_EQ(status.exit_code, 127);
}

TEST(Subprocess, ChildEnvironmentAndLogRedirection) {
  const std::string dir = fresh_dir("subproc_env");
  const std::string log = dir + "/child.log";
  SpawnOptions options;
  options.env = {{"TOPOBENCH_SUBPROC_TEST", "marker-42"}};
  options.log_path = log;
  Subprocess child = Subprocess::spawn(
      {"/bin/sh", "-c", "printf '%s' \"$TOPOBENCH_SUBPROC_TEST\""}, options);
  EXPECT_TRUE(child.wait().ok());
  std::ifstream in(log);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "marker-42");
  std::filesystem::remove_all(dir);
}

// Acceptance: a worker SIGKILLed mid-store (after every published cell)
// still converges — each retry resumes from the cache, and the final
// merge is byte-identical to the unsharded run with zero recomputation.
TEST(Orchestrator, CrashMidStoreRecoveryIsByteIdentical) {
  const ScenarioSpec spec = tiny_spec();
  const std::string dir = fresh_dir("crash");
  OrchestratorConfig config = base_config(write_spec(spec, dir), dir);
  config.worker_env = {{fault::kFaultEnvVar, "crash_after_cells:1"}};

  std::ostringstream os;
  ScenarioOptions options = base_options();
  options.cache_dir = dir;
  ScenarioRun merge_ctx(options, os);
  const OrchestrationReport report = orchestrate(config, spec, merge_ctx);

  EXPECT_EQ(report.exit_code, kExitOk);
  EXPECT_TRUE(report.failed_stripes.empty());
  // Every worker dies after one store, so each 2-cell stripe needs
  // at least one retry to finish.
  EXPECT_GE(report.total_retries, 1);
  EXPECT_EQ(report.merge_cache_misses, 0);
  EXPECT_EQ(report.merge_cache_hits, 4);
  EXPECT_EQ(os.str(), reference_output(spec));
  std::filesystem::remove_all(dir);
}

// Acceptance: a worker that wedges (heartbeat-silent but alive) is
// detected via heartbeat mtime, killed, and its stripe retried — same
// byte-identical convergence as the crash case.
TEST(Orchestrator, StallDetectionKillsAndRecovers) {
  const ScenarioSpec spec = tiny_spec();
  const std::string dir = fresh_dir("stall");
  OrchestratorConfig config = base_config(write_spec(spec, dir), dir);
  config.worker_env = {{fault::kFaultEnvVar, "stall_after_cells:1"}};
  config.worker_timeout = 2.0;  // stalls are forever; detect them fast

  std::ostringstream os;
  ScenarioOptions options = base_options();
  options.cache_dir = dir;
  ScenarioRun merge_ctx(options, os);
  const OrchestrationReport report = orchestrate(config, spec, merge_ctx);

  EXPECT_EQ(report.exit_code, kExitOk);
  EXPECT_TRUE(report.failed_stripes.empty());
  EXPECT_GE(report.stall_kills, 1);
  EXPECT_EQ(report.merge_cache_misses, 0);
  EXPECT_EQ(os.str(), reference_output(spec));
  std::filesystem::remove_all(dir);
}

// Acceptance: when a stripe exhausts its retries the orchestrator
// degrades instead of dying — partial exit code, the complete points
// only, and a manifest naming every missing cell.
TEST(Orchestrator, RetryExhaustionEmitsManifestAndPartialExit) {
  const ScenarioSpec spec = tiny_spec();
  const std::string dir = fresh_dir("exhaust");
  OrchestratorConfig config = base_config(write_spec(spec, dir), dir);
  config.worker_env = {{fault::kFaultEnvVar, "crash_after_cells:1"}};
  config.max_retries = 0;  // first crash abandons the stripe

  std::ostringstream os;
  ScenarioOptions options = base_options();
  options.cache_dir = dir;
  ScenarioRun merge_ctx(options, os);
  const OrchestrationReport report = orchestrate(config, spec, merge_ctx);

  EXPECT_EQ(report.exit_code, kExitPartial);
  // Both stripes crash after publishing exactly one of their two cells.
  EXPECT_EQ(report.failed_stripes, (std::vector<int>{0, 1}));
  EXPECT_EQ(report.missing_cells, 2u);
  EXPECT_EQ(report.merge_cache_hits, 2);
  EXPECT_EQ(report.merge_cache_misses, 0);  // merge_only never recomputes

  // The merge emitted only the complete points: the degraded table is a
  // strict (row-subset) prefix-wise reduction of the reference, never a
  // silently recomputed full table.
  const std::string reference = reference_output(spec);
  EXPECT_NE(os.str(), reference);
  EXPECT_LT(os.str().size(), reference.size());

  ASSERT_FALSE(report.manifest_path.empty());
  std::ifstream in(report.manifest_path);
  ASSERT_TRUE(in.good()) << report.manifest_path;
  std::string manifest((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(manifest.find("\"failed_stripes\": [0, 1]"), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("\"missing_cells\""), std::string::npos);
  EXPECT_NE(manifest.find("\"key\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

// The healthy path: no faults, two workers, byte-identical merge with
// zero recomputation and zero retries.
TEST(Orchestrator, HealthyRunMergesByteIdentical) {
  const ScenarioSpec spec = tiny_spec();
  const std::string dir = fresh_dir("healthy");
  OrchestratorConfig config = base_config(write_spec(spec, dir), dir);

  std::ostringstream os;
  ScenarioOptions options = base_options();
  options.cache_dir = dir;
  ScenarioRun merge_ctx(options, os);
  const OrchestrationReport report = orchestrate(config, spec, merge_ctx);

  EXPECT_EQ(report.exit_code, kExitOk);
  EXPECT_EQ(report.total_retries, 0);
  EXPECT_EQ(report.stall_kills, 0);
  EXPECT_EQ(report.merge_cache_misses, 0);
  EXPECT_EQ(report.merge_cache_hits, 4);
  EXPECT_EQ(os.str(), reference_output(spec));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace topo::scenario
