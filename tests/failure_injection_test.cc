// Failure-injection tests: degraded networks, missing links, and edge-case
// server placements must degrade gracefully, never crash or wedge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "core/evaluate.h"
#include "core/failure.h"
#include "graph/algorithms.h"
#include "lp/mcf_lp.h"
#include "sim/network.h"
#include "topo/fat_tree.h"
#include "topo/random_regular.h"
#include "topo/vl2.h"
#include "util/rng.h"

namespace topo {
namespace {

// Copy of a graph with `kill` randomly chosen edges removed.
Graph degrade(const Graph& g, int kill, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<char> dead(static_cast<std::size_t>(g.num_edges()), 0);
  int killed = 0;
  while (killed < kill) {
    const std::size_t e = rng.index(static_cast<std::size_t>(g.num_edges()));
    if (!dead[e]) {
      dead[e] = 1;
      ++killed;
    }
  }
  Graph h(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!dead[static_cast<std::size_t>(e)]) {
      h.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).capacity);
    }
  }
  return h;
}

BuiltTopology with_uniform_servers(Graph graph, int per_switch) {
  BuiltTopology t;
  const int n = graph.num_nodes();
  t.graph = std::move(graph);
  t.servers.per_switch.assign(static_cast<std::size_t>(n), per_switch);
  t.node_class.assign(static_cast<std::size_t>(n), 0);
  t.class_names = {"switch"};
  return t;
}

TEST(FailureInjection, ThroughputDegradesGracefullyWithLinkLoss) {
  const Graph g = random_regular_graph(24, 6, 5);
  EvalOptions options;
  options.flow.epsilon = 0.08;
  double previous = 1e9;
  for (int kill : {0, 4, 8, 16}) {
    const Graph damaged = degrade(g, kill, 7);
    if (!is_connected(damaged)) break;  // heavier loss cases may disconnect
    const ThroughputResult r =
        evaluate_throughput(with_uniform_servers(damaged, 4), options, 3);
    ASSERT_TRUE(r.feasible);
    EXPECT_GT(r.lambda, 0.0);
    // Allow solver noise but demand a broadly monotone decline.
    EXPECT_LE(r.lambda, previous * 1.15) << "killed " << kill;
    previous = r.lambda;
  }
}

TEST(FailureInjection, DisconnectionYieldsZeroNotCrash) {
  // Cut a bridge: a path graph loses its middle edge.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);  // 1-2 missing: {0,1} vs {2,3}
  const ThroughputResult r = evaluate_throughput(
      with_uniform_servers(std::move(g), 1), EvalOptions{}, 5);
  EXPECT_FALSE(r.feasible);
  EXPECT_DOUBLE_EQ(r.lambda, 0.0);
}

TEST(FailureInjection, SwitchesWithoutServersAreTransitOnly) {
  // Servers only on half the switches: the rest still forward traffic.
  const Graph g = random_regular_graph(12, 4, 9);
  BuiltTopology t = with_uniform_servers(g, 0);
  for (NodeId n = 0; n < 6; ++n) {
    t.servers.per_switch[static_cast<std::size_t>(n)] = 4;
  }
  const ThroughputResult r = evaluate_throughput(t, EvalOptions{}, 3);
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.lambda, 0.0);
}

TEST(FailureInjection, HotspotServerPlacementHurtsThroughput) {
  // Same switches, same 40 servers, two placements: uniform (4 each) vs a
  // hotspot holding 22 (the paper's footnote 5: uneven placement across
  // identical switches bottlenecks the heavy switch).
  const Graph g = random_regular_graph(10, 4, 11);
  const BuiltTopology balanced = with_uniform_servers(g, 4);
  BuiltTopology hotspot = with_uniform_servers(g, 2);
  hotspot.servers.per_switch[0] = 22;  // 22 + 9*2 = 40 servers
  const ThroughputResult r_balanced =
      evaluate_throughput(balanced, EvalOptions{}, 3);
  const ThroughputResult r_hotspot =
      evaluate_throughput(hotspot, EvalOptions{}, 3);
  ASSERT_TRUE(r_balanced.feasible);
  ASSERT_TRUE(r_hotspot.feasible);
  EXPECT_GT(r_hotspot.lambda, 0.0);
  EXPECT_LT(r_hotspot.lambda, 0.9 * r_balanced.lambda);
}

TEST(FailureInjection, PacketSimSurvivesLinkScarcity) {
  // A barbell: heavy contention on the single middle link. Flows are
  // added explicitly so every one of them crosses the bottleneck.
  Graph g(2);
  g.add_edge(0, 1, 0.2);
  BuiltTopology t = with_uniform_servers(std::move(g), 3);
  sim::SimParams params;
  params.subflows = 2;
  params.duration_ns = 10'000'000;
  params.warmup_ns = 5'000'000;
  sim::SimNetwork net(t, params, 3);
  for (int i = 0; i < 3; ++i) net.add_flow(i, 3 + i);  // all cross-switch
  const sim::SimulationResult result = net.run();
  EXPECT_EQ(result.flows.size(), 3u);
  EXPECT_GT(result.total_drops, 0u);  // contention must be visible
  double total = 0.0;
  for (const auto& f : result.flows) {
    EXPECT_GE(f.goodput_gbps, 0.0);
    EXPECT_LE(f.goodput_gbps, 0.22);  // nobody exceeds the bottleneck rate
    total += f.goodput_gbps;
  }
  EXPECT_LE(total, 0.22);  // aggregate bounded by the middle link
  EXPECT_GT(total, 0.1);   // but the link is actually used
}

TEST(FailureInjection, RewiredVl2SurvivesExtremeTorCounts) {
  Vl2Params params;
  params.d_a = 8;
  params.d_i = 8;
  // The absolute maximum leaves each pool switch exactly one fabric port;
  // construction must still produce a connected topology.
  const int max_tors = rewired_vl2_max_tors(params);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const BuiltTopology t = rewired_vl2_topology(params, max_tors, seed);
    EXPECT_TRUE(is_connected(t.graph));
  }
}

// ---- FailureSpec (core/failure.h): the scenario engine's seeded,
// ---- composable degradations.

TEST(FailureSpec, SameSeedSameFailedSets) {
  const BuiltTopology t = random_regular_topology(20, 8, 5, 17);
  FailureSpec model;
  model.uniform.link_fraction = 0.2;
  model.uniform.switch_fraction = 0.1;
  FailureSample a;
  FailureSample b;
  const BuiltTopology da = apply_failures(t, model, 42, &a);
  const BuiltTopology db = apply_failures(t, model, 42, &b);
  EXPECT_EQ(a.failed_links, b.failed_links);
  EXPECT_EQ(a.failed_switches, b.failed_switches);
  EXPECT_EQ(da.graph.num_edges(), db.graph.num_edges());
  EXPECT_FALSE(a.failed_links.empty());
  EXPECT_FALSE(a.failed_switches.empty());

  // A different seed draws a different link set (overwhelmingly likely for
  // 10 of 50 edges; this seed pair is fixed, so the test is deterministic).
  FailureSample c;
  (void)apply_failures(t, model, 43, &c);
  EXPECT_NE(a.failed_links, c.failed_links);
}

TEST(FailureSpec, HigherFractionFailsSuperset) {
  const BuiltTopology t = random_regular_topology(24, 9, 6, 5);
  for (double low_fraction : {0.1, 0.2}) {
    FailureSpec low;
    low.uniform.link_fraction = low_fraction;
    FailureSpec high;
    high.uniform.link_fraction = low_fraction + 0.15;
    FailureSample small_set;
    FailureSample big_set;
    (void)apply_failures(t, low, 7, &small_set);
    (void)apply_failures(t, high, 7, &big_set);
    EXPECT_TRUE(std::includes(big_set.failed_links.begin(),
                              big_set.failed_links.end(),
                              small_set.failed_links.begin(),
                              small_set.failed_links.end()));
  }
}

TEST(FailureSpec, ThroughputMonotoneNonIncreasingInLinkFailures) {
  // Fixed RRG, fixed permutation workload, exact LP solve: because the
  // failed sets nest (superset property above), the optimum is exactly
  // monotone — no FPTAS slack involved.
  const BuiltTopology t = random_regular_topology(12, 6, 4, 11);
  Rng traffic_rng(23);
  const TrafficMatrix tm = random_permutation_traffic(t.servers, traffic_rng);
  const auto commodities = aggregate_to_commodities(tm, t.servers);
  double previous = 1e300;
  for (double fraction : {0.0, 0.1, 0.2, 0.3}) {
    FailureSpec model;
    model.uniform.link_fraction = fraction;
    const BuiltTopology degraded = apply_failures(t, model, 29);
    if (!is_connected(degraded.graph)) break;
    const McfLpResult exact =
        solve_concurrent_flow_lp(degraded.graph, commodities);
    ASSERT_EQ(exact.status, LpStatus::kOptimal);
    EXPECT_LE(exact.lambda, previous + 1e-9) << "fraction " << fraction;
    previous = exact.lambda;
  }
}

TEST(FailureSpec, CapacityFactorScalesThroughputExactly) {
  const BuiltTopology t = random_regular_topology(10, 5, 4, 3);
  Rng traffic_rng(31);
  const TrafficMatrix tm = random_permutation_traffic(t.servers, traffic_rng);
  const auto commodities = aggregate_to_commodities(tm, t.servers);
  FailureSpec half;
  half.capacity_factor = 0.5;
  const McfLpResult full = solve_concurrent_flow_lp(t.graph, commodities);
  const McfLpResult derated =
      solve_concurrent_flow_lp(apply_failures(t, half, 1).graph, commodities);
  ASSERT_EQ(full.status, LpStatus::kOptimal);
  ASSERT_EQ(derated.status, LpStatus::kOptimal);
  EXPECT_NEAR(derated.lambda, 0.5 * full.lambda, 1e-9);
}

TEST(FailureSpec, SwitchFailureKillsLinksAndServers) {
  const BuiltTopology t = random_regular_topology(20, 10, 6, 13);
  FailureSpec model;
  model.uniform.switch_fraction = 0.25;
  FailureSample sample;
  const BuiltTopology degraded = apply_failures(t, model, 3, &sample);
  ASSERT_EQ(sample.failed_switches.size(), 5u);
  EXPECT_EQ(degraded.graph.num_nodes(), t.graph.num_nodes());  // ids stable
  for (NodeId dead : sample.failed_switches) {
    EXPECT_EQ(degraded.graph.degree(dead), 0);
    EXPECT_EQ(degraded.servers.per_switch[static_cast<std::size_t>(dead)], 0);
  }
  EXPECT_EQ(degraded.servers.total(), t.servers.total() - 5 * 4);
}

TEST(FailureSpec, FullDisconnectionYieldsZeroThroughputNotCrash) {
  const BuiltTopology t = random_regular_topology(12, 6, 4, 19);
  EvalOptions options;
  options.failure.uniform.link_fraction = 1.0;  // every link dies
  const ThroughputResult r = evaluate_throughput(t, options, 7);
  EXPECT_FALSE(r.feasible);
  EXPECT_DOUBLE_EQ(r.lambda, 0.0);

  // All switches down: no servers survive either — still a clean zero.
  EvalOptions all_switches;
  all_switches.failure.uniform.switch_fraction = 1.0;
  const ThroughputResult r2 = evaluate_throughput(t, all_switches, 7);
  EXPECT_FALSE(r2.feasible);
  EXPECT_DOUBLE_EQ(r2.lambda, 0.0);
}

TEST(FailureSpec, InactiveModelIsExactNoOp) {
  const BuiltTopology t = random_regular_topology(16, 8, 5, 23);
  EvalOptions plain;
  EvalOptions with_inactive;
  with_inactive.failure = FailureSpec{};  // all defaults
  const ThroughputResult a = evaluate_throughput(t, plain, 9);
  const ThroughputResult b = evaluate_throughput(t, with_inactive, 9);
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.dual_bound, b.dual_bound);
  EXPECT_EQ(a.phases, b.phases);
}

TEST(FailureSpec, RejectsBadParameters) {
  const BuiltTopology t = random_regular_topology(8, 4, 3, 1);
  FailureSpec negative;
  negative.uniform.link_fraction = -0.1;
  EXPECT_THROW((void)apply_failures(t, negative, 1), InvalidArgument);
  FailureSpec zero_capacity;
  zero_capacity.capacity_factor = 0.0;
  EXPECT_THROW((void)apply_failures(t, zero_capacity, 1), InvalidArgument);
}

TEST(FailureSpec, ActiveReflectsEveryComponent) {
  EXPECT_FALSE(FailureSpec{}.active());
  FailureSpec uniform;
  uniform.uniform.link_fraction = 0.1;
  EXPECT_TRUE(uniform.active());
  FailureSpec correlated;
  correlated.correlated.epicenter_fraction = 0.1;
  EXPECT_TRUE(correlated.active());
  FailureSpec per_class;
  per_class.per_class.switch_fraction["core"] = 0.1;
  EXPECT_TRUE(per_class.active());
  FailureSpec targeted;
  targeted.targeted.link_cuts = 1;
  EXPECT_TRUE(targeted.active());
  FailureSpec derated;
  derated.capacity_factor = 0.5;
  EXPECT_TRUE(derated.active());
  // "Derating requested" is capacity_factor < 1.0, not an exact != 1.0
  // compare: a value one ulp ABOVE 1.0 no longer flips the whole
  // degradation pass on. It is invalid rather than a no-op, and the
  // evaluation layer validates before the active() gate, so it still
  // fails loudly instead of silently evaluating pristine.
  FailureSpec drifted;
  drifted.capacity_factor = std::nextafter(1.0, 2.0);
  EXPECT_FALSE(drifted.active());
  const BuiltTopology t = random_regular_topology(8, 4, 3, 1);
  EvalOptions options;
  options.failure = drifted;
  EXPECT_THROW((void)evaluate_throughput(t, options, 1), InvalidArgument);
}

// ---- Correlated blast-radius component.

TEST(FailureSpec, CorrelatedSameSeedSameBlast) {
  const BuiltTopology t = fat_tree_topology(4);  // classes: 8 edge/8 agg/4 core
  FailureSpec spec;
  spec.correlated.epicenter_fraction = 0.25;
  spec.correlated.peer_probability = 0.5;
  FailureSample a;
  FailureSample b;
  (void)apply_failures(t, spec, 11, &a);
  (void)apply_failures(t, spec, 11, &b);
  EXPECT_EQ(a.epicenters, b.epicenters);
  EXPECT_EQ(a.blast_victims, b.blast_victims);
  EXPECT_EQ(a.failed_switches, b.failed_switches);
  EXPECT_EQ(a.epicenters.size(), 5u);  // llround(0.25 * 20)
  EXPECT_FALSE(a.blast_victims.empty());

  FailureSample c;
  (void)apply_failures(t, spec, 12, &c);
  EXPECT_NE(a.failed_switches, c.failed_switches);
}

TEST(FailureSpec, CorrelatedNestsInEpicenterFractionAndProbability) {
  const BuiltTopology t = fat_tree_topology(4);
  const auto failed_switches = [&](double fraction, double probability) {
    FailureSpec spec;
    spec.correlated.epicenter_fraction = fraction;
    spec.correlated.peer_probability = probability;
    FailureSample sample;
    (void)apply_failures(t, spec, 17, &sample);
    return sample.failed_switches;
  };
  // More epicenters: existing epicenters' victims are keyed to the
  // epicenter's node id, so the failed set only grows.
  const auto few = failed_switches(0.1, 0.4);
  const auto more = failed_switches(0.3, 0.4);
  EXPECT_TRUE(std::includes(more.begin(), more.end(), few.begin(), few.end()));
  // Higher peer probability: the per-peer rolls are fixed, so raising the
  // threshold converts a superset of them into kills.
  const auto gentle = failed_switches(0.2, 0.2);
  const auto harsh = failed_switches(0.2, 0.7);
  EXPECT_TRUE(
      std::includes(harsh.begin(), harsh.end(), gentle.begin(), gentle.end()));
}

TEST(FailureSpec, BlastRadiusRespectsNodeClass) {
  const BuiltTopology t = fat_tree_topology(4);
  FailureSpec spec;
  spec.correlated.epicenter_fraction = 0.15;  // 3 epicenters
  spec.correlated.peer_probability = 0.6;
  FailureSample sample;
  (void)apply_failures(t, spec, 5, &sample);
  ASSERT_FALSE(sample.blast_victims.empty());
  for (NodeId victim : sample.blast_victims) {
    bool shares_class_with_epicenter = false;
    for (NodeId epicenter : sample.epicenters) {
      shares_class_with_epicenter =
          shares_class_with_epicenter ||
          t.class_of(victim) == t.class_of(epicenter);
    }
    EXPECT_TRUE(shares_class_with_epicenter)
        << "victim " << victim << " (class " << t.class_of(victim)
        << ") shares no epicenter's class";
  }
}

// ---- Per-class component.

TEST(FailureSpec, PerClassRatesFailTheNamedClassOnly) {
  const BuiltTopology t = fat_tree_topology(4);  // 8 edge, 8 agg, 4 core
  FailureSpec spec;
  spec.per_class.switch_fraction["core"] = 0.5;
  FailureSample sample;
  const BuiltTopology degraded = apply_failures(t, spec, 9, &sample);
  ASSERT_EQ(sample.failed_switches.size(), 2u);  // llround(0.5 * 4)
  const int core_class = 2;  // fat_tree class_names = {edge, aggregation, core}
  ASSERT_EQ(t.class_names[core_class], "core");
  for (NodeId dead : sample.failed_switches) {
    EXPECT_EQ(t.class_of(dead), core_class);
    EXPECT_EQ(degraded.graph.degree(dead), 0);
  }
}

TEST(FailureSpec, PerClassNestsAndStreamsAreIndependent) {
  const BuiltTopology t = fat_tree_topology(4);
  const auto failed_switches = [&](std::map<std::string, double> rates) {
    FailureSpec spec;
    spec.per_class.switch_fraction = std::move(rates);
    FailureSample sample;
    (void)apply_failures(t, spec, 21, &sample);
    return sample.failed_switches;
  };
  const auto low = failed_switches({{"edge", 0.25}});
  const auto high = failed_switches({{"edge", 0.5}});
  EXPECT_EQ(low.size(), 2u);
  EXPECT_EQ(high.size(), 4u);
  EXPECT_TRUE(std::includes(high.begin(), high.end(), low.begin(), low.end()));
  // Adding another class's rate must not reshuffle the edge class's draw.
  const auto combined = failed_switches({{"edge", 0.25}, {"core", 0.5}});
  EXPECT_TRUE(std::includes(combined.begin(), combined.end(), low.begin(),
                            low.end()));
  EXPECT_EQ(combined.size(), low.size() + 2u);
}

TEST(FailureSpec, PerClassUnknownClassFailsLoudly) {
  const BuiltTopology t = random_regular_topology(8, 4, 3, 1);  // class "switch"
  FailureSpec spec;
  spec.per_class.switch_fraction["tor"] = 0.5;
  try {
    (void)apply_failures(t, spec, 1);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("tor"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("switch"), std::string::npos);
  }
  // Even an all-zero rate counts as active and validates the class name:
  // a typo'd class axis fails at its first cell, not only once the swept
  // rate turns positive (after cache writes).
  FailureSpec zero_rate;
  zero_rate.per_class.switch_fraction["tor"] = 0.0;
  EXPECT_TRUE(zero_rate.active());
  EXPECT_THROW((void)apply_failures(t, zero_rate, 1), InvalidArgument);
}

// ---- Targeted adversarial component.

TEST(FailureSpec, TargetedRankingIsDeterministicAndComplete) {
  const BuiltTopology t = random_regular_topology(16, 8, 5, 23);
  const std::vector<EdgeId> ranking = targeted_link_ranking(t.graph);
  EXPECT_EQ(ranking, targeted_link_ranking(t.graph));
  ASSERT_EQ(static_cast<int>(ranking.size()), t.graph.num_edges());
  std::vector<EdgeId> sorted = ranking;
  std::sort(sorted.begin(), sorted.end());
  for (EdgeId e = 0; e < t.graph.num_edges(); ++e) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(e)], e);  // a permutation
  }
}

TEST(FailureSpec, TargetedRankingPutsTheBridgeFirst) {
  // Two triangles joined by a single bridge: every cross pair routes over
  // it, so betweenness must rank the bridge strictly first.
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  g.add_edge(5, 3, 1.0);
  const EdgeId bridge = g.add_edge(2, 3, 1.0);
  const std::vector<EdgeId> ranking = targeted_link_ranking(g);
  EXPECT_EQ(ranking.front(), bridge);
}

TEST(FailureSpec, TargetedCutsAreSeedIndependentAndNested) {
  const BuiltTopology t = random_regular_topology(16, 8, 5, 23);
  FailureSpec spec;
  spec.targeted.link_cuts = 5;
  FailureSample a;
  FailureSample b;
  (void)apply_failures(t, spec, 1, &a);
  (void)apply_failures(t, spec, 999, &b);  // seed must not matter
  EXPECT_EQ(a.failed_links, b.failed_links);
  EXPECT_EQ(a.targeted_links, b.targeted_links);
  ASSERT_EQ(a.targeted_links.size(), 5u);

  // The cuts are exactly the ranking's top-5, and k nests.
  const std::vector<EdgeId> ranking = targeted_link_ranking(t.graph);
  std::vector<EdgeId> expected(ranking.begin(), ranking.begin() + 5);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(a.targeted_links, expected);
  FailureSpec fewer;
  fewer.targeted.link_cuts = 2;
  FailureSample small_set;
  (void)apply_failures(t, fewer, 1, &small_set);
  EXPECT_TRUE(std::includes(a.failed_links.begin(), a.failed_links.end(),
                            small_set.failed_links.begin(),
                            small_set.failed_links.end()));

  // k beyond the edge count cuts everything, cleanly.
  FailureSpec all;
  all.targeted.link_cuts = t.graph.num_edges() + 100;
  FailureSample everything;
  const BuiltTopology empty = apply_failures(t, all, 1, &everything);
  EXPECT_EQ(static_cast<int>(everything.failed_links.size()),
            t.graph.num_edges());
  EXPECT_EQ(empty.graph.num_edges(), 0);
}

TEST(FailureSpec, ExactLpMonotoneNonIncreasingInTargetedCuts) {
  // Targeted cuts nest in k by construction, so with a fixed workload the
  // exact optimum is monotone non-increasing — the targeted counterpart of
  // the uniform link-fraction test above.
  const BuiltTopology t = random_regular_topology(12, 6, 4, 11);
  Rng traffic_rng(23);
  const TrafficMatrix tm = random_permutation_traffic(t.servers, traffic_rng);
  const auto commodities = aggregate_to_commodities(tm, t.servers);
  double previous = 1e300;
  for (int cuts : {0, 2, 4, 6}) {
    FailureSpec spec;
    spec.targeted.link_cuts = cuts;
    const BuiltTopology degraded = apply_failures(t, spec, 29);
    if (!is_connected(degraded.graph)) break;
    const McfLpResult exact =
        solve_concurrent_flow_lp(degraded.graph, commodities);
    ASSERT_EQ(exact.status, LpStatus::kOptimal);
    EXPECT_LE(exact.lambda, previous + 1e-9) << "cuts " << cuts;
    previous = exact.lambda;
  }
}

// ---- Composition.

TEST(FailureSpec, ComponentsComposeWithoutPerturbingEachOther) {
  const BuiltTopology t = fat_tree_topology(4);
  FailureSpec uniform_only;
  uniform_only.uniform.link_fraction = 0.1;
  uniform_only.uniform.switch_fraction = 0.1;
  FailureSample uniform_sample;
  (void)apply_failures(t, uniform_only, 31, &uniform_sample);

  FailureSpec composed = uniform_only;
  composed.targeted.link_cuts = 4;
  composed.per_class.switch_fraction["core"] = 0.5;
  FailureSample composed_sample;
  (void)apply_failures(t, composed, 31, &composed_sample);

  // The uniform component's draw is untouched by the added components
  // (independent streams), and the union contains every contributor.
  EXPECT_TRUE(std::includes(composed_sample.failed_links.begin(),
                            composed_sample.failed_links.end(),
                            uniform_sample.failed_links.begin(),
                            uniform_sample.failed_links.end()));
  EXPECT_TRUE(std::includes(composed_sample.failed_switches.begin(),
                            composed_sample.failed_switches.end(),
                            uniform_sample.failed_switches.begin(),
                            uniform_sample.failed_switches.end()));
  EXPECT_TRUE(std::includes(composed_sample.failed_links.begin(),
                            composed_sample.failed_links.end(),
                            composed_sample.targeted_links.begin(),
                            composed_sample.targeted_links.end()));
  EXPECT_GE(composed_sample.failed_switches.size(),
            uniform_sample.failed_switches.size() + 2u);  // + 2 core kills
}

TEST(FailureSpec, RejectsBadComponentParameters) {
  const BuiltTopology t = random_regular_topology(8, 4, 3, 1);
  FailureSpec blast;
  blast.correlated.peer_probability = 1.5;
  EXPECT_THROW((void)apply_failures(t, blast, 1), InvalidArgument);
  FailureSpec epicenters;
  epicenters.correlated.epicenter_fraction = -0.25;
  EXPECT_THROW((void)apply_failures(t, epicenters, 1), InvalidArgument);
  FailureSpec cuts;
  cuts.targeted.link_cuts = -1;
  EXPECT_THROW((void)apply_failures(t, cuts, 1), InvalidArgument);
  FailureSpec rate;
  rate.per_class.switch_fraction["switch"] = 2.0;
  EXPECT_THROW((void)apply_failures(t, rate, 1), InvalidArgument);
}

TEST(FailureInjection, SolverHandlesExtremeCapacityRatios) {
  Graph g(4);
  g.add_edge(0, 1, 1e-3);
  g.add_edge(1, 2, 1e3);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);
  const ThroughputResult r = max_concurrent_flow(
      g, {{0, 2, 1.0}, {1, 3, 1.0}}, FlowOptions{.epsilon = 0.05});
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.lambda, 0.0);
  for (int arc = 0; arc < 2 * g.num_edges(); ++arc) {
    EXPECT_LE(r.arc_flow[static_cast<std::size_t>(arc)],
              g.edge(arc / 2).capacity * (1.0 + 1e-6));
  }
}

}  // namespace
}  // namespace topo
