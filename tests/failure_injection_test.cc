// Failure-injection tests: degraded networks, missing links, and edge-case
// server placements must degrade gracefully, never crash or wedge.
#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "graph/algorithms.h"
#include "sim/network.h"
#include "topo/random_regular.h"
#include "topo/vl2.h"
#include "util/rng.h"

namespace topo {
namespace {

// Copy of a graph with `kill` randomly chosen edges removed.
Graph degrade(const Graph& g, int kill, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<char> dead(static_cast<std::size_t>(g.num_edges()), 0);
  int killed = 0;
  while (killed < kill) {
    const std::size_t e = rng.index(static_cast<std::size_t>(g.num_edges()));
    if (!dead[e]) {
      dead[e] = 1;
      ++killed;
    }
  }
  Graph h(g.num_nodes());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!dead[static_cast<std::size_t>(e)]) {
      h.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).capacity);
    }
  }
  return h;
}

BuiltTopology with_uniform_servers(Graph graph, int per_switch) {
  BuiltTopology t;
  const int n = graph.num_nodes();
  t.graph = std::move(graph);
  t.servers.per_switch.assign(static_cast<std::size_t>(n), per_switch);
  t.node_class.assign(static_cast<std::size_t>(n), 0);
  t.class_names = {"switch"};
  return t;
}

TEST(FailureInjection, ThroughputDegradesGracefullyWithLinkLoss) {
  const Graph g = random_regular_graph(24, 6, 5);
  EvalOptions options;
  options.flow.epsilon = 0.08;
  double previous = 1e9;
  for (int kill : {0, 4, 8, 16}) {
    const Graph damaged = degrade(g, kill, 7);
    if (!is_connected(damaged)) break;  // heavier loss cases may disconnect
    const ThroughputResult r =
        evaluate_throughput(with_uniform_servers(damaged, 4), options, 3);
    ASSERT_TRUE(r.feasible);
    EXPECT_GT(r.lambda, 0.0);
    // Allow solver noise but demand a broadly monotone decline.
    EXPECT_LE(r.lambda, previous * 1.15) << "killed " << kill;
    previous = r.lambda;
  }
}

TEST(FailureInjection, DisconnectionYieldsZeroNotCrash) {
  // Cut a bridge: a path graph loses its middle edge.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);  // 1-2 missing: {0,1} vs {2,3}
  const ThroughputResult r = evaluate_throughput(
      with_uniform_servers(std::move(g), 1), EvalOptions{}, 5);
  EXPECT_FALSE(r.feasible);
  EXPECT_DOUBLE_EQ(r.lambda, 0.0);
}

TEST(FailureInjection, SwitchesWithoutServersAreTransitOnly) {
  // Servers only on half the switches: the rest still forward traffic.
  const Graph g = random_regular_graph(12, 4, 9);
  BuiltTopology t = with_uniform_servers(g, 0);
  for (NodeId n = 0; n < 6; ++n) {
    t.servers.per_switch[static_cast<std::size_t>(n)] = 4;
  }
  const ThroughputResult r = evaluate_throughput(t, EvalOptions{}, 3);
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.lambda, 0.0);
}

TEST(FailureInjection, HotspotServerPlacementHurtsThroughput) {
  // Same switches, same 40 servers, two placements: uniform (4 each) vs a
  // hotspot holding 22 (the paper's footnote 5: uneven placement across
  // identical switches bottlenecks the heavy switch).
  const Graph g = random_regular_graph(10, 4, 11);
  const BuiltTopology balanced = with_uniform_servers(g, 4);
  BuiltTopology hotspot = with_uniform_servers(g, 2);
  hotspot.servers.per_switch[0] = 22;  // 22 + 9*2 = 40 servers
  const ThroughputResult r_balanced =
      evaluate_throughput(balanced, EvalOptions{}, 3);
  const ThroughputResult r_hotspot =
      evaluate_throughput(hotspot, EvalOptions{}, 3);
  ASSERT_TRUE(r_balanced.feasible);
  ASSERT_TRUE(r_hotspot.feasible);
  EXPECT_GT(r_hotspot.lambda, 0.0);
  EXPECT_LT(r_hotspot.lambda, 0.9 * r_balanced.lambda);
}

TEST(FailureInjection, PacketSimSurvivesLinkScarcity) {
  // A barbell: heavy contention on the single middle link. Flows are
  // added explicitly so every one of them crosses the bottleneck.
  Graph g(2);
  g.add_edge(0, 1, 0.2);
  BuiltTopology t = with_uniform_servers(std::move(g), 3);
  sim::SimParams params;
  params.subflows = 2;
  params.duration_ns = 10'000'000;
  params.warmup_ns = 5'000'000;
  sim::SimNetwork net(t, params, 3);
  for (int i = 0; i < 3; ++i) net.add_flow(i, 3 + i);  // all cross-switch
  const sim::SimulationResult result = net.run();
  EXPECT_EQ(result.flows.size(), 3u);
  EXPECT_GT(result.total_drops, 0u);  // contention must be visible
  double total = 0.0;
  for (const auto& f : result.flows) {
    EXPECT_GE(f.goodput_gbps, 0.0);
    EXPECT_LE(f.goodput_gbps, 0.22);  // nobody exceeds the bottleneck rate
    total += f.goodput_gbps;
  }
  EXPECT_LE(total, 0.22);  // aggregate bounded by the middle link
  EXPECT_GT(total, 0.1);   // but the link is actually used
}

TEST(FailureInjection, RewiredVl2SurvivesExtremeTorCounts) {
  Vl2Params params;
  params.d_a = 8;
  params.d_i = 8;
  // The absolute maximum leaves each pool switch exactly one fabric port;
  // construction must still produce a connected topology.
  const int max_tors = rewired_vl2_max_tors(params);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const BuiltTopology t = rewired_vl2_topology(params, max_tors, seed);
    EXPECT_TRUE(is_connected(t.graph));
  }
}

TEST(FailureInjection, SolverHandlesExtremeCapacityRatios) {
  Graph g(4);
  g.add_edge(0, 1, 1e-3);
  g.add_edge(1, 2, 1e3);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 0, 1.0);
  const ThroughputResult r = max_concurrent_flow(
      g, {{0, 2, 1.0}, {1, 3, 1.0}}, FlowOptions{.epsilon = 0.05});
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.lambda, 0.0);
  for (int arc = 0; arc < 2 * g.num_edges(); ++arc) {
    EXPECT_LE(r.arc_flow[static_cast<std::size_t>(arc)],
              g.edge(arc / 2).capacity * (1.0 + 1e-6));
  }
}

}  // namespace
}  // namespace topo
