// Topology-search tests: cost-model hand checks, degree-preserving move
// invariants, canonical candidate identity, trajectory determinism (same
// seed -> byte-identical trace JSON; warm cache re-run -> zero misses;
// sharded runs -> the unsharded trajectory), stripe partitioning, the
// incast workload generator, bisection memoization, and the search spec's
// round-trip byte-stability and validation error paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "scenario/cache.h"
#include "scenario/spec_io.h"
#include "scenario/sweep.h"
#include "search/cost_model.h"
#include "search/driver.h"
#include "search/search_space.h"
#include "topo/random_regular.h"
#include "traffic/workload.h"
#include "util/error.h"
#include "util/rng.h"

namespace topo::search {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/topobench_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

scenario::ScenarioSpec tiny_search_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "search_test_tiny";
  spec.description = "tiny RRG search";
  spec.topology = {"random_regular", {{"n", 10}, {"ports", 5}, {"degree", 3}}};
  spec.search.enabled = true;
  spec.search.budget = 2;
  spec.search.restarts = 1;
  spec.search.population = 2;
  return spec;
}

SearchDriverOptions tiny_options() {
  SearchDriverOptions options;
  options.runs = 1;
  options.epsilon = 0.1;
  options.master_seed = 11;
  return options;
}

TEST(CostModel, HandCheckedBreakdown) {
  // Two adjacent grid slots, one unit-capacity link, 1 + 2 servers.
  BuiltTopology t;
  t.graph = Graph(2);
  t.graph.add_edge(0, 1);
  t.servers.per_switch = {1, 2};

  CostWeights weights;
  weights.port_cost = 1.0;
  weights.cable_cost = 0.1;
  weights.switch_cost = 2.0;
  const CostModel model(weights);
  const CostBreakdown breakdown = model.breakdown(t);

  EXPECT_EQ(breakdown.network_ports, 2);
  EXPECT_EQ(breakdown.server_ports, 3);
  EXPECT_DOUBLE_EQ(breakdown.port_total, 5.0);
  EXPECT_DOUBLE_EQ(breakdown.cable_length, 1.0);
  EXPECT_DOUBLE_EQ(breakdown.cable_total, 0.1);
  ASSERT_EQ(breakdown.switches_by_class.size(), 1u);
  EXPECT_EQ(breakdown.switches_by_class.at("switch"), 2);
  EXPECT_DOUBLE_EQ(breakdown.switch_total, 4.0);
  EXPECT_DOUBLE_EQ(breakdown.total, 9.1);
  EXPECT_DOUBLE_EQ(model.cost(t), breakdown.total);
}

TEST(CostModel, ClassPremiumsApplyPerClass) {
  BuiltTopology t;
  t.graph = Graph(3);
  t.servers.per_switch = {0, 0, 0};
  t.node_class = {0, 0, 1};
  t.class_names = {"small", "large"};

  CostWeights weights;
  weights.port_cost = 0.0;
  weights.cable_cost = 0.0;
  weights.switch_cost = 1.0;
  weights.class_cost = {{"large", 9.0}};
  const CostBreakdown breakdown = CostModel(weights).breakdown(t);
  EXPECT_EQ(breakdown.switches_by_class.at("small"), 2);
  EXPECT_EQ(breakdown.switches_by_class.at("large"), 1);
  // 3 chassis at base 1 plus one "large" premium of 9.
  EXPECT_DOUBLE_EQ(breakdown.switch_total, 12.0);
}

TEST(CostModel, RejectsNegativeWeights) {
  CostWeights weights;
  weights.port_cost = -1.0;
  EXPECT_THROW(CostModel{weights}, InvalidArgument);
}

TEST(SearchSpace, RewirePreservesDegreeSequenceAndServers) {
  const scenario::ScenarioSpec spec = tiny_search_spec();
  const SearchSpace space(spec.topology, {MoveKind::kRewire});
  BuiltTopology current = space.initial(5);
  const auto degree_sequence = [](const BuiltTopology& t) {
    std::vector<int> degree(static_cast<std::size_t>(t.graph.num_nodes()), 0);
    for (EdgeId e = 0; e < t.graph.num_edges(); ++e) {
      ++degree[static_cast<std::size_t>(t.graph.edge(e).u)];
      ++degree[static_cast<std::size_t>(t.graph.edge(e).v)];
    }
    return degree;  // Per-node, so even stronger than the sorted multiset.
  };
  const std::vector<int> baseline_degrees = degree_sequence(current);
  const std::vector<int> baseline_servers = current.servers.per_switch;
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    current = space.mutate(current, rng);
    EXPECT_EQ(degree_sequence(current), baseline_degrees);
    EXPECT_EQ(current.servers.per_switch, baseline_servers);
  }
}

TEST(SearchSpace, CanonicalIdentityIsPathIndependent) {
  BuiltTopology a;
  a.graph = Graph(3);
  a.graph.add_edge(0, 1);
  a.graph.add_edge(1, 2);
  a.servers.per_switch = {1, 1, 1};
  BuiltTopology b;
  b.graph = Graph(3);
  b.graph.add_edge(2, 1);  // Reversed endpoints, different insertion order.
  b.graph.add_edge(1, 0);
  b.servers.per_switch = {1, 1, 1};
  EXPECT_EQ(canonical_topology(a), canonical_topology(b));
  EXPECT_EQ(candidate_hash_hex(a), candidate_hash_hex(b));

  b.graph.add_edge(0, 2);
  EXPECT_NE(candidate_hash_hex(a), candidate_hash_hex(b));
}

TEST(SearchSpace, SameSeedSameInitialDesign) {
  const scenario::ScenarioSpec spec = tiny_search_spec();
  const SearchSpace space(spec.topology, {MoveKind::kRewire});
  EXPECT_EQ(canonical_topology(space.initial(7)),
            canonical_topology(space.initial(7)));
  EXPECT_NE(canonical_topology(space.initial(7)),
            canonical_topology(space.initial(8)));
}

TEST(SearchSpace, MoveNamesRoundTrip) {
  EXPECT_EQ(move_from_name("rewire"), MoveKind::kRewire);
  EXPECT_EQ(move_from_name("server_shift"), MoveKind::kServerShift);
  EXPECT_STREQ(move_name(MoveKind::kRewire), "rewire");
  EXPECT_STREQ(move_name(MoveKind::kServerShift), "server_shift");
  EXPECT_THROW(move_from_name("teleport"), InvalidArgument);
}

TEST(SearchDriver, TraceIsByteIdenticalAndBestBeatsBaseline) {
  const scenario::ScenarioSpec spec = tiny_search_spec();
  const SearchDriverOptions options = tiny_options();
  const SearchResult first = run_search(spec, options);
  const SearchResult second = run_search(spec, options);
  EXPECT_EQ(search_trace_json(spec, options, first),
            search_trace_json(spec, options, second));
  // The baseline is itself an evaluated candidate, so the search can never
  // report a best below it.
  EXPECT_GE(first.best.objective, first.baseline.objective);
  EXPECT_EQ(first.baseline.restart, 0);
  EXPECT_EQ(first.baseline.step, 0);
  // 1 restart: initial + budget * population evaluations.
  EXPECT_EQ(static_cast<int>(first.trace.size()),
            1 + spec.search.budget * spec.search.population);
}

TEST(SearchDriver, WarmRerunHasZeroMisses) {
  const scenario::ScenarioSpec spec = tiny_search_spec();
  SearchDriverOptions options = tiny_options();
  options.cache_dir = fresh_dir("search_warm");

  const SearchResult cold = run_search(spec, options);
  EXPECT_GT(cold.cache_misses, 0);
  const SearchResult warm = run_search(spec, options);
  EXPECT_EQ(warm.cache_misses, 0);
  // Every lookup the cold run resolved (either way) is a warm hit.
  EXPECT_EQ(warm.cache_hits, cold.cache_hits + cold.cache_misses);
  EXPECT_EQ(search_trace_json(spec, options, cold),
            search_trace_json(spec, options, warm));
  std::filesystem::remove_all(options.cache_dir);
}

TEST(SearchDriver, ShardedRunsWalkTheIdenticalTrajectory) {
  const scenario::ScenarioSpec spec = tiny_search_spec();
  SearchDriverOptions options = tiny_options();
  const SearchResult reference = run_search(spec, options);
  const std::string reference_json =
      search_trace_json(spec, tiny_options(), reference);

  options.cache_dir = fresh_dir("search_shards");
  options.shard_count = 2;
  for (const scenario::StripeMode stripe :
       {scenario::StripeMode::kRoundRobin, scenario::StripeMode::kRange}) {
    options.stripe = stripe;
    for (int shard = 0; shard < 2; ++shard) {
      options.shard_index = shard;
      const SearchResult sharded = run_search(spec, options);
      // The trace JSON takes the UNSHARDED options on purpose: the
      // artifact must not vary with who computed which cell.
      EXPECT_EQ(search_trace_json(spec, tiny_options(), sharded),
                reference_json);
    }
  }
  std::filesystem::remove_all(options.cache_dir);
}

TEST(SearchDriver, ShardingRequiresCacheDir) {
  const scenario::ScenarioSpec spec = tiny_search_spec();
  SearchDriverOptions options = tiny_options();
  options.shard_count = 2;
  EXPECT_THROW((void)run_search(spec, options), InvalidArgument);
}

TEST(StripeModes, BothPartitionsCoverEveryCellExactlyOnce) {
  for (const int cells : {1, 5, 12, 17}) {
    for (const int shards : {1, 2, 3, 5}) {
      for (int i = 0; i < cells; ++i) {
        int round_robin_owners = 0;
        int range_owners = 0;
        for (int shard = 0; shard < shards; ++shard) {
          round_robin_owners += scenario::cell_in_shard(i, shard, shards);
          range_owners += scenario::range_in_shard(i, cells, shard, shards);
        }
        EXPECT_EQ(round_robin_owners, 1) << cells << "/" << shards << "#" << i;
        EXPECT_EQ(range_owners, 1) << cells << "/" << shards << "#" << i;
      }
    }
  }
}

TEST(IncastWorkload, BurstsShareVictimAndInstant) {
  ServerMap servers;
  servers.per_switch = {2, 2, 2, 2};
  const FlowSizeCdf& cdf = flow_size_cdfs().front();
  const int fan_in = 4;
  Rng rng(42);
  const std::vector<FiniteFlow> flows = incast_flow_arrivals(
      servers, cdf, 0.5, 1.0, fan_in, 50'000'000ULL, rng);
  ASSERT_GT(flows.size(), 0u);
  ASSERT_EQ(flows.size() % static_cast<std::size_t>(fan_in), 0u);
  for (std::size_t burst = 0; burst < flows.size();
       burst += static_cast<std::size_t>(fan_in)) {
    std::set<int> sources;
    for (int i = 0; i < fan_in; ++i) {
      const FiniteFlow& flow = flows[burst + static_cast<std::size_t>(i)];
      EXPECT_EQ(flow.dst_server, flows[burst].dst_server);
      EXPECT_EQ(flow.start_ns, flows[burst].start_ns);
      EXPECT_NE(flow.src_server, flow.dst_server);
      EXPECT_GT(flow.size_bytes, 0.0);
      sources.insert(flow.src_server);
    }
    EXPECT_EQ(static_cast<int>(sources.size()), fan_in);
  }
}

TEST(IncastWorkload, SeededStreamsReproduce) {
  ServerMap servers;
  servers.per_switch = {3, 3, 3};
  const FlowSizeCdf& cdf = flow_size_cdfs().front();
  Rng rng_a(7);
  Rng rng_b(7);
  const auto a =
      incast_flow_arrivals(servers, cdf, 0.4, 1.0, 3, 20'000'000ULL, rng_a);
  const auto b =
      incast_flow_arrivals(servers, cdf, 0.4, 1.0, 3, 20'000'000ULL, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src_server, b[i].src_server);
    EXPECT_EQ(a[i].dst_server, b[i].dst_server);
    EXPECT_EQ(a[i].start_ns, b[i].start_ns);
    EXPECT_DOUBLE_EQ(a[i].size_bytes, b[i].size_bytes);
  }
}

FullThroughputSearch counting_search(
    std::map<std::pair<int, std::uint64_t>, int>* builds) {
  FullThroughputSearch search;
  search.builder = [builds](int tors, std::uint64_t seed) {
    ++(*builds)[{tors, seed}];
    return random_regular_topology(10, 5, 3, seed + static_cast<std::uint64_t>(tors));
  };
  search.min_tors = 2;
  search.max_tors = 6;
  search.threshold = 0.1;  // The tiny RRG always clears this.
  search.runs = 2;
  search.options.flow.epsilon = 0.1;
  return search;
}

TEST(BisectionMemo, EachTorsSeedPairBuildsAtMostOnce) {
  std::map<std::pair<int, std::uint64_t>, int> builds;
  const FullThroughputSearch search = counting_search(&builds);
  EXPECT_EQ(max_tors_at_full_throughput(search, 17), 6);
  ASSERT_FALSE(builds.empty());
  for (const auto& [key, count] : builds) {
    EXPECT_EQ(count, 1) << "tors " << key.first << " seed " << key.second;
  }
}

TEST(BisectionMemo, CachedProbesSkipRevaluationAcrossInvocations) {
  std::map<std::pair<int, std::uint64_t>, int> builds;
  const FullThroughputSearch search = counting_search(&builds);
  const std::string dir = fresh_dir("search_bisect");
  const scenario::ResultCache cache(dir);
  const int first =
      max_tors_at_full_throughput_cached(search, 17, "bisect-test", &cache);
  EXPECT_EQ(first, 6);
  EXPECT_FALSE(builds.empty());

  builds.clear();
  const int second =
      max_tors_at_full_throughput_cached(search, 17, "bisect-test", &cache);
  EXPECT_EQ(second, first);
  EXPECT_TRUE(builds.empty()) << "warm bisection re-evaluated a probe";
  std::filesystem::remove_all(dir);
}

TEST(SearchSpecIo, RoundTripIsByteStableAndCoversSearchBlock) {
  scenario::ScenarioSpec spec = tiny_search_spec();
  spec.search.temperature = 0.5;
  spec.search.moves = {"rewire", "server_shift"};
  spec.search.class_cost = {{"large", 3.0}, {"small", 1.0}};
  const std::string json = scenario::spec_to_json(spec);
  EXPECT_NE(json.find("\"search\""), std::string::npos);
  const scenario::ScenarioSpec reparsed = scenario::spec_from_json(json);
  EXPECT_TRUE(reparsed.search.enabled);
  EXPECT_EQ(reparsed.search.moves, spec.search.moves);
  EXPECT_EQ(scenario::spec_to_json(reparsed), json);
}

TEST(SearchSpecIo, LegacySpecsSerializeWithoutSearchKey) {
  scenario::ScenarioSpec spec = tiny_search_spec();
  spec.search = scenario::SearchSpec{};
  spec.axes = {{"link_failure_fraction", {0.0, 0.2}, {}}};
  EXPECT_EQ(scenario::spec_to_json(spec).find("\"search\""),
            std::string::npos);
}

TEST(SearchSpecIo, ValidationRejectsBadSearchConfigs) {
  {
    scenario::ScenarioSpec spec = tiny_search_spec();
    spec.axes = {{"link_failure_fraction", {0.0, 0.2}, {}}};
    EXPECT_THROW(scenario::validate_spec(spec), InvalidArgument);
  }
  {
    scenario::ScenarioSpec spec = tiny_search_spec();
    spec.search.objective = "prettiness";
    EXPECT_THROW(scenario::validate_spec(spec), InvalidArgument);
  }
  {
    scenario::ScenarioSpec spec = tiny_search_spec();
    spec.search.moves = {"teleport"};
    EXPECT_THROW(scenario::validate_spec(spec), InvalidArgument);
  }
  {
    scenario::ScenarioSpec spec = tiny_search_spec();
    spec.search.moves.clear();
    EXPECT_THROW(scenario::validate_spec(spec), InvalidArgument);
  }
  {
    scenario::ScenarioSpec spec = tiny_search_spec();
    spec.search.port_cost = -0.5;
    EXPECT_THROW(scenario::validate_spec(spec), InvalidArgument);
  }
}

TEST(SearchSpecIo, ValidationRejectsBadIncastConfigs) {
  scenario::ScenarioSpec spec = tiny_search_spec();
  spec.search = scenario::SearchSpec{};
  spec.packet_sim.enabled = true;
  spec.packet_sim.fct.enabled = true;
  spec.packet_sim.fct.pattern = "broadcast";
  EXPECT_THROW(scenario::validate_spec(spec), InvalidArgument);
  spec.packet_sim.fct.pattern = "incast";
  spec.packet_sim.fct.fan_in = 1;
  EXPECT_THROW(scenario::validate_spec(spec), InvalidArgument);
  spec.packet_sim.fct.fan_in = 4;
  scenario::validate_spec(spec);  // Now well-formed.
}

}  // namespace
}  // namespace topo::search
