// util/json unit tests: shortest-round-trip number emission (every double
// must parse back to the exact same bits — required for cache checksum
// stability and for 1e-9 golden stability of spec-driven runs) and the
// strict parser shared by spec_io, the cache, and the golden layer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/json.h"

namespace topo {
namespace {

TEST(JsonNumber, RoundTripsExactly) {
  const std::vector<double> values = {
      0.0,
      1.0,
      -1.0,
      0.1,
      -0.1,
      1.0 / 3.0,
      2.0 / 3.0,
      1.0 / 7.0,
      0.9346999999999999,  // a 17-digit survivor
      1e-9,
      1e300,
      -1e300,
      5e-324,                                   // smallest denormal
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::epsilon(),
      123456789.123456789,
      3.141592653589793,
  };
  for (const double v : values) {
    const std::string text = json_number(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(JsonNumber, PrefersShortRepresentations) {
  // 17-significant-digit formatting would print 0.1 as
  // 0.10000000000000001; shortest-round-trip must not.
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(0.05), "0.05");
  EXPECT_EQ(json_number(-2.5), "-2.5");
  EXPECT_EQ(json_number(32.0), "32");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(JsonParse, ScalarsAndNesting) {
  const JsonValue root = parse_json(
      R"({"a": 1.5, "b": "text", "c": [1, 2, 3], "d": {"e": true, "f": null},
          "g": false, "h": -2e-3})");
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("a").number, 1.5);
  EXPECT_EQ(root.at("b").text, "text");
  ASSERT_EQ(root.at("c").items.size(), 3u);
  EXPECT_EQ(root.at("c").items[1].number, 2.0);
  EXPECT_TRUE(root.at("d").at("e").boolean);
  EXPECT_EQ(root.at("d").at("f").kind, JsonValue::Kind::kNull);
  EXPECT_FALSE(root.at("g").boolean);
  EXPECT_EQ(root.at("h").number, -2e-3);
  // Member order is source order.
  EXPECT_EQ(root.members.front().first, "a");
  EXPECT_EQ(root.members.back().first, "h");
}

TEST(JsonParse, StringEscapes) {
  const JsonValue value = parse_json(R"(["a\"b", "c\\d", "e\nf", "	"])");
  ASSERT_EQ(value.items.size(), 4u);
  EXPECT_EQ(value.items[0].text, "a\"b");
  EXPECT_EQ(value.items[1].text, "c\\d");
  EXPECT_EQ(value.items[2].text, "e\nf");
  EXPECT_EQ(value.items[3].text, "\t");
}

TEST(JsonParse, EmittedStringsRoundTrip) {
  const std::string original = "quote\" backslash\\ control\x01 plain";
  const JsonValue parsed = parse_json(json_string(original));
  EXPECT_EQ(parsed.text, original);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_json(""), InvalidArgument);
  EXPECT_THROW((void)parse_json("{"), InvalidArgument);
  EXPECT_THROW((void)parse_json("{\"a\": 1,}"), InvalidArgument);
  EXPECT_THROW((void)parse_json("[1, 2"), InvalidArgument);
  EXPECT_THROW((void)parse_json("\"unterminated"), InvalidArgument);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), InvalidArgument);
  EXPECT_THROW((void)parse_json("1 2"), InvalidArgument);  // trailing
  EXPECT_THROW((void)parse_json("nul"), InvalidArgument);
  EXPECT_THROW((void)parse_json("1.2.3"), InvalidArgument);
  EXPECT_THROW((void)parse_json("\"bad \\x escape\""), InvalidArgument);
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8) {
  // Standard serializers ASCII-escape non-ASCII text (ensure_ascii);
  // those documents must parse, decoding to UTF-8 bytes.
  EXPECT_EQ(parse_json(R"("caf\u00e9")").text, "caf\xc3\xa9");
  EXPECT_EQ(parse_json(R"("\u2192")").text, "\xe2\x86\x92");  // arrow
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").text, "\xf0\x9f\x98\x80");
  // Raw UTF-8 bytes pass through untouched too.
  EXPECT_EQ(parse_json("\"caf\xc3\xa9\"").text, "caf\xc3\xa9");
  // Unpaired or inverted surrogates are malformed.
  EXPECT_THROW((void)parse_json(R"("\ud83d")"), InvalidArgument);
  EXPECT_THROW((void)parse_json(R"("\ud83dA")"), InvalidArgument);
  EXPECT_THROW((void)parse_json(R"("\ude00")"), InvalidArgument);
}

TEST(JsonParse, RejectsNonJsonNumberForms) {
  // strtod would take all of these; the JSON grammar does not, and a
  // spec we accepted must stay readable by every other JSON tool.
  EXPECT_THROW((void)parse_json("+2"), InvalidArgument);
  EXPECT_THROW((void)parse_json(".5"), InvalidArgument);
  EXPECT_THROW((void)parse_json("5."), InvalidArgument);
  EXPECT_THROW((void)parse_json("01"), InvalidArgument);
  EXPECT_THROW((void)parse_json("1e"), InvalidArgument);
  EXPECT_THROW((void)parse_json("1e+"), InvalidArgument);
  EXPECT_THROW((void)parse_json("-"), InvalidArgument);
  EXPECT_THROW((void)parse_json("0x10"), InvalidArgument);
  // ...while every legal shape still parses.
  EXPECT_EQ(parse_json("0").number, 0.0);
  EXPECT_EQ(parse_json("-0.5").number, -0.5);
  EXPECT_EQ(parse_json("1e+3").number, 1000.0);
  EXPECT_EQ(parse_json("2E-2").number, 0.02);
}

TEST(JsonParse, RejectsDuplicateKeys) {
  EXPECT_THROW((void)parse_json(R"({"a": 1, "a": 2})"), InvalidArgument);
}

TEST(JsonParse, AtNamesTheMissingKey) {
  const JsonValue root = parse_json(R"({"present": 1})");
  EXPECT_EQ(root.find("absent"), nullptr);
  try {
    (void)root.at("absent");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("absent"), std::string::npos);
  }
}

TEST(JsonParse, NumbersParseWithStrtodExactness) {
  // The parser must preserve exact bits for everything json_number emits
  // (cache reload correctness depends on it).
  for (const double v : {0.9346999999999999, 1.0 / 3.0, 5e-324, 1e300}) {
    const JsonValue parsed = parse_json(json_number(v));
    ASSERT_TRUE(parsed.is_number());
    EXPECT_EQ(parsed.number, v);
  }
}

}  // namespace
}  // namespace topo
