// End-to-end transport tests on small simulated networks.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/network.h"
#include "topo/random_regular.h"
#include "traffic/workload.h"

namespace topo::sim {
namespace {

// Two switches, one unit link; one server on each.
BuiltTopology dumbbell(double capacity) {
  BuiltTopology t;
  t.graph = Graph(2);
  t.graph.add_edge(0, 1, capacity);
  t.servers.per_switch = {1, 1};
  t.node_class = {0, 0};
  t.class_names = {"switch"};
  return t;
}

SimParams fast_params() {
  SimParams p;
  p.duration_ns = 30'000'000;
  p.warmup_ns = 15'000'000;
  p.start_jitter_ns = 100'000;
  return p;
}

TEST(Transport, SingleFlowSaturatesLink) {
  const BuiltTopology t = dumbbell(1.0);
  SimParams p = fast_params();
  p.subflows = 1;
  SimNetwork net(t, p, 42);
  net.add_flow(0, 1);
  const SimulationResult r = net.run();
  ASSERT_EQ(r.flows.size(), 1u);
  // A single TCP over a clean link should reach near line rate.
  EXPECT_GT(r.flows[0].goodput_gbps, 0.85);
  EXPECT_LE(r.flows[0].goodput_gbps, 1.01);
}

TEST(Transport, TwoFlowsShareBottleneckFairly) {
  // Both servers on switch 0 send to servers on switch 1 over one link.
  BuiltTopology t;
  t.graph = Graph(2);
  t.graph.add_edge(0, 1, 1.0);
  t.servers.per_switch = {2, 2};
  t.node_class = {0, 0};
  t.class_names = {"switch"};
  SimParams p = fast_params();
  p.subflows = 1;
  SimNetwork net(t, p, 7);
  net.add_flow(0, 2);
  net.add_flow(1, 3);
  const SimulationResult r = net.run();
  ASSERT_EQ(r.flows.size(), 2u);
  const double total =
      r.flows[0].goodput_gbps + r.flows[1].goodput_gbps;
  EXPECT_GT(total, 0.8);
  EXPECT_LE(total, 1.02);
  // Rough fairness: neither flow starves.
  EXPECT_GT(r.flows[0].goodput_gbps, 0.25);
  EXPECT_GT(r.flows[1].goodput_gbps, 0.25);
}

TEST(Transport, MultipathAggregatesParallelCapacity) {
  // Two parallel half-rate links; one subflow ~0.5, two subflows ~1.0
  // (server NIC caps at 1.0).
  BuiltTopology t;
  t.graph = Graph(2);
  t.graph.add_edge(0, 1, 0.5);
  t.graph.add_edge(0, 1, 0.5);
  t.servers.per_switch = {1, 1};
  t.node_class = {0, 0};
  t.class_names = {"switch"};

  SimParams p = fast_params();
  p.subflows = 1;
  SimNetwork single(t, p, 3);
  single.add_flow(0, 1);
  const double one_path = single.run().flows[0].goodput_gbps;

  p.subflows = 8;  // 8 draws over 2 parallel links cover both w.h.p.
  SimNetwork multi(t, p, 3);
  multi.add_flow(0, 1);
  const double multi_path = multi.run().flows[0].goodput_gbps;

  EXPECT_LT(one_path, 0.55);
  EXPECT_GT(multi_path, 0.75);
}

TEST(Transport, EwtcpCouplingLessAggressiveThanUncoupled) {
  // One shared unit link; an 8-subflow flow against a 1-subflow flow.
  // With EWTCP coupling the 8-subflow flow should not grab much more
  // than half; uncoupled it grabs far more.
  BuiltTopology t;
  t.graph = Graph(2);
  t.graph.add_edge(0, 1, 1.0);
  t.servers.per_switch = {2, 2};
  t.node_class = {0, 0};
  t.class_names = {"switch"};

  auto share_of_multiflow = [&](bool coupled) {
    SimParams p = fast_params();
    p.subflows = 8;
    p.ewtcp_coupling = coupled;
    SimNetwork net(t, p, 11);
    net.add_flow(0, 2);  // 8 subflows
    // Note: both flows get p.subflows subflows; emulate the single-TCP
    // competitor by a separate 1-subflow network run is not possible in
    // one network, so compare aggregate fairness via retransmits instead:
    net.add_flow(1, 3);
    const SimulationResult r = net.run();
    return r.flows[0].goodput_gbps /
           (r.flows[0].goodput_gbps + r.flows[1].goodput_gbps);
  };
  const double coupled_share = share_of_multiflow(true);
  // Symmetric flows: both coupled -> share near 0.5.
  EXPECT_NEAR(coupled_share, 0.5, 0.15);
}

TEST(Transport, PermutationWorkloadOnRrg) {
  const BuiltTopology t = random_regular_topology(10, 6, 4, 21);
  SimParams p = fast_params();
  p.subflows = 4;
  SimNetwork net(t, p, 9);
  net.add_permutation_workload();
  const SimulationResult r = net.run();
  EXPECT_EQ(r.flows.size(), 20u);  // 10 switches x 2 servers
  EXPECT_GT(r.mean_normalized, 0.3);
  EXPECT_LE(r.mean_normalized, 1.05);
  EXPECT_GE(r.min_normalized, 0.0);
}

TEST(Transport, ResultsAreDeterministic) {
  const BuiltTopology t = dumbbell(1.0);
  SimParams p = fast_params();
  p.subflows = 2;
  SimNetwork a(t, p, 5);
  a.add_flow(0, 1);
  SimNetwork b(t, p, 5);
  b.add_flow(0, 1);
  EXPECT_DOUBLE_EQ(a.run().flows[0].goodput_gbps,
                   b.run().flows[0].goodput_gbps);
}

TEST(Transport, RejectsBadFlowEndpoints) {
  const BuiltTopology t = dumbbell(1.0);
  SimNetwork net(t, fast_params(), 1);
  EXPECT_THROW(net.add_flow(0, 0), InvalidArgument);
  EXPECT_THROW(net.add_flow(0, 9), InvalidArgument);
}

TEST(Transport, HigherCapacityFabricRaisesGoodput) {
  // Oversubscribed vs non-oversubscribed fabric for the same workload.
  auto run_with_capacity = [&](double capacity) {
    BuiltTopology t;
    t.graph = Graph(2);
    t.graph.add_edge(0, 1, capacity);
    t.servers.per_switch = {4, 4};
    t.node_class = {0, 0};
    t.class_names = {"switch"};
    SimParams p = fast_params();
    p.subflows = 2;
    SimNetwork net(t, p, 13);
    for (int i = 0; i < 4; ++i) net.add_flow(i, 4 + i);
    return net.run().mean_normalized;
  };
  const double oversubscribed = run_with_capacity(1.0);   // 4 flows on 1G
  const double provisioned = run_with_capacity(4.0);      // full bisection
  EXPECT_LT(oversubscribed, 0.5);
  EXPECT_GT(provisioned, 2.0 * oversubscribed);
}

TEST(FiniteFlows, SingleFlowCompletesWithSaneFct) {
  const BuiltTopology t = dumbbell(1.0);
  SimParams p = fast_params();
  p.subflows = 1;
  p.warmup_ns = 0;
  p.start_jitter_ns = 0;
  SimNetwork net(t, p, 42);
  net.add_finite_flow(0, 1, 150'000.0, 0);  // 100 full packets
  const SimulationResult r = net.run();
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_TRUE(r.flows[0].finite);
  EXPECT_TRUE(r.flows[0].completed);
  EXPECT_DOUBLE_EQ(r.flows[0].size_bytes, 150'000.0);
  EXPECT_GE(r.flows[0].delivered_packets, 100);
  // 100 x 1500 B over a 1 Gbit/s link: >= 1.2 ms of serialization alone,
  // and a clean link finishes far inside the 30 ms horizon.
  EXPECT_GT(r.flows[0].fct_ns, 1'000'000);
  EXPECT_LT(r.flows[0].fct_ns, p.duration_ns);
}

TEST(FiniteFlows, RejectsMultipleSubflows) {
  const BuiltTopology t = dumbbell(1.0);
  SimParams p = fast_params();
  p.subflows = 8;
  SimNetwork net(t, p, 1);
  EXPECT_THROW(net.add_finite_flow(0, 1, 1000.0, 0), InvalidArgument);
}

TEST(FiniteFlows, PoissonWorkloadIsDeterministic) {
  const BuiltTopology t = random_regular_topology(10, 6, 4, 21);
  SimParams p;
  p.subflows = 1;
  p.duration_ns = 10'000'000;
  p.warmup_ns = 0;
  p.start_jitter_ns = 0;
  const FlowSizeCdf* cdf = find_flow_size_cdf("fb_hadoop");
  ASSERT_NE(cdf, nullptr);
  auto run_once = [&] {
    Rng arrivals_rng(0xabc);
    std::vector<FiniteFlow> arrivals = poisson_flow_arrivals(
        t.servers, *cdf, 0.4, p.server_rate_gbps, p.duration_ns,
        arrivals_rng);
    SimNetwork net(t, p, 7);
    net.queue_finite_workload(std::move(arrivals));
    return net.run();
  };
  const SimulationResult a = run_once();
  const SimulationResult b = run_once();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  ASSERT_GT(a.flows.size(), 0u);
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_TRUE(a.flows[i].finite);
    EXPECT_EQ(a.flows[i].completed, b.flows[i].completed);
    EXPECT_EQ(a.flows[i].fct_ns, b.flows[i].fct_ns);
    EXPECT_EQ(a.flows[i].delivered_packets, b.flows[i].delivered_packets);
  }
}

TEST(FiniteFlows, MedianFctGrowsWithLoad) {
  // Open-loop Poisson workload on a small RRG: heavier offered load means
  // more queueing and sharing, so the median completion time rises.
  const BuiltTopology t = random_regular_topology(10, 6, 4, 21);
  SimParams p;
  p.subflows = 1;
  p.duration_ns = 40'000'000;
  p.warmup_ns = 0;
  p.start_jitter_ns = 0;
  const FlowSizeCdf* cdf = find_flow_size_cdf("fb_hadoop");
  ASSERT_NE(cdf, nullptr);
  auto median_fct = [&](double load) {
    Rng arrivals_rng(0xfc7);  // same arrival seed: only load differs
    std::vector<FiniteFlow> arrivals = poisson_flow_arrivals(
        t.servers, *cdf, load, p.server_rate_gbps, p.duration_ns,
        arrivals_rng);
    SimNetwork net(t, p, 7);
    net.queue_finite_workload(std::move(arrivals));
    const SimulationResult r = net.run();
    std::vector<SimTime> fcts;
    for (const FlowStats& f : r.flows) {
      if (f.completed) fcts.push_back(f.fct_ns);
    }
    EXPECT_GT(fcts.size(), 20u) << "load " << load;
    std::sort(fcts.begin(), fcts.end());
    return fcts[fcts.size() / 2];
  };
  const SimTime p50_light = median_fct(0.2);
  const SimTime p50_heavy = median_fct(0.9);
  EXPECT_GT(p50_heavy, p50_light);
}

}  // namespace
}  // namespace topo::sim
