// Cross-validation of the Garg-Konemann FPTAS against the exact LP on
// instances small enough for dense simplex, plus the certificate
// invariant lambda <= dual_bound on larger random instances.
#include <gtest/gtest.h>

#include <vector>

#include "flow/concurrent_flow.h"
#include "lp/mcf_lp.h"
#include "topo/random_regular.h"
#include "util/rng.h"

namespace topo {
namespace {

std::vector<Commodity> random_commodities(const Graph& g, int count,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Commodity> commodities;
  while (static_cast<int>(commodities.size()) < count) {
    const int src = rng.uniform_int(0, g.num_nodes() - 1);
    const int dst = rng.uniform_int(0, g.num_nodes() - 1);
    if (src == dst) continue;
    commodities.push_back({src, dst, rng.uniform(0.5, 2.0)});
  }
  return commodities;
}

TEST(CrossValidation, FptasWithinEpsilonOfExactLp) {
  FlowOptions options;
  options.epsilon = 0.05;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    const Graph g = random_regular_graph(10, 3, seed);
    const auto commodities = random_commodities(g, 6, seed + 100);
    const McfLpResult exact = solve_concurrent_flow_lp(g, commodities);
    ASSERT_EQ(exact.status, LpStatus::kOptimal) << "seed " << seed;
    const ThroughputResult fptas = max_concurrent_flow(g, commodities, options);
    ASSERT_TRUE(fptas.feasible) << "seed " << seed;
    // The FPTAS reports a certified feasible lambda, so it can never
    // exceed the LP optimum; with a certified gap of epsilon it must also
    // land within (1 - epsilon) of it.
    EXPECT_LE(fptas.lambda, exact.lambda + 1e-7) << "seed " << seed;
    EXPECT_GE(fptas.lambda, (1.0 - options.epsilon) * exact.lambda - 1e-7)
        << "seed " << seed;
    // The dual certificate brackets the true optimum from above.
    EXPECT_GE(fptas.dual_bound, exact.lambda - 1e-7) << "seed " << seed;
  }
}

TEST(CrossValidation, LambdaNeverExceedsDualBound) {
  FlowOptions options;
  options.epsilon = 0.1;
  for (std::uint64_t seed : {3u, 7u, 13u}) {
    const Graph g = random_regular_graph(24, 4, seed);
    const auto commodities = random_commodities(g, 24, seed + 9);
    const ThroughputResult r = max_concurrent_flow(g, commodities, options);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.lambda, r.dual_bound + 1e-9) << "seed " << seed;
    EXPECT_GE(r.gap, 0.0);
  }
}

TEST(CrossValidation, RestrictedRoutingStaysBelowUnrestricted) {
  // Shortest-path-restricted routing optimizes over a subset of paths, so
  // its certified throughput cannot beat unrestricted routing by more
  // than solver tolerance.
  const Graph g = random_regular_graph(16, 4, 91);
  const auto commodities = random_commodities(g, 12, 17);
  FlowOptions options;
  options.epsilon = 0.05;
  const ThroughputResult free_routing =
      max_concurrent_flow(g, commodities, options);
  options.restrict_to_shortest_paths = true;
  const ThroughputResult ecmp = max_concurrent_flow(g, commodities, options);
  ASSERT_TRUE(free_routing.feasible);
  ASSERT_TRUE(ecmp.feasible);
  EXPECT_LE(ecmp.lambda, free_routing.dual_bound + 1e-9);
}

}  // namespace
}  // namespace topo
