// Tests for the Graph container and unweighted graph algorithms.
#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/graph.h"
#include "util/error.h"

namespace topo {
namespace {

Graph ring(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n, 1.0);
  return g;
}

Graph complete(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.add_edge(i, j, 1.0);
  }
  return g;
}

TEST(Graph, BasicConstruction) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(e).u, 0);
  EXPECT_EQ(g.edge(e).v, 1);
  EXPECT_DOUBLE_EQ(g.edge(e).capacity, 2.5);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), InvalidArgument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), InvalidArgument);
  EXPECT_THROW(g.add_edge(-1, 0), InvalidArgument);
}

TEST(Graph, RejectsNonPositiveCapacity) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), InvalidArgument);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), InvalidArgument);
}

TEST(Graph, ParallelEdgesAllowedAndCounted) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_multiplicity(0, 1), 2);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(Graph, AdjacencyIsSymmetric) {
  Graph g(3);
  g.add_edge(0, 2);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  ASSERT_EQ(g.neighbors(2).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].to, 2);
  EXPECT_EQ(g.neighbors(2)[0].to, 0);
  EXPECT_TRUE(g.neighbors(1).empty());
}

TEST(Graph, CapacityAccounting) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(g.capacity_sum(), 5.0);
  EXPECT_DOUBLE_EQ(g.total_directed_capacity(), 10.0);
}

TEST(Bfs, LineGraphDistances) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Bfs, UnreachableIsMinusOne) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], -1);
}

TEST(Bfs, AllPairsMatchesPerSource) {
  const Graph g = ring(6);
  const auto all = all_pairs_distances(g);
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(all[static_cast<std::size_t>(u)], bfs_distances(g, u));
  }
}

TEST(Aspl, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(average_shortest_path_length(complete(5)), 1.0);
}

TEST(Aspl, RingOfSix) {
  // Distances from any node: 1,1,2,2,3 -> mean 9/5.
  EXPECT_DOUBLE_EQ(average_shortest_path_length(ring(6)), 9.0 / 5.0);
}

TEST(Aspl, StarGraph) {
  Graph g(5);
  for (int leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  // Center: 4 at dist 1. Leaves: 1 + 3*2 = 7 each. Total = 4 + 4*7 = 32,
  // pairs = 20.
  EXPECT_DOUBLE_EQ(average_shortest_path_length(g), 32.0 / 20.0);
}

TEST(Aspl, ThrowsOnDisconnected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW((void)average_shortest_path_length(g), InvalidArgument);
}

TEST(Diameter, RingOfSixIsThree) { EXPECT_EQ(diameter(ring(6)), 3); }

TEST(Diameter, CompleteIsOne) { EXPECT_EQ(diameter(complete(4)), 1); }

TEST(Components, CountsAndLabels) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(num_components(g), 3);
  const auto labels = component_labels(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[4], labels[0]);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(ring(4)));
}

TEST(Components, SingleNodeIsConnected) {
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(MeanPairDistance, UnweightedPairs) {
  const Graph g = ring(6);
  const double d = mean_pair_distance(g, {{0, 1}, {0, 3}});
  EXPECT_DOUBLE_EQ(d, (1.0 + 3.0) / 2.0);
}

TEST(MeanPairDistance, WeightedPairs) {
  const Graph g = ring(6);
  const std::vector<double> w{3.0, 1.0};
  const double d = mean_pair_distance(g, {{0, 1}, {0, 3}}, &w);
  EXPECT_DOUBLE_EQ(d, (3.0 * 1.0 + 1.0 * 3.0) / 4.0);
}

TEST(MeanPairDistance, SameEndpointsContributeZero) {
  const Graph g = ring(4);
  const double d = mean_pair_distance(g, {{2, 2}, {0, 1}});
  EXPECT_DOUBLE_EQ(d, 0.5);
}

TEST(MeanPairDistance, ThrowsWhenUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW((void)mean_pair_distance(g, {{0, 2}}), InvalidArgument);
}

}  // namespace
}  // namespace topo
