// Tests for the CSR arc graph and the pooled Dijkstra/BFS workspaces.
#include <gtest/gtest.h>

#include <limits>
#include <queue>

#include "graph/algorithms.h"
#include "graph/shortest_path.h"
#include "topo/random_regular.h"
#include "util/rng.h"

namespace topo {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ArcGraph, CsrMatchesAdjacency) {
  Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 5.0);
  const ArcGraph arcs(g);
  ASSERT_EQ(arcs.num_nodes, 4);
  ASSERT_EQ(arcs.num_arcs, 8);
  // Arc 2e is u->v, 2e+1 is v->u; partner arc is a^1.
  EXPECT_EQ(arcs.head[0], 1);
  EXPECT_EQ(arcs.head[1], 0);
  EXPECT_EQ(arcs.tail(0), 0);
  EXPECT_EQ(arcs.tail(1), 1);
  EXPECT_DOUBLE_EQ(arcs.capacity[6], 5.0);
  EXPECT_DOUBLE_EQ(arcs.capacity[7], 5.0);
  // CSR slices cover each node's out-arcs in increasing arc id.
  ASSERT_EQ(arcs.first_out.size(), 5u);
  EXPECT_EQ(arcs.first_out[4], 8);
  std::vector<std::vector<int>> expected(4);
  expected[0] = {0, 4};
  expected[1] = {1, 2};
  expected[2] = {3, 5, 6};
  expected[3] = {7};
  for (NodeId n = 0; n < 4; ++n) {
    std::vector<int> got(
        arcs.out_arc.begin() + arcs.first_out[static_cast<std::size_t>(n)],
        arcs.out_arc.begin() + arcs.first_out[static_cast<std::size_t>(n) + 1]);
    EXPECT_EQ(got, expected[static_cast<std::size_t>(n)]) << "node " << n;
  }
}

// Reference Dijkstra: the lazy binary-heap formulation the workspace
// replaced; ties pop in increasing node id via pair comparison.
std::vector<double> reference_dijkstra(const ArcGraph& arcs,
                                       const std::vector<double>& length,
                                       NodeId src,
                                       std::vector<int>* parent_out = nullptr) {
  std::vector<double> dist(static_cast<std::size_t>(arcs.num_nodes), kInf);
  std::vector<int> parent(static_cast<std::size_t>(arcs.num_nodes), -1);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (int i = arcs.first_out[static_cast<std::size_t>(u)];
         i < arcs.first_out[static_cast<std::size_t>(u) + 1]; ++i) {
      const int a = arcs.out_arc[static_cast<std::size_t>(i)];
      const NodeId v = arcs.head[static_cast<std::size_t>(a)];
      const double nd = d + length[static_cast<std::size_t>(a)];
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        parent[static_cast<std::size_t>(v)] = a;
        heap.emplace(nd, v);
      }
    }
  }
  if (parent_out != nullptr) *parent_out = parent;
  return dist;
}

TEST(DijkstraWorkspace, MatchesReferenceIncludingParentTree) {
  const Graph g = random_regular_graph(60, 6, 11);
  const ArcGraph arcs(g);
  Rng rng(5);
  std::vector<double> length(static_cast<std::size_t>(arcs.num_arcs));
  // Mix of distinct and deliberately tied lengths to exercise tie-breaks.
  for (double& l : length) l = rng.chance(0.3) ? 1.0 : rng.uniform(0.5, 2.0);
  DijkstraWorkspace ws;
  for (NodeId src : {0, 7, 59}) {
    std::vector<int> ref_parent;
    const auto ref = reference_dijkstra(arcs, length, src, &ref_parent);
    ws.run(arcs, length, src);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_DOUBLE_EQ(ws.dist(v), ref[static_cast<std::size_t>(v)]);
      EXPECT_EQ(ws.parent_arc(v), ref_parent[static_cast<std::size_t>(v)])
          << "parent mismatch at " << v << " from " << src;
    }
  }
}

TEST(DijkstraWorkspace, ReuseAcrossGraphsOfDifferentSize) {
  DijkstraWorkspace ws;
  const Graph big = random_regular_graph(80, 4, 3);
  const ArcGraph big_arcs(big);
  std::vector<double> big_len(static_cast<std::size_t>(big_arcs.num_arcs), 1.0);
  ws.run(big_arcs, big_len, 0);
  EXPECT_EQ(ws.dist(0), 0.0);

  Graph small(3);
  small.add_edge(0, 1, 1.0);
  const ArcGraph small_arcs(small);
  std::vector<double> small_len(2, 4.0);
  ws.run(small_arcs, small_len, 0);
  EXPECT_DOUBLE_EQ(ws.dist(1), 4.0);
  EXPECT_EQ(ws.dist(2), kInf);  // stale big-graph state must not leak
  EXPECT_EQ(ws.parent_arc(2), -1);
}

TEST(DijkstraWorkspace, ExtractPathAndScaleDistances) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);  // arcs 0, 1
  g.add_edge(1, 2, 1.0);  // arcs 2, 3
  g.add_edge(2, 3, 1.0);  // arcs 4, 5
  const ArcGraph arcs(g);
  std::vector<double> length = {1.0, 1.0, 2.0, 2.0, 3.0, 3.0};
  DijkstraWorkspace ws;
  ws.run(arcs, length, 0);
  std::vector<int> path;
  ASSERT_TRUE(ws.extract_path(arcs, 0, 3, path));
  EXPECT_EQ(path, (std::vector<int>{4, 2, 0}));  // dst -> src order
  EXPECT_DOUBLE_EQ(ws.dist(3), 6.0);
  ws.scale_distances(0.5);
  EXPECT_DOUBLE_EQ(ws.dist(3), 3.0);
  EXPECT_DOUBLE_EQ(ws.dist(0), 0.0);
}

TEST(DijkstraWorkspace, DagRestrictionLimitsArcs) {
  // Square with a diagonal shortcut of high length: unrestricted Dijkstra
  // prefers 0-1-3; restricting to hop-shortest arcs from 0 still allows
  // it, but forbids the 3->... backward arcs.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(2, 3, 1.0);
  const ArcGraph arcs(g);
  std::vector<double> length(8, 1.0);
  const std::vector<int> hops = bfs_distances(g, 0);
  DijkstraWorkspace ws;
  ws.run(arcs, length, 0, &hops);
  EXPECT_DOUBLE_EQ(ws.dist(3), 2.0);
  // Restrict from node 1's perspective instead: node 0 is at hop 1 from 1,
  // so arcs into 0 from 2 (hop 1 -> hop 1) are not relaxed.
  const std::vector<int> hops1 = bfs_distances(g, 1);
  ws.run(arcs, length, 1, &hops1);
  EXPECT_DOUBLE_EQ(ws.dist(2), 2.0);  // via 0 or 3, both hop-increasing
}

TEST(BfsWorkspace, MatchesBfsDistancesAndReuses) {
  const Graph g = random_regular_graph(50, 4, 23);
  BfsWorkspace ws;
  for (NodeId src : {0, 13, 49}) {
    const auto expected = bfs_distances(g, src);
    ws.run(g, src);
    std::vector<int> exported;
    ws.export_distances(exported);
    EXPECT_EQ(exported, expected);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(ws.dist(v), expected[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(BfsWorkspace, RunCustomFiltersArcs) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  BfsWorkspace ws;
  // Forbid entering node 2: nodes 2 and 3 must stay unreached.
  ws.run_custom(4, 0, [&](NodeId u, auto&& emit) {
    for (const Adjacency& a : g.neighbors(u)) {
      if (a.to != 2) emit(a.to);
    }
  });
  EXPECT_EQ(ws.dist(1), 1);
  EXPECT_EQ(ws.dist(2), -1);
  EXPECT_EQ(ws.dist(3), -1);
}

}  // namespace
}  // namespace topo
