// Tests for traffic matrix generators and switch-level aggregation.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "traffic/traffic.h"
#include "util/error.h"

namespace topo {
namespace {

ServerMap uniform_servers(int switches, int per_switch) {
  ServerMap m;
  m.per_switch.assign(static_cast<std::size_t>(switches), per_switch);
  return m;
}

TEST(ServerMapBasics, TotalsAndHomes) {
  ServerMap m;
  m.per_switch = {2, 0, 3};
  EXPECT_EQ(m.total(), 5);
  EXPECT_EQ(m.num_switches(), 3);
  EXPECT_EQ(m.server_home(), (std::vector<NodeId>{0, 0, 2, 2, 2}));
}

TEST(Permutation, EveryServerSendsAndReceivesOnce) {
  const ServerMap m = uniform_servers(8, 5);
  Rng rng(4);
  const TrafficMatrix tm = random_permutation_traffic(m, rng);
  EXPECT_EQ(tm.flows.size(), 40u);
  std::set<int> sources;
  std::set<int> destinations;
  for (const ServerFlow& f : tm.flows) {
    EXPECT_NE(f.src_server, f.dst_server);
    EXPECT_DOUBLE_EQ(f.demand, 1.0);
    EXPECT_TRUE(sources.insert(f.src_server).second);
    EXPECT_TRUE(destinations.insert(f.dst_server).second);
  }
  EXPECT_EQ(sources.size(), 40u);
  EXPECT_EQ(destinations.size(), 40u);
}

TEST(Permutation, NoFixedPointsAcrossSeeds) {
  const ServerMap m = uniform_servers(4, 3);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const TrafficMatrix tm = random_permutation_traffic(m, rng);
    for (const ServerFlow& f : tm.flows) EXPECT_NE(f.src_server, f.dst_server);
  }
}

TEST(Permutation, RequiresTwoServers) {
  ServerMap m;
  m.per_switch = {1};
  Rng rng(0);
  EXPECT_THROW((void)random_permutation_traffic(m, rng), InvalidArgument);
}

TEST(Permutation, DeterministicGivenRngSeed) {
  const ServerMap m = uniform_servers(6, 4);
  Rng a(3);
  Rng b(3);
  const TrafficMatrix ta = random_permutation_traffic(m, a);
  const TrafficMatrix tb = random_permutation_traffic(m, b);
  ASSERT_EQ(ta.flows.size(), tb.flows.size());
  for (std::size_t i = 0; i < ta.flows.size(); ++i) {
    EXPECT_EQ(ta.flows[i].dst_server, tb.flows[i].dst_server);
  }
}

TEST(AllToAll, CountsAndDemands) {
  const ServerMap m = uniform_servers(3, 2);
  const TrafficMatrix tm = all_to_all_traffic(m);
  EXPECT_EQ(tm.flows.size(), 6u * 5u);
  EXPECT_DOUBLE_EQ(tm.total_demand(), 30.0);
}

TEST(AllToAll, CommoditiesAggregateServerProducts) {
  ServerMap m;
  m.per_switch = {2, 3, 0};
  const auto commodities = all_to_all_commodities(m);
  // Ordered pairs among switches 0 and 1 only.
  ASSERT_EQ(commodities.size(), 2u);
  std::map<std::pair<NodeId, NodeId>, double> demand;
  for (const Commodity& c : commodities) demand[{c.src, c.dst}] = c.demand;
  EXPECT_DOUBLE_EQ((demand[{0, 1}]), 6.0);
  EXPECT_DOUBLE_EQ((demand[{1, 0}]), 6.0);
}

TEST(AllToAll, MatchesAggregatedServerLevel) {
  const ServerMap m = uniform_servers(4, 3);
  const auto direct = all_to_all_commodities(m);
  const auto via_servers =
      aggregate_to_commodities(all_to_all_traffic(m), m);
  std::map<std::pair<NodeId, NodeId>, double> a;
  std::map<std::pair<NodeId, NodeId>, double> b;
  for (const Commodity& c : direct) a[{c.src, c.dst}] = c.demand;
  for (const Commodity& c : via_servers) b[{c.src, c.dst}] = c.demand;
  EXPECT_EQ(a, b);
}

TEST(Chunky, FullChunkyIsTorLevelPermutation) {
  const ServerMap m = uniform_servers(6, 4);
  Rng rng(8);
  const TrafficMatrix tm = chunky_traffic(m, 1.0, rng);
  // Each ToR's servers all send to one other ToR: 6 ToRs * 4 servers * 4
  // destination servers (split demand) = 96 flows of demand 1/4 each.
  EXPECT_EQ(tm.flows.size(), 96u);
  EXPECT_NEAR(tm.total_demand(), 24.0, 1e-9);
  const auto commodities = aggregate_to_commodities(tm, m);
  // ToR-level permutation: exactly one outgoing commodity per ToR.
  std::map<NodeId, int> out_count;
  for (const Commodity& c : commodities) {
    ++out_count[c.src];
    EXPECT_NEAR(c.demand, 4.0, 1e-9);  // all 4 servers' demand to one ToR
  }
  EXPECT_EQ(out_count.size(), 6u);
  for (const auto& [tor, count] : out_count) EXPECT_EQ(count, 1);
}

TEST(Chunky, ZeroFractionIsServerPermutation) {
  const ServerMap m = uniform_servers(6, 4);
  Rng rng(8);
  const TrafficMatrix tm = chunky_traffic(m, 0.0, rng);
  EXPECT_EQ(tm.flows.size(), 24u);
  for (const ServerFlow& f : tm.flows) EXPECT_DOUBLE_EQ(f.demand, 1.0);
}

TEST(Chunky, PartialFractionMixesBoth) {
  const ServerMap m = uniform_servers(10, 4);
  Rng rng(8);
  const TrafficMatrix tm = chunky_traffic(m, 0.5, rng);
  // 5 chunky ToRs contribute 5*4*4 split flows; 20 remaining servers
  // contribute 20 unit flows.
  EXPECT_NEAR(tm.total_demand(), 40.0, 1e-9);
  int unit_flows = 0;
  int split_flows = 0;
  for (const ServerFlow& f : tm.flows) {
    if (f.demand == 1.0) ++unit_flows;
    else ++split_flows;
  }
  EXPECT_EQ(unit_flows, 20);
  EXPECT_EQ(split_flows, 80);
}

TEST(Chunky, RejectsBadFraction) {
  const ServerMap m = uniform_servers(4, 2);
  Rng rng(0);
  EXPECT_THROW((void)chunky_traffic(m, -0.1, rng), InvalidArgument);
  EXPECT_THROW((void)chunky_traffic(m, 1.5, rng), InvalidArgument);
}

TEST(Hotspot, ElephantsGetMultiplier) {
  const ServerMap m = uniform_servers(5, 4);
  Rng rng(3);
  const TrafficMatrix tm = hotspot_traffic(m, 0.25, 8.0, rng);
  EXPECT_EQ(tm.flows.size(), 20u);
  int elephants = 0;
  for (const ServerFlow& f : tm.flows) {
    EXPECT_NE(f.src_server, f.dst_server);
    if (f.demand == 8.0) ++elephants;
    else EXPECT_DOUBLE_EQ(f.demand, 1.0);
  }
  EXPECT_EQ(elephants, 5);  // 25% of 20 servers
}

TEST(Hotspot, ZeroFractionIsPlainPermutation) {
  const ServerMap m = uniform_servers(4, 3);
  Rng rng(3);
  const TrafficMatrix tm = hotspot_traffic(m, 0.0, 10.0, rng);
  for (const ServerFlow& f : tm.flows) EXPECT_DOUBLE_EQ(f.demand, 1.0);
}

TEST(Hotspot, RejectsBadArguments) {
  const ServerMap m = uniform_servers(4, 3);
  Rng rng(0);
  EXPECT_THROW((void)hotspot_traffic(m, 1.5, 2.0, rng), InvalidArgument);
  EXPECT_THROW((void)hotspot_traffic(m, 0.5, 0.5, rng), InvalidArgument);
}

TEST(Stride, ShiftsByStride) {
  const ServerMap m = uniform_servers(3, 2);
  const TrafficMatrix tm = stride_traffic(m, 2);
  ASSERT_EQ(tm.flows.size(), 6u);
  for (const ServerFlow& f : tm.flows) {
    EXPECT_EQ(f.dst_server, (f.src_server + 2) % 6);
  }
}

TEST(Stride, NegativeStrideWraps) {
  const ServerMap m = uniform_servers(2, 2);
  const TrafficMatrix tm = stride_traffic(m, -1);
  for (const ServerFlow& f : tm.flows) {
    EXPECT_EQ(f.dst_server, (f.src_server + 3) % 4);
  }
}

TEST(Stride, RejectsSelfLoopStride) {
  const ServerMap m = uniform_servers(2, 2);
  EXPECT_THROW((void)stride_traffic(m, 4), InvalidArgument);
  EXPECT_THROW((void)stride_traffic(m, 0), InvalidArgument);
}

TEST(Aggregate, DropsSameSwitchFlows) {
  ServerMap m;
  m.per_switch = {2, 1};
  TrafficMatrix tm;
  tm.flows = {{0, 1, 1.0},   // both on switch 0: dropped
              {0, 2, 2.0},   // 0 -> 1
              {2, 1, 3.0}};  // 1 -> 0
  const auto commodities = aggregate_to_commodities(tm, m);
  ASSERT_EQ(commodities.size(), 2u);
  std::map<std::pair<NodeId, NodeId>, double> demand;
  for (const Commodity& c : commodities) demand[{c.src, c.dst}] = c.demand;
  EXPECT_DOUBLE_EQ((demand[{0, 1}]), 2.0);
  EXPECT_DOUBLE_EQ((demand[{1, 0}]), 3.0);
}

TEST(Aggregate, SumsParallelFlows) {
  ServerMap m;
  m.per_switch = {1, 2};
  TrafficMatrix tm;
  tm.flows = {{0, 1, 1.0}, {0, 2, 1.0}};
  const auto commodities = aggregate_to_commodities(tm, m);
  ASSERT_EQ(commodities.size(), 1u);
  EXPECT_DOUBLE_EQ(commodities[0].demand, 2.0);
}

TEST(Aggregate, RejectsBadServerIds) {
  ServerMap m;
  m.per_switch = {1, 1};
  TrafficMatrix tm;
  tm.flows = {{0, 5, 1.0}};
  EXPECT_THROW((void)aggregate_to_commodities(tm, m), InvalidArgument);
}

}  // namespace
}  // namespace topo
