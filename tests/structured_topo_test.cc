// Tests for fat-tree, VL2 (standard and rewired), hypercube, and torus.
#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "topo/fat_tree.h"
#include "topo/structured.h"
#include "topo/vl2.h"
#include "util/error.h"

namespace topo {
namespace {

TEST(FatTree, K4Structure) {
  const BuiltTopology t = fat_tree_topology(4);
  // k=4: 8 edge + 8 agg + 4 core switches, 16 servers.
  EXPECT_EQ(t.graph.num_nodes(), 20);
  EXPECT_EQ(t.servers.total(), 16);
  // Every switch has degree k = 4 except... in a fat tree all switches have
  // k ports; edge switches use k/2 for servers, so graph degree k/2.
  for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(t.graph.degree(n), 2);    // edge
  for (NodeId n = 8; n < 16; ++n) EXPECT_EQ(t.graph.degree(n), 4);   // agg
  for (NodeId n = 16; n < 20; ++n) EXPECT_EQ(t.graph.degree(n), 4);  // core
  EXPECT_TRUE(is_connected(t.graph));
}

TEST(FatTree, ServerCountScalesAsCube) {
  EXPECT_EQ(fat_tree_topology(4).servers.total(), 4 * 4 * 4 / 4);
  EXPECT_EQ(fat_tree_topology(8).servers.total(), 8 * 8 * 8 / 4);
}

TEST(FatTree, ClassesAreLabelled) {
  const BuiltTopology t = fat_tree_topology(4);
  EXPECT_EQ(t.class_of(0), static_cast<int>(FatTreeClass::kEdge));
  EXPECT_EQ(t.class_of(8), static_cast<int>(FatTreeClass::kAggregation));
  EXPECT_EQ(t.class_of(16), static_cast<int>(FatTreeClass::kCore));
  EXPECT_EQ(t.class_names.size(), 3u);
}

TEST(FatTree, RejectsOddK) { EXPECT_THROW((void)fat_tree_topology(3), InvalidArgument); }

TEST(Vl2, NominalStructure) {
  Vl2Params p;
  p.d_a = 8;
  p.d_i = 6;
  const BuiltTopology t = vl2_topology(p);
  const int tors = vl2_nominal_tors(p);  // 8*6/4 = 12
  EXPECT_EQ(tors, 12);
  EXPECT_EQ(t.graph.num_nodes(), 12 + 6 + 4);  // ToRs + aggs + cores
  // Every ToR: 2 uplinks; servers 20.
  for (NodeId n = 0; n < tors; ++n) {
    EXPECT_EQ(t.graph.degree(n), 2);
    EXPECT_EQ(t.servers.per_switch[static_cast<std::size_t>(n)], 20);
  }
  // Aggs: d_a/2 ToR links + d_a/2 core links = d_a.
  for (NodeId n = tors; n < tors + 6; ++n) EXPECT_EQ(t.graph.degree(n), 8);
  // Cores: one link to each agg = d_i.
  for (NodeId n = tors + 6; n < t.graph.num_nodes(); ++n) {
    EXPECT_EQ(t.graph.degree(n), 6);
  }
  EXPECT_TRUE(is_connected(t.graph));
}

TEST(Vl2, UplinkSpeedApplied) {
  Vl2Params p;
  p.d_a = 4;
  p.d_i = 4;
  p.uplink_speed = 10.0;
  const BuiltTopology t = vl2_topology(p);
  for (const Edge& e : t.graph.edges()) EXPECT_DOUBLE_EQ(e.capacity, 10.0);
}

TEST(Vl2, TorUplinksGoToDistinctAggs) {
  Vl2Params p;
  p.d_a = 8;
  p.d_i = 6;
  const BuiltTopology t = vl2_topology(p);
  const int tors = vl2_nominal_tors(p);
  for (NodeId n = 0; n < tors; ++n) {
    const auto& nb = t.graph.neighbors(n);
    ASSERT_EQ(nb.size(), 2u);
    EXPECT_NE(nb[0].to, nb[1].to);
  }
}

TEST(Vl2, RejectsBadParameters) {
  Vl2Params p;
  p.d_a = 7;  // odd
  EXPECT_THROW((void)vl2_topology(p), InvalidArgument);
  p.d_a = 6;
  p.d_i = 5;  // d_a*d_i not divisible by 4
  EXPECT_THROW((void)vl2_topology(p), InvalidArgument);
}

TEST(RewiredVl2, EquipmentConserved) {
  Vl2Params p;
  p.d_a = 8;
  p.d_i = 8;
  const int tors = vl2_nominal_tors(p);  // 16
  const BuiltTopology t = rewired_vl2_topology(p, tors, 5);
  // Pool: 8 aggs with 8 ports, 4 cores with 8 ports. Every pool switch's
  // degree must not exceed its port count, and ToRs keep 2 uplinks.
  for (NodeId n = 0; n < tors; ++n) EXPECT_EQ(t.graph.degree(n), 2);
  for (NodeId n = tors; n < t.graph.num_nodes(); ++n) {
    EXPECT_LE(t.graph.degree(n), 8);
    EXPECT_GE(t.graph.degree(n), 1);
  }
  EXPECT_TRUE(is_connected(t.graph));
}

TEST(RewiredVl2, SupportsMoreTorsThanNominal) {
  Vl2Params p;
  p.d_a = 8;
  p.d_i = 8;
  const int nominal = vl2_nominal_tors(p);
  const int max_tors = rewired_vl2_max_tors(p);
  EXPECT_GT(max_tors, nominal);
  const BuiltTopology t = rewired_vl2_topology(p, max_tors, 1);
  EXPECT_EQ(t.graph.num_nodes(), max_tors + 8 + 4);
}

TEST(RewiredVl2, RejectsBeyondMax) {
  Vl2Params p;
  p.d_a = 8;
  p.d_i = 8;
  EXPECT_THROW((void)rewired_vl2_topology(p, rewired_vl2_max_tors(p) + 1, 1),
               InvalidArgument);
}

TEST(RewiredVl2, AllLinksAtUplinkSpeed) {
  Vl2Params p;
  p.d_a = 8;
  p.d_i = 8;
  const BuiltTopology t = rewired_vl2_topology(p, 10, 2);
  for (const Edge& e : t.graph.edges()) EXPECT_DOUBLE_EQ(e.capacity, 10.0);
}

TEST(RewiredVl2, Deterministic) {
  Vl2Params p;
  p.d_a = 8;
  p.d_i = 8;
  const BuiltTopology a = rewired_vl2_topology(p, 12, 9);
  const BuiltTopology b = rewired_vl2_topology(p, 12, 9);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (EdgeId e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge(e).u, b.graph.edge(e).u);
    EXPECT_EQ(a.graph.edge(e).v, b.graph.edge(e).v);
  }
}

TEST(Hypercube, StructureAndAspl) {
  const BuiltTopology t = hypercube_topology(3, 1);
  EXPECT_EQ(t.graph.num_nodes(), 8);
  for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(t.graph.degree(n), 3);
  EXPECT_EQ(diameter(t.graph), 3);
  // ASPL of the d-cube: d * 2^(d-1) / (2^d - 1) = 12/7.
  EXPECT_NEAR(average_shortest_path_length(t.graph), 12.0 / 7.0, 1e-12);
}

TEST(Hypercube, RejectsBadDimension) {
  EXPECT_THROW((void)hypercube_topology(0, 1), InvalidArgument);
  EXPECT_THROW((void)hypercube_topology(21, 1), InvalidArgument);
}

TEST(Torus, StructureAndDegrees) {
  const BuiltTopology t = torus2d_topology(4, 5, 2);
  EXPECT_EQ(t.graph.num_nodes(), 20);
  for (NodeId n = 0; n < 20; ++n) EXPECT_EQ(t.graph.degree(n), 4);
  EXPECT_EQ(t.servers.total(), 40);
  EXPECT_TRUE(is_connected(t.graph));
}

TEST(Torus, DiameterMatchesManhattanWrap) {
  const BuiltTopology t = torus2d_topology(5, 5, 0);
  EXPECT_EQ(diameter(t.graph), 4);  // floor(5/2) + floor(5/2)
}

TEST(Torus, RejectsTooSmall) {
  EXPECT_THROW((void)torus2d_topology(2, 5, 0), InvalidArgument);
}

}  // namespace
}  // namespace topo
