// Tests for the core evaluation / experiment-runner layer.
#include <gtest/gtest.h>

#include "core/evaluate.h"
#include "core/experiment.h"
#include "flow/bottleneck.h"
#include "topo/het_random.h"
#include "topo/random_regular.h"
#include "topo/vl2.h"

namespace topo {
namespace {

EvalOptions quick_eval() {
  EvalOptions o;
  o.flow.epsilon = 0.08;
  return o;
}

TEST(Evaluate, PermutationOnRrgHasPositiveThroughput) {
  const BuiltTopology t = random_regular_topology(16, 8, 5, 2);
  const ThroughputResult r = evaluate_throughput(t, quick_eval(), 7);
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.lambda, 0.1);
  EXPECT_LT(r.lambda, 5.0);
}

TEST(Evaluate, AllToAllUsesAggregatedCommodities) {
  const BuiltTopology t = random_regular_topology(8, 6, 4, 2);
  EvalOptions o = quick_eval();
  o.traffic = TrafficKind::kAllToAll;
  const ThroughputResult r = evaluate_throughput(t, o, 7);
  EXPECT_TRUE(r.feasible);
  // Each of 16 servers offers 1 unit of egress split over 15 destinations;
  // the 1 same-switch destination (of the 15) never enters the network.
  EXPECT_NEAR(r.total_demand, 16.0 * 14.0 / 15.0, 1e-9);
}

TEST(Evaluate, ChunkyFractionRespected) {
  const BuiltTopology t = random_regular_topology(10, 8, 4, 2);
  EvalOptions o = quick_eval();
  o.traffic = TrafficKind::kChunky;
  o.chunky_fraction = 1.0;
  const ThroughputResult r = evaluate_throughput(t, o, 3);
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.lambda, 0.0);
}

TEST(Evaluate, DeterministicForSameSeed) {
  const BuiltTopology t = random_regular_topology(12, 8, 5, 4);
  const ThroughputResult a = evaluate_throughput(t, quick_eval(), 11);
  const ThroughputResult b = evaluate_throughput(t, quick_eval(), 11);
  EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
}

TEST(Evaluate, DifferentTrafficSeedsDiffer) {
  const BuiltTopology t = random_regular_topology(12, 8, 5, 4);
  const ThroughputResult a = evaluate_throughput(t, quick_eval(), 1);
  const ThroughputResult b = evaluate_throughput(t, quick_eval(), 2);
  EXPECT_NE(a.lambda, b.lambda);
}

TEST(Experiment, AggregatesOverRuns) {
  const TopologyBuilder builder = [](std::uint64_t seed) {
    return random_regular_topology(14, 8, 5, seed);
  };
  const ExperimentStats stats = run_experiment(builder, quick_eval(), 4, 99);
  EXPECT_EQ(stats.lambda.count, 4u);
  EXPECT_GT(stats.lambda.mean, 0.0);
  EXPECT_EQ(stats.infeasible_runs, 0);
  EXPECT_GE(stats.lambda.max, stats.lambda.min);
}

TEST(Experiment, DeterministicForMasterSeed) {
  const TopologyBuilder builder = [](std::uint64_t seed) {
    return random_regular_topology(14, 8, 5, seed);
  };
  const ExperimentStats a = run_experiment(builder, quick_eval(), 3, 5);
  const ExperimentStats b = run_experiment(builder, quick_eval(), 3, 5);
  EXPECT_DOUBLE_EQ(a.lambda.mean, b.lambda.mean);
  EXPECT_DOUBLE_EQ(a.utilization.mean, b.utilization.mean);
}

TEST(Experiment, RunToRunVarianceIsModest) {
  // The paper reports ~1% standard deviations; at our small test scale we
  // allow more, but variance should still be far below the mean.
  const TopologyBuilder builder = [](std::uint64_t seed) {
    return random_regular_topology(20, 10, 6, seed);
  };
  const ExperimentStats stats = run_experiment(builder, quick_eval(), 6, 17);
  EXPECT_LT(stats.lambda.stdev, 0.15 * stats.lambda.mean);
}

TEST(Experiment, VL2NominalIsNearFullThroughput) {
  // VL2 at its nominal size is non-oversubscribed by construction: the
  // solver's certified lower bound should be close to 1.
  Vl2Params params;
  params.d_a = 8;
  params.d_i = 8;
  const TopologyBuilder builder = [&](std::uint64_t) {
    return vl2_topology(params);
  };
  EvalOptions o = quick_eval();
  o.flow.epsilon = 0.05;
  const ExperimentStats stats = run_experiment(builder, o, 3, 3);
  EXPECT_GE(stats.lambda.min, 0.93);
  EXPECT_LE(stats.lambda.max, 1.02);
}

TEST(FullThroughputSearch, FindsCapacityStep) {
  // Builder: a dumbbell whose capacity supports at most 6 "ToRs" at full
  // throughput (each ToR = 1 server on each side, crossing demand).
  FullThroughputSearch search;
  search.builder = [](int tors, std::uint64_t) {
    BuiltTopology t;
    t.graph = Graph(2);
    t.graph.add_edge(0, 1, 6.0);
    t.servers.per_switch = {tors, tors};
    t.node_class = {0, 0};
    t.class_names = {"switch"};
    return t;
  };
  search.min_tors = 1;
  search.max_tors = 40;
  search.threshold = 0.93;
  search.runs = 2;
  search.options.flow.epsilon = 0.05;
  // Permutation over 2*tors servers: about half the flows cross the
  // dumbbell in each direction => full throughput while tors <~ 6.
  const int found = max_tors_at_full_throughput(search, 77);
  EXPECT_GE(found, 5);
  EXPECT_LE(found, 13);
}

TEST(FullThroughputSearch, ReturnsBelowMinWhenImpossible) {
  FullThroughputSearch search;
  search.builder = [](int tors, std::uint64_t) {
    BuiltTopology t;
    t.graph = Graph(2);
    t.graph.add_edge(0, 1, 0.01);
    t.servers.per_switch = {tors, tors};
    t.node_class = {0, 0};
    t.class_names = {"switch"};
    return t;
  };
  search.min_tors = 2;
  search.max_tors = 10;
  search.runs = 1;
  // Chunky traffic always crosses ToRs (a server permutation over two
  // 2-server switches can land entirely intra-switch and trivially pass).
  search.options.traffic = TrafficKind::kChunky;
  search.options.chunky_fraction = 1.0;
  EXPECT_EQ(max_tors_at_full_throughput(search, 1), 1);
}

TEST(FullThroughputSearch, Monotone) {
  // Larger max range cannot reduce the found value.
  FullThroughputSearch search;
  search.builder = [](int tors, std::uint64_t seed) {
    return rewired_vl2_topology({.d_a = 8, .d_i = 8}, tors, seed);
  };
  search.min_tors = 4;
  search.max_tors = 20;
  search.runs = 1;
  search.threshold = 0.9;
  const int small_range = max_tors_at_full_throughput(search, 5);
  search.max_tors = rewired_vl2_max_tors({.d_a = 8, .d_i = 8});
  const int large_range = max_tors_at_full_throughput(search, 5);
  EXPECT_GE(large_range, small_range);
}

TEST(Bottleneck, ClassUtilizationAggregates) {
  TwoTypeSpec spec;
  spec.num_large = 4;
  spec.num_small = 8;
  spec.large_ports = 12;
  spec.small_ports = 6;
  spec.servers_per_large = 4;
  spec.servers_per_small = 2;
  const BuiltTopology t = build_two_type(spec, 3);
  const ThroughputResult r = evaluate_throughput(t, quick_eval(), 5);
  ASSERT_TRUE(r.feasible);
  const auto classes = utilization_by_class(t, r);
  ASSERT_FALSE(classes.empty());
  double total_links = 0;
  for (const auto& c : classes) {
    EXPECT_GE(c.mean_utilization, 0.0);
    EXPECT_LE(c.mean_utilization, 1.0 + 1e-9);
    EXPECT_LE(c.max_utilization, 1.0 + 1e-9);
    EXPECT_GE(c.class_b, c.class_a);
    total_links += c.num_links;
  }
  EXPECT_EQ(static_cast<int>(total_links), t.graph.num_edges());
  EXPECT_EQ(class_pair_label(classes.front(), t.class_names).find("large"), 0u);
}

}  // namespace
}  // namespace topo
