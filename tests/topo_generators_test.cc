// Tests for RRG, clustered, heterogeneous, and power-law generators.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/algorithms.h"
#include "topo/clustered_random.h"
#include "topo/het_random.h"
#include "topo/power_law.h"
#include "topo/random_regular.h"
#include "util/error.h"

namespace topo {
namespace {

TEST(RandomRegular, DegreesAndConnectivity) {
  const Graph g = random_regular_graph(30, 5, 17);
  for (NodeId n = 0; n < 30; ++n) EXPECT_EQ(g.degree(n), 5);
  EXPECT_TRUE(is_connected(g));
}

TEST(RandomRegular, RejectsOddProduct) {
  EXPECT_THROW((void)random_regular_graph(5, 3, 0), InvalidArgument);
}

TEST(RandomRegular, RejectsDegreeAtLeastN) {
  EXPECT_THROW((void)random_regular_graph(4, 4, 0), InvalidArgument);
}

TEST(RandomRegular, ZeroDegreeIsEmpty) {
  const Graph g = random_regular_graph(5, 0, 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(RandomRegular, TopologyAttachesServers) {
  const BuiltTopology t = random_regular_topology(10, 12, 8, 3);
  EXPECT_EQ(t.graph.num_nodes(), 10);
  EXPECT_EQ(t.servers.total(), 10 * 4);
  for (int s : t.servers.per_switch) EXPECT_EQ(s, 4);
}

TEST(RandomRegular, TopologyRejectsServersBeyondPorts) {
  EXPECT_THROW((void)random_regular_topology(10, 5, 8, 3), InvalidArgument);
}

class RrgSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(RrgSweep, RegularSimpleConnected) {
  const auto [n, r, seed] = GetParam();
  if ((n * r) % 2 != 0 || r >= n) GTEST_SKIP();
  const Graph g = random_regular_graph(n, r, seed);
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), r);
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RrgSweep,
                         ::testing::Combine(::testing::Values(10, 40, 120),
                                            ::testing::Values(3, 10, 24),
                                            ::testing::Values(5ULL, 99ULL)));

TEST(Clustered, ExactCrossLinkCount) {
  ClusterSpec spec;
  spec.degrees_a.assign(10, 6);
  spec.degrees_b.assign(20, 4);
  spec.cross_links = 12;
  const ClusteredGraph built = clustered_random_graph(spec, 5);
  EXPECT_EQ(built.actual_cross_links, 12);
  int cross = 0;
  for (const Edge& e : built.graph.edges()) {
    const bool a_side_u = e.u < 10;
    const bool a_side_v = e.v < 10;
    if (a_side_u != a_side_v) ++cross;
  }
  EXPECT_EQ(cross, 12);
}

TEST(Clustered, DegreesPreserved) {
  ClusterSpec spec;
  spec.degrees_a.assign(8, 5);
  spec.degrees_b.assign(12, 3);
  spec.cross_links = 10;
  const ClusteredGraph built = clustered_random_graph(spec, 9);
  for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(built.graph.degree(n), 5);
  for (NodeId n = 8; n < 20; ++n) EXPECT_EQ(built.graph.degree(n), 3);
}

TEST(Clustered, ParityAdjustsCrossByOne) {
  ClusterSpec spec;
  spec.degrees_a.assign(4, 3);  // sum 12
  spec.degrees_b.assign(4, 3);
  spec.cross_links = 3;         // 12-3 odd -> adjusted to 4
  const ClusteredGraph built = clustered_random_graph(spec, 1);
  EXPECT_EQ(built.actual_cross_links, 4);
}

TEST(Clustered, ConnectedWhenRequested) {
  ClusterSpec spec;
  spec.degrees_a.assign(15, 4);
  spec.degrees_b.assign(15, 4);
  spec.cross_links = 6;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    EXPECT_TRUE(is_connected(clustered_random_graph(spec, seed).graph));
  }
}

TEST(Clustered, ZeroCrossLeavesTwoIslands) {
  ClusterSpec spec;
  spec.degrees_a.assign(6, 3);
  spec.degrees_b.assign(6, 3);
  spec.cross_links = 0;
  spec.ensure_connected = false;
  const ClusteredGraph built = clustered_random_graph(spec, 2);
  EXPECT_EQ(built.actual_cross_links, 0);
  EXPECT_EQ(num_components(built.graph), 2);
}

TEST(Clustered, CapacityApplied) {
  ClusterSpec spec;
  spec.degrees_a.assign(4, 2);
  spec.degrees_b.assign(4, 2);
  spec.cross_links = 4;
  spec.capacity = 2.5;
  const ClusteredGraph built = clustered_random_graph(spec, 3);
  for (const Edge& e : built.graph.edges()) EXPECT_DOUBLE_EQ(e.capacity, 2.5);
}

TEST(Clustered, RejectsExcessCross) {
  ClusterSpec spec;
  spec.degrees_a.assign(2, 2);  // only 4 stubs on side A
  spec.degrees_b.assign(10, 4);
  spec.cross_links = 10;
  EXPECT_THROW((void)clustered_random_graph(spec, 1), InvalidArgument);
}

TEST(Clustered, ExpectedCrossMatchesConfigurationModel) {
  ClusterSpec spec;
  spec.degrees_a.assign(10, 6);  // 60 stubs
  spec.degrees_b.assign(20, 3);  // 60 stubs
  EXPECT_DOUBLE_EQ(expected_cross_links_for(spec), 60.0 * 60.0 / 119.0);
}

TEST(TwoType, StructureAndClasses) {
  TwoTypeSpec spec;
  spec.num_large = 5;
  spec.num_small = 10;
  spec.large_ports = 12;
  spec.small_ports = 6;
  spec.servers_per_large = 4;
  spec.servers_per_small = 2;
  const BuiltTopology t = build_two_type(spec, 11);
  EXPECT_EQ(t.graph.num_nodes(), 15);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(t.graph.degree(n), 12 - 4);
    EXPECT_EQ(t.class_of(n), static_cast<int>(TwoTypeClass::kLarge));
    EXPECT_EQ(t.servers.per_switch[static_cast<std::size_t>(n)], 4);
  }
  for (NodeId n = 5; n < 15; ++n) {
    EXPECT_EQ(t.graph.degree(n), 6 - 2);
    EXPECT_EQ(t.class_of(n), static_cast<int>(TwoTypeClass::kSmall));
    EXPECT_EQ(t.servers.per_switch[static_cast<std::size_t>(n)], 2);
  }
  EXPECT_TRUE(is_connected(t.graph));
}

TEST(TwoType, HighSpeedOverlayAddsCapacityLinks) {
  TwoTypeSpec spec;
  spec.num_large = 6;
  spec.num_small = 6;
  spec.large_ports = 10;
  spec.small_ports = 6;
  spec.servers_per_large = 2;
  spec.servers_per_small = 2;
  spec.hs_links_per_large = 3;
  spec.hs_speed = 10.0;
  const BuiltTopology t = build_two_type(spec, 21);
  int hs_edges = 0;
  for (const Edge& e : t.graph.edges()) {
    if (e.capacity == 10.0) {
      ++hs_edges;
      EXPECT_LT(e.u, 6);  // overlay stays among large switches
      EXPECT_LT(e.v, 6);
    }
  }
  EXPECT_EQ(hs_edges, 6 * 3 / 2);
}

TEST(TwoType, HighSpeedOverlayRequiresEvenTotal) {
  TwoTypeSpec spec;
  spec.num_large = 5;
  spec.num_small = 5;
  spec.large_ports = 10;
  spec.small_ports = 6;
  spec.hs_links_per_large = 3;  // 5*3 odd
  EXPECT_THROW((void)build_two_type(spec, 0), InvalidArgument);
}

TEST(TwoType, ServerPlacementRatioProportionalIsOne) {
  TwoTypeSpec spec;
  spec.num_large = 20;
  spec.num_small = 40;
  spec.large_ports = 30;
  spec.small_ports = 10;
  // Proportional: servers split in ratio of port counts.
  spec = with_server_split(spec, 300, 1.0);
  EXPECT_NEAR(server_placement_ratio(spec), 1.0, 0.1);
}

TEST(TwoType, WithServerSplitPreservesTotalApproximately) {
  TwoTypeSpec spec;
  spec.num_large = 20;
  spec.num_small = 40;
  spec.large_ports = 30;
  spec.small_ports = 15;
  for (double ratio : {0.5, 1.0, 1.5, 2.0}) {
    const TwoTypeSpec split = with_server_split(spec, 480, ratio);
    const int total = split.num_large * split.servers_per_large +
                      split.num_small * split.servers_per_small;
    EXPECT_NEAR(total, 480, 40) << "ratio " << ratio;
  }
}

TEST(TwoType, CrossFractionControlsCut) {
  TwoTypeSpec spec;
  spec.num_large = 10;
  spec.num_small = 20;
  spec.large_ports = 24;
  spec.small_ports = 12;
  spec.servers_per_large = 8;
  spec.servers_per_small = 4;
  const double expected = two_type_expected_cross(spec);

  auto count_cross = [&](double fraction) {
    spec.cross_fraction = fraction;
    const BuiltTopology t = build_two_type(spec, 31);
    int cross = 0;
    for (const Edge& e : t.graph.edges()) {
      if ((e.u < 10) != (e.v < 10)) ++cross;
    }
    return cross;
  };
  EXPECT_NEAR(count_cross(1.0), expected, 1.0);
  EXPECT_NEAR(count_cross(0.5), 0.5 * expected, 1.0);
  EXPECT_NEAR(count_cross(1.5), 1.5 * expected, 1.0);
}

TEST(PowerLaw, PortsHitTargetMean) {
  const auto ports = power_law_ports(200, 8.0, 77);
  const double mean = std::accumulate(ports.begin(), ports.end(), 0.0) / 200.0;
  EXPECT_NEAR(mean, 8.0, 1.5);
  for (int p : ports) EXPECT_GE(p, 3);
}

TEST(PowerLaw, PortsAreHeavyTailed) {
  const auto ports = power_law_ports(400, 8.0, 13);
  const int max_ports = *std::max_element(ports.begin(), ports.end());
  const int min_ports = *std::min_element(ports.begin(), ports.end());
  EXPECT_GE(max_ports, 2 * min_ports);  // genuine spread
}

TEST(PowerLaw, BetaZeroIsUniform) {
  const std::vector<int> ports{20, 10, 10, 10};
  const auto servers = beta_proportional_servers(ports, 0.0, 8);
  EXPECT_EQ(std::accumulate(servers.begin(), servers.end(), 0), 8);
  EXPECT_EQ(servers, (std::vector<int>{2, 2, 2, 2}));
}

TEST(PowerLaw, BetaOneIsProportional) {
  const std::vector<int> ports{20, 10, 10};
  const auto servers = beta_proportional_servers(ports, 1.0, 8);
  EXPECT_EQ(std::accumulate(servers.begin(), servers.end(), 0), 8);
  EXPECT_EQ(servers[0], 4);
}

TEST(PowerLaw, ServersRespectPortCaps) {
  const std::vector<int> ports{4, 4, 30};
  const auto servers = beta_proportional_servers(ports, 3.0, 20);
  EXPECT_EQ(std::accumulate(servers.begin(), servers.end(), 0), 20);
  for (std::size_t i = 0; i < ports.size(); ++i) {
    EXPECT_LE(servers[i], ports[i] - 1);
  }
}

TEST(PowerLaw, ImpossibleTotalThrows) {
  EXPECT_THROW((void)beta_proportional_servers({3, 3}, 1.0, 10),
               ConstructionFailure);
}

TEST(PowerLaw, PoolTopologyDegrees) {
  std::vector<int> ports{8, 8, 6, 6, 6, 6};
  const std::vector<int> servers{3, 3, 2, 2, 2, 2};
  const int total_servers = 14;
  fix_parity_for_servers(ports, total_servers);
  const BuiltTopology t = build_pool_topology(ports, servers, 3);
  for (std::size_t i = 0; i < ports.size(); ++i) {
    EXPECT_EQ(t.graph.degree(static_cast<NodeId>(i)),
              ports[i] - servers[i]);
  }
  EXPECT_TRUE(is_connected(t.graph));
}

TEST(PowerLaw, FixParityMakesPoolFeasible) {
  std::vector<int> ports{5, 5, 4};  // sum 14; with 13 servers -> odd
  fix_parity_for_servers(ports, 13);
  const long long sum = std::accumulate(ports.begin(), ports.end(), 0LL);
  EXPECT_EQ((sum - 13) % 2, 0);
}

}  // namespace
}  // namespace topo
