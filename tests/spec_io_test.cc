// Spec-file front end tests.
//
// Round-trip property: for every registered spec-backed scenario,
// dump -> parse -> dump is byte-identical, and a parsed spec reproduces
// the checked-in golden table at the golden harness's 1e-9 tolerance.
// Error paths: unknown keys, misspelled axis names, wrong types, and
// out-of-range values each fail with a message naming the offending key
// — the file-front-end extension of the PR-2 "fail loudly" contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/scenario.h"
#include "scenario/spec_io.h"
#include "scenario/sweep.h"
#include "util/error.h"
#include "util/json.h"

#ifndef TOPOBENCH_GOLDEN_DIR
#error "build must define TOPOBENCH_GOLDEN_DIR"
#endif
#ifndef TOPOBENCH_EXAMPLE_SPEC_DIR
#error "build must define TOPOBENCH_EXAMPLE_SPEC_DIR"
#endif

namespace topo::scenario {
namespace {

// A minimal valid spec document the error-path tests mutate.
const char* kTinySpec = R"({
  "name": "tiny",
  "topology": {"family": "random_regular",
               "params": {"n": 12, "ports": 6, "degree": 4}},
  "axes": [{"param": "link_failure_fraction", "values": [0, 0.25]}]
})";

// Asserts that parsing fails and that the message names `needle`.
void expect_spec_error(const std::string& json, const std::string& needle) {
  try {
    (void)spec_from_json(json);
    FAIL() << "expected InvalidArgument for: " << json;
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message \"" << e.what() << "\" does not name \"" << needle
        << "\"";
  }
}

TEST(SpecRoundTrip, EveryRegisteredSpecScenarioIsByteStable) {
  register_builtin_scenarios();
  const auto specs = list_spec_scenarios();
  ASSERT_GE(specs.size(), 7u);
  for (const ScenarioSpec* spec : specs) {
    SCOPED_TRACE(spec->name);
    const std::string once = spec_to_json(*spec);
    const ScenarioSpec parsed = spec_from_json(once);
    EXPECT_EQ(spec_to_json(parsed), once);
  }
}

TEST(SpecRoundTrip, TinySpecParsesWithDefaults) {
  const ScenarioSpec spec = spec_from_json(kTinySpec);
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.topology.family, "random_regular");
  EXPECT_EQ(spec.topology.params.at("degree"), 4.0);
  EXPECT_EQ(spec.traffic, TrafficKind::kPermutation);
  EXPECT_EQ(spec.chunky_fraction, 1.0);
  EXPECT_FALSE(spec.failure.active());
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_TRUE(spec.axes[0].full_values.empty());
  EXPECT_EQ(spec.quick_runs, 3);
  EXPECT_EQ(spec.full_runs, 20);
  EXPECT_FALSE(spec.reuse_topology);
  // Defaults re-serialize canonically too.
  EXPECT_EQ(spec_to_json(spec), spec_to_json(spec_from_json(
                                    spec_to_json(spec))));
}

TEST(SpecRoundTrip, LoadSpecFileRoundTripsAndNamesMissingPath) {
  register_builtin_scenarios();
  const ScenarioSpec* registered = find_spec_scenario("sweep_vl2_chunky");
  ASSERT_NE(registered, nullptr);
  const std::string path =
      ::testing::TempDir() + "/spec_io_test_roundtrip.json";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out);
    out << spec_to_json(*registered);
  }
  const ScenarioSpec loaded = load_spec_file(path);
  EXPECT_EQ(spec_to_json(loaded), spec_to_json(*registered));
  std::remove(path.c_str());

  try {
    (void)load_spec_file("/no/such/spec_file.json");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/spec_file.json"),
              std::string::npos);
  }
}

// The acceptance criterion: a spec parsed back from --dump-spec output
// reproduces the builtin scenario's golden table at the golden harness's
// tolerance (1e-9, scale-relative), via the same ScenarioRun pipeline.
TEST(SpecRoundTrip, ParsedSpecReproducesGoldenTable) {
  register_builtin_scenarios();
  const ScenarioSpec* registered =
      find_spec_scenario("sweep_rrg_link_failures");
  ASSERT_NE(registered, nullptr);
  const ScenarioSpec parsed = spec_from_json(spec_to_json(*registered));

  ScenarioOptions options;  // golden mode: smoke, 1 run, seed 1, eps 0.08
  options.runs = 1;
  std::ostringstream sink;
  ScenarioRun run(options, sink);
  run_spec_scenario(parsed, run);
  std::ostringstream actual_stream;
  write_scenario_json(actual_stream, parsed.name, options, run.tables());

  std::ifstream in(std::string(TOPOBENCH_GOLDEN_DIR) +
                   "/sweep_rrg_link_failures.json");
  ASSERT_TRUE(in) << "missing golden file";
  std::stringstream golden_buffer;
  golden_buffer << in.rdbuf();

  const JsonValue expected = parse_json(golden_buffer.str());
  const JsonValue actual = parse_json(actual_stream.str());
  const JsonValue& etables = expected.at("tables");
  const JsonValue& atables = actual.at("tables");
  ASSERT_EQ(etables.items.size(), atables.items.size());
  for (std::size_t t = 0; t < etables.items.size(); ++t) {
    const JsonValue& erows = etables.items[t].at("rows");
    const JsonValue& arows = atables.items[t].at("rows");
    ASSERT_EQ(erows.items.size(), arows.items.size());
    for (std::size_t r = 0; r < erows.items.size(); ++r) {
      ASSERT_EQ(erows.items[r].items.size(), arows.items[r].items.size());
      for (std::size_t c = 0; c < erows.items[r].items.size(); ++c) {
        const JsonValue& ecell = erows.items[r].items[c];
        const JsonValue& acell = arows.items[r].items[c];
        ASSERT_EQ(ecell.kind, acell.kind);
        if (ecell.is_number()) {
          const double tolerance =
              1e-9 * std::max({1.0, std::fabs(ecell.number),
                               std::fabs(acell.number)});
          EXPECT_NEAR(ecell.number, acell.number, tolerance)
              << "cell (" << t << "," << r << "," << c << ")";
        }
      }
    }
  }
}

TEST(SpecRoundTrip, CheckedInExampleSpecsStayValid) {
  // The README's worked examples must keep parsing (and round-tripping)
  // as the spec schema evolves.
  for (const char* name :
       {"rrg_link_failures.json", "fat_tree_failure_grid.json",
        "rrg_correlated_failures.json", "fat_tree_targeted_cuts.json",
        "vl2_class_failures.json", "fct_load_sweep.json"}) {
    SCOPED_TRACE(name);
    const ScenarioSpec spec = load_spec_file(
        std::string(TOPOBENCH_EXAMPLE_SPEC_DIR) + "/" + name);
    EXPECT_EQ(spec_to_json(spec_from_json(spec_to_json(spec))),
              spec_to_json(spec));
  }
}

TEST(SpecRoundTrip, FailureComponentsRoundTripByteStably) {
  // A spec exercising every failure component: correlated blast radius,
  // per-class rates, targeted cuts, plus the legacy uniform fields.
  const char* doc = R"({
    "name": "all_components",
    "topology": {"family": "fat_tree", "params": {"k": 4}},
    "failure": {"link_failure_fraction": 0.05,
                "blast_switch_fraction": 0.1,
                "blast_probability": 0.25,
                "class_failure_fraction": {"core": 0.5, "edge": 0.1},
                "targeted_link_cuts": 4,
                "capacity_factor": 0.9},
    "axes": [{"param": "blast_probability", "values": [0, 0.25, 0.5]}]
  })";
  const ScenarioSpec spec = spec_from_json(doc);
  EXPECT_EQ(spec.failure.uniform.link_fraction, 0.05);
  EXPECT_EQ(spec.failure.correlated.epicenter_fraction, 0.1);
  EXPECT_EQ(spec.failure.correlated.peer_probability, 0.25);
  EXPECT_EQ(spec.failure.per_class.switch_fraction.at("core"), 0.5);
  EXPECT_EQ(spec.failure.per_class.switch_fraction.at("edge"), 0.1);
  EXPECT_EQ(spec.failure.targeted.link_cuts, 4);
  EXPECT_EQ(spec.failure.capacity_factor, 0.9);
  EXPECT_TRUE(spec.failure.active());
  const std::string once = spec_to_json(spec);
  EXPECT_EQ(spec_to_json(spec_from_json(once)), once);
  // Inactive components stay out of the canonical emission, so legacy
  // uniform-only specs serialize exactly as they did before.
  ScenarioSpec legacy = spec;
  legacy.failure = FailureSpec{};
  legacy.axes = {{"link_failure_fraction", {0.0, 0.25}, {}}};
  const std::string legacy_json = spec_to_json(legacy);
  EXPECT_EQ(legacy_json.find("blast"), std::string::npos);
  EXPECT_EQ(legacy_json.find("class_failure_fraction"), std::string::npos);
  EXPECT_EQ(legacy_json.find("targeted"), std::string::npos);
}

TEST(SpecRoundTrip, PacketSimRoundTripsByteStably) {
  const char* doc = R"({
    "name": "packet",
    "topology": {"family": "rewired_vl2",
                 "params": {"d_a": 6, "d_i": 8, "servers_per_tor": 4}},
    "packet_sim": {"subflows": 4, "queue_packets": 30,
                   "duration_ns": 8000000, "warmup_ns": 4000000,
                   "route_mode": "ecmp_hash"},
    "axes": [{"param": "tors", "values": [14]}]
  })";
  const ScenarioSpec spec = spec_from_json(doc);
  EXPECT_TRUE(spec.packet_sim.enabled);
  EXPECT_EQ(spec.packet_sim.params.subflows, 4);
  EXPECT_EQ(spec.packet_sim.params.queue_packets, 30);
  EXPECT_EQ(spec.packet_sim.params.duration_ns, 8'000'000u);
  EXPECT_EQ(spec.packet_sim.params.warmup_ns, 4'000'000u);
  EXPECT_EQ(spec.packet_sim.params.route_mode, sim::RouteMode::kEcmpHash);
  // Unset knobs keep the SimParams defaults.
  EXPECT_EQ(spec.packet_sim.params.packet_bytes, 1500);
  EXPECT_TRUE(spec.packet_sim.params.ewtcp_coupling);
  const std::string once = spec_to_json(spec);
  EXPECT_EQ(spec_to_json(spec_from_json(once)), once);
  // A spec without packet_sim serializes without the key, so every
  // pre-packet-sim spec file stays byte-identical.
  ScenarioSpec plain = spec;
  plain.packet_sim = PacketSimOptions{};
  EXPECT_EQ(spec_to_json(plain).find("packet_sim"), std::string::npos);
}

TEST(SpecRoundTrip, HotspotAndStrideRoundTripByteStably) {
  const char* hotspot_doc = R"({
    "name": "hot",
    "topology": {"family": "random_regular",
                 "params": {"n": 12, "ports": 6, "degree": 4}},
    "traffic": "hotspot",
    "hot_fraction": 0.2,
    "hot_multiplier": 8,
    "axes": [{"param": "hot_fraction", "values": [0.1, 0.2]}]
  })";
  const ScenarioSpec hotspot = spec_from_json(hotspot_doc);
  EXPECT_EQ(hotspot.traffic, TrafficKind::kHotspot);
  EXPECT_EQ(hotspot.hot_fraction, 0.2);
  EXPECT_EQ(hotspot.hot_multiplier, 8.0);
  const std::string hotspot_once = spec_to_json(hotspot);
  EXPECT_EQ(spec_to_json(spec_from_json(hotspot_once)), hotspot_once);

  const char* stride_doc = R"({
    "name": "strided",
    "topology": {"family": "random_regular",
                 "params": {"n": 12, "ports": 6, "degree": 4}},
    "traffic": "stride",
    "stride": 7,
    "axes": [{"param": "stride", "values": [1, 7]}]
  })";
  const ScenarioSpec stride = spec_from_json(stride_doc);
  EXPECT_EQ(stride.traffic, TrafficKind::kStride);
  EXPECT_EQ(stride.stride, 7);
  const std::string stride_once = spec_to_json(stride);
  EXPECT_EQ(spec_to_json(spec_from_json(stride_once)), stride_once);

  // The knobs stay out of other kinds' serializations, so legacy specs
  // keep their exact bytes.
  ScenarioSpec plain = stride;
  plain.traffic = TrafficKind::kPermutation;
  plain.axes = {{"epsilon", {0.1}, {}}};
  const std::string plain_json = spec_to_json(plain);
  EXPECT_EQ(plain_json.find("\"stride\":"), std::string::npos);
  EXPECT_EQ(plain_json.find("hot_"), std::string::npos);
}

TEST(SpecRoundTrip, FctWorkloadRoundTripsByteStably) {
  const char* doc = R"({
    "name": "fct",
    "topology": {"family": "random_regular",
                 "params": {"n": 12, "ports": 6, "degree": 4}},
    "packet_sim": {"subflows": 1, "duration_ns": 8000000,
                   "warmup_ns": 0,
                   "workload": {"cdf": "websearch", "load": 0.4}},
    "axes": [{"param": "load", "values": [0.2, 0.4]}]
  })";
  const ScenarioSpec spec = spec_from_json(doc);
  EXPECT_TRUE(spec.packet_sim.enabled);
  EXPECT_TRUE(spec.packet_sim.fct.enabled);
  EXPECT_EQ(spec.packet_sim.fct.cdf, "websearch");
  EXPECT_EQ(spec.packet_sim.fct.load, 0.4);
  const std::string once = spec_to_json(spec);
  EXPECT_EQ(spec_to_json(spec_from_json(once)), once);
  // No workload block -> no "workload" key: bulk packet-sim specs keep
  // their exact serialization.
  ScenarioSpec bulk = spec;
  bulk.packet_sim.fct = FctWorkloadOptions{};
  bulk.axes = {{"epsilon", {0.1}, {}}};
  EXPECT_EQ(spec_to_json(bulk).find("workload"), std::string::npos);
}

TEST(SpecErrors, TrafficKnobsRequireTheirKind) {
  // hot_* / stride keys are rejected unless the matching traffic kind is
  // selected (silently carrying them would break round-trip stability).
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "hot_fraction": 0.2})",
                    "hotspot");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "traffic": "stride",
                        "hot_multiplier": 4})",
                    "hotspot");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "stride": 2})",
                    "stride");
  // Range checks on the knobs themselves.
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "traffic": "hotspot", "hot_multiplier": 0.5})",
                    "hot_multiplier");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "traffic": "stride", "stride": 0})",
                    "stride");
  // Axis gating mirrors the scalar gating.
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "hot_fraction", "values": [0.1]}]})",
      "hotspot");
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "stride", "values": [1, 2]}]})",
      "stride");
}

TEST(SpecErrors, FctWorkloadKeysAreValidated) {
  const auto fct_spec = [](const std::string& workload) {
    return std::string(R"({"name": "x",
      "topology": {"family": "random_regular"},
      "packet_sim": {"subflows": 1, "workload": )") +
           workload + "}}";
  };
  expect_spec_error(fct_spec(R"({"cdf": "no_such_cdf", "load": 0.5})"),
                    "packet_sim.workload.cdf");
  expect_spec_error(fct_spec(R"({"cdf": "websearch", "load": 0})"),
                    "load");
  expect_spec_error(fct_spec(R"({"cdf": "websearch", "load": 1.5})"),
                    "load");
  expect_spec_error(fct_spec(R"({"cdf": "websearch", "load": 0.5,
                                 "extra": 1})"),
                    "extra");
  // load / cdf axes only mean something with a workload block present.
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "packet_sim": {"subflows": 1},
          "axes": [{"param": "load", "values": [0.5]}]})",
      "workload");
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "cdf", "values": [0]}]})",
      "workload");
  // The cdf axis is an integer index into the registered distributions.
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "packet_sim": {"subflows": 1,
                         "workload": {"cdf": "websearch", "load": 0.5}},
          "axes": [{"param": "cdf", "values": [99]}]})",
      "axes[0].values");
}

TEST(SpecErrors, PacketSimKeysAreValidated) {
  const auto packet_spec = [](const std::string& body) {
    return std::string(R"({"name": "x",
      "topology": {"family": "rewired_vl2"},
      "packet_sim": )") + body + "}";
  };
  expect_spec_error(packet_spec(R"({"subflows": 0})"), "packet_sim.subflows");
  expect_spec_error(packet_spec(R"({"subflows": 2.5})"),
                    "packet_sim.subflows");
  expect_spec_error(packet_spec(R"({"queue_packets": 0})"),
                    "packet_sim.queue_packets");
  expect_spec_error(packet_spec(R"({"route_mode": "spray"})"),
                    "route_mode");
  expect_spec_error(packet_spec(R"({"qeue_packets": 10})"), "qeue_packets");
  expect_spec_error(
      packet_spec(R"({"duration_ns": 1000, "warmup_ns": 1000})"),
      "warmup_ns");
  expect_spec_error(packet_spec(R"({"server_rate_gbps": 0})"),
                    "server_rate_gbps");
  // Non-permutation traffic cannot drive the packet simulator.
  expect_spec_error(R"({"name": "x",
      "topology": {"family": "rewired_vl2"},
      "traffic": "all_to_all",
      "packet_sim": {"subflows": 2}})",
                    "permutation");
}

TEST(SpecErrors, FailureComponentKeysAreValidated) {
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "failure": {"blast_probability": 1.5}})",
                    "blast_probability");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "failure": {"blast_switch_fractoin": 0.1}})",
                    "blast_switch_fractoin");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "failure": {"targeted_link_cuts": -1}})",
                    "targeted_link_cuts");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "failure": {"targeted_link_cuts": 2.5}})",
                    "targeted_link_cuts");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "failure": {"class_failure_fraction": {"tor": 2}}})",
                    "class_failure_fraction.tor");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "failure": {"class_failure_fraction": 0.5}})",
                    "class_failure_fraction");
}

TEST(SpecErrors, FailureAxisValuesAreValidated) {
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "blast_probability", "values": [0.5, 1.5]}]})",
      "axes[0].values");
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "targeted_link_cuts", "values": [0, 1.5]}]})",
      "axes[0].values");
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "targeted_link_cuts", "values": [-2]}]})",
      "axes[0].values");
  // Same 1e9 cap as the scalar field: values that would overflow the int
  // cast in axis binding are rejected up front, not mid-sweep.
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "targeted_link_cuts", "values": [3000000000]}]})",
      "axes[0].values");
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "class_failure_fraction:tor",
                    "values": [0, 2]}]})",
      "axes[0].values");
  // A bare class prefix with no class name is a spec mistake, not a
  // topology-parameter axis.
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "class_failure_fraction:", "values": [0.1]}]})",
      "axes[0].param");
}

TEST(SpecErrors, UnknownKeysAreNamed) {
  expect_spec_error(R"({"name": "x", "trafic": "permutation",
                        "topology": {"family": "random_regular"}})",
                    "trafic");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular",
                                     "extra": 1}})",
                    "topology.extra");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "axes": [{"param": "epsilon", "values": [0.1],
                                  "full_value": [0.1]}]})",
                    "full_value");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "failure": {"link_failure_fractoin": 0.1}})",
                    "link_failure_fractoin");
}

TEST(SpecErrors, MisspelledAxisAndParamNamesAreNamed) {
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "lnik_failure_fraction", "values": [0.1]}]})",
      "lnik_failure_fraction");
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular",
                                    "params": {"degre": 4}}})",
      "degre");
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "no_such_family"}})",
      "no_such_family");
}

TEST(SpecErrors, WrongTypesAreNamed) {
  expect_spec_error(R"({"name": 42,
                        "topology": {"family": "random_regular"}})",
                    "name");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "axes": [{"param": "epsilon", "values": "oops"}]})",
                    "values");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "axes": [{"param": "epsilon",
                                  "values": [0.1, "oops"]}]})",
                    "values");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular",
                                     "params": {"n": "twelve"}}})",
                    "topology.params.n");
  expect_spec_error(R"({"name": "x", "reuse_topology": 1,
                        "topology": {"family": "random_regular"}})",
                    "reuse_topology");
  expect_spec_error(R"({"name": "x", "quick_runs": 2.5,
                        "topology": {"family": "random_regular"}})",
                    "quick_runs");
}

TEST(SpecErrors, OutOfRangeValuesAreNamed) {
  expect_spec_error(R"({"name": "x", "quick_runs": 0,
                        "topology": {"family": "random_regular"}})",
                    "quick_runs");
  expect_spec_error(R"({"name": "x", "full_runs": -3,
                        "topology": {"family": "random_regular"}})",
                    "full_runs");
  expect_spec_error(R"({"name": "x", "chunky_fraction": 1.5,
                        "topology": {"family": "random_regular"}})",
                    "chunky_fraction");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "failure": {"link_failure_fraction": 1.5}})",
                    "link_failure_fraction");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "failure": {"capacity_factor": 0}})",
                    "capacity_factor");
}

TEST(SpecErrors, DuplicateAxesAndOutOfRangeAxisValuesAreNamed) {
  // Axes bind in order, so a repeated param would silently overwrite the
  // earlier axis while the table still prints its values as a column.
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "epsilon", "values": [0.1, 0.3]},
                   {"param": "epsilon", "values": [0.25]}]})",
      "axes[1].param");
  // Evaluation-side axis values get the scalar fields' range checks.
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "link_failure_fraction",
                    "values": [0.1, 1.5]}]})",
      "axes[0].values");
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "capacity_factor", "values": [1],
                    "full_values": [1, 0]}]})",
      "axes[0].full_values");
  expect_spec_error(
      R"({"name": "x", "topology": {"family": "random_regular"},
          "axes": [{"param": "epsilon", "values": [1]}]})",
      "axes[0].values");
}

TEST(SpecErrors, StructuralMistakesFailLoudly) {
  expect_spec_error("[]", "object");
  expect_spec_error(R"({"topology": {"family": "random_regular"}})",
                    "name");  // missing required key
  expect_spec_error(R"({"name": "x", "topology": {}})", "family");
  expect_spec_error(R"({"name": "x", "traffic": "permutatoin",
                        "topology": {"family": "random_regular"}})",
                    "permutatoin");
  expect_spec_error(R"({"name": "x",
                        "topology": {"family": "random_regular"},
                        "axes": [{"param": "epsilon", "values": []}]})",
                    "values");
  // Duplicate keys are a parse error, not a silent overwrite.
  expect_spec_error(R"({"name": "x", "name": "y",
                        "topology": {"family": "random_regular"}})",
                    "duplicate");
}

TEST(SpecErrors, OutOfRangeSeedRejectedBySharedFlagParser) {
  // The CLI path for spec runs parses the same flag set as scenarios;
  // get_uint64 rejects negative and overflowing seeds loudly.
  const char* negative[] = {"spec.json", "--seed", "-3"};
  EXPECT_THROW((void)parse_scenario_options(3, negative), InvalidArgument);
  const char* huge[] = {"spec.json", "--seed", "99999999999999999999"};
  EXPECT_THROW((void)parse_scenario_options(3, huge), InvalidArgument);
}

TEST(SpecRegistry, FiguresAreNotSpecBacked) {
  register_builtin_scenarios();
  EXPECT_EQ(find_spec_scenario("fig05_powerlaw_beta"), nullptr);
  EXPECT_NE(find_spec_scenario("sweep_rrg_link_failures"), nullptr);
}

}  // namespace
}  // namespace topo::scenario
