// Integration tests: miniature versions of the paper's headline results.
// Each test runs a scaled-down figure pipeline and asserts the qualitative
// claim (who wins, where the knee sits) rather than absolute numbers.
#include <gtest/gtest.h>

#include "bounds/bounds.h"
#include "core/evaluate.h"
#include "core/experiment.h"
#include "graph/algorithms.h"
#include "sim/network.h"
#include "topo/het_random.h"
#include "topo/random_regular.h"
#include "topo/structured.h"
#include "topo/vl2.h"

namespace topo {
namespace {

EvalOptions quick_eval(double eps = 0.08) {
  EvalOptions o;
  o.flow.epsilon = eps;
  return o;
}

double mean_lambda(const TopologyBuilder& builder, const EvalOptions& o,
                   int runs, std::uint64_t seed) {
  return run_experiment(builder, o, runs, seed).lambda.mean;
}

// --- Fig 1/2 mini: RRGs close to the throughput upper bound -------------

TEST(Integration, RrgNearThroughputBoundAtModerateDensity) {
  // N=20 switches, degree 10, 5 servers each: the paper reports RRGs
  // within a few percent of the bound at such densities; the FPTAS's
  // certified lower bound should still land within ~20%.
  const int n = 20;
  const int r = 10;
  const int servers = 5;
  const TopologyBuilder builder = [&](std::uint64_t seed) {
    return random_regular_topology(n, r + servers, r, seed);
  };
  const ExperimentStats stats = run_experiment(builder, quick_eval(0.05), 3, 1);
  const double bound = homogeneous_throughput_upper_bound(
      n, r, static_cast<double>(n * servers));
  EXPECT_LE(stats.lambda.mean, bound * 1.001);
  EXPECT_GE(stats.lambda.mean, 0.6 * bound);
}

TEST(Integration, RrgAsplWithinTenPercentOfLowerBound) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = random_regular_graph(60, 10, seed);
    const double aspl = average_shortest_path_length(g);
    const double bound = aspl_lower_bound(60, 10);
    EXPECT_GE(aspl, bound - 1e-9);
    EXPECT_LE(aspl, 1.10 * bound);
  }
}

TEST(Integration, DenserRrgHasHigherThroughput) {
  const int servers = 5;
  auto lambda_at_degree = [&](int r) {
    const TopologyBuilder builder = [&](std::uint64_t seed) {
      return random_regular_topology(20, r + servers, r, seed);
    };
    return mean_lambda(builder, quick_eval(), 2, 3);
  };
  EXPECT_LT(lambda_at_degree(4), lambda_at_degree(8));
  EXPECT_LT(lambda_at_degree(8), lambda_at_degree(14));
}

// --- "Not all flat topologies are equal": RRG beats the hypercube -------

TEST(Integration, RrgBeatsHypercubeSameEquipment) {
  // 64 switches, degree 6 (hypercube dimension 6), 3 servers per switch.
  // The paper reports ~30% advantage at 512 nodes and notes the gap grows
  // with scale; at 64 nodes we measure ~14%, so assert a safe 5%.
  const int dim = 6;
  const int n = 1 << dim;
  const int servers = 3;
  const TopologyBuilder rrg = [&](std::uint64_t seed) {
    return random_regular_topology(n, dim + servers, dim, seed);
  };
  const TopologyBuilder cube = [&](std::uint64_t) {
    return hypercube_topology(dim, servers);
  };
  const double rrg_lambda = mean_lambda(rrg, quick_eval(), 3, 7);
  const double cube_lambda = mean_lambda(cube, quick_eval(), 3, 7);
  EXPECT_GT(rrg_lambda, 1.05 * cube_lambda);
}

// --- Fig 4 mini: proportional server placement is optimal ---------------

TEST(Integration, ProportionalServerPlacementBeatsSkewed) {
  TwoTypeSpec base;
  base.num_large = 6;
  base.num_small = 12;
  base.large_ports = 18;
  base.small_ports = 6;
  const int total_servers = 60;

  auto lambda_at_ratio = [&](double ratio) {
    const TwoTypeSpec spec = with_server_split(base, total_servers, ratio);
    const TopologyBuilder builder = [spec](std::uint64_t seed) {
      return build_two_type(spec, seed);
    };
    return mean_lambda(builder, quick_eval(), 3, 11);
  };
  const double proportional = lambda_at_ratio(1.0);
  EXPECT_GT(proportional, lambda_at_ratio(0.45) * 1.02);
  EXPECT_GT(proportional, lambda_at_ratio(1.8) * 1.02);
}

// --- Fig 6 mini: throughput plateau then collapse in cross links --------

TEST(Integration, CrossClusterPlateauAndCollapse) {
  TwoTypeSpec spec;
  spec.num_large = 10;
  spec.num_small = 20;
  spec.large_ports = 18;
  spec.small_ports = 9;
  spec.servers_per_large = 6;
  spec.servers_per_small = 3;

  auto lambda_at_fraction = [&](double fraction) {
    spec.cross_fraction = fraction;
    const TwoTypeSpec copy = spec;
    const TopologyBuilder builder = [copy](std::uint64_t seed) {
      return build_two_type(copy, seed);
    };
    return mean_lambda(builder, quick_eval(), 3, 13);
  };
  const double vanilla = lambda_at_fraction(1.0);
  const double reduced = lambda_at_fraction(0.6);
  const double starved = lambda_at_fraction(0.1);
  // Plateau: modest reduction stays within ~12% of vanilla randomness.
  EXPECT_GT(reduced, 0.88 * vanilla);
  // Collapse: starving the cut costs much more.
  EXPECT_LT(starved, 0.6 * vanilla);
}

// --- Fig 10/11 mini: Eqn-1 bound dominates measured throughput ----------

TEST(Integration, TwoClusterBoundDominatesMeasurement) {
  TwoTypeSpec spec;
  spec.num_large = 8;
  spec.num_small = 16;
  spec.large_ports = 16;
  spec.small_ports = 8;
  spec.servers_per_large = 5;
  spec.servers_per_small = 3;
  for (double fraction : {0.2, 0.6, 1.0}) {
    spec.cross_fraction = fraction;
    const BuiltTopology t = build_two_type(spec, 5);
    const ThroughputResult r = evaluate_throughput(t, quick_eval(), 9);
    ASSERT_TRUE(r.feasible);
    std::vector<char> in_a(static_cast<std::size_t>(t.graph.num_nodes()), 0);
    for (int i = 0; i < spec.num_large; ++i) in_a[static_cast<std::size_t>(i)] = 1;
    const double n1 = spec.num_large * spec.servers_per_large;
    const double n2 = spec.num_small * spec.servers_per_small;
    const TwoClusterBound bound =
        two_cluster_throughput_bound(t.graph, in_a, n1, n2);
    EXPECT_LE(r.lambda, bound.combined * 1.02) << "fraction " << fraction;
  }
}

// --- Theorem 2 mini: linear regime below the threshold ------------------

TEST(Integration, ThroughputLinearInScarceCrossCut) {
  // Theorem 2: for q below q* the throughput is Theta(q) — halving the
  // cross-cluster wiring in the scarce regime halves throughput.
  TwoTypeSpec spec;
  spec.num_large = 16;
  spec.num_small = 16;
  spec.large_ports = 16;
  spec.small_ports = 16;
  spec.servers_per_large = 6;
  spec.servers_per_small = 6;

  auto lambda_at = [&](double fraction) {
    spec.cross_fraction = fraction;
    const TwoTypeSpec copy = spec;
    const TopologyBuilder builder = [copy](std::uint64_t seed) {
      return build_two_type(copy, seed);
    };
    return mean_lambda(builder, quick_eval(), 3, 31);
  };
  const double at_10 = lambda_at(0.10);
  const double at_20 = lambda_at(0.20);
  EXPECT_NEAR(at_20 / at_10, 2.0, 0.5);
}

// --- Fig 12 mini: rewired VL2 supports more ToRs than VL2 ---------------

TEST(Integration, RewiredVl2BeatsVl2) {
  Vl2Params params;
  params.d_a = 8;
  params.d_i = 8;
  const int nominal = vl2_nominal_tors(params);  // 16

  FullThroughputSearch search;
  search.builder = [&](int tors, std::uint64_t seed) {
    return rewired_vl2_topology(params, tors, seed);
  };
  search.min_tors = nominal;
  search.max_tors = rewired_vl2_max_tors(params);
  search.threshold = 0.92;
  search.runs = 2;
  search.options.flow.epsilon = 0.05;
  const int rewired = max_tors_at_full_throughput(search, 23);
  EXPECT_GE(rewired, nominal);  // at least as good, typically better
}

// --- Fig 13 mini: packet-level within striking distance of flow-level ---

TEST(Integration, PacketSimTracksFlowLevel) {
  const BuiltTopology t = random_regular_topology(12, 8, 5, 31);
  const ThroughputResult flow = evaluate_throughput(t, quick_eval(0.05), 5);
  ASSERT_TRUE(flow.feasible);

  sim::SimParams p;
  p.subflows = 8;
  p.duration_ns = 16'000'000;
  p.warmup_ns = 8'000'000;
  sim::SimNetwork net(t, p, 31);
  net.add_permutation_workload();
  const sim::SimulationResult packet = net.run();

  // Flow-level is an upper bound on the mean; the packet sim should reach
  // a large fraction of it at this small scale.
  const double flow_mean = std::min(1.0, flow.dual_bound);
  EXPECT_LE(packet.mean_normalized, flow_mean * 1.10);
  EXPECT_GE(packet.mean_normalized, 0.5 * flow.lambda);
}

}  // namespace
}  // namespace topo
