// Golden-regression layer for the scenario engine.
//
// Every registered scenario runs in golden mode (smoke sweeps, one run per
// data point, master seed 1, epsilon 0.08) and its recorded tables are
// compared against the checked-in JSON under tests/golden/ with tolerance
// 1e-9 — so a solver or scenario refactor that shifts any published number
// fails here, at the API level, not just in perf_microbench.
//
// The JSON reader is the shared strict parser in util/json.h (the same
// one the spec-file front end and the result cache use).
//
// Regenerating after an INTENDED change:
//   TOPOBENCH_UPDATE_GOLDEN=1 ./build/tests/scenario_golden_test
// then review the diff of tests/golden/*.json like any other code change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "util/json.h"

#ifndef TOPOBENCH_GOLDEN_DIR
#error "build must define TOPOBENCH_GOLDEN_DIR"
#endif

namespace topo::scenario {
namespace {

ScenarioOptions golden_options() {
  ScenarioOptions options;
  options.runs = 1;  // one seed per data point keeps the suite fast while
                     // still exercising every scenario code path
  options.epsilon = 0.08;
  options.seed = 1;
  return options;
}

std::string run_to_json(const ScenarioInfo& info) {
  std::ostringstream sink;  // human-readable output unused here
  ScenarioRun run(golden_options(), sink);
  info.run(run);
  std::ostringstream json;
  write_scenario_json(json, info.name, golden_options(), run.tables());
  return json.str();
}

std::string golden_path(const std::string& name) {
  return std::string(TOPOBENCH_GOLDEN_DIR) + "/" + name + ".json";
}

std::vector<std::string> golden_scenario_names() {
  register_builtin_scenarios();
  std::vector<std::string> names;
  for (const ScenarioInfo* info : list_scenarios()) {
    names.push_back(info->name);
  }
  return names;
}

void compare_tables(const JsonValue& expected, const JsonValue& actual) {
  ASSERT_TRUE(expected.is_object());
  ASSERT_TRUE(actual.is_object());
  const JsonValue& etables = expected.at("tables");
  const JsonValue& atables = actual.at("tables");
  ASSERT_EQ(etables.items.size(), atables.items.size()) << "table count";
  for (std::size_t t = 0; t < etables.items.size(); ++t) {
    const JsonValue& et = etables.items[t];
    const JsonValue& at = atables.items[t];
    EXPECT_EQ(et.at("title").text, at.at("title").text);
    const JsonValue& eheaders = et.at("headers");
    const JsonValue& aheaders = at.at("headers");
    ASSERT_EQ(eheaders.items.size(), aheaders.items.size());
    for (std::size_t h = 0; h < eheaders.items.size(); ++h) {
      EXPECT_EQ(eheaders.items[h].text, aheaders.items[h].text);
    }
    const JsonValue& erows = et.at("rows");
    const JsonValue& arows = at.at("rows");
    ASSERT_EQ(erows.items.size(), arows.items.size())
        << "row count in table " << t;
    for (std::size_t r = 0; r < erows.items.size(); ++r) {
      const JsonValue& erow = erows.items[r];
      const JsonValue& arow = arows.items[r];
      ASSERT_EQ(erow.items.size(), arow.items.size());
      for (std::size_t c = 0; c < erow.items.size(); ++c) {
        const JsonValue& ecell = erow.items[c];
        const JsonValue& acell = arow.items[c];
        ASSERT_EQ(ecell.kind, acell.kind)
            << "cell kind (" << t << "," << r << "," << c << ")";
        if (ecell.is_number()) {
          const double tolerance =
              1e-9 * std::max({1.0, std::fabs(ecell.number),
                               std::fabs(acell.number)});
          EXPECT_NEAR(ecell.number, acell.number, tolerance)
              << "cell (" << t << "," << r << "," << c << ")";
        } else if (ecell.is_string()) {
          EXPECT_EQ(ecell.text, acell.text)
              << "cell (" << t << "," << r << "," << c << ")";
        }
      }
    }
  }
}

class GoldenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenTest, MatchesCheckedInResult) {
  register_builtin_scenarios();
  const ScenarioInfo* info = find_scenario(GetParam());
  ASSERT_NE(info, nullptr);

  const std::string actual_json = run_to_json(*info);
  const std::string path = golden_path(info->name);

  if (std::getenv("TOPOBENCH_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual_json;
    SUCCEED() << "updated " << path;
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run TOPOBENCH_UPDATE_GOLDEN=1 scenario_golden_test "
                     "and commit the result";
  std::stringstream buffer;
  buffer << in.rdbuf();

  const JsonValue expected = parse_json(buffer.str());
  const JsonValue actual = parse_json(actual_json);
  compare_tables(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, GoldenTest,
                         ::testing::ValuesIn(golden_scenario_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace topo::scenario
