// Golden-regression layer for the scenario engine.
//
// Every registered scenario runs in golden mode (smoke sweeps, one run per
// data point, master seed 1, epsilon 0.08) and its recorded tables are
// compared against the checked-in JSON under tests/golden/ with tolerance
// 1e-9 — so a solver or scenario refactor that shifts any published number
// fails here, at the API level, not just in perf_microbench.
//
// Regenerating after an INTENDED change:
//   TOPOBENCH_UPDATE_GOLDEN=1 ./build/tests/scenario_golden_test
// then review the diff of tests/golden/*.json like any other code change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario.h"

#ifndef TOPOBENCH_GOLDEN_DIR
#error "build must define TOPOBENCH_GOLDEN_DIR"
#endif

namespace topo::scenario {
namespace {

// ---- A minimal JSON reader (objects, arrays, strings, numbers, null,
// ---- bools) — just enough to load the golden files back.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& input) : input_(input) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_space();
    if (pos_ != input_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_space() {
    while (pos_ < input_.size() && std::isspace(
               static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= input_.size()) fail("unexpected end");
    return input_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::string(literal).size();
    if (input_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_space();
    JsonValue value;
    switch (peek()) {
      case '{': {
        value.kind = JsonValue::Kind::kObject;
        expect('{');
        skip_space();
        if (peek() == '}') { ++pos_; return value; }
        while (true) {
          skip_space();
          const std::string key = parse_string_raw();
          skip_space();
          expect(':');
          value.fields[key] = parse_value();
          skip_space();
          if (peek() == ',') { ++pos_; continue; }
          expect('}');
          return value;
        }
      }
      case '[': {
        value.kind = JsonValue::Kind::kArray;
        expect('[');
        skip_space();
        if (peek() == ']') { ++pos_; return value; }
        while (true) {
          value.items.push_back(parse_value());
          skip_space();
          if (peek() == ',') { ++pos_; continue; }
          expect(']');
          return value;
        }
      }
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.text = parse_string_raw();
        return value;
      default:
        if (consume_literal("null")) return value;
        if (consume_literal("true")) {
          value.kind = JsonValue::Kind::kBool;
          value.boolean = true;
          return value;
        }
        if (consume_literal("false")) {
          value.kind = JsonValue::Kind::kBool;
          return value;
        }
        return parse_number();
    }
  }

  std::string parse_string_raw() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= input_.size()) fail("unterminated string");
      const char c = input_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= input_.size()) fail("bad escape");
        const char e = input_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (pos_ + 4 > input_.size()) fail("bad \\u escape");
            const int code =
                std::stoi(input_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            out += static_cast<char>(code);  // goldens only escape < 0x20
            break;
          }
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '-' || input_[pos_] == '+' ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(input_.substr(start, pos_ - start).c_str(),
                               nullptr);
    return value;
  }

  const std::string& input_;
  std::size_t pos_ = 0;
};

// ---- Golden-mode execution and comparison.

ScenarioOptions golden_options() {
  ScenarioOptions options;
  options.runs = 1;  // one seed per data point keeps the suite fast while
                     // still exercising every scenario code path
  options.epsilon = 0.08;
  options.seed = 1;
  return options;
}

std::string run_to_json(const ScenarioInfo& info) {
  std::ostringstream sink;  // human-readable output unused here
  ScenarioRun run(golden_options(), sink);
  info.run(run);
  std::ostringstream json;
  write_scenario_json(json, info.name, golden_options(), run.tables());
  return json.str();
}

std::string golden_path(const std::string& name) {
  return std::string(TOPOBENCH_GOLDEN_DIR) + "/" + name + ".json";
}

std::vector<std::string> golden_scenario_names() {
  register_builtin_scenarios();
  std::vector<std::string> names;
  for (const ScenarioInfo* info : list_scenarios()) {
    names.push_back(info->name);
  }
  return names;
}

void compare_tables(const JsonValue& expected, const JsonValue& actual) {
  ASSERT_EQ(expected.kind, JsonValue::Kind::kObject);
  ASSERT_EQ(actual.kind, JsonValue::Kind::kObject);
  const JsonValue& etables = expected.fields.at("tables");
  const JsonValue& atables = actual.fields.at("tables");
  ASSERT_EQ(etables.items.size(), atables.items.size()) << "table count";
  for (std::size_t t = 0; t < etables.items.size(); ++t) {
    const JsonValue& et = etables.items[t];
    const JsonValue& at = atables.items[t];
    EXPECT_EQ(et.fields.at("title").text, at.fields.at("title").text);
    const JsonValue& eheaders = et.fields.at("headers");
    const JsonValue& aheaders = at.fields.at("headers");
    ASSERT_EQ(eheaders.items.size(), aheaders.items.size());
    for (std::size_t h = 0; h < eheaders.items.size(); ++h) {
      EXPECT_EQ(eheaders.items[h].text, aheaders.items[h].text);
    }
    const JsonValue& erows = et.fields.at("rows");
    const JsonValue& arows = at.fields.at("rows");
    ASSERT_EQ(erows.items.size(), arows.items.size())
        << "row count in table " << t;
    for (std::size_t r = 0; r < erows.items.size(); ++r) {
      const JsonValue& erow = erows.items[r];
      const JsonValue& arow = arows.items[r];
      ASSERT_EQ(erow.items.size(), arow.items.size());
      for (std::size_t c = 0; c < erow.items.size(); ++c) {
        const JsonValue& ecell = erow.items[c];
        const JsonValue& acell = arow.items[c];
        ASSERT_EQ(ecell.kind, acell.kind)
            << "cell kind (" << t << "," << r << "," << c << ")";
        if (ecell.kind == JsonValue::Kind::kNumber) {
          const double tolerance =
              1e-9 * std::max({1.0, std::fabs(ecell.number),
                               std::fabs(acell.number)});
          EXPECT_NEAR(ecell.number, acell.number, tolerance)
              << "cell (" << t << "," << r << "," << c << ")";
        } else if (ecell.kind == JsonValue::Kind::kString) {
          EXPECT_EQ(ecell.text, acell.text)
              << "cell (" << t << "," << r << "," << c << ")";
        }
      }
    }
  }
}

class GoldenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenTest, MatchesCheckedInResult) {
  register_builtin_scenarios();
  const ScenarioInfo* info = find_scenario(GetParam());
  ASSERT_NE(info, nullptr);

  const std::string actual_json = run_to_json(*info);
  const std::string path = golden_path(info->name);

  if (std::getenv("TOPOBENCH_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual_json;
    SUCCEED() << "updated " << path;
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run TOPOBENCH_UPDATE_GOLDEN=1 scenario_golden_test "
                     "and commit the result";
  std::stringstream buffer;
  buffer << in.rdbuf();

  const JsonValue expected = JsonParser(buffer.str()).parse();
  const JsonValue actual = JsonParser(actual_json).parse();
  compare_tables(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, GoldenTest,
                         ::testing::ValuesIn(golden_scenario_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace topo::scenario
