// Result-cache tests: cold vs warm equivalence (bit-identical reductions,
// zero recomputation on warm), spec-hash sensitivity to every field,
// content-addressed cell reuse across axis edits and run counts, the
// corruption trust model (truncated / corrupted / foreign files are
// recomputed, never trusted), the cross-process store contract sharding
// relies on (racing writers, stale-temp sweeping), and shard striping
// (stripes partition the cell grid; sharded cold runs + a coordinator
// warm run merge to the single-process result bit for bit).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "scenario/cache.h"
#include "scenario/spec_io.h"
#include "scenario/sweep.h"
#include "util/error.h"

namespace topo::scenario {
namespace {

ScenarioSpec tiny_rrg_spec() {
  ScenarioSpec spec;
  spec.name = "cache_test_tiny";
  spec.description = "tiny RRG sweep";
  spec.topology = {"random_regular", {{"n", 12}, {"ports", 6}, {"degree", 4}}};
  spec.axes = {{"link_failure_fraction", {0.0, 0.25}, {}}};
  spec.quick_runs = 2;
  return spec;
}

SweepRunConfig tiny_config() {
  SweepRunConfig config;
  config.runs = 2;
  config.epsilon = 0.25;  // loose: these tests care about wiring, not bounds
  config.master_seed = 5;
  return config;
}

// A fresh empty cache directory per test.
std::string fresh_cache_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/topobench_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_points_bitwise_equal(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.points[i].coords, b.points[i].coords);
    EXPECT_EQ(a.points[i].stats.lambda.mean, b.points[i].stats.lambda.mean);
    EXPECT_EQ(a.points[i].stats.lambda.stdev, b.points[i].stats.lambda.stdev);
    EXPECT_EQ(a.points[i].stats.lambda.min, b.points[i].stats.lambda.min);
    EXPECT_EQ(a.points[i].stats.dual_bound.mean,
              b.points[i].stats.dual_bound.mean);
    EXPECT_EQ(a.points[i].stats.utilization.mean,
              b.points[i].stats.utilization.mean);
    EXPECT_EQ(a.points[i].stats.inverse_spl.mean,
              b.points[i].stats.inverse_spl.mean);
    EXPECT_EQ(a.points[i].stats.inverse_stretch.mean,
              b.points[i].stats.inverse_stretch.mean);
    EXPECT_EQ(a.points[i].stats.infeasible_runs,
              b.points[i].stats.infeasible_runs);
  }
}

TEST(Cache, ColdThenWarmIsBitIdenticalWithZeroRecomputation) {
  const ScenarioSpec spec = tiny_rrg_spec();
  SweepRunConfig config = tiny_config();
  const SweepResult uncached = SweepRunner(spec, config).run();
  EXPECT_EQ(uncached.cache_hits, 0);
  EXPECT_EQ(uncached.cache_misses, 0);  // no cache configured

  config.cache_dir = fresh_cache_dir("cold_warm");
  const SweepResult cold = SweepRunner(spec, config).run();
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.cache_misses, 4);  // 2 points x 2 runs
  expect_points_bitwise_equal(uncached, cold);

  const SweepResult warm = SweepRunner(spec, config).run();
  EXPECT_EQ(warm.cache_hits, 4);
  EXPECT_EQ(warm.cache_misses, 0);
  expect_points_bitwise_equal(cold, warm);
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Cache, EditingOneAxisValueRecomputesOnlyThatColumn) {
  ScenarioSpec spec = tiny_rrg_spec();
  SweepRunConfig config = tiny_config();
  config.cache_dir = fresh_cache_dir("axis_edit");
  const SweepResult cold = SweepRunner(spec, config).run();
  ASSERT_EQ(cold.cache_misses, 4);

  // Replace one value: the untouched column's cells hit, the edited one
  // recomputes.
  spec.axes[0].values = {0.0, 0.3};
  const SweepResult edited = SweepRunner(spec, config).run();
  EXPECT_EQ(edited.cache_hits, 2);
  EXPECT_EQ(edited.cache_misses, 2);
  EXPECT_EQ(edited.points[0].stats.lambda.mean,
            cold.points[0].stats.lambda.mean);

  // Append a value: both existing columns hit (non-reuse point seeds are
  // index-derived, and indices of existing points are unchanged).
  spec.axes[0].values = {0.0, 0.3, 0.5};
  const SweepResult appended = SweepRunner(spec, config).run();
  EXPECT_EQ(appended.cache_hits, 4);
  EXPECT_EQ(appended.cache_misses, 2);
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Cache, CellsAreSharedAcrossRunCounts) {
  // Content addressing: run r's cell identity does not depend on the
  // total run count, so a --runs 1 warm run reuses the first run of an
  // earlier --runs 2 sweep.
  const ScenarioSpec spec = tiny_rrg_spec();
  SweepRunConfig config = tiny_config();
  config.cache_dir = fresh_cache_dir("run_counts");
  (void)SweepRunner(spec, config).run();
  config.runs = 1;
  const SweepResult warm = SweepRunner(spec, config).run();
  EXPECT_EQ(warm.cache_hits, 2);
  EXPECT_EQ(warm.cache_misses, 0);
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Cache, DifferentSeedOrEpsilonMissesEverything) {
  const ScenarioSpec spec = tiny_rrg_spec();
  SweepRunConfig config = tiny_config();
  config.cache_dir = fresh_cache_dir("seed_eps");
  (void)SweepRunner(spec, config).run();

  SweepRunConfig other_seed = config;
  other_seed.master_seed = 6;
  EXPECT_EQ(SweepRunner(spec, other_seed).run().cache_hits, 0);

  SweepRunConfig other_eps = config;
  other_eps.epsilon = 0.2;
  EXPECT_EQ(SweepRunner(spec, other_eps).run().cache_hits, 0);
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Cache, ReuseTopologySweepsCacheToo) {
  ScenarioSpec spec = tiny_rrg_spec();
  spec.axes = {{"capacity_factor", {1.0, 0.5}, {}}};
  spec.reuse_topology = true;
  SweepRunConfig config = tiny_config();
  const SweepResult uncached = SweepRunner(spec, config).run();
  config.cache_dir = fresh_cache_dir("reuse");
  const SweepResult cold = SweepRunner(spec, config).run();
  const SweepResult warm = SweepRunner(spec, config).run();
  EXPECT_EQ(cold.cache_misses, 4);
  EXPECT_EQ(warm.cache_hits, 4);
  expect_points_bitwise_equal(uncached, warm);
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Cache, CorruptedTruncatedOrForeignFilesAreRecomputed) {
  const ScenarioSpec spec = tiny_rrg_spec();
  SweepRunConfig config = tiny_config();
  config.cache_dir = fresh_cache_dir("corrupt");
  const SweepResult cold = SweepRunner(spec, config).run();
  ASSERT_EQ(cold.cache_misses, 4);

  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(config.cache_dir)) {
    files.push_back(entry.path().string());
  }
  ASSERT_EQ(files.size(), 4u);
  std::sort(files.begin(), files.end());

  // Truncate one entry mid-document.
  {
    std::ifstream in(files[0]);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(files[0], std::ios::trunc);
    out << content.substr(0, content.size() / 2);
  }
  // Corrupt a digit in another (still valid JSON; checksum must catch it).
  {
    std::ifstream in(files[1]);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    const std::size_t pos = content.find("\"lambda\": ");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t digit = content.find_first_of("0123456789", pos + 10);
    ASSERT_NE(digit, std::string::npos);
    content[digit] = content[digit] == '9' ? '8' : '9';
    std::ofstream out(files[1], std::ios::trunc);
    out << content;
  }
  // Replace a third with something that is not a cache entry at all.
  {
    std::ofstream out(files[2], std::ios::trunc);
    out << "not json";
  }

  const SweepResult warm = SweepRunner(spec, config).run();
  EXPECT_EQ(warm.cache_hits, 1);
  EXPECT_EQ(warm.cache_misses, 3);
  expect_points_bitwise_equal(cold, warm);

  // Each rejected file was quarantined, not left in place: the bad bytes
  // survive under `.corrupt` for diagnosis.
  int quarantined = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(config.cache_dir)) {
    if (entry.path().string().ends_with(".corrupt")) ++quarantined;
  }
  EXPECT_EQ(quarantined, 3);

  // The recompute healed the entries: everything hits now.
  const SweepResult healed = SweepRunner(spec, config).run();
  EXPECT_EQ(healed.cache_hits, 4);
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Cache, CorruptCellIsQuarantinedAndSlotRestorable) {
  ResultCache cache(fresh_cache_dir("quarantine"));
  ThroughputResult result;
  result.lambda = 0.75;
  result.dual_bound = 0.8;
  result.feasible = true;
  cache.store(99, result);
  const std::string path = cache.cell_path(99);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Flip a payload digit so the checksum rejects the file on load.
  {
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    const std::size_t pos = content.find("\"lambda\": ");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t digit = content.find_first_of("0123456789", pos + 10);
    ASSERT_NE(digit, std::string::npos);
    content[digit] = content[digit] == '9' ? '8' : '9';
    std::ofstream out(path, std::ios::trunc);
    out << content;
  }

  ThroughputResult loaded;
  EXPECT_FALSE(cache.load(99, &loaded));
  // The bad file moved aside; the slot is empty, not poisoned.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));

  // Re-storing the recomputed cell lands in the clean slot and verifies.
  cache.store(99, result);
  ASSERT_TRUE(cache.load(99, &loaded));
  EXPECT_EQ(loaded.lambda, result.lambda);
  std::filesystem::remove_all(cache.dir());
}

TEST(Cache, StoreLoadRoundTripsExactly) {
  ResultCache cache(fresh_cache_dir("roundtrip"));
  ThroughputResult result;
  result.lambda = 0.9346999999999999;
  result.dual_bound = 1.0153000000000001;
  result.gap = 0.07937;
  result.feasible = true;
  result.phases = 123;
  result.utilization = 1.0 / 3.0;
  result.mean_routed_path_length = 2.5;
  result.demand_weighted_spl = 2.25;
  result.stretch = 2.5 / 2.25;
  result.total_demand = 48.0;
  cache.store(17, result);

  ThroughputResult loaded;
  ASSERT_TRUE(cache.load(17, &loaded));
  EXPECT_EQ(loaded.lambda, result.lambda);
  EXPECT_EQ(loaded.dual_bound, result.dual_bound);
  EXPECT_EQ(loaded.gap, result.gap);
  EXPECT_EQ(loaded.feasible, result.feasible);
  EXPECT_EQ(loaded.phases, result.phases);
  EXPECT_EQ(loaded.utilization, result.utilization);
  EXPECT_EQ(loaded.mean_routed_path_length, result.mean_routed_path_length);
  EXPECT_EQ(loaded.demand_weighted_spl, result.demand_weighted_spl);
  EXPECT_EQ(loaded.stretch, result.stretch);
  EXPECT_EQ(loaded.total_demand, result.total_demand);
  EXPECT_TRUE(loaded.arc_flow.empty());  // documented: not cached

  // Unknown key is a clean miss, as is an infeasible default round trip.
  EXPECT_FALSE(cache.load(18, &loaded));
  cache.store(18, ThroughputResult{});
  ASSERT_TRUE(cache.load(18, &loaded));
  EXPECT_FALSE(loaded.feasible);
  EXPECT_EQ(loaded.lambda, 0.0);
  std::filesystem::remove_all(cache.dir());
}

TEST(SpecHash, ChangesForEveryFieldSeedEpsAndRuns) {
  const ScenarioSpec base_spec = tiny_rrg_spec();
  const SweepRunConfig base_config = tiny_config();
  const std::uint64_t base = spec_hash(base_spec, base_config);
  EXPECT_EQ(base, spec_hash(base_spec, base_config));  // deterministic

  const auto mutated_spec = [&](auto mutate) {
    ScenarioSpec spec = tiny_rrg_spec();
    mutate(spec);
    return spec_hash(spec, base_config);
  };
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) { s.name = "other"; }));
  EXPECT_NE(base,
            mutated_spec([](ScenarioSpec& s) { s.description = "other"; }));
  EXPECT_NE(base, mutated_spec(
                      [](ScenarioSpec& s) { s.topology.family = "fat_tree"; }));
  EXPECT_NE(base, mutated_spec(
                      [](ScenarioSpec& s) { s.topology.params["n"] = 14; }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.traffic = TrafficKind::kAllToAll;
            }));
  EXPECT_NE(base,
            mutated_spec([](ScenarioSpec& s) { s.chunky_fraction = 0.5; }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.failure.uniform.link_fraction = 0.1;
            }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.failure.uniform.switch_fraction = 0.1;
            }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.failure.capacity_factor = 0.9;
            }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.failure.correlated.epicenter_fraction = 0.1;
            }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.failure.correlated.peer_probability = 0.5;
            }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.failure.per_class.switch_fraction["switch"] = 0.1;
            }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.failure.targeted.link_cuts = 3;
            }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.axes[0].param = "switch_failure_fraction";
            }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.axes[0].values.push_back(0.5);
            }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) {
              s.axes[0].full_values = {0.0, 0.1, 0.2};
            }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) { s.quick_runs = 4; }));
  EXPECT_NE(base, mutated_spec([](ScenarioSpec& s) { s.full_runs = 21; }));
  EXPECT_NE(base,
            mutated_spec([](ScenarioSpec& s) { s.reuse_topology = true; }));

  const auto mutated_config = [&](auto mutate) {
    SweepRunConfig config = tiny_config();
    mutate(config);
    return spec_hash(base_spec, config);
  };
  EXPECT_NE(base, mutated_config([](SweepRunConfig& c) { c.master_seed = 6; }));
  EXPECT_NE(base, mutated_config([](SweepRunConfig& c) { c.epsilon = 0.1; }));
  EXPECT_NE(base, mutated_config([](SweepRunConfig& c) { c.runs = 3; }));
  EXPECT_NE(base, mutated_config([](SweepRunConfig& c) { c.full = true; }));
}

TEST(CellIdentity, KeyCoversSeedsOptionsAndSolverTag) {
  CellIdentity cell;
  cell.family = "random_regular";
  cell.params = {{"n", 12}, {"ports", 6}, {"degree", 4}};
  cell.topo_seed = 100;
  cell.traffic_seed = 101;
  const std::uint64_t base = cell_key(cell);

  CellIdentity other = cell;
  other.topo_seed = 102;
  EXPECT_NE(base, cell_key(other));
  other = cell;
  other.traffic_seed = 102;
  EXPECT_NE(base, cell_key(other));
  other = cell;
  other.options.flow.epsilon = 0.1;
  EXPECT_NE(base, cell_key(other));
  other = cell;
  other.options.failure.uniform.link_fraction = 0.25;
  EXPECT_NE(base, cell_key(other));
  other = cell;
  other.params["degree"] = 5;
  EXPECT_NE(base, cell_key(other));
  // Every newer failure component perturbs the key too...
  other = cell;
  other.options.failure.correlated.epicenter_fraction = 0.1;
  EXPECT_NE(base, cell_key(other));
  other = cell;
  other.options.failure.correlated.peer_probability = 0.4;
  EXPECT_NE(base, cell_key(other));
  other = cell;
  other.options.failure.per_class.switch_fraction["switch"] = 0.2;
  EXPECT_NE(base, cell_key(other));
  other = cell;
  other.options.failure.targeted.link_cuts = 2;
  EXPECT_NE(base, cell_key(other));
  // ...while inactive components stay OUT of the identity string, so
  // uniform-only cells keep the addresses they had before the failure
  // subsystem grew components (old cache dirs stay warm).
  const std::string legacy_identity = cell_identity_json(cell);
  EXPECT_EQ(legacy_identity.find("blast"), std::string::npos);
  EXPECT_EQ(legacy_identity.find("per_class"), std::string::npos);
  EXPECT_EQ(legacy_identity.find("targeted"), std::string::npos);
  // The identity string pins the solver tag, so a version bump
  // invalidates every cell by construction.
  EXPECT_NE(cell_identity_json(cell).find(kSolverVersionTag),
            std::string::npos);
}

TEST(CellIdentity, PacketSimJoinsTheKeyOnlyWhenEnabled) {
  CellIdentity cell;
  cell.family = "rewired_vl2";
  cell.params = {{"d_a", 6}, {"d_i", 8}};
  cell.topo_seed = 7;
  cell.traffic_seed = 8;
  // Disabled co-simulation stays out of the identity string entirely:
  // every flow-only cell keeps its pre-packet-sim address.
  const std::uint64_t base = cell_key(cell);
  EXPECT_EQ(cell_identity_json(cell).find("packet_sim"), std::string::npos);

  CellIdentity packet = cell;
  packet.options.packet_sim.enabled = true;
  const std::uint64_t enabled_key = cell_key(packet);
  EXPECT_NE(base, enabled_key);
  // The packet section pins its own version tag and every sim knob.
  EXPECT_NE(cell_identity_json(packet).find(kPacketSimVersionTag),
            std::string::npos);
  CellIdentity other = packet;
  other.options.packet_sim.params.subflows = 4;
  EXPECT_NE(enabled_key, cell_key(other));
  other = packet;
  other.options.packet_sim.params.queue_packets = 99;
  EXPECT_NE(enabled_key, cell_key(other));
  other = packet;
  other.options.packet_sim.params.duration_ns += 1;
  EXPECT_NE(enabled_key, cell_key(other));
  other = packet;
  other.options.packet_sim.params.route_mode = sim::RouteMode::kEcmpHash;
  EXPECT_NE(enabled_key, cell_key(other));
}

TEST(CellIdentity, FctWorkloadJoinsTheKeyOnlyWhenEnabled) {
  CellIdentity cell;
  cell.family = "random_regular";
  cell.params = {{"n", 12}, {"ports", 6}, {"degree", 4}};
  cell.topo_seed = 7;
  cell.traffic_seed = 8;
  cell.options.packet_sim.enabled = true;
  // Bulk packet cells carry no workload section: their addresses are
  // exactly what pre-FCT builds computed, so old cache dirs stay warm.
  const std::uint64_t bulk_key = cell_key(cell);
  EXPECT_EQ(cell_identity_json(cell).find("workload"), std::string::npos);
  EXPECT_EQ(cell_identity_json(cell).find(kFctWorkloadVersionTag),
            std::string::npos);

  CellIdentity fct = cell;
  fct.options.packet_sim.fct.enabled = true;
  const std::uint64_t fct_key = cell_key(fct);
  EXPECT_NE(bulk_key, fct_key);
  // The workload section pins its own version tag plus both knobs.
  EXPECT_NE(cell_identity_json(fct).find(kFctWorkloadVersionTag),
            std::string::npos);
  CellIdentity other = fct;
  other.options.packet_sim.fct.cdf = "fb_hadoop";
  EXPECT_NE(fct_key, cell_key(other));
  other = fct;
  other.options.packet_sim.fct.load = 0.9;
  EXPECT_NE(fct_key, cell_key(other));

  // Hotspot / stride knobs likewise join the identity only under their
  // traffic kind — a permutation cell ignores them entirely.
  CellIdentity hotspot = cell;
  hotspot.options.hot_fraction = 0.3;
  EXPECT_EQ(cell_key(cell), cell_key(hotspot));
  hotspot.options.traffic = TrafficKind::kHotspot;
  const std::uint64_t hotspot_key = cell_key(hotspot);
  EXPECT_NE(cell_key(cell), hotspot_key);
  hotspot.options.hot_multiplier = 9.0;
  EXPECT_NE(hotspot_key, cell_key(hotspot));
  CellIdentity stride = cell;
  stride.options.traffic = TrafficKind::kStride;
  stride.options.stride = 3;
  const std::uint64_t stride_key = cell_key(stride);
  EXPECT_NE(cell_key(cell), stride_key);
  stride.options.stride = 5;
  EXPECT_NE(stride_key, cell_key(stride));
}

TEST(Cache, PacketResultFieldsRoundTripExactly) {
  ResultCache cache(fresh_cache_dir("packet_roundtrip"));
  ThroughputResult result;
  result.lambda = 0.8843354003774603;
  result.feasible = true;
  result.packet_sim_run = true;
  result.packet_mean_normalized = 0.8052859374999991;
  result.packet_p05_normalized = 0.490125;
  result.packet_min_normalized = 0.283875;
  result.packet_retransmits = 362165.0;
  result.packet_drops = 351375.0;
  cache.store(41, result);

  ThroughputResult loaded;
  ASSERT_TRUE(cache.load(41, &loaded));
  EXPECT_TRUE(loaded.packet_sim_run);
  EXPECT_EQ(loaded.packet_mean_normalized, result.packet_mean_normalized);
  EXPECT_EQ(loaded.packet_p05_normalized, result.packet_p05_normalized);
  EXPECT_EQ(loaded.packet_min_normalized, result.packet_min_normalized);
  EXPECT_EQ(loaded.packet_retransmits, result.packet_retransmits);
  EXPECT_EQ(loaded.packet_drops, result.packet_drops);

  // Flow-only cells round-trip without growing packet keys — their bytes
  // (and checksums) are identical to what pre-packet-sim builds wrote.
  ThroughputResult flow_only;
  flow_only.lambda = 0.5;
  flow_only.feasible = true;
  cache.store(42, flow_only);
  std::ifstream in(cache.cell_path(42));
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes.find("packet_"), std::string::npos);
  ASSERT_TRUE(cache.load(42, &loaded));
  EXPECT_FALSE(loaded.packet_sim_run);
  std::filesystem::remove_all(cache.dir());
}

TEST(Cache, FctResultFieldsRoundTripExactly) {
  ResultCache cache(fresh_cache_dir("fct_roundtrip"));
  ThroughputResult result;
  result.lambda = 0.7151898734177216;
  result.feasible = true;
  result.packet_sim_run = true;
  result.fct_run = true;
  result.fct_p50_ns = 141311.0;
  result.fct_p95_ns = 4079012.0;
  result.fct_p99_ns = 10067080.0;
  result.fct_mean_ns = 791553.4028436019;
  result.fct_goodput = 0.115659375;
  result.fct_flows = 211.0;
  result.fct_completed = 204.0;
  cache.store(77, result);

  ThroughputResult loaded;
  ASSERT_TRUE(cache.load(77, &loaded));
  EXPECT_TRUE(loaded.fct_run);
  EXPECT_EQ(loaded.fct_p50_ns, result.fct_p50_ns);
  EXPECT_EQ(loaded.fct_p95_ns, result.fct_p95_ns);
  EXPECT_EQ(loaded.fct_p99_ns, result.fct_p99_ns);
  EXPECT_EQ(loaded.fct_mean_ns, result.fct_mean_ns);
  EXPECT_EQ(loaded.fct_goodput, result.fct_goodput);
  EXPECT_EQ(loaded.fct_flows, result.fct_flows);
  EXPECT_EQ(loaded.fct_completed, result.fct_completed);

  // Non-FCT cells round-trip without growing fct keys: their bytes (and
  // checksums) stay identical to what pre-FCT builds wrote.
  ThroughputResult bulk;
  bulk.lambda = 0.5;
  bulk.feasible = true;
  bulk.packet_sim_run = true;
  cache.store(78, bulk);
  std::ifstream in(cache.cell_path(78));
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes.find("fct_"), std::string::npos);
  ASSERT_TRUE(cache.load(78, &loaded));
  EXPECT_FALSE(loaded.fct_run);
  std::filesystem::remove_all(cache.dir());
}

TEST(Cache, FctWorkloadSweepCachesColdWarmIdentically) {
  // An FCT sweep through the cache: the warm run must replay percentiles
  // and goodput bit for bit with zero recomputation.
  ScenarioSpec spec;
  spec.name = "cache_test_fct";
  spec.description = "tiny FCT sweep";
  spec.topology = {"random_regular", {{"n", 12}, {"ports", 6}, {"degree", 4}}};
  spec.packet_sim.enabled = true;
  spec.packet_sim.fct.enabled = true;
  spec.packet_sim.fct.cdf = "fb_hadoop";
  spec.packet_sim.params.subflows = 1;
  spec.packet_sim.params.duration_ns = 5'000'000;
  spec.packet_sim.params.warmup_ns = 0;
  spec.axes = {{"load", {0.3, 0.7}, {}}};
  SweepRunConfig config = tiny_config();
  const SweepResult uncached = SweepRunner(spec, config).run();
  config.cache_dir = fresh_cache_dir("fct_cold_warm");
  const SweepResult cold = SweepRunner(spec, config).run();
  const SweepResult warm = SweepRunner(spec, config).run();
  EXPECT_EQ(cold.cache_misses, 4);
  EXPECT_EQ(warm.cache_hits, 4);
  EXPECT_EQ(warm.cache_misses, 0);
  expect_points_bitwise_equal(uncached, cold);
  expect_points_bitwise_equal(cold, warm);
  ASSERT_EQ(warm.points.size(), 2u);
  for (std::size_t i = 0; i < warm.points.size(); ++i) {
    EXPECT_EQ(warm.points[i].stats.fct_runs, 2);
    EXPECT_EQ(warm.points[i].stats.fct_p50.mean,
              cold.points[i].stats.fct_p50.mean);
    EXPECT_EQ(warm.points[i].stats.fct_p99.mean,
              cold.points[i].stats.fct_p99.mean);
    EXPECT_EQ(warm.points[i].stats.fct_goodput.mean,
              cold.points[i].stats.fct_goodput.mean);
  }
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Cache, NewFailureFamiliesCacheColdWarmIdentically) {
  // One correlated + one targeted sweep through the cache: warm runs must
  // be bit-identical with zero recomputation (the CI failure-families
  // smoke job asserts the same property end-to-end via --spec).
  for (const char* axis : {"blast_probability", "targeted_link_cuts"}) {
    SCOPED_TRACE(axis);
    ScenarioSpec spec = tiny_rrg_spec();
    spec.name = std::string("cache_test_") + axis;
    if (std::string(axis) == "blast_probability") {
      spec.failure.correlated.epicenter_fraction = 0.1;
      spec.axes = {{axis, {0.0, 0.5}, {}}};
    } else {
      spec.axes = {{axis, {0, 3}, {}}};
    }
    spec.reuse_topology = true;
    SweepRunConfig config = tiny_config();
    const SweepResult uncached = SweepRunner(spec, config).run();
    config.cache_dir = fresh_cache_dir(std::string("family_") + axis);
    const SweepResult cold = SweepRunner(spec, config).run();
    const SweepResult warm = SweepRunner(spec, config).run();
    EXPECT_EQ(cold.cache_misses, 4);
    EXPECT_EQ(warm.cache_hits, 4);
    EXPECT_EQ(warm.cache_misses, 0);
    expect_points_bitwise_equal(uncached, cold);
    expect_points_bitwise_equal(cold, warm);
    std::filesystem::remove_all(config.cache_dir);
  }
}

TEST(Cache, RacingStoresOnOneKeyBothSucceedAndLoadsVerify) {
  // The temp-file + rename contract sharding depends on: two writers —
  // here two cache handles on the dir, as two shard processes would hold —
  // racing on the SAME cell key must both complete, and a subsequent load
  // must see one complete document (never a torn mix; the checksum
  // re-verification would reject it as a miss).
  const std::string dir = fresh_cache_dir("race");
  const ResultCache first(dir);
  const ResultCache second(dir);
  ThroughputResult result_a;
  result_a.lambda = 0.25;
  result_a.feasible = true;
  ThroughputResult result_b;
  result_b.lambda = 0.75;
  result_b.feasible = true;
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t key = 1000 + static_cast<std::uint64_t>(round);
    std::thread writer_a([&] { first.store(key, result_a); });
    std::thread writer_b([&] { second.store(key, result_b); });
    writer_a.join();
    writer_b.join();
    ThroughputResult loaded;
    ASSERT_TRUE(first.load(key, &loaded)) << "round " << round;
    EXPECT_TRUE(loaded.lambda == result_a.lambda ||
                loaded.lambda == result_b.lambda)
        << loaded.lambda;
  }
  // Every rename landed: no temp litter remains.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << entry.path();
  }
  std::filesystem::remove_all(dir);
}

TEST(Cache, StaleTempFilesAreSweptOnOpenFreshAndCellFilesKept) {
  const std::string dir = fresh_cache_dir("stale_tmp");
  {
    const ResultCache cache(dir);
    cache.store(42, ThroughputResult{});
  }
  // A crashed shard's leftover (old mtime) vs a live writer's in-flight
  // temp (fresh mtime): reopening the dir must sweep only the former.
  const std::string stale = dir + "/00000000deadbeef.json.tmp.aaaa";
  const std::string fresh = dir + "/00000000deadbeef.json.tmp.bbbb";
  {
    std::ofstream out(stale);
    out << "{\"version\": half a doc";
  }
  {
    std::ofstream out(fresh);
    out << "{\"version\": half a doc";
  }
  std::filesystem::last_write_time(
      stale, std::filesystem::file_time_type::clock::now() -
                 std::chrono::hours(2));
  const ResultCache reopened(dir);
  EXPECT_FALSE(std::filesystem::exists(stale));
  EXPECT_TRUE(std::filesystem::exists(fresh));
  ThroughputResult loaded;
  EXPECT_TRUE(reopened.load(42, &loaded));  // cell files are never touched
  std::filesystem::remove_all(dir);
}

TEST(Shard, StripesPartitionTheCellGridExactly) {
  // Every (points, runs, shard_count) shape: each flat cell index belongs
  // to exactly one stripe, so N shard runs cover the CellPlan with no
  // overlap and no gap.
  const std::vector<std::tuple<int, int, int>> shapes = {
      {1, 1, 1}, {5, 1, 2}, {2, 2, 2}, {3, 3, 3}, {4, 2, 5}, {2, 3, 7}};
  for (const auto& [points, runs, shards] : shapes) {
    SCOPED_TRACE(std::to_string(points) + "x" + std::to_string(runs) + "/" +
                 std::to_string(shards));
    for (int index = 0; index < points * runs; ++index) {
      int owners = 0;
      for (int s = 0; s < shards; ++s) {
        owners += cell_in_shard(index, s, shards) ? 1 : 0;
      }
      EXPECT_EQ(owners, 1) << "cell " << index;
    }
  }
}

TEST(Shard, ShardedColdRunsThenCoordinatorWarmMergeByteIdentical) {
  const ScenarioSpec spec = tiny_rrg_spec();
  SweepRunConfig config = tiny_config();
  const SweepResult single = SweepRunner(spec, config).run();

  // Two shard invocations over one shared dir. Stripes are disjoint, so
  // the shards together compute every cell exactly once; each shard
  // reduces only the points it has completely (stripe + cache hits).
  config.cache_dir = fresh_cache_dir("shard_merge");
  config.shard_count = 2;
  config.shard_index = 0;
  const SweepResult shard0 = SweepRunner(spec, config).run();
  EXPECT_EQ(shard0.cache_hits, 0);
  EXPECT_EQ(shard0.cache_misses, 2);  // cells 0 and 2 of 4
  EXPECT_EQ(shard0.shard_skipped, 2);
  // 2 runs per point straddle both stripes: nothing is complete yet.
  EXPECT_TRUE(shard0.points.empty());

  config.shard_index = 1;
  const SweepResult shard1 = SweepRunner(spec, config).run();
  EXPECT_EQ(shard1.cache_hits, 2);  // shard 0's cells, via the shared dir
  EXPECT_EQ(shard1.cache_misses, 2);
  EXPECT_EQ(shard1.shard_skipped, 0);
  // With the sibling stripe already published, every point completes —
  // and matches the single-process run bit for bit.
  expect_points_bitwise_equal(single, shard1);

  // Coordinator: same spec, no sharding, same cache dir — a pure merge.
  config.shard_index = 0;
  config.shard_count = 1;
  const SweepResult merged = SweepRunner(spec, config).run();
  EXPECT_EQ(merged.cache_hits, 4);
  EXPECT_EQ(merged.cache_misses, 0);
  EXPECT_EQ(merged.shard_skipped, 0);
  expect_points_bitwise_equal(single, merged);
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Shard, ComposesWithReuseTopologyAndTargetedCuts) {
  // Reuse mode + the targeted component (whose ranking is memoized per
  // shared topology) under a 3-way shard split: the merged table must
  // equal the unsharded, uncached run exactly.
  ScenarioSpec spec = tiny_rrg_spec();
  spec.axes = {{"targeted_link_cuts", {0, 2}, {}}};
  spec.reuse_topology = true;
  SweepRunConfig config = tiny_config();
  const SweepResult single = SweepRunner(spec, config).run();

  config.cache_dir = fresh_cache_dir("shard_reuse");
  config.shard_count = 3;
  int computed = 0;
  for (int s = 0; s < 3; ++s) {
    config.shard_index = s;
    const SweepResult shard = SweepRunner(spec, config).run();
    computed += shard.cache_misses;
    EXPECT_EQ(shard.cache_hits + shard.cache_misses + shard.shard_skipped, 4);
  }
  EXPECT_EQ(computed, 4);  // disjoint stripes: every cell computed once

  config.shard_index = 0;
  config.shard_count = 1;
  const SweepResult merged = SweepRunner(spec, config).run();
  EXPECT_EQ(merged.cache_hits, 4);
  EXPECT_EQ(merged.cache_misses, 0);
  expect_points_bitwise_equal(single, merged);
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Shard, InvalidShardConfigFailsLoudly) {
  const ScenarioSpec spec = tiny_rrg_spec();
  SweepRunConfig config = tiny_config();
  config.shard_count = 2;  // sharded but no cache dir: work would vanish
  EXPECT_THROW((void)SweepRunner(spec, config).run(), InvalidArgument);
  config.cache_dir = fresh_cache_dir("shard_bad");
  config.shard_index = 2;  // out of range
  EXPECT_THROW((void)SweepRunner(spec, config).run(), InvalidArgument);
  config.shard_index = -1;
  EXPECT_THROW((void)SweepRunner(spec, config).run(), InvalidArgument);
  config.shard_index = 0;
  config.shard_count = 0;
  EXPECT_THROW((void)SweepRunner(spec, config).run(), InvalidArgument);
  std::filesystem::remove_all(config.cache_dir);
}

TEST(Cache, UnwritableDirFailsLoudly) {
  EXPECT_THROW(ResultCache(""), InvalidArgument);
  EXPECT_THROW(ResultCache("/proc/definitely/not/writable"),
               InvalidArgument);
}

}  // namespace
}  // namespace topo::scenario
