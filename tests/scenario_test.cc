// Scenario-engine unit tests: registry contents and lookup, sweep
// enumeration, deterministic seed fan-out (including the contract that a
// single-point sweep equals run_experiment), axis binding, and the
// machine-readable JSON emission.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/experiment.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "scenario/topo_registry.h"
#include "topo/random_regular.h"
#include "util/error.h"
#include "util/rng.h"

namespace topo::scenario {
namespace {

ScenarioSpec tiny_rrg_spec() {
  ScenarioSpec spec;
  spec.name = "test_tiny";
  spec.description = "tiny RRG sweep";
  spec.topology = {"random_regular", {{"n", 12}, {"ports", 6}, {"degree", 4}}};
  spec.axes = {{"link_failure_fraction", {0.0, 0.25}, {}}};
  spec.quick_runs = 2;
  return spec;
}

SweepRunConfig tiny_config() {
  SweepRunConfig config;
  config.runs = 2;
  config.epsilon = 0.25;  // loose: these tests care about wiring, not bounds
  config.master_seed = 5;
  return config;
}

TEST(Registry, ListsAllThirteenFiguresAndTheSweeps) {
  register_builtin_scenarios();
  int figures = 0;
  int sweeps = 0;
  for (const ScenarioInfo* info : list_scenarios()) {
    if (info->name.rfind("fig", 0) == 0) ++figures;
    if (info->name.rfind("sweep_", 0) == 0) ++sweeps;
    EXPECT_FALSE(info->description.empty()) << info->name;
  }
  EXPECT_EQ(figures, 13);
  EXPECT_GE(sweeps, 5);
}

TEST(Registry, ExactAndUniquePrefixLookup) {
  register_builtin_scenarios();
  ASSERT_NE(find_scenario("fig05_powerlaw_beta"), nullptr);
  // Unique prefix resolves...
  const ScenarioInfo* by_prefix = find_scenario("fig05");
  ASSERT_NE(by_prefix, nullptr);
  EXPECT_EQ(by_prefix->name, "fig05_powerlaw_beta");
  // ...ambiguous ("fig1" matches fig10..fig13) and unknown do not.
  EXPECT_EQ(find_scenario("fig1"), nullptr);
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

TEST(Registry, ReRegistrationIsIdempotent) {
  register_builtin_scenarios();
  const std::size_t before = list_scenarios().size();
  register_builtin_scenarios();
  EXPECT_EQ(list_scenarios().size(), before);
}

TEST(TopoRegistry, EveryFamilyBuildsWithDefaults) {
  for (const FamilyInfo& family : topology_families()) {
    SCOPED_TRACE(family.name);
    const BuiltTopology t = family.build({}, /*seed=*/3);
    EXPECT_GT(t.graph.num_nodes(), 0);
    EXPECT_GT(t.graph.num_edges(), 0);
    EXPECT_EQ(t.servers.num_switches(), t.graph.num_nodes());
    EXPECT_GT(t.servers.total(), 0);
  }
  EXPECT_EQ(find_family("no_such_family"), nullptr);
}

TEST(Sweep, EnumeratesCartesianProductFirstAxisSlowest) {
  ScenarioSpec spec = tiny_rrg_spec();
  spec.axes = {{"a", {1.0, 2.0}, {}}, {"b", {10.0, 20.0, 30.0}, {}}};
  const auto points = SweepRunner(spec, tiny_config()).enumerate_points();
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0], (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(points[1], (std::vector<double>{1.0, 20.0}));
  EXPECT_EQ(points[3], (std::vector<double>{2.0, 10.0}));
  // Full mode without full_values falls back to the smoke values.
  SweepRunConfig full = tiny_config();
  full.full = true;
  EXPECT_EQ(SweepRunner(spec, full).enumerate_points().size(), 6u);
}

TEST(Sweep, DeterministicAcrossInvocations) {
  const ScenarioSpec spec = tiny_rrg_spec();
  const SweepResult a = SweepRunner(spec, tiny_config()).run();
  const SweepResult b = SweepRunner(spec, tiny_config()).run();
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].stats.lambda.mean, b.points[i].stats.lambda.mean);
    EXPECT_EQ(a.points[i].stats.dual_bound.mean,
              b.points[i].stats.dual_bound.mean);
  }
}

TEST(Sweep, SinglePointMatchesRunExperiment) {
  // The documented seed fan-out contract: point p draws
  // point_seed = derive_seed(master, p), and its runs reproduce
  // run_experiment(builder, options, runs, point_seed) exactly.
  ScenarioSpec spec = tiny_rrg_spec();
  spec.axes.clear();  // one implicit point
  const SweepRunConfig config = tiny_config();
  const SweepResult sweep = SweepRunner(spec, config).run();
  ASSERT_EQ(sweep.points.size(), 1u);

  const TopologyBuilder builder = [](std::uint64_t seed) {
    return random_regular_topology(12, 6, 4, seed);
  };
  EvalOptions options;
  options.flow.epsilon = config.epsilon;
  const ExperimentStats direct = run_experiment(
      builder, options, config.runs, Rng::derive_seed(config.master_seed, 0));
  EXPECT_EQ(sweep.points[0].stats.lambda.mean, direct.lambda.mean);
  EXPECT_EQ(sweep.points[0].stats.dual_bound.mean, direct.dual_bound.mean);
  EXPECT_EQ(sweep.points[0].stats.utilization.mean, direct.utilization.mean);
}

TEST(Sweep, FailureAxisDegradesThroughput) {
  const SweepResult result =
      SweepRunner(tiny_rrg_spec(), tiny_config()).run();
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_GT(result.points[0].stats.lambda.mean, 0.0);
  // A quarter of the links gone must cost measurable throughput.
  EXPECT_LT(result.points[1].stats.lambda.mean,
            result.points[0].stats.lambda.mean);
}

TEST(Sweep, ReuseTopologySharesBuildsAcrossPoints) {
  // With reuse, the capacity_factor=1 point must match the plain
  // single-point sweep on the same master seed run-for-run (same
  // topologies, same traffic seeds).
  ScenarioSpec spec = tiny_rrg_spec();
  spec.axes = {{"capacity_factor", {1.0, 0.5}, {}}};
  spec.reuse_topology = true;
  const SweepResult reused = SweepRunner(spec, tiny_config()).run();
  ASSERT_EQ(reused.points.size(), 2u);
  EXPECT_GT(reused.points[0].stats.lambda.mean,
            reused.points[1].stats.lambda.mean);
  // Derating to half capacity lands in the ballpark of half the
  // throughput. (Exact 0.5x scaling of the true optimum is asserted with
  // the exact LP in failure_injection_test; the FPTAS certificates at
  // loose epsilon are only approximately scale-invariant.)
  EXPECT_GT(reused.points[1].stats.lambda.mean,
            0.3 * reused.points[0].stats.lambda.mean);
  EXPECT_LT(reused.points[1].stats.lambda.mean,
            0.7 * reused.points[0].stats.lambda.mean);
}

TEST(Sweep, UnknownFamilyOrEmptyAxisRaises) {
  ScenarioSpec spec = tiny_rrg_spec();
  spec.topology.family = "no_such_family";
  EXPECT_THROW((void)SweepRunner(spec, tiny_config()).run(), InvalidArgument);
  ScenarioSpec empty_axis = tiny_rrg_spec();
  empty_axis.axes = {{"link_failure_fraction", {}, {}}};
  EXPECT_THROW((void)SweepRunner(empty_axis, tiny_config()).run(),
               InvalidArgument);
}

TEST(Sweep, MisspelledAxisOrParamRaisesInsteadOfSweepingNothing) {
  // A typo'd name would otherwise fall through to the topology ParamMap,
  // be ignored by every builder, and report identical cells with no error.
  ScenarioSpec typo_axis = tiny_rrg_spec();
  typo_axis.axes = {{"lnik_failure_fraction", {0.0, 0.1}, {}}};
  EXPECT_THROW((void)SweepRunner(typo_axis, tiny_config()).run(),
               InvalidArgument);
  ScenarioSpec typo_param = tiny_rrg_spec();
  typo_param.topology.params["degre"] = 4;
  EXPECT_THROW((void)SweepRunner(typo_param, tiny_config()).run(),
               InvalidArgument);
}

TEST(Sweep, ReuseModeStreamIsPointIndependent) {
  // Two sweep points with the SAME axis value must produce bitwise-equal
  // statistics in reuse mode: topology, workload, and failure draw all
  // derive from (master, run) only — this is what makes failure sweeps
  // degrade nested failed sets of a fixed instance per run.
  ScenarioSpec spec = tiny_rrg_spec();
  spec.axes = {{"link_failure_fraction", {0.1, 0.1}, {}}};
  spec.reuse_topology = true;
  const SweepResult result = SweepRunner(spec, tiny_config()).run();
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].stats.lambda.mean,
            result.points[1].stats.lambda.mean);
  EXPECT_EQ(result.points[0].stats.dual_bound.mean,
            result.points[1].stats.dual_bound.mean);
}

TEST(ScenarioRunContext, RecordsTablesAndWritesJson) {
  ScenarioOptions options;
  options.runs = 1;
  std::ostringstream stream;
  ScenarioRun run(options, stream);
  run.banner("Test table");
  TablePrinter table({"x", "name", "count"});
  table.add_row({0.5, std::string("a\"b"), static_cast<long long>(7)});
  run.table(table);
  run.out() << "trailing note\n";

  // Stream got the banner, the aligned table, and the note.
  const std::string text = stream.str();
  EXPECT_NE(text.find("== Test table =="), std::string::npos);
  EXPECT_NE(text.find("trailing note"), std::string::npos);

  ASSERT_EQ(run.tables().size(), 1u);
  EXPECT_EQ(run.tables()[0].title, "Test table");

  std::ostringstream json;
  write_scenario_json(json, "unit", options, run.tables());
  const std::string out = json.str();
  EXPECT_NE(out.find("\"scenario\": \"unit\""), std::string::npos);
  EXPECT_NE(out.find("\"headers\": [\"x\", \"name\", \"count\"]"),
            std::string::npos);
  EXPECT_NE(out.find("a\\\"b"), std::string::npos);  // escaped quote
  EXPECT_NE(out.find("0.5"), std::string::npos);
}

TEST(ScenarioOptionsFlags, ParsesShardStripe) {
  const char* argv[] = {"prog", "--shard", "1/3", "--cache-dir", "dir"};
  const ScenarioOptions options = parse_scenario_options(5, argv);
  EXPECT_EQ(options.shard_index, 1);
  EXPECT_EQ(options.shard_count, 3);
  EXPECT_EQ(options.cache_dir, "dir");

  const char* plain[] = {"prog"};
  const ScenarioOptions defaults = parse_scenario_options(1, plain);
  EXPECT_EQ(defaults.shard_index, 0);
  EXPECT_EQ(defaults.shard_count, 1);

  // The degenerate 0/1 stripe is an unsharded run and needs no cache.
  const char* unsharded[] = {"prog", "--shard", "0/1"};
  EXPECT_EQ(parse_scenario_options(3, unsharded).shard_count, 1);
}

TEST(ScenarioOptionsFlags, RejectsMalformedOrCachelessShard) {
  const auto parse = [](std::vector<const char*> argv) {
    return parse_scenario_options(static_cast<int>(argv.size()), argv.data());
  };
  // A sharded run without a cache dir would compute a stripe and discard it.
  EXPECT_THROW(parse({"p", "--shard", "1/2"}), InvalidArgument);
  EXPECT_THROW(parse({"p", "--shard", "2/2", "--cache-dir", "d"}),
               InvalidArgument);
  EXPECT_THROW(parse({"p", "--shard", "-1/2", "--cache-dir", "d"}),
               InvalidArgument);
  EXPECT_THROW(parse({"p", "--shard", "1/0", "--cache-dir", "d"}),
               InvalidArgument);
  EXPECT_THROW(parse({"p", "--shard", "nope", "--cache-dir", "d"}),
               InvalidArgument);
  EXPECT_THROW(parse({"p", "--shard", "1/", "--cache-dir", "d"}),
               InvalidArgument);
  EXPECT_THROW(parse({"p", "--shard", "/2", "--cache-dir", "d"}),
               InvalidArgument);
  EXPECT_THROW(parse({"p", "--shard", "1/2/3", "--cache-dir", "d"}),
               InvalidArgument);
}

TEST(ScenarioRunContext, RunsDefaultRespectsModeAndOverride) {
  ScenarioOptions options;
  std::ostringstream stream;
  EXPECT_EQ(ScenarioRun(options, stream).runs(3, 20), 3);
  options.full = true;
  EXPECT_EQ(ScenarioRun(options, stream).runs(3, 20), 20);
  options.runs = 7;
  EXPECT_EQ(ScenarioRun(options, stream).runs(3, 20), 7);
}

}  // namespace
}  // namespace topo::scenario
